// RAN tests: trajectories, path loss / rate model, cell selection with
// hysteresis, handover cadence (MTTHO calibration), and rate policies.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "net/network.hpp"
#include "ran/radio.hpp"
#include "ran/rate_policy.hpp"
#include "ran/trajectory.hpp"
#include "ran/ue_radio.hpp"
#include "sim/simulator.hpp"

namespace cb::ran {
namespace {

TEST(Trajectory, LinePositions) {
  Trajectory t = Trajectory::line(1000.0, 10.0);
  EXPECT_EQ(t.position(Duration::zero()).x, 0.0);
  EXPECT_NEAR(t.position(Duration::s(50)).x, 500.0, 1e-9);
  EXPECT_NEAR(t.position(Duration::s(100)).x, 1000.0, 1e-9);
  // Clamped at the end.
  EXPECT_NEAR(t.position(Duration::s(500)).x, 1000.0, 1e-9);
  EXPECT_NEAR(t.duration().to_seconds(), 100.0, 1e-9);
}

TEST(Trajectory, MultiSegmentPath) {
  Trajectory t({{0, 0}, {100, 0}, {100, 100}}, 10.0);
  EXPECT_NEAR(t.length(), 200.0, 1e-9);
  const Point mid = t.position(Duration::s(15));  // 150 m in
  EXPECT_NEAR(mid.x, 100.0, 1e-9);
  EXPECT_NEAR(mid.y, 50.0, 1e-9);
}

TEST(Trajectory, RejectsBadArguments) {
  EXPECT_THROW(Trajectory({}, 10.0), std::invalid_argument);
  EXPECT_THROW(Trajectory({{0, 0}}, 0.0), std::invalid_argument);
}

TEST(RadioModel, PathLossIncreasesWithDistance) {
  EXPECT_LT(RadioEnvironment::path_loss_db(100), RadioEnvironment::path_loss_db(1000));
  EXPECT_LT(RadioEnvironment::path_loss_db(1000), RadioEnvironment::path_loss_db(5000));
}

TEST(RadioModel, RateDecreasesWithDistance) {
  Cell c{1, {0, 0}, "op", 43.0, 20e6};
  const double near = RadioEnvironment::achievable_rate_bps(c, {100, 0});
  const double mid = RadioEnvironment::achievable_rate_bps(c, {1000, 0});
  const double far = RadioEnvironment::achievable_rate_bps(c, {3000, 0});
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
  // Near-cell rate hits the spectral-efficiency cap: 4.8 b/s/Hz * 20 MHz.
  EXPECT_NEAR(near, 4.8 * 20e6, 1e3);
}

TEST(RadioEnvironment, ScanOrdersByStrength) {
  RadioEnvironment env;
  env.add_cell(Cell{1, {0, 0}, "a"});
  env.add_cell(Cell{2, {500, 0}, "b"});
  env.add_cell(Cell{3, {5000, 0}, "c"});
  const auto scan = env.scan({400, 0});
  ASSERT_GE(scan.size(), 2u);
  EXPECT_EQ(scan[0].cell, 2u);  // closest
  EXPECT_EQ(scan[1].cell, 1u);
  EXPECT_EQ(env.best({400, 0}).cell, 2u);
}

TEST(RadioEnvironment, OutOfCoverageReturnsZero) {
  RadioEnvironment env;
  env.add_cell(Cell{1, {0, 0}, "a"});
  EXPECT_EQ(env.best({200000, 0}).cell, 0u);
}

TEST(RadioEnvironment, RejectsReservedCellId) {
  RadioEnvironment env;
  EXPECT_THROW(env.add_cell(Cell{0, {0, 0}, "bad"}), std::invalid_argument);
}

TEST(UeRadio, AcquiresAndHandsOverAlongLine) {
  sim::Simulator sim;
  RadioEnvironment env;
  const double spacing = 1000.0;
  for (int i = 0; i < 5; ++i) {
    env.add_cell(Cell{static_cast<CellId>(i + 1), {spacing * i, 0}, "op"});
  }
  UeRadio radio(sim, env, Trajectory::line(4000.0, 20.0));
  std::vector<std::pair<CellId, CellId>> events;
  radio.start([&](CellId from, CellId to) { events.push_back({from, to}); });
  sim.run_for(Duration::s(210));
  radio.stop();

  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events[0].first, 0u);  // initial acquisition
  EXPECT_EQ(events[0].second, 1u);
  // Monotonic progression through the cells.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].first, events[i - 1].second);
    EXPECT_EQ(events[i].second, events[i].first + 1);
  }
}

TEST(UeRadio, HysteresisDelaysHandoverPastMidpoint) {
  sim::Simulator sim;
  RadioEnvironment env;
  env.add_cell(Cell{1, {0, 0}, "op"});
  env.add_cell(Cell{2, {1000, 0}, "op"});
  UeRadio radio(sim, env, Trajectory::line(1000.0, 10.0));
  double handover_x = -1;
  radio.start([&](CellId, CellId to) {
    if (to == 2) handover_x = radio.position().x;
  });
  sim.run_for(Duration::s(100));
  radio.stop();
  ASSERT_GT(handover_x, 0.0);
  EXPECT_GT(handover_x, 500.0);  // strictly past the midpoint (3 dB margin)
  EXPECT_LT(handover_x, 850.0);
}

// MTTHO calibration property: spacing / speed ~= measured MTTHO.
struct MtthoCase {
  double spacing;
  double speed;
};
class MtthoSweep : public ::testing::TestWithParam<MtthoCase> {};

TEST_P(MtthoSweep, MatchesGeometry) {
  const auto [spacing, speed] = GetParam();
  sim::Simulator sim;
  RadioEnvironment env;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    env.add_cell(Cell{static_cast<CellId>(i + 1), {spacing * i, 0}, "op"});
  }
  UeRadio radio(sim, env, Trajectory::line(spacing * (n - 1), speed));
  radio.start(nullptr);
  const double drive_s = spacing * (n - 1) / speed;
  sim.run_for(Duration::seconds(drive_s));
  radio.stop();
  const auto handovers = radio.cell_changes() - 1;
  ASSERT_GT(handovers, 0u);
  const double mttho = drive_s / static_cast<double>(handovers);
  EXPECT_NEAR(mttho, spacing / speed, 0.25 * spacing / speed);
}

INSTANTIATE_TEST_SUITE_P(Geometries, MtthoSweep,
                         ::testing::Values(MtthoCase{900, 12.2}, MtthoCase{700, 10.3},
                                           MtthoCase{1400, 31.3}, MtthoCase{1400, 54.9}));

TEST(RatePolicy, SamplesWithinBounds) {
  Rng rng(1);
  const RatePolicy day = RatePolicy::day();
  Summary s;
  for (int i = 0; i < 5000; ++i) {
    const double v = day.sample(rng);
    EXPECT_GE(v, day.min_bps);
    EXPECT_LE(v, day.max_bps);
    s.add(v);
  }
  EXPECT_NEAR(s.mean(), day.mean_bps, 0.15e6);
}

TEST(RatePolicy, NightIsMuchFasterThanDay) {
  Rng rng(2);
  double day_sum = 0, night_sum = 0;
  for (int i = 0; i < 2000; ++i) {
    day_sum += RatePolicy::day().sample(rng);
    night_sum += RatePolicy::night().sample(rng);
  }
  // Appendix A: ~14.5x faster at night.
  EXPECT_GT(night_sum / day_sum, 8.0);
}

TEST(BearerShaper, AppliesPolicyToLink) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Node* a = net.add_node("a");
  net::Node* b = net.add_node("b");
  net::Link* link = net.connect(a, b, net::LinkParams{.rate_bps = 100e6});
  BearerShaper shaper(sim, *link, a, RatePolicy::day(), nullptr);
  sim.run_for(Duration::s(2));
  const double rate = link->params(a).rate_bps;
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(rate, RatePolicy::day().max_bps);
  // Symmetric shaping.
  EXPECT_DOUBLE_EQ(link->params(b).rate_bps, rate);
}

TEST(BearerShaper, QosCapWins) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Node* a = net.add_node("a");
  net::Node* b = net.add_node("b");
  net::Link* link = net.connect(a, b, net::LinkParams{.rate_bps = 100e6});
  BearerShaper shaper(sim, *link, a, RatePolicy::night(), nullptr);
  shaper.set_cap_bps(1e6);
  sim.run_for(Duration::s(3));
  EXPECT_LE(link->params(a).rate_bps, 1e6 + 1.0);
}

TEST(BearerShaper, PhyLimitApplies) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Node* a = net.add_node("a");
  net::Node* b = net.add_node("b");
  net::Link* link = net.connect(a, b, net::LinkParams{});
  BearerShaper shaper(sim, *link, a, RatePolicy::night(), [] { return 3e6; });
  sim.run_for(Duration::s(2));
  EXPECT_LE(link->params(a).rate_bps, 3e6 + 1.0);
  EXPECT_GT(link->params(a).rate_bps, 0.0);
}

}  // namespace
}  // namespace cb::ran
