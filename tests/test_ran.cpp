// RAN tests: trajectories, path loss / rate model, cell selection with
// hysteresis, handover cadence (MTTHO calibration), rate policies, the
// measurement channel (shadowing/fading), reselection-policy A/B properties,
// and drive-test trace record/replay (including the committed fixtures under
// tests/data/).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>

#include "check/trace_io.hpp"
#include "common/stats.hpp"
#include "net/network.hpp"
#include "ran/channel.hpp"
#include "ran/drive_trace.hpp"
#include "ran/radio.hpp"
#include "ran/rate_policy.hpp"
#include "ran/trajectory.hpp"
#include "ran/ue_radio.hpp"
#include "sim/simulator.hpp"
#include "test_seed.hpp"

namespace cb::ran {
namespace {

TEST(Trajectory, LinePositions) {
  Trajectory t = Trajectory::line(1000.0, 10.0);
  EXPECT_EQ(t.position(Duration::zero()).x, 0.0);
  EXPECT_NEAR(t.position(Duration::s(50)).x, 500.0, 1e-9);
  EXPECT_NEAR(t.position(Duration::s(100)).x, 1000.0, 1e-9);
  // Clamped at the end.
  EXPECT_NEAR(t.position(Duration::s(500)).x, 1000.0, 1e-9);
  EXPECT_NEAR(t.duration().to_seconds(), 100.0, 1e-9);
}

TEST(Trajectory, MultiSegmentPath) {
  Trajectory t({{0, 0}, {100, 0}, {100, 100}}, 10.0);
  EXPECT_NEAR(t.length(), 200.0, 1e-9);
  const Point mid = t.position(Duration::s(15));  // 150 m in
  EXPECT_NEAR(mid.x, 100.0, 1e-9);
  EXPECT_NEAR(mid.y, 50.0, 1e-9);
}

TEST(Trajectory, RejectsBadArguments) {
  EXPECT_THROW(Trajectory({}, 10.0), std::invalid_argument);
  EXPECT_THROW(Trajectory({{0, 0}}, 0.0), std::invalid_argument);
}

TEST(RadioModel, PathLossIncreasesWithDistance) {
  EXPECT_LT(RadioEnvironment::path_loss_db(100), RadioEnvironment::path_loss_db(1000));
  EXPECT_LT(RadioEnvironment::path_loss_db(1000), RadioEnvironment::path_loss_db(5000));
}

TEST(RadioModel, RateDecreasesWithDistance) {
  Cell c{1, {0, 0}, "op", 43.0, 20e6};
  const double near = RadioEnvironment::achievable_rate_bps(c, {100, 0});
  const double mid = RadioEnvironment::achievable_rate_bps(c, {1000, 0});
  const double far = RadioEnvironment::achievable_rate_bps(c, {3000, 0});
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
  // Near-cell rate hits the spectral-efficiency cap: 4.8 b/s/Hz * 20 MHz.
  EXPECT_NEAR(near, 4.8 * 20e6, 1e3);
}

TEST(RadioEnvironment, ScanOrdersByStrength) {
  RadioEnvironment env;
  env.add_cell(Cell{1, {0, 0}, "a"});
  env.add_cell(Cell{2, {500, 0}, "b"});
  env.add_cell(Cell{3, {5000, 0}, "c"});
  const auto scan = env.scan({400, 0});
  ASSERT_GE(scan.size(), 2u);
  EXPECT_EQ(scan[0].cell, 2u);  // closest
  EXPECT_EQ(scan[1].cell, 1u);
  EXPECT_EQ(env.best({400, 0}).cell, 2u);
}

TEST(RadioEnvironment, OutOfCoverageReturnsZero) {
  RadioEnvironment env;
  env.add_cell(Cell{1, {0, 0}, "a"});
  EXPECT_EQ(env.best({200000, 0}).cell, 0u);
}

TEST(RadioEnvironment, RejectsReservedCellId) {
  RadioEnvironment env;
  EXPECT_THROW(env.add_cell(Cell{0, {0, 0}, "bad"}), std::invalid_argument);
}

TEST(UeRadio, AcquiresAndHandsOverAlongLine) {
  sim::Simulator sim;
  RadioEnvironment env;
  const double spacing = 1000.0;
  for (int i = 0; i < 5; ++i) {
    env.add_cell(Cell{static_cast<CellId>(i + 1), {spacing * i, 0}, "op"});
  }
  UeRadio radio(sim, env, Trajectory::line(4000.0, 20.0));
  std::vector<std::pair<CellId, CellId>> events;
  radio.start([&](CellId from, CellId to) { events.push_back({from, to}); });
  sim.run_for(Duration::s(210));
  radio.stop();

  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events[0].first, 0u);  // initial acquisition
  EXPECT_EQ(events[0].second, 1u);
  // Monotonic progression through the cells.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].first, events[i - 1].second);
    EXPECT_EQ(events[i].second, events[i].first + 1);
  }
}

TEST(UeRadio, HysteresisDelaysHandoverPastMidpoint) {
  sim::Simulator sim;
  RadioEnvironment env;
  env.add_cell(Cell{1, {0, 0}, "op"});
  env.add_cell(Cell{2, {1000, 0}, "op"});
  UeRadio radio(sim, env, Trajectory::line(1000.0, 10.0));
  double handover_x = -1;
  radio.start([&](CellId, CellId to) {
    if (to == 2) handover_x = radio.position().x;
  });
  sim.run_for(Duration::s(100));
  radio.stop();
  ASSERT_GT(handover_x, 0.0);
  EXPECT_GT(handover_x, 500.0);  // strictly past the midpoint (3 dB margin)
  EXPECT_LT(handover_x, 850.0);
}

// MTTHO calibration property: spacing / speed ~= measured MTTHO.
struct MtthoCase {
  double spacing;
  double speed;
};
class MtthoSweep : public ::testing::TestWithParam<MtthoCase> {};

TEST_P(MtthoSweep, MatchesGeometry) {
  const auto [spacing, speed] = GetParam();
  sim::Simulator sim;
  RadioEnvironment env;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    env.add_cell(Cell{static_cast<CellId>(i + 1), {spacing * i, 0}, "op"});
  }
  UeRadio radio(sim, env, Trajectory::line(spacing * (n - 1), speed));
  radio.start(nullptr);
  const double drive_s = spacing * (n - 1) / speed;
  sim.run_for(Duration::seconds(drive_s));
  radio.stop();
  const auto handovers = radio.cell_changes() - 1;
  ASSERT_GT(handovers, 0u);
  const double mttho = drive_s / static_cast<double>(handovers);
  EXPECT_NEAR(mttho, spacing / speed, 0.25 * spacing / speed);
}

INSTANTIATE_TEST_SUITE_P(Geometries, MtthoSweep,
                         ::testing::Values(MtthoCase{900, 12.2}, MtthoCase{700, 10.3},
                                           MtthoCase{1400, 31.3}, MtthoCase{1400, 54.9}));

TEST(Trajectory, TimedWaypointsReturnExactKnotsAndInterpolate) {
  Trajectory t({TimedPoint{Duration::s(0), {0, 0}},
                TimedPoint{Duration::s(10), {100, 0}},
                TimedPoint{Duration::s(30), {100, 50}}});
  // Knots replay bit-exactly (the drive-trace replay contract).
  EXPECT_EQ(t.position(Duration::s(0)).x, 0.0);
  EXPECT_EQ(t.position(Duration::s(10)).x, 100.0);
  EXPECT_EQ(t.position(Duration::s(30)).y, 50.0);
  // Linear time interpolation between knots; clamped outside the window.
  EXPECT_NEAR(t.position(Duration::s(5)).x, 50.0, 1e-9);
  EXPECT_NEAR(t.position(Duration::s(20)).y, 25.0, 1e-9);
  EXPECT_EQ(t.position(Duration::s(500)).y, 50.0);
  EXPECT_NEAR(t.duration().to_seconds(), 30.0, 1e-12);
}

TEST(Trajectory, TimedWaypointsRejectNonIncreasingTimes) {
  EXPECT_THROW(Trajectory(std::vector<TimedPoint>{}), std::invalid_argument);
  EXPECT_THROW(Trajectory({TimedPoint{Duration::s(5), {0, 0}},
                           TimedPoint{Duration::s(5), {1, 0}}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Measurement channel
// ---------------------------------------------------------------------------

TEST(Channel, NoiselessIsBitIdenticalToPathLoss) {
  Channel quiet;  // all defaults: sigma 0, fading off
  const Cell c{1, {0, 0}, "op"};
  for (double x : {50.0, 431.7, 1200.0, 9000.0}) {
    const Point p{x, 120.0};
    EXPECT_EQ(quiet.rsrp_dbm(c, 1, p, TimePoint::from_nanos(123456789)),
              RadioEnvironment::rsrp_dbm(c, p));
  }
}

TEST(Channel, ShadowingIsAPureFunctionOfItsInputs) {
  ChannelConfig cfg;
  cfg.shadow_sigma_db = 6.0;
  cfg.seed = 99;
  const Channel a(cfg);
  const Channel b(cfg);
  const Point p{321.5, -40.25};
  EXPECT_EQ(a.shadowing_db(7, 3, p), b.shadowing_db(7, 3, p));
  // Seed, UE, and cell all key independent fields.
  ChannelConfig other = cfg;
  other.seed = 100;
  EXPECT_NE(Channel(other).shadowing_db(7, 3, p), a.shadowing_db(7, 3, p));
  EXPECT_NE(a.shadowing_db(8, 3, p), a.shadowing_db(7, 3, p));
  EXPECT_NE(a.shadowing_db(7, 4, p), a.shadowing_db(7, 3, p));
}

TEST(Channel, ShadowingDecorrelatesWithDistance) {
  const std::uint64_t seed = cb::test::seed_or(2024);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
  ChannelConfig cfg;
  cfg.shadow_sigma_db = 8.0;
  cfg.decorrelation_m = 50.0;
  cfg.seed = seed;
  const Channel ch(cfg);
  double near_diff = 0.0;
  double far_diff = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const Point p{37.0 * i, 11.0 * i};
    const double here = ch.shadowing_db(1, 1, p);
    near_diff += std::abs(ch.shadowing_db(1, 1, {p.x + 5.0, p.y}) - here);
    far_diff += std::abs(ch.shadowing_db(1, 1, {p.x + 500.0, p.y}) - here);
  }
  // 5 m apart shares lattice corners (correlated); 500 m apart (10 lattice
  // cells) is an independent draw.
  EXPECT_LT(near_diff / n, 0.5 * far_diff / n);
}

TEST(Channel, FastFadingVariesPerInstantShadowingDoesNot) {
  ChannelConfig cfg;
  cfg.shadow_sigma_db = 6.0;
  cfg.fast_fading = true;
  cfg.fading_sigma_db = 2.0;
  cfg.seed = 5;
  const Channel ch(cfg);
  const Point p{700.0, 0.0};
  EXPECT_EQ(ch.shadowing_db(1, 2, p), ch.shadowing_db(1, 2, p));
  const Cell c{2, {0, 0}, "op"};
  const double r1 = ch.rsrp_dbm(c, 1, p, TimePoint::from_nanos(200'000'000));
  const double r2 = ch.rsrp_dbm(c, 1, p, TimePoint::from_nanos(400'000'000));
  EXPECT_NE(r1, r2) << "fading must re-draw per measurement instant";
  EXPECT_EQ(r1, ch.rsrp_dbm(c, 1, p, TimePoint::from_nanos(200'000'000)))
      << "same instant must replay bit-exactly";
}

// ---------------------------------------------------------------------------
// Differential: noise-free measurement pipeline vs the geometric engine
// ---------------------------------------------------------------------------

// With all measurement knobs at their defaults the L3/policy pipeline must
// reproduce the pure path-loss engine decision-for-decision: same ticks, same
// serving-cell sequence, bit-exact. This is the unit-level twin of the frozen
// chaos fingerprint in test_faults.cpp.
TEST(Differential, NoiseFreePipelineMatchesGeometricReference) {
  const double spacing = 1000.0;
  const int n = 8;
  const double speed = 15.0;
  RadioEnvironment env;
  for (int i = 0; i < n; ++i) {
    env.add_cell(Cell{static_cast<CellId>(i + 1), {spacing * i, 0}, "op"});
  }
  sim::Simulator sim;
  UeRadioConfig cfg;  // defaults: quiet channel, k = 0, A3 hysteresis
  UeRadio radio(sim, env, Trajectory::line(spacing * (n - 1), speed), cfg);
  radio.start(nullptr);
  const double horizon_s = spacing * (n - 1) / speed;
  sim.run_for(Duration::seconds(horizon_s));
  radio.stop();

  // Reference: the pre-measurement engine, replayed inline from geometry.
  const Trajectory traj = Trajectory::line(spacing * (n - 1), speed);
  struct Change {
    std::int64_t at_ns;
    CellId from, to;
  };
  std::vector<Change> expected;
  CellId serving = 0;
  for (Duration t = Duration::zero(); t.to_seconds() <= horizon_s;
       t = t + cfg.measurement_interval) {
    const Point pos = traj.position(t);
    const Measurement best = env.best(pos, cfg.floor_dbm);
    CellId next = serving;
    if (serving == 0) {
      next = best.cell;
    } else {
      const double sv = RadioEnvironment::rsrp_dbm(env.cell(serving), pos);
      if (sv < cfg.floor_dbm) {
        next = best.cell;
      } else if (best.cell != 0 && best.cell != serving &&
                 best.rsrp_dbm > sv + cfg.hysteresis_db) {
        next = best.cell;
      }
    }
    if (next != serving) {
      expected.push_back(Change{t.nanos(), serving, next});
      serving = next;
    }
  }

  const auto& got = radio.reselections();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].at.nanos(), expected[i].at_ns);
    EXPECT_EQ(got[i].from, expected[i].from);
    EXPECT_EQ(got[i].to, expected[i].to);
  }
}

// ---------------------------------------------------------------------------
// Reselection-policy properties (noisy channel, >= 40 seeds)
// ---------------------------------------------------------------------------

struct PolicyStats {
  std::uint64_t changes = 0;
  std::uint64_t pingpongs = 0;  // re-reselection back to the prior cell within the window
};

PolicyStats run_noisy_drive(std::uint64_t channel_seed, ReselectionPolicyKind policy,
                            Duration ttt, double hysteresis_db, int l3_k,
                            double pingpong_window_s) {
  sim::Simulator sim;
  RadioEnvironment env;
  const double spacing = 600.0;
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    env.add_cell(Cell{static_cast<CellId>(i + 1), {spacing * i, 0}, "op"});
  }
  UeRadioConfig cfg;
  cfg.policy = policy;
  cfg.time_to_trigger = ttt;
  cfg.hysteresis_db = hysteresis_db;
  cfg.l3_filter_k = l3_k;
  cfg.channel.shadow_sigma_db = 6.0;
  cfg.channel.decorrelation_m = 60.0;
  cfg.channel.fast_fading = true;
  cfg.channel.fading_sigma_db = 3.0;
  cfg.channel.seed = channel_seed;
  UeRadio radio(sim, env, Trajectory::line(spacing * (n - 1), 10.0), cfg);
  radio.start(nullptr);
  sim.run_for(Duration::seconds(spacing * (n - 1) / 10.0));
  radio.stop();

  PolicyStats st;
  st.changes = radio.cell_changes();
  const auto& ev = radio.reselections();
  const Duration window = Duration::seconds(pingpong_window_s);
  for (std::size_t i = 1; i < ev.size(); ++i) {
    if (ev[i].to == ev[i - 1].from && ev[i].at - ev[i - 1].at <= window) ++st.pingpongs;
  }
  return st;
}

TEST(PolicyProperties, TimeToTriggerDampsPingPong) {
  const std::uint64_t base = cb::test::seed_or(31000);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << base);
  const Duration ttt = Duration::ms(480);
  const double window_s = 2.0 * ttt.to_seconds();  // ping-pong: flip-back within 2xTTT
  std::uint64_t a3_pingpongs = 0;
  std::uint64_t ttt_pingpongs = 0;
  std::uint64_t ttt_changes = 0;
  for (std::uint64_t seed = base; seed < base + 40; ++seed) {
    a3_pingpongs += run_noisy_drive(seed, ReselectionPolicyKind::A3Hysteresis,
                                    Duration::zero(), 1.0, 0, window_s)
                        .pingpongs;
    const PolicyStats t = run_noisy_drive(seed, ReselectionPolicyKind::A3TimeToTrigger, ttt,
                                          1.0, 0, window_s);
    ttt_pingpongs += t.pingpongs;
    ttt_changes += t.changes;
  }
  // The undamped A3 run on this channel ping-pongs; TTT keeps the rate both
  // strictly below the TTT-off rate and bounded in absolute terms.
  EXPECT_GT(a3_pingpongs, 0u);
  EXPECT_LT(ttt_pingpongs, a3_pingpongs);
  EXPECT_LE(static_cast<double>(ttt_pingpongs) / static_cast<double>(std::max<std::uint64_t>(
                                                     ttt_changes, 1)),
            0.25)
      << "TTT ping-pong fraction out of bounds (pingpongs=" << ttt_pingpongs
      << " changes=" << ttt_changes << ")";
}

TEST(PolicyProperties, RaisingHysteresisNeverAddsCellChanges) {
  const std::uint64_t base = cb::test::seed_or(32000);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << base);
  const double levels[] = {0.5, 2.0, 4.0, 7.0};
  std::uint64_t total_prev = 0;
  std::uint64_t total_cur = 0;
  int per_seed_violations = 0;
  for (std::uint64_t seed = base; seed < base + 40; ++seed) {
    std::uint64_t prev = 0;
    for (std::size_t li = 0; li < std::size(levels); ++li) {
      const std::uint64_t changes =
          run_noisy_drive(seed, ReselectionPolicyKind::A3Hysteresis, Duration::zero(),
                          levels[li], 4, 1.0)
              .changes;
      if (li > 0) {
        total_prev += prev;
        total_cur += changes;
        // A wider margin is a strictly harder trigger at any fixed state, but
        // diverging serving sequences can produce rare per-seed inversions;
        // count them instead of asserting each.
        if (changes > prev) ++per_seed_violations;
      }
      prev = changes;
    }
  }
  EXPECT_LT(total_cur, total_prev) << "raising hysteresis must reduce churn in aggregate";
  EXPECT_LE(per_seed_violations, 6) << "hysteresis monotonicity violated too often";
}

TEST(PolicyProperties, FadingRunsReplayBitIdentically) {
  const std::uint64_t seed = cb::test::seed_or(33000);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
  auto run_once = [&](DriveTestTrace& trace) {
    sim::Simulator sim;
    RadioEnvironment env;
    for (int i = 0; i < 5; ++i) {
      env.add_cell(Cell{static_cast<CellId>(i + 1), {700.0 * i, 0}, "op"});
    }
    UeRadioConfig cfg;
    cfg.channel.shadow_sigma_db = 5.0;
    cfg.channel.fast_fading = true;
    cfg.channel.seed = seed;
    cfg.l3_filter_k = 4;
    UeRadio radio(sim, env, Trajectory::line(2800.0, 14.0), cfg);
    radio.set_drive_sink(&trace);
    radio.start(nullptr);
    sim.run_for(Duration::s(200));
    radio.stop();
  };
  DriveTestTrace a;
  DriveTestTrace b;
  run_once(a);
  run_once(b);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].at.nanos(), b.samples[i].at.nanos());
    EXPECT_EQ(a.samples[i].serving, b.samples[i].serving);
    ASSERT_EQ(a.samples[i].neighbors.size(), b.samples[i].neighbors.size());
    for (std::size_t j = 0; j < a.samples[i].neighbors.size(); ++j) {
      EXPECT_EQ(a.samples[i].neighbors[j].cell, b.samples[i].neighbors[j].cell);
      // Bitwise, not approximate: the channel is a pure hash of its inputs.
      EXPECT_EQ(a.samples[i].neighbors[j].rsrp_dbm, b.samples[i].neighbors[j].rsrp_dbm);
      EXPECT_EQ(a.samples[i].neighbors[j].filtered_dbm, b.samples[i].neighbors[j].filtered_dbm);
    }
  }
  ASSERT_EQ(a.reselections.size(), b.reselections.size());
}

// ---------------------------------------------------------------------------
// Drive-test traces: record -> JSON -> replay
// ---------------------------------------------------------------------------

DriveTestTrace replay_drive(const DriveTestTrace& trace) {
  RadioEnvironment env;
  for (const Cell& c : trace.cells) env.add_cell(c);
  sim::Simulator sim;
  UeRadio radio(sim, env, trace.trajectory(), trace.config);
  DriveTestTrace out;
  radio.set_drive_sink(&out);
  radio.start(nullptr);
  // +1ms guarantees the final recorded tick executes regardless of the
  // horizon's inclusivity; the next tick lands past it either way.
  sim.run_for(trace.samples.back().at + Duration::ms(1));
  radio.stop();
  return out;
}

void expect_trace_equal(const DriveTestTrace& a, const DriveTestTrace& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "sample " << i);
    EXPECT_EQ(a.samples[i].at.nanos(), b.samples[i].at.nanos());
    EXPECT_EQ(a.samples[i].position.x, b.samples[i].position.x);
    EXPECT_EQ(a.samples[i].position.y, b.samples[i].position.y);
    EXPECT_EQ(a.samples[i].serving, b.samples[i].serving);
    ASSERT_EQ(a.samples[i].neighbors.size(), b.samples[i].neighbors.size());
    for (std::size_t j = 0; j < a.samples[i].neighbors.size(); ++j) {
      EXPECT_EQ(a.samples[i].neighbors[j].cell, b.samples[i].neighbors[j].cell);
      EXPECT_EQ(a.samples[i].neighbors[j].rsrp_dbm, b.samples[i].neighbors[j].rsrp_dbm);
      EXPECT_EQ(a.samples[i].neighbors[j].filtered_dbm, b.samples[i].neighbors[j].filtered_dbm);
    }
  }
  ASSERT_EQ(a.reselections.size(), b.reselections.size());
  for (std::size_t i = 0; i < a.reselections.size(); ++i) {
    EXPECT_EQ(a.reselections[i].at.nanos(), b.reselections[i].at.nanos());
    EXPECT_EQ(a.reselections[i].from, b.reselections[i].from);
    EXPECT_EQ(a.reselections[i].to, b.reselections[i].to);
  }
  EXPECT_EQ(a.mttho_s(), b.mttho_s());
}

TEST(DriveTrace, JsonRoundTripReplaysBitExactly) {
  sim::Simulator sim;
  RadioEnvironment env;
  for (int i = 0; i < 6; ++i) {
    env.add_cell(Cell{static_cast<CellId>(i + 1), {800.0 * i, 0}, "op-" + std::to_string(i)});
  }
  UeRadioConfig cfg;
  cfg.policy = ReselectionPolicyKind::A3TimeToTrigger;
  cfg.time_to_trigger = Duration::ms(400);
  cfg.l3_filter_k = 4;
  cfg.channel.shadow_sigma_db = 4.0;
  cfg.channel.fast_fading = true;
  cfg.channel.seed = 9090;
  UeRadio radio(sim, env, Trajectory::line(4000.0, 16.0), cfg);
  DriveTestTrace recorded;
  radio.set_drive_sink(&recorded);
  radio.start(nullptr);
  sim.run_for(Duration::s(250));
  radio.stop();
  ASSERT_GE(recorded.reselections.size(), 2u);

  const std::string doc = check::write_trace(recorded);
  const DriveTestTrace loaded = check::load_trace(doc);
  expect_trace_equal(recorded, loaded);

  // Replaying the loaded trace over its own cell layout and config must make
  // the exact recorded decisions — positions, RSRP, and reselections.
  expect_trace_equal(recorded, replay_drive(loaded));
  // And the JSON itself is a serialization fixpoint.
  EXPECT_EQ(check::write_trace(loaded), doc);
}

// ---------------------------------------------------------------------------
// Committed fixtures (tests/data). Regenerate with CB_REGEN_FIXTURES=1.
// ---------------------------------------------------------------------------

std::string fixture_path(const char* name) {
  return std::string(CB_TEST_DATA_DIR) + "/" + name;
}

// Two cells, UE dithering across the midpoint on a noisy channel under the
// rank strawman: a ping-pong storm.
DriveTestTrace record_pingpong_fixture() {
  sim::Simulator sim;
  RadioEnvironment env;
  env.add_cell(Cell{1, {0, 0}, "btelco-0"});
  env.add_cell(Cell{2, {600, 0}, "btelco-1"});
  UeRadioConfig cfg;
  cfg.policy = ReselectionPolicyKind::RankBased;
  cfg.channel.shadow_sigma_db = 5.0;
  cfg.channel.fast_fading = true;
  cfg.channel.fading_sigma_db = 3.0;
  cfg.channel.seed = 77;  // fixture input, not sampled randomness
  UeRadio radio(sim, env, Trajectory({{290, 0}, {310, 0}}, 0.25), cfg);
  DriveTestTrace trace;
  radio.set_drive_sink(&trace);
  radio.start(nullptr);
  sim.run_for(Duration::s(80));
  radio.stop();
  return trace;
}

// Two towers 24 km apart: the path loss floor carves a multi-km coverage
// hole mid-route — serving drops to 0, then the far tower is reacquired.
DriveTestTrace record_coverage_hole_fixture() {
  sim::Simulator sim;
  RadioEnvironment env;
  env.add_cell(Cell{1, {0, 0}, "btelco-0"});
  env.add_cell(Cell{2, {24000, 0}, "btelco-1"});
  UeRadioConfig cfg;
  cfg.channel.shadow_sigma_db = 3.0;
  cfg.channel.seed = 424242;
  UeRadio radio(sim, env, Trajectory::line(24000.0, 240.0), cfg);
  DriveTestTrace trace;
  radio.set_drive_sink(&trace);
  radio.start(nullptr);
  sim.run_for(Duration::s(100));
  radio.stop();
  return trace;
}

TEST(DriveTraceFixtures, RegenerateWhenRequested) {
  if (std::getenv("CB_REGEN_FIXTURES") == nullptr) {
    GTEST_SKIP() << "set CB_REGEN_FIXTURES=1 to rewrite tests/data fixtures";
  }
  for (const auto& [name, trace] :
       {std::pair<const char*, DriveTestTrace>{"drivetest_pingpong.json",
                                               record_pingpong_fixture()},
        std::pair<const char*, DriveTestTrace>{"drivetest_coverage_hole.json",
                                               record_coverage_hole_fixture()}}) {
    std::ofstream out(fixture_path(name));
    ASSERT_TRUE(out) << "cannot write " << fixture_path(name);
    out << check::write_trace(trace) << "\n";
  }
}

DriveTestTrace load_fixture(const char* name) {
  std::ifstream in(fixture_path(name));
  EXPECT_TRUE(in) << "missing fixture " << fixture_path(name)
                  << " (regenerate with CB_REGEN_FIXTURES=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  return check::load_trace(buf.str());
}

TEST(DriveTraceFixtures, PingPongFixtureReplaysIdentically) {
  const DriveTestTrace fixture = load_fixture("drivetest_pingpong.json");
  ASSERT_FALSE(fixture.samples.empty());
  // The strawman really ping-pongs: at least one immediate flip-back.
  std::size_t flips = 0;
  for (std::size_t i = 1; i < fixture.reselections.size(); ++i) {
    if (fixture.reselections[i].to == fixture.reselections[i - 1].from &&
        (fixture.reselections[i].at - fixture.reselections[i - 1].at) <= Duration::s(1)) {
      ++flips;
    }
  }
  EXPECT_GE(flips, 3u);
  expect_trace_equal(fixture, replay_drive(fixture));
}

TEST(DriveTraceFixtures, CoverageHoleFixtureShowsOutageAndRecovery) {
  const DriveTestTrace fixture = load_fixture("drivetest_coverage_hole.json");
  ASSERT_FALSE(fixture.samples.empty());
  bool camped = false;
  bool outage_after_camped = false;
  bool recovered = false;
  for (const auto& s : fixture.samples) {
    if (s.serving != 0 && !outage_after_camped) camped = true;
    if (s.serving == 0 && camped) outage_after_camped = true;
    if (s.serving != 0 && outage_after_camped) recovered = true;
  }
  EXPECT_TRUE(camped);
  EXPECT_TRUE(outage_after_camped) << "route must cross a coverage hole";
  EXPECT_TRUE(recovered) << "the far tower must be reacquired";
  expect_trace_equal(fixture, replay_drive(fixture));
}

TEST(RatePolicy, SamplesWithinBounds) {
  Rng rng(1);
  const RatePolicy day = RatePolicy::day();
  Summary s;
  for (int i = 0; i < 5000; ++i) {
    const double v = day.sample(rng);
    EXPECT_GE(v, day.min_bps);
    EXPECT_LE(v, day.max_bps);
    s.add(v);
  }
  EXPECT_NEAR(s.mean(), day.mean_bps, 0.15e6);
}

TEST(RatePolicy, NightIsMuchFasterThanDay) {
  Rng rng(2);
  double day_sum = 0, night_sum = 0;
  for (int i = 0; i < 2000; ++i) {
    day_sum += RatePolicy::day().sample(rng);
    night_sum += RatePolicy::night().sample(rng);
  }
  // Appendix A: ~14.5x faster at night.
  EXPECT_GT(night_sum / day_sum, 8.0);
}

TEST(BearerShaper, AppliesPolicyToLink) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Node* a = net.add_node("a");
  net::Node* b = net.add_node("b");
  net::Link* link = net.connect(a, b, net::LinkParams{.rate_bps = 100e6});
  BearerShaper shaper(sim, *link, a, RatePolicy::day(), nullptr);
  sim.run_for(Duration::s(2));
  const double rate = link->params(a).rate_bps;
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(rate, RatePolicy::day().max_bps);
  // Symmetric shaping.
  EXPECT_DOUBLE_EQ(link->params(b).rate_bps, rate);
}

TEST(BearerShaper, QosCapWins) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Node* a = net.add_node("a");
  net::Node* b = net.add_node("b");
  net::Link* link = net.connect(a, b, net::LinkParams{.rate_bps = 100e6});
  BearerShaper shaper(sim, *link, a, RatePolicy::night(), nullptr);
  shaper.set_cap_bps(1e6);
  sim.run_for(Duration::s(3));
  EXPECT_LE(link->params(a).rate_bps, 1e6 + 1.0);
}

TEST(BearerShaper, PhyLimitApplies) {
  sim::Simulator sim;
  net::Network net(sim);
  net::Node* a = net.add_node("a");
  net::Node* b = net.add_node("b");
  net::Link* link = net.connect(a, b, net::LinkParams{});
  BearerShaper shaper(sim, *link, a, RatePolicy::night(), [] { return 3e6; });
  sim.run_for(Duration::s(2));
  EXPECT_LE(link->params(a).rate_bps, 3e6 + 1.0);
  EXPECT_GT(link->params(a).rate_bps, 0.0);
}

}  // namespace
}  // namespace cb::ran
