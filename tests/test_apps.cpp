// Application-workload tests over a simple two-host topology: iperf (both
// directions), ping, VoIP MOS behaviour, HLS ABR adaptation, and web loads.
#include <gtest/gtest.h>

#include "apps/iperf.hpp"
#include "apps/ping.hpp"
#include "apps/video.hpp"
#include "apps/voip.hpp"
#include "apps/web.hpp"
#include "net/network.hpp"

namespace cb::apps {
namespace {

struct AppWorld {
  explicit AppWorld(net::LinkParams link = {.rate_bps = 10e6, .delay = Duration::ms(20)},
                    std::uint64_t seed = 1)
      : sim(seed), network(sim) {
    client = network.add_node("client");
    server = network.add_node("server");
    network.register_address(net::Ipv4Addr(10, 0, 0, 1), client);
    network.register_address(net::Ipv4Addr(1, 1, 1, 1), server);
    this->link = network.connect(client, server, link);
    network.recompute_routes();
    client_tcp = std::make_unique<transport::TcpStack>(*client);
    server_tcp = std::make_unique<transport::TcpStack>(*server);
  }
  net::EndPoint server_ep(std::uint16_t port) const {
    return {net::Ipv4Addr(1, 1, 1, 1), port};
  }

  sim::Simulator sim;
  net::Network network;
  net::Node *client, *server;
  net::Link* link;
  std::unique_ptr<transport::TcpStack> client_tcp;
  std::unique_ptr<transport::TcpStack> server_tcp;
};

TEST(Iperf, UploadMeasuresNearLinkRate) {
  AppWorld w;
  IperfSink sink(transport::make_tcp_transport(*w.server_tcp), 5001, w.sim);
  IperfSender sender(transport::make_tcp_transport(*w.client_tcp), w.server_ep(5001), w.sim,
                     Duration::s(20));
  w.sim.run_for(Duration::s(30));
  EXPECT_TRUE(sender.finished());
  EXPECT_GT(sink.mean_throughput_bps(), 6e6);
  EXPECT_LT(sink.mean_throughput_bps(), 10.5e6);
}

TEST(Iperf, DownloadMeasuresNearLinkRate) {
  AppWorld w;
  IperfPushServer server(transport::make_tcp_transport(*w.server_tcp), 5001, w.sim,
                         Duration::s(20));
  IperfDownloadClient client(transport::make_tcp_transport(*w.client_tcp), w.server_ep(5001),
                             w.sim);
  w.sim.run_for(Duration::s(30));
  EXPECT_GT(client.mean_throughput_bps(), 6e6);
  // The time series has roughly one bucket per second of transfer.
  EXPECT_GE(client.series().buckets(), 15u);
}

TEST(Ping, MeasuresRoundTrip) {
  AppWorld w;
  PingServer server(*w.server, 7);
  PingClient client(*w.client, w.server_ep(7), Duration::ms(200));
  client.start();
  w.sim.run_for(Duration::s(10));
  client.stop();
  ASSERT_GT(client.rtts_ms().count(), 20u);
  EXPECT_NEAR(client.rtts_ms().p50(), 40.0, 3.0);  // 2 x 20 ms
  EXPECT_EQ(client.lost(), 0u);
}

TEST(Ping, CountsLossOnDeadLink) {
  AppWorld w;
  PingServer server(*w.server, 7);
  PingClient client(*w.client, w.server_ep(7), Duration::ms(100), Duration::ms(500));
  client.start();
  w.sim.run_for(Duration::s(2));
  w.link->set_up(false);
  w.sim.run_for(Duration::s(2));
  w.link->set_up(true);
  w.sim.run_for(Duration::s(2));
  client.stop();
  w.sim.run_for(Duration::s(1));
  EXPECT_GT(client.lost(), 10u);
}

TEST(Voip, CleanCallScoresExcellent) {
  AppWorld w(net::LinkParams{.rate_bps = 10e6, .delay = Duration::ms(20)});
  VoipEndpoint callee(*w.server, 6000);
  VoipEndpoint caller(*w.client, 6000);
  caller.call(w.server_ep(6000));
  w.sim.run_for(Duration::s(30));
  caller.hang_up();
  callee.hang_up();
  // Both directions flowed (callee auto-answered).
  EXPECT_GT(caller.stats().received, 1000u);
  EXPECT_GT(callee.stats().received, 1000u);
  EXPECT_GT(caller.stats().mos(), 4.2);
  EXPECT_LT(caller.stats().loss_rate(), 0.01);
}

TEST(Voip, LossDegradesMos) {
  net::LinkParams lossy{.rate_bps = 10e6, .delay = Duration::ms(20)};
  lossy.loss = 0.08;
  AppWorld w(lossy);
  VoipEndpoint callee(*w.server, 6000);
  VoipEndpoint caller(*w.client, 6000);
  caller.call(w.server_ep(6000));
  w.sim.run_for(Duration::s(30));
  EXPECT_LT(caller.stats().mos(), 4.0);
  EXPECT_GT(caller.stats().loss_rate(), 0.03);
}

TEST(Voip, MosFormulaKnownPoints) {
  VoipStats clean;
  clean.received = 100;
  clean.expected = 100;
  clean.avg_delay_ms = 60.0;
  EXPECT_GT(clean.mos(), 4.3);

  VoipStats bad;
  bad.received = 70;
  bad.expected = 100;  // 30% loss
  bad.avg_delay_ms = 300.0;
  EXPECT_LT(bad.mos(), 2.0);
}

TEST(Voip, ReInviteFollowsNewSourceAddress) {
  AppWorld w;
  VoipEndpoint callee(*w.server, 6000);
  VoipEndpoint caller(*w.client, 6000);
  caller.call(w.server_ep(6000));
  w.sim.run_for(Duration::s(5));
  const auto before = callee.peer();

  // The client re-addresses (CellBricks re-attach).
  w.network.unregister_address(net::Ipv4Addr(10, 0, 0, 1));
  w.client->remove_address(net::Ipv4Addr(10, 0, 0, 1));
  w.network.register_address(net::Ipv4Addr(10, 9, 0, 1), w.client);
  w.network.recompute_routes();
  w.sim.run_for(Duration::s(5));

  EXPECT_NE(callee.peer(), before);
  EXPECT_EQ(callee.peer().addr, net::Ipv4Addr(10, 9, 0, 1));
  // The callee's return stream reaches the new address: caller keeps
  // receiving after the change.
  const auto received_before = caller.stats().received;
  w.sim.run_for(Duration::s(5));
  EXPECT_GT(caller.stats().received, received_before + 100);
}

TEST(Hls, FastLinkReachesTopQuality) {
  AppWorld w(net::LinkParams{.rate_bps = 20e6, .delay = Duration::ms(20)});
  HlsServer server(transport::make_tcp_transport(*w.server_tcp), 8080);
  HlsClient client(transport::make_tcp_transport(*w.client_tcp), w.server_ep(8080), w.sim);
  client.start();
  w.sim.run_for(Duration::s(120));
  client.stop();
  EXPECT_GT(client.segments_played(), 20u);
  EXPECT_GT(client.avg_quality_level(), 4.0);  // near the top of the ladder
  EXPECT_EQ(client.rebuffer_events(), 0u);
}

TEST(Hls, SlowLinkStaysAtLowQuality) {
  AppWorld w(net::LinkParams{.rate_bps = 0.6e6, .delay = Duration::ms(20)});
  HlsServer server(transport::make_tcp_transport(*w.server_tcp), 8080);
  HlsClient client(transport::make_tcp_transport(*w.client_tcp), w.server_ep(8080), w.sim);
  client.start();
  w.sim.run_for(Duration::s(120));
  client.stop();
  EXPECT_GT(client.segments_played(), 5u);
  EXPECT_LT(client.avg_quality_level(), 1.5);
}

TEST(Hls, AbrAdaptsWhenRateDrops) {
  AppWorld w(net::LinkParams{.rate_bps = 20e6, .delay = Duration::ms(20)});
  HlsServer server(transport::make_tcp_transport(*w.server_tcp), 8080);
  HlsClient client(transport::make_tcp_transport(*w.client_tcp), w.server_ep(8080), w.sim);
  client.start();
  w.sim.run_for(Duration::s(60));
  // Throttle hard.
  net::LinkParams slow{.rate_bps = 0.5e6, .delay = Duration::ms(20)};
  w.link->set_params(w.client, slow);
  w.link->set_params(w.server, slow);
  w.sim.run_for(Duration::s(120));
  client.stop();
  // Player kept going (buffering + downshift), maybe with a stall or two.
  EXPECT_GT(client.segments_played(), 20u);
  // It adapted instead of dying: some segments after the throttle played at
  // a level the slow link can sustain.
  EXPECT_LT(client.avg_quality_level(), 5.0);
}

TEST(Web, LoadTimeMatchesBandwidthMath) {
  AppWorld w(net::LinkParams{.rate_bps = 10e6, .delay = Duration::ms(20)});
  WebServer server(transport::make_tcp_transport(*w.server_tcp), 80);
  WebClient client(transport::make_tcp_transport(*w.client_tcp), w.server_ep(80), w.sim);
  client.start();
  w.sim.run_for(Duration::s(60));
  client.stop();
  ASSERT_GT(client.pages_loaded(), 5u);
  // 8 x 80 KB = 5.1 Mb over 10 Mb/s ~= 0.5 s + handshakes/slow start.
  EXPECT_GT(client.load_times_s().mean(), 0.4);
  EXPECT_LT(client.load_times_s().mean(), 3.0);
  EXPECT_EQ(client.pages_failed(), 0u);
}

TEST(Web, SlowerLinkSlowerPages) {
  auto run = [](double rate) {
    AppWorld w(net::LinkParams{.rate_bps = rate, .delay = Duration::ms(20)});
    WebServer server(transport::make_tcp_transport(*w.server_tcp), 80);
    WebClient client(transport::make_tcp_transport(*w.client_tcp), w.server_ep(80), w.sim);
    client.start();
    w.sim.run_for(Duration::s(120));
    client.stop();
    EXPECT_GT(client.pages_loaded(), 0u);
    return client.load_times_s().mean();
  };
  EXPECT_GT(run(1e6), run(10e6) * 2);
}

}  // namespace
}  // namespace cb::apps
