// Scenario-layer tests: route calibration, world construction invariants,
// determinism, the Fig.7 harness, attach storms, and a fast Table-1 cell.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/iperf.hpp"
#include "scenario/attach_experiment.hpp"
#include "scenario/table1.hpp"
#include "scenario/trial_runner.hpp"
#include "scenario/world.hpp"

namespace cb::scenario {
namespace {

TEST(Routes, MtthoCalibrationMatchesPaper) {
  // spacing/speed must equal the paper's measured MTTHO per route/time.
  EXPECT_NEAR(suburb_day().expected_mttho_s(), 73.50, 0.01);
  EXPECT_NEAR(suburb_night().expected_mttho_s(), 65.60, 0.01);
  EXPECT_NEAR(downtown_day().expected_mttho_s(), 68.16, 0.01);
  EXPECT_NEAR(downtown_night().expected_mttho_s(), 50.60, 0.01);
  EXPECT_NEAR(highway_day().expected_mttho_s(), 44.72, 0.01);
  EXPECT_NEAR(highway_night().expected_mttho_s(), 25.50, 0.01);
  EXPECT_EQ(all_routes().size(), 6u);
}

TEST(Routes, NightSelectsNightPolicy) {
  EXPECT_GT(suburb_night().policy.mean_bps, 10e6);
  EXPECT_LT(suburb_day().policy.mean_bps, 2e6);
}

class WorldArchSweep : public ::testing::TestWithParam<Architecture> {};

TEST_P(WorldArchSweep, BuildsAndAcquiresCoverage) {
  WorldConfig cfg;
  cfg.arch = GetParam();
  cfg.n_towers = 4;
  cfg.route = RouteSpec{"t", false, 10.0, 700.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  World world(cfg);
  world.start();
  world.simulator().run_for(Duration::s(5));
  // Initial acquisition happened and the UE has an address.
  EXPECT_NE(world.radio().serving_cell(), 0u);
  EXPECT_TRUE(world.ue_node()->primary_address().valid());
}

TEST_P(WorldArchSweep, DriveProducesExpectedHandovers) {
  WorldConfig cfg;
  cfg.arch = GetParam();
  cfg.n_towers = 5;
  cfg.route = RouteSpec{"t", false, 20.0, 600.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  World world(cfg);
  int changes = 0;
  world.on_cell_change = [&](ran::CellId from, ran::CellId) { changes += (from != 0); };
  world.start();
  world.simulator().run_for(Duration::s(150));  // full 2400 m drive + margin
  EXPECT_EQ(world.handovers(), 4u);
  EXPECT_EQ(changes, 4);
}

INSTANTIATE_TEST_SUITE_P(BothArchitectures, WorldArchSweep,
                         ::testing::Values(Architecture::Mno, Architecture::CellBricks));

TEST(WorldDeterminism, SameSeedSameOutcome) {
  auto run = [] {
    WorldConfig cfg;
    cfg.arch = Architecture::CellBricks;
    cfg.seed = 77;
    cfg.n_towers = 4;
    cfg.route = RouteSpec{"t", false, 15.0, 700.0, ran::RatePolicy::day()};
    World world(cfg);
    apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                                 Duration::s(60));
    world.start();
    world.simulator().run_for(Duration::s(3));
    apps::IperfDownloadClient client(world.ue_transport(),
                                     net::EndPoint{world.server_addr(), 5001},
                                     world.simulator());
    world.simulator().run_for(Duration::s(60));
    return std::make_pair(client.total_bytes(), world.handovers());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);  // bit-identical byte counts
  EXPECT_EQ(a.second, b.second);
}

TEST(AttachExperiment, Fig7ShapeHolds) {
  const auto bl_west =
      run_attach_experiment(Architecture::Mno, Duration::millis(7.2), 20);
  const auto cb_west =
      run_attach_experiment(Architecture::CellBricks, Duration::millis(7.2), 20);
  ASSERT_EQ(bl_west.attaches, 20);
  ASSERT_EQ(cb_west.attaches, 20);
  // CB beats BL at us-west by roughly the paper's 14%.
  EXPECT_LT(cb_west.total_ms, bl_west.total_ms);
  EXPECT_NEAR(cb_west.total_ms / bl_west.total_ms, 31.68 / 36.85, 0.05);
  // Breakdown accounting is self-consistent.
  EXPECT_NEAR(cb_west.total_ms,
              cb_west.agw_core_ms + cb_west.enb_ms + cb_west.ue_ms + cb_west.other_ms, 0.5);
}

TEST(AttachExperiment, BreakdownMatchesCalibratedProfiles) {
  const auto bl = run_attach_experiment(Architecture::Mno, Duration::millis(0.5), 10);
  EXPECT_NEAR(bl.agw_core_ms, 17.5, 0.5);  // 4 x 3 ms MME + 2 x 2.75 ms HSS
  EXPECT_NEAR(bl.enb_ms, 3.0, 0.2);
  EXPECT_NEAR(bl.ue_ms, 2.0, 0.2);
  const auto cb = run_attach_experiment(Architecture::CellBricks, Duration::millis(0.5), 10);
  EXPECT_NEAR(cb.agw_core_ms, 21.25, 0.5);  // 2 x 6.5 ms AGW + 8.25 ms brokerd
  EXPECT_NEAR(cb.ue_ms, 2.5, 0.2);
}

TEST(AttachStorm, AllCompleteAndLatencyGrowsWithLoad) {
  const AttachStorm small = run_attach_storm(Architecture::CellBricks, 5,
                                             Duration::millis(7.2), 0.0);
  const AttachStorm big = run_attach_storm(Architecture::CellBricks, 40,
                                           Duration::millis(7.2), 0.0);
  EXPECT_EQ(small.completed, 5);
  EXPECT_EQ(big.completed, 40);
  EXPECT_GT(big.p99_ms, small.p99_ms * 3);  // queueing at brokerd
}

TEST(AttachStorm, SurvivesControlPathLoss) {
  const AttachStorm lossy = run_attach_storm(Architecture::CellBricks, 20,
                                             Duration::millis(7.2), 0.08);
  EXPECT_EQ(lossy.completed, 20);  // the SAP retransmission recovers everything
}

TEST(Routes, ExpectedMtthoIsSpacingOverSpeed) {
  const RouteSpec r{"Custom", false, 10.0, 500.0, ran::RatePolicy::unlimited()};
  EXPECT_DOUBLE_EQ(r.expected_mttho_s(), 50.0);
  // Every built-in route is self-consistent: name set, positive geometry.
  for (const RouteSpec& spec : all_routes()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(spec.speed_mps, 0.0);
    EXPECT_GT(spec.tower_spacing_m, 0.0);
    EXPECT_GT(spec.expected_mttho_s(), 0.0);
  }
}

TEST(WorldWiring, CellBricksBuildsOneBtelcoPerTower) {
  WorldConfig cfg;
  cfg.arch = Architecture::CellBricks;
  cfg.n_towers = 6;
  cfg.route = RouteSpec{"t", false, 10.0, 700.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  World world(cfg);
  ASSERT_NE(world.brokerd(), nullptr);
  ASSERT_EQ(world.n_btelcos(), 6u);
  // Each tower owns its own bTelco with a distinct SAP identity and its own
  // control path to the cloud (the fault surface indexes them 1:1).
  EXPECT_EQ(world.n_cloud_links(), 6u);
  std::set<std::string> ids;
  for (std::size_t i = 0; i < world.n_btelcos(); ++i) {
    ids.insert(world.btelco(i)->id());
  }
  EXPECT_EQ(ids.size(), 6u);
}

TEST(WorldWiring, MnoHasNoBrokerAndNoBtelcos) {
  WorldConfig cfg;
  cfg.arch = Architecture::Mno;
  cfg.n_towers = 3;
  cfg.route = RouteSpec{"t", false, 10.0, 700.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  World world(cfg);
  EXPECT_EQ(world.brokerd(), nullptr);
  EXPECT_EQ(world.n_btelcos(), 0u);
}

TEST(TrialRunnerEdge, ZeroTrialsReturnsEmptyWithoutBlocking) {
  TrialRunner pool(2);
  const std::vector<std::size_t> r = pool.map(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(r.empty());
}

TEST(TrialRunnerEdge, MoreThreadsThanTrialsStillIndexOrdered) {
  TrialRunner pool(8);
  EXPECT_EQ(pool.thread_count(), 8u);
  const std::vector<std::size_t> r = pool.map(3, [](std::size_t i) { return i * i; });
  EXPECT_EQ(r, (std::vector<std::size_t>{0, 1, 4}));
}

TEST(TrialRunnerEdge, ZeroThreadsFallsBackToHardwareConcurrency) {
  TrialRunner pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  const std::vector<std::size_t> r = pool.map(5, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(r, (std::vector<std::size_t>{1, 2, 3, 4, 5}));
}

TEST(TrialRunnerEdge, FirstExceptionByIndexIsRethrownAfterBarrier) {
  TrialRunner pool(4);
  try {
    pool.map(4, [](std::size_t i) -> int {
      if (i == 1) throw std::runtime_error("trial 1");
      if (i == 3) throw std::runtime_error("trial 3");
      return 0;
    });
    FAIL() << "map must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 1") << "lowest failing index wins, deterministically";
  }
}

TEST(Table1, QuickCellProducesSaneMetrics) {
  Table1Options opt;
  opt.duration = Duration::s(60);
  const Table1Cell cell = run_table1_cell(Architecture::CellBricks, suburb_night(), opt);
  EXPECT_GT(cell.ping_p50_ms, 30.0);
  EXPECT_LT(cell.ping_p50_ms, 80.0);
  EXPECT_GT(cell.iperf_mbps, 1.0);
  EXPECT_GT(cell.voip_mos, 3.5);
  EXPECT_GT(cell.video_level, 2.0);
  EXPECT_GT(cell.web_load_s, 0.1);
}

}  // namespace
}  // namespace cb::scenario
