// Unit tests for src/common: bytes/serialization, rng, stats, time, result.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

namespace cb {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

TEST(Serialization, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789ABCDE);
  w.u64(0x0102030405060708ULL);
  w.bytes(Bytes{9, 9, 9});
  w.str("hello");

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789ABCDEu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.bytes(), (Bytes{9, 9, 9}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Serialization, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{1, 2, 3, 4}));
}

TEST(Serialization, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(Serialization, LengthPrefixedTruncationThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow, none do
  ByteReader r(w.data());
  EXPECT_THROW(r.bytes(), std::out_of_range);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.3);
}

TEST(Rng, ForkIndependence) {
  Rng parent(99);
  Rng child = parent.fork(1);
  // The child stream should not be a shifted copy of the parent stream.
  Rng parent2(99);
  parent2.next_u64();  // same state advance as fork consumed
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next_u64() == parent2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, RandomBytesLengthAndVariety) {
  Rng rng(3);
  const Bytes b = rng.random_bytes(1000);
  ASSERT_EQ(b.size(), 1000u);
  int zeros = 0;
  for (auto v : b) zeros += (v == 0);
  EXPECT_LT(zeros, 50);  // ~3.9 expected
}

TEST(Duration, ArithmeticAndConversion) {
  EXPECT_EQ(Duration::ms(5).nanos(), 5'000'000);
  EXPECT_EQ((Duration::s(1) + Duration::ms(500)).to_seconds(), 1.5);
  EXPECT_EQ(Duration::seconds(0.25).to_millis(), 250.0);
  EXPECT_LT(Duration::ms(1), Duration::ms(2));
  EXPECT_EQ(Duration::ms(10) / Duration::ms(5), 2.0);
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t0 = TimePoint::zero();
  const TimePoint t1 = t0 + Duration::s(2);
  EXPECT_EQ((t1 - t0).to_seconds(), 2.0);
  EXPECT_GT(t1, t0);
}

TEST(Summary, BasicStats) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.p50(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.p50(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(TimeSeries, BucketsAccumulate) {
  TimeSeries ts(Duration::s(1));
  ts.add(TimePoint::from_nanos(100), 5.0);
  ts.add(TimePoint::zero() + Duration::ms(900), 5.0);
  ts.add(TimePoint::zero() + Duration::ms(1500), 3.0);
  EXPECT_EQ(ts.buckets(), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket(0), 10.0);
  EXPECT_DOUBLE_EQ(ts.bucket(1), 3.0);
  EXPECT_DOUBLE_EQ(ts.rates()[0], 10.0);
}

TEST(Result, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  auto err = Result<int>::err("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), "boom");
  EXPECT_THROW(err.value(), std::logic_error);
}

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::ok());
  const Status s = Status::err("nope");
  EXPECT_FALSE(s);
  EXPECT_EQ(s.error(), "nope");
}

}  // namespace
}  // namespace cb
