// MPTCP tests: framing, stream integrity, and — the paper's crux — surviving
// address changes via subflow replacement (detach → new IP → JOIN →
// REMOVE_ADDR → go-back retransmission).
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "transport/mptcp.hpp"

namespace cb::transport {
namespace {

using net::Ipv4Addr;
using net::LinkParams;

// Client reachable via two gateways (two potential addresses), server behind
// a WAN link — a miniature CellBricks topology without the cellular control
// plane.
struct MobileWorld {
  explicit MobileWorld(std::uint64_t seed = 1, MptcpConfig mcfg = {}) : sim(seed), net(sim) {
    ue = net.add_node("ue");
    gw1 = net.add_node("gw1");
    gw2 = net.add_node("gw2");
    server = net.add_node("server");
    net.register_address(server_addr, server);
    net.connect(gw1, server, LinkParams{.rate_bps = 100e6, .delay = Duration::ms(20)});
    net.connect(gw2, server, LinkParams{.rate_bps = 100e6, .delay = Duration::ms(20)});
    radio1 = net.connect(ue, gw1, LinkParams{.rate_bps = 20e6, .delay = Duration::ms(10)});
    radio2 = net.connect(ue, gw2, LinkParams{.rate_bps = 20e6, .delay = Duration::ms(10)});
    radio2->set_up(false);
    net.register_address(ip1, ue);
    net.recompute_routes();

    ue_tcp = std::make_unique<TcpStack>(*ue);
    server_tcp = std::make_unique<TcpStack>(*server);
    ue_mptcp = std::make_unique<MptcpStack>(*ue, *ue_tcp, mcfg);
    server_mptcp = std::make_unique<MptcpStack>(*server, *server_tcp, mcfg);
  }

  // Move the UE from gw1 to gw2: address invalidation, then after
  // `attach_latency` the new address exists and MPTCP is told.
  void handover(Duration attach_latency) {
    radio1->set_up(false);
    net.unregister_address(ip1);
    ue->remove_address(ip1);
    net.recompute_routes();
    ue_mptcp->notify_address_invalidated(ip1);
    sim.schedule(attach_latency, [this] {
      radio2->set_up(true);
      net.register_address(ip2, ue);
      net.recompute_routes();
      ue_mptcp->notify_address_available(ip2);
    });
  }

  const Ipv4Addr server_addr{Ipv4Addr(1, 1, 1, 1)};
  const Ipv4Addr ip1{Ipv4Addr(10, 1, 0, 1)};
  const Ipv4Addr ip2{Ipv4Addr(10, 2, 0, 1)};

  sim::Simulator sim;
  net::Network net;
  net::Node* ue;
  net::Node* gw1;
  net::Node* gw2;
  net::Node* server;
  net::Link* radio1;
  net::Link* radio2;
  std::unique_ptr<TcpStack> ue_tcp;
  std::unique_ptr<TcpStack> server_tcp;
  std::unique_ptr<MptcpStack> ue_mptcp;
  std::unique_ptr<MptcpStack> server_mptcp;
};

Bytes pattern_bytes(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 197 + 13);
  return out;
}

struct BulkOverMptcp {
  BulkOverMptcp(MobileWorld& w, std::size_t total) : payload(pattern_bytes(total)) {
    w.server_mptcp->listen(80, [this](std::shared_ptr<MptcpSocket> s) {
      server_side = std::move(s);
      server_side->on_data = [this](BytesView d) {
        received.insert(received.end(), d.begin(), d.end());
      };
      server_side->on_closed = [this](const std::string& r) {
        if (r.empty() && server_side) server_side->close();
      };
    });
    client_side = w.ue_mptcp->connect({w.server_addr, 80});
    client_side->on_connected = [this] { pump(); };
    client_side->on_send_space = [this] { pump(); };
    client_side->on_closed = [this](const std::string& r) { closed_reason = r; done = true; };
  }

  void pump() {
    while (sent < payload.size()) {
      const std::size_t n = client_side->send(
          BytesView(payload.data() + sent, std::min<std::size_t>(16384, payload.size() - sent)));
      if (n == 0) return;
      sent += n;
    }
    if (!close_sent) {
      close_sent = true;
      client_side->close();
    }
  }

  Bytes payload;
  Bytes received;
  std::shared_ptr<MptcpSocket> client_side;
  std::shared_ptr<MptcpSocket> server_side;
  std::size_t sent = 0;
  bool close_sent = false;
  bool done = false;
  std::string closed_reason = "unset";
};

TEST(Mptcp, ConnectAndTransfer) {
  MobileWorld w;
  BulkOverMptcp t(w, 200 * 1024);
  w.sim.run_for(Duration::s(30));
  ASSERT_EQ(t.received.size(), t.payload.size());
  EXPECT_EQ(t.received, t.payload);
  EXPECT_TRUE(t.done);
  EXPECT_EQ(t.closed_reason, "");
}

TEST(Mptcp, EchoBothDirections) {
  MobileWorld w;
  std::shared_ptr<MptcpSocket> srv;
  Bytes echoed;
  w.server_mptcp->listen(7, [&](std::shared_ptr<MptcpSocket> s) {
    srv = std::move(s);
    srv->on_data = [&](BytesView d) { srv->send(d); };
  });
  auto c = w.ue_mptcp->connect({w.server_addr, 7});
  c->on_connected = [&] { c->send(to_bytes("hello mptcp")); };
  c->on_data = [&](BytesView d) { echoed.insert(echoed.end(), d.begin(), d.end()); };
  w.sim.run_for(Duration::s(5));
  EXPECT_EQ(echoed, to_bytes("hello mptcp"));
}

TEST(Mptcp, SurvivesAddressChange) {
  MobileWorld w;
  BulkOverMptcp t(w, 2 * 1024 * 1024);
  w.sim.run_for(Duration::s(3));
  EXPECT_GT(t.received.size(), 0u);
  w.handover(Duration::ms(32));
  w.sim.run_for(Duration::s(60));
  ASSERT_EQ(t.received.size(), t.payload.size());
  EXPECT_EQ(t.received, t.payload);
  EXPECT_EQ(t.closed_reason, "");
}

TEST(Mptcp, SurvivesManyConsecutiveHandovers) {
  MobileWorld w(11);
  BulkOverMptcp t(w, 3 * 1024 * 1024);
  // Ping-pong between the two gateways every 2 s.
  for (int i = 0; i < 6; ++i) {
    w.sim.schedule(Duration::s(2) * (i + 1), [&w, i] {
      // Alternate directions by swapping which radio/address is live.
      auto* from = (i % 2 == 0) ? w.radio1 : w.radio2;
      auto* to = (i % 2 == 0) ? w.radio2 : w.radio1;
      const auto from_ip = (i % 2 == 0) ? w.ip1 : w.ip2;
      const auto to_ip = (i % 2 == 0) ? w.ip2 : w.ip1;
      from->set_up(false);
      w.net.unregister_address(from_ip);
      w.ue->remove_address(from_ip);
      w.net.recompute_routes();
      w.ue_mptcp->notify_address_invalidated(from_ip);
      w.sim.schedule(Duration::ms(32), [&w, to, to_ip] {
        to->set_up(true);
        w.net.register_address(to_ip, w.ue);
        w.net.recompute_routes();
        w.ue_mptcp->notify_address_available(to_ip);
      });
    });
  }
  w.sim.run_for(Duration::s(120));
  ASSERT_EQ(t.received.size(), t.payload.size());
  EXPECT_EQ(t.received, t.payload);
}

TEST(Mptcp, AddressWaitDelaysRecovery) {
  // With the mainline 500 ms wait the first byte after handover appears
  // noticeably later than with the wait removed (Fig.9's comparison).
  auto run = [](Duration wait) {
    MptcpConfig cfg;
    cfg.address_wait = wait;
    MobileWorld w(5, cfg);
    BulkOverMptcp t(w, 8 * 1024 * 1024);
    w.sim.run_for(Duration::s(3));
    const TimePoint handover_at = w.sim.now();
    w.handover(Duration::ms(32));
    // Bytes already past the radio keep arriving for one propagation delay;
    // flush them before measuring when NEW data (via the replacement
    // subflow) resumes.
    w.sim.run_for(Duration::ms(100));
    const std::size_t before = t.received.size();
    while (t.received.size() == before &&
           w.sim.now() < handover_at + Duration::s(10)) {
      w.sim.run_for(Duration::ms(10));
    }
    return (w.sim.now() - handover_at).to_seconds();
  };
  const double with_wait = run(Duration::ms(500));
  const double without_wait = run(Duration::zero());
  EXPECT_GT(with_wait, 0.45);
  EXPECT_LT(without_wait, 0.30);
}

TEST(Mptcp, TearsDownAfterPathTimeout) {
  MptcpConfig cfg;
  cfg.path_timeout = Duration::s(5);
  MobileWorld w(3, cfg);
  BulkOverMptcp t(w, 4 * 1024 * 1024);
  w.sim.run_for(Duration::s(2));
  // Detach and never provide a new address.
  w.radio1->set_up(false);
  w.net.unregister_address(w.ip1);
  w.ue->remove_address(w.ip1);
  w.net.recompute_routes();
  w.ue_mptcp->notify_address_invalidated(w.ip1);
  w.sim.run_for(Duration::s(30));
  EXPECT_TRUE(t.done);
  EXPECT_NE(t.closed_reason, "");
  EXPECT_NE(t.closed_reason, "unset");
}

TEST(Mptcp, RecoveryBeforeTimeoutKeepsConnection) {
  MptcpConfig cfg;
  cfg.path_timeout = Duration::s(5);
  MobileWorld w(4, cfg);
  BulkOverMptcp t(w, 512 * 1024);
  w.sim.run_for(Duration::s(2));
  w.handover(Duration::s(3));  // attach completes inside the 5 s window
  w.sim.run_for(Duration::s(60));
  ASSERT_EQ(t.received.size(), t.payload.size());
  EXPECT_EQ(t.received, t.payload);
}

TEST(Mptcp, ServerPushSurvivesHandover) {
  // Data flowing server -> UE (download direction, like video/web).
  MobileWorld w(6);
  const Bytes payload = pattern_bytes(1024 * 1024);
  Bytes received;
  std::shared_ptr<MptcpSocket> srv;
  std::size_t sent = 0;
  bool close_sent = false;
  w.server_mptcp->listen(80, [&](std::shared_ptr<MptcpSocket> s) {
    srv = std::move(s);
    auto pump = std::make_shared<std::function<void()>>();
    // on_send_space keeps `pump` alive; capturing it here too would make the
    // function own itself (a shared_ptr cycle LeakSanitizer flags).
    *pump = [&] {
      while (sent < payload.size()) {
        const std::size_t n = srv->send(BytesView(
            payload.data() + sent, std::min<std::size_t>(16384, payload.size() - sent)));
        if (n == 0) return;
        sent += n;
      }
      if (!close_sent) {
        close_sent = true;
        srv->close();
      }
    };
    srv->on_send_space = [pump] { (*pump)(); };
    (*pump)();
  });
  auto c = w.ue_mptcp->connect({w.server_addr, 80});
  c->on_data = [&](BytesView d) { received.insert(received.end(), d.begin(), d.end()); };
  w.sim.run_for(Duration::s(1));
  w.handover(Duration::ms(64));
  w.sim.run_for(Duration::s(60));
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

// Property sweep: integrity across loss rates and handover timing.
struct MobilityCase {
  double loss;
  int handover_at_ms;
  std::uint64_t seed;
};

class MptcpMobilitySweep : public ::testing::TestWithParam<MobilityCase> {};

TEST_P(MptcpMobilitySweep, StreamIntegrityAcrossHandover) {
  const MobilityCase c = GetParam();
  MobileWorld w(c.seed);
  // Apply loss to both radio links.
  LinkParams lossy{.rate_bps = 20e6, .delay = Duration::ms(10)};
  lossy.loss = c.loss;
  w.radio1->set_params(w.ue, lossy);
  w.radio1->set_params(w.gw1, lossy);
  w.radio2->set_params(w.ue, lossy);
  w.radio2->set_params(w.gw2, lossy);

  BulkOverMptcp t(w, 400 * 1024);
  w.sim.schedule(Duration::ms(c.handover_at_ms), [&] { w.handover(Duration::ms(32)); });
  w.sim.run_for(Duration::s(240));
  ASSERT_EQ(t.received.size(), t.payload.size());
  EXPECT_EQ(t.received, t.payload);
}

INSTANTIATE_TEST_SUITE_P(
    MobilityGrid, MptcpMobilitySweep,
    ::testing::Values(MobilityCase{0.0, 500, 21}, MobilityCase{0.02, 700, 22},
                      MobilityCase{0.05, 300, 23}, MobilityCase{0.0, 50, 24},
                      MobilityCase{0.02, 1500, 25}, MobilityCase{0.08, 900, 26}));

TEST(Mptcp, SubflowCountReflectsPathState) {
  MobileWorld w;
  BulkOverMptcp t(w, 4 * 1024 * 1024);
  w.sim.run_for(Duration::s(2));
  EXPECT_EQ(t.client_side->subflow_count(), 1u);
  w.handover(Duration::ms(32));
  w.sim.run_for(Duration::ms(100));
  EXPECT_EQ(t.client_side->subflow_count(), 0u);  // inside the 500 ms wait
  w.sim.run_for(Duration::s(2));
  EXPECT_EQ(t.client_side->subflow_count(), 1u);  // replacement established
}

}  // namespace
}  // namespace cb::transport
