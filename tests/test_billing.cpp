// Billing & reputation tests (pure logic): report serialization, the Fig.5
// discrepancy heuristic, score evolution, and the suspect-list policy.
#include <gtest/gtest.h>

#include "cellbricks/billing.hpp"
#include "cellbricks/reputation.hpp"

namespace cb::cellbricks {
namespace {

TrafficReport make_report(Reporter who, std::uint64_t dl, double loss = 0.0,
                          std::uint32_t period = 0) {
  TrafficReport r;
  r.session_id = 77;
  r.reporter = who;
  r.period = period;
  r.dl_bytes = dl;
  r.ul_bytes = dl / 10;
  r.dl_loss_rate = loss;
  r.duration_ms = 10'000;
  return r;
}

TEST(TrafficReport, SerializationRoundTrip) {
  TrafficReport r = make_report(Reporter::Telco, 123456, 0.015, 3);
  r.avg_dl_bps = 98765.4;
  r.avg_delay_ms = 23.5;
  auto parsed = TrafficReport::deserialize(r.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().session_id, 77u);
  EXPECT_EQ(parsed.value().reporter, Reporter::Telco);
  EXPECT_EQ(parsed.value().period, 3u);
  EXPECT_EQ(parsed.value().dl_bytes, 123456u);
  EXPECT_DOUBLE_EQ(parsed.value().dl_loss_rate, 0.015);
  EXPECT_DOUBLE_EQ(parsed.value().avg_dl_bps, 98765.4);
  EXPECT_DOUBLE_EQ(parsed.value().avg_delay_ms, 23.5);
}

TEST(TrafficReport, TruncatedRejected) {
  const Bytes wire = make_report(Reporter::Ue, 100).serialize();
  EXPECT_FALSE(TrafficReport::deserialize(BytesView(wire.data(), wire.size() / 2)).ok());
}

TEST(Fig5Heuristic, HonestPairWithinThreshold) {
  ReputationSystem rep;
  // bTelco saw 1 MB pre-radio; UE saw 0.99 MB with 1% measured loss.
  const auto v = rep.compare(make_report(Reporter::Ue, 990'000, 0.01),
                             make_report(Reporter::Telco, 1'000'000));
  EXPECT_FALSE(v.mismatch);
}

TEST(Fig5Heuristic, InflationBeyondLossFlagged) {
  ReputationSystem rep;
  // bTelco claims 1.5 MB while the UE received 1.0 MB with 1% loss:
  // threshold = (0.01 + 0.02) * 1 MB = 30 KB << 500 KB delta.
  const auto v = rep.compare(make_report(Reporter::Ue, 1'000'000, 0.01),
                             make_report(Reporter::Telco, 1'500'000));
  EXPECT_TRUE(v.mismatch);
  EXPECT_GT(v.degree, 0.3);
  EXPECT_EQ(v.delta, 500'000);
}

TEST(Fig5Heuristic, HighLossWidensTolerance) {
  ReputationSystem rep;
  // 20% radio loss: the bTelco legitimately counts ~25% more than the UE.
  const auto v = rep.compare(make_report(Reporter::Ue, 800'000, 0.20),
                             make_report(Reporter::Telco, 1'000'000));
  EXPECT_FALSE(v.mismatch);
}

TEST(Fig5Heuristic, UndercountingUeAlsoFlagged) {
  ReputationSystem rep;
  const auto v = rep.compare(make_report(Reporter::Ue, 400'000, 0.0),
                             make_report(Reporter::Telco, 1'000'000));
  EXPECT_TRUE(v.mismatch);
}

TEST(Reputation, ScoreDecaysWithMismatches) {
  ReputationSystem rep;
  EXPECT_DOUBLE_EQ(rep.telco_score("t"), 1.0);
  PairVerdict bad;
  bad.mismatch = true;
  bad.degree = 0.5;
  double prev = 1.0;
  for (int i = 0; i < 5; ++i) {
    rep.record("u", "t", bad);
    EXPECT_LT(rep.telco_score("t"), prev);
    prev = rep.telco_score("t");
  }
  EXPECT_EQ(rep.mismatches("t"), 5u);
}

TEST(Reputation, CleanPairsRecoverSlowly) {
  ReputationSystem rep;
  PairVerdict bad;
  bad.mismatch = true;
  bad.degree = 0.2;
  rep.record("u", "t", bad);
  const double after_bad = rep.telco_score("t");
  PairVerdict good;
  for (int i = 0; i < 10; ++i) rep.record("u", "t", good);
  EXPECT_GT(rep.telco_score("t"), after_bad);
  EXPECT_LE(rep.telco_score("t"), 1.0);
}

TEST(Reputation, AuthorizationThreshold) {
  ReputationConfig cfg;
  cfg.min_telco_score = 0.5;
  ReputationSystem rep(cfg);
  EXPECT_TRUE(rep.authorize("u", "t"));
  PairVerdict bad;
  bad.mismatch = true;
  bad.degree = 1.0;
  // Each full-degree mismatch adds 1.0 weighted: score 1/(1+k).
  rep.record("u1", "t", bad);
  EXPECT_TRUE(rep.authorize("u", "t"));  // 0.5 — still at threshold
  rep.record("u1", "t", bad);
  EXPECT_FALSE(rep.authorize("u", "t"));  // 0.33 < 0.5
}

TEST(Reputation, UserSuspectedAfterMismatchesWithManyTelcos) {
  ReputationSystem rep;  // suspect_distinct_telcos = 2
  PairVerdict bad;
  bad.mismatch = true;
  bad.degree = 0.5;
  rep.record("mallory", "t1", bad);
  EXPECT_FALSE(rep.is_suspect("mallory"));
  rep.record("mallory", "t1", bad);  // same telco again: still 1 distinct
  EXPECT_FALSE(rep.is_suspect("mallory"));
  rep.record("mallory", "t2", bad);  // second distinct telco: suspect
  EXPECT_TRUE(rep.is_suspect("mallory"));
  EXPECT_FALSE(rep.authorize("mallory", "t-any"));
  // Honest users are unaffected.
  EXPECT_FALSE(rep.is_suspect("alice"));
}

TEST(Reputation, DegreeWeighting) {
  // A large fraud should hurt more than a marginal one.
  ReputationSystem big, small;
  PairVerdict large;
  large.mismatch = true;
  large.degree = 1.0;
  PairVerdict marginal;
  marginal.mismatch = true;
  marginal.degree = 0.05;
  big.record("u", "t", large);
  small.record("u", "t", marginal);
  EXPECT_LT(big.telco_score("t"), small.telco_score("t"));
}

}  // namespace
}  // namespace cb::cellbricks
