// Additional crypto coverage: more published vectors, parameterized
// property sweeps across key sizes and message lengths, and adversarial
// byte-level robustness of every deserializer.
#include <gtest/gtest.h>

#include "crypto/bignum.hpp"
#include "crypto/box.hpp"
#include "crypto/cert.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "test_seed.hpp"

namespace cb::crypto {
namespace {

// --- More NIST / RFC vectors -------------------------------------------------

TEST(Sha256Extra, Nist448BitMessage) {
  EXPECT_EQ(to_hex(sha256(to_bytes("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijk"
                                   "lmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnop"
                                   "qrstu"))),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Extra, SingleByteAndBoundaryLengths) {
  // 55/56/64-byte messages straddle the padding boundary.
  for (std::size_t n : {0u, 1u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    const Bytes m(n, 'x');
    Sha256 incremental;
    for (std::size_t i = 0; i < n; ++i) incremental.update(BytesView(&m[i], 1));
    EXPECT_EQ(incremental.finish(), sha256(m)) << "length " << n;
  }
}

TEST(HmacExtra, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacExtra, Rfc4231Case4) {
  const Bytes key = from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const Bytes data(50, 0xcd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HkdfExtra, Rfc5869Case2LongInputs) {
  Bytes ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<std::uint8_t>(i));
  const Bytes okm = hkdf(salt, ikm, info, 82);
  EXPECT_EQ(to_hex(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(HkdfExtra, Rfc5869Case3NoSaltNoInfo) {
  const Bytes ikm(22, 0x0b);
  EXPECT_EQ(to_hex(hkdf({}, ikm, {}, 42)),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

// --- BigNum edge cases --------------------------------------------------------

TEST(BigNumExtra, ZeroBehaviour) {
  const BigNum zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_TRUE(zero.to_bytes_be().empty());
  EXPECT_TRUE(zero + zero == zero);
  EXPECT_TRUE(zero * BigNum{12345} == zero);
  EXPECT_THROW(BigNum{1}.divmod(zero), std::invalid_argument);
  EXPECT_THROW(zero - BigNum{1}, std::invalid_argument);
}

TEST(BigNumExtra, FixedWidthExport) {
  const BigNum v{0x1234};
  EXPECT_EQ(to_hex(v.to_bytes_be(4)), "00001234");
  EXPECT_THROW(v.to_bytes_be(1), std::invalid_argument);
}

TEST(BigNumExtra, LeadingZeroBytesIgnoredOnImport) {
  const BigNum a = BigNum::from_bytes_be(from_hex("00000042"));
  EXPECT_TRUE(a == BigNum{0x42});
}

TEST(BigNumExtra, DivModBySelfAndOne) {
  const std::uint64_t seed = cb::test::seed_or(3);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
  Rng rng(seed);
  const BigNum a = BigNum::from_bytes_be(rng.random_bytes(24));
  auto [q1, r1] = a.divmod(a);
  EXPECT_TRUE(q1 == BigNum{1});
  EXPECT_TRUE(r1.is_zero());
  auto [q2, r2] = a.divmod(BigNum{1});
  EXPECT_TRUE(q2 == a);
  EXPECT_TRUE(r2.is_zero());
}

TEST(BigNumExtra, PowmodEdges) {
  const BigNum m{97};
  EXPECT_TRUE(BigNum{5}.powmod(BigNum{}, m) == BigNum{1});   // x^0 = 1
  EXPECT_TRUE(BigNum{}.powmod(BigNum{5}, m) == BigNum{});    // 0^x = 0
  EXPECT_TRUE(BigNum{98}.powmod(BigNum{1}, m) == BigNum{1}); // reduced base
}

TEST(BigNumExtra, ModU32MatchesDivMod) {
  const std::uint64_t seed = cb::test::seed_or(17);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
  Rng rng(seed);
  for (int i = 0; i < 50; ++i) {
    const BigNum a = BigNum::from_bytes_be(rng.random_bytes(1 + rng.next_below(30)));
    const std::uint32_t m = 2 + static_cast<std::uint32_t>(rng.next_below(1u << 30));
    const auto [q, r] = a.divmod(BigNum{m});
    EXPECT_TRUE(BigNum{a.mod_u32(m)} == r);
  }
}

// --- RSA across key sizes (CRT correctness) -----------------------------------

class RsaKeySizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaKeySizeSweep, SignVerifyEncryptDecrypt) {
  Rng rng(GetParam());
  const RsaKeyPair keys = RsaKeyPair::generate(rng, GetParam());
  const Bytes msg = rng.random_bytes(40);

  const Bytes sig = keys.sign(msg);
  EXPECT_TRUE(keys.public_key().verify(msg, sig));
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(keys.public_key().verify(tampered, sig));

  const Bytes pt = rng.random_bytes(24);
  auto ct = keys.public_key().encrypt(pt, rng);
  ASSERT_TRUE(ct.ok());
  auto out = keys.decrypt(ct.value());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), pt);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaKeySizeSweep, ::testing::Values(384, 512, 768, 1024));

TEST(RsaExtra, CrtMatchesPlainExponentiation) {
  // The signature must verify under pure public-side math — which it only
  // can if the CRT private op equals m^d mod n.
  Rng rng(404);
  const RsaKeyPair keys = RsaKeyPair::generate(rng, 512);
  for (int i = 0; i < 10; ++i) {
    const Bytes msg = rng.random_bytes(1 + rng.next_below(200));
    EXPECT_TRUE(keys.public_key().verify(msg, keys.sign(msg)));
  }
}

TEST(RsaExtra, DeserializeGarbage) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    (void)RsaPublicKey::deserialize(rng.random_bytes(rng.next_below(60)));
  }
  SUCCEED();  // must not crash/throw
}

// --- Certificates / boxes robustness ------------------------------------------

TEST(CertExtra, DeserializeGarbage) {
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    (void)Certificate::deserialize(rng.random_bytes(rng.next_below(100)));
  }
  SUCCEED();
}

TEST(BoxExtra, OpenGarbage) {
  Rng rng(9);
  const RsaKeyPair keys = RsaKeyPair::generate(rng, 512);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(open(keys, rng.random_bytes(rng.next_below(300))).ok());
  }
}

class BoxPayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoxPayloadSweep, RoundTripAnySize) {
  const std::uint64_t seed = cb::test::seed_or(100) + GetParam();
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << (seed - GetParam()));
  Rng rng(seed);
  static const RsaKeyPair keys = [] {
    Rng kr(55);
    return RsaKeyPair::generate(kr, 512);
  }();
  const Bytes msg = rng.random_bytes(GetParam());
  auto out = open(keys, seal(keys.public_key(), msg, rng));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoxPayloadSweep,
                         ::testing::Values(0, 1, 31, 32, 33, 63, 64, 1000, 20000));

TEST(MontgomeryDiff, MatchesReferencePowmodOnRandomOddModuli) {
  // Differential test: the Montgomery/CIOS fast path must agree with the
  // reference square-and-multiply for random bases/exponents/odd moduli of
  // assorted widths (including non-limb-aligned ones).
  const std::uint64_t seed = cb::test::seed_or(0xD1FF);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
  Rng rng(seed);
  for (std::size_t bits : {2u, 17u, 33u, 64u, 65u, 127u, 256u, 511u, 1024u}) {
    for (int trial = 0; trial < 4; ++trial) {
      const BigNum m = BigNum::random_odd(rng, bits);
      const BigNum base = BigNum::random_below(rng, m + m);  // may exceed m
      const BigNum exp = BigNum::random_below(rng, m);
      EXPECT_EQ(base.powmod(exp, m), base.powmod_reference(exp, m))
          << "bits=" << bits << " trial=" << trial;
    }
  }
}

TEST(MontgomeryDiff, EdgeOperands) {
  const std::uint64_t seed = cb::test::seed_or(77);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
  Rng rng(seed);
  const BigNum m = BigNum::random_odd(rng, 128);
  const BigNum zero{};
  const BigNum one{1};
  // 0^e, b^0, 1^e, b^1, and base == multiple of m.
  EXPECT_EQ(zero.powmod(BigNum{5}, m), zero.powmod_reference(BigNum{5}, m));
  EXPECT_EQ(BigNum{5}.powmod(zero, m), one);
  EXPECT_EQ(one.powmod(BigNum{123456}, m), one);
  EXPECT_EQ(BigNum{7}.powmod(one, m), BigNum{7});
  EXPECT_EQ(m.powmod(BigNum{3}, m), zero);
  EXPECT_EQ((m + m).powmod(BigNum{2}, m), zero);
  // Montgomery context rejects even/trivial moduli.
  EXPECT_THROW(Montgomery(BigNum{10}), std::invalid_argument);
  EXPECT_THROW(Montgomery(BigNum{1}), std::invalid_argument);
  // Even modulus still works through the reference fallback.
  EXPECT_EQ(BigNum{7}.powmod(BigNum{13}, BigNum{100}),
            BigNum{7}.powmod_reference(BigNum{13}, BigNum{100}));
}

TEST(MontgomeryDiff, CrtSignMatchesPlainExponentiationAcrossSizes) {
  // CRT + Montgomery private op must round-trip against the public op for
  // edge modulus sizes (including odd bit counts), and signatures must
  // verify with the cached-context verify path.
  const std::uint64_t seed = cb::test::seed_or(0xC47);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
  Rng rng(seed);
  for (std::size_t bits : {128u, 192u, 512u}) {
    RsaKeyPair keys = RsaKeyPair::generate(rng, bits);
    const Bytes msg = rng.random_bytes(64);
    if (bits >= 512) {  // signature blocks need >= digest + 11 bytes
      const Bytes sig = keys.sign(msg);
      EXPECT_TRUE(keys.public_key().verify(msg, sig)) << "bits=" << bits;
      Bytes tampered = sig;
      tampered[tampered.size() / 2] ^= 1;
      EXPECT_FALSE(keys.public_key().verify(msg, tampered));
    }
    // Encrypt/decrypt round-trip exercises private_op on small plaintexts.
    const Bytes pt = rng.random_bytes(bits / 8 - 11);
    auto ct = keys.public_key().encrypt(pt, rng);
    ASSERT_TRUE(ct.ok());
    auto back = keys.decrypt(ct.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), pt);
  }
}

TEST(ChaChaExtra, CounterContinuity) {
  // Encrypting [A|B] in one call equals encrypting A at counter c and B at
  // counter c + blocks(A) when A is block-aligned.
  Rng rng(11);
  const Bytes key = rng.random_bytes(32);
  const Bytes nonce = rng.random_bytes(12);
  const Bytes data = rng.random_bytes(256);
  const Bytes whole = chacha20_xor(key, nonce, 5, data);
  const Bytes a = chacha20_xor(key, nonce, 5, BytesView(data.data(), 128));
  const Bytes b = chacha20_xor(key, nonce, 7, BytesView(data.data() + 128, 128));
  Bytes glued = a;
  glued.insert(glued.end(), b.begin(), b.end());
  EXPECT_EQ(whole, glued);
}

}  // namespace
}  // namespace cb::crypto
