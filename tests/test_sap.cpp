// SAP protocol tests (pure logic, no network): the Fig.2/Fig.3 procedures,
// their security properties (replay, tampering, relay binding, IMSI
// privacy), QoS negotiation, and the security-context derivation.
#include <gtest/gtest.h>

#include "cellbricks/sap.hpp"

namespace cb::cellbricks {
namespace {

// Shared fixture: one CA, one broker, two bTelcos, two subscribers.
class SapTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBits = 512;

  SapTest() : rng_(42) {}

  void SetUp() override {
    ca_ = std::make_unique<crypto::CertificateAuthority>("root", rng_, kBits);
    const TimePoint forever = TimePoint::zero() + Duration::s(1'000'000);

    auto broker_keys = crypto::RsaKeyPair::generate(rng_, kBits);
    broker_cert_ = ca_->issue("broker", broker_keys.public_key(), TimePoint::zero(), forever);
    broker_pk_ = broker_keys.public_key();
    broker_ = std::make_unique<SapBroker>("broker", std::move(broker_keys), broker_cert_,
                                          ca_->public_key());

    auto t1_keys = crypto::RsaKeyPair::generate(rng_, kBits);
    auto t1_cert = ca_->issue("telco-1", t1_keys.public_key(), TimePoint::zero(), forever);
    telco1_ = std::make_unique<SapTelco>("telco-1", std::move(t1_keys), t1_cert,
                                         ca_->public_key());

    auto t2_keys = crypto::RsaKeyPair::generate(rng_, kBits);
    auto t2_cert = ca_->issue("telco-2", t2_keys.public_key(), TimePoint::zero(), forever);
    telco2_ = std::make_unique<SapTelco>("telco-2", std::move(t2_keys), t2_cert,
                                         ca_->public_key());

    auto ue_keys = crypto::RsaKeyPair::generate(rng_, kBits);
    broker_->add_subscriber("alice", ue_keys.public_key());
    ue_ = std::make_unique<SapUe>("alice", "broker", std::move(ue_keys), broker_pk_);
  }

  Result<BrokerDecision> broker_process(BytesView req_t) {
    return broker_->process_auth_req(req_t, TimePoint::zero(), rng_, QosInfo{},
                                     /*authorize=*/nullptr);
  }

  Rng rng_;
  std::unique_ptr<crypto::CertificateAuthority> ca_;
  crypto::Certificate broker_cert_;
  crypto::RsaPublicKey broker_pk_;
  std::unique_ptr<SapBroker> broker_;
  std::unique_ptr<SapTelco> telco1_;
  std::unique_ptr<SapTelco> telco2_;
  std::unique_ptr<SapUe> ue_;
};

TEST_F(SapTest, FullExchangeSucceeds) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  ASSERT_TRUE(decision.ok()) << decision.error();
  EXPECT_EQ(decision.value().id_u, "alice");
  EXPECT_EQ(decision.value().id_t, "telco-1");

  auto t_session = telco1_->process_auth_resp(decision.value().auth_resp_t, broker_cert_,
                                              TimePoint::zero());
  ASSERT_TRUE(t_session.ok()) << t_session.error();
  auto u_session = ue_->process_auth_resp(decision.value().auth_resp_u);
  ASSERT_TRUE(u_session.ok()) << u_session.error();

  // Both sides derived the SAME security context from ss (= K_ASME).
  EXPECT_EQ(t_session.value().security, u_session.value().security);
  EXPECT_EQ(t_session.value().session_id, u_session.value().session_id);
  EXPECT_EQ(u_session.value().id_t, "telco-1");
}

TEST_F(SapTest, TelcoNeverSeesSubscriberIdentity) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  // The cleartext request must not contain the subscriber id ("alice") —
  // the anti-IMSI-catcher property.
  const std::string as_str(req_u.begin(), req_u.end());
  EXPECT_EQ(as_str.find("alice"), std::string::npos);

  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  ASSERT_TRUE(decision.ok());
  // The bTelco-facing response carries only a pseudonym.
  auto t_session = telco1_->process_auth_resp(decision.value().auth_resp_t, broker_cert_,
                                              TimePoint::zero());
  ASSERT_TRUE(t_session.ok());
  EXPECT_EQ(t_session.value().ue_pseudonym.find("alice"), std::string::npos);
}

TEST_F(SapTest, ReplayedRequestRejected) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  ASSERT_TRUE(broker_process(req_t).ok());
  // Same nonce again: replay.
  auto replay = broker_process(req_t);
  EXPECT_FALSE(replay.ok());
  EXPECT_NE(replay.error().find("replay"), std::string::npos);
}

TEST_F(SapTest, RelayToDifferentTelcoRejected) {
  // The UE authorised telco-1; telco-2 relaying the same authReqU must fail
  // (the authVec binds idT).
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco2_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  EXPECT_FALSE(decision.ok());
  EXPECT_NE(decision.error().find("mismatch"), std::string::npos);
}

TEST_F(SapTest, UnknownSubscriberRejected) {
  Rng other_rng(99);
  auto mallory_keys = crypto::RsaKeyPair::generate(other_rng, kBits);
  SapUe mallory("mallory", "broker", std::move(mallory_keys), broker_pk_);
  const Bytes req_u = mallory.make_auth_req("telco-1", other_rng);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  EXPECT_FALSE(broker_process(req_t).ok());
}

TEST_F(SapTest, StolenIdentityWrongKeyRejected) {
  // Mallory claims to be alice but signs with her own key.
  Rng other_rng(100);
  auto mallory_keys = crypto::RsaKeyPair::generate(other_rng, kBits);
  SapUe impostor("alice", "broker", std::move(mallory_keys), broker_pk_);
  const Bytes req_u = impostor.make_auth_req("telco-1", other_rng);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  EXPECT_FALSE(decision.ok());
  EXPECT_NE(decision.error().find("signature"), std::string::npos);
}

TEST_F(SapTest, UncertifiedTelcoRejected) {
  // A bTelco whose certificate was signed by a different CA.
  Rng other_rng(101);
  crypto::CertificateAuthority rogue_ca("rogue", other_rng, kBits);
  auto keys = crypto::RsaKeyPair::generate(other_rng, kBits);
  auto cert = rogue_ca.issue("telco-evil", keys.public_key(), TimePoint::zero(),
                             TimePoint::zero() + Duration::s(1000));
  SapTelco evil("telco-evil", std::move(keys), cert, rogue_ca.public_key());

  const Bytes req_u = ue_->make_auth_req("telco-evil", rng_);
  const Bytes req_t = evil.make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  EXPECT_FALSE(decision.ok());
  EXPECT_NE(decision.error().find("certificate"), std::string::npos);
}

TEST_F(SapTest, TamperedRequestRejected) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  for (std::size_t offset : {req_t.size() / 4, req_t.size() / 2, req_t.size() - 1}) {
    Bytes bad = req_t;
    bad[offset] ^= 0x01;
    EXPECT_FALSE(broker_process(bad).ok()) << "offset " << offset;
  }
}

TEST_F(SapTest, AuthorizationPolicyHookDenies) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_->process_auth_req(
      req_t, TimePoint::zero(), rng_, QosInfo{},
      [](const std::string&, const std::string&) { return false; });
  EXPECT_FALSE(decision.ok());
  EXPECT_NE(decision.error().find("denied"), std::string::npos);
}

TEST_F(SapTest, ResponseForOtherTelcoRejected) {
  // telco-2 must not be able to use telco-1's authorization.
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  ASSERT_TRUE(decision.ok());
  auto hijack = telco2_->process_auth_resp(decision.value().auth_resp_t, broker_cert_,
                                           TimePoint::zero());
  EXPECT_FALSE(hijack.ok());
}

TEST_F(SapTest, UeRejectsTamperedResponse) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  ASSERT_TRUE(decision.ok());
  Bytes bad = decision.value().auth_resp_u;
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(ue_->process_auth_resp(bad).ok());
}

TEST_F(SapTest, UeRejectsReplayedResponse) {
  const Bytes req1 = ue_->make_auth_req("telco-1", rng_);
  auto d1 = broker_process(telco1_->make_auth_req_t(req1, QosCap{}));
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(ue_->process_auth_resp(d1.value().auth_resp_u).ok());

  // New attach (new nonce) — the old response must not be accepted.
  (void)ue_->make_auth_req("telco-1", rng_);
  auto replay = ue_->process_auth_resp(d1.value().auth_resp_u);
  EXPECT_FALSE(replay.ok());
}

TEST_F(SapTest, QosNegotiationClampsToCapability) {
  QosCap cap;
  cap.max_dl_bps = 5e6;
  cap.max_ul_bps = 1e6;
  QosInfo desired;
  desired.dl_bps = 20e6;
  desired.ul_bps = 0.5e6;
  const QosInfo out = QosInfo::negotiate(desired, cap);
  EXPECT_DOUBLE_EQ(out.dl_bps, 5e6);
  EXPECT_DOUBLE_EQ(out.ul_bps, 0.5e6);

  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, cap);
  auto decision = broker_->process_auth_req(req_t, TimePoint::zero(), rng_, desired, nullptr);
  ASSERT_TRUE(decision.ok());
  EXPECT_DOUBLE_EQ(decision.value().qos.dl_bps, 5e6);
  auto t_session = telco1_->process_auth_resp(decision.value().auth_resp_t, broker_cert_,
                                              TimePoint::zero());
  ASSERT_TRUE(t_session.ok());
  EXPECT_DOUBLE_EQ(t_session.value().qos.dl_bps, 5e6);
}

TEST_F(SapTest, SecurityContextDerivationIsDeterministicAndSeparated) {
  const Bytes ss(32, 0x11);
  const SecurityContext a = SecurityContext::derive(ss);
  const SecurityContext b = SecurityContext::derive(ss);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.k_nas_enc, a.k_nas_int);
  EXPECT_NE(a.k_nas_enc, a.k_as);
  const SecurityContext c = SecurityContext::derive(Bytes(32, 0x12));
  EXPECT_NE(a.k_nas_enc, c.k_nas_enc);
}

TEST_F(SapTest, RevokedSubscriberRejected) {
  broker_->remove_subscriber("alice");
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  EXPECT_FALSE(broker_process(req_t).ok());
}

TEST_F(SapTest, SessionKeysDifferAcrossAttachments) {
  auto run = [&] {
    const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
    auto d = broker_process(telco1_->make_auth_req_t(req_u, QosCap{}));
    EXPECT_TRUE(d.ok());
    return d.value().ss;
  };
  EXPECT_NE(run(), run());
}

}  // namespace
}  // namespace cb::cellbricks
