// SAP protocol tests (pure logic, no network): the Fig.2/Fig.3 procedures,
// their security properties (replay, tampering, relay binding, IMSI
// privacy), QoS negotiation, and the security-context derivation.
#include <gtest/gtest.h>

#include "cellbricks/sap.hpp"
#include "cellbricks/ticket.hpp"

namespace cb::cellbricks {
namespace {

// Shared fixture: one CA, one broker, two bTelcos, two subscribers.
class SapTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBits = 512;

  SapTest() : rng_(42) {}

  void SetUp() override {
    ca_ = std::make_unique<crypto::CertificateAuthority>("root", rng_, kBits);
    const TimePoint forever = TimePoint::zero() + Duration::s(1'000'000);

    auto broker_keys = crypto::RsaKeyPair::generate(rng_, kBits);
    broker_cert_ = ca_->issue("broker", broker_keys.public_key(), TimePoint::zero(), forever);
    broker_pk_ = broker_keys.public_key();
    broker_ = std::make_unique<SapBroker>("broker", std::move(broker_keys), broker_cert_,
                                          ca_->public_key());

    auto t1_keys = crypto::RsaKeyPair::generate(rng_, kBits);
    auto t1_cert = ca_->issue("telco-1", t1_keys.public_key(), TimePoint::zero(), forever);
    telco1_ = std::make_unique<SapTelco>("telco-1", std::move(t1_keys), t1_cert,
                                         ca_->public_key());

    auto t2_keys = crypto::RsaKeyPair::generate(rng_, kBits);
    auto t2_cert = ca_->issue("telco-2", t2_keys.public_key(), TimePoint::zero(), forever);
    telco2_ = std::make_unique<SapTelco>("telco-2", std::move(t2_keys), t2_cert,
                                         ca_->public_key());

    auto ue_keys = crypto::RsaKeyPair::generate(rng_, kBits);
    broker_->add_subscriber("alice", ue_keys.public_key());
    ue_ = std::make_unique<SapUe>("alice", "broker", std::move(ue_keys), broker_pk_);
  }

  Result<BrokerDecision> broker_process(BytesView req_t) {
    return broker_->process_auth_req(req_t, TimePoint::zero(), rng_, QosInfo{},
                                     /*authorize=*/nullptr);
  }

  Rng rng_;
  std::unique_ptr<crypto::CertificateAuthority> ca_;
  crypto::Certificate broker_cert_;
  crypto::RsaPublicKey broker_pk_;
  std::unique_ptr<SapBroker> broker_;
  std::unique_ptr<SapTelco> telco1_;
  std::unique_ptr<SapTelco> telco2_;
  std::unique_ptr<SapUe> ue_;
};

TEST_F(SapTest, FullExchangeSucceeds) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  ASSERT_TRUE(decision.ok()) << decision.error();
  EXPECT_EQ(decision.value().id_u, "alice");
  EXPECT_EQ(decision.value().id_t, "telco-1");

  auto t_session = telco1_->process_auth_resp(decision.value().auth_resp_t, broker_cert_,
                                              TimePoint::zero());
  ASSERT_TRUE(t_session.ok()) << t_session.error();
  auto u_session = ue_->process_auth_resp(decision.value().auth_resp_u);
  ASSERT_TRUE(u_session.ok()) << u_session.error();

  // Both sides derived the SAME security context from ss (= K_ASME).
  EXPECT_EQ(t_session.value().security, u_session.value().security);
  EXPECT_EQ(t_session.value().session_id, u_session.value().session_id);
  EXPECT_EQ(u_session.value().id_t, "telco-1");
}

TEST_F(SapTest, TelcoNeverSeesSubscriberIdentity) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  // The cleartext request must not contain the subscriber id ("alice") —
  // the anti-IMSI-catcher property.
  const std::string as_str(req_u.begin(), req_u.end());
  EXPECT_EQ(as_str.find("alice"), std::string::npos);

  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  ASSERT_TRUE(decision.ok());
  // The bTelco-facing response carries only a pseudonym.
  auto t_session = telco1_->process_auth_resp(decision.value().auth_resp_t, broker_cert_,
                                              TimePoint::zero());
  ASSERT_TRUE(t_session.ok());
  EXPECT_EQ(t_session.value().ue_pseudonym.find("alice"), std::string::npos);
}

TEST_F(SapTest, ReplayedRequestRejected) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  ASSERT_TRUE(broker_process(req_t).ok());
  // Same nonce again: replay.
  auto replay = broker_process(req_t);
  EXPECT_FALSE(replay.ok());
  EXPECT_NE(replay.error().find("replay"), std::string::npos);
}

TEST_F(SapTest, RelayToDifferentTelcoRejected) {
  // The UE authorised telco-1; telco-2 relaying the same authReqU must fail
  // (the authVec binds idT).
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco2_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  EXPECT_FALSE(decision.ok());
  EXPECT_NE(decision.error().find("mismatch"), std::string::npos);
}

TEST_F(SapTest, UnknownSubscriberRejected) {
  Rng other_rng(99);
  auto mallory_keys = crypto::RsaKeyPair::generate(other_rng, kBits);
  SapUe mallory("mallory", "broker", std::move(mallory_keys), broker_pk_);
  const Bytes req_u = mallory.make_auth_req("telco-1", other_rng);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  EXPECT_FALSE(broker_process(req_t).ok());
}

TEST_F(SapTest, StolenIdentityWrongKeyRejected) {
  // Mallory claims to be alice but signs with her own key.
  Rng other_rng(100);
  auto mallory_keys = crypto::RsaKeyPair::generate(other_rng, kBits);
  SapUe impostor("alice", "broker", std::move(mallory_keys), broker_pk_);
  const Bytes req_u = impostor.make_auth_req("telco-1", other_rng);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  EXPECT_FALSE(decision.ok());
  EXPECT_NE(decision.error().find("signature"), std::string::npos);
}

TEST_F(SapTest, UncertifiedTelcoRejected) {
  // A bTelco whose certificate was signed by a different CA.
  Rng other_rng(101);
  crypto::CertificateAuthority rogue_ca("rogue", other_rng, kBits);
  auto keys = crypto::RsaKeyPair::generate(other_rng, kBits);
  auto cert = rogue_ca.issue("telco-evil", keys.public_key(), TimePoint::zero(),
                             TimePoint::zero() + Duration::s(1000));
  SapTelco evil("telco-evil", std::move(keys), cert, rogue_ca.public_key());

  const Bytes req_u = ue_->make_auth_req("telco-evil", rng_);
  const Bytes req_t = evil.make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  EXPECT_FALSE(decision.ok());
  EXPECT_NE(decision.error().find("certificate"), std::string::npos);
}

TEST_F(SapTest, TamperedRequestRejected) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  for (std::size_t offset : {req_t.size() / 4, req_t.size() / 2, req_t.size() - 1}) {
    Bytes bad = req_t;
    bad[offset] ^= 0x01;
    EXPECT_FALSE(broker_process(bad).ok()) << "offset " << offset;
  }
}

TEST_F(SapTest, AuthorizationPolicyHookDenies) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_->process_auth_req(
      req_t, TimePoint::zero(), rng_, QosInfo{},
      [](const std::string&, const std::string&) { return false; });
  EXPECT_FALSE(decision.ok());
  EXPECT_NE(decision.error().find("denied"), std::string::npos);
}

TEST_F(SapTest, ResponseForOtherTelcoRejected) {
  // telco-2 must not be able to use telco-1's authorization.
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  ASSERT_TRUE(decision.ok());
  auto hijack = telco2_->process_auth_resp(decision.value().auth_resp_t, broker_cert_,
                                           TimePoint::zero());
  EXPECT_FALSE(hijack.ok());
}

TEST_F(SapTest, UeRejectsTamperedResponse) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  auto decision = broker_process(req_t);
  ASSERT_TRUE(decision.ok());
  Bytes bad = decision.value().auth_resp_u;
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(ue_->process_auth_resp(bad).ok());
}

TEST_F(SapTest, UeRejectsReplayedResponse) {
  const Bytes req1 = ue_->make_auth_req("telco-1", rng_);
  auto d1 = broker_process(telco1_->make_auth_req_t(req1, QosCap{}));
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(ue_->process_auth_resp(d1.value().auth_resp_u).ok());

  // New attach (new nonce) — the old response must not be accepted.
  (void)ue_->make_auth_req("telco-1", rng_);
  auto replay = ue_->process_auth_resp(d1.value().auth_resp_u);
  EXPECT_FALSE(replay.ok());
}

TEST_F(SapTest, QosNegotiationClampsToCapability) {
  QosCap cap;
  cap.max_dl_bps = 5e6;
  cap.max_ul_bps = 1e6;
  QosInfo desired;
  desired.dl_bps = 20e6;
  desired.ul_bps = 0.5e6;
  const QosInfo out = QosInfo::negotiate(desired, cap);
  EXPECT_DOUBLE_EQ(out.dl_bps, 5e6);
  EXPECT_DOUBLE_EQ(out.ul_bps, 0.5e6);

  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, cap);
  auto decision = broker_->process_auth_req(req_t, TimePoint::zero(), rng_, desired, nullptr);
  ASSERT_TRUE(decision.ok());
  EXPECT_DOUBLE_EQ(decision.value().qos.dl_bps, 5e6);
  auto t_session = telco1_->process_auth_resp(decision.value().auth_resp_t, broker_cert_,
                                              TimePoint::zero());
  ASSERT_TRUE(t_session.ok());
  EXPECT_DOUBLE_EQ(t_session.value().qos.dl_bps, 5e6);
}

TEST_F(SapTest, SecurityContextDerivationIsDeterministicAndSeparated) {
  const Bytes ss(32, 0x11);
  const SecurityContext a = SecurityContext::derive(ss);
  const SecurityContext b = SecurityContext::derive(ss);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.k_nas_enc, a.k_nas_int);
  EXPECT_NE(a.k_nas_enc, a.k_as);
  const SecurityContext c = SecurityContext::derive(Bytes(32, 0x12));
  EXPECT_NE(a.k_nas_enc, c.k_nas_enc);
}

TEST_F(SapTest, RevokedSubscriberRejected) {
  broker_->remove_subscriber("alice");
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  const Bytes req_t = telco1_->make_auth_req_t(req_u, QosCap{});
  EXPECT_FALSE(broker_process(req_t).ok());
}

TEST_F(SapTest, SessionKeysDifferAcrossAttachments) {
  auto run = [&] {
    const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
    auto d = broker_process(telco1_->make_auth_req_t(req_u, QosCap{}));
    EXPECT_TRUE(d.ok());
    return d.value().ss;
  };
  EXPECT_NE(run(), run());
}

// --- Resumption tickets: negative paths fail closed ------------------------
//
// The broker's reputation engine keys on these verdict strings, so each
// rejection must be byte-deterministic, never a partial grant.

TEST_F(SapTest, ResumeEnabledBrokerMintsAVerifiableTicket) {
  const Bytes stek = rng_.random_bytes(32);
  broker_->enable_resume(stek, Duration::s(60));
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  auto decision = broker_process(telco1_->make_auth_req_t(req_u, QosCap{}));
  ASSERT_TRUE(decision.ok()) << decision.error();
  auto session = ue_->process_auth_resp(decision.value().auth_resp_u);
  ASSERT_TRUE(session.ok()) << session.error();
  ASSERT_FALSE(session.value().ticket.empty());

  // The UE derives ss_resume from ss (= kasme); a federated bTelco verifies
  // the whole request locally and learns only the pseudonym.
  const Bytes ss_resume = derive_resume_secret(session.value().security.kasme);
  const Bytes req =
      make_resume_request(session.value().ticket, "telco-2", 1, ss_resume, rng_);
  auto grant = verify_resume_request(req, "telco-2", broker_pk_, stek, TimePoint::zero());
  ASSERT_TRUE(grant.ok()) << grant.error();
  EXPECT_EQ(grant.value().inner.session_id, session.value().session_id);
  EXPECT_EQ(grant.value().inner.pseudonym.find("alice"), std::string::npos);
}

TEST_F(SapTest, TamperedTicketSignatureFailsClosedDeterministically) {
  const Bytes stek = rng_.random_bytes(32);
  broker_->enable_resume(stek, Duration::s(60));
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  auto decision = broker_process(telco1_->make_auth_req_t(req_u, QosCap{}));
  ASSERT_TRUE(decision.ok());
  auto session = ue_->process_auth_resp(decision.value().auth_resp_u);
  ASSERT_TRUE(session.ok());
  const Bytes ss_resume = derive_resume_secret(session.value().security.kasme);

  // Flip one bit anywhere in the ticket — sealed blob, expiry, or the
  // trailing broker signature — and the verdict is the same exact string.
  const Bytes& ticket = session.value().ticket;
  for (std::size_t i : {std::size_t{4}, ticket.size() / 2, ticket.size() - 1}) {
    Bytes tampered = ticket;
    tampered[i] ^= 0x01;
    const Bytes req = make_resume_request(tampered, "telco-2", 0, ss_resume, rng_);
    auto grant = verify_resume_request(req, "telco-2", broker_pk_, stek, TimePoint::zero());
    ASSERT_FALSE(grant.ok()) << "byte " << i;
    EXPECT_EQ(grant.error(), "resume: ticket: broker signature invalid") << "byte " << i;
  }
}

TEST_F(SapTest, WrongStekFailsClosedWithoutLeakingContents) {
  const Bytes stek = rng_.random_bytes(32);
  broker_->enable_resume(stek, Duration::s(60));
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  auto decision = broker_process(telco1_->make_auth_req_t(req_u, QosCap{}));
  ASSERT_TRUE(decision.ok());
  auto session = ue_->process_auth_resp(decision.value().auth_resp_u);
  ASSERT_TRUE(session.ok());
  const Bytes ss_resume = derive_resume_secret(session.value().security.kasme);
  const Bytes req =
      make_resume_request(session.value().ticket, "telco-2", 0, ss_resume, rng_);
  // A bTelco outside the federation (different STEK) cannot honour — or
  // read — the ticket, even though the broker signature checks out.
  const Bytes other_stek = rng_.random_bytes(32);
  auto grant = verify_resume_request(req, "telco-2", broker_pk_, other_stek, TimePoint::zero());
  ASSERT_FALSE(grant.ok());
  EXPECT_NE(grant.error().find("STEK seal invalid"), std::string::npos);
}

TEST_F(SapTest, ClockSkewedTicketExpiryFailsClosedAtTheBoundary) {
  Rng rng(55);
  const auto broker_keys = crypto::RsaKeyPair::generate(rng, kBits);
  const Bytes stek = rng.random_bytes(32);
  TicketInner inner;
  inner.pseudonym = "pseud-9";
  inner.session_id = 9;
  inner.ss_resume = derive_resume_secret(rng.random_bytes(32));
  inner.ticket_id = rng.random_bytes(kTicketIdSize);
  const TimePoint expiry = TimePoint::zero() + Duration::s(30);
  const Bytes ticket = mint_resume_ticket(broker_keys, stek, inner, expiry, rng);

  // One nanosecond before expiry: honoured. At and past expiry (a bTelco
  // whose clock has drifted forward must still reject): fail closed.
  const TimePoint just_before = expiry - Duration::ns(1);
  EXPECT_TRUE(open_ticket(ticket, broker_keys.public_key(), stek, just_before).ok());
  for (const TimePoint now : {expiry, expiry + Duration::s(10)}) {
    auto opened = open_ticket(ticket, broker_keys.public_key(), stek, now);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.error(), "ticket: expired");
  }
}

TEST_F(SapTest, StaleBrokerCertificateRejectedByTelco) {
  const Bytes req_u = ue_->make_auth_req("telco-1", rng_);
  auto decision = broker_process(telco1_->make_auth_req_t(req_u, QosCap{}));
  ASSERT_TRUE(decision.ok());
  // The broker certificate lapsed between issuance and the bTelco's check:
  // the response is discarded, no session is installed.
  const TimePoint past_validity = TimePoint::zero() + Duration::s(2'000'000);
  auto session =
      telco1_->process_auth_resp(decision.value().auth_resp_t, broker_cert_, past_validity);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error(), "authRespT: broker certificate expired");
}

TEST_F(SapTest, StaleTelcoCertificateRejectedByBroker) {
  // A bTelco presenting a lapsed certificate is refused service — the
  // deterministic verdict the broker's reputation engine records.
  auto t3_keys = crypto::RsaKeyPair::generate(rng_, kBits);
  const TimePoint lapses = TimePoint::zero() + Duration::s(5);
  auto t3_cert = ca_->issue("telco-3", t3_keys.public_key(), TimePoint::zero(), lapses);
  SapTelco telco3("telco-3", std::move(t3_keys), t3_cert, ca_->public_key());

  const Bytes req_u = ue_->make_auth_req("telco-3", rng_);
  const Bytes req_t = telco3.make_auth_req_t(req_u, QosCap{});
  auto decision = broker_->process_auth_req(req_t, lapses + Duration::s(1), rng_, QosInfo{},
                                            /*authorize=*/nullptr);
  ASSERT_FALSE(decision.ok());
  EXPECT_EQ(decision.error(), "authReqT: bTelco certificate expired");
}

}  // namespace
}  // namespace cb::cellbricks
