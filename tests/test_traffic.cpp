// Hybrid fluid/packet traffic engine (DESIGN.md §11): arena layout, max-min
// shares, byte conservation, the fluid/packet fidelity boundary, same-seed
// determinism, and the small-N packet-vs-fluid agreement the CI gates on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "scenario/scale_traffic.hpp"
#include "sim/simulator.hpp"
#include "test_seed.hpp"
#include "traffic/arena.hpp"
#include "traffic/fluid.hpp"

namespace cb::traffic {
namespace {

TEST(Arena, SoALayoutAndRecycling) {
  SessionArena arena(8);
  const SessionId a = arena.create(0, 1.0f, 5e6);
  const SessionId b = arena.create(1, 2.0f, 0.0, 2);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(arena.size(), 2u);
  arena.release(a);
  EXPECT_EQ(arena.size(), 1u);
  // Freed slot is recycled, not grown.
  const SessionId c = arena.create(3, 1.0f, 1e6);
  EXPECT_EQ(c, a);
  EXPECT_EQ(arena.slots(), 2u);
  EXPECT_EQ(arena.cell(c), 3u);
  EXPECT_EQ(arena.mode(c), FlowMode::Idle);
  // The working-set figure is a compile-time constant of the column set.
  EXPECT_EQ(SessionArena::bytes_per_session(), 4u + 4u + 2u + 6u * 8u + 2u * 8u);
}

TEST(Fluid, EqualShareSplitsCapacity) {
  sim::Simulator sim(1);
  SessionArena arena(4);
  FluidEngine eng(sim, arena);
  const std::uint32_t cell = eng.add_cell(100e6);
  for (int i = 0; i < 4; ++i) arena.create(cell, 1.0f, 0.0);
  for (SessionId id = 0; id < 4; ++id) eng.start_flow(id, 1e9);
  eng.flush();  // mutations defer the water-fill to the same-timestamp drain
  for (SessionId id = 0; id < 4; ++id) EXPECT_DOUBLE_EQ(arena.rate_bps(id), 25e6);
}

TEST(Fluid, CapBoundFlowsReleaseCapacityToOthers) {
  sim::Simulator sim(1);
  SessionArena arena(3);
  FluidEngine eng(sim, arena);
  const std::uint32_t cell = eng.add_cell(90e6);
  arena.create(cell, 1.0f, 10e6);  // shaper-capped
  arena.create(cell, 1.0f, 0.0);
  arena.create(cell, 1.0f, 0.0);
  for (SessionId id = 0; id < 3; ++id) eng.start_flow(id, 1e9);
  eng.flush();
  // Water-filling: capped flow keeps 10, the other two split the remaining 80.
  EXPECT_DOUBLE_EQ(arena.rate_bps(0), 10e6);
  EXPECT_DOUBLE_EQ(arena.rate_bps(1), 40e6);
  EXPECT_DOUBLE_EQ(arena.rate_bps(2), 40e6);
}

TEST(Fluid, WeightedShares) {
  sim::Simulator sim(1);
  SessionArena arena(2);
  FluidEngine eng(sim, arena);
  const std::uint32_t cell = eng.add_cell(30e6);
  arena.create(cell, 2.0f, 0.0);  // premium QCI, weight 2
  arena.create(cell, 1.0f, 0.0);
  eng.start_flow(0, 1e9);
  eng.start_flow(1, 1e9);
  eng.flush();
  EXPECT_DOUBLE_EQ(arena.rate_bps(0), 20e6);
  EXPECT_DOUBLE_EQ(arena.rate_bps(1), 10e6);
}

TEST(Fluid, CompletionTimeIsAnalytic) {
  sim::Simulator sim(1);
  SessionArena arena(1);
  FluidEngine eng(sim, arena);
  const std::uint32_t cell = eng.add_cell(8e6);  // 1 MB/s
  arena.create(cell, 1.0f, 0.0);
  std::vector<SessionId> done;
  eng.on_complete = [&](SessionId id) { done.push_back(id); };
  eng.start_flow(0, 10e6);  // 10 MB at 1 MB/s -> 10 s
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(arena.mode(0), FlowMode::Done);
  EXPECT_DOUBLE_EQ(arena.delivered_bytes(0), 10e6);
  EXPECT_NEAR(static_cast<double>(arena.finish_ns(0)) / 1e9, 10.0, 1e-3);
  // Only rate-change points generated events: O(1) events for the whole flow.
  EXPECT_LT(sim.events_executed(), 10u);
}

TEST(Fluid, ConservationLedgerAcrossChurn) {
  sim::Simulator sim(1);
  SessionArena arena(16);
  FluidEngine eng(sim, arena);
  const std::uint32_t c0 = eng.add_cell(50e6);
  const std::uint32_t c1 = eng.add_cell(50e6);
  for (int i = 0; i < 16; ++i) arena.create(i % 2 ? c0 : c1, 1.0f, 0.0);
  for (SessionId id = 0; id < 16; ++id) {
    sim.schedule(Duration::ms(50 * id), [&eng, id] { eng.start_flow(id, 4e6); });
  }
  // Mid-run churn: handovers and a capacity dip — all rate-change points.
  sim.schedule(Duration::seconds(1.0), [&] {
    for (SessionId id = 0; id < 8; ++id) eng.handover(id, arena.cell(id) == c0 ? c1 : c0);
  });
  sim.schedule(Duration::seconds(2.0), [&] { eng.set_cell_capacity(c0, 10e6); });
  sim.schedule(Duration::seconds(3.0), [&] { eng.set_cell_capacity(c0, 50e6); });
  sim.run();

  double delivered = 0.0;
  for (SessionId id = 0; id < 16; ++id) {
    EXPECT_EQ(arena.mode(id), FlowMode::Done);
    EXPECT_DOUBLE_EQ(arena.delivered_bytes(id), arena.demand_bytes(id));
    delivered += arena.delivered_bytes(id);
  }
  // fluid.conservation: delivered == sum of banked segments, no negatives.
  EXPECT_NEAR(eng.segment_bytes(), delivered, 1.0);
  EXPECT_EQ(eng.negative_residuals(), 0u);
  EXPECT_EQ(eng.active_fluid_flows(), 0u);
}

TEST(Fluid, GhostReservationConservesCellCapacity) {
  sim::Simulator sim(1);
  SessionArena arena(2);
  FluidEngine eng(sim, arena);
  const std::uint32_t cell = eng.add_cell(20e6);
  arena.create(cell, 1.0f, 0.0);
  arena.create(cell, 1.0f, 0.0);
  double ghost_share = -1.0;
  eng.on_rate_share = [&](SessionId id, double share) {
    EXPECT_EQ(id, 0u);
    ghost_share = share;
  };
  eng.start_flow(0, 1e9);
  eng.start_flow(1, 1e9);
  eng.demote(0);
  // The ghost still holds its 10 Mb/s share; the fluid flow does NOT absorb it.
  EXPECT_DOUBLE_EQ(ghost_share, 10e6);
  EXPECT_DOUBLE_EQ(arena.rate_bps(1), 10e6);
  // Packet progress is recorded by the caller; promote re-derives residual.
  arena.delivered_bytes(0) += 5e6;
  eng.promote(0);
  EXPECT_EQ(arena.mode(0), FlowMode::Fluid);
  EXPECT_DOUBLE_EQ(arena.rate_bps(0), 10e6);
  EXPECT_DOUBLE_EQ(arena.residual_bytes(0), 1e9 - 5e6);
}

TEST(Fluid, CommitCallbackDemoteMidDrainSupersedes) {
  // Commit-time re-entrancy (DESIGN.md §13): an on_rate_share handler fired
  // while a drain is committing may synchronously mutate a cell whose
  // outcome from the SAME drain has not committed yet. The inline fill from
  // demote() must supersede that outcome — its stale ghost shares must never
  // be replayed after the fresh ones, its stale completion event must not be
  // scheduled — while its accrual (banked before the handler ran) still
  // reaches the ledger, and a ghost only the stale outcome reported is
  // replayed at the CURRENT share rather than dropped.
  sim::Simulator sim(1);
  SessionArena arena(4);
  FluidEngine eng(sim, arena);
  const std::uint32_t c0 = eng.add_cell(20e6);
  const std::uint32_t c1 = eng.add_cell(30e6);
  arena.create(c0, 1.0f, 0.0);  // 0: ghost in c0 (the re-entrancy trigger)
  arena.create(c0, 1.0f, 0.0);  // 1: fluid in c0
  arena.create(c1, 1.0f, 0.0);  // 2: fluid in c1, demoted by the handler
  arena.create(c1, 1.0f, 0.0);  // 3: ghost in c1 (the stale-share victim)

  std::vector<std::pair<SessionId, double>> published;
  bool reacted = false;
  eng.on_rate_share = [&](SessionId id, double share) {
    published.emplace_back(id, share);
    if (id == 0 && share == 20e6 && !reacted) {
      // Fired from the drain's commit of c0, with c1's outcome still
      // pending: grow c1 (deferred, dirty) and demote its fluid flow —
      // fill_cell_now(c1) commits fresh 40 Mb/s shares inline, making the
      // pending outcome (30 Mb/s shares, a completion event for flow 2)
      // stale mid-drain.
      reacted = true;
      eng.set_cell_capacity(c1, 80e6);
      eng.demote(2);
    }
  };

  eng.start_flow(0, 1e9);
  eng.start_flow(1, 1e9);
  eng.start_flow(2, 1e9);
  eng.start_flow(3, 1e9);
  eng.demote(0);  // publishes (0, 10e6)
  eng.demote(3);  // publishes (3, 15e6)
  // Same-timestamp capacity bumps dirty both cells into one drain; c0
  // commits first (ascending cell id) and its ghost-share bump triggers the
  // handler above.
  sim.schedule(Duration::seconds(2.0), [&] {
    eng.set_cell_capacity(c0, 40e6);
    eng.set_cell_capacity(c1, 60e6);
  });
  sim.run();

  // Flow 1 (the only remaining fluid flow) must still complete — a stale
  // commit for c1 must not have perturbed c0's completion machinery.
  EXPECT_EQ(arena.mode(1), FlowMode::Done);
  EXPECT_DOUBLE_EQ(arena.delivered_bytes(1), 1e9);
  // Final shares: flow 0 alone in c0 at 40 Mb/s; c1's ghosts split 80 Mb/s.
  EXPECT_DOUBLE_EQ(arena.rate_bps(0), 40e6);
  EXPECT_DOUBLE_EQ(arena.rate_bps(2), 40e6);
  EXPECT_DOUBLE_EQ(arena.rate_bps(3), 40e6);
  // The full publication log, in order. At t=2 the fresh inline fill
  // publishes (2, 40e6) and (3, 40e6); the superseded outcome then replays
  // ghost 3 at the CURRENT share — (3, 40e6) again, never its stale 30e6 —
  // and flow 1's completion later re-fills c0, bumping ghost 0 to 40 Mb/s.
  const std::vector<std::pair<SessionId, double>> expected = {
      {0, 10e6}, {3, 15e6},              // t=0 demotions
      {0, 20e6},                         // t=2 drain, c0 commit (trigger)
      {2, 40e6}, {3, 40e6}, {3, 40e6},   // inline fill, then stale-skip replay
      {0, 40e6},                         // flow 1 completes, c0 re-fills
  };
  EXPECT_EQ(published, expected);
  // Ledger still conserves: flow 1's 1e9 fluid bytes plus flow 2's 2 s at
  // 15 Mb/s before its demotion — the accrual banked by the superseded
  // outcome must not be dropped with it.
  EXPECT_NEAR(eng.segment_bytes(), 1e9 + 2.0 * 15e6 / 8.0, 1.0);
  EXPECT_EQ(eng.negative_residuals(), 0u);
}

TEST(Fluid, PromoteAfterPacketWindowDoesNotDoubleCount) {
  // Regression: promote() must accrue the cell BEFORE flipping the mode back
  // to Fluid. Sim time advances between demote and promote here — if the
  // accrual runs after the flip, the ghost's nonzero share over the packet
  // window is banked again as fluid segments on top of the lane's TCP bytes.
  sim::Simulator sim(1);
  SessionArena arena(2);
  FluidEngine eng(sim, arena);
  const std::uint32_t cell = eng.add_cell(20e6);
  arena.create(cell, 1.0f, 0.0);
  arena.create(cell, 1.0f, 0.0);
  eng.start_flow(0, 100e6);
  eng.start_flow(1, 1e9);
  double packet_bytes = 0.0;
  sim.schedule(Duration::seconds(1.0), [&] { eng.demote(0); });
  sim.schedule(Duration::seconds(3.0), [&] {
    // The lane delivered 2 s at the 10 Mb/s ghost share; the caller banks it.
    packet_bytes = 2.0 * 10e6 / 8.0;
    arena.delivered_bytes(0) += packet_bytes;
    eng.promote(0);
    // Segments so far: 1 s of flow 0 pre-demote + 3 s of flow 1, all at
    // 10 Mb/s — the packet window contributes zero fluid segments.
    EXPECT_NEAR(eng.segment_bytes(), 4.0 * 10e6 / 8.0, 1.0);
    EXPECT_NEAR(arena.delivered_bytes(0), 1.25e6 + packet_bytes, 1.0);
  });
  sim.run();
  EXPECT_EQ(arena.mode(0), FlowMode::Done);
  EXPECT_EQ(arena.mode(1), FlowMode::Done);
  EXPECT_DOUBLE_EQ(arena.delivered_bytes(0), 100e6);
  // Conservation across the boundary: every delivered byte is either a fluid
  // segment or a packet byte, never both.
  const double delivered = arena.delivered_bytes(0) + arena.delivered_bytes(1);
  EXPECT_NEAR(eng.segment_bytes() + packet_bytes, delivered, 1.0);
}

// Reference from-scratch water-fill, mirroring the engine's arithmetic
// exactly (same visit order, same fresh weight sum over the id-ordered
// member list, same fair-share expression) — the ground truth the
// incremental engine must match to the last ulp.
void reference_fill(const SessionArena& arena, std::vector<SessionId> members,
                    double capacity, std::vector<double>& expected) {
  auto key = [&](SessionId id) {
    const double cap = arena.cap_bps(id);
    return cap > 0.0 ? cap / arena.weight(id) : std::numeric_limits<double>::infinity();
  };
  double weight_left = 0.0;
  for (SessionId id : members) weight_left += arena.weight(id);  // ascending id
  std::sort(members.begin(), members.end(), [&](SessionId a, SessionId b) {
    const double ka = key(a);
    const double kb = key(b);
    if (ka != kb) return ka < kb;
    return a < b;
  });
  double remaining = capacity;
  for (SessionId id : members) {
    const double w = arena.weight(id);
    double rate = 0.0;
    if (remaining > 0.0 && weight_left > 0.0) {
      const double fair = remaining * w / weight_left;
      const double cap = arena.cap_bps(id);
      rate = (cap > 0.0 && cap < fair) ? cap : fair;
    }
    remaining -= rate;
    weight_left -= w;
    expected[id] = rate;
  }
}

TEST(Fluid, IncrementalEqualsFromScratchUnderChurn) {
  // DESIGN.md §13 property: the persistently maintained fill order plus
  // deferred dirty-cell drains must produce BIT-IDENTICAL rates to a
  // from-scratch water-fill of the same members, after any interleaving of
  // join / leave / cap-change / demote / promote / handover / capacity
  // churn. 40 seeds x 120 ops; every surviving member's arena rate is
  // compared exactly (ghosts included — their published share is a rate).
  constexpr int kSeeds = 40;
  constexpr int kOps = 120;
  constexpr std::uint32_t kCells = 3;
  constexpr SessionId kSessions = 48;
  for (int s = 0; s < kSeeds; ++s) {
    const std::uint64_t seed = cb::test::seed_or(1000) + static_cast<std::uint64_t>(s);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::Simulator sim(seed);
    SessionArena arena(kSessions);
    FluidEngine eng(sim, arena);
    Rng rng(seed);
    for (std::uint32_t c = 0; c < kCells; ++c) eng.add_cell(rng.uniform(20e6, 120e6));
    for (SessionId id = 0; id < kSessions; ++id) {
      const double cap = rng.chance(0.5) ? rng.uniform(1e6, 30e6) : 0.0;
      arena.create(rng.next_below(kCells), rng.chance(0.25) ? 2.0f : 1.0f, cap);
    }

    std::vector<double> expected(kSessions, 0.0);
    for (int op = 0; op < kOps; ++op) {
      const SessionId id = static_cast<SessionId>(rng.next_below(kSessions));
      const FlowMode mode = arena.mode(id);
      switch (rng.next_below(7)) {
        case 0:  // join
          if (mode == FlowMode::Idle || mode == FlowMode::Done) {
            if (mode == FlowMode::Done) arena.mode(id) = FlowMode::Idle;
            eng.start_flow(id, rng.uniform(1e6, 40e6));
          }
          break;
        case 1:  // cap change (including to/from uncapped)
          if (mode == FlowMode::Fluid || mode == FlowMode::Packet) {
            eng.set_flow_cap(id, rng.chance(0.3) ? 0.0 : rng.uniform(1e6, 30e6));
          }
          break;
        case 2:
          if (mode == FlowMode::Fluid) eng.demote(id);
          break;
        case 3:
          if (mode == FlowMode::Packet) eng.promote(id);
          break;
        case 4:
          if (mode == FlowMode::Fluid || mode == FlowMode::Packet) {
            eng.handover(id, static_cast<std::uint32_t>(rng.next_below(kCells)));
          }
          break;
        case 5:
          eng.set_cell_capacity(static_cast<std::uint32_t>(rng.next_below(kCells)),
                                rng.uniform(10e6, 120e6));
          break;
        case 6:  // advance time — completions fire, leaves happen
          sim.run_until(sim.now() + Duration::millis(rng.uniform(1.0, 500.0)));
          break;
      }
      eng.flush();

      // From-scratch reference per cell, membership derived from the arena.
      for (std::uint32_t c = 0; c < kCells; ++c) {
        std::vector<SessionId> members;
        for (SessionId m = 0; m < kSessions; ++m) {
          const FlowMode mm = arena.mode(m);
          if ((mm == FlowMode::Fluid || mm == FlowMode::Packet) && arena.cell(m) == c) {
            members.push_back(m);
          }
        }
        reference_fill(arena, members, eng.cell_capacity(c), expected);
        for (SessionId m : members) {
          ASSERT_EQ(arena.rate_bps(m), expected[m])
              << "op=" << op << " cell=" << c << " session=" << m;
        }
      }
    }
    EXPECT_EQ(eng.negative_residuals(), 0u);
  }
}

// --- scenario-level properties ---------------------------------------------

scenario::ScaleTrafficConfig small_config(std::uint64_t seed) {
  scenario::ScaleTrafficConfig cfg;
  cfg.n_ues = 24;
  cfg.n_cells = 2;
  cfg.seed = seed;
  cfg.mean_flow_mbytes = 2.0;
  cfg.start_window_s = 2.0;
  cfg.horizon_s = 600.0;
  return cfg;
}

TEST(ScaleTraffic, FluidDeterministicAcrossRuns) {
  const std::uint64_t seed = cb::test::seed_or(7);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto cfg = small_config(seed);
  cfg.mode = scenario::TrafficMode::Fluid;
  cfg.mobility_interval_s = 20.0;
  cfg.shaper_resample_s = 30.0;
  const auto a = scenario::run_scale_traffic(cfg);
  const auto b = scenario::run_scale_traffic(cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.completed, cfg.n_ues);
  EXPECT_EQ(a.negative_residuals, 0u);
  EXPECT_NEAR(a.delivered_bytes, a.segment_bytes + a.packet_ledger_bytes, 1.0);
}

TEST(ScaleTraffic, PacketDeterministicAcrossRuns) {
  const std::uint64_t seed = cb::test::seed_or(11);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto cfg = small_config(seed);
  cfg.n_ues = 8;
  cfg.mode = scenario::TrafficMode::Packet;
  const auto a = scenario::run_scale_traffic(cfg);
  const auto b = scenario::run_scale_traffic(cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.completed, cfg.n_ues);
}

TEST(ScaleTraffic, PacketVsFluidAgreementSmallN) {
  // The Table-1-style agreement the bench and CI gate on: identical
  // seed-derived workload, both modes complete everything, delivered bytes
  // and billing byte-exact, completion times within the documented tolerance.
  // The timing gate runs in the shaper-dominated regime (cell capacity not
  // contended) — that is where the fluid steady-state assumption holds; under
  // heavy contention TCP's slow convergence diverges from instant max-min
  // and the hybrid engine demotes to packets instead (see EXPERIMENTS.md).
  const std::uint64_t seed = cb::test::seed_or(3);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto cfg = small_config(seed);
  cfg.scheduler_capacity_bps = 400e6;  // shaper caps are the bottleneck
  cfg.mode = scenario::TrafficMode::Fluid;
  const auto fluid = scenario::run_scale_traffic(cfg);
  cfg.mode = scenario::TrafficMode::Packet;
  const auto packet = scenario::run_scale_traffic(cfg);

  ASSERT_EQ(fluid.completed, cfg.n_ues);
  ASSERT_EQ(packet.completed, cfg.n_ues);
  // Same flows, both complete: byte totals and billing must match exactly.
  EXPECT_DOUBLE_EQ(fluid.delivered_bytes, packet.delivered_bytes);
  EXPECT_DOUBLE_EQ(fluid.billing_usd, packet.billing_usd);
  // Completion-time agreement: fluid skips handshake + slow start (~5 RTTs
  // on these flows), so the tolerance is behavioral, not numerical.
  EXPECT_NEAR(fluid.completion_mean_s, packet.completion_mean_s,
              0.15 * packet.completion_mean_s);
  EXPECT_NEAR(fluid.completion_p99_s, packet.completion_p99_s,
              0.25 * packet.completion_p99_s);
}

TEST(ScaleTraffic, ContendedCellBytesStillExact) {
  // Under cell contention the timing models legitimately diverge, but byte
  // totals, billing, and the conservation ledger must stay exact.
  const std::uint64_t seed = cb::test::seed_or(3);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto cfg = small_config(seed);
  cfg.mode = scenario::TrafficMode::Fluid;
  const auto fluid = scenario::run_scale_traffic(cfg);
  cfg.mode = scenario::TrafficMode::Packet;
  const auto packet = scenario::run_scale_traffic(cfg);
  ASSERT_EQ(fluid.completed, cfg.n_ues);
  ASSERT_EQ(packet.completed, cfg.n_ues);
  EXPECT_DOUBLE_EQ(fluid.delivered_bytes, packet.delivered_bytes);
  EXPECT_DOUBLE_EQ(fluid.billing_usd, packet.billing_usd);
  EXPECT_NEAR(fluid.delivered_bytes, fluid.segment_bytes, 1.0);
}

TEST(ScaleTraffic, HybridFaultDemotesAndRepromotesByteExact) {
  // A chaos fault mid-transfer demotes the faulted cell's flows to packet
  // lanes; after the window they re-promote and every flow still completes
  // with delivered == demand — byte-exact against a pure-fluid run of the
  // same seed (the fidelity boundary must not create or destroy bytes).
  const std::uint64_t seed = cb::test::seed_or(5);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto cfg = small_config(seed);
  cfg.mode = scenario::TrafficMode::Hybrid;
  cfg.fault_start_s = 3.0;
  cfg.fault_duration_s = 5.0;
  cfg.fault_cell = 0;
  const auto hybrid = scenario::run_scale_traffic(cfg);
  EXPECT_EQ(hybrid.completed, cfg.n_ues);
  EXPECT_GT(hybrid.demotions, 0u);
  EXPECT_GT(hybrid.promotions + /*finished inside window*/ 0u, 0u);
  EXPECT_EQ(hybrid.negative_residuals, 0u);
  // Conservation across the boundary: every delivered byte is either a
  // fluid segment or a packet-lane byte, never both.
  EXPECT_NEAR(hybrid.delivered_bytes, hybrid.segment_bytes + hybrid.packet_ledger_bytes, 1.0);

  auto pure = small_config(seed);
  pure.mode = scenario::TrafficMode::Fluid;
  const auto fluid = scenario::run_scale_traffic(pure);
  // Same workload, same total bytes — the fault changes *when*, not *what*.
  EXPECT_DOUBLE_EQ(hybrid.delivered_bytes, fluid.delivered_bytes);
  EXPECT_DOUBLE_EQ(hybrid.billing_usd, fluid.billing_usd);
  // And the hybrid run is deterministic too.
  const auto again = scenario::run_scale_traffic(cfg);
  EXPECT_EQ(hybrid.fingerprint(), again.fingerprint());
}

TEST(ScaleTraffic, FullOutageThrottlesLanes) {
  // fault_capacity_factor == 0 computes a zero ghost share, which the
  // change-only on_rate_share callback never publishes (demote() zeroes the
  // arena rate first). The lane link must still be pinned to the floored
  // rate — not left at 0, which a Link treats as infinite — so demoted flows
  // cannot finish inside the outage window.
  const std::uint64_t seed = cb::test::seed_or(5);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto cfg = small_config(seed);
  cfg.mode = scenario::TrafficMode::Hybrid;
  cfg.fault_start_s = 1.0;
  cfg.fault_duration_s = 5.0;
  cfg.fault_cell = 0;
  cfg.fault_capacity_factor = 0.0;
  scenario::ScaleTrafficSim sim(cfg);
  const auto r = sim.run_to_completion();
  EXPECT_EQ(r.completed, cfg.n_ues);
  EXPECT_GT(r.demotions, 0u);
  const auto& arena = sim.arena();
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(cfg.n_ues); ++i) {
    const double finish_s = static_cast<double>(arena.finish_ns(i)) / 1e9;
    if (arena.cell(i) != 0 || finish_s <= cfg.fault_start_s) continue;
    EXPECT_GE(finish_s, cfg.fault_start_s + cfg.fault_duration_s) << "ue=" << i;
  }
}

TEST(ScaleTraffic, FluidThreadsBitIdentical) {
  // DESIGN.md §13 determinism contract: the parallel drain at 4 worker
  // threads must be BIT-identical to the serial engine on the same seed —
  // same fingerprint (delivered/segment/billing totals, event counts), same
  // per-session delivered bytes, and byte-identical metrics snapshots. The
  // workload exercises every parallel-phase path: multi-cell churn via
  // mobility, epoch-aligned cap resamples (many dirty cells per drain), and
  // a hybrid fault window (ghost-share callbacks replayed at commit).
  const std::uint64_t seed = cb::test::seed_or(13);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto cfg = small_config(seed);
  cfg.mode = scenario::TrafficMode::Hybrid;
  cfg.n_cells = 4;
  cfg.mobility_interval_s = 15.0;
  cfg.shaper_resample_s = 20.0;
  cfg.fault_start_s = 3.0;
  cfg.fault_duration_s = 5.0;

  auto run_with = [&](int threads, std::string& metrics_json,
                      std::vector<double>& per_session) {
    cfg.fluid_threads = threads;
    obs::Registry reg;
    obs::ScopedRegistry scope(&reg);
    scenario::ScaleTrafficSim sim(cfg);
    const auto r = sim.run_to_completion();
    metrics_json = reg.to_json();
    per_session.clear();
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(cfg.n_ues); ++i) {
      per_session.push_back(sim.arena().delivered_bytes(i));
      per_session.push_back(sim.arena().billed_usd(i));
    }
    return r;
  };

  std::string json1, json4;
  std::vector<double> ledger1, ledger4;
  const auto serial = run_with(1, json1, ledger1);
  const auto parallel = run_with(4, json4, ledger4);
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.rate_events, parallel.rate_events);
  EXPECT_EQ(ledger1, ledger4);  // exact: every session's delivered + billed
  EXPECT_EQ(json1, json4);      // byte-identical metrics snapshot
  EXPECT_EQ(serial.completed, cfg.n_ues);
}

TEST(ScaleTraffic, PacketModeRefusesAbsurdN) {
  scenario::ScaleTrafficConfig cfg;
  cfg.mode = scenario::TrafficMode::Packet;
  cfg.n_ues = 100000;
  EXPECT_THROW(scenario::ScaleTrafficSim s(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace cb::traffic
