// Transport-layer unit tests below the socket level: ByteQueue, segment
// wire format (including SACK blocks), malformed-input robustness, and
// configuration knobs.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/service_queue.hpp"
#include "transport/byte_queue.hpp"
#include "transport/tcp.hpp"

namespace cb::transport {
namespace {

// --- ByteQueue -------------------------------------------------------------

TEST(ByteQueue, AppendPeekPop) {
  ByteQueue q;
  EXPECT_TRUE(q.empty());
  q.append(to_bytes("hello "));
  q.append(to_bytes("world"));
  EXPECT_EQ(q.size(), 11u);
  EXPECT_EQ(q.peek(0, 5), to_bytes("hello"));
  EXPECT_EQ(q.peek(6, 5), to_bytes("world"));
  q.pop(6);
  EXPECT_EQ(q.peek(0, 5), to_bytes("world"));
  q.pop(100);  // clamped
  EXPECT_TRUE(q.empty());
}

TEST(ByteQueue, PeekBeyondEndClamps) {
  ByteQueue q;
  q.append(to_bytes("abc"));
  EXPECT_EQ(q.peek(1, 100), to_bytes("bc"));
  EXPECT_TRUE(q.peek(3, 10).empty());
  EXPECT_TRUE(q.peek(99, 1).empty());
}

TEST(ByteQueue, LargeChurn) {
  ByteQueue q;
  Rng rng(4);
  std::uint64_t pushed = 0, popped = 0;
  for (int i = 0; i < 500; ++i) {
    const Bytes chunk = rng.random_bytes(1 + rng.next_below(4000));
    q.append(chunk);
    pushed += chunk.size();
    const std::size_t take = rng.next_below(q.size() + 1);
    q.pop(take);
    popped += take;
    EXPECT_EQ(q.size(), pushed - popped);
  }
}

// --- Segment wire format ------------------------------------------------------

TEST(TcpWire, SackBlocksRoundTrip) {
  TcpHeader h;
  h.seq = 1000;
  h.ack = 2000;
  h.ack_flag = true;
  h.window = 65535;
  h.sack = {{3000, 4400}, {5800, 7200}, {9000, 9001}};
  const Bytes wire = serialize_segment(h, to_bytes("payload"));

  TcpHeader out;
  Bytes payload;
  ASSERT_TRUE(parse_segment(wire, out, payload));
  ASSERT_EQ(out.sack.size(), 3u);
  EXPECT_EQ(out.sack[0], (std::pair<std::uint32_t, std::uint32_t>{3000, 4400}));
  EXPECT_EQ(out.sack[2], (std::pair<std::uint32_t, std::uint32_t>{9000, 9001}));
  EXPECT_EQ(payload, to_bytes("payload"));
}

TEST(TcpWire, EmptySackAndPayload) {
  TcpHeader h;
  h.seq = 7;
  const Bytes wire = serialize_segment(h, {});
  TcpHeader out;
  Bytes payload;
  ASSERT_TRUE(parse_segment(wire, out, payload));
  EXPECT_TRUE(out.sack.empty());
  EXPECT_TRUE(payload.empty());
  EXPECT_EQ(out.seq, 7u);
}

class TcpWireTruncation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpWireTruncation, TruncatedHeadersRejected) {
  TcpHeader h;
  h.sack = {{1, 2}, {3, 4}};
  const Bytes wire = serialize_segment(h, to_bytes("xy"));
  const std::size_t keep = GetParam();
  if (keep >= wire.size()) GTEST_SKIP();
  TcpHeader out;
  Bytes payload;
  // Either cleanly rejected or parsed as a shorter-but-valid frame; it must
  // never crash or throw.
  (void)parse_segment(BytesView(wire.data(), keep), out, payload);
}

INSTANTIATE_TEST_SUITE_P(Cuts, TcpWireTruncation,
                         ::testing::Values(0, 1, 5, 13, 14, 15, 16, 22, 30));

TEST(TcpWire, RandomBytesNeverCrashParser) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const Bytes junk = rng.random_bytes(rng.next_below(80));
    TcpHeader h;
    Bytes payload;
    (void)parse_segment(junk, h, payload);
  }
}

// --- Config knobs ---------------------------------------------------------------

struct MssWorld {
  explicit MssWorld(std::size_t mss) : sim(1), net(sim) {
    TcpConfig cfg;
    cfg.mss = mss;
    a = net.add_node("a");
    b = net.add_node("b");
    net.register_address(net::Ipv4Addr(10, 0, 0, 1), a);
    net.register_address(net::Ipv4Addr(10, 0, 0, 2), b);
    net.connect(a, b, net::LinkParams{.rate_bps = 10e6, .delay = Duration::ms(5)});
    net.recompute_routes();
    stack_a = std::make_unique<TcpStack>(*a, cfg);
    stack_b = std::make_unique<TcpStack>(*b, cfg);
  }
  sim::Simulator sim;
  net::Network net;
  net::Node *a, *b;
  std::unique_ptr<TcpStack> stack_a, stack_b;
};

class TcpMssSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpMssSweep, TransfersWithAnyMss) {
  MssWorld w(GetParam());
  Bytes received;
  std::shared_ptr<TcpSocket> srv;
  w.stack_b->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    srv = std::move(s);
    srv->on_data = [&](BytesView d) { received.insert(received.end(), d.begin(), d.end()); };
  });
  auto c = w.stack_a->connect({net::Ipv4Addr(10, 0, 0, 2), 80});
  Bytes payload(50'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::size_t sent = 0;
  auto pump = [&] {
    while (sent < payload.size()) {
      const std::size_t n =
          c->send(BytesView(payload.data() + sent, payload.size() - sent));
      if (n == 0) return;
      sent += n;
    }
  };
  c->on_connected = pump;
  c->on_send_space = pump;
  w.sim.run_for(Duration::s(20));
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(MssValues, TcpMssSweep, ::testing::Values(128, 536, 1400, 9000));

// --- ServiceQueue ----------------------------------------------------------------

TEST(ServiceQueue, SerializesWork) {
  sim::Simulator sim;
  sim::ServiceQueue q(sim);
  std::vector<double> done_at;
  for (int i = 0; i < 3; ++i) {
    q.submit(Duration::ms(10), [&] { done_at.push_back(sim.now().to_seconds()); });
  }
  sim.run();
  ASSERT_EQ(done_at.size(), 3u);
  EXPECT_NEAR(done_at[0], 0.010, 1e-9);
  EXPECT_NEAR(done_at[1], 0.020, 1e-9);  // queued behind the first
  EXPECT_NEAR(done_at[2], 0.030, 1e-9);
  EXPECT_EQ(q.busy_time().to_millis(), 30.0);
  EXPECT_EQ(q.jobs(), 3u);
}

TEST(ServiceQueue, IdleGapsDoNotAccumulate) {
  sim::Simulator sim;
  sim::ServiceQueue q(sim);
  double second_done = 0;
  q.submit(Duration::ms(5), [] {});
  sim.run_for(Duration::s(1));  // long idle gap
  q.submit(Duration::ms(5), [&] { second_done = sim.now().to_seconds(); });
  sim.run();
  EXPECT_NEAR(second_done, 1.005, 1e-9);  // served immediately after the gap
  EXPECT_EQ(q.busy_time().to_millis(), 10.0);
}

TEST(ServiceQueue, BacklogReflectsQueueing) {
  sim::Simulator sim;
  sim::ServiceQueue q(sim);
  EXPECT_EQ(q.backlog().nanos(), 0);
  q.submit(Duration::ms(50), [] {});
  q.submit(Duration::ms(50), [] {});
  EXPECT_EQ(q.backlog().to_millis(), 100.0);
}

}  // namespace
}  // namespace cb::transport
