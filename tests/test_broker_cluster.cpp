// Sharded broker cluster (DESIGN.md §12): routing, settlement-log fold,
// replication determinism, and crash-mid-pair failover coverage.
#include <gtest/gtest.h>

#include "cellbricks/broker_cluster.hpp"
#include "cellbricks/brokerd.hpp"
#include "cellbricks/settlement_log.hpp"
#include "crypto/box.hpp"
#include "net/network.hpp"
#include "scenario/broker_loadgen.hpp"
#include "sim/simulator.hpp"

using namespace cb;
using namespace cb::cellbricks;

// --- Routing ---------------------------------------------------------------

TEST(ShardRouting, BucketedSessionIdRoundTrips) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t raw = rng.next_u64();
    const auto bucket = static_cast<std::uint16_t>(rng.next_below(kRouteBuckets));
    const std::uint64_t sid = bucketed_session_id(raw, bucket);
    EXPECT_EQ(session_bucket(sid), bucket);
    // The low bits keep the raw id's entropy (ids stay unique per draw).
    EXPECT_EQ(sid & 0xFFFFFFFFFFFFull, raw & 0xFFFFFFFFFFFFull);
  }
}

TEST(ShardRouting, SubscriberBucketIsStableAndInRange) {
  const std::uint16_t b = bucket_of_subscriber("user-001");
  EXPECT_LT(b, kRouteBuckets);
  EXPECT_EQ(bucket_of_subscriber("user-001"), b);
  // Different subscribers spread over more than one bucket.
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(bucket_of_subscriber("user-" + std::to_string(i)));
  EXPECT_GT(seen.size(), 8u);
}

TEST(ShardRouting, HrwRemovalOnlyMovesVictimBuckets) {
  // The consistent-hashing property failover relies on: dropping shard 2
  // re-homes only the buckets shard 2 owned.
  const std::vector<std::size_t> all{0, 1, 2, 3};
  const std::vector<std::size_t> minus2{0, 1, 3};
  for (std::uint32_t b = 0; b < kRouteBuckets; ++b) {
    const std::size_t before = hrw_owner(static_cast<std::uint16_t>(b), all);
    const std::size_t after = hrw_owner(static_cast<std::uint16_t>(b), minus2);
    if (before != 2) {
      EXPECT_EQ(after, before) << "bucket " << b;
    } else {
      EXPECT_NE(after, 2u) << "bucket " << b;
    }
  }
}

TEST(ShardRouting, RouterFailsOverAfterTimeoutsAndRecovers) {
  ShardRouter::Config rcfg;
  rcfg.suspect_after = 2;
  rcfg.suspect_hold = Duration::s(3);
  std::vector<net::EndPoint> eps;
  for (int i = 0; i < 4; ++i) {
    eps.push_back(net::EndPoint{net::Ipv4Addr(2, 2, 2, static_cast<std::uint8_t>(10 + i)),
                                kBrokerPort});
  }
  ShardRouter router(eps, rcfg);
  const TimePoint t0 = TimePoint::zero();
  const std::uint64_t sid = bucketed_session_id(0x1234, 7);
  const std::size_t owner = router.pick_for_session(sid, t0);
  // Two strikes mark the owner suspect; the pick moves elsewhere.
  router.note_timeout(owner, t0);
  router.note_timeout(owner, t0);
  EXPECT_TRUE(router.suspect(owner, t0));
  EXPECT_NE(router.pick_for_session(sid, t0), owner);
  // After the hold expires the original owner is eligible again.
  const TimePoint later = t0 + Duration::s(4);
  EXPECT_FALSE(router.suspect(owner, later));
  EXPECT_EQ(router.pick_for_session(sid, later), owner);
  // A learned redirect overrides rendezvous until its target goes suspect.
  const std::size_t other = (owner + 1) % 4;
  router.learn_redirect(7, static_cast<std::uint16_t>(other));
  EXPECT_EQ(router.pick_for_session(sid, later), other);
  EXPECT_EQ(router.redirects_learned(), 1u);
}

// --- Settlement log + fold -------------------------------------------------

namespace {

SettlementEntry report_entry(std::uint64_t sid, std::uint32_t period, Reporter side,
                             std::uint64_t dl) {
  SettlementEntry e;
  e.kind = SettlementEntry::Kind::ReportIngested;
  e.session_id = sid;
  e.period = period;
  e.reporter = side;
  e.id_u = "u";
  e.id_t = "t";
  e.report.session_id = sid;
  e.report.reporter = side;
  e.report.period = period;
  e.report.dl_bytes = dl;
  return e;
}

SettlementEntry verdict_entry(std::uint64_t sid, std::uint32_t period, bool mismatch,
                              std::int64_t delta) {
  SettlementEntry e;
  e.kind = SettlementEntry::Kind::VerdictPaired;
  e.session_id = sid;
  e.period = period;
  e.id_u = "u";
  e.id_t = "t";
  e.mismatch = mismatch;
  e.delta = delta;
  return e;
}

}  // namespace

TEST(SettlementFold, DuplicateReportsAbsorbedOnce) {
  SettlementState s;
  s.apply(report_entry(9, 0, Reporter::Ue, 1000));
  s.apply(report_entry(9, 0, Reporter::Ue, 1000));  // double-authoring window
  EXPECT_EQ(s.reports_folded(), 1u);
  EXPECT_EQ(s.reports_refolded(), 1u);
  EXPECT_EQ(s.pending().size(), 1u);
  EXPECT_TRUE(s.report_seen(9, 0, Reporter::Ue));
  EXPECT_FALSE(s.report_seen(9, 0, Reporter::Telco));
}

TEST(SettlementFold, ReplayedVerdictsDedupButConflictsAreCounted) {
  SettlementState s;
  s.apply(report_entry(9, 0, Reporter::Ue, 1000));
  s.apply(report_entry(9, 0, Reporter::Telco, 1000));
  s.apply(verdict_entry(9, 0, false, 0));
  ASSERT_TRUE(s.pair_decided(9, 0));
  EXPECT_EQ(s.verdicts_paired(), 1u);
  // Identical replay (the other failover owner authored the same verdict).
  s.apply(verdict_entry(9, 0, false, 0));
  EXPECT_EQ(s.verdicts_paired(), 1u);
  EXPECT_EQ(s.verdicts_deduped(), 1u);
  EXPECT_EQ(s.verdict_conflicts(), 0u);
  // Conflicting replay: must be flagged, never applied.
  s.apply(verdict_entry(9, 0, true, 555));
  EXPECT_EQ(s.verdict_conflicts(), 1u);
  EXPECT_EQ(s.verdicts_paired(), 1u);
}

TEST(SettlementLog, OutOfOrderStoreBuffersUntilGapCloses) {
  SettlementLog author(2), replica(2);
  std::vector<std::uint64_t> applied_order;
  const SettlementLog::ApplyFn track = [&](std::size_t, std::uint64_t index,
                                           const SettlementEntry&) {
    applied_order.push_back(index);
  };
  const SettlementLog::ApplyFn noop = [](std::size_t, std::uint64_t,
                                         const SettlementEntry&) {};
  for (std::uint64_t i = 0; i < 4; ++i) {
    author.append(0, report_entry(1, static_cast<std::uint32_t>(i), Reporter::Ue, i), noop);
  }
  // Deliver 2, 3 first (gap), then 0, 1 (closes it).
  replica.store(0, 2, author.entry(0, 2), track);
  replica.store(0, 3, author.entry(0, 3), track);
  EXPECT_EQ(replica.applied_len(0), 0u);
  EXPECT_EQ(replica.gap_buffered(), 2u);
  replica.store(0, 0, author.entry(0, 0), track);
  replica.store(0, 1, author.entry(0, 1), track);
  EXPECT_EQ(replica.applied_len(0), 4u);
  // Buffered entries are applied only when the gap closes, in index order.
  EXPECT_EQ(applied_order, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  // Duplicate store of an applied index is ignored.
  replica.store(0, 1, author.entry(0, 1), track);
  EXPECT_EQ(replica.applied_len(0), 4u);
  EXPECT_EQ(applied_order.size(), 4u);
  // Same prefix -> same chain hash, on every stream.
  EXPECT_EQ(replica.chain_hash_at(0, 4), author.chain_hash_at(0, 4));
  EXPECT_EQ(replica.chain_hash_at(1, 0), author.chain_hash_at(1, 0));
}

// --- Cluster failover (loadgen-driven integration) -------------------------

namespace {

scenario::BrokerLoadgenConfig small_cluster_config() {
  scenario::BrokerLoadgenConfig cfg;
  cfg.n_shards = 3;
  cfg.n_clients = 6;
  cfg.report_interval = Duration::millis(400);
  cfg.duration_s = 8.0;
  cfg.drain_s = 25.0;
  cfg.seed = 5;
  cfg.rsa_bits = 512;
  // Shorten the pair timeout so expiry paths run inside the drain.
  cfg.shard.broker.pair_timeout = Duration::s(10);
  return cfg;
}

}  // namespace

TEST(BrokerClusterFailover, CrashMidPairLosesNoVerdicts) {
  // Kill a shard while report pairs are in flight: the takeover owner must
  // finish every pairing from the replicated log — exactly one verdict per
  // (session, period), no conflicting double-verdicts, no losses.
  scenario::BrokerLoadgenConfig cfg = small_cluster_config();
  cfg.kill_shard = 1;
  cfg.kill_at_s = 3.0;
  cfg.kill_duration_s = 4.0;
  scenario::BrokerLoadgen gen(cfg);
  const scenario::BrokerLoadgenResult r = gen.run();

  EXPECT_EQ(r.sessions_issued, 6u);
  EXPECT_EQ(r.attach_failures, 0u);
  EXPECT_GT(r.takeovers, 0u);
  EXPECT_EQ(r.verdicts_lost, 0u) << "a billing verdict was lost across the crash";
  EXPECT_EQ(r.verdict_conflicts, 0u) << "failover double-pairing produced conflicting verdicts";
  // Every decided pair got exactly one verdict; with honest clients each
  // period pairs cleanly unless one half was genuinely never delivered.
  EXPECT_GT(r.verdicts_paired, 0u);
  EXPECT_EQ(r.verdicts_paired + r.verdicts_missing, r.reports_ingested / 2 + r.verdicts_missing);

  // Reputation must not double-count across the failover: the observer fold
  // (auditor ground truth) saw every pair exactly once.
  const auto& obs = gen.cluster().observer();
  for (const auto& [sid, info] : obs.sessions()) {
    EXPECT_LE(info.pairs_compared, 1u + static_cast<std::uint64_t>(
                                            cfg.duration_s /
                                            cfg.report_interval.to_seconds()))
        << "session " << sid << " compared more pairs than periods sent";
    EXPECT_EQ(info.mismatches, 0u) << "honest pair flagged on session " << sid;
  }

  // Surviving shards' folds agree with the observer on their applied prefix.
  auto& cluster = gen.cluster();
  for (std::size_t i = 0; i < cluster.n_shards(); ++i) {
    if (cluster.shard(i).crashed()) continue;
    const auto& log = cluster.shard(i).log();
    for (std::size_t s = 0; s < log.n_streams(); ++s) {
      const std::uint64_t common =
          std::min(log.applied_len(s), cluster.observer_log().applied_len(s));
      EXPECT_EQ(log.chain_hash_at(s, common),
                cluster.observer_log().chain_hash_at(s, common))
          << "shard " << i << " stream " << s << " forked from the authored entries";
    }
  }
}

TEST(BrokerClusterFailover, SameSeedRunsAreBitIdentical) {
  // Covers the decorrelated-jitter retry satellite too: all jitter comes
  // from seeded per-client streams, so chaos replays stay deterministic.
  scenario::BrokerLoadgenConfig cfg = small_cluster_config();
  cfg.kill_shard = 0;
  cfg.kill_at_s = 2.0;
  cfg.kill_duration_s = 3.0;
  const scenario::BrokerLoadgenResult a = scenario::BrokerLoadgen(cfg).run();
  const scenario::BrokerLoadgenResult b = scenario::BrokerLoadgen(cfg).run();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.verdicts_per_s, b.verdicts_per_s);

  // And a different seed actually changes the run (the fingerprint is not
  // degenerate).
  scenario::BrokerLoadgenConfig other = cfg;
  other.seed = 6;
  const scenario::BrokerLoadgenResult c = scenario::BrokerLoadgen(other).run();
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// --- Brokerd ack-cache / pair-expiry interaction (regression) --------------

namespace {

/// Minimal single-broker wire harness: one Brokerd, one client node speaking
/// raw BrokerMsg packets, no bTelco/UE agents in between.
struct BrokerdHarness {
  sim::Simulator sim{1};
  net::Network network{sim};
  net::Node* broker_node = nullptr;
  net::Node* client_node = nullptr;
  net::Ipv4Addr client_addr{9, 9, 9, 9};
  std::unique_ptr<crypto::CertificateAuthority> ca;
  std::unique_ptr<SapUe> ue;
  std::unique_ptr<SapTelco> telco;
  crypto::Certificate broker_cert;
  std::unique_ptr<Brokerd> brokerd;
  Rng rng{99};
  std::vector<Bytes> received;  // every packet the client got

  explicit BrokerdHarness(Brokerd::Config bcfg) {
    Rng key_rng = sim.rng().fork(0xCA11);
    ca = std::make_unique<crypto::CertificateAuthority>("cb-root", key_rng, 512);
    const TimePoint not_after = TimePoint::zero() + Duration::s(86400);
    auto broker_keys = crypto::RsaKeyPair::generate(key_rng, 512);
    broker_cert = ca->issue("broker-0", broker_keys.public_key(), TimePoint::zero(), not_after);
    auto ue_keys = crypto::RsaKeyPair::generate(key_rng, 512);
    auto telco_keys = crypto::RsaKeyPair::generate(key_rng, 512);
    auto telco_cert = ca->issue("t-0", telco_keys.public_key(), TimePoint::zero(), not_after);

    broker_node = network.add_node("broker");
    client_node = network.add_node("client");
    network.register_address(net::Ipv4Addr(2, 2, 2, 2), broker_node);
    network.register_address(client_addr, client_node);
    network.connect(client_node, broker_node,
                    net::LinkParams{.rate_bps = 1e9, .delay = Duration::ms(5)});
    network.recompute_routes();

    ue = std::make_unique<SapUe>("user-9", "broker-0", std::move(ue_keys),
                                 broker_cert.key());
    telco = std::make_unique<SapTelco>("t-0", std::move(telco_keys), std::move(telco_cert),
                                       ca->public_key());
    SapBroker sap("broker-0", std::move(broker_keys), broker_cert, ca->public_key());
    sap.add_subscriber("user-9", ue->public_key());
    brokerd = std::make_unique<Brokerd>(*broker_node, std::move(sap), bcfg);
    brokerd->add_subscriber("user-9", ue->public_key());
    client_node->bind_udp(4599, [this](const net::Packet& p) {
      received.push_back(Bytes(p.payload.view().begin(), p.payload.view().end()));
    });
  }

  void send(Bytes wire) {
    net::Packet p;
    p.src = net::EndPoint{client_addr, 4599};
    p.dst = net::EndPoint{net::Ipv4Addr(2, 2, 2, 2), kBrokerPort};
    p.proto = net::Proto::Udp;
    p.payload = std::move(wire);
    client_node->send(std::move(p));
  }

  std::uint64_t attach() {
    const Bytes auth_req_u = ue->make_auth_req("t-0", rng);
    const Bytes auth_req_t = telco->make_auth_req_t(auth_req_u, QosCap{});
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(BrokerMsg::AuthReq));
    w.u64(1);
    w.bytes(auth_req_t);
    send(w.take());
    sim.run_for(Duration::s(1));
    // Telco processing registers its report key server-side in real
    // deployments; the harness registers it directly.
    for (const Bytes& msg : received) {
      ByteReader r(msg);
      if (static_cast<BrokerMsg>(r.u8()) != BrokerMsg::AuthOk) continue;
      r.u64();  // txn
      const Bytes auth_resp_t = r.bytes();
      const Bytes auth_resp_u = r.bytes();
      auto ts = telco->process_auth_resp(auth_resp_t, broker_cert, sim.now());
      auto us = ue->process_auth_resp(auth_resp_u);
      if (ts.ok() && us.ok()) return us.value().session_id;
    }
    return 0;
  }

  Bytes report_wire(std::uint64_t session_id, std::uint64_t seq, std::uint32_t period) {
    TrafficReport report;
    report.session_id = session_id;
    report.reporter = Reporter::Ue;
    report.period = period;
    report.dl_bytes = 4242;
    const Bytes report_bytes = report.serialize();
    ByteWriter inner;
    inner.str("user-9");
    inner.u8(static_cast<std::uint8_t>(Reporter::Ue));
    inner.bytes(report_bytes);
    inner.bytes(ue->sign(report_bytes));
    const Bytes sealed = crypto::seal(broker_cert.key(), inner.data(), rng);
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(BrokerMsg::Report));
    w.u64(seq);
    w.bytes(sealed);
    return w.take();
  }

  std::size_t acks_received() const {
    std::size_t n = 0;
    for (const Bytes& msg : received) {
      ByteReader r(msg);
      if (static_cast<BrokerMsg>(r.u8()) == BrokerMsg::ReportAck) ++n;
    }
    return n;
  }
};

}  // namespace

TEST(BrokerHousekeeping, PairExpiryEvictsReportAckCacheEntry) {
  // Regression: a retransmit arriving AFTER its pending pair expired must be
  // re-processed (hitting the dedup filter and earning a fresh ack), not
  // answered from an ack cache whose decision the missing-counterpart
  // verdict superseded.
  Brokerd::Config bcfg;
  bcfg.pair_timeout = Duration::s(5);
  bcfg.gc_interval = Duration::s(1);
  bcfg.reply_cache_ttl = Duration::s(120);  // TTL alone would NOT evict below
  BrokerdHarness h(bcfg);
  const std::uint64_t sid = h.attach();
  ASSERT_NE(sid, 0u);

  const Bytes wire = h.report_wire(sid, /*seq=*/1, /*period=*/0);
  h.send(wire);
  h.sim.run_for(Duration::millis(100));
  EXPECT_EQ(h.brokerd->reports_ingested(), 1u);
  EXPECT_EQ(h.brokerd->report_ack_cache_size(), 1u);
  EXPECT_EQ(h.acks_received(), 1u);

  // A prompt retransmit is answered from the cache.
  h.send(wire);
  h.sim.run_for(Duration::millis(100));
  EXPECT_EQ(h.brokerd->report_ack_cache_hits(), 1u);
  EXPECT_EQ(h.acks_received(), 2u);

  // The telco counterpart never arrives: the pair expires, and the eviction
  // must take the cached ack with it even though its TTL is nowhere near.
  h.sim.run_for(Duration::s(8));
  EXPECT_EQ(h.brokerd->unpaired_expired(), 1u);
  EXPECT_EQ(h.brokerd->pending_report_count(), 0u);
  EXPECT_EQ(h.brokerd->report_ack_cache_size(), 0u);

  // The late retransmit is re-processed: dedup filter (not cache hit), and
  // the sender still gets an ack so it stops retransmitting.
  h.send(wire);
  h.sim.run_for(Duration::millis(100));
  EXPECT_EQ(h.brokerd->report_ack_cache_hits(), 1u) << "served from a stale cache entry";
  EXPECT_EQ(h.brokerd->reports_deduped(), 1u);
  EXPECT_EQ(h.brokerd->reports_ingested(), 1u) << "billing double-count";
  EXPECT_EQ(h.acks_received(), 3u);
}

TEST(BrokerClusterSteadyState, NoKillMeansNoRedirectsAndCleanPairing) {
  scenario::BrokerLoadgenConfig cfg = small_cluster_config();
  scenario::BrokerLoadgen gen(cfg);
  const scenario::BrokerLoadgenResult r = gen.run();
  EXPECT_EQ(r.sessions_issued, 6u);
  EXPECT_EQ(r.reports_acked, r.reports_sent);
  EXPECT_EQ(r.reports_abandoned, 0u);
  EXPECT_EQ(r.verdicts_lost, 0u);
  EXPECT_EQ(r.verdicts_missing, 0u);
  EXPECT_EQ(r.verdict_conflicts, 0u);
  // Client-side rendezvous agrees with cluster-side ownership when all
  // shards are healthy: no stale-route redirects at all.
  EXPECT_EQ(r.redirects_sent, 0u);
  EXPECT_EQ(r.verdicts_paired, r.reports_ingested / 2);
}
