// Fault injection and end-to-end failure recovery: the ChaosController
// scheduling machinery, link corruption / node-down primitives, UE attach
// deadlines + backoff + candidate fallback, the reliable report channel
// (broker ACK + dedup), bTelco session GC, broker reply-cache bounding, and
// the full chaos scenario's determinism witness.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "scenario/chaos.hpp"
#include "scenario/trial_runner.hpp"
#include "scenario/world.hpp"
#include "sim/fault.hpp"

namespace cb::scenario {
namespace {

WorldConfig static_cb_config(int towers = 2) {
  WorldConfig cfg;
  cfg.arch = Architecture::CellBricks;
  cfg.n_towers = towers;
  cfg.route = RouteSpec{"static", false, 0.1, 500.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  cfg.radio_loss = 0.0;
  return cfg;
}

// --- FaultPlan / ChaosController --------------------------------------

TEST(FaultPlan, WindowsInjectAndHealOnSchedule) {
  sim::Simulator sim(1);
  int state = 0;
  sim::FaultPlan plan;
  plan.window(
      "outage", TimePoint::zero() + Duration::s(5), Duration::s(10),
      [&] { state = 1; }, [&] { state = 2; });
  plan.at("blip", TimePoint::zero() + Duration::s(7), [&] { state += 10; });
  sim::ChaosController chaos(sim, std::move(plan));
  chaos.arm();

  sim.run_until(TimePoint::zero() + Duration::s(6));
  EXPECT_EQ(state, 1);
  EXPECT_TRUE(chaos.fault_active("outage"));
  EXPECT_EQ(chaos.active_faults(), 1u);

  sim.run_until(TimePoint::zero() + Duration::s(8));
  EXPECT_EQ(state, 11);  // one-shot fired inside the window

  sim.run_until(TimePoint::zero() + Duration::s(20));
  EXPECT_EQ(state, 2);
  EXPECT_FALSE(chaos.fault_active("outage"));
  EXPECT_EQ(chaos.active_faults(), 0u);

  ASSERT_EQ(chaos.log().size(), 3u);
  EXPECT_EQ(chaos.log()[0].what, "inject:outage");
  EXPECT_EQ(chaos.log()[1].what, "inject:blip");
  EXPECT_EQ(chaos.log()[2].what, "heal:outage");
  EXPECT_EQ(chaos.plan().last_event().nanos(), (TimePoint::zero() + Duration::s(15)).nanos());
}

TEST(FaultPlan, ArmTwiceThrows) {
  sim::Simulator sim(1);
  sim::FaultPlan plan;
  plan.at("x", TimePoint::zero() + Duration::s(1), [] {});
  sim::ChaosController chaos(sim, std::move(plan));
  chaos.arm();
  EXPECT_THROW(chaos.arm(), std::logic_error);
}

TEST(FaultPlan, SameSeedRunsProduceIdenticalLogs) {
  auto run = [] {
    sim::Simulator sim(7);
    sim::FaultPlan plan;
    for (int i = 0; i < 5; ++i) {
      plan.window(
          "w" + std::to_string(i), TimePoint::zero() + Duration::millis(100 * i),
          Duration::millis(250), [] {}, [] {});
    }
    sim::ChaosController chaos(sim, std::move(plan));
    chaos.arm();
    sim.run();
    std::vector<std::pair<std::int64_t, std::string>> out;
    for (const auto& e : chaos.log()) out.emplace_back(e.at.nanos(), e.what);
    return out;
  };
  EXPECT_EQ(run(), run());
}

// --- Network fault primitives -----------------------------------------

TEST(NetFaults, LinkCorruptionFlipsPayloadBytes) {
  sim::Simulator sim(3);
  net::Network network(sim);
  net::Node* a = network.add_node("a");
  net::Node* b = network.add_node("b");
  network.register_address(net::Ipv4Addr(10, 0, 0, 1), a);
  network.register_address(net::Ipv4Addr(10, 0, 0, 2), b);
  net::LinkParams params;
  params.corrupt = 1.0;  // every packet gets one byte flipped
  net::Link* link = network.connect(a, b, params);
  network.recompute_routes();

  int received = 0, garbled = 0;
  b->bind_udp(5000, [&](const net::Packet& p) {
    ++received;
    for (std::uint8_t byte : p.payload) {
      if (byte != 0xAB) ++garbled;
    }
  });
  for (int i = 0; i < 8; ++i) {
    net::Packet p;
    p.src = net::EndPoint{net::Ipv4Addr(10, 0, 0, 1), 1};
    p.dst = net::EndPoint{net::Ipv4Addr(10, 0, 0, 2), 5000};
    p.proto = net::Proto::Udp;
    p.payload.assign(64, 0xAB);
    a->send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(received, 8);         // corruption never drops the packet
  EXPECT_EQ(garbled, 8);          // exactly one byte flipped per packet
  EXPECT_EQ(link->corrupted(), 8u);
}

TEST(NetFaults, DownNodeDropsTrafficInsteadOfForwarding) {
  sim::Simulator sim(3);
  net::Network network(sim);
  net::Node* a = network.add_node("a");
  net::Node* b = network.add_node("b");
  network.register_address(net::Ipv4Addr(10, 0, 0, 1), a);
  network.register_address(net::Ipv4Addr(10, 0, 0, 2), b);
  network.connect(a, b, net::LinkParams{});
  network.recompute_routes();

  int received = 0;
  b->bind_udp(5000, [&](const net::Packet&) { ++received; });
  b->set_up(false);
  net::Packet p;
  p.src = net::EndPoint{net::Ipv4Addr(10, 0, 0, 1), 1};
  p.dst = net::EndPoint{net::Ipv4Addr(10, 0, 0, 2), 5000};
  p.proto = net::Proto::Udp;
  p.payload.assign(16, 0x01);
  a->send(p);
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_GE(b->dropped_down(), 1u);

  b->set_up(true);
  a->send(p);
  sim.run();
  EXPECT_EQ(received, 1);
}

// --- UE attach failure handling ---------------------------------------

TEST(AttachRecovery, AttachTimesOutAgainstCrashedTelco) {
  WorldConfig cfg = static_cb_config(1);
  cfg.ue_config.attach_timeout = Duration::s(1);
  World world(cfg);
  world.btelco(0)->crash();

  bool failed = false;
  std::string error;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) {
    failed = !r.ok();
    if (failed) error = r.error();
  });
  world.simulator().run_for(Duration::s(5));
  EXPECT_TRUE(failed);
  EXPECT_EQ(error, "attach timeout");
  EXPECT_EQ(world.ue_agent()->attach_failures(), 1u);
  // Satellite fix: the failed attach must not leave the bearer admin-up.
  EXPECT_FALSE(world.ran_map().site(1).radio_link->is_up());
}

TEST(AttachRecovery, FallsBackToNextBestCellWhenPreferredIsDead) {
  WorldConfig cfg = static_cb_config(2);
  cfg.ue_config.attach_timeout = Duration::s(1);
  cfg.ue_config.retry_backoff = Duration::millis(100);
  World world(cfg);
  world.btelco(0)->crash();
  world.ue_agent()->set_candidate_source(
      [] { return std::vector<ran::CellId>{1, 2}; });

  world.ue_agent()->attach_with_recovery(1);
  world.simulator().run_for(Duration::s(10));
  EXPECT_TRUE(world.ue_agent()->attached());
  EXPECT_EQ(world.ue_agent()->serving_cell(), 2u);  // dead cell 1 blacklisted
  EXPECT_GE(world.ue_agent()->attach_failures(), 1u);
  EXPECT_EQ(world.btelco(1)->active_sessions(), 1u);
}

TEST(AttachRecovery, BrokerOutageRetriedUntilHealed) {
  WorldConfig cfg = static_cb_config(1);
  cfg.ue_config.attach_timeout = Duration::s(1);
  cfg.ue_config.retry_backoff = Duration::millis(200);
  cfg.ue_config.retry_backoff_max = Duration::s(2);
  cfg.ue_config.cell_blacklist = Duration::s(2);
  World world(cfg);
  world.cloud_node()->set_up(false);

  world.ue_agent()->attach_with_recovery(1);
  world.simulator().run_for(Duration::s(5));
  EXPECT_FALSE(world.ue_agent()->attached());
  EXPECT_GE(world.ue_agent()->attach_failures(), 1u);
  EXPECT_TRUE(world.ue_agent()->in_recovery());

  world.cloud_node()->set_up(true);
  world.simulator().run_for(Duration::s(10));
  EXPECT_TRUE(world.ue_agent()->attached());
  EXPECT_FALSE(world.ue_agent()->in_recovery());
  EXPECT_GE(world.ue_agent()->reattach_latencies().count(), 1u);
}

TEST(AttachRecovery, WatchdogDetectsBearerLossAndReattaches) {
  WorldConfig cfg = static_cb_config(2);
  cfg.ue_config.attach_timeout = Duration::s(1);
  cfg.ue_config.retry_backoff = Duration::millis(100);
  World world(cfg);
  world.ue_agent()->set_candidate_source(
      [] { return std::vector<ran::CellId>{1, 2}; });

  world.ue_agent()->attach_with_recovery(1);
  world.simulator().run_for(Duration::s(2));
  ASSERT_TRUE(world.ue_agent()->attached());
  ASSERT_EQ(world.ue_agent()->serving_cell(), 1u);

  // The serving bTelco dies without any signalling.
  world.btelco(0)->crash();
  world.simulator().run_for(Duration::s(10));
  EXPECT_EQ(world.ue_agent()->bearer_losses(), 1u);
  EXPECT_TRUE(world.ue_agent()->attached());
  EXPECT_EQ(world.ue_agent()->serving_cell(), 2u);
}

// --- Reliable reports + broker dedup ----------------------------------

TEST(ReliableReports, DuplicatesAreFilteredBeforeBilling) {
  WorldConfig cfg = static_cb_config(1);
  // Retransmit far faster than the ACK RTT: every report is sent several
  // times, and every copy past the first must be absorbed idempotently —
  // answered from the report-ack cache or dropped by the dedup filter —
  // NOT rejected, and NOT double-billed.
  cfg.ue_config.report_retry = Duration::millis(1);
  cfg.report_interval = Duration::s(2);
  World world(cfg);

  bool attached = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(11));
  ASSERT_TRUE(attached);

  EXPECT_GT(world.brokerd()->reports_deduped() + world.brokerd()->report_ack_cache_hits(), 0u);
  EXPECT_GT(world.brokerd()->reports_ingested(), 0u);
  EXPECT_EQ(world.brokerd()->reports_rejected(), 0u);
  // Double-counted UE bytes would show up as billing mismatches.
  EXPECT_EQ(world.brokerd()->reputation().mismatches("btelco-0"), 0u);
  EXPECT_DOUBLE_EQ(world.brokerd()->reputation().telco_score("btelco-0"), 1.0);
  // Every ACKed report left the retransmission queue.
  EXPECT_EQ(world.ue_agent()->outstanding_reports(), 0u);
}

TEST(ReliableReports, MalformedAndTruncatedPacketsAreDropped) {
  World world(static_cb_config(1));
  bool attached = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(2));
  ASSERT_TRUE(attached);

  auto send_to_broker = [&](Bytes payload) {
    net::Packet p;
    p.src = net::EndPoint{world.server_addr(), 9999};
    p.dst = net::EndPoint{world.cloud_addr(), cellbricks::kBrokerPort};
    p.proto = net::Proto::Udp;
    p.payload = std::move(payload);
    world.server_node()->send(std::move(p));
  };

  // Garbage sealed box with a valid header.
  ByteWriter garbage;
  garbage.u8(static_cast<std::uint8_t>(cellbricks::BrokerMsg::Report));
  garbage.u64(1);
  garbage.bytes(Bytes(40, 0x5A));
  send_to_broker(garbage.take());
  // Truncated: type byte only.
  send_to_broker(Bytes(1, static_cast<std::uint8_t>(cellbricks::BrokerMsg::Report)));
  // Unknown message type.
  send_to_broker(Bytes(3, 0x7F));

  world.simulator().run_for(Duration::s(1));
  EXPECT_GE(world.brokerd()->reports_rejected(), 1u);
  // The broker survived and still serves SAP + reports.
  world.ue_agent()->detach();
  world.simulator().run_for(Duration::s(1));
  bool again = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { again = r.ok(); });
  world.simulator().run_for(Duration::s(2));
  EXPECT_TRUE(again);
}

// --- Session GC + reply cache bounding --------------------------------

TEST(SessionGc, VanishedUeIsReclaimedByInactivityTimeout) {
  WorldConfig cfg = static_cb_config(1);
  cfg.btelco_config.session_timeout = Duration::s(5);
  cfg.btelco_config.gc_interval = Duration::s(1);
  World world(cfg);

  bool attached = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(2));
  ASSERT_TRUE(attached);
  ASSERT_EQ(world.btelco(0)->active_sessions(), 1u);

  // The UE vanishes mid-session: bearer gone, no detach signalling.
  world.ran_map().site(1).radio_link->set_up(false);
  world.simulator().run_for(Duration::s(15));
  EXPECT_EQ(world.btelco(0)->active_sessions(), 0u);
  EXPECT_EQ(world.btelco(0)->sessions_gced(), 1u);
}

TEST(BrokerHousekeeping, ReplyCacheIsTtlBounded) {
  WorldConfig cfg = static_cb_config(1);
  cfg.broker_config.reply_cache_ttl = Duration::s(2);
  cfg.broker_config.gc_interval = Duration::s(1);
  World world(cfg);

  bool attached = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(1));
  ASSERT_TRUE(attached);
  EXPECT_GE(world.brokerd()->reply_cache_size(), 1u);

  world.simulator().run_for(Duration::s(5));
  EXPECT_EQ(world.brokerd()->reply_cache_size(), 0u);
}

TEST(BrokerHousekeeping, UnpairedReportExpiresIntoMissingVerdict) {
  WorldConfig cfg = static_cb_config(1);
  cfg.btelco_config.session_timeout = Duration::s(5);
  cfg.btelco_config.gc_interval = Duration::s(1);
  cfg.broker_config.pair_timeout = Duration::s(10);
  cfg.broker_config.gc_interval = Duration::s(2);
  World world(cfg);

  bool attached = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(2));
  ASSERT_TRUE(attached);

  // UE vanishes: the bTelco's GC sends a final report whose UE counterpart
  // can never arrive; after pair_timeout the broker charges the absent side.
  world.ran_map().site(1).radio_link->set_up(false);
  world.simulator().run_for(Duration::s(30));
  EXPECT_GE(world.brokerd()->unpaired_expired(), 1u);
  EXPECT_GE(world.brokerd()->reputation().missing_reports("user-001"), 1u);
  EXPECT_EQ(world.brokerd()->pending_report_count(), 0u);
  // A vanished UE is not tampering evidence.
  EXPECT_FALSE(world.brokerd()->reputation().is_suspect("user-001"));
}

// --- Full chaos scenario ----------------------------------------------

TEST(Chaos, EndToEndRecoveryAndBitIdenticalReplay) {
  auto make = [] {
    ChaosConfig cfg;
    cfg.world.seed = 11;
    cfg.world.route = suburb_day();
    cfg.world.n_towers = 4;
    cfg.duration = Duration::s(90);
    cfg.world.btelco_config.session_timeout = Duration::s(15);
    cfg.world.btelco_config.gc_interval = Duration::s(3);
    cfg.world.ue_config.attach_timeout = Duration::s(2);
    cfg.telco_crashes.push_back({.telco = 0,
                                 .start = TimePoint::zero() + Duration::s(15),
                                 .duration = Duration::s(10)});
    cfg.broker_outages.push_back(
        {.start = TimePoint::zero() + Duration::s(40), .duration = Duration::s(8)});
    cfg.radio_drops.push_back({.at = TimePoint::zero() + Duration::s(60)});
    return cfg;
  };
  const ChaosResult r1 = run_chaos(make());
  const ChaosResult r2 = run_chaos(make());

  // Determinism witness: identical fingerprints and fault logs.
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  ASSERT_EQ(r1.fault_log.size(), r2.fault_log.size());
  EXPECT_EQ(r1.fault_log.size(), 5u);  // 2 windows x2 + 1 one-shot

  // Recovery: faults were felt, and the system healed end to end.
  EXPECT_GE(r1.bearer_losses, 1u);
  EXPECT_GT(r1.availability, 0.5);
  EXPECT_GT(r1.availability_after_faults, 0.9);
  EXPECT_TRUE(r1.ue_attached_at_end);
  EXPECT_EQ(r1.orphan_sessions, 0u);  // every orphan was GC'd
  EXPECT_GT(r1.pair_completion, 0.0);
}

TEST(Chaos, EngineEquivalenceGolden) {
  // Golden witness for the event-engine/COW-packet overhaul: this exact
  // scenario (the bench_chaos_availability config) was run on the seed
  // engine (std::function queue, deep-copied payloads) and produced the
  // values below. The slab/generation engine and the copy-on-write wire
  // path must reproduce them bit-identically — any drift means the swap
  // changed execution order or payload contents somewhere.
  //
  // Re-frozen for the sharded-broker PR: retry backoff is now decorrelated
  // jitter drawn from a dedicated per-agent RNG stream (shifts retransmit
  // timing, hence the fingerprint), and the broker's idempotent report-ack
  // cache answers most retransmits before they reach the ingest dedup
  // filter (reports_deduped 7 -> 1). All other counters are unchanged.
  ChaosConfig cfg;
  cfg.world.seed = 42;
  cfg.world.route = suburb_day();
  cfg.world.n_towers = 8;
  cfg.duration = Duration::s(240);
  cfg.world.btelco_config.session_timeout = Duration::s(30);
  cfg.world.btelco_config.gc_interval = Duration::s(5);
  cfg.world.ue_config.attach_timeout = Duration::s(2);
  cfg.telco_crashes.push_back(
      {.telco = 0, .start = TimePoint::zero() + Duration::s(30), .duration = Duration::s(20)});
  cfg.broker_outages.push_back(
      {.start = TimePoint::zero() + Duration::s(70), .duration = Duration::s(15)});
  cfg.radio_drops.push_back({.at = TimePoint::zero() + Duration::s(120)});
  cfg.wan_degrades.push_back({.start = TimePoint::zero() + Duration::s(150),
                              .duration = Duration::s(30),
                              .loss = 0.25,
                              .corrupt = 0.10});

  const ChaosResult r = run_chaos(cfg);
  EXPECT_EQ(r.fingerprint, 0x7cac7660fc2c3249ULL);
  EXPECT_EQ(r.reattach_latency_ms.count(), 6u);
  EXPECT_EQ(r.bearer_losses, 2u);
  EXPECT_EQ(r.attach_failures, 0u);
  EXPECT_EQ(r.sessions_gced, 1u);
  EXPECT_EQ(r.orphan_sessions, 0u);
  EXPECT_EQ(r.reports_ingested, 54u);
  EXPECT_EQ(r.reports_deduped, 1u);
  EXPECT_EQ(r.unpaired_expired, 6u);
  EXPECT_EQ(r.pairs_compared, 24u);
  EXPECT_TRUE(r.ue_attached_at_end);
}

TEST(Chaos, TrialRunnerWorkerThreadIsBitIdentical) {
  // A trial executed on a TrialRunner worker thread must match one run on
  // the main thread exactly: simulators are self-contained and the logger
  // time source is thread-local, so thread placement cannot leak into
  // results.
  auto make = [] {
    ChaosConfig cfg;
    cfg.world.seed = 1234;
    cfg.world.n_towers = 4;
    cfg.duration = Duration::s(60);
    cfg.broker_outages.push_back(
        {.start = TimePoint::zero() + Duration::s(20), .duration = Duration::s(5)});
    return cfg;
  };
  const ChaosResult main_thread = run_chaos(make());
  TrialRunner runner(2);
  const auto pooled = runner.map(3, [&](std::size_t) { return run_chaos(make()); });
  for (const ChaosResult& r : pooled) {
    EXPECT_EQ(r.fingerprint, main_thread.fingerprint);
  }
}

}  // namespace
}  // namespace cb::scenario
