// Seed plumbing for randomized tests.
//
// Every property-style test derives its randomness from
// `cb::test::seed_or(<default>)` and wraps the body in a SCOPED_TRACE that
// prints the seed, so a CI failure shows exactly which seed to replay and
// `CB_TEST_SEED=<n> ctest ...` replays it without editing code. Fixed-vector
// tests (NIST/RFC vectors, garbage-decode regressions) keep literal seeds —
// those are inputs, not sampled randomness.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace cb::test {

/// Base seed for a randomized test: the CB_TEST_SEED environment variable
/// overrides `fallback` when set (decimal, 0x-hex, or octal).
inline std::uint64_t seed_or(std::uint64_t fallback) {
  if (const char* env = std::getenv("CB_TEST_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return fallback;
}

}  // namespace cb::test
