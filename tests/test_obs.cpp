// Observability layer tests: histogram percentile bounds (randomized
// property tests), counter/gauge semantics, flight-recorder wraparound,
// snapshot JSON schema and byte-determinism, and the two end-to-end
// determinism witnesses — the same-seed chaos golden snapshot and the
// TrialRunner index-order merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "scenario/chaos.hpp"
#include "scenario/trial_runner.hpp"
#include "test_seed.hpp"

namespace {

using namespace cb;
using namespace cb::obs;

// --- Counter / gauge / registry semantics ------------------------------

TEST(ObsCounter, IncrementAndFindOrCreate) {
  Registry reg;
  Counter& c = reg.counter("ue_agent.attach.attempts");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Find-or-create returns the same stable object.
  EXPECT_EQ(&reg.counter("ue_agent.attach.attempts"), &c);
  EXPECT_EQ(reg.counter_count(), 1u);

  const Counter* found = reg.find_counter("ue_agent.attach.attempts");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 42u);
  EXPECT_EQ(reg.find_counter("no.such.metric"), nullptr);
  EXPECT_EQ(reg.counter_count(), 1u);  // find never creates
}

TEST(ObsGauge, SetAddAndLastMergeWins) {
  Registry a, b;
  a.gauge("btelco.sessions.active").set(3.0);
  a.gauge("btelco.sessions.active").add(2.0);
  EXPECT_DOUBLE_EQ(a.gauge("btelco.sessions.active").value(), 5.0);

  b.gauge("btelco.sessions.active").set(1.0);
  a.merge(b);
  // Gauges are instantaneous: the merged-in (later-trial) value wins.
  EXPECT_DOUBLE_EQ(a.gauge("btelco.sessions.active").value(), 1.0);
}

TEST(ObsRegistry, MergeAccumulatesCountersAndHistograms) {
  Registry a, b;
  a.counter("tcp.segments.sent").inc(10);
  b.counter("tcp.segments.sent").inc(5);
  b.counter("tcp.rto").inc(1);
  a.histogram("lat").observe(1.0);
  b.histogram("lat").observe(3.0);
  b.histogram("lat").observe(5.0);

  a.merge(b);
  EXPECT_EQ(a.counter("tcp.segments.sent").value(), 15u);
  EXPECT_EQ(a.counter("tcp.rto").value(), 1u);
  const Histogram& h = a.histogram("lat");
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 9.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(ObsRegistry, ScopedRegistryNestsAndRestores) {
  EXPECT_EQ(active(), nullptr);
  Registry outer, inner;
  {
    ScopedRegistry s1(&outer);
    EXPECT_EQ(active(), &outer);
    {
      ScopedRegistry s2(&inner);
      EXPECT_EQ(active(), &inner);
      obs::inc(obs::counter("x"));
    }
    EXPECT_EQ(active(), &outer);
    obs::inc(obs::counter("x"));
  }
  EXPECT_EQ(active(), nullptr);
  EXPECT_EQ(inner.counter("x").value(), 1u);
  EXPECT_EQ(outer.counter("x").value(), 1u);
  // With no registry installed the helpers are null-safe no-ops.
  EXPECT_EQ(obs::counter("x"), nullptr);
  obs::inc(obs::counter("x"));
  obs::set(obs::gauge("g"), 1.0);
  obs::observe(obs::histogram("h"), 1.0);
  obs::trace(TimePoint::zero(), TraceType::AttachStart);
}

// --- Histogram bucket geometry and percentile bounds -------------------

TEST(ObsHistogram, BucketBoundsContainValue) {
  // Property: over values spanning the whole resolved range, every value
  // lands in a bucket whose [lower, upper) bounds contain it, and the
  // bucket's relative width is <= 1/kSubBuckets.
  const std::uint64_t seed = cb::test::seed_or(0xB0B5);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
  Rng rng(seed);
  for (int trial = 0; trial < 20000; ++trial) {
    const int exp = static_cast<int>(rng.next_below(60)) - 14;  // 2^-14 .. 2^45
    const double v = std::ldexp(1.0 + rng.next_double(), exp);
    const std::size_t i = Histogram::bucket_index(v);
    ASSERT_GT(i, 0u);
    ASSERT_LT(i, Histogram::kBuckets - 1);
    const double lo = Histogram::bucket_lower(i);
    const double hi = Histogram::bucket_upper(i);
    ASSERT_LE(lo, v) << "v=" << v;
    ASSERT_LT(v, hi) << "v=" << v;
    ASSERT_LE((hi - lo) / lo, 1.0 / Histogram::kSubBuckets + 1e-12);
  }
}

TEST(ObsHistogram, UnderflowAndOverflowBuckets) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, -20)), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, 50)), Histogram::kBuckets - 1);

  Histogram h;
  h.observe(0.0);
  h.observe(1e20);
  EXPECT_EQ(h.count(), 2u);
  // Extremes are reported exactly: the edge buckets answer with min / max.
  EXPECT_DOUBLE_EQ(h.percentile(1), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 1e20);
}

TEST(ObsHistogram, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

TEST(ObsHistogram, PercentileWithinOneBucketOfExact) {
  // Property test over many seeds: the histogram's nearest-rank percentile
  // must stay within one bucket width (rel. error <= 1/kSubBuckets) of the
  // exact nearest-rank value computed from the sorted samples.
  const double kRelTol = 1.0 / Histogram::kSubBuckets + 1e-9;
  const std::uint64_t base = cb::test::seed_or(1);
  for (std::uint64_t seed = base; seed < base + 40; ++seed) {
    SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
    Rng rng(seed);
    Histogram h;
    std::vector<double> samples;
    const int n = 50 + static_cast<int>(rng.next_below(400));
    for (int i = 0; i < n; ++i) {
      // Mix of distributions resembling latency data: uniform + heavy tail.
      const double v = rng.chance(0.5) ? rng.uniform(0.05, 50.0)
                                       : rng.exponential(200.0) + 0.01;
      samples.push_back(v);
      h.observe(v);
    }
    std::sort(samples.begin(), samples.end());
    for (const double p : {5.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
      const auto rank = static_cast<std::size_t>(std::clamp<double>(
          std::ceil(p / 100.0 * static_cast<double>(n)), 1.0, static_cast<double>(n)));
      const double exact = samples[rank - 1];
      const double est = h.percentile(p);
      ASSERT_NEAR(est, exact, kRelTol * exact + 1e-9)
          << "seed=" << seed << " p=" << p << " n=" << n;
    }
    EXPECT_DOUBLE_EQ(h.min(), samples.front());
    EXPECT_DOUBLE_EQ(h.max(), samples.back());
  }
}

TEST(ObsHistogram, MergedPercentilesMatchCombinedStream) {
  // Merging two histograms must answer exactly as if every sample had been
  // observed by one histogram (bucket counts are exact, so this is equality,
  // not approximation).
  const std::uint64_t seed = cb::test::seed_or(777);
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
  Rng rng(seed);
  Histogram a, b, combined;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.1, 1000.0);
    (i % 2 == 0 ? a : b).observe(v);
    combined.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double p : {10.0, 50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), combined.percentile(p)) << "p=" << p;
  }
}

// --- Flight recorder ---------------------------------------------------

TEST(ObsTrace, RingWraparoundKeepsMostRecent) {
  FlightRecorder rec(8);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 0u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.record(TimePoint::zero() + Duration::millis(static_cast<double>(i)),
               TraceType::ReportSend, i, 0);
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.total_recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);

  const auto records = rec.dump();
  ASSERT_EQ(records.size(), 8u);
  // Oldest-first: the survivors are records 12..19 in append order.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].a, 12u + i);
    EXPECT_EQ(records[i].type, TraceType::ReportSend);
  }

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST(ObsTrace, FingerprintReflectsContent) {
  FlightRecorder a(16), b(16), c(16);
  a.record(TimePoint::zero(), TraceType::AttachStart, 1);
  b.record(TimePoint::zero(), TraceType::AttachStart, 1);
  c.record(TimePoint::zero(), TraceType::AttachStart, 2);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  // Append folds records in oldest-first, so (a then c) == replaying both.
  FlightRecorder merged(16);
  merged.append(a);
  merged.append(c);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.dump()[0].a, 1u);
  EXPECT_EQ(merged.dump()[1].a, 2u);
}

TEST(ObsTrace, JsonDumpListsEventsOldestFirst) {
  FlightRecorder rec(4);
  rec.record(TimePoint::zero() + Duration::millis(5), TraceType::AttachOk, 3, 1200);
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"event\": \"attach_ok\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"a\": 3"), std::string::npos) << json;
}

// --- Snapshot JSON schema and determinism ------------------------------

TEST(ObsRegistry, JsonSnapshotSchemaAndByteDeterminism) {
  auto build = [] {
    Registry reg;
    reg.counter("ue_agent.attach.success").inc(7);
    reg.counter("broker.reports.ingested").inc(3);
    reg.gauge("ran.shaper.rate_bps").set(12.5);
    Histogram& h = reg.histogram("broker.sap_latency_ms");
    for (double v : {8.0, 9.5, 14.0, 30.0}) h.observe(v);
    reg.trace().record(TimePoint::zero() + Duration::millis(1), TraceType::SapAuthOk, 9);
    return reg.to_json();
  };
  const std::string j1 = build();
  const std::string j2 = build();
  EXPECT_EQ(j1, j2);  // byte-identical, not just semantically equal

  // Schema: the four top-level sections with sorted keys, histograms
  // carrying the full summary tuple, trace condensed to counts+fingerprint.
  EXPECT_NE(j1.find("\"counters\""), std::string::npos);
  EXPECT_NE(j1.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j1.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j1.find("\"trace\""), std::string::npos);
  EXPECT_NE(j1.find("\"ue_agent.attach.success\": 7"), std::string::npos) << j1;
  EXPECT_NE(j1.find("\"ran.shaper.rate_bps\": 12.5"), std::string::npos) << j1;
  for (const char* field : {"\"count\"", "\"sum\"", "\"min\"", "\"max\"",
                            "\"p50\"", "\"p95\"", "\"p99\""}) {
    EXPECT_NE(j1.find(field), std::string::npos) << field;
  }
  EXPECT_NE(j1.find("\"recorded\": 1"), std::string::npos);
  EXPECT_NE(j1.find("\"fingerprint\": \"0x"), std::string::npos);
  // Sorted keys: "broker.reports.ingested" serializes before "ue_agent...".
  EXPECT_LT(j1.find("broker.reports.ingested"), j1.find("ue_agent.attach.success"));
}

// --- End-to-end determinism witnesses ----------------------------------

namespace sc = cb::scenario;

sc::ChaosConfig golden_chaos_config() {
  sc::ChaosConfig cfg;
  cfg.world.seed = 11;
  cfg.world.route = sc::suburb_day();
  cfg.world.n_towers = 4;
  cfg.duration = Duration::s(90);
  cfg.world.btelco_config.session_timeout = Duration::s(15);
  cfg.world.btelco_config.gc_interval = Duration::s(3);
  cfg.world.ue_config.attach_timeout = Duration::s(2);
  cfg.telco_crashes.push_back({.telco = 0,
                               .start = TimePoint::zero() + Duration::s(15),
                               .duration = Duration::s(10)});
  cfg.broker_outages.push_back(
      {.start = TimePoint::zero() + Duration::s(40), .duration = Duration::s(8)});
  cfg.radio_drops.push_back({.at = TimePoint::zero() + Duration::s(60)});
  return cfg;
}

TEST(ObsGolden, SameSeedChaosSnapshotIsBitIdentical) {
  // The golden determinism witness for the whole obs layer: a same-seed
  // chaos run must produce a byte-identical metrics snapshot and an equal
  // trace fingerprint twice in a row — and instrumentation must not perturb
  // the engine (the state fingerprints still match).
  const sc::ChaosResult r1 = sc::run_chaos(golden_chaos_config());
  const sc::ChaosResult r2 = sc::run_chaos(golden_chaos_config());
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  ASSERT_FALSE(r1.metrics_json.empty());
  EXPECT_EQ(r1.metrics_json, r2.metrics_json);
  EXPECT_EQ(r1.trace_fingerprint, r2.trace_fingerprint);
  EXPECT_NE(r1.trace_fingerprint, 0u);
  // The snapshot carries real instrumentation from the run.
  EXPECT_NE(r1.metrics_json.find("ue_agent.attach.attempts"), std::string::npos);
  EXPECT_NE(r1.metrics_json.find("broker.sap_latency_ms"), std::string::npos);
}

TEST(ObsGolden, ChaosMetricsFoldIntoCallerRegistry) {
  Registry root;
  {
    ScopedRegistry scoped(&root);
    (void)sc::run_chaos(golden_chaos_config());
  }
  const Counter* attempts = root.find_counter("ue_agent.attach.attempts");
  ASSERT_NE(attempts, nullptr);
  EXPECT_GT(attempts->value(), 0u);
}

TEST(ObsTrialRunner, MergeIsByTrialIndexNotCompletionOrder) {
  // Two trials record distinguishable metrics; trial 0 is forced to finish
  // AFTER trial 1 on a 2-thread pool. The merged snapshot must still equal
  // the serial (threads = 1) snapshot byte for byte: per-trial registries
  // are folded in trial index order at the barrier, never completion order.
  auto run = [](unsigned threads) {
    Registry root;
    ScopedRegistry scoped(&root);
    sc::TrialRunner runner(threads);
    runner.map(2, [&](std::size_t i) {
      if (i == 0 && threads > 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      obs::inc(obs::counter("trial.runs"));
      obs::set(obs::gauge("trial.last_index"), static_cast<double>(i));
      obs::observe(obs::histogram("trial.value"), static_cast<double>(i + 1));
      obs::trace(TimePoint::zero() + Duration::millis(static_cast<double>(i)),
                 TraceType::ReportSend, i);
      return 0;
    });
    return root.to_json();
  };
  const std::string serial = run(1);
  const std::string parallel = run(2);
  EXPECT_EQ(serial, parallel);
  // Sanity: the gauge's last-merge-wins value is trial 1's, the highest
  // index — which is only true if index order won over completion order.
  EXPECT_NE(serial.find("\"trial.last_index\": 1"), std::string::npos) << serial;
}

}  // namespace
