// Direct unit tests for the reputation system (§4.3, Fig.5): pair
// comparison thresholds, verdict accumulation and score decay/recovery,
// the missing-counterpart path, and the attachment-authorization policy.
#include <gtest/gtest.h>

#include "cellbricks/reputation.hpp"

namespace {

using namespace cb::cellbricks;

TrafficReport ue_report(std::uint64_t dl_bytes, double dl_loss = 0.0) {
  TrafficReport r;
  r.reporter = Reporter::Ue;
  r.dl_bytes = dl_bytes;
  r.dl_loss_rate = dl_loss;
  return r;
}

TrafficReport telco_report(std::uint64_t dl_bytes) {
  TrafficReport r;
  r.reporter = Reporter::Telco;
  r.dl_bytes = dl_bytes;
  return r;
}

// --- compare(): the Fig.5 threshold ------------------------------------

TEST(ReputationCompare, AgreementWithinEpsilonIsClean) {
  ReputationSystem rep;
  // No loss: threshold = eps * dl_u + 1 MTU. A delta inside it is clean.
  const PairVerdict v = rep.compare(ue_report(1'000'000), telco_report(1'010'000));
  EXPECT_FALSE(v.mismatch);
  EXPECT_EQ(v.delta, 10'000);
  EXPECT_NEAR(v.threshold, 0.02 * 1'000'000 + 1500.0, 1e-6);
}

TEST(ReputationCompare, LinkLossSlackToleratesLegitimateOverReporting) {
  ReputationSystem rep;
  // The bTelco counts DL before the radio, so with 20% loss it legitimately
  // sees dl_u / (1 - l) bytes; that delta must not be flagged.
  const std::uint64_t dl_u = 8'000'000;
  const auto dl_t = static_cast<std::uint64_t>(dl_u / 0.8);
  const PairVerdict v = rep.compare(ue_report(dl_u, 0.20), telco_report(dl_t));
  EXPECT_FALSE(v.mismatch);

  // The same delta with no loss reported is well past the threshold.
  const PairVerdict cheat = rep.compare(ue_report(dl_u, 0.0), telco_report(dl_t));
  EXPECT_TRUE(cheat.mismatch);
  EXPECT_GT(cheat.degree, 0.0);
  EXPECT_LE(cheat.degree, 1.0);
}

TEST(ReputationCompare, DegreeScalesWithExcess) {
  ReputationSystem rep;
  const PairVerdict small = rep.compare(ue_report(1'000'000), telco_report(1'100'000));
  const PairVerdict large = rep.compare(ue_report(1'000'000), telco_report(3'000'000));
  ASSERT_TRUE(small.mismatch);
  ASSERT_TRUE(large.mismatch);
  EXPECT_LT(small.degree, large.degree);
  EXPECT_DOUBLE_EQ(large.degree, 1.0);  // capped
}

TEST(ReputationCompare, UnderReportingTelcoIsAlsoFlagged) {
  ReputationSystem rep;
  // |delta| is compared, so a bTelco reporting far fewer bytes than the UE
  // saw (impossible physically, suspicious either way) still mismatches.
  const PairVerdict v = rep.compare(ue_report(5'000'000), telco_report(1'000'000));
  EXPECT_TRUE(v.mismatch);
  EXPECT_LT(v.delta, 0);
}

// --- record(): accumulation, floor, decay ------------------------------

TEST(ReputationRecord, ScoresDecayWithMismatchesAndFloorApplies) {
  ReputationSystem rep;
  EXPECT_DOUBLE_EQ(rep.telco_score("t1"), 1.0);  // unknown = pristine

  // A barely-over-threshold verdict still costs the 0.1 incident floor.
  PairVerdict tiny;
  tiny.mismatch = true;
  tiny.degree = 0.001;
  rep.record("u1", "t1", tiny);
  EXPECT_DOUBLE_EQ(rep.telco_score("t1"), 1.0 / 1.1);
  EXPECT_EQ(rep.mismatches("t1"), 1u);

  // Full-degree incidents drive the score toward 0: 1 / (1 + sum(w)).
  PairVerdict gross;
  gross.mismatch = true;
  gross.degree = 1.0;
  rep.record("u1", "t1", gross);
  rep.record("u1", "t1", gross);
  EXPECT_DOUBLE_EQ(rep.telco_score("t1"), 1.0 / 3.1);
  EXPECT_EQ(rep.mismatches("t1"), 3u);
}

TEST(ReputationRecord, CleanPairsRecoverScoreButNeverPastOne) {
  ReputationConfig cfg;
  cfg.recovery_per_clean_pair = 0.05;
  ReputationSystem rep(cfg);

  PairVerdict bad;
  bad.mismatch = true;
  bad.degree = 0.1;
  rep.record("u1", "t1", bad);  // weighted = 0.1
  const double hurt = rep.telco_score("t1");
  EXPECT_LT(hurt, 1.0);

  PairVerdict clean;  // mismatch = false
  rep.record("u1", "t1", clean);
  EXPECT_GT(rep.telco_score("t1"), hurt);  // one clean pair: 0.1 -> 0.05
  rep.record("u1", "t1", clean);
  rep.record("u1", "t1", clean);
  // Recovery saturates at a pristine score; weighted never goes negative.
  EXPECT_DOUBLE_EQ(rep.telco_score("t1"), 1.0);
}

// --- record_missing(): the unpaired-report path ------------------------

TEST(ReputationMissing, MissingTelcoReportIsMildUnreliabilityPenalty) {
  ReputationSystem rep;
  rep.record_missing("u1", "t1", Reporter::Telco);
  EXPECT_EQ(rep.missing_reports("t1"), 1u);
  EXPECT_DOUBLE_EQ(rep.telco_score("t1"), 1.0 / 1.05);
  // Far milder than one mismatch incident (floor 0.1), and not a mismatch.
  EXPECT_EQ(rep.mismatches("t1"), 0u);

  // Repeated unreliability still accumulates enough to fail authorization.
  for (int i = 0; i < 25; ++i) rep.record_missing("u1", "t1", Reporter::Telco);
  EXPECT_LT(rep.telco_score("t1"), 0.5);
  EXPECT_FALSE(rep.authorize("u1", "t1"));
}

TEST(ReputationMissing, MissingUeReportIsCountedButNotTamperingEvidence) {
  ReputationSystem rep;
  rep.record_missing("u1", "t1", Reporter::Ue);
  rep.record_missing("u1", "t2", Reporter::Ue);
  rep.record_missing("u1", "t3", Reporter::Ue);
  EXPECT_EQ(rep.missing_reports("u1"), 3u);
  // A vanished UE (dead battery, coverage hole) is not a suspect, and its
  // bTelcos' scores are untouched.
  EXPECT_FALSE(rep.is_suspect("u1"));
  EXPECT_DOUBLE_EQ(rep.telco_score("t1"), 1.0);
  EXPECT_TRUE(rep.authorize("u1", "t1"));
}

// --- authorize(): policy over scores and suspects ----------------------

TEST(ReputationAuthorize, LowScoringTelcoIsRefused) {
  ReputationSystem rep;
  PairVerdict gross;
  gross.mismatch = true;
  gross.degree = 1.0;
  rep.record("u1", "t1", gross);
  // weighted = 1.0 -> score exactly 0.5: still authorized (>= threshold).
  EXPECT_DOUBLE_EQ(rep.telco_score("t1"), 0.5);
  EXPECT_TRUE(rep.authorize("u2", "t1"));
  rep.record("u1", "t1", gross);
  EXPECT_LT(rep.telco_score("t1"), 0.5);
  EXPECT_FALSE(rep.authorize("u2", "t1"));
  // Other bTelcos are unaffected.
  EXPECT_TRUE(rep.authorize("u2", "t2"));
}

TEST(ReputationAuthorize, CrossTelcoMismatchesMakeUserSuspect) {
  ReputationSystem rep;
  PairVerdict bad;
  bad.mismatch = true;
  bad.degree = 0.2;

  // Disagreeing with one bTelco, however often, blames the bTelco.
  rep.record("u1", "t1", bad);
  rep.record("u1", "t1", bad);
  rep.record("u1", "t1", bad);
  EXPECT_FALSE(rep.is_suspect("u1"));

  // Disagreeing with a second independent bTelco flips the blame.
  rep.record("u1", "t2", bad);
  EXPECT_TRUE(rep.is_suspect("u1"));
  // Suspects are refused everywhere, even at pristine bTelcos.
  EXPECT_FALSE(rep.authorize("u1", "t3"));
  EXPECT_DOUBLE_EQ(rep.telco_score("t3"), 1.0);
  // Other users are unaffected.
  EXPECT_TRUE(rep.authorize("u2", "t3"));
}

}  // namespace
