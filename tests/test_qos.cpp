// QoS-discrepancy unit tests: the Fig.5 report-comparison threshold.
//
// The broker tolerates |dl_T - dl_U| up to (l/(1-l) + epsilon) * dl_U + MTU,
// where l is the DL loss rate the UE measured: with loss rate l over SENT
// bytes, dl_T*(1-l) = dl_U, so l/(1-l)*dl_U is exactly the legitimately
// lost traffic, epsilon is the fixed slack ratio, and one MTU absorbs the
// packet in flight at the period boundary. These tests pin the boundary
// semantics: strictly-greater trips, exactly-at passes, the loss term is
// derived (not a flat allowance), l is clamped, and a zero-traffic pair is
// governed by the MTU constant alone.
#include <gtest/gtest.h>

#include "cellbricks/reputation.hpp"

namespace cb::cellbricks {
namespace {

TrafficReport report(std::uint64_t dl_bytes, double dl_loss = 0.0) {
  TrafficReport r;
  r.session_id = 1;
  r.period = 0;
  r.dl_bytes = dl_bytes;
  r.dl_loss_rate = dl_loss;
  return r;
}

TEST(QosThreshold, ZeroTrafficPairIsGovernedByMtuSlackOnly) {
  const ReputationSystem rep;
  // Both sides idle: threshold degenerates to the +1500 MTU term.
  const PairVerdict same = rep.compare(report(0), report(0));
  EXPECT_FALSE(same.mismatch);
  EXPECT_DOUBLE_EQ(same.threshold, 1500.0);
  EXPECT_EQ(same.delta, 0);
  // One stray MTU of unseen traffic is tolerated; a byte past it is not.
  EXPECT_FALSE(rep.compare(report(0), report(1500)).mismatch);
  EXPECT_TRUE(rep.compare(report(0), report(1501)).mismatch);
}

TEST(QosThreshold, ExactlyAtThresholdPassesOneBytePastTrips) {
  // epsilon = 0.5 makes the threshold exactly representable:
  // 0.5 * 1000 + 1500 = 2000 bytes of tolerated discrepancy.
  ReputationConfig cfg;
  cfg.epsilon = 0.5;
  const ReputationSystem rep(cfg);
  const PairVerdict at = rep.compare(report(1000), report(3000));
  EXPECT_DOUBLE_EQ(at.threshold, 2000.0);
  EXPECT_EQ(at.delta, 2000);
  EXPECT_FALSE(at.mismatch) << "excess must be STRICTLY positive to trip";
  EXPECT_DOUBLE_EQ(at.degree, 0.0);

  const PairVerdict past = rep.compare(report(1000), report(3001));
  EXPECT_TRUE(past.mismatch);
  EXPECT_GT(past.degree, 0.0);
}

TEST(QosThreshold, LossDerivedTermCoversExactlyTheLostBytes) {
  // l = 0.2 over sent bytes: the bTelco sent 100000, the UE saw 80000 —
  // the 20000-byte delta is fully explained by loss, so the pair is clean
  // even though it dwarfs epsilon * dl_U.
  const ReputationSystem rep;
  const PairVerdict v = rep.compare(report(80000, 0.2), report(100000));
  EXPECT_FALSE(v.mismatch);
  // threshold = (0.25 + 0.02) * 80000 + 1500
  EXPECT_NEAR(v.threshold, 23100.0, 1e-6);
  EXPECT_EQ(v.delta, 20000);
  // The same delta WITHOUT the measured loss is way past tolerance.
  EXPECT_TRUE(rep.compare(report(80000, 0.0), report(100000)).mismatch);
}

TEST(QosThreshold, LossRateIsClampedAtNinetyFivePercent) {
  // A (dishonest or broken) UE reporting l ~ 1.0 must not push the
  // threshold to infinity: l clamps to 0.95, i.e. factor l/(1-l) = 19.
  const ReputationSystem rep;
  const PairVerdict v = rep.compare(report(1000, 0.999), report(1000));
  EXPECT_NEAR(v.threshold, (19.0 + rep.config().epsilon) * 1000.0 + 1500.0, 1e-6);
  // Negative loss input clamps to zero rather than shrinking the MTU term.
  const PairVerdict neg = rep.compare(report(1000, -0.5), report(1000));
  EXPECT_NEAR(neg.threshold, rep.config().epsilon * 1000.0 + 1500.0, 1e-6);
}

TEST(QosThreshold, UnderReportingTripsSymmetrically) {
  // The comparison is two-sided: a bTelco reporting LESS than the UE saw
  // (understating usage to undercut peers) trips exactly like overstating.
  const ReputationSystem rep;
  const PairVerdict v = rep.compare(report(100000), report(50000));
  EXPECT_TRUE(v.mismatch);
  EXPECT_EQ(v.delta, -50000);
  EXPECT_GT(v.degree, 0.0);
}

TEST(QosThreshold, DegreeNormalizesByUeBytesAndCapsAtOne) {
  const ReputationSystem rep;
  // Excess of ~8500 over dl_U = 10000: degree ~ 0.85.
  const PairVerdict mid = rep.compare(report(10000), report(20200));
  ASSERT_TRUE(mid.mismatch);
  EXPECT_NEAR(mid.degree, (10200.0 - mid.threshold) / 10000.0, 1e-9);
  // Wildly divergent reports cap at 1.0 (one incident, bounded weight).
  const PairVerdict wild = rep.compare(report(10000), report(10000000));
  ASSERT_TRUE(wild.mismatch);
  EXPECT_DOUBLE_EQ(wild.degree, 1.0);
}

}  // namespace
}  // namespace cb::cellbricks
