// Unit tests for src/crypto against published vectors plus property checks
// on RSA, the PKI, and the sealed-box construction.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/bignum.hpp"
#include "crypto/box.hpp"
#include "crypto/cert.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace cb::crypto {
namespace {

// --- SHA-256 (FIPS 180-4 / NIST vectors) -------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const Bytes msg = to_bytes("The quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.update(BytesView(msg.data(), split));
    ctx.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(ctx.finish(), sha256(msg));
  }
}

// --- HMAC (RFC 4231) ----------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- HKDF (RFC 5869) -----------------------------------------------------

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, DistinctInfoDistinctKeys) {
  const Bytes ikm(32, 7);
  EXPECT_NE(hkdf({}, ikm, to_bytes("a"), 32), hkdf({}, ikm, to_bytes("b"), 32));
}

// --- ChaCha20 (RFC 8439 §2.4.2) ------------------------------------------

TEST(ChaCha20, Rfc8439Vector) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000000000004a00000000");
  const Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes ct = chacha20_xor(key, nonce, 1, plaintext);
  EXPECT_EQ(to_hex(Bytes(ct.begin(), ct.begin() + 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  // Involution: applying the keystream twice restores the plaintext.
  EXPECT_EQ(chacha20_xor(key, nonce, 1, ct), plaintext);
}

TEST(ChaCha20, RejectsBadSizes) {
  EXPECT_THROW(chacha20_xor(Bytes(16, 0), Bytes(12, 0), 0, {}), std::invalid_argument);
  EXPECT_THROW(chacha20_xor(Bytes(32, 0), Bytes(8, 0), 0, {}), std::invalid_argument);
}

// --- BigNum ---------------------------------------------------------------

TEST(BigNum, BytesRoundTrip) {
  const Bytes raw = from_hex("0123456789abcdef00ff");
  const BigNum n = BigNum::from_bytes_be(raw);
  EXPECT_EQ(to_hex(n.to_bytes_be()), "0123456789abcdef00ff");
}

TEST(BigNum, AddSubMul) {
  const BigNum a = BigNum::from_bytes_be(from_hex("ffffffffffffffffffffffffffffffff"));
  const BigNum one{1};
  const BigNum sum = a + one;
  EXPECT_EQ(sum.to_string_hex(), "0100000000000000000000000000000000");
  EXPECT_EQ((sum - one).to_string_hex(), a.to_string_hex());
  const BigNum sq = a * a;
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1
  EXPECT_EQ(sq.to_string_hex(),
            "fffffffffffffffffffffffffffffffe00000000000000000000000000000001");
}

TEST(BigNum, DivModAgreesWithMultiplication) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const BigNum a = BigNum::from_bytes_be(rng.random_bytes(1 + rng.next_below(40)));
    BigNum b = BigNum::from_bytes_be(rng.random_bytes(1 + rng.next_below(20)));
    if (b.is_zero()) b = BigNum{3};
    const auto [q, r] = a.divmod(b);
    EXPECT_TRUE(r < b);
    EXPECT_TRUE(q * b + r == a) << "iteration " << i;
  }
}

TEST(BigNum, ShiftInversion) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const BigNum a = BigNum::from_bytes_be(rng.random_bytes(16));
    const std::size_t s = rng.next_below(70);
    EXPECT_TRUE((a << s) >> s == a);
  }
}

TEST(BigNum, PowmodKnownValues) {
  // 2^10 mod 1000 = 24
  EXPECT_TRUE(BigNum{2}.powmod(BigNum{10}, BigNum{1000}) == BigNum{24});
  // Fermat: a^(p-1) = 1 mod p for prime p
  const BigNum p{1000003};
  EXPECT_TRUE(BigNum{31337}.powmod(p - BigNum{1}, p) == BigNum{1});
}

TEST(BigNum, ModInverse) {
  Rng rng(8);
  const BigNum m = BigNum::generate_prime(rng, 64);
  for (int i = 0; i < 20; ++i) {
    const BigNum a = BigNum::random_below(rng, m);
    if (a.is_zero()) continue;
    const BigNum inv = BigNum::modinv(a, m);
    EXPECT_TRUE((a * inv).mod(m) == BigNum{1});
  }
}

TEST(BigNum, PrimalitySmallKnowns) {
  Rng rng(9);
  EXPECT_TRUE(BigNum::is_probable_prime(BigNum{2}, rng));
  EXPECT_TRUE(BigNum::is_probable_prime(BigNum{65537}, rng));
  EXPECT_TRUE(BigNum::is_probable_prime(BigNum{1000003}, rng));
  EXPECT_FALSE(BigNum::is_probable_prime(BigNum{1}, rng));
  EXPECT_FALSE(BigNum::is_probable_prime(BigNum{1000001}, rng));  // 101*9901
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(BigNum::is_probable_prime(BigNum{561}, rng));
}

TEST(BigNum, GeneratePrimeHasExactBitLength) {
  Rng rng(10);
  const BigNum p = BigNum::generate_prime(rng, 96);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_odd());
}

// --- RSA -------------------------------------------------------------------

class RsaTest : public ::testing::Test {
 protected:
  // One shared keypair keeps the suite fast; 512 bits is plenty for tests.
  static RsaKeyPair& keys() {
    static Rng rng(1234);
    static RsaKeyPair kp = RsaKeyPair::generate(rng, 512);
    return kp;
  }
};

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const Bytes msg = to_bytes("attach-request-0001");
  const Bytes sig = keys().sign(msg);
  EXPECT_EQ(sig.size(), keys().public_key().size_bytes());
  EXPECT_TRUE(keys().public_key().verify(msg, sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
  const Bytes sig = keys().sign(to_bytes("hello"));
  EXPECT_FALSE(keys().public_key().verify(to_bytes("hellp"), sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  Bytes sig = keys().sign(to_bytes("hello"));
  sig[sig.size() / 2] ^= 1;
  EXPECT_FALSE(keys().public_key().verify(to_bytes("hello"), sig));
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  Rng rng(777);
  const RsaKeyPair other = RsaKeyPair::generate(rng, 512);
  const Bytes sig = keys().sign(to_bytes("hello"));
  EXPECT_FALSE(other.public_key().verify(to_bytes("hello"), sig));
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  Rng rng(2);
  const Bytes msg = to_bytes("shared-secret-material-32-bytes!");
  auto ct = keys().public_key().encrypt(msg, rng);
  ASSERT_TRUE(ct.ok()) << ct.error();
  auto pt = keys().decrypt(ct.value());
  ASSERT_TRUE(pt.ok()) << pt.error();
  EXPECT_EQ(pt.value(), msg);
}

TEST_F(RsaTest, EncryptionIsRandomized) {
  Rng rng(3);
  const Bytes msg = to_bytes("same message");
  auto c1 = keys().public_key().encrypt(msg, rng);
  auto c2 = keys().public_key().encrypt(msg, rng);
  EXPECT_NE(c1.value(), c2.value());
}

TEST_F(RsaTest, DecryptRejectsTamperedCiphertext) {
  Rng rng(4);
  auto ct = keys().public_key().encrypt(to_bytes("x"), rng);
  Bytes bad = ct.value();
  bad[0] ^= 0x80;
  // Either padding fails or the plaintext differs; both are acceptable
  // failure surfaces for PKCS#1 v1.5-style blocks.
  auto pt = keys().decrypt(bad);
  if (pt.ok()) {
    EXPECT_NE(pt.value(), to_bytes("x"));
  }
}

TEST_F(RsaTest, PlaintextTooLongRejected) {
  Rng rng(5);
  const Bytes big(keys().public_key().size_bytes(), 1);
  EXPECT_FALSE(keys().public_key().encrypt(big, rng).ok());
}

TEST_F(RsaTest, KeySerializationRoundTrip) {
  const Bytes ser = keys().public_key().serialize();
  auto parsed = RsaPublicKey::deserialize(ser);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value() == keys().public_key());
  EXPECT_EQ(parsed.value().fingerprint(), keys().public_key().fingerprint());
}

// --- Certificates ------------------------------------------------------------

TEST(Certificates, IssueAndValidate) {
  Rng rng(100);
  CertificateAuthority ca("cb-root", rng, 512);
  const RsaKeyPair subject = RsaKeyPair::generate(rng, 512);
  const Certificate cert =
      ca.issue("btelco-7", subject.public_key(), TimePoint::zero(),
               TimePoint::zero() + Duration::s(3600));

  EXPECT_TRUE(ca.validate(cert, TimePoint::zero() + Duration::s(10)));
  EXPECT_TRUE(CertificateAuthority::verify_signature(cert, ca.public_key()));
}

TEST(Certificates, ExpiredRejected) {
  Rng rng(101);
  CertificateAuthority ca("cb-root", rng, 512);
  const RsaKeyPair subject = RsaKeyPair::generate(rng, 512);
  const Certificate cert = ca.issue("t", subject.public_key(), TimePoint::zero(),
                                    TimePoint::zero() + Duration::s(10));
  EXPECT_FALSE(ca.validate(cert, TimePoint::zero() + Duration::s(11)));
}

TEST(Certificates, RevocationRejected) {
  Rng rng(102);
  CertificateAuthority ca("cb-root", rng, 512);
  const RsaKeyPair subject = RsaKeyPair::generate(rng, 512);
  const Certificate cert = ca.issue("evil-telco", subject.public_key(), TimePoint::zero(),
                                    TimePoint::zero() + Duration::s(1000));
  EXPECT_TRUE(ca.validate(cert, TimePoint::zero()));
  ca.revoke("evil-telco");
  EXPECT_FALSE(ca.validate(cert, TimePoint::zero()));
}

TEST(Certificates, ForgedSubjectKeyRejected) {
  Rng rng(103);
  CertificateAuthority ca("cb-root", rng, 512);
  const RsaKeyPair honest = RsaKeyPair::generate(rng, 512);
  const RsaKeyPair attacker = RsaKeyPair::generate(rng, 512);
  Certificate cert = ca.issue("t", honest.public_key(), TimePoint::zero(),
                              TimePoint::zero() + Duration::s(1000));
  // Attacker swaps the key but cannot re-sign.
  Certificate forged("t", attacker.public_key(), "cb-root", cert.not_before(),
                     cert.not_after(), cert.signature());
  EXPECT_FALSE(ca.validate(forged, TimePoint::zero()));
}

TEST(Certificates, SerializationRoundTrip) {
  Rng rng(104);
  CertificateAuthority ca("cb-root", rng, 512);
  const RsaKeyPair subject = RsaKeyPair::generate(rng, 512);
  const Certificate cert = ca.issue("broker-1", subject.public_key(), TimePoint::zero(),
                                    TimePoint::zero() + Duration::s(1000));
  auto parsed = Certificate::deserialize(cert.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().subject(), "broker-1");
  EXPECT_TRUE(ca.validate(parsed.value(), TimePoint::zero()));
}

// --- Sealed boxes --------------------------------------------------------------

TEST(Box, SealOpenRoundTrip) {
  Rng rng(200);
  const RsaKeyPair recipient = RsaKeyPair::generate(rng, 512);
  const Bytes msg = to_bytes("authVec: idU, idB, idT, nonce");
  const Bytes box = seal(recipient.public_key(), msg, rng);
  auto opened = open(recipient, box);
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(opened.value(), msg);
}

TEST(Box, TamperAnywhereFails) {
  Rng rng(201);
  const RsaKeyPair recipient = RsaKeyPair::generate(rng, 512);
  const Bytes box = seal(recipient.public_key(), to_bytes("secret"), rng);
  for (std::size_t i = 0; i < box.size(); i += 7) {
    Bytes bad = box;
    bad[i] ^= 0x01;
    EXPECT_FALSE(open(recipient, bad).ok()) << "offset " << i;
  }
}

TEST(Box, WrongRecipientFails) {
  Rng rng(202);
  const RsaKeyPair alice = RsaKeyPair::generate(rng, 512);
  const RsaKeyPair bob = RsaKeyPair::generate(rng, 512);
  const Bytes box = seal(alice.public_key(), to_bytes("secret"), rng);
  EXPECT_FALSE(open(bob, box).ok());
}

TEST(Box, LargePayload) {
  Rng rng(203);
  const RsaKeyPair recipient = RsaKeyPair::generate(rng, 512);
  const Bytes msg = rng.random_bytes(64 * 1024);
  auto opened = open(recipient, seal(recipient.public_key(), msg, rng));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), msg);
}

TEST(Box, SymmetricSealRoundTripAndTamper) {
  Rng rng(204);
  const Bytes key = rng.random_bytes(32);
  const Bytes msg = to_bytes("traffic report: ul=100 dl=2000");
  const Bytes box = symmetric_seal(key, msg, rng);
  auto opened = symmetric_open(key, box);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), msg);

  Bytes bad = box;
  bad[bad.size() - 1] ^= 1;
  EXPECT_FALSE(symmetric_open(key, bad).ok());

  const Bytes other_key = rng.random_bytes(32);
  EXPECT_FALSE(symmetric_open(other_key, box).ok());
}

}  // namespace
}  // namespace cb::crypto
