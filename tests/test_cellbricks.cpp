// End-to-end CellBricks integration tests built on the scenario World:
// attach via SAP over the real control path, host-driven mobility with
// MPTCP survival, verifiable billing with honest and dishonest parties,
// and the reputation-driven authorization loop.
#include <gtest/gtest.h>

#include "apps/iperf.hpp"
#include "scenario/world.hpp"

namespace cb::scenario {
namespace {

WorldConfig static_cb_config(int towers = 2) {
  WorldConfig cfg;
  cfg.arch = Architecture::CellBricks;
  cfg.n_towers = towers;
  cfg.route = RouteSpec{"static", false, 0.1, 500.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  cfg.radio_loss = 0.0;
  return cfg;
}

TEST(CellBricksAttach, EndToEndOverControlPath) {
  World world(static_cb_config());
  bool done = false;
  net::Ipv4Addr ip;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) {
    ASSERT_TRUE(r.ok()) << r.error();
    ip = r.value();
    done = true;
  });
  world.simulator().run_for(Duration::s(5));
  ASSERT_TRUE(done);
  EXPECT_TRUE(ip.valid());
  EXPECT_TRUE(world.ue_node()->has_address(ip));
  EXPECT_EQ(world.brokerd()->sessions_issued(), 1u);
  EXPECT_EQ(world.btelco(0)->active_sessions(), 1u);
}

TEST(CellBricksAttach, LatencyMatchesCalibration) {
  // 24.5 ms processing + 7.2 ms broker RTT ~= 31.7 ms (paper: 31.68 ms).
  World world(static_cb_config());
  bool done = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr>) { done = true; });
  world.simulator().run_for(Duration::s(5));
  ASSERT_TRUE(done);
  EXPECT_NEAR(world.ue_agent()->last_attach_latency().to_millis(), 31.7, 2.0);
}

TEST(CellBricksAttach, FasterThanEpcWhenCloudIsFar) {
  // One broker round-trip vs two HSS round-trips (the Fig.7 headline).
  auto run = [](Architecture arch) {
    WorldConfig cfg = static_cb_config(1);
    cfg.arch = arch;
    cfg.cloud_rtt = Duration::millis(73.5);  // us-east-1
    World world(cfg);
    bool done = false;
    double ms = 0;
    if (arch == Architecture::CellBricks) {
      world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr>) { done = true; });
      world.simulator().run_for(Duration::s(5));
      ms = world.ue_agent()->last_attach_latency().to_millis();
    } else {
      world.ue_nas()->attach(1, [&](Result<net::Ipv4Addr>) { done = true; });
      world.simulator().run_for(Duration::s(5));
      ms = world.ue_nas()->last_attach_latency().to_millis();
    }
    EXPECT_TRUE(done);
    return ms;
  };
  const double cb = run(Architecture::CellBricks);
  const double bl = run(Architecture::Mno);
  EXPECT_LT(cb, bl);
  // Paper: 98.62 vs 166.48 ms — roughly 40% lower.
  EXPECT_NEAR(cb / bl, 98.62 / 166.48, 0.12);
}

TEST(CellBricksMobility, DetachInvalidatesAddress) {
  World world(static_cb_config());
  bool attached = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(5));
  ASSERT_TRUE(attached);
  const net::Ipv4Addr ip = world.ue_agent()->current_ip();
  world.ue_agent()->detach();
  EXPECT_FALSE(world.ue_agent()->attached());
  EXPECT_FALSE(world.ue_node()->has_address(ip));
  world.simulator().run_for(Duration::s(1));
  EXPECT_EQ(world.btelco(0)->active_sessions(), 0u);
}

TEST(CellBricksMobility, ReattachGetsDifferentProviderAddress) {
  World world(static_cb_config(2));
  net::Ipv4Addr ip1, ip2;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { ip1 = r.value(); });
  world.simulator().run_for(Duration::s(5));
  world.ue_agent()->detach();
  world.ue_agent()->attach(2, [&](Result<net::Ipv4Addr> r) { ip2 = r.value(); });
  world.simulator().run_for(Duration::s(5));
  ASSERT_TRUE(ip1.valid());
  ASSERT_TRUE(ip2.valid());
  EXPECT_NE(ip1, ip2);
  // Different bTelcos allocate from different pools.
  EXPECT_NE(ip1.value() >> 24, ip2.value() >> 24);
}

TEST(CellBricksMobility, DriveSurvivesWithMptcpBulkTransfer) {
  WorldConfig cfg;
  cfg.arch = Architecture::CellBricks;
  cfg.n_towers = 5;
  cfg.route = RouteSpec{"drive", false, 25.0, 700.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  World world(cfg);

  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(100));
  world.start();
  world.simulator().run_for(Duration::s(3));
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator());
  world.simulator().run_for(Duration::s(110));

  EXPECT_GE(world.handovers(), 3u);  // several provider switches happened
  EXPECT_GT(client.total_bytes(), 10u * 1024 * 1024);
  // Data flowed after the final handover too (the stream survived).
  const auto& series = client.series();
  ASSERT_GT(series.buckets(), 100u);
  double tail = 0;
  for (std::size_t i = series.buckets() - 10; i < series.buckets(); ++i) {
    tail += series.bucket(i);
  }
  EXPECT_GT(tail, 0.0);
}

TEST(CellBricksBilling, HonestPartiesProduceMatchingReports) {
  World world(static_cb_config());
  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(25));
  bool attached = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(2));
  ASSERT_TRUE(attached);
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator());
  world.simulator().run_for(Duration::s(35));  // several 10 s report periods

  EXPECT_GT(world.brokerd()->reports_received(), 2u);
  EXPECT_EQ(world.brokerd()->reports_rejected(), 0u);
  // All compared pairs matched; the bTelco's reputation is intact.
  EXPECT_DOUBLE_EQ(world.brokerd()->reputation().telco_score("btelco-0"), 1.0);
  EXPECT_EQ(world.brokerd()->reputation().mismatches("btelco-0"), 0u);
}

TEST(CellBricksBilling, OverReportingTelcoIsCaughtAndEventuallyRefused) {
  WorldConfig cfg = static_cb_config(2);
  cfg.telco0_overreport = 1.5;  // bTelco-0 inflates DL usage by 50%
  World world(cfg);
  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(60));
  bool attached = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(2));
  ASSERT_TRUE(attached);
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator());
  world.simulator().run_for(Duration::s(70));

  // Mismatches accumulated; btelco-0's score decayed.
  EXPECT_GT(world.brokerd()->reputation().mismatches("btelco-0"), 2u);
  EXPECT_LT(world.brokerd()->reputation().telco_score("btelco-0"), 0.5);
  // The broker now refuses to authorize attachments via btelco-0...
  world.ue_agent()->detach();
  world.simulator().run_for(Duration::s(1));
  bool denied = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { denied = !r.ok(); });
  world.simulator().run_for(Duration::s(10));
  EXPECT_TRUE(denied);
  // ...while the honest btelco-1 still serves the user.
  bool ok2 = false;
  world.ue_agent()->attach(2, [&](Result<net::Ipv4Addr> r) { ok2 = r.ok(); });
  world.simulator().run_for(Duration::s(10));
  EXPECT_TRUE(ok2);
  // The honest user was NOT blamed.
  EXPECT_FALSE(world.brokerd()->reputation().is_suspect("user-001"));
}

TEST(CellBricksBilling, UnderReportingUeFlaggedAcrossTelcos) {
  WorldConfig cfg = static_cb_config(2);
  cfg.ue_underreport = 0.5;  // tampered baseband halves reported usage
  World world(cfg);
  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(120));

  for (ran::CellId cell : {ran::CellId{1}, ran::CellId{2}}) {
    bool attached = false;
    world.ue_agent()->attach(cell, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
    world.simulator().run_for(Duration::s(2));
    ASSERT_TRUE(attached);
    apps::IperfDownloadClient client(world.ue_transport(),
                                     net::EndPoint{world.server_addr(), 5001},
                                     world.simulator());
    world.simulator().run_for(Duration::s(35));
    world.ue_agent()->detach();
    world.simulator().run_for(Duration::s(1));
    // Re-attach briefly so the pending final report gets flushed.
    bool re = false;
    world.ue_agent()->attach(cell, [&](Result<net::Ipv4Addr> r) { re = r.ok(); });
    world.simulator().run_for(Duration::s(2));
    if (re) {
      world.ue_agent()->detach();
      world.simulator().run_for(Duration::s(1));
    }
  }
  // Mismatches against two distinct bTelcos: the user lands on the suspect
  // list (the bTelcos' own honesty is what exonerates them).
  EXPECT_TRUE(world.brokerd()->reputation().is_suspect("user-001"));
}

TEST(CellBricksAttach, BrokerDenialLeavesRadioDown) {
  // A failed attach must fully unwind: no IP, no session, and the radio
  // bearer back down (it is optimistically raised before SAP runs).
  World world(static_cb_config(1));
  world.brokerd()->remove_subscriber("user-001");
  bool failed = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { failed = !r.ok(); });
  world.simulator().run_for(Duration::s(5));
  EXPECT_TRUE(failed);
  EXPECT_FALSE(world.ue_agent()->attached());
  EXPECT_FALSE(world.ran_map().site(1).radio_link->is_up());
  EXPECT_EQ(world.btelco(0)->active_sessions(), 0u);
  EXPECT_EQ(world.ue_agent()->attach_failures(), 1u);
}

TEST(CellBricksAttach, FinalReportSurvivesDetachViaRetransmission) {
  // The final report's first copy races the radio teardown; the reliable
  // channel must deliver it after the next attach so billing pairs close.
  World world(static_cb_config(1));
  bool attached = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(12));  // one report period
  ASSERT_TRUE(attached);
  world.ue_agent()->detach();
  world.simulator().run_for(Duration::s(3));
  bool re = false;
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { re = r.ok(); });
  world.simulator().run_for(Duration::s(5));
  ASSERT_TRUE(re);
  // Nothing is stuck in the retransmission queue, nothing was rejected.
  EXPECT_EQ(world.ue_agent()->outstanding_reports(), 0u);
  EXPECT_EQ(world.brokerd()->reports_rejected(), 0u);
  EXPECT_GE(world.brokerd()->reports_ingested(), 2u);
}

TEST(CellBricksScale, ManySequentialAttachesAllSucceed) {
  World world(static_cb_config(2));
  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    const ran::CellId cell = (i % 2) + 1;
    bool done = false;
    world.ue_agent()->attach(cell, [&](Result<net::Ipv4Addr> r) {
      if (r.ok()) ++ok;
      done = true;
    });
    world.simulator().run_for(Duration::s(2));
    ASSERT_TRUE(done);
    world.ue_agent()->detach();
    world.simulator().run_for(Duration::ms(100));
  }
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(world.brokerd()->sessions_issued(), 20u);
}

}  // namespace
}  // namespace cb::scenario
