// Differential attach-protocol conformance suite (DESIGN.md §14).
//
// Every protocol on the axis — eps_aka | 5g_aka | sap | sap_resume — runs
// through the SAME seeded scenario matrix (clean attach, handover re-attach,
// broker/HSS unreachable, mid-attach chaos window) under the full invariant
// catalogue, and each cell must come back (i) violation-free and (ii)
// bit-stable: two runs of the same seed produce identical fingerprints.
// World-level tests then check what the scenario runner cannot see from the
// outside: the 5G key-agreement transcript (KSEAF equality across the air
// interface), the calibrated latency ordering between protocols, resolution
// of the protocol axis onto architectures, and the resumption-ticket
// lifecycle (audit trail, single-use handles, replay/expiry/forgery).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cellbricks/ticket.hpp"
#include "check/runner.hpp"
#include "obs/metrics.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/world.hpp"

namespace cb {
namespace {

using scenario::AttachProtocol;
using scenario::FuzzFault;
using scenario::FuzzScenario;
using scenario::RouteSpec;
using scenario::World;
using scenario::WorldConfig;

// ---------------------------------------------------------------------------
// The scenario matrix: run_scenario across every protocol variant
// ---------------------------------------------------------------------------

struct ProtocolCase {
  const char* name;
  int code;     // FuzzScenario::attach_protocol
  bool resume;  // FuzzScenario::resume_ticket
};

constexpr ProtocolCase kProtocols[] = {
    {"eps_aka", 0, false},
    {"5g_aka", 1, false},
    {"sap", 2, false},
    {"sap_resume", 2, true},
};

// Common geometry: 3 bTelcos 400 m apart, UE at 25 m/s -> cell crossings at
// ~8 s and ~24 s, so a 30 s horizon exercises two re-attaches.
FuzzScenario matrix_scenario(const ProtocolCase& p) {
  FuzzScenario s;
  s.seed = 1234;
  s.attach_protocol = p.code;
  s.resume_ticket = p.resume;
  s.n_towers = 3;
  s.night = false;
  s.speed_mps = 25.0;
  s.tower_spacing_m = 400.0;
  s.duration_s = 30.0;
  s.app = 0;  // mobility only; the matrix is about the control plane
  return s;
}

// One matrix cell: the run must be invariant-clean (attach.* included) and
// the same seed must reproduce the exact end-state fingerprint.
check::RunReport expect_conformant(const FuzzScenario& s, const std::string& label,
                                   bool require_attached) {
  const check::RunReport a = check::run_scenario(s);
  for (const auto& v : a.violations) {
    ADD_FAILURE() << label << ": invariant " << v.invariant << " violated: " << v.detail;
  }
  EXPECT_GT(a.checks_run, 0u) << label;
  if (require_attached) {
    EXPECT_TRUE(a.ue_attached_at_end) << label;
  }
  const check::RunReport b = check::run_scenario(s);
  EXPECT_EQ(a.fingerprint(), b.fingerprint()) << label << ": same-seed rerun diverged";
  return a;
}

TEST(AttachMatrix, CleanAttach) {
  for (const ProtocolCase& p : kProtocols) {
    FuzzScenario s = matrix_scenario(p);
    s.speed_mps = 1.0;  // never leaves the first cell: pure attach + idle
    s.duration_s = 20.0;
    expect_conformant(s, std::string("clean/") + p.name, /*require_attached=*/true);
  }
}

TEST(AttachMatrix, HandoverReattach) {
  for (const ProtocolCase& p : kProtocols) {
    FuzzScenario s = matrix_scenario(p);
    s.app = 2;  // ping keeps the user plane observable across re-attaches
    const check::RunReport r =
        expect_conformant(s, std::string("handover/") + p.name, /*require_attached=*/true);
    // Plain SAP re-runs the broker round-trip per crossing (one session per
    // attach); sap_resume keeps the ORIGINAL session across resumed
    // re-attaches — billing continuity is the differential signature of the
    // ticket path. The EPC variants never touch the broker.
    if (p.code != 2) {
      EXPECT_EQ(r.sessions_issued, 0u) << p.name;
    } else if (p.resume) {
      EXPECT_EQ(r.sessions_issued, 1u) << p.name;
    } else {
      EXPECT_GE(r.sessions_issued, 2u) << p.name;
    }
  }
}

TEST(AttachMatrix, BrokerUnreachableWindow) {
  // The cloud host (brokerd for SAP, HSS for the EPC protocols) goes dark
  // across the first cell crossing; recovery/backoff must re-attach once the
  // window lifts, and the run must stay invariant-clean throughout.
  for (const ProtocolCase& p : kProtocols) {
    FuzzScenario s = matrix_scenario(p);
    FuzzFault outage;
    outage.kind = FuzzFault::Kind::BrokerOutage;
    outage.start_s = 6.0;
    outage.duration_s = 10.0;
    s.faults.push_back(outage);
    expect_conformant(s, std::string("broker-outage/") + p.name, /*require_attached=*/true);
  }
}

TEST(AttachMatrix, MidAttachChaosWindow) {
  // A short outage lands exactly on the 8 s crossing (the re-attach is
  // in-flight when the control path dies), then a radio drop and a provider
  // crash later in the drive. Liveness at the horizon is not promised under
  // an unhealed radio fault — determinism and invariant-cleanliness are.
  for (const ProtocolCase& p : kProtocols) {
    FuzzScenario s = matrix_scenario(p);
    FuzzFault outage;
    outage.kind = FuzzFault::Kind::BrokerOutage;
    outage.start_s = 7.5;
    outage.duration_s = 3.0;
    FuzzFault drop;
    drop.kind = FuzzFault::Kind::RadioDrop;
    drop.start_s = 20.0;
    FuzzFault crash;
    crash.kind = FuzzFault::Kind::TelcoCrash;
    crash.start_s = 22.0;
    crash.duration_s = 4.0;
    crash.telco = 2;
    s.faults = {outage, drop, crash};
    expect_conformant(s, std::string("chaos/") + p.name, /*require_attached=*/false);
  }
}

// ---------------------------------------------------------------------------
// Key-agreement transcripts and calibrated ordering (world level)
// ---------------------------------------------------------------------------

WorldConfig small_world(AttachProtocol protocol, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.protocol = protocol;
  cfg.seed = seed;
  cfg.n_towers = 2;
  cfg.route = RouteSpec{"conformance", false, 0.5, 900.0, ran::RatePolicy::day()};
  return cfg;
}

TEST(KeyAgreement, FiveGTranscriptMatchesAcrossAirInterface) {
  World world(small_world(AttachProtocol::Aka5g, 7));
  world.start();
  world.simulator().run_for(Duration::s(5));
  ASSERT_NE(world.ue_nas(), nullptr);
  ASSERT_TRUE(world.ue_nas()->attached());
  EXPECT_TRUE(world.ue_nas()->is_5g());
  // The serving side learned KSEAF from the AUSF confirm; the UE derived it
  // from K and RAND. Agreement is the whole point of the RES* dialog.
  ASSERT_FALSE(world.mme()->last_kseaf().empty());
  EXPECT_EQ(world.mme()->last_kseaf(), world.ue_nas()->last_kseaf());
}

TEST(KeyAgreement, EpsAkaWorldStaysFourG) {
  World world(small_world(AttachProtocol::EpsAka, 7));
  world.start();
  world.simulator().run_for(Duration::s(5));
  ASSERT_NE(world.ue_nas(), nullptr);
  ASSERT_TRUE(world.ue_nas()->attached());
  EXPECT_FALSE(world.ue_nas()->is_5g());
  // No 5G dialog ran, so neither side holds a KSEAF: the 4G transcript is
  // K_ASME inside the EPS vector (covered by test_epc's vector tests).
  EXPECT_TRUE(world.mme()->last_kseaf().empty());
  EXPECT_TRUE(world.ue_nas()->last_kseaf().empty());
}

TEST(KeyAgreement, ProtocolLatencyOrderingMatchesCalibration) {
  // Same seed, same geometry, protocol swapped: the paper's d ordering is
  // sap < eps_aka < 5g_aka (one broker RTT vs two vs three HSS RTTs).
  auto first_attach_ms = [](AttachProtocol protocol) {
    World world(small_world(protocol, 3));
    world.start();
    world.simulator().run_for(Duration::s(5));
    if (world.ue_agent() != nullptr) {
      EXPECT_TRUE(world.ue_agent()->attached()) << to_string(protocol);
      return world.ue_agent()->last_attach_latency().to_millis();
    }
    EXPECT_TRUE(world.ue_nas()->attached()) << to_string(protocol);
    return world.ue_nas()->last_attach_latency().to_millis();
  };
  const double sap = first_attach_ms(AttachProtocol::Sap);
  const double eps = first_attach_ms(AttachProtocol::EpsAka);
  const double aka5g = first_attach_ms(AttachProtocol::Aka5g);
  EXPECT_LT(sap, eps);
  EXPECT_LT(eps, aka5g);
}

TEST(ProtocolResolution, DefaultFollowsArchitectureAndOverridesWin) {
  {
    WorldConfig cfg = small_world(AttachProtocol::Default, 5);
    cfg.arch = scenario::Architecture::Mno;
    World world(cfg);
    EXPECT_EQ(world.protocol(), AttachProtocol::EpsAka);
    EXPECT_NE(world.mme(), nullptr);
    EXPECT_EQ(world.ue_agent(), nullptr);
  }
  {
    WorldConfig cfg = small_world(AttachProtocol::Default, 5);
    cfg.arch = scenario::Architecture::CellBricks;
    World world(cfg);
    EXPECT_EQ(world.protocol(), AttachProtocol::Sap);
    EXPECT_NE(world.brokerd(), nullptr);
  }
  {
    // A non-Default protocol overrides the architecture knob entirely.
    WorldConfig cfg = small_world(AttachProtocol::EpsAka, 5);
    cfg.arch = scenario::Architecture::CellBricks;
    World world(cfg);
    EXPECT_EQ(world.protocol(), AttachProtocol::EpsAka);
    EXPECT_NE(world.mme(), nullptr);
    EXPECT_EQ(world.brokerd(), nullptr);
  }
}

TEST(ProtocolResolution, ShardedBrokerDegradesResumeToSap) {
  obs::Registry metrics;
  obs::ScopedRegistry install(&metrics);
  WorldConfig cfg = small_world(AttachProtocol::SapResume, 5);
  cfg.broker_shards = 2;
  World world(cfg);
  EXPECT_EQ(world.protocol(), AttachProtocol::Sap);
  EXPECT_NE(world.broker_cluster(), nullptr);
  EXPECT_EQ(world.brokerd(), nullptr);
  // The degrade is flagged and counted, never silent.
  EXPECT_TRUE(world.resume_degraded());
  const obs::Counter* degraded = metrics.find_counter("world.sap_resume_degraded");
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->value(), 1u);

  // A plain-SAP sharded world reports no degrade.
  WorldConfig plain = small_world(AttachProtocol::Sap, 5);
  plain.broker_shards = 2;
  EXPECT_FALSE(World(plain).resume_degraded());
  // Nor does a single-broker resume world.
  EXPECT_FALSE(World(small_world(AttachProtocol::SapResume, 5)).resume_degraded());
}

// Regression: the degraded combination must still run a full scenario clean —
// billing pairs on the sharded settlement path and every invariant holds.
TEST(ProtocolResolution, DegradedResumeScenarioStillPairsBilling) {
  scenario::FuzzScenario s;
  s.seed = 20260808;
  s.n_towers = 3;
  s.speed_mps = 20.0;
  s.tower_spacing_m = 700.0;
  s.duration_s = 60.0;
  s.report_interval_s = 5.0;
  s.app = 1;
  s.resume_ticket = true;  // requests SapResume...
  s.broker_shards = 2;     // ...which the sharded broker degrades to Sap
  const check::RunReport report = check::run_scenario(s, check::RunOptions{});
  for (const auto& v : report.violations) {
    ADD_FAILURE() << v.invariant << " @" << v.at.to_seconds() << "s: " << v.detail;
  }
  EXPECT_GT(report.pairs_compared, 0u) << "degraded world must still settle billing";
  EXPECT_TRUE(report.ue_attached_at_end);
  // The differential signature of the degrade: plain SAP issues one session
  // per attach, so the drive's cell crossings mint fresh sessions — a live
  // ticket path would have kept the original session across re-attaches.
  EXPECT_GE(report.sessions_issued, 2u) << "resume tickets must not be honored when degraded";
}

TEST(ProtocolResolution, ToStringCoversTheAxis) {
  EXPECT_STREQ(to_string(AttachProtocol::Default), "default");
  EXPECT_STREQ(to_string(AttachProtocol::EpsAka), "eps_aka");
  EXPECT_STREQ(to_string(AttachProtocol::Aka5g), "5g_aka");
  EXPECT_STREQ(to_string(AttachProtocol::Sap), "sap");
  EXPECT_STREQ(to_string(AttachProtocol::SapResume), "sap_resume");
}

// ---------------------------------------------------------------------------
// Resumption-ticket lifecycle
// ---------------------------------------------------------------------------

TEST(ResumeLifecycle, HandoverDriveResumesAndAuditsStayClean) {
  WorldConfig cfg;
  cfg.protocol = AttachProtocol::SapResume;
  cfg.seed = 11;
  cfg.n_towers = 3;
  cfg.route = RouteSpec{"resume", false, 25.0, 400.0, ran::RatePolicy::day()};
  World world(cfg);
  world.start();
  world.simulator().run_for(Duration::s(30));

  auto* ue = world.ue_agent();
  ASSERT_NE(ue, nullptr);
  EXPECT_EQ(world.protocol(), AttachProtocol::SapResume);
  EXPECT_TRUE(ue->attached());
  EXPECT_TRUE(ue->has_ticket());
  // Both cell crossings hit a fresh bTelco, so both re-attaches resumed.
  EXPECT_GE(ue->resumes_succeeded(), 2u);
  // A resumed attach skips the broker round-trip: strictly cheaper than the
  // full SAP attach that minted the ticket.
  ASSERT_FALSE(ue->resume_latencies().empty());
  EXPECT_LT(ue->resume_latencies().mean(), ue->attach_latencies().max());

  // Audit trail: every honoured ticket was within expiry, unrevoked, and a
  // ticket_id is used at most once per bTelco; the totals reconcile with the
  // UE's own counter and the broker heard about every resume (ResumeNotify
  // is async but well inside the 30 s horizon).
  std::uint64_t audited = 0;
  for (std::size_t i = 0; i < world.n_btelcos(); ++i) {
    std::set<std::string> seen_ids;
    for (const auto& audit : world.btelco(i)->ticket_audit()) {
      EXPECT_LE(audit.accepted_at_ns, audit.expiry_ns);
      EXPECT_FALSE(audit.was_revoked);
      EXPECT_TRUE(seen_ids.insert(to_hex(audit.ticket_id)).second)
          << "ticket honoured twice at " << world.btelco(i)->id();
    }
    audited += world.btelco(i)->resumes_served();
  }
  EXPECT_EQ(audited, ue->resumes_succeeded());
  ASSERT_NE(world.brokerd(), nullptr);
  EXPECT_EQ(world.brokerd()->resumes_notified(), ue->resumes_succeeded());
  EXPECT_EQ(world.brokerd()->resume_revocations(), 0u);
}

// The pure-layer half of the ticket matrix: replayed / expired / forged
// tickets fail closed before any session state is touched (the bTelco's
// single-use cache and revocation list are layered on top — see the
// negative-path tests in test_sap.cpp).
class ResumeTicketMatrix : public ::testing::Test {
 protected:
  ResumeTicketMatrix() : rng_(7) {}

  void SetUp() override {
    broker_keys_ = crypto::RsaKeyPair::generate(rng_, 512);
    stek_ = rng_.random_bytes(32);
    inner_.pseudonym = "pseud-1";
    inner_.session_id = 77;
    inner_.ss_resume = cellbricks::derive_resume_secret(rng_.random_bytes(32));
    inner_.ticket_id = rng_.random_bytes(cellbricks::kTicketIdSize);
    expiry_ = TimePoint::zero() + Duration::s(60);
    ticket_ = cellbricks::mint_resume_ticket(broker_keys_, stek_, inner_, expiry_, rng_);
  }

  Rng rng_;
  crypto::RsaKeyPair broker_keys_{};
  Bytes stek_;
  cellbricks::TicketInner inner_;
  TimePoint expiry_;
  Bytes ticket_;
};

TEST_F(ResumeTicketMatrix, ValidRequestGrantsAndConfirmRoundTrips) {
  Bytes nonce;
  const Bytes req =
      cellbricks::make_resume_request(ticket_, "telco-1", 3, inner_.ss_resume, rng_, &nonce);
  auto grant = cellbricks::verify_resume_request(req, "telco-1", broker_keys_.public_key(),
                                                 stek_, TimePoint::zero());
  ASSERT_TRUE(grant.ok()) << grant.error();
  EXPECT_EQ(grant.value().inner.pseudonym, inner_.pseudonym);
  EXPECT_EQ(grant.value().inner.session_id, inner_.session_id);
  EXPECT_EQ(grant.value().inner.ss_resume, inner_.ss_resume);
  EXPECT_EQ(grant.value().inner.ticket_id, inner_.ticket_id);
  EXPECT_EQ(grant.value().period_base, 3u);
  EXPECT_EQ(grant.value().nonce, nonce);

  const Bytes confirm = cellbricks::make_resume_confirm(grant.value(), rng_);
  auto opened = cellbricks::open_resume_confirm(confirm, inner_.ss_resume);
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(opened.value().nonce, nonce);
  EXPECT_EQ(opened.value().session_id, inner_.session_id);
}

TEST_F(ResumeTicketMatrix, ReplayedTicketCarriesTheSameSingleUseHandle) {
  // The wire layer is stateless, so two requests from the same ticket both
  // verify — but they expose the identical ticket_id, which is exactly the
  // handle the bTelco's per-provider single-use cache keys on.
  const Bytes req1 =
      cellbricks::make_resume_request(ticket_, "telco-1", 0, inner_.ss_resume, rng_);
  const Bytes req2 =
      cellbricks::make_resume_request(ticket_, "telco-1", 1, inner_.ss_resume, rng_);
  auto g1 = cellbricks::verify_resume_request(req1, "telco-1", broker_keys_.public_key(), stek_,
                                              TimePoint::zero());
  auto g2 = cellbricks::verify_resume_request(req2, "telco-1", broker_keys_.public_key(), stek_,
                                              TimePoint::zero());
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1.value().inner.ticket_id, g2.value().inner.ticket_id);
}

TEST_F(ResumeTicketMatrix, ExpiredTicketRejected) {
  const Bytes req =
      cellbricks::make_resume_request(ticket_, "telco-1", 0, inner_.ss_resume, rng_);
  auto grant = cellbricks::verify_resume_request(req, "telco-1", broker_keys_.public_key(),
                                                 stek_, expiry_);  // now == expiry: stale
  ASSERT_FALSE(grant.ok());
  EXPECT_NE(grant.error().find("expired"), std::string::npos);
}

TEST_F(ResumeTicketMatrix, ForgedBrokerSignatureRejected) {
  auto attacker = crypto::RsaKeyPair::generate(rng_, 512);
  const Bytes forged = cellbricks::mint_resume_ticket(attacker, stek_, inner_, expiry_, rng_);
  const Bytes req =
      cellbricks::make_resume_request(forged, "telco-1", 0, inner_.ss_resume, rng_);
  auto grant = cellbricks::verify_resume_request(req, "telco-1", broker_keys_.public_key(),
                                                 stek_, TimePoint::zero());
  ASSERT_FALSE(grant.ok());
  EXPECT_NE(grant.error().find("signature"), std::string::npos);
}

TEST_F(ResumeTicketMatrix, StolenTicketWithoutResumeSecretRejected) {
  // A thief holds the ticket bytes but not ss_resume: the PoP MAC fails.
  const Bytes wrong_secret = rng_.random_bytes(32);
  const Bytes req = cellbricks::make_resume_request(ticket_, "telco-1", 0, wrong_secret, rng_);
  auto grant = cellbricks::verify_resume_request(req, "telco-1", broker_keys_.public_key(),
                                                 stek_, TimePoint::zero());
  ASSERT_FALSE(grant.ok());
  EXPECT_NE(grant.error().find("proof-of-possession"), std::string::npos);
}

TEST_F(ResumeTicketMatrix, RequestBoundToAnotherTelcoRejected) {
  const Bytes req =
      cellbricks::make_resume_request(ticket_, "telco-1", 0, inner_.ss_resume, rng_);
  auto grant = cellbricks::verify_resume_request(req, "telco-2", broker_keys_.public_key(),
                                                 stek_, TimePoint::zero());
  ASSERT_FALSE(grant.ok());
  EXPECT_NE(grant.error().find("another bTelco"), std::string::npos);
}

}  // namespace
}  // namespace cb
