// Unit tests for the discrete-event engine: ordering, cancellation,
// determinism, and bounded runs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace cb::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Duration::ms(30), [&] { order.push_back(3); });
  sim.schedule(Duration::ms(10), [&] { order.push_back(1); });
  sim.schedule(Duration::ms(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().to_seconds(), 0.03);
}

TEST(Simulator, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule(Duration::ms(1), tick);
  };
  sim.schedule(Duration::ms(1), tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now().nanos(), Duration::ms(5).nanos());
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule(Duration::ms(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  EventHandle h = sim.schedule(Duration::ms(1), [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(Duration::ms(i * 10), [&] { ++count; });
  }
  sim.run_until(TimePoint::zero() + Duration::ms(35));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now().nanos(), Duration::ms(35).nanos());
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulator sim;
  sim.run_until(TimePoint::zero() + Duration::s(5));
  EXPECT_EQ(sim.now().to_seconds(), 5.0);
}

TEST(Simulator, RunUntilSkipsCancelledHeadWithoutOvershoot) {
  Simulator sim;
  bool late_ran = false;
  EventHandle head = sim.schedule(Duration::ms(1), [] {});
  sim.schedule(Duration::ms(100), [&] { late_ran = true; });
  head.cancel();
  sim.run_until(TimePoint::zero() + Duration::ms(50));
  EXPECT_FALSE(late_ran);  // the 100ms event must not leak past the deadline
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.run_for(Duration::s(1));
  sim.run_for(Duration::s(1));
  EXPECT_EQ(sim.now().to_seconds(), 2.0);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(Duration::ms(-1), [] {}), std::invalid_argument);
}

TEST(Simulator, DeterministicRngAcrossRuns) {
  std::vector<std::uint64_t> a, b;
  {
    Simulator sim(42);
    for (int i = 0; i < 10; ++i) a.push_back(sim.rng().next_u64());
  }
  {
    Simulator sim(42);
    for (int i = 0; i < 10; ++i) b.push_back(sim.rng().next_u64());
  }
  EXPECT_EQ(a, b);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(Duration::ms(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, CancelReleasesClosureEagerly) {
  // Regression: a cancelled event's closure (and everything it captures)
  // must be destroyed at cancel() time, not when its timestamp pops.
  Simulator sim;
  auto captured = std::make_shared<int>(7);
  std::weak_ptr<int> watch = captured;
  EventHandle h = sim.schedule(Duration::s(3600), [captured] { (void)*captured; });
  captured.reset();
  EXPECT_FALSE(watch.expired());  // queue still owns the closure
  h.cancel();
  EXPECT_TRUE(watch.expired());  // cancel released it without running anything
  sim.run();
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, DestructionReleasesPendingClosures) {
  auto captured = std::make_shared<int>(1);
  std::weak_ptr<int> watch = captured;
  EventHandle h;
  {
    Simulator sim;
    h = sim.schedule(Duration::s(10), [captured] { (void)*captured; });
    captured.reset();
    EXPECT_TRUE(h.pending());
  }
  EXPECT_TRUE(watch.expired());   // simulator death freed the closure
  EXPECT_FALSE(h.pending());      // surviving handle is safely inert
  h.cancel();                     // and cancelling it is a no-op
}

TEST(Simulator, SlotReuseDoesNotConfuseStaleHandles) {
  // A handle to a fired event must stay non-pending even after its pool
  // slot is recycled by a later schedule (generation counters, not flags).
  Simulator sim;
  int ran = 0;
  EventHandle first = sim.schedule(Duration::ms(1), [&] { ++ran; });
  sim.run();
  EXPECT_FALSE(first.pending());
  EventHandle second = sim.schedule(Duration::ms(1), [&] { ++ran; });
  EXPECT_FALSE(first.pending());  // stale handle, recycled slot
  first.cancel();                 // must not cancel the new event
  sim.run();
  EXPECT_EQ(ran, 2);
  EXPECT_TRUE(second.pending() == false);
}

}  // namespace
}  // namespace cb::sim
