// Tests for the simulation checker (src/check): InvariantEngine mechanics,
// the repro JSON layer, scenario generation determinism, run_scenario
// fingerprint stability, and the full detect -> shrink -> replay loop on a
// planted broker bug (the ISSUE acceptance path in miniature).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "check/invariant.hpp"
#include "check/json.hpp"
#include "check/repro.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "scenario/fuzz.hpp"
#include "test_seed.hpp"

namespace cb::check {
namespace {

// ---------------------------------------------------------------------------
// InvariantEngine mechanics
// ---------------------------------------------------------------------------

TEST(InvariantEngine, PeriodicCadencePlusFinalSweep) {
  sim::Simulator sim;
  InvariantEngine eng;
  int periodic = 0;
  int end_only = 0;
  eng.add("t.periodic", InvariantEngine::When::Periodic,
          [&](InvariantEngine::Reporter&) { ++periodic; });
  eng.add("t.end", InvariantEngine::When::EndOnly,
          [&](InvariantEngine::Reporter&) { ++end_only; });
  const TimePoint horizon = sim.now() + Duration::s(5);
  eng.arm(sim, Duration::s(1), horizon);
  sim.run_until(horizon);
  // Nothing but the engine's own ticks ran: 5 periodic sweeps, no end-only.
  EXPECT_EQ(periodic, 5);
  EXPECT_EQ(end_only, 0);
  eng.finalize(sim.now());
  // finalize() runs EVERY checker once more, periodic included.
  EXPECT_EQ(periodic, 6);
  EXPECT_EQ(end_only, 1);
  EXPECT_EQ(eng.checks_run(), 7u);
  EXPECT_TRUE(eng.ok());
}

TEST(InvariantEngine, ViolationsCarryNameTimeDetailAndAreCapped) {
  sim::Simulator sim;
  InvariantEngine eng;
  eng.add("always.bad", InvariantEngine::When::Periodic,
          [](InvariantEngine::Reporter& r) { r.fail("broken"); });
  const TimePoint horizon = sim.now() + Duration::s(300);
  eng.arm(sim, Duration::s(1), horizon);
  sim.run_until(horizon);
  eng.finalize(sim.now());
  // 301 failing sweeps, but recording stops at the cap.
  ASSERT_EQ(eng.violations().size(), InvariantEngine::kMaxViolations);
  const Violation& first = eng.violations().front();
  EXPECT_EQ(first.invariant, "always.bad");
  EXPECT_EQ(first.at, TimePoint() + Duration::s(1));
  EXPECT_EQ(first.detail, "broken");
  EXPECT_FALSE(eng.ok());
  EXPECT_NE(eng.summary().find("always.bad"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON layer
// ---------------------------------------------------------------------------

TEST(Json, ParseDumpRoundTripIsStable) {
  const JsonValue v = json_parse(
      R"({"b": 1, "a": [true, null, "x\n", 2.5], "c": {"k": -3}})");
  EXPECT_EQ(v.at("b").as_int(), 1);
  EXPECT_TRUE(v.at("a").as_array()[0].as_bool());
  EXPECT_TRUE(v.at("a").as_array()[1].is_null());
  EXPECT_EQ(v.at("a").as_array()[2].as_string(), "x\n");
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[3].as_double(), 2.5);
  EXPECT_EQ(v.at("c").at("k").as_int(), -3);
  // dump() is a fixpoint (std::map keys -> byte-deterministic output).
  const std::string once = v.dump();
  EXPECT_EQ(json_parse(once).dump(), once);
  // Keys serialize sorted regardless of input order.
  EXPECT_LT(once.find("\"a\""), once.find("\"b\""));
  EXPECT_LT(once.find("\"b\""), once.find("\"c\""));
  // Integral doubles print without a fractional part.
  EXPECT_EQ(JsonValue(2.0).dump(), "2");
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(json_parse("{"), std::runtime_error);
  EXPECT_THROW(json_parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json_parse("1 garbage"), std::runtime_error);
  EXPECT_THROW(json_parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue(true).at("k"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Scenario generation + repro round-trip
// ---------------------------------------------------------------------------

// Zero the fields a fault's kind ignores (RadioDrop has no duration, only
// TelcoCrash has a telco index, ...): the serializer omits them, so the
// round trip is canonical-form-lossless, not raw-field-lossless.
scenario::FuzzFault canonical(scenario::FuzzFault f) {
  using Kind = scenario::FuzzFault::Kind;
  if (f.kind == Kind::RadioDrop) f.duration_s = 0.0;
  if (f.kind != Kind::TelcoCrash) f.telco = 0;
  if (f.kind != Kind::WanDegrade) {
    f.loss = 0.0;
    f.corrupt = 0.0;
  }
  return f;
}

void expect_same_scenario(const scenario::FuzzScenario& a, const scenario::FuzzScenario& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.n_towers, b.n_towers);
  EXPECT_EQ(a.night, b.night);
  EXPECT_DOUBLE_EQ(a.speed_mps, b.speed_mps);
  EXPECT_DOUBLE_EQ(a.tower_spacing_m, b.tower_spacing_m);
  EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
  EXPECT_DOUBLE_EQ(a.radio_loss, b.radio_loss);
  EXPECT_EQ(a.unlimited_policy, b.unlimited_policy);
  EXPECT_DOUBLE_EQ(a.report_interval_s, b.report_interval_s);
  EXPECT_DOUBLE_EQ(a.telco0_overreport, b.telco0_overreport);
  EXPECT_DOUBLE_EQ(a.ue_underreport, b.ue_underreport);
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.fluid_ues, b.fluid_ues);
  EXPECT_EQ(a.fluid_hybrid, b.fluid_hybrid);
  EXPECT_EQ(a.broker_shards, b.broker_shards);
  EXPECT_EQ(a.attach_protocol, b.attach_protocol);
  EXPECT_EQ(a.resume_ticket, b.resume_ticket);
  EXPECT_DOUBLE_EQ(a.shadow_sigma_db, b.shadow_sigma_db);
  EXPECT_DOUBLE_EQ(a.decorrelation_m, b.decorrelation_m);
  EXPECT_EQ(a.fast_fading, b.fast_fading);
  EXPECT_EQ(a.reselection_policy, b.reselection_policy);
  EXPECT_EQ(a.ttt_ms, b.ttt_ms);
  EXPECT_EQ(a.l3_filter_k, b.l3_filter_k);
  EXPECT_EQ(a.plant_dedup_bug, b.plant_dedup_bug);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    const scenario::FuzzFault fa = canonical(a.faults[i]);
    const scenario::FuzzFault fb = canonical(b.faults[i]);
    EXPECT_EQ(fa.kind, fb.kind);
    EXPECT_DOUBLE_EQ(fa.start_s, fb.start_s);
    EXPECT_DOUBLE_EQ(fa.duration_s, fb.duration_s);
    EXPECT_EQ(fa.telco, fb.telco);
    EXPECT_DOUBLE_EQ(fa.loss, fb.loss);
    EXPECT_DOUBLE_EQ(fa.corrupt, fb.corrupt);
  }
}

TEST(FuzzScenario, GeneratorIsDeterministicAndInRange) {
  const std::uint64_t base = cb::test::seed_or(7001);
  for (std::uint64_t seed = base; seed < base + 30; ++seed) {
    SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
    const scenario::FuzzScenario a = scenario::random_scenario(seed);
    expect_same_scenario(a, scenario::random_scenario(seed));
    EXPECT_EQ(a.seed, seed);
    EXPECT_GE(a.n_towers, 1);
    EXPECT_LE(a.n_towers, 8);
    EXPECT_GE(a.tower_spacing_m, 400.0);
    EXPECT_LE(a.tower_spacing_m, 1500.0);
    EXPECT_GE(a.duration_s, 60.0);
    EXPECT_LE(a.duration_s, 240.0);
    EXPECT_LE(a.faults.size(), 5u);
    EXPECT_FALSE(a.plant_dedup_bug) << "bug plant is opt-in, never sampled";
    EXPECT_GE(a.shadow_sigma_db, 0.0);
    EXPECT_LE(a.shadow_sigma_db, 8.0);
    EXPECT_GE(a.decorrelation_m, 25.0);
    EXPECT_LE(a.decorrelation_m, 110.0);
    EXPECT_GE(a.reselection_policy, 0);
    EXPECT_LE(a.reselection_policy, 2);
    if (a.reselection_policy == 1) {
      EXPECT_GE(a.ttt_ms, 160);
      EXPECT_LE(a.ttt_ms, 640);
    } else {
      EXPECT_EQ(a.ttt_ms, 0);
    }
    EXPECT_TRUE(a.l3_filter_k == 0 || a.l3_filter_k == 4 || a.l3_filter_k == 8 ||
                a.l3_filter_k == 12);
    if (a.reselection_policy == 2 && a.shadow_sigma_db > 0.0) {
      EXPECT_GE(a.l3_filter_k, 4) << "rank + noise must keep at least the k=4 filter";
    }
    for (std::size_t i = 1; i < a.faults.size(); ++i) {
      EXPECT_LE(a.faults[i - 1].start_s, a.faults[i].start_s) << "fault list sorted";
    }
    for (const scenario::FuzzFault& f : a.faults) {
      EXPECT_GE(f.start_s, 0.0);
      EXPECT_LT(f.start_s, a.duration_s);
    }
  }
}

TEST(FuzzScenario, JsonRoundTripPreservesEveryField) {
  const std::uint64_t base = cb::test::seed_or(42);
  for (std::uint64_t seed = base; seed < base + 10; ++seed) {
    SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << seed);
    scenario::FuzzScenario s = scenario::random_scenario(seed);
    s.plant_dedup_bug = (seed % 2) == 0;
    expect_same_scenario(s, scenario_from_json(json_parse(scenario_to_json(s).dump())));
    // load_repro accepts a bare scenario object, not just full documents.
    expect_same_scenario(s, load_repro(scenario_to_json(s).dump(2)));
  }
}

// ---------------------------------------------------------------------------
// run_scenario determinism
// ---------------------------------------------------------------------------

TEST(RunScenario, SameScenarioSameFingerprint) {
  const scenario::FuzzScenario s = scenario::random_scenario(cb::test::seed_or(1));
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << s.seed);
  const RunReport a = run_scenario(s);
  const RunReport b = run_scenario(s);
  EXPECT_TRUE(a.ok()) << "corpus seed regressed:\n"
                      << (a.violations.empty() ? "" : a.violations[0].invariant);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.sessions_issued, b.sessions_issued);
  EXPECT_GT(a.checks_run, 0u);
}

TEST(RunScenario, FluidPhaseRunsUnderInvariantsDeterministically) {
  // A scenario with the traffic knob on runs the hybrid fluid/packet sim
  // under the fluid.* catalogue; clean engine, deterministic fingerprint.
  scenario::FuzzScenario s = scenario::random_scenario(cb::test::seed_or(2));
  s.faults.clear();  // isolate the traffic phase from world chaos noise
  s.duration_s = 60.0;
  s.fluid_ues = 24;
  s.fluid_hybrid = true;
  SCOPED_TRACE(::testing::Message() << "replay with CB_TEST_SEED=" << s.seed);
  const RunReport a = run_scenario(s);
  EXPECT_TRUE(a.ok()) << (a.violations.empty() ? "" : a.violations[0].invariant);
  EXPECT_EQ(a.traffic_completed, 24u);
  EXPECT_GT(a.traffic_rate_events, 0u);
  EXPECT_GT(a.traffic_demotions, 0u) << "hybrid fault window must demote flows";
  const RunReport b = run_scenario(s);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.traffic_fingerprint, b.traffic_fingerprint);
}

// Shrunk from a `cbfuzz --policy rank` corpus hit (seed 14): the noisy
// channel keeps reselecting while a broker outage holds an attach in flight,
// so a newer mobility event supersedes it via the generation bump. The
// orphaned attempt's continuations never ran its fail path, leaving the
// optimistically-raised bearer admin-up — two live bearers, tripping
// session.single_bearer (break-before-make). Pinned after the UeAgent
// learned to lower superseded targets (drop_superseded_bearer).
TEST(RunScenario, SupersededInFlightAttachLowersItsBearer) {
  scenario::FuzzScenario s;
  s.seed = 14;
  s.n_towers = 3;
  s.night = true;
  s.speed_mps = 5.9820339209199922;
  s.tower_spacing_m = 495.64338493564043;
  s.duration_s = 179.14909890072181;
  s.app = 0;
  s.shadow_sigma_db = 2.5834628882462205;
  s.decorrelation_m = 40.42009950429955;
  s.fast_fading = true;
  s.faults.push_back({.kind = scenario::FuzzFault::Kind::BrokerOutage,
                      .start_s = 122.47665220319375,
                      .duration_s = 26.672446697528056});
  const RunReport report = run_scenario(s);
  EXPECT_TRUE(report.ok())
      << report.violations.front().invariant << ": " << report.violations.front().detail;
}

// ---------------------------------------------------------------------------
// Planted violation: detect, shrink, replay (ISSUE acceptance in miniature)
// ---------------------------------------------------------------------------

bool violates(const RunReport& r, const std::string& invariant) {
  for (const Violation& v : r.violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

TEST(Shrink, RejectsAScenarioThatDoesNotFail) {
  scenario::FuzzScenario clean = scenario::random_scenario(1);
  clean.duration_s = 60.0;
  clean.faults.clear();
  EXPECT_THROW(shrink(clean), std::invalid_argument);
}

TEST(Shrink, PlantedDedupBugIsCaughtShrunkAndReplays) {
  // Re-introduce the broker's report double-count bug via the test hook and
  // fuzz a handful of seeds: at least one schedule must lose a report ACK
  // (WAN degrade) and trip billing.dedup.
  scenario::FuzzScenario failing;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 8 && !found; ++seed) {
    scenario::FuzzScenario s = scenario::random_scenario(seed);
    s.plant_dedup_bug = true;
    if (violates(run_scenario(s), "billing.dedup")) {
      failing = s;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in [1,8] tripped billing.dedup — generator drifted?";

  const ShrinkResult res = shrink(failing);
  EXPECT_EQ(res.anchor, "billing.dedup");
  EXPECT_EQ(res.witness.invariant, "billing.dedup");
  EXPECT_LE(res.minimal.faults.size(), failing.faults.size());
  EXPECT_LE(res.minimal.faults.size(), 2u) << "ISSUE bound: shrinks to <= 2 fault events";
  EXPECT_LE(res.minimal.duration_s, failing.duration_s);
  EXPECT_TRUE(res.minimal.plant_dedup_bug) << "the plant flag is the bug, not noise";

  // The minimal scenario still fails, deterministically.
  const RunReport direct = run_scenario(res.minimal);
  EXPECT_TRUE(violates(direct, "billing.dedup"));

  // And it survives the repro file round-trip: write_repro -> load_repro
  // reproduces the identical run.
  const std::string doc = write_repro(res, RunOptions{}, "repro.json");
  const scenario::FuzzScenario reloaded = load_repro(doc);
  expect_same_scenario(res.minimal, reloaded);
  const RunReport replayed = run_scenario(reloaded);
  EXPECT_TRUE(violates(replayed, "billing.dedup"));
  EXPECT_EQ(replayed.fingerprint(), direct.fingerprint());

  // The document itself is self-contained: violation + replay line embedded.
  const JsonValue parsed = json_parse(doc);
  EXPECT_EQ(parsed.at("violation").at("invariant").as_string(), "billing.dedup");
  EXPECT_EQ(parsed.at("replay").as_string(), replay_command("repro.json"));
}

}  // namespace
}  // namespace cb::check
