// Scale-labeled traffic checks (`ctest -L scale`): mid-size fluid runs that
// gate the event-budget and memory properties behind the 100k-1M-UE claim.
// Kept out of the default unit tier — tools/ci.sh runs them in the Release
// leg only (they are too slow for the sanitizer leg).
#include <gtest/gtest.h>

#include "scenario/scale_traffic.hpp"
#include "test_seed.hpp"
#include "traffic/arena.hpp"

namespace cb::traffic {
namespace {

TEST(ScaleCurve, FluidEventCountScalesWithRateChanges) {
  scenario::ScaleTrafficConfig cfg;
  cfg.mode = scenario::TrafficMode::Fluid;
  cfg.n_ues = 5000;
  cfg.seed = cb::test::seed_or(13);
  cfg.mean_flow_mbytes = 5.0;
  cfg.start_window_s = 10.0;
  cfg.horizon_s = 3600.0;
  const auto r = scenario::run_scale_traffic(cfg);
  EXPECT_EQ(r.completed, cfg.n_ues);
  // Events per flow must be O(flows-per-cell), not O(packets): a 5 MB flow
  // is ~3.6k packets; fluid must be orders of magnitude below that.
  EXPECT_LT(static_cast<double>(r.events) / cfg.n_ues, 64.0);
  EXPECT_EQ(r.negative_residuals, 0u);
}

TEST(ScaleCurve, ArenaWorkingSetStaysCacheResident) {
  // 100k sessions must fit the SoA budget: < 100 B per session, so the whole
  // working set is ~8 MB — inside L2/L3 on any bench machine.
  scenario::ScaleTrafficConfig cfg;
  cfg.mode = scenario::TrafficMode::Fluid;
  cfg.n_ues = 100000;
  cfg.seed = cb::test::seed_or(17);
  cfg.mean_flow_mbytes = 1.0;
  cfg.start_window_s = 20.0;
  cfg.horizon_s = 7200.0;
  const auto r = scenario::run_scale_traffic(cfg);
  EXPECT_EQ(r.completed, cfg.n_ues);
  EXPECT_LT(SessionArena::bytes_per_session(), 100u);
  EXPECT_LT(r.arena_bytes, 10u * 1024 * 1024);
  EXPECT_EQ(r.negative_residuals, 0u);
}

TEST(ScaleCurve, MillionUesCompleteWithinEventBudget) {
  // The headline point (ISSUE 8 / ROADMAP item 1): one million fluid UEs run
  // to completion. Trimmed relative to the committed bench point (smaller
  // flows, no mid-flow resampling) so the test stays in single-digit
  // seconds while still exercising the incremental order bookkeeping and
  // the dirty-epoch drain at full population.
  scenario::ScaleTrafficConfig cfg;
  cfg.mode = scenario::TrafficMode::Fluid;
  cfg.n_ues = 1000000;
  cfg.seed = cb::test::seed_or(23);
  cfg.mean_flow_mbytes = 2.0;
  cfg.start_window_s = 10.0;
  cfg.horizon_s = 7200.0;
  const auto r = scenario::run_scale_traffic(cfg);
  EXPECT_EQ(r.completed, cfg.n_ues);
  EXPECT_EQ(r.negative_residuals, 0u);
  // Event budget: O(flows-per-cell) per flow, nowhere near packet counts.
  EXPECT_LT(static_cast<double>(r.events) / cfg.n_ues, 16.0);
  // Arena working set stays within the 74 B/session SoA budget (~71 MB).
  EXPECT_LT(r.arena_bytes, 80u * 1024 * 1024);
}

}  // namespace
}  // namespace cb::traffic
