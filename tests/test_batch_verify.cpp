// Batch RSA signature screening (crypto/batch_verify.hpp) and its broker
// integration (Brokerd::Config::batch_verify_reports).
//
// The properties that matter: (i) the screen's verdict per job is IDENTICAL
// at any worker-thread count — results are committed into pre-assigned
// slots, so the TSan leg runs this binary to prove the pool is race-free;
// (ii) a forged signature is isolated to exactly its index via the
// individual-verification fallback, never poisoning batchmates; (iii) a
// clean batch costs one exponentiation per key group instead of one per
// signature; (iv) the broker's report queue (including the sap_resume drive,
// whose ResumeNotify traffic rides the same control path) ingests the same
// counts whether the screen runs serial or threaded.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/batch_verify.hpp"
#include "crypto/rsa.hpp"
#include "scenario/world.hpp"

namespace cb {
namespace {

using crypto::BatchVerifier;
using crypto::RsaKeyPair;

std::vector<BatchVerifier::Job> make_jobs(const std::vector<RsaKeyPair>& keys, std::size_t n,
                                          Rng& rng) {
  std::vector<BatchVerifier::Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    const RsaKeyPair& key = keys[i % keys.size()];
    BatchVerifier::Job job;
    job.key = key.public_key();
    job.message = rng.random_bytes(48);
    job.signature = key.sign(job.message);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(BatchVerifier, CleanBatchScreensWithoutFallback) {
  Rng rng(1);
  std::vector<RsaKeyPair> keys;
  keys.push_back(RsaKeyPair::generate(rng, 512));
  const auto jobs = make_jobs(keys, 12, rng);

  const BatchVerifier verifier(0);
  const std::vector<bool> ok = verifier.verify_all(jobs);
  ASSERT_EQ(ok.size(), jobs.size());
  for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_TRUE(ok[i]) << "job " << i;
  // One key group, one screening exponentiation — not 12 individual checks.
  EXPECT_LT(verifier.last_exponentiations(), jobs.size());
  EXPECT_EQ(verifier.last_fallbacks(), 0u);
}

TEST(BatchVerifier, ForgedSignatureIsolatedToItsIndex) {
  Rng rng(2);
  std::vector<RsaKeyPair> keys;
  keys.push_back(RsaKeyPair::generate(rng, 512));
  auto jobs = make_jobs(keys, 9, rng);
  jobs[4].signature[3] ^= 0x40;  // tamper exactly one signature

  const BatchVerifier verifier(0);
  const std::vector<bool> ok = verifier.verify_all(jobs);
  ASSERT_EQ(ok.size(), jobs.size());
  for (std::size_t i = 0; i < ok.size(); ++i) {
    EXPECT_EQ(ok[i], i != 4) << "job " << i;
  }
  // The failing screen fell back to per-job verification for that group.
  EXPECT_GE(verifier.last_fallbacks(), 1u);
}

TEST(BatchVerifier, WrongKeyAndTruncatedSignatureFailClosed) {
  Rng rng(3);
  std::vector<RsaKeyPair> keys;
  keys.push_back(RsaKeyPair::generate(rng, 512));
  keys.push_back(RsaKeyPair::generate(rng, 512));
  auto jobs = make_jobs(keys, 4, rng);
  jobs[1].key = keys[0].public_key();  // signed by keys[1], presented as keys[0]
  jobs[2].signature.pop_back();        // malformed wire

  const std::vector<bool> ok = BatchVerifier(0).verify_all(jobs);
  EXPECT_TRUE(ok[0]);
  EXPECT_FALSE(ok[1]);
  EXPECT_FALSE(ok[2]);
  EXPECT_TRUE(ok[3]);
}

TEST(BatchVerifier, EmptyAndSingletonBatches) {
  Rng rng(4);
  std::vector<RsaKeyPair> keys;
  keys.push_back(RsaKeyPair::generate(rng, 512));
  EXPECT_TRUE(BatchVerifier(4).verify_all({}).empty());

  auto jobs = make_jobs(keys, 1, rng);
  EXPECT_EQ(BatchVerifier(4).verify_all(jobs), std::vector<bool>{true});
  jobs[0].signature[0] ^= 1;
  EXPECT_EQ(BatchVerifier(4).verify_all(jobs), std::vector<bool>{false});
}

TEST(BatchVerifier, VerdictsIdenticalAtAnyThreadCount) {
  Rng rng(5);
  std::vector<RsaKeyPair> keys;
  for (int i = 0; i < 3; ++i) keys.push_back(RsaKeyPair::generate(rng, 512));
  auto jobs = make_jobs(keys, 24, rng);
  // A spread of failure modes across key groups.
  jobs[2].signature[7] ^= 0x11;
  jobs[9].message[0] ^= 0x01;
  jobs[17].key = keys[0].public_key();

  const std::vector<bool> serial = BatchVerifier(0).verify_all(jobs);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(BatchVerifier(threads).verify_all(jobs), serial) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Broker queue integration: the screen behind Brokerd's report path
// ---------------------------------------------------------------------------

struct BrokerCounters {
  std::uint64_t ingested = 0;
  std::uint64_t batch_verified = 0;
  std::uint64_t batches = 0;
  std::uint64_t resumes_notified = 0;
  std::uint64_t resume_revocations = 0;

  bool operator==(const BrokerCounters&) const = default;
};

BrokerCounters drive_world(scenario::AttachProtocol protocol, unsigned threads) {
  scenario::WorldConfig cfg;
  cfg.protocol = protocol;
  cfg.seed = 21;
  cfg.n_towers = 3;
  cfg.route = scenario::RouteSpec{"batch", false, 25.0, 400.0, ran::RatePolicy::day()};
  cfg.broker_config.batch_verify_reports = true;
  cfg.broker_config.batch_threads = threads;
  scenario::World world(cfg);
  world.start();
  world.simulator().run_for(Duration::s(35));

  BrokerCounters c;
  c.ingested = world.broker_reports_ingested();
  c.batch_verified = world.brokerd()->reports_batch_verified();
  c.batches = world.brokerd()->report_batches();
  c.resumes_notified = world.brokerd()->resumes_notified();
  c.resume_revocations = world.brokerd()->resume_revocations();
  return c;
}

TEST(BrokerBatchQueue, ReportScreeningIsThreadCountInvariant) {
  const BrokerCounters serial = drive_world(scenario::AttachProtocol::Sap, 0);
  EXPECT_GT(serial.ingested, 0u);
  EXPECT_GT(serial.batch_verified, 0u);
  EXPECT_GT(serial.batches, 0u);
  const BrokerCounters threaded = drive_world(scenario::AttachProtocol::Sap, 4);
  EXPECT_EQ(threaded, serial);
}

TEST(BrokerBatchQueue, ResumeDriveSharesTheQueueDeterministically) {
  // sap_resume replays the same drive: signed reports still funnel through
  // the batch screen while ResumeNotify rides the same broker socket — the
  // ticket path must not perturb the screened queue at any thread count.
  const BrokerCounters serial = drive_world(scenario::AttachProtocol::SapResume, 0);
  EXPECT_GT(serial.batch_verified, 0u);
  EXPECT_GE(serial.resumes_notified, 2u);  // both cell crossings resumed
  EXPECT_EQ(serial.resume_revocations, 0u);
  const BrokerCounters threaded = drive_world(scenario::AttachProtocol::SapResume, 4);
  EXPECT_EQ(threaded, serial);
}

}  // namespace
}  // namespace cb
