// Unit tests for the simulated network layer: links (delay/rate/loss/queue),
// node forwarding, routing, proxy anchors, and dynamic re-addressing.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace cb::net {
namespace {

Packet make_udp(EndPoint src, EndPoint dst, std::size_t payload_size) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.proto = Proto::Udp;
  p.payload.assign(payload_size, 0xAB);
  return p;
}

struct TwoNodes {
  sim::Simulator sim;
  Network network{sim};
  Node* a = network.add_node("a");
  Node* b = network.add_node("b");
};

TEST(Address, Formatting) {
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1).to_string(), "10.0.0.1");
  EXPECT_EQ((EndPoint{Ipv4Addr(1, 2, 3, 4), 80}).to_string(), "1.2.3.4:80");
  EXPECT_FALSE(Ipv4Addr().valid());
  EXPECT_TRUE(Ipv4Addr(10, 0, 0, 1).valid());
}

TEST(Network, AddressAllocatorIsUnique) {
  sim::Simulator sim;
  Network net(sim);
  const Ipv4Addr x = net.alloc_address(10);
  const Ipv4Addr y = net.alloc_address(10);
  const Ipv4Addr z = net.alloc_address(20);
  EXPECT_NE(x, y);
  EXPECT_NE(x, z);
  EXPECT_EQ(x.value() >> 24, 10u);
  EXPECT_EQ(z.value() >> 24, 20u);
}

TEST(Link, DeliversWithPropagationDelay) {
  TwoNodes t;
  t.network.register_address(Ipv4Addr(10, 0, 0, 1), t.a);
  t.network.register_address(Ipv4Addr(10, 0, 0, 2), t.b);
  t.network.connect(t.a, t.b, LinkParams{.delay = Duration::ms(10)});
  t.network.recompute_routes();

  TimePoint arrival;
  t.b->bind_udp(5000, [&](const Packet&) { arrival = t.sim.now(); });
  t.a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 5000}, 100));
  t.sim.run();
  EXPECT_EQ(arrival.nanos(), Duration::ms(10).nanos());
}

TEST(Link, SerializationDelayDependsOnRate) {
  TwoNodes t;
  t.network.register_address(Ipv4Addr(10, 0, 0, 1), t.a);
  t.network.register_address(Ipv4Addr(10, 0, 0, 2), t.b);
  // 1 Mb/s: a 1000+40 byte packet takes 8.32 ms to serialize.
  t.network.connect(t.a, t.b, LinkParams{.rate_bps = 1e6, .delay = Duration::zero()});
  t.network.recompute_routes();

  TimePoint arrival;
  t.b->bind_udp(5000, [&](const Packet&) { arrival = t.sim.now(); });
  t.a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 5000}, 1000));
  t.sim.run();
  EXPECT_NEAR(arrival.to_seconds(), 1040.0 * 8.0 / 1e6, 1e-9);
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  TwoNodes t;
  t.network.register_address(Ipv4Addr(10, 0, 0, 1), t.a);
  t.network.register_address(Ipv4Addr(10, 0, 0, 2), t.b);
  t.network.connect(t.a, t.b, LinkParams{.rate_bps = 1e6});
  t.network.recompute_routes();

  std::vector<double> arrivals;
  t.b->bind_udp(5000, [&](const Packet&) { arrivals.push_back(t.sim.now().to_seconds()); });
  for (int i = 0; i < 3; ++i) {
    t.a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 5000}, 960));
  }
  t.sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const double unit = 1000.0 * 8.0 / 1e6;  // 8 ms per 1000-wire-byte packet
  EXPECT_NEAR(arrivals[0], unit, 1e-9);
  EXPECT_NEAR(arrivals[1], 2 * unit, 1e-9);
  EXPECT_NEAR(arrivals[2], 3 * unit, 1e-9);
}

TEST(Link, QueueOverflowDrops) {
  TwoNodes t;
  t.network.register_address(Ipv4Addr(10, 0, 0, 1), t.a);
  t.network.register_address(Ipv4Addr(10, 0, 0, 2), t.b);
  LinkParams params{.rate_bps = 1e6};
  params.queue_bytes = 3000;
  Link* link = t.network.connect(t.a, t.b, params);
  t.network.recompute_routes();

  int received = 0;
  t.b->bind_udp(5000, [&](const Packet&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    t.a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 5000}, 960));
  }
  t.sim.run();
  EXPECT_LT(received, 10);
  EXPECT_GT(link->drops(), 0u);
}

TEST(Link, RandomLossDropsRoughlyAtRate) {
  TwoNodes t;
  t.network.register_address(Ipv4Addr(10, 0, 0, 1), t.a);
  t.network.register_address(Ipv4Addr(10, 0, 0, 2), t.b);
  LinkParams params;
  params.loss = 0.3;
  t.network.connect(t.a, t.b, params);
  t.network.recompute_routes();

  int received = 0;
  t.b->bind_udp(5000, [&](const Packet&) { ++received; });
  const int total = 2000;
  for (int i = 0; i < total; ++i) {
    t.a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 5000}, 10));
  }
  t.sim.run();
  EXPECT_NEAR(static_cast<double>(received) / total, 0.7, 0.05);
}

TEST(Link, DownLinkDropsEverything) {
  TwoNodes t;
  t.network.register_address(Ipv4Addr(10, 0, 0, 1), t.a);
  t.network.register_address(Ipv4Addr(10, 0, 0, 2), t.b);
  Link* link = t.network.connect(t.a, t.b, LinkParams{});
  t.network.recompute_routes();

  int received = 0;
  t.b->bind_udp(5000, [&](const Packet&) { ++received; });
  link->set_up(false);
  t.a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 5000}, 10));
  t.sim.run();
  EXPECT_EQ(received, 0);

  link->set_up(true);
  t.a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 5000}, 10));
  t.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Routing, MultiHopForwarding) {
  sim::Simulator sim;
  Network net(sim);
  Node* a = net.add_node("a");
  Node* r1 = net.add_node("r1");
  Node* r2 = net.add_node("r2");
  Node* b = net.add_node("b");
  net.register_address(Ipv4Addr(10, 0, 0, 1), a);
  net.register_address(Ipv4Addr(10, 0, 0, 2), b);
  net.connect(a, r1, LinkParams{.delay = Duration::ms(1)});
  net.connect(r1, r2, LinkParams{.delay = Duration::ms(1)});
  net.connect(r2, b, LinkParams{.delay = Duration::ms(1)});
  net.recompute_routes();

  TimePoint arrival;
  int count = 0;
  b->bind_udp(80, [&](const Packet&) {
    arrival = sim.now();
    ++count;
  });
  a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 80}, 50));
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(arrival.nanos(), Duration::ms(3).nanos());
  EXPECT_EQ(r1->forwarded(), 1u);
  EXPECT_EQ(r2->forwarded(), 1u);
}

TEST(Routing, ShortestDelayPathWins) {
  sim::Simulator sim;
  Network net(sim);
  Node* a = net.add_node("a");
  Node* fast = net.add_node("fast");
  Node* slow = net.add_node("slow");
  Node* b = net.add_node("b");
  net.register_address(Ipv4Addr(10, 0, 0, 1), a);
  net.register_address(Ipv4Addr(10, 0, 0, 2), b);
  net.connect(a, fast, LinkParams{.delay = Duration::ms(1)});
  net.connect(fast, b, LinkParams{.delay = Duration::ms(1)});
  net.connect(a, slow, LinkParams{.delay = Duration::ms(50)});
  net.connect(slow, b, LinkParams{.delay = Duration::ms(50)});
  net.recompute_routes();

  int count = 0;
  b->bind_udp(80, [&](const Packet&) { ++count; });
  a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 80}, 50));
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(fast->forwarded(), 1u);
  EXPECT_EQ(slow->forwarded(), 0u);
}

TEST(Routing, ReaddressingMovesDelivery) {
  // A UE-style node loses one address and gains another anchored elsewhere.
  sim::Simulator sim;
  Network net(sim);
  Node* server = net.add_node("server");
  Node* gw1 = net.add_node("gw1");
  Node* gw2 = net.add_node("gw2");
  Node* ue = net.add_node("ue");
  net.register_address(Ipv4Addr(1, 1, 1, 1), server);
  net.connect(server, gw1, LinkParams{.delay = Duration::ms(5)});
  net.connect(server, gw2, LinkParams{.delay = Duration::ms(5)});
  Link* radio1 = net.connect(gw1, ue, LinkParams{.delay = Duration::ms(2)});
  Link* radio2 = net.connect(gw2, ue, LinkParams{.delay = Duration::ms(2)});
  radio2->set_up(false);

  const Ipv4Addr ip1(10, 1, 0, 1);
  net.register_address(ip1, ue);
  net.recompute_routes();

  int received = 0;
  ue->bind_udp(9000, [&](const Packet&) { ++received; });
  server->send(make_udp({Ipv4Addr(1, 1, 1, 1), 1}, {ip1, 9000}, 10));
  sim.run();
  EXPECT_EQ(received, 1);

  // Detach from gw1, attach to gw2 with a new address.
  radio1->set_up(false);
  radio2->set_up(true);
  net.unregister_address(ip1);
  const Ipv4Addr ip2(10, 2, 0, 1);
  net.register_address(ip2, ue);
  net.recompute_routes();

  server->send(make_udp({Ipv4Addr(1, 1, 1, 1), 1}, {ip2, 9000}, 10));
  sim.run();
  EXPECT_EQ(received, 2);
  EXPECT_FALSE(ue->has_address(ip1));
}

TEST(Node, ProxyAddressInterceptsPackets) {
  TwoNodes t;
  t.network.register_address(Ipv4Addr(10, 0, 0, 1), t.a);
  // 99.0.0.1 is anchored at b but NOT local there.
  t.network.register_address(Ipv4Addr(99, 0, 0, 1), t.b, /*proxy_only=*/true);
  t.network.connect(t.a, t.b, LinkParams{});
  t.network.recompute_routes();

  int proxied = 0;
  t.b->add_proxy_address(Ipv4Addr(99, 0, 0, 1), [&](Packet&&) { ++proxied; });
  t.a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(99, 0, 0, 1), 80}, 10));
  t.sim.run();
  EXPECT_EQ(proxied, 1);
}

TEST(Node, ForwardHookCanConsume) {
  sim::Simulator sim;
  Network net(sim);
  Node* a = net.add_node("a");
  Node* mid = net.add_node("mid");
  Node* b = net.add_node("b");
  net.register_address(Ipv4Addr(10, 0, 0, 1), a);
  net.register_address(Ipv4Addr(10, 0, 0, 2), b);
  net.connect(a, mid, LinkParams{});
  net.connect(mid, b, LinkParams{});
  net.recompute_routes();

  int hook_count = 0, received = 0;
  mid->set_forward_hook([&](Packet&) {
    ++hook_count;
    return true;  // swallow everything
  });
  b->bind_udp(80, [&](const Packet&) { ++received; });
  a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(10, 0, 0, 2), 80}, 10));
  sim.run();
  EXPECT_EQ(hook_count, 1);
  EXPECT_EQ(received, 0);
}

TEST(Node, TtlPreventsRoutingLoops) {
  sim::Simulator sim;
  Network net(sim);
  Node* a = net.add_node("a");
  Node* b = net.add_node("b");
  Link* ab = net.connect(a, b, LinkParams{});
  // Deliberately broken routing: each node points back across the link for
  // an address neither owns.
  a->set_route(Ipv4Addr(77, 0, 0, 1), ab);
  b->set_route(Ipv4Addr(77, 0, 0, 1), ab);

  a->send(make_udp({Ipv4Addr(10, 0, 0, 1), 1}, {Ipv4Addr(77, 0, 0, 1), 80}, 10));
  sim.run();  // must terminate
  EXPECT_GT(a->dropped_no_route() + b->dropped_no_route(), 0u);
}

TEST(Node, UdpPortBindingRules) {
  sim::Simulator sim;
  Network net(sim);
  Node* n = net.add_node("n");
  n->bind_udp(80, [](const Packet&) {});
  EXPECT_THROW(n->bind_udp(80, [](const Packet&) {}), std::logic_error);
  n->unbind_udp(80);
  n->bind_udp(80, [](const Packet&) {});

  const std::uint16_t e1 = n->alloc_port();
  const std::uint16_t e2 = n->alloc_port();
  EXPECT_NE(e1, e2);
  EXPECT_GE(e1, 49152);
}

}  // namespace
}  // namespace cb::net
