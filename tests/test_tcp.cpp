// TCP tests: handshake, bulk transfer under loss/reorder, congestion control
// behaviour, retransmission, close semantics, and resets.
#include <gtest/gtest.h>

#include <numeric>

#include "net/network.hpp"
#include "transport/tcp.hpp"

namespace cb::transport {
namespace {

using net::Ipv4Addr;
using net::LinkParams;

// A two-host world with one configurable link.
struct World {
  explicit World(LinkParams link_params = {}, std::uint64_t seed = 1,
                 TcpConfig client_cfg = {})
      : sim(seed), net(sim) {
    client_node = net.add_node("client");
    server_node = net.add_node("server");
    net.register_address(Ipv4Addr(10, 0, 0, 1), client_node);
    net.register_address(Ipv4Addr(10, 0, 0, 2), server_node);
    link = net.connect(client_node, server_node, link_params);
    net.recompute_routes();
    client = std::make_unique<TcpStack>(*client_node, client_cfg);
    server = std::make_unique<TcpStack>(*server_node);
  }

  sim::Simulator sim;
  net::Network net;
  net::Node* client_node;
  net::Node* server_node;
  net::Link* link;
  std::unique_ptr<TcpStack> client;
  std::unique_ptr<TcpStack> server;
};

Bytes pattern_bytes(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return out;
}

// Pumps `total` bytes from client to server; returns bytes the server saw.
struct BulkTransfer {
  explicit BulkTransfer(World& w, std::size_t total) : world(w), payload(pattern_bytes(total)) {
    world.server->listen(80, [this](std::shared_ptr<TcpSocket> s) {
      server_side = std::move(s);
      server_side->on_data = [this](BytesView data) {
        received.insert(received.end(), data.begin(), data.end());
      };
      server_side->on_closed = [this](const std::string& reason) {
        server_saw_eof = reason.empty();
        if (server_side) server_side->close();
      };
    });
    client_side = world.client->connect({Ipv4Addr(10, 0, 0, 2), 80});
    client_side->on_connected = [this] { pump(); };
    client_side->on_send_space = [this] { pump(); };
    client_side->on_closed = [this](const std::string& reason) {
      client_closed_reason = reason;
      client_closed = true;
    };
  }

  void pump() {
    while (sent < payload.size()) {
      const std::size_t n = client_side->send(
          BytesView(payload.data() + sent, std::min<std::size_t>(16384, payload.size() - sent)));
      if (n == 0) return;
      sent += n;
    }
    if (!closed) {
      closed = true;
      client_side->close();
    }
  }

  World& world;
  Bytes payload;
  Bytes received;
  std::shared_ptr<TcpSocket> client_side;
  std::shared_ptr<TcpSocket> server_side;
  std::size_t sent = 0;
  bool closed = false;
  bool server_saw_eof = false;
  bool client_closed = false;
  std::string client_closed_reason;
};

TEST(Tcp, SegmentSerializationRoundTrip) {
  TcpHeader h;
  h.seq = 0xDEADBEEF;
  h.ack = 0x12345678;
  h.window = 65535;
  h.syn = true;
  h.ack_flag = true;
  const Bytes payload = pattern_bytes(100);
  const Bytes wire = serialize_segment(h, payload);

  TcpHeader out;
  Bytes out_payload;
  ASSERT_TRUE(parse_segment(wire, out, out_payload));
  EXPECT_EQ(out.seq, h.seq);
  EXPECT_EQ(out.ack, h.ack);
  EXPECT_EQ(out.window, h.window);
  EXPECT_TRUE(out.syn);
  EXPECT_TRUE(out.ack_flag);
  EXPECT_FALSE(out.fin);
  EXPECT_FALSE(out.rst);
  EXPECT_EQ(out_payload, payload);
}

TEST(Tcp, ParseRejectsTruncated) {
  TcpHeader h;
  Bytes payload;
  EXPECT_FALSE(parse_segment(Bytes(5, 0), h, payload));
}

TEST(Tcp, HandshakeCompletes) {
  World w(LinkParams{.delay = Duration::ms(10)});
  bool client_connected = false, accepted = false;
  w.server->listen(80, [&](std::shared_ptr<TcpSocket>) { accepted = true; });
  auto c = w.client->connect({Ipv4Addr(10, 0, 0, 2), 80});
  c->on_connected = [&] { client_connected = true; };
  w.sim.run_for(Duration::s(1));
  EXPECT_TRUE(client_connected);
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(c->connected());
}

TEST(Tcp, ConnectToClosedPortFails) {
  World w(LinkParams{.delay = Duration::ms(10)});
  std::string reason;
  auto c = w.client->connect({Ipv4Addr(10, 0, 0, 2), 81});
  c->on_closed = [&](const std::string& r) { reason = r; };
  w.sim.run_for(Duration::s(2));
  EXPECT_FALSE(c->connected());
  EXPECT_FALSE(reason.empty());
}

TEST(Tcp, ConnectTimesOutWithNoRoute) {
  World w(LinkParams{.delay = Duration::ms(10)});
  w.link->set_up(false);
  bool closed = false;
  auto c = w.client->connect({Ipv4Addr(10, 0, 0, 2), 80});
  c->on_closed = [&](const std::string&) { closed = true; };
  w.sim.run_for(Duration::s(300));
  EXPECT_TRUE(closed);
}

TEST(Tcp, SmallTransferExactBytes) {
  World w(LinkParams{.delay = Duration::ms(5)});
  BulkTransfer t(w, 1000);
  w.sim.run_for(Duration::s(10));
  EXPECT_EQ(t.received, t.payload);
  EXPECT_TRUE(t.server_saw_eof);
}

TEST(Tcp, BulkTransferCleanLink) {
  World w(LinkParams{.rate_bps = 10e6, .delay = Duration::ms(20)});
  BulkTransfer t(w, 2 * 1024 * 1024);
  w.sim.run_for(Duration::s(60));
  ASSERT_EQ(t.received.size(), t.payload.size());
  EXPECT_EQ(t.received, t.payload);
}

TEST(Tcp, BulkTransferSurvivesHeavyLoss) {
  LinkParams p{.rate_bps = 10e6, .delay = Duration::ms(10)};
  p.loss = 0.05;
  World w(p, 7);
  BulkTransfer t(w, 512 * 1024);
  w.sim.run_for(Duration::s(120));
  ASSERT_EQ(t.received.size(), t.payload.size());
  EXPECT_EQ(t.received, t.payload);
  EXPECT_GT(t.client_side == nullptr ? 1u : t.client_side->retransmits(), 0u);
}

// Property sweep: the delivered byte stream equals the sent stream for any
// loss rate / size combination.
struct LossCase {
  double loss;
  std::size_t size;
  std::uint64_t seed;
};

class TcpLossSweep : public ::testing::TestWithParam<LossCase> {};

TEST_P(TcpLossSweep, StreamIntegrity) {
  const LossCase c = GetParam();
  LinkParams p{.rate_bps = 20e6, .delay = Duration::ms(15)};
  p.loss = c.loss;
  World w(p, c.seed);
  BulkTransfer t(w, c.size);
  w.sim.run_for(Duration::s(300));
  ASSERT_EQ(t.received.size(), c.size);
  EXPECT_EQ(t.received, t.payload);
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, TcpLossSweep,
    ::testing::Values(LossCase{0.0, 100 * 1024, 1}, LossCase{0.01, 100 * 1024, 2},
                      LossCase{0.03, 200 * 1024, 3}, LossCase{0.08, 50 * 1024, 4},
                      LossCase{0.15, 20 * 1024, 5}, LossCase{0.01, 1, 6},
                      LossCase{0.05, 1400, 7}, LossCase{0.02, 1401, 8}));

TEST(Tcp, ThroughputApproachesLinkRate) {
  World w(LinkParams{.rate_bps = 10e6, .delay = Duration::ms(20)});
  BulkTransfer t(w, 4 * 1024 * 1024);
  const TimePoint start = w.sim.now();
  w.sim.run_for(Duration::s(60));
  ASSERT_EQ(t.received.size(), t.payload.size());
  // Goodput should be within 25% of the 10 Mb/s line rate.
  const double elapsed = 4.0 * 1024 * 1024 * 8 / 10e6 / 0.75;
  EXPECT_LT((w.sim.now() - start).to_seconds(), elapsed + 60.0);  // sanity
  EXPECT_GT(static_cast<double>(t.received.size()) * 8, 0.0);
}

TEST(Tcp, SlowStartGrowsCwndExponentially) {
  World w(LinkParams{.rate_bps = 100e6, .delay = Duration::ms(50)});
  BulkTransfer t(w, 1024 * 1024);
  w.sim.run_for(Duration::ms(140));  // handshake + one data RTT
  ASSERT_NE(t.client_side, nullptr);
  const std::size_t after_one_rtt = t.client_side->cwnd();
  w.sim.run_for(Duration::ms(100));
  const std::size_t after_two_rtt = t.client_side->cwnd();
  // Each acked RTT roughly doubles cwnd in slow start.
  EXPECT_GE(after_two_rtt, after_one_rtt + after_one_rtt / 2);
}

TEST(Tcp, LossReducesCwnd) {
  LinkParams p{.rate_bps = 10e6, .delay = Duration::ms(20)};
  World w(p);
  BulkTransfer t(w, 8 * 1024 * 1024);
  w.sim.run_for(Duration::s(3));
  const std::size_t before = t.client_side->cwnd();
  // Burst loss: drop everything briefly.
  w.link->set_up(false);
  w.sim.run_for(Duration::ms(50));
  w.link->set_up(true);
  w.sim.run_for(Duration::s(2));
  EXPECT_GT(before, 0u);
  ASSERT_EQ(t.client_closed, false);
  w.sim.run_for(Duration::s(60));
  EXPECT_EQ(t.received.size(), t.payload.size());
}

TEST(Tcp, RttEstimateTracksPathDelay) {
  World w(LinkParams{.rate_bps = 50e6, .delay = Duration::ms(30)});
  BulkTransfer t(w, 256 * 1024);
  w.sim.run_for(Duration::s(5));
  ASSERT_NE(t.client_side, nullptr);
  if (t.client_side->connected()) {
    EXPECT_NEAR(t.client_side->srtt().to_millis(), 60.0, 25.0);
  }
}

TEST(Tcp, BidirectionalEcho) {
  World w(LinkParams{.delay = Duration::ms(10)});
  std::shared_ptr<TcpSocket> srv;
  Bytes echoed;
  w.server->listen(7, [&](std::shared_ptr<TcpSocket> s) {
    srv = std::move(s);
    srv->on_data = [&](BytesView d) { srv->send(d); };  // echo
  });
  auto c = w.client->connect({Ipv4Addr(10, 0, 0, 2), 7});
  c->on_connected = [&] { c->send(to_bytes("ping-pong")); };
  c->on_data = [&](BytesView d) { echoed.insert(echoed.end(), d.begin(), d.end()); };
  w.sim.run_for(Duration::s(2));
  EXPECT_EQ(echoed, to_bytes("ping-pong"));
}

TEST(Tcp, AbortSendsRstToPeer) {
  World w(LinkParams{.delay = Duration::ms(10)});
  std::shared_ptr<TcpSocket> srv;
  std::string server_reason = "unset";
  w.server->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    srv = std::move(s);
    srv->on_closed = [&](const std::string& r) { server_reason = r; };
  });
  auto c = w.client->connect({Ipv4Addr(10, 0, 0, 2), 80});
  c->on_connected = [&] { c->abort(); };
  w.sim.run_for(Duration::s(2));
  EXPECT_EQ(server_reason, "reset by peer");
}

TEST(Tcp, SilentAbortLeavesPeerHanging) {
  World w(LinkParams{.delay = Duration::ms(10)});
  std::shared_ptr<TcpSocket> srv;
  bool server_closed = false;
  w.server->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    srv = std::move(s);
    srv->on_closed = [&](const std::string&) { server_closed = true; };
  });
  auto c = w.client->connect({Ipv4Addr(10, 0, 0, 2), 80});
  c->on_connected = [&] { c->abort_silent(); };
  w.sim.run_for(Duration::s(5));
  // The peer learns nothing (no RST was emitted): exactly the situation
  // after a radio detach.
  EXPECT_FALSE(server_closed);
}

TEST(Tcp, CloseIsGracefulBothDirections) {
  World w(LinkParams{.delay = Duration::ms(10)});
  std::shared_ptr<TcpSocket> srv;
  bool server_eof = false, client_eof = false;
  w.server->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    srv = std::move(s);
    srv->on_closed = [&](const std::string& r) {
      server_eof = r.empty();
      srv->close();
    };
  });
  auto c = w.client->connect({Ipv4Addr(10, 0, 0, 2), 80});
  c->on_connected = [&] {
    c->send(to_bytes("bye"));
    c->close();
  };
  c->on_closed = [&](const std::string& r) { client_eof = r.empty(); };
  w.sim.run_for(Duration::s(5));
  EXPECT_TRUE(server_eof);
  EXPECT_TRUE(client_eof);
}

TEST(Tcp, SendAfterCloseRejected) {
  World w(LinkParams{.delay = Duration::ms(10)});
  w.server->listen(80, [](std::shared_ptr<TcpSocket>) {});
  auto c = w.client->connect({Ipv4Addr(10, 0, 0, 2), 80});
  bool checked = false;
  c->on_connected = [&] {
    c->close();
    EXPECT_EQ(c->send(to_bytes("late")), 0u);
    checked = true;
  };
  w.sim.run_for(Duration::s(2));
  EXPECT_TRUE(checked);
}

TEST(Tcp, SendBufferBackpressure) {
  TcpConfig cfg;
  cfg.send_buffer = 10000;
  World w(LinkParams{.rate_bps = 1e6, .delay = Duration::ms(50)}, 1, cfg);
  w.server->listen(80, [](std::shared_ptr<TcpSocket>) {});
  auto c = w.client->connect({Ipv4Addr(10, 0, 0, 2), 80});
  std::size_t accepted_at_once = 0;
  c->on_connected = [&] {
    const Bytes big(50000, 1);
    accepted_at_once = c->send(big);
  };
  w.sim.run_for(Duration::s(1));
  EXPECT_EQ(accepted_at_once, 10000u);
}

TEST(Tcp, ReorderingViaTwoPathsStillInOrder) {
  // Two parallel links with very different delays create reordering at the
  // routing layer when routes flap; here we approximate by toggling loss so
  // retransmissions interleave with fresh data.
  LinkParams p{.rate_bps = 5e6, .delay = Duration::ms(10)};
  p.loss = 0.10;
  World w(p, 99);
  BulkTransfer t(w, 300 * 1024);
  w.sim.run_for(Duration::s(120));
  ASSERT_EQ(t.received.size(), t.payload.size());
  EXPECT_EQ(t.received, t.payload);
}

}  // namespace
}  // namespace cb::transport
