// EPC tests: EPS-AKA vectors, HSS service, the full MME attach dialog (two
// S6A round-trips), SPGW anchoring/accounting, and X2 handover keeping the
// UE IP while traffic flows.
#include <gtest/gtest.h>

#include "epc/auth.hpp"
#include "epc/auth5g.hpp"
#include "epc/hss.hpp"
#include "epc/mme.hpp"
#include "epc/spgw.hpp"
#include "epc/ue_nas.hpp"
#include "net/network.hpp"
#include "transport/tcp.hpp"

namespace cb::epc {
namespace {

TEST(EpsAka, VectorRoundTrip) {
  Rng rng(1);
  const Bytes k(32, 0x42);
  const AuthVector v = generate_auth_vector(k, rng);
  EXPECT_EQ(v.rand.size(), 16u);
  EXPECT_TRUE(verify_autn(k, v.rand, v.autn));
  EXPECT_EQ(compute_res(k, v.rand), v.xres);
  EXPECT_EQ(derive_kasme(k, v.rand), v.kasme);
}

TEST(EpsAka, WrongKeyFailsBothDirections) {
  Rng rng(2);
  const Bytes k(32, 0x42), wrong(32, 0x43);
  const AuthVector v = generate_auth_vector(k, rng);
  EXPECT_FALSE(verify_autn(wrong, v.rand, v.autn));
  EXPECT_NE(compute_res(wrong, v.rand), v.xres);
}

TEST(EpsAka, VectorsAreFresh) {
  Rng rng(3);
  const Bytes k(32, 1);
  const AuthVector a = generate_auth_vector(k, rng);
  const AuthVector b = generate_auth_vector(k, rng);
  EXPECT_NE(a.rand, b.rand);
  EXPECT_NE(a.kasme, b.kasme);
}

// --- SQN state machine (TS 33.102 §6.3 shape) ------------------------------

// Table-driven freshness check: HSS issues its next SQN, the UE judges it
// against its high-water mark. Covers the first-attach regression (a fresh
// HSS starts at 1, not 0), the window edges, and 48-bit wraparound.
TEST(EpsAkaSqn, FreshnessWindowTable) {
  struct Case {
    const char* name;
    std::uint64_t hss_sqn;    // next-to-issue before the vector
    std::uint64_t ue_sqn_ms;  // UE high-water mark before the check
    AutnVerdict want;
  };
  const Case cases[] = {
      {"factory-fresh first vector", 1, 0, AutnVerdict::Ok},
      {"next in sequence", 42, 41, AutnVerdict::Ok},
      {"replayed sqn (delta 0)", 41, 41, AutnVerdict::SyncFailure},
      {"stale vector", 10, 40, AutnVerdict::SyncFailure},
      {"top of the freshness window", kSqnWindow, 0, AutnVerdict::Ok},
      {"one past the window", kSqnWindow + 1, 0, AutnVerdict::SyncFailure},
      {"wraparound is fresh", 5, kSqnModulus - 3, AutnVerdict::Ok},
      {"reverse wraparound is stale", kSqnModulus - 3, 5, AutnVerdict::SyncFailure},
  };
  const Bytes k(32, 0x42);
  for (const Case& c : cases) {
    Rng rng(77);
    HssSqnState hss{c.hss_sqn};
    UeSqnState ue{c.ue_sqn_ms};
    const AuthVector v = generate_auth_vector_sqn(k, hss, rng);
    EXPECT_EQ(hss.sqn, (c.hss_sqn + 1) % kSqnModulus) << c.name;
    const AutnCheck check = verify_autn_sqn(k, v.rand, v.autn, ue);
    EXPECT_EQ(check.verdict, c.want) << c.name;
    EXPECT_EQ(check.sqn, c.hss_sqn) << c.name;  // AK deconcealment worked
    if (c.want == AutnVerdict::Ok) {
      EXPECT_EQ(ue.sqn_ms, c.hss_sqn) << c.name;  // high-water mark advanced
    } else {
      EXPECT_EQ(ue.sqn_ms, c.ue_sqn_ms) << c.name;  // state untouched
      EXPECT_FALSE(check.auts.empty()) << c.name;
    }
  }
}

TEST(EpsAkaSqn, MacFailureTable) {
  const Bytes k(32, 0x42);
  Rng rng(78);
  HssSqnState hss;
  UeSqnState ue;
  const AuthVector v = generate_auth_vector_sqn(k, hss, rng);

  // Wrong subscriber key: the network does not know K.
  {
    UeSqnState fresh;
    const Bytes wrong(32, 0x43);
    EXPECT_EQ(verify_autn_sqn(wrong, v.rand, v.autn, fresh).verdict, AutnVerdict::MacFailure);
  }
  // A single flipped bit anywhere in AUTN (concealed SQN or MAC) fails.
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{8}, v.autn.size() - 1}) {
    Bytes tampered = v.autn;
    tampered[i] ^= 0x01;
    UeSqnState fresh;
    EXPECT_EQ(verify_autn_sqn(k, v.rand, tampered, fresh).verdict, AutnVerdict::MacFailure)
        << "byte " << i;
  }
  // Truncated/oversized tokens fail closed without touching state.
  {
    UeSqnState fresh;
    Bytes shorter(v.autn.begin(), v.autn.end() - 1);
    EXPECT_EQ(verify_autn_sqn(k, v.rand, shorter, fresh).verdict, AutnVerdict::MacFailure);
    EXPECT_EQ(fresh.sqn_ms, 0u);
  }
  // MAC failure never yields an AUTS: AUTS would leak a valid resync token
  // to whoever forged the challenge.
  UeSqnState fresh;
  const Bytes wrong(32, 0x43);
  EXPECT_TRUE(verify_autn_sqn(wrong, v.rand, v.autn, fresh).auts.empty());
  // The original vector still verifies: tampering checks consumed no state.
  EXPECT_EQ(verify_autn_sqn(k, v.rand, v.autn, ue).verdict, AutnVerdict::Ok);
}

TEST(EpsAkaSqn, ResyncRoundTripRecoversAnOutOfStepHss) {
  // The UE is far ahead of the HSS (e.g. the HSS restored from an old
  // backup): the challenge is stale, the AUTS carries SQN_MS back, and the
  // next vector is fresh again.
  const Bytes k(32, 0x42);
  Rng rng(79);
  HssSqnState hss{100};
  UeSqnState ue{5'000'000'000ull};  // way past hss.sqn + window
  const AuthVector stale = generate_auth_vector_sqn(k, hss, rng);
  const AutnCheck check = verify_autn_sqn(k, stale.rand, stale.autn, ue);
  ASSERT_EQ(check.verdict, AutnVerdict::SyncFailure);
  ASSERT_FALSE(check.auts.empty());

  ASSERT_TRUE(resynchronize_sqn(k, stale.rand, check.auts, hss));
  EXPECT_EQ(hss.sqn, ue.sqn_ms + 1);  // resume one past the UE's mark
  const AuthVector fresh = generate_auth_vector_sqn(k, hss, rng);
  EXPECT_EQ(verify_autn_sqn(k, fresh.rand, fresh.autn, ue).verdict, AutnVerdict::Ok);
  EXPECT_EQ(ue.sqn_ms, 5'000'000'001ull);
}

TEST(EpsAkaSqn, ForgedAutsRejected) {
  const Bytes k(32, 0x42);
  Rng rng(80);
  HssSqnState hss{100};
  UeSqnState ue{kSqnWindow + 200};
  const AuthVector v = generate_auth_vector_sqn(k, hss, rng);
  const AutnCheck check = verify_autn_sqn(k, v.rand, v.autn, ue);
  ASSERT_EQ(check.verdict, AutnVerdict::SyncFailure);

  const HssSqnState before = hss;
  Bytes tampered = check.auts;
  tampered[2] ^= 0x80;  // attacker steers the concealed SQN_MS
  EXPECT_FALSE(resynchronize_sqn(k, v.rand, tampered, hss));
  Bytes truncated(check.auts.begin(), check.auts.end() - 1);
  EXPECT_FALSE(resynchronize_sqn(k, v.rand, truncated, hss));
  // An AUTS bound to a different RAND must not resync this challenge.
  const Bytes other_rand = rng.random_bytes(16);
  EXPECT_FALSE(resynchronize_sqn(k, other_rand, check.auts, hss));
  EXPECT_EQ(hss.sqn, before.sqn);  // every rejection left the state alone

  EXPECT_TRUE(resynchronize_sqn(k, v.rand, check.auts, hss));
  EXPECT_EQ(hss.sqn, ue.sqn_ms + 1);
}

TEST(EpsAkaSqn, WraparoundIssueAndResyncStayModular) {
  const Bytes k(32, 0x42);
  Rng rng(81);
  // Issuing at the modulus edge wraps the next-to-issue counter to 0, and a
  // UE just below the edge accepts the top value as fresh.
  HssSqnState hss{kSqnModulus - 1};
  UeSqnState ue{kSqnModulus - 2};
  const AuthVector v = generate_auth_vector_sqn(k, hss, rng);
  EXPECT_EQ(hss.sqn, 0u);
  EXPECT_EQ(verify_autn_sqn(k, v.rand, v.autn, ue).verdict, AutnVerdict::Ok);
  EXPECT_EQ(ue.sqn_ms, kSqnModulus - 1);
  // The wrapped challenge (SQN = 0 against SQN_MS = 2^48-1) is fresh too:
  // delta = 1 under the modular subtraction.
  const AuthVector wrapped = generate_auth_vector_sqn(k, hss, rng);
  EXPECT_EQ(verify_autn_sqn(k, wrapped.rand, wrapped.autn, ue).verdict, AutnVerdict::Ok);
  EXPECT_EQ(ue.sqn_ms, 0u);

  // Resync against a UE parked at the top wraps the HSS back to 0 as well.
  HssSqnState behind{kSqnWindow * 4};  // far from the UE in both directions
  UeSqnState at_top{kSqnModulus - 1};
  const AuthVector stale = generate_auth_vector_sqn(k, behind, rng);
  const AutnCheck check = verify_autn_sqn(k, stale.rand, stale.autn, at_top);
  ASSERT_EQ(check.verdict, AutnVerdict::SyncFailure);
  ASSERT_TRUE(resynchronize_sqn(k, stale.rand, check.auts, behind));
  EXPECT_EQ(behind.sqn, 0u);  // (2^48-1 + 1) mod 2^48
  const AuthVector fresh = generate_auth_vector_sqn(k, behind, rng);
  EXPECT_EQ(verify_autn_sqn(k, fresh.rand, fresh.autn, at_top).verdict, AutnVerdict::Ok);
}

// --- 5G-AKA vectors (TS 33.501 §6.1 shape) ---------------------------------

TEST(Aka5g, SuciConcealsAndRoundTrips) {
  Rng rng(90);
  const auto hn = crypto::RsaKeyPair::generate(rng, 512);
  const Bytes suci = conceal_supi(hn.public_key(), "imsi-123456", rng);
  // The permanent identifier never appears in the clear on the wire.
  const std::string wire(suci.begin(), suci.end());
  EXPECT_EQ(wire.find("imsi-123456"), std::string::npos);
  auto supi = deconceal_suci(hn, suci);
  ASSERT_TRUE(supi.ok()) << supi.error();
  EXPECT_EQ(supi.value(), "imsi-123456");
  // Concealment is randomized: same SUPI, different SUCI every attach.
  EXPECT_NE(conceal_supi(hn.public_key(), "imsi-123456", rng), suci);
  // A different home network cannot deconceal.
  const auto other = crypto::RsaKeyPair::generate(rng, 512);
  EXPECT_FALSE(deconceal_suci(other, suci).ok());
}

TEST(Aka5g, VectorResStarChainAndKeyHierarchyAgree) {
  Rng rng(91);
  const Bytes k(32, 0x42);
  HssSqnState sqn;
  const Auth5gVector v = generate_auth5g_vector(k, sqn, rng);
  // UE side recomputes RES* from K and RAND; the serving side checks
  // HXRES* locally without ever learning K.
  const Bytes res_star = compute_res_star(k, v.rand);
  EXPECT_EQ(res_star, v.xres_star);
  EXPECT_EQ(hash_res_star(v.rand, res_star), v.hxres_star);
  EXPECT_NE(compute_res_star(Bytes(32, 0x43), v.rand), v.xres_star);
  // KAUSF -> KSEAF chain is derivable by both ends and binds the SUPI at
  // the KAMF level.
  const Bytes kausf = derive_kausf(k, v.rand);
  EXPECT_EQ(kausf, v.kausf);
  EXPECT_EQ(derive_kseaf(kausf), v.kseaf);
  EXPECT_NE(derive_kamf(v.kseaf, "imsi-1"), derive_kamf(v.kseaf, "imsi-2"));
}

TEST(Aka5g, AutnReusesTheSqnMachinery) {
  // The 5G AUTN is the same SQN-carrying token as 4G: replay/resync
  // semantics carry over unchanged.
  Rng rng(92);
  const Bytes k(32, 0x42);
  HssSqnState hss;
  UeSqnState ue;
  const Auth5gVector v = generate_auth5g_vector(k, hss, rng);
  EXPECT_EQ(verify_autn_sqn(k, v.rand, v.autn, ue).verdict, AutnVerdict::Ok);
  // Replaying the identical challenge is a SyncFailure, not a MacFailure.
  UeSqnState replay_state = ue;
  EXPECT_EQ(verify_autn_sqn(k, v.rand, v.autn, replay_state).verdict,
            AutnVerdict::SyncFailure);
}

// A small EPC world: UE -- tower -- AGW -- internet -- server, HSS in cloud.
struct EpcWorld {
  explicit EpcWorld(Duration cloud_rtt = Duration::millis(7.2), std::uint64_t seed = 1)
      : sim(seed), network(sim) {
    ue = network.add_node("ue");
    tower1 = network.add_node("tower1");
    tower2 = network.add_node("tower2");
    agw = network.add_node("agw");
    cloud = network.add_node("cloud");
    server = network.add_node("server");
    network.register_address(net::Ipv4Addr(1, 1, 1, 1), server);
    network.register_address(net::Ipv4Addr(2, 2, 2, 2), cloud);
    network.register_address(net::Ipv4Addr(3, 3, 3, 3), agw);

    radio1 = network.connect(ue, tower1, net::LinkParams{.rate_bps = 20e6, .delay = Duration::ms(4)});
    radio2 = network.connect(ue, tower2, net::LinkParams{.rate_bps = 20e6, .delay = Duration::ms(4)});
    radio1->set_up(false);
    radio2->set_up(false);
    network.connect(tower1, agw, net::LinkParams{.rate_bps = 10e9, .delay = Duration::ms(2)});
    network.connect(tower2, agw, net::LinkParams{.rate_bps = 10e9, .delay = Duration::ms(2)});
    network.connect(agw, cloud, net::LinkParams{.rate_bps = 1e9, .delay = cloud_rtt / 2});
    network.connect(agw, server, net::LinkParams{.rate_bps = 10e9, .delay = Duration::ms(17)});
    network.recompute_routes();

    ran_map.add(1, ran::TowerSite{tower1, radio1});
    ran_map.add(2, ran::TowerSite{tower2, radio2});

    hss = std::make_unique<Hss>(*cloud, EpcProcProfile{}.hss_req);
    hss->add_subscriber("imsi-1", Bytes(32, 0x42));
    spgw = std::make_unique<SgwPgw>(network, *agw, 10);
    mme = std::make_unique<Mme>(*agw, *spgw, net::EndPoint{net::Ipv4Addr(2, 2, 2, 2), kHssPort});
    nas = std::make_unique<UeNas>(network, *ue, "imsi-1", Bytes(32, 0x42), *mme, ran_map);
  }

  Result<net::Ipv4Addr> attach(ran::CellId cell) {
    Result<net::Ipv4Addr> out = Result<net::Ipv4Addr>::err("not finished");
    bool done = false;
    nas->attach(cell, [&](Result<net::Ipv4Addr> r) {
      out = std::move(r);
      done = true;
    });
    sim.run_for(Duration::s(30));
    EXPECT_TRUE(done);
    if (out.ok()) network.recompute_routes();
    return out;
  }

  sim::Simulator sim;
  net::Network network;
  net::Node *ue, *tower1, *tower2, *agw, *cloud, *server;
  net::Link *radio1, *radio2;
  ran::RanMap ran_map;
  std::unique_ptr<Hss> hss;
  std::unique_ptr<SgwPgw> spgw;
  std::unique_ptr<Mme> mme;
  std::unique_ptr<UeNas> nas;
};

TEST(EpcAttach, SucceedsAndAssignsIp) {
  EpcWorld w;
  auto result = w.attach(1);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().valid());
  EXPECT_TRUE(w.ue->has_address(result.value()));
  EXPECT_TRUE(w.nas->attached());
  EXPECT_EQ(w.mme->attaches_completed(), 1u);
  EXPECT_EQ(w.hss->requests_served(), 2u);  // AIR + ULR: the 2-RTT baseline
}

TEST(EpcAttach, UnknownImsiRejected) {
  EpcWorld w;
  UeNas rogue(w.network, *w.ue, "imsi-unknown", Bytes(32, 0x42), *w.mme, w.ran_map);
  Result<net::Ipv4Addr> out = Result<net::Ipv4Addr>::err("not finished");
  rogue.attach(1, [&](Result<net::Ipv4Addr> r) { out = std::move(r); });
  w.sim.run_for(Duration::s(30));
  EXPECT_FALSE(out.ok());
}

TEST(EpcAttach, WrongKeyNeverCompletes) {
  EpcWorld w;
  // UE holds a different K than the HSS: AUTN verification fails at the UE,
  // which aborts silently (no RES ever sent).
  UeNas bad(w.network, *w.ue, "imsi-1", Bytes(32, 0x99), *w.mme, w.ran_map);
  bool completed = false;
  bad.attach(1, [&](Result<net::Ipv4Addr>) { completed = true; });
  w.sim.run_for(Duration::s(30));
  EXPECT_FALSE(completed);
  EXPECT_EQ(w.mme->attaches_completed(), 0u);
}

TEST(EpcAttach, LatencyMatchesCalibration) {
  // Processing 22.5 ms + 2 x 7.2 ms RTT ~= 36.9 ms (paper: 36.85 ms).
  EpcWorld w(Duration::millis(7.2));
  auto result = w.attach(1);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(w.nas->last_attach_latency().to_millis(), 36.9, 2.0);
}

TEST(EpcAttach, LatencyScalesWithCloudRtt) {
  EpcWorld near(Duration::millis(0.5));
  EpcWorld far(Duration::millis(73.5));
  ASSERT_TRUE(near.attach(1).ok());
  ASSERT_TRUE(far.attach(1).ok());
  const double near_ms = near.nas->last_attach_latency().to_millis();
  const double far_ms = far.nas->last_attach_latency().to_millis();
  // Two round-trips to the subscriber DB: ~2x RTT difference.
  EXPECT_NEAR(far_ms - near_ms, 2 * 73.0, 6.0);
}

TEST(EpcUserPlane, TrafficFlowsAndIsAccounted) {
  EpcWorld w;
  auto ip = w.attach(1);
  ASSERT_TRUE(ip.ok());

  // UDP echo through the anchor.
  int received = 0;
  w.server->bind_udp(9000, [&](const net::Packet& p) {
    ++received;
    net::Packet reply;
    reply.src = p.dst;
    reply.dst = p.src;
    reply.proto = net::Proto::Udp;
    reply.payload = Bytes(500, 1);
    w.server->send(std::move(reply));
  });
  int ue_received = 0;
  w.ue->bind_udp(9001, [&](const net::Packet&) { ++ue_received; });
  net::Packet p;
  p.src = net::EndPoint{ip.value(), 9001};
  p.dst = net::EndPoint{net::Ipv4Addr(1, 1, 1, 1), 9000};
  p.proto = net::Proto::Udp;
  p.payload = Bytes(300, 2);
  w.ue->send(std::move(p));
  w.sim.run_for(Duration::s(2));

  EXPECT_EQ(received, 1);
  EXPECT_EQ(ue_received, 1);
  const auto usage = w.spgw->usage("imsi-1");
  EXPECT_GT(usage.ul_bytes, 300u);
  EXPECT_GT(usage.dl_bytes, 500u);
}

TEST(EpcHandover, PreservesIpAndTcpSession) {
  EpcWorld w;
  auto ip = w.attach(1);
  ASSERT_TRUE(ip.ok());

  transport::TcpStack ue_tcp(*w.ue);
  transport::TcpStack server_tcp(*w.server);
  Bytes received;
  std::shared_ptr<transport::TcpSocket> srv;
  server_tcp.listen(80, [&](std::shared_ptr<transport::TcpSocket> s) {
    srv = std::move(s);
    srv->on_data = [&](BytesView d) { received.insert(received.end(), d.begin(), d.end()); };
  });
  auto client = ue_tcp.connect({net::Ipv4Addr(1, 1, 1, 1), 80});
  const Bytes payload(200 * 1024, 0x7A);
  std::size_t sent = 0;
  auto pump = [&] {
    while (sent < payload.size()) {
      const std::size_t n = client->send(
          BytesView(payload.data() + sent, std::min<std::size_t>(8192, payload.size() - sent)));
      if (n == 0) return;
      sent += n;
    }
  };
  client->on_connected = pump;
  client->on_send_space = pump;

  w.sim.run_for(Duration::s(1));
  const net::Ipv4Addr before = ip.value();
  bool handover_done = false;
  w.nas->handover(2, Duration::ms(30), [&] { handover_done = true; });
  w.sim.run_for(Duration::s(30));

  EXPECT_TRUE(handover_done);
  EXPECT_EQ(w.nas->current_ip(), before);  // IP preserved: the anchor works
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

TEST(EpcDetach, ReleasesEverything) {
  EpcWorld w;
  auto ip = w.attach(1);
  ASSERT_TRUE(ip.ok());
  w.nas->detach();
  EXPECT_FALSE(w.nas->attached());
  EXPECT_FALSE(w.ue->has_address(ip.value()));
  EXPECT_FALSE(w.spgw->has_session("imsi-1"));
  EXPECT_FALSE(w.radio1->is_up());
}

TEST(EpcSpgw, SessionIpsAreDistinct) {
  EpcWorld w;
  w.hss->add_subscriber("imsi-2", Bytes(32, 0x55));
  auto ip1 = w.spgw->create_session("imsi-1", w.ue, w.tower1, w.radio1);
  auto ip2 = w.spgw->create_session("imsi-2", w.ue, w.tower1, w.radio1);
  EXPECT_NE(ip1, ip2);
  w.spgw->release_session("imsi-1");
  w.spgw->release_session("imsi-2");
  EXPECT_FALSE(w.spgw->has_session("imsi-1"));
}

}  // namespace
}  // namespace cb::epc
