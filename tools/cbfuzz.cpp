// cbfuzz — scenario fuzzer for the CellBricks simulation checker.
//
//   cbfuzz --seeds N [--base B] [--threads T] [--cadence-s C]
//          [--protocol eps_aka|5g_aka|sap|sap_resume] [--policy a3|ttt|rank]
//          [--plant-dedup-bug] [--out FILE] [--no-shrink] [--verbose]
//       Run the seed corpus [B, B+N) (each seed samples one random scenario
//       via scenario::random_scenario) under the full invariant catalogue.
//       On the first violating seed: shrink the scenario to a minimal repro,
//       write it to FILE (default cbfuzz_repro.json), print the exact replay
//       command, exit 1. Exit 0 when the whole corpus runs clean.
//
//   cbfuzz --seed S [...]
//       Single-seed corpus (same as --seeds 1 --base S).
//
//   cbfuzz --replay FILE
//       Re-run a repro document (or bare scenario JSON) and report whether
//       the violation still reproduces.
//
// CB_TEST_SEED overrides the corpus base when --base/--seed is not given,
// so a failing seed printed by CI can be re-run without editing anything.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/repro.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/trial_runner.hpp"

using namespace cb;

namespace {

struct Args {
  std::uint64_t base = 1;
  std::size_t seeds = 0;  // 0 = not a corpus run
  unsigned threads = 0;   // 0 = hardware concurrency
  double cadence_s = 1.0;
  bool plant_dedup_bug = false;
  bool shrink = true;
  bool verbose = false;
  std::string protocol;  // empty = let the sampler choose the attach protocol
  std::string policy;    // empty = let the sampler choose the reselection policy
  std::string out = "cbfuzz_repro.json";
  std::string replay;  // non-empty: replay mode
};

int usage() {
  std::fprintf(stderr,
               "usage: cbfuzz --seeds N [--base B] [--threads T] [--cadence-s C]\n"
               "              [--protocol eps_aka|5g_aka|sap|sap_resume]\n"
               "              [--policy a3|ttt|rank]\n"
               "              [--plant-dedup-bug] [--out FILE] [--no-shrink] [--verbose]\n"
               "       cbfuzz --seed S [...]\n"
               "       cbfuzz --replay FILE\n");
  return 2;
}

bool parse(int argc, char** argv, Args& out) {
  bool base_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--seeds") {
      const char* v = next();
      if (v == nullptr) return false;
      out.seeds = static_cast<std::size_t>(std::atoll(v));
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      out.base = static_cast<std::uint64_t>(std::atoll(v));
      out.seeds = 1;
      base_given = true;
    } else if (flag == "--base") {
      const char* v = next();
      if (v == nullptr) return false;
      out.base = static_cast<std::uint64_t>(std::atoll(v));
      base_given = true;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      out.threads = static_cast<unsigned>(std::atoi(v));
    } else if (flag == "--cadence-s") {
      const char* v = next();
      if (v == nullptr) return false;
      out.cadence_s = std::atof(v);
    } else if (flag == "--protocol") {
      const char* v = next();
      if (v == nullptr) return false;
      out.protocol = v;
      if (out.protocol != "eps_aka" && out.protocol != "5g_aka" && out.protocol != "sap" &&
          out.protocol != "sap_resume") {
        std::fprintf(stderr, "unknown protocol: %s\n", v);
        return false;
      }
    } else if (flag == "--policy") {
      const char* v = next();
      if (v == nullptr) return false;
      out.policy = v;
      if (out.policy != "a3" && out.policy != "ttt" && out.policy != "rank") {
        std::fprintf(stderr, "unknown policy: %s\n", v);
        return false;
      }
    } else if (flag == "--plant-dedup-bug") {
      out.plant_dedup_bug = true;
    } else if (flag == "--no-shrink") {
      out.shrink = false;
    } else if (flag == "--verbose") {
      out.verbose = true;
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      out.out = v;
    } else if (flag == "--replay") {
      const char* v = next();
      if (v == nullptr) return false;
      out.replay = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (!base_given) {
    if (const char* env = std::getenv("CB_TEST_SEED")) {
      out.base = static_cast<std::uint64_t>(std::atoll(env));
      std::fprintf(stderr, "cbfuzz: CB_TEST_SEED=%llu overrides corpus base\n",
                   static_cast<unsigned long long>(out.base));
    }
  }
  return !out.replay.empty() || out.seeds > 0;
}

scenario::FuzzScenario scenario_for(const Args& args, std::uint64_t seed) {
  scenario::FuzzScenario s = scenario::random_scenario(seed);
  s.plant_dedup_bug = args.plant_dedup_bug;
  // --protocol pins the attach axis for the whole corpus (conformance
  // sweeps); everything else about each scenario is untouched.
  if (args.protocol == "eps_aka") {
    s.attach_protocol = 0;
    s.resume_ticket = false;
  } else if (args.protocol == "5g_aka") {
    s.attach_protocol = 1;
    s.resume_ticket = false;
  } else if (args.protocol == "sap") {
    s.attach_protocol = 2;
    s.resume_ticket = false;
  } else if (args.protocol == "sap_resume") {
    s.attach_protocol = 2;
    s.resume_ticket = true;
  }
  // --policy pins the reselection axis the same way (policy A/B sweeps).
  // TTT gets a mid-range trigger when the sampler did not pick one.
  if (args.policy == "a3") {
    s.reselection_policy = 0;
    s.ttt_ms = 0;
  } else if (args.policy == "ttt") {
    s.reselection_policy = 1;
    if (s.ttt_ms == 0) s.ttt_ms = 480;
  } else if (args.policy == "rank") {
    s.reselection_policy = 2;
    s.ttt_ms = 0;
    // Same churn containment as the sampler: rank on a noisy channel needs
    // at least the k=4 filter to keep the horizon tractable.
    if (s.shadow_sigma_db > 0.0 && s.l3_filter_k < 4) s.l3_filter_k = 4;
  }
  return s;
}

void print_violations(const check::RunReport& report) {
  for (const auto& v : report.violations) {
    std::fprintf(stderr, "  %s @%.3fs: %s\n", v.invariant.c_str(), v.at.to_seconds(),
                 v.detail.c_str());
  }
}

int run_replay(const Args& args) {
  std::ifstream in(args.replay);
  if (!in) {
    std::fprintf(stderr, "cbfuzz: cannot open %s\n", args.replay.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  scenario::FuzzScenario s;
  try {
    s = check::load_repro(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cbfuzz: %s\n", e.what());
    return 2;
  }
  check::RunOptions run_options;
  run_options.check_cadence = Duration::seconds(args.cadence_s);
  const check::RunReport report = check::run_scenario(s, run_options);
  std::printf("seed %llu\nchecks_run %llu\nviolations %zu\nfingerprint %016llx\n",
              static_cast<unsigned long long>(s.seed),
              static_cast<unsigned long long>(report.checks_run), report.violations.size(),
              static_cast<unsigned long long>(report.fingerprint()));
  if (!report.ok()) {
    std::fprintf(stderr, "cbfuzz: violation REPRODUCED from %s\n", args.replay.c_str());
    print_violations(report);
    return 1;
  }
  std::fprintf(stderr, "cbfuzz: no violation (repro did not reproduce)\n");
  return 0;
}

int run_corpus(const Args& args) {
  check::RunOptions run_options;
  run_options.check_cadence = Duration::seconds(args.cadence_s);

  struct TrialResult {
    std::uint64_t seed = 0;
    std::size_t violations = 0;
    std::string first_invariant;
    std::uint64_t fingerprint = 0;
  };
  scenario::TrialRunner pool(args.threads);
  const std::vector<TrialResult> results =
      pool.map(args.seeds, [&](std::size_t i) {
        const std::uint64_t seed = args.base + i;
        const check::RunReport report = check::run_scenario(scenario_for(args, seed), run_options);
        TrialResult r;
        r.seed = seed;
        r.violations = report.violations.size();
        if (!report.ok()) r.first_invariant = report.violations.front().invariant;
        r.fingerprint = report.fingerprint();
        return r;
      });

  // Results come back in index order, so "first failing seed" is stable no
  // matter how many worker threads raced.
  const TrialResult* failing = nullptr;
  for (const auto& r : results) {
    if (args.verbose) {
      std::fprintf(stderr, "cbfuzz: seed %llu %s (fp %016llx)\n",
                   static_cast<unsigned long long>(r.seed), r.violations == 0 ? "ok" : "VIOLATION",
                   static_cast<unsigned long long>(r.fingerprint));
    }
    if (r.violations != 0 && failing == nullptr) failing = &r;
  }

  if (failing == nullptr) {
    std::printf("corpus [%llu, %llu) clean: %zu scenarios, 0 violations\n",
                static_cast<unsigned long long>(args.base),
                static_cast<unsigned long long>(args.base + args.seeds), results.size());
    return 0;
  }

  std::fprintf(stderr, "cbfuzz: seed %llu violated %s (%zu violation(s))\n",
               static_cast<unsigned long long>(failing->seed), failing->first_invariant.c_str(),
               failing->violations);
  std::fprintf(stderr, "cbfuzz: re-run just this seed: cbfuzz --seed %llu%s\n",
               static_cast<unsigned long long>(failing->seed),
               args.plant_dedup_bug ? " --plant-dedup-bug" : "");

  if (!args.shrink) {
    const check::RunReport report =
        check::run_scenario(scenario_for(args, failing->seed), run_options);
    print_violations(report);
    return 1;
  }

  check::ShrinkOptions shrink_options;
  shrink_options.run = run_options;
  const check::ShrinkResult shrunk =
      check::shrink(scenario_for(args, failing->seed), shrink_options);
  std::fprintf(stderr,
               "cbfuzz: shrunk to %zu fault(s), %d tower(s), %.0fs horizon "
               "(%zu candidates tried, %zu accepted)\n",
               shrunk.minimal.faults.size(), shrunk.minimal.n_towers, shrunk.minimal.duration_s,
               shrunk.candidates_tried, shrunk.candidates_accepted);
  std::fprintf(stderr, "cbfuzz: %s: %s\n", shrunk.witness.invariant.c_str(),
               shrunk.witness.detail.c_str());

  const std::string doc = check::write_repro(shrunk, run_options, args.out);
  std::ofstream out(args.out);
  if (!out) {
    std::fprintf(stderr, "cbfuzz: cannot write %s\n", args.out.c_str());
    return 2;
  }
  out << doc;
  out.close();
  std::fprintf(stderr, "cbfuzz: minimal repro written to %s\n", args.out.c_str());
  std::fprintf(stderr, "cbfuzz: replay with: %s\n", check::replay_command(args.out).c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return usage();
  if (!args.replay.empty()) return run_replay(args);
  return run_corpus(args);
}
