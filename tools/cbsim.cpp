// cbsim — command-line driver for the CellBricks simulation library.
//
//   cbsim attach  [--arch mno|cb] [--rtt-ms R] [--n N]
//       Run N sequential attachments and print latency + module breakdown.
//
//   cbsim drive   [--arch mno|cb] [--route suburb|downtown|highway]
//                 [--night] [--app iperf|ping|voip|video|web] [--secs S]
//                 [--seed K]
//       Drive the route running one application; print its metrics.
//
//   cbsim storm   [--arch mno|cb] [--ues N] [--loss P] [--rtt-ms R]
//       N simultaneous attach requests against one cell.
//
// Exit code 0 on success; metrics go to stdout, one `key value` per line —
// convenient for scripting sweeps.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/iperf.hpp"
#include "apps/ping.hpp"
#include "apps/video.hpp"
#include "apps/voip.hpp"
#include "apps/web.hpp"
#include "scenario/attach_experiment.hpp"
#include "scenario/table1.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct Args {
  std::string command;
  Architecture arch = Architecture::CellBricks;
  std::string route = "suburb";
  bool night = false;
  std::string app = "iperf";
  double rtt_ms = 7.2;
  int n = 20;
  int ues = 50;
  double loss = 0.0;
  long secs = 120;
  std::uint64_t seed = 1;
};

int usage() {
  std::fprintf(stderr,
               "usage: cbsim attach [--arch mno|cb] [--rtt-ms R] [--n N]\n"
               "       cbsim drive  [--arch mno|cb] [--route suburb|downtown|highway]\n"
               "                    [--night] [--app iperf|ping|voip|video|web]\n"
               "                    [--secs S] [--seed K]\n"
               "       cbsim storm  [--arch mno|cb] [--ues N] [--loss P] [--rtt-ms R]\n");
  return 2;
}

bool parse(int argc, char** argv, Args& out) {
  if (argc < 2) return false;
  out.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--night") {
      out.night = true;
    } else if (flag == "--arch") {
      const char* v = next();
      if (v == nullptr) return false;
      out.arch = std::strcmp(v, "mno") == 0 ? Architecture::Mno : Architecture::CellBricks;
    } else if (flag == "--route") {
      const char* v = next();
      if (v == nullptr) return false;
      out.route = v;
    } else if (flag == "--app") {
      const char* v = next();
      if (v == nullptr) return false;
      out.app = v;
    } else if (flag == "--rtt-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out.rtt_ms = std::atof(v);
    } else if (flag == "--n") {
      const char* v = next();
      if (v == nullptr) return false;
      out.n = std::atoi(v);
    } else if (flag == "--ues") {
      const char* v = next();
      if (v == nullptr) return false;
      out.ues = std::atoi(v);
    } else if (flag == "--loss") {
      const char* v = next();
      if (v == nullptr) return false;
      out.loss = std::atof(v);
    } else if (flag == "--secs") {
      const char* v = next();
      if (v == nullptr) return false;
      out.secs = std::atol(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      out.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

RouteSpec pick_route(const Args& a) {
  if (a.route == "downtown") return a.night ? downtown_night() : downtown_day();
  if (a.route == "highway") return a.night ? highway_night() : highway_day();
  return a.night ? suburb_night() : suburb_day();
}

int cmd_attach(const Args& a) {
  const AttachBreakdown b =
      run_attach_experiment(a.arch, Duration::millis(a.rtt_ms), a.n, a.seed);
  std::printf("arch %s\nattaches %d\ntotal_ms %.3f\nagw_core_ms %.3f\nenb_ms %.3f\n"
              "ue_ms %.3f\nother_ms %.3f\n",
              a.arch == Architecture::CellBricks ? "cellbricks" : "mno", b.attaches,
              b.total_ms, b.agw_core_ms, b.enb_ms, b.ue_ms, b.other_ms);
  return b.attaches == a.n ? 0 : 1;
}

int cmd_storm(const Args& a) {
  const AttachStorm s = run_attach_storm(a.arch, a.ues, Duration::millis(a.rtt_ms), a.loss,
                                         a.seed);
  std::printf("arch %s\nues %d\ncompleted %d\nmean_ms %.3f\np99_ms %.3f\n",
              a.arch == Architecture::CellBricks ? "cellbricks" : "mno", s.n_ues,
              s.completed, s.mean_ms, s.p99_ms);
  return s.completed == a.ues ? 0 : 1;
}

int cmd_drive(const Args& a) {
  const RouteSpec route = pick_route(a);
  WorldConfig cfg;
  cfg.arch = a.arch;
  cfg.route = route;
  cfg.seed = a.seed;
  cfg.n_towers =
      static_cast<int>(route.speed_mps * static_cast<double>(a.secs) /
                       route.tower_spacing_m) +
      3;
  World world(cfg);
  const Duration run_time = Duration::s(a.secs);

  std::printf("arch %s\nroute %s\n",
              a.arch == Architecture::CellBricks ? "cellbricks" : "mno",
              route.name.c_str());

  if (a.app == "ping") {
    apps::PingServer server(*world.server_node(), 7);
    apps::PingClient client(*world.ue_node(), {world.server_addr(), 7});
    world.start();
    world.simulator().run_for(Duration::s(3));
    client.start();
    world.simulator().run_for(run_time);
    client.stop();
    std::printf("probes %llu\nlost %llu\np50_ms %.2f\n",
                static_cast<unsigned long long>(client.sent()),
                static_cast<unsigned long long>(client.lost()),
                client.rtts_ms().empty() ? 0.0 : client.rtts_ms().p50());
  } else if (a.app == "voip") {
    apps::VoipEndpoint callee(*world.server_node(), 6000);
    apps::VoipEndpoint caller(*world.ue_node(), 6000);
    world.start();
    world.simulator().run_for(Duration::s(3));
    caller.call({world.server_addr(), 6000});
    world.simulator().run_for(run_time);
    std::printf("mos %.2f\nloss %.4f\ndelay_ms %.1f\njitter_ms %.2f\n",
                caller.stats().mos(), caller.stats().loss_rate(),
                caller.stats().avg_delay_ms, caller.stats().jitter_ms);
  } else if (a.app == "video") {
    apps::HlsServer server(world.server_transport(), 8080);
    world.start();
    world.simulator().run_for(Duration::s(3));
    apps::HlsClient client(world.ue_transport(), {world.server_addr(), 8080},
                           world.simulator());
    client.start();
    world.simulator().run_for(run_time);
    client.stop();
    std::printf("segments %llu\navg_level %.2f\nrebuffers %llu\n",
                static_cast<unsigned long long>(client.segments_played()),
                client.avg_quality_level(),
                static_cast<unsigned long long>(client.rebuffer_events()));
  } else if (a.app == "web") {
    apps::WebServer server(world.server_transport(), 80);
    world.start();
    world.simulator().run_for(Duration::s(3));
    apps::WebClient client(world.ue_transport(), {world.server_addr(), 80},
                           world.simulator());
    client.start();
    world.simulator().run_for(run_time);
    client.stop();
    std::printf("pages %llu\nfailed %llu\nload_s %.2f\n",
                static_cast<unsigned long long>(client.pages_loaded()),
                static_cast<unsigned long long>(client.pages_failed()),
                client.load_times_s().empty() ? 0.0 : client.load_times_s().mean());
  } else {  // iperf
    apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                                 run_time);
    world.start();
    world.simulator().run_for(Duration::s(3));
    apps::IperfDownloadClient client(world.ue_transport(), {world.server_addr(), 5001},
                                     world.simulator());
    world.simulator().run_for(run_time + Duration::s(5));
    std::printf("bytes %llu\nmbps %.3f\n",
                static_cast<unsigned long long>(client.total_bytes()),
                client.mean_throughput_bps() / 1e6);
  }

  std::printf("handovers %llu\nmttho_s %.2f\n",
              static_cast<unsigned long long>(world.handovers()), world.mttho_s());
  if (const Summary* lat = world.attach_latencies_ms(); lat && !lat->empty()) {
    std::printf("attach_ms_mean %.2f\n", lat->mean());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return usage();
  if (args.command == "attach") return cmd_attach(args);
  if (args.command == "drive") return cmd_drive(args);
  if (args.command == "storm") return cmd_storm(args);
  return usage();
}
