#!/usr/bin/env bash
# Perf baseline tracker: runs the two headline benchmarks against a Release
# build and writes BENCH_sap.json + BENCH_scale.json at the repo root, each
# recording the frozen pre-PR3 baseline, the current numbers, and the
# resulting speedup. Re-run after any hot-path change and commit the JSONs
# so the perf trajectory stays in-repo (see EXPERIMENTS.md).
#
# Usage: tools/bench.sh [--smoke] [--build-dir DIR]
#   --smoke      reduced point set / fewer repetitions; used by tools/ci.sh
#                to validate the JSON schema quickly. Smoke numbers are NOT
#                representative — never commit JSONs from a smoke run.
#   --build-dir  benchmark binaries location (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
BUILD_DIR=build
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
  shift
done

SAP_BIN="$BUILD_DIR/bench/bench_sap_crypto"
SCALE_BIN="$BUILD_DIR/bench/bench_scale_users"
for bin in "$SAP_BIN" "$SCALE_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# --- RSA/SAP crypto microbench (google-benchmark JSON) -----------------------
if [[ "$SMOKE" == 1 ]]; then
  REPS=1
  FILTER='--benchmark_filter=BM_Rsa(Sign|Verify)1024'
else
  REPS=3
  FILTER='--benchmark_filter=.'
fi
"$SAP_BIN" "$FILTER" \
  --benchmark_repetitions="$REPS" --benchmark_report_aggregates_only=true \
  --benchmark_format=json --benchmark_out="$TMP/sap.json" \
  --benchmark_out_format=json >/dev/null

# --- User-scale macrobench (emits its own JSON) ------------------------------
SCALE_ARGS=(--json "$TMP/scale.json")
if [[ "$SMOKE" == 1 ]]; then SCALE_ARGS+=(--smoke); fi
"$SCALE_BIN" "${SCALE_ARGS[@]}" >/dev/null

# --- Assemble the committed BENCH_*.json -------------------------------------
SMOKE="$SMOKE" python3 - "$TMP/sap.json" "$TMP/scale.json" <<'EOF'
import json, os, sys

smoke = os.environ["SMOKE"] == "1"
sap_raw = json.load(open(sys.argv[1]))
scale_raw = json.load(open(sys.argv[2]))

# Frozen pre-PR3 baselines (seed engine: schoolbook powmod, deep-copy packet
# path, sequential sweeps), measured on the reference 1-CPU container.
SAP_BASE = {"rsa_sign_1024_ns": 3470195.0, "rsa_verify_1024_ns": 134977.0}
SCALE_BASE_WALL_S = 13.419

def median(raw, name):
    for b in raw["benchmarks"]:
        if b["name"] == f"{name}_median" or (b["name"] == name and b.get("run_type") != "aggregate"):
            return b["real_time"]
    raise KeyError(f"benchmark {name} missing from output")

sign = median(sap_raw, "BM_RsaSign1024")
verify = median(sap_raw, "BM_RsaVerify1024")
sap = {
    "bench": "sap_crypto",
    "mode": "smoke" if smoke else "full",
    "baseline": dict(SAP_BASE, label="pre-PR3 (schoolbook powmod)"),
    "current": {"rsa_sign_1024_ns": sign, "rsa_verify_1024_ns": verify},
    "speedup": {
        "rsa_sign_1024": round(SAP_BASE["rsa_sign_1024_ns"] / sign, 2),
        "rsa_verify_1024": round(SAP_BASE["rsa_verify_1024_ns"] / verify, 2),
    },
}
json.dump(sap, open("BENCH_sap.json", "w"), indent=2)
print("BENCH_sap.json:", json.dumps(sap["speedup"]))

scale = {
    "bench": "scale_users",
    "mode": scale_raw["mode"],
    "baseline": {"wall_s": SCALE_BASE_WALL_S,
                 "label": "pre-PR3 (sequential, deep-copy packets)"},
    "current": {"wall_s": scale_raw["wall_s"], "threads": scale_raw["threads"]},
    "speedup": {"wall": round(SCALE_BASE_WALL_S / scale_raw["wall_s"], 2)},
    "points": scale_raw["points"],
}
json.dump(scale, open("BENCH_scale.json", "w"), indent=2)
print("BENCH_scale.json: wall %.2fs (%.1fx)" % (scale_raw["wall_s"],
      SCALE_BASE_WALL_S / scale_raw["wall_s"]))
EOF

echo "bench.sh done (mode: $([[ "$SMOKE" == 1 ]] && echo smoke || echo full))"
