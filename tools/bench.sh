#!/usr/bin/env bash
# Perf baseline tracker: runs the two headline benchmarks against a Release
# build and writes BENCH_sap.json + BENCH_scale.json at the repo root, each
# recording the frozen pre-PR3 baseline, the current numbers, and the
# resulting speedup. Re-run after any hot-path change and commit the JSONs
# so the perf trajectory stays in-repo (see EXPERIMENTS.md).
#
# Also guards the observability layer's cost claim: bench_scale_users --smoke
# is run with metrics enabled and with --no-metrics (min-of-3 each), the
# delta is recorded under "instrumentation" in BENCH_scale.json, and the
# script fails if instrumentation costs more than 5%.
#
# Usage: tools/bench.sh [--smoke] [--build-dir DIR]
#   --smoke      reduced point set / fewer repetitions; used by tools/ci.sh
#                to validate the JSON schema quickly. Smoke numbers are NOT
#                representative — never commit JSONs from a smoke run.
#   --build-dir  benchmark binaries location (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
BUILD_DIR=build
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
  shift
done

SAP_BIN="$BUILD_DIR/bench/bench_sap_crypto"
SCALE_BIN="$BUILD_DIR/bench/bench_scale_users"
SHARDS_BIN="$BUILD_DIR/bench/bench_broker_shards"
FIG7_BIN="$BUILD_DIR/bench/bench_fig7_attach_latency"
FIG8_BIN="$BUILD_DIR/bench/bench_fig8_handover_timeseries"
FIG9_BIN="$BUILD_DIR/bench/bench_fig9_attach_latency_sweep"
for bin in "$SAP_BIN" "$SCALE_BIN" "$SHARDS_BIN" "$FIG7_BIN" "$FIG8_BIN" "$FIG9_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# --- RSA/SAP crypto microbench (google-benchmark JSON) -----------------------
if [[ "$SMOKE" == 1 ]]; then
  REPS=1
  FILTER='--benchmark_filter=BM_Rsa(Sign|Verify)1024'
else
  REPS=3
  FILTER='--benchmark_filter=.'
fi
"$SAP_BIN" "$FILTER" \
  --benchmark_repetitions="$REPS" --benchmark_report_aggregates_only=true \
  --benchmark_format=json --benchmark_out="$TMP/sap.json" \
  --benchmark_out_format=json >/dev/null

# --- User-scale macrobench (emits its own JSON) ------------------------------
# --fluid adds the hybrid-engine scale curve (1k/10k/100k UEs fluid mode)
# and the packet-vs-fluid agreement gate; the binary exits nonzero if the
# two fidelity modes disagree, which fails this script under `set -e`.
SCALE_ARGS=(--fluid --json "$TMP/scale.json")
if [[ "$SMOKE" == 1 ]]; then SCALE_ARGS+=(--smoke); fi
"$SCALE_BIN" "${SCALE_ARGS[@]}" >/dev/null

# --- Sharded-broker scaling + failover (DESIGN.md §12) -----------------------
# The binary gates itself: nonzero exit on a lost billing verdict, a
# verdict-content conflict, or a same-seed fingerprint divergence.
SHARDS_ARGS=(--json "$TMP/shards.json")
if [[ "$SMOKE" == 1 ]]; then SHARDS_ARGS+=(--smoke); fi
"$SHARDS_BIN" "${SHARDS_ARGS[@]}" >/dev/null

# --- Attach-protocol suite (DESIGN.md §14) -----------------------------------
# fig7: per-protocol attach latency per broker/HSS placement. fig8: the
# handover re-attach delta — the binary itself exits nonzero unless
# sap_resume's re-attach d is strictly below plain sap's. fig9: per-protocol
# post-handover recovery curves. Attach latencies are simulated-time means,
# so smoke and full agree to within sampling noise.
FIG7_ARGS=(--json "$TMP/fig7.json")
FIG9_ARGS=(--json "$TMP/fig9.json")
if [[ "$SMOKE" == 1 ]]; then FIG7_ARGS+=(--smoke); FIG9_ARGS+=(--smoke); fi
"$FIG7_BIN" "${FIG7_ARGS[@]}" >/dev/null
"$FIG8_BIN" --json "$TMP/fig8.json" >/dev/null
"$FIG9_BIN" "${FIG9_ARGS[@]}" >/dev/null

# --- Instrumentation-overhead guard ------------------------------------------
# The obs layer claims near-zero cost: compare bench_scale_users --smoke with
# metrics enabled vs --no-metrics, min-of-5 each (the min filters scheduler
# noise), and fail if instrumentation costs more than 5%.
for i in 1 2 3 4 5; do
  "$SCALE_BIN" --smoke --json "$TMP/obs_on_$i.json" >/dev/null
  "$SCALE_BIN" --smoke --no-metrics --json "$TMP/obs_off_$i.json" >/dev/null
done

# --- Assemble the committed BENCH_*.json -------------------------------------
SMOKE="$SMOKE" python3 - "$TMP/sap.json" "$TMP/scale.json" "$TMP/shards.json" \
    "$TMP/fig7.json" "$TMP/fig8.json" "$TMP/fig9.json" <<'EOF'
import json, os, sys

smoke = os.environ["SMOKE"] == "1"
sap_raw = json.load(open(sys.argv[1]))
scale_raw = json.load(open(sys.argv[2]))
shards_raw = json.load(open(sys.argv[3]))
fig7 = json.load(open(sys.argv[4]))
fig8 = json.load(open(sys.argv[5]))
fig9 = json.load(open(sys.argv[6]))

# Frozen pre-PR3 baselines (seed engine: schoolbook powmod, deep-copy packet
# path, sequential sweeps), measured on the reference 1-CPU container.
SAP_BASE = {"rsa_sign_1024_ns": 3470195.0, "rsa_verify_1024_ns": 134977.0}
SCALE_BASE_WALL_S = 13.419

# Frozen per-protocol attach-latency baseline (PR9, us-west-1 placement,
# simulated-time means — deterministic up to per-cycle jitter) and the fig8
# handover re-attach delta. Latencies here are simulated, so any drift means
# a calibration/protocol change, not machine noise; the guard is ±20%.
ATTACH_BASE = {
    "eps_aka_ms": 36.903,
    "5g_aka_ms": 49.855,
    "sap_ms": 31.710,
    "sap_resume_ms": 16.250,   # ticket-resumed re-attach (no broker leg)
    "fig8_reattach_delta_ms": 15.460,
}

def median(raw, name):
    for b in raw["benchmarks"]:
        if b["name"] == f"{name}_median" or (b["name"] == name and b.get("run_type") != "aggregate"):
            return b["real_time"]
    raise KeyError(f"benchmark {name} missing from output")

sign = median(sap_raw, "BM_RsaSign1024")
verify = median(sap_raw, "BM_RsaVerify1024")
# Attach-protocol suite (DESIGN.md §14): the per-protocol attach-latency
# baseline plus the fig8 re-attach delta, all simulated-time figures.
uswest = next(p for p in fig7["placements"] if p["placement"] == "us-west-1")
protos = uswest["protocols"]
current_attach = {
    "eps_aka_ms": protos["eps_aka"]["attach_ms"],
    "5g_aka_ms": protos["5g_aka"]["attach_ms"],
    "sap_ms": protos["sap"]["attach_ms"],
    "sap_resume_ms": protos["sap_resume"]["resume_ms"],
    "fig8_reattach_delta_ms": fig8["reattach"]["delta_ms"],
}
ra = fig8["reattach"]
assert ra["pass"], f"fig8 re-attach gate FAILED: {ra}"
assert ra["sap_resume"]["mean_ms"] < ra["sap"]["mean_ms"], \
    f"sap_resume re-attach not strictly below sap: {ra}"
assert ra["delta_ms"] > 0 and ra["sap_resume"]["resumes"] > 0, f"degenerate fig8 delta: {ra}"
for key, base in ATTACH_BASE.items():
    cur = current_attach[key]
    assert 0.8 * base <= cur <= 1.2 * base, (
        "attach-latency drift at %s: %.3f ms vs frozen %.3f ms (simulated time "
        "— a calibration or protocol change, not noise)" % (key, cur, base))
for proto in ("sap", "sap_resume"):
    w = fig9["protocols"][proto]["windows_pct"]
    assert len(w) == 9 and fig9["protocols"][proto]["handovers"] > 0, \
        f"fig9 {proto} recovery curve degenerate: {fig9['protocols'][proto]}"

# Measured MTTHO (fig8's noisy-channel drive): Table 1's suburb/day number
# must come OUT of the reselection loop — measured handover gaps within
# ±20% of the 73.50 s calibration target, all three policy arms populated.
mttho = fig8["mttho"]
assert mttho["pass"], f"measured-MTTHO calibration gate FAILED: {mttho}"
assert 0.8 * mttho["expected_s"] <= mttho["measured_s"] <= 1.2 * mttho["expected_s"], (
    "measured MTTHO %.2f s outside ±20%% of %.2f s"
    % (mttho["measured_s"], mttho["expected_s"]))
for arm in ("a3", "a3_ttt", "rank"):
    assert mttho["arms"][arm]["handovers"] >= 2, \
        f"mttho arm {arm} degenerate: {mttho['arms'][arm]}"

sap = {
    "bench": "sap_crypto",
    "mode": "smoke" if smoke else "full",
    "baseline": dict(SAP_BASE, label="pre-PR3 (schoolbook powmod)"),
    "current": {"rsa_sign_1024_ns": sign, "rsa_verify_1024_ns": verify},
    "speedup": {
        "rsa_sign_1024": round(SAP_BASE["rsa_sign_1024_ns"] / sign, 2),
        "rsa_verify_1024": round(SAP_BASE["rsa_verify_1024_ns"] / verify, 2),
    },
    "attach": {
        "baseline": dict(ATTACH_BASE, label="PR9 (us-west-1 placement)"),
        "current": current_attach,
        "fig8_reattach": ra,
        "fig9_recovery": fig9["protocols"],
    },
}
json.dump(sap, open("BENCH_sap.json", "w"), indent=2)
print("BENCH_sap.json:", json.dumps(sap["speedup"]))
print("attach protocols: sap %.2fms, resume %.2fms (fig8 delta %.2fms)"
      % (current_attach["sap_ms"], current_attach["sap_resume_ms"], ra["delta_ms"]))

# Overhead guard: smoke wall-clock with metrics enabled vs --no-metrics.
tmp = os.path.dirname(sys.argv[1])
on = min(json.load(open(f"{tmp}/obs_on_{i}.json"))["wall_s"] for i in range(1, 6))
off = min(json.load(open(f"{tmp}/obs_off_{i}.json"))["wall_s"] for i in range(1, 6))
overhead_pct = (on / off - 1.0) * 100.0
instrumentation = {
    "enabled_wall_s": on,
    "disabled_wall_s": off,
    "overhead_pct": round(overhead_pct, 2),
    "budget_pct": 5.0,
}
print("instrumentation overhead: %.2f%% (enabled %.3fs vs disabled %.3fs)"
      % (overhead_pct, on, off))

# The agreement gate is the CI hard stop for the fluid model: both fidelity
# modes must agree byte-exactly on delivered bytes + billing and within the
# documented completion-time tolerance (EXPERIMENTS.md "scale curve").
agreement = scale_raw["agreement"]
curve = scale_raw["scale_curve"]
assert agreement["pass"], f"packet-vs-fluid agreement FAILED: {agreement}"
for p in curve:
    assert p["completed"] == p["n_ues"], f"scale curve point incomplete: {p}"
    for k in ("wall_s", "sim_s", "sim_per_wall", "peak_rss_mb", "events"):
        assert k in p, f"scale curve point missing {k}: {p}"

# Parallel-drain determinism gate (DESIGN.md §13): the same seed run at 1 and
# 4 fluid threads must produce bit-identical fingerprints and byte-identical
# metrics snapshots. Any divergence means the drain commit order leaked.
thread_agreement = scale_raw["thread_agreement"]
assert thread_agreement["pass"], \
    f"fluid thread-count determinism FAILED: {thread_agreement}"

if not smoke:
    # Full runs must carry the headline point: the 1M-UE curve entry, fully
    # completed (the smoke curve stops earlier and is schema-only).
    assert curve[-1]["n_ues"] == 1000000, \
        f"full scale curve missing the 1M-UE point (last: {curve[-1]})"
    # Scale-curve regression guard: compare sim-seconds-per-wall-second
    # against the previously committed freeze and fail on a >20% drop at any
    # matching population — catches hot-path regressions before they are
    # frozen over. (Smoke numbers are noise; guard full runs only.)
    try:
        prev = {p["n_ues"]: p
                for p in json.load(open("BENCH_scale.json"))["scale_curve"]}
    except (OSError, KeyError, ValueError):
        prev = {}
    for p in curve:
        old = prev.get(p["n_ues"], {})
        if "sim_per_wall" in old:
            floor = 0.8 * old["sim_per_wall"]
            assert p["sim_per_wall"] >= floor, (
                "scale-curve regression at %d UEs: sim_per_wall %.2f < 80%% "
                "of committed %.2f" % (p["n_ues"], p["sim_per_wall"],
                                       old["sim_per_wall"]))

scale = {
    "bench": "scale_users",
    "mode": scale_raw["mode"],
    "baseline": {"wall_s": SCALE_BASE_WALL_S,
                 "label": "pre-PR3 (sequential, deep-copy packets)"},
    # wall_s is the attach-storm sweep only, comparable with the frozen
    # baseline; the fluid axis is timed separately (fluid_wall_s).
    "current": {"wall_s": scale_raw["wall_s"], "threads": scale_raw["threads"],
                "thread_pool": scale_raw["thread_pool"],
                "fluid_wall_s": scale_raw["fluid_wall_s"],
                "fluid_threads": scale_raw["fluid_threads"],
                "rss_mode": scale_raw["rss_mode"]},
    "speedup": {"wall": round(SCALE_BASE_WALL_S / scale_raw["wall_s"], 2)},
    "instrumentation": instrumentation,
    "points": scale_raw["points"],
    "scale_curve": curve,
    "agreement": agreement,
    "thread_agreement": thread_agreement,
    # Measured MTTHO from the fig8 noisy-channel drive (policy A/B arms +
    # the ±20% calibration gate against routes.hpp's Table 1 target).
    "mttho": mttho,
    # Deterministic obs snapshot of the run (see DESIGN.md §9): SAP latency
    # histograms, attach/report counters, flight-recorder fingerprint.
    "metrics": scale_raw["metrics"],
    # Sharded-broker scaling + failover availability (DESIGN.md §12). The
    # hard gates re-checked here: bit-identical same-seed replay, zero lost
    # billing verdicts, zero verdict-content conflicts across the shard kill.
    "broker_shards": shards_raw,
}
assert shards_raw["replay_identical"], "broker shard replay diverged"
fo = shards_raw["failover"]
assert fo["verdicts_lost"] == 0, f"failover lost verdicts: {fo}"
assert fo["verdict_conflicts"] == 0, f"failover verdict conflicts: {fo}"
assert fo["takeovers"] > 0, f"failover trial saw no takeover: {fo}"
for p in shards_raw["scaling"]:
    assert p["point"]["verdicts_lost"] == 0, f"scaling point lost verdicts: {p}"
print("broker_shards: failover lost=0 conflicts=0, %d-point scaling curve"
      % len(shards_raw["scaling"]))
json.dump(scale, open("BENCH_scale.json", "w"), indent=2)
print("BENCH_scale.json: wall %.2fs (%.1fx), fluid curve %.2fs to %dk UEs"
      % (scale_raw["wall_s"], SCALE_BASE_WALL_S / scale_raw["wall_s"],
         scale_raw["fluid_wall_s"], curve[-1]["n_ues"] // 1000))
print("mttho: measured %.2fs vs expected %.2fs (%s arm, %d handovers)"
      % (mttho["measured_s"], mttho["expected_s"], mttho["policy"],
         mttho["handovers"]))

if overhead_pct > 5.0:
    sys.exit("FAIL: instrumentation overhead %.2f%% exceeds the 5%% budget"
             % overhead_pct)
EOF

echo "bench.sh done (mode: $([[ "$SMOKE" == 1 ]] && echo smoke || echo full))"
