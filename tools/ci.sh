#!/usr/bin/env bash
# CI entry point: two-config matrix.
#
#   1. Debug + ASan/UBSan (leak checking ENABLED) — tier-1 tests, including
#      the Obs* observability suites. Memory bugs in the event-driven
#      callback soup are exactly the kind the sanitizers catch and unit
#      tests miss; the transport-layer socket cycles that used to force
#      detect_leaks=0 were broken up in PR 3.
#   2. Release — tier-1 tests at the optimization level users run, plus a
#      bench smoke run that validates the BENCH_*.json schema, the metrics
#      section, and the instrumentation-overhead budget.
#
# Usage: tools/ci.sh [--skip-sanitized]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1" exclude="$2"
  shift 2
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$(nproc)"
  # Tests are labeled unit / property / fuzz / scale (ctest -L <tier>
  # selects one). The fuzz corpus is excluded here and run in its own leg
  # below, where a violation also produces a shrunk repro file instead of a
  # bare failure. The scale-labeled runs (mid-size fluid sweeps and the
  # 1M-UE curve point) are Release-only — far too slow under the
  # sanitizers. The incremental-water-fill churn property tests are NOT
  # scale-labeled on purpose: they run in this ASan leg, where an
  # order-vector bookkeeping bug shows up as a concrete memory error.
  ctest --test-dir "$build_dir" --output-on-failure -LE "$exclude"
}

echo "=== sanitized build (Debug, address,undefined, leaks on) ==="
if [[ "${1:-}" != "--skip-sanitized" ]]; then
  run_suite build-asan 'fuzz|scale' -DCMAKE_BUILD_TYPE=Debug -DCB_SANITIZE=address,undefined
else
  echo "skipped (--skip-sanitized)"
fi

echo "=== attach-protocol conformance matrix (ASan/UBSan) ==="
# The differential protocol harness (DESIGN.md §14): every attach protocol
# (eps_aka | 5g_aka | sap | sap_resume) through the same seeded scenario
# matrix — clean attach, re-attach, handover, broker-unreachable, mid-attach
# chaos, replayed/expired/forged tickets — with key-agreement transcripts
# and same-seed fingerprints asserted. Run under the sanitizers: the ticket
# and batch-verify paths are new callback soup, exactly where ASan earns
# its keep. (The suite also runs in both tier-1 ctest legs above/below.)
if [[ "${1:-}" != "--skip-sanitized" ]]; then
  ./build-asan/tests/test_attach_protocols || {
    echo "attach conformance matrix FAILED under ASan/UBSan"
    exit 1
  }
  echo "attach conformance ok"
else
  echo "skipped (--skip-sanitized)"
fi

echo "=== RAN measurement-pipeline leg (ASan/UBSan, ctest -L ran) ==="
# The ran-labeled tests (channel purity, L3-filter/policy properties, drive-
# trace round-trips, fixture replays) re-run as their own leg so a
# measurement-loop failure is named in CI output rather than buried in the
# tier-1 wall. The neighbor-table swap-in-place refresh and the drive-sink
# append path are pointer-heavy per-tick code — sanitizer territory.
if [[ "${1:-}" != "--skip-sanitized" ]]; then
  ctest --test-dir build-asan --output-on-failure -L ran || {
    echo "RAN measurement-pipeline leg FAILED under ASan/UBSan"
    exit 1
  }
  echo "ran leg ok"
else
  echo "skipped (--skip-sanitized)"
fi

echo "=== thread-sanitized drain check (TSan, fluid parallel phase) ==="
# The bench's 1-vs-4-thread fingerprint gate is weak evidence against a data
# race in the FillPool: a preemption-timing-dependent race (e.g. a lagging
# worker crossing a drain-generation boundary) passes an output-equality
# check on virtually every run. TSan detects the unsynchronized accesses
# themselves, so run the multithreaded drain tests under it — small N is
# fine, every parallel-phase path (claim loop, outcome slots, generation
# retirement) executes regardless of population. TSan is incompatible with
# ASan, hence its own build; only the traffic test binary is built.
if [[ "${1:-}" != "--skip-sanitized" ]]; then
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCB_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)" --target test_traffic --target test_batch_verify
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/tests/test_traffic --gtest_filter='ScaleTraffic.FluidThreads*' || {
    echo "TSan drain check FAILED — data race in the parallel fill phase"
    exit 1
  }
  echo "TSan drain check ok"
  # Batch signature verification fans RSA work out to a worker pool
  # (DESIGN.md §14); the ticket-replay tests drive the same broker queue.
  # Output-equality checks can't see a preemption-timing race — TSan can.
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_batch_verify || {
    echo "TSan batch-verify check FAILED — data race in the verification pool"
    exit 1
  }
  echo "TSan batch-verify check ok"
else
  echo "skipped (--skip-sanitized)"
fi

echo "=== release build (incl. scale-labeled fluid tests) ==="
run_suite build fuzz -DCMAKE_BUILD_TYPE=Release

echo "=== packet-vs-fluid agreement gate (Release) ==="
# The hybrid traffic engine's correctness contract (DESIGN.md §11): the same
# seeded workload through fluid and packet fidelity must agree byte-exactly
# on delivered bytes + billing and within tolerance on completion times.
# --fluid-threads 4 runs the curve through the parallel reallocation drain,
# whose results must be bit-identical to serial (DESIGN.md §13) — the bench
# also re-checks that internally via its 1-vs-4-thread fingerprint gate.
# The bench exits nonzero on disagreement — a hard CI failure.
build/bench/bench_scale_users --smoke --fluid --fluid-threads 4 --no-metrics >/dev/null || {
  echo "agreement gate FAILED — rerun: build/bench/bench_scale_users --smoke --fluid --fluid-threads 4"
  exit 1
}
echo "agreement gate ok"

echo "=== sharded-broker chaos replay gate (Release) ==="
# Failover determinism (DESIGN.md §12): the same seeded shard-kill trial run
# twice must produce bit-identical fingerprints, lose zero billing verdicts,
# and author no conflicting verdicts. The bench exits nonzero on any of the
# three — a hard CI failure.
build/bench/bench_broker_shards --replay >/dev/null || {
  echo "chaos replay gate FAILED — rerun: build/bench/bench_broker_shards --replay"
  exit 1
}
echo "chaos replay gate ok"

echo "=== fuzz smoke (96-seed corpus + protocol-pinned sweeps, shrink-on-fail) ==="
# Full 96 seeds on the release binary (the corpus grew with the attach-
# protocol axis: ~20% of sampled scenarios are EPC baselines, ~40% of the
# SAP ones carry resumption tickets); a front slice of the same corpus on
# the sanitized one (≈35x slower), catching memory bugs the invariants
# can't. On violation cbfuzz exits nonzero after shrinking the failing
# seed to a minimal repro — the artifact to attach to the bug report.
run_fuzz() {
  if ! "$1" --seeds "$2" ${3:+--protocol "$3"} ${4:+--policy "$4"} --out fuzz_repro.json; then
    echo "fuzz smoke FAILED — minimal repro in fuzz_repro.json:"
    cat fuzz_repro.json
    exit 1
  fi
}
run_fuzz build/tools/cbfuzz 96
# Pinned sweeps: the same chaos schedules under each attach protocol, so
# every protocol sees every fault class regardless of the sampler's mix.
for proto in eps_aka 5g_aka sap_resume; do
  run_fuzz build/tools/cbfuzz 16 "$proto"
done
# Reselection-policy sweeps: the damped (ttt) and strawman (rank) policies
# pinned across the corpus so the ran.* invariants (margin evidence, hold
# times, change conservation) see both extremes under chaos, not just the
# sampler's policy mix.
for policy in ttt rank; do
  run_fuzz build/tools/cbfuzz 16 "" "$policy"
done
[[ -x build-asan/tools/cbfuzz ]] && run_fuzz build-asan/tools/cbfuzz 8

echo "=== bench smoke (schema check) ==="
tools/bench.sh --smoke
python3 - <<'EOF'
import json
sap = json.load(open("BENCH_sap.json"))
scale = json.load(open("BENCH_scale.json"))
for doc, keys in ((sap, ("bench", "mode", "baseline", "current", "speedup", "attach")),
                  (scale, ("bench", "mode", "baseline", "current", "speedup",
                           "instrumentation", "points", "scale_curve",
                           "agreement", "thread_agreement", "mttho", "metrics",
                           "broker_shards"))):
    missing = [k for k in keys if k not in doc]
    assert not missing, f"{doc.get('bench')}: missing keys {missing}"
assert sap["bench"] == "sap_crypto" and scale["bench"] == "scale_users"

# Attach-protocol suite (DESIGN.md §14): per-protocol attach-latency baseline
# plus the fig8 re-attach gate — sap_resume strictly below sap.
att = sap["attach"]
for k in ("baseline", "current", "fig8_reattach", "fig9_recovery"):
    assert k in att, f"attach: missing key {k}"
for p in ("eps_aka_ms", "5g_aka_ms", "sap_ms", "sap_resume_ms",
          "fig8_reattach_delta_ms"):
    assert p in att["current"] and p in att["baseline"], f"attach: missing {p}"
ra = att["fig8_reattach"]
assert ra["pass"] and ra["delta_ms"] > 0
assert ra["sap_resume"]["mean_ms"] < ra["sap"]["mean_ms"], \
    "sap_resume re-attach latency not strictly below sap"
assert ra["sap_resume"]["resumes"] > 0
for proto in ("sap", "sap_resume"):
    assert len(att["fig9_recovery"][proto]["windows_pct"]) == 9
assert all(k in scale["points"][0] for k in ("n_ues", "arch", "loss", "mean_ms",
                                             "p99_ms", "completed", "wall_s",
                                             "sim_s", "sim_per_wall"))

# Fluid scale curve + agreement gate (DESIGN.md §11): every point complete,
# wall/sim/RSS reported, and the two fidelity modes in agreement.
assert scale["current"]["threads"] >= 1 and "fluid_wall_s" in scale["current"]
assert scale["current"]["fluid_threads"] >= 1
assert scale["current"]["rss_mode"] in ("reset", "delta")
for p in scale["scale_curve"]:
    assert p["completed"] == p["n_ues"], f"incomplete scale point: {p}"
    assert all(k in p for k in ("wall_s", "sim_s", "sim_per_wall",
                                "peak_rss_mb", "events", "rate_events"))
assert scale["agreement"]["pass"], f"agreement gate failed: {scale['agreement']}"

# Parallel-drain determinism gate (DESIGN.md §13): same seed at 1 and N
# fluid threads must be bit-identical — fingerprint and metrics snapshot.
ta = scale["thread_agreement"]
assert ta["pass"] and ta["fingerprint_match"] and ta["metrics_match"], \
    f"fluid thread-count determinism failed: {ta}"
assert ta["threads"] > 1

# Measured-MTTHO section (DESIGN.md §15): Table 1's handover cadence as a
# measured output of the reselection loop, gated at ±20% of the calibration
# target, with all three policy arms (a3 / a3_ttt / rank) populated.
mt = scale["mttho"]
for k in ("route", "expected_s", "measured_s", "policy", "handovers",
          "arms", "pass"):
    assert k in mt, f"mttho: missing key {k}"
assert mt["pass"], f"mttho calibration gate failed: {mt}"
assert 0.8 * mt["expected_s"] <= mt["measured_s"] <= 1.2 * mt["expected_s"]
for arm in ("a3", "a3_ttt", "rank"):
    assert mt["arms"][arm]["handovers"] >= 2, f"mttho arm {arm} degenerate"

# Observability snapshot schema (DESIGN.md §9): the four sections, the SAP
# latency histogram with its full summary tuple, the attach + report-
# alignment counters, and the flight-recorder fingerprint.
m = scale["metrics"]
for section in ("counters", "gauges", "histograms", "trace"):
    assert section in m, f"metrics: missing section {section}"
for c in ("broker.sap.requests", "btelco.attaches", "broker.reports.ingested",
          "broker.reports.unpaired_expired"):
    assert c in m["counters"], f"metrics: missing counter {c}"
sap_hist = m["histograms"]["broker.sap_latency_ms"]
for k in ("count", "sum", "min", "max", "p50", "p95", "p99"):
    assert k in sap_hist, f"broker.sap_latency_ms: missing {k}"
assert sap_hist["count"] > 0
assert m["trace"]["fingerprint"].startswith("0x")
inst = scale["instrumentation"]
assert inst["overhead_pct"] <= inst["budget_pct"]

# Sharded-broker schema (DESIGN.md §12): the replay gate, the failover
# availability gate, and a scaling curve over 1/2/4/8 shards.
bs = scale["broker_shards"]
for k in ("smoke", "replay_identical", "failover", "scaling"):
    assert k in bs, f"broker_shards: missing key {k}"
assert bs["replay_identical"], "broker_shards: same-seed replay diverged"
for k in ("reports_ingested", "ingest_rps", "verdicts_paired", "verdicts_lost",
          "verdict_conflicts", "takeovers", "ack_p50_ms", "ack_p99_ms",
          "fingerprint"):
    assert k in bs["failover"], f"broker_shards.failover: missing {k}"
assert bs["failover"]["verdicts_lost"] == 0
assert bs["failover"]["verdict_conflicts"] == 0
assert bs["failover"]["takeovers"] > 0
assert [p["n_shards"] for p in bs["scaling"]] == [1, 2, 4, 8]
for p in bs["scaling"]:
    assert p["point"]["verdicts_lost"] == 0, f"scaling point lost verdicts: {p}"
print("BENCH_*.json schema ok (incl. metrics + broker_shards sections)")
EOF
# Smoke numbers are not representative — restore the committed full-run JSONs.
git checkout -- BENCH_sap.json BENCH_scale.json 2>/dev/null || true

echo "CI passed"
