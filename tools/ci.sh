#!/usr/bin/env bash
# CI entry point: build + test the tree twice — a plain RelWithDebInfo build
# and an ASan/UBSan build (memory bugs in the event-driven callback soup are
# exactly the kind the sanitizers catch and unit tests miss).
#
# Usage: tools/ci.sh [--skip-sanitized]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure
}

echo "=== plain build ==="
run_suite build

if [[ "${1:-}" != "--skip-sanitized" ]]; then
  echo "=== sanitized build (address,undefined) ==="
  # Leak checking stays off: the transport layer's socket callback webs hold
  # reference cycles that LSan flags at test exit (pre-existing; see
  # ROADMAP.md). ASan memory errors and UBSan stay fully enabled.
  export ASAN_OPTIONS="detect_leaks=0"
  run_suite build-asan -DCB_SANITIZE=address,undefined
fi

echo "CI passed"
