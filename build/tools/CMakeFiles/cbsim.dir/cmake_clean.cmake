file(REMOVE_RECURSE
  "CMakeFiles/cbsim.dir/cbsim.cpp.o"
  "CMakeFiles/cbsim.dir/cbsim.cpp.o.d"
  "cbsim"
  "cbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
