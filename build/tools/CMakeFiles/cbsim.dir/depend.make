# Empty dependencies file for cbsim.
# This may be replaced when dependencies are built.
