# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cbsim_attach "/root/repo/build/tools/cbsim" "attach" "--arch" "cb" "--n" "3")
set_tests_properties(cbsim_attach PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cbsim_storm "/root/repo/build/tools/cbsim" "storm" "--ues" "5")
set_tests_properties(cbsim_storm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
