file(REMOVE_RECURSE
  "libcb_net.a"
)
