# Empty compiler generated dependencies file for cb_net.
# This may be replaced when dependencies are built.
