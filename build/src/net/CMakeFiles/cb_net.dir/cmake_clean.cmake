file(REMOVE_RECURSE
  "CMakeFiles/cb_net.dir/address.cpp.o"
  "CMakeFiles/cb_net.dir/address.cpp.o.d"
  "CMakeFiles/cb_net.dir/link.cpp.o"
  "CMakeFiles/cb_net.dir/link.cpp.o.d"
  "CMakeFiles/cb_net.dir/network.cpp.o"
  "CMakeFiles/cb_net.dir/network.cpp.o.d"
  "CMakeFiles/cb_net.dir/node.cpp.o"
  "CMakeFiles/cb_net.dir/node.cpp.o.d"
  "libcb_net.a"
  "libcb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
