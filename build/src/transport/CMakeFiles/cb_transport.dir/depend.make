# Empty dependencies file for cb_transport.
# This may be replaced when dependencies are built.
