file(REMOVE_RECURSE
  "libcb_transport.a"
)
