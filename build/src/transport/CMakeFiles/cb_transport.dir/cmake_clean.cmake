file(REMOVE_RECURSE
  "CMakeFiles/cb_transport.dir/mptcp.cpp.o"
  "CMakeFiles/cb_transport.dir/mptcp.cpp.o.d"
  "CMakeFiles/cb_transport.dir/tcp.cpp.o"
  "CMakeFiles/cb_transport.dir/tcp.cpp.o.d"
  "libcb_transport.a"
  "libcb_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
