# Empty dependencies file for cb_sim.
# This may be replaced when dependencies are built.
