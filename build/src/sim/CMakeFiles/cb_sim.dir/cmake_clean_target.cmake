file(REMOVE_RECURSE
  "libcb_sim.a"
)
