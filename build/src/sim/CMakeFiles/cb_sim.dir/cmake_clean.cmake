file(REMOVE_RECURSE
  "CMakeFiles/cb_sim.dir/simulator.cpp.o"
  "CMakeFiles/cb_sim.dir/simulator.cpp.o.d"
  "libcb_sim.a"
  "libcb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
