# CMake generated Testfile for 
# Source directory: /root/repo/src/cellbricks
# Build directory: /root/repo/build/src/cellbricks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
