# Empty compiler generated dependencies file for cb_cellbricks.
# This may be replaced when dependencies are built.
