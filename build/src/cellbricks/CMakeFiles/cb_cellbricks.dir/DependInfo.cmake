
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellbricks/billing.cpp" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/billing.cpp.o" "gcc" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/billing.cpp.o.d"
  "/root/repo/src/cellbricks/brokerd.cpp" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/brokerd.cpp.o" "gcc" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/brokerd.cpp.o.d"
  "/root/repo/src/cellbricks/btelco.cpp" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/btelco.cpp.o" "gcc" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/btelco.cpp.o.d"
  "/root/repo/src/cellbricks/qos.cpp" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/qos.cpp.o" "gcc" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/qos.cpp.o.d"
  "/root/repo/src/cellbricks/reputation.cpp" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/reputation.cpp.o" "gcc" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/reputation.cpp.o.d"
  "/root/repo/src/cellbricks/sap.cpp" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/sap.cpp.o" "gcc" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/sap.cpp.o.d"
  "/root/repo/src/cellbricks/ue_agent.cpp" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/ue_agent.cpp.o" "gcc" "src/cellbricks/CMakeFiles/cb_cellbricks.dir/ue_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/cb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/cb_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/cb_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
