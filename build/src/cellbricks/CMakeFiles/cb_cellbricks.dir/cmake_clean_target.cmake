file(REMOVE_RECURSE
  "libcb_cellbricks.a"
)
