file(REMOVE_RECURSE
  "CMakeFiles/cb_cellbricks.dir/billing.cpp.o"
  "CMakeFiles/cb_cellbricks.dir/billing.cpp.o.d"
  "CMakeFiles/cb_cellbricks.dir/brokerd.cpp.o"
  "CMakeFiles/cb_cellbricks.dir/brokerd.cpp.o.d"
  "CMakeFiles/cb_cellbricks.dir/btelco.cpp.o"
  "CMakeFiles/cb_cellbricks.dir/btelco.cpp.o.d"
  "CMakeFiles/cb_cellbricks.dir/qos.cpp.o"
  "CMakeFiles/cb_cellbricks.dir/qos.cpp.o.d"
  "CMakeFiles/cb_cellbricks.dir/reputation.cpp.o"
  "CMakeFiles/cb_cellbricks.dir/reputation.cpp.o.d"
  "CMakeFiles/cb_cellbricks.dir/sap.cpp.o"
  "CMakeFiles/cb_cellbricks.dir/sap.cpp.o.d"
  "CMakeFiles/cb_cellbricks.dir/ue_agent.cpp.o"
  "CMakeFiles/cb_cellbricks.dir/ue_agent.cpp.o.d"
  "libcb_cellbricks.a"
  "libcb_cellbricks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_cellbricks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
