file(REMOVE_RECURSE
  "CMakeFiles/cb_ran.dir/radio.cpp.o"
  "CMakeFiles/cb_ran.dir/radio.cpp.o.d"
  "CMakeFiles/cb_ran.dir/rate_policy.cpp.o"
  "CMakeFiles/cb_ran.dir/rate_policy.cpp.o.d"
  "CMakeFiles/cb_ran.dir/trajectory.cpp.o"
  "CMakeFiles/cb_ran.dir/trajectory.cpp.o.d"
  "CMakeFiles/cb_ran.dir/ue_radio.cpp.o"
  "CMakeFiles/cb_ran.dir/ue_radio.cpp.o.d"
  "libcb_ran.a"
  "libcb_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
