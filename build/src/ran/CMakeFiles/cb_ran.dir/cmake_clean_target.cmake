file(REMOVE_RECURSE
  "libcb_ran.a"
)
