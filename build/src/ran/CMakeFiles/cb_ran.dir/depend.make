# Empty dependencies file for cb_ran.
# This may be replaced when dependencies are built.
