
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ran/radio.cpp" "src/ran/CMakeFiles/cb_ran.dir/radio.cpp.o" "gcc" "src/ran/CMakeFiles/cb_ran.dir/radio.cpp.o.d"
  "/root/repo/src/ran/rate_policy.cpp" "src/ran/CMakeFiles/cb_ran.dir/rate_policy.cpp.o" "gcc" "src/ran/CMakeFiles/cb_ran.dir/rate_policy.cpp.o.d"
  "/root/repo/src/ran/trajectory.cpp" "src/ran/CMakeFiles/cb_ran.dir/trajectory.cpp.o" "gcc" "src/ran/CMakeFiles/cb_ran.dir/trajectory.cpp.o.d"
  "/root/repo/src/ran/ue_radio.cpp" "src/ran/CMakeFiles/cb_ran.dir/ue_radio.cpp.o" "gcc" "src/ran/CMakeFiles/cb_ran.dir/ue_radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
