file(REMOVE_RECURSE
  "libcb_crypto.a"
)
