
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bignum.cpp" "src/crypto/CMakeFiles/cb_crypto.dir/bignum.cpp.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/bignum.cpp.o.d"
  "/root/repo/src/crypto/box.cpp" "src/crypto/CMakeFiles/cb_crypto.dir/box.cpp.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/box.cpp.o.d"
  "/root/repo/src/crypto/cert.cpp" "src/crypto/CMakeFiles/cb_crypto.dir/cert.cpp.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/cert.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/cb_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/cb_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/cb_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/cb_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
