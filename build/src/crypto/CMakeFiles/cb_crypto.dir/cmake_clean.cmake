file(REMOVE_RECURSE
  "CMakeFiles/cb_crypto.dir/bignum.cpp.o"
  "CMakeFiles/cb_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/cb_crypto.dir/box.cpp.o"
  "CMakeFiles/cb_crypto.dir/box.cpp.o.d"
  "CMakeFiles/cb_crypto.dir/cert.cpp.o"
  "CMakeFiles/cb_crypto.dir/cert.cpp.o.d"
  "CMakeFiles/cb_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/cb_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/cb_crypto.dir/hmac.cpp.o"
  "CMakeFiles/cb_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/cb_crypto.dir/rsa.cpp.o"
  "CMakeFiles/cb_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/cb_crypto.dir/sha256.cpp.o"
  "CMakeFiles/cb_crypto.dir/sha256.cpp.o.d"
  "libcb_crypto.a"
  "libcb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
