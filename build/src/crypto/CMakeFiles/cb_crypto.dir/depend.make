# Empty dependencies file for cb_crypto.
# This may be replaced when dependencies are built.
