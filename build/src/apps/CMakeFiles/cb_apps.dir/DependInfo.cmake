
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/iperf.cpp" "src/apps/CMakeFiles/cb_apps.dir/iperf.cpp.o" "gcc" "src/apps/CMakeFiles/cb_apps.dir/iperf.cpp.o.d"
  "/root/repo/src/apps/ping.cpp" "src/apps/CMakeFiles/cb_apps.dir/ping.cpp.o" "gcc" "src/apps/CMakeFiles/cb_apps.dir/ping.cpp.o.d"
  "/root/repo/src/apps/video.cpp" "src/apps/CMakeFiles/cb_apps.dir/video.cpp.o" "gcc" "src/apps/CMakeFiles/cb_apps.dir/video.cpp.o.d"
  "/root/repo/src/apps/voip.cpp" "src/apps/CMakeFiles/cb_apps.dir/voip.cpp.o" "gcc" "src/apps/CMakeFiles/cb_apps.dir/voip.cpp.o.d"
  "/root/repo/src/apps/web.cpp" "src/apps/CMakeFiles/cb_apps.dir/web.cpp.o" "gcc" "src/apps/CMakeFiles/cb_apps.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/cb_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
