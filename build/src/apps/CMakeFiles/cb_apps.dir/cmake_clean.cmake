file(REMOVE_RECURSE
  "CMakeFiles/cb_apps.dir/iperf.cpp.o"
  "CMakeFiles/cb_apps.dir/iperf.cpp.o.d"
  "CMakeFiles/cb_apps.dir/ping.cpp.o"
  "CMakeFiles/cb_apps.dir/ping.cpp.o.d"
  "CMakeFiles/cb_apps.dir/video.cpp.o"
  "CMakeFiles/cb_apps.dir/video.cpp.o.d"
  "CMakeFiles/cb_apps.dir/voip.cpp.o"
  "CMakeFiles/cb_apps.dir/voip.cpp.o.d"
  "CMakeFiles/cb_apps.dir/web.cpp.o"
  "CMakeFiles/cb_apps.dir/web.cpp.o.d"
  "libcb_apps.a"
  "libcb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
