# Empty dependencies file for cb_apps.
# This may be replaced when dependencies are built.
