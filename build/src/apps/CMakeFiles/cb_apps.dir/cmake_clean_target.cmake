file(REMOVE_RECURSE
  "libcb_apps.a"
)
