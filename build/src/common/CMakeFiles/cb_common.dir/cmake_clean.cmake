file(REMOVE_RECURSE
  "CMakeFiles/cb_common.dir/bytes.cpp.o"
  "CMakeFiles/cb_common.dir/bytes.cpp.o.d"
  "CMakeFiles/cb_common.dir/log.cpp.o"
  "CMakeFiles/cb_common.dir/log.cpp.o.d"
  "CMakeFiles/cb_common.dir/rng.cpp.o"
  "CMakeFiles/cb_common.dir/rng.cpp.o.d"
  "CMakeFiles/cb_common.dir/stats.cpp.o"
  "CMakeFiles/cb_common.dir/stats.cpp.o.d"
  "libcb_common.a"
  "libcb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
