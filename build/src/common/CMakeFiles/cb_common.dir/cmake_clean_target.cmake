file(REMOVE_RECURSE
  "libcb_common.a"
)
