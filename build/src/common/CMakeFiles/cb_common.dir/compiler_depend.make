# Empty compiler generated dependencies file for cb_common.
# This may be replaced when dependencies are built.
