# Empty dependencies file for cb_scenario.
# This may be replaced when dependencies are built.
