file(REMOVE_RECURSE
  "libcb_scenario.a"
)
