file(REMOVE_RECURSE
  "CMakeFiles/cb_scenario.dir/attach_experiment.cpp.o"
  "CMakeFiles/cb_scenario.dir/attach_experiment.cpp.o.d"
  "CMakeFiles/cb_scenario.dir/table1.cpp.o"
  "CMakeFiles/cb_scenario.dir/table1.cpp.o.d"
  "CMakeFiles/cb_scenario.dir/world.cpp.o"
  "CMakeFiles/cb_scenario.dir/world.cpp.o.d"
  "libcb_scenario.a"
  "libcb_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
