file(REMOVE_RECURSE
  "CMakeFiles/cb_epc.dir/auth.cpp.o"
  "CMakeFiles/cb_epc.dir/auth.cpp.o.d"
  "CMakeFiles/cb_epc.dir/hss.cpp.o"
  "CMakeFiles/cb_epc.dir/hss.cpp.o.d"
  "CMakeFiles/cb_epc.dir/mme.cpp.o"
  "CMakeFiles/cb_epc.dir/mme.cpp.o.d"
  "CMakeFiles/cb_epc.dir/spgw.cpp.o"
  "CMakeFiles/cb_epc.dir/spgw.cpp.o.d"
  "CMakeFiles/cb_epc.dir/ue_nas.cpp.o"
  "CMakeFiles/cb_epc.dir/ue_nas.cpp.o.d"
  "libcb_epc.a"
  "libcb_epc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
