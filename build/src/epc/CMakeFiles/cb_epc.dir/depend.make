# Empty dependencies file for cb_epc.
# This may be replaced when dependencies are built.
