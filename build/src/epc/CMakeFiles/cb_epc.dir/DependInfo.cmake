
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/epc/auth.cpp" "src/epc/CMakeFiles/cb_epc.dir/auth.cpp.o" "gcc" "src/epc/CMakeFiles/cb_epc.dir/auth.cpp.o.d"
  "/root/repo/src/epc/hss.cpp" "src/epc/CMakeFiles/cb_epc.dir/hss.cpp.o" "gcc" "src/epc/CMakeFiles/cb_epc.dir/hss.cpp.o.d"
  "/root/repo/src/epc/mme.cpp" "src/epc/CMakeFiles/cb_epc.dir/mme.cpp.o" "gcc" "src/epc/CMakeFiles/cb_epc.dir/mme.cpp.o.d"
  "/root/repo/src/epc/spgw.cpp" "src/epc/CMakeFiles/cb_epc.dir/spgw.cpp.o" "gcc" "src/epc/CMakeFiles/cb_epc.dir/spgw.cpp.o.d"
  "/root/repo/src/epc/ue_nas.cpp" "src/epc/CMakeFiles/cb_epc.dir/ue_nas.cpp.o" "gcc" "src/epc/CMakeFiles/cb_epc.dir/ue_nas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/cb_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
