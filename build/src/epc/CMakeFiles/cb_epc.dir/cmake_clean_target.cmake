file(REMOVE_RECURSE
  "libcb_epc.a"
)
