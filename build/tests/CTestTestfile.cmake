# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_mptcp[1]_include.cmake")
include("/root/repo/build/tests/test_ran[1]_include.cmake")
include("/root/repo/build/tests/test_epc[1]_include.cmake")
include("/root/repo/build/tests/test_sap[1]_include.cmake")
include("/root/repo/build/tests/test_billing[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_cellbricks[1]_include.cmake")
include("/root/repo/build/tests/test_transport_units[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_extra[1]_include.cmake")
