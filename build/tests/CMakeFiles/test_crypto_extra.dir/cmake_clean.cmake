file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_extra.dir/test_crypto_extra.cpp.o"
  "CMakeFiles/test_crypto_extra.dir/test_crypto_extra.cpp.o.d"
  "test_crypto_extra"
  "test_crypto_extra.pdb"
  "test_crypto_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
