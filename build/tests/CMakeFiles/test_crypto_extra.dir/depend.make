# Empty dependencies file for test_crypto_extra.
# This may be replaced when dependencies are built.
