file(REMOVE_RECURSE
  "CMakeFiles/test_cellbricks.dir/test_cellbricks.cpp.o"
  "CMakeFiles/test_cellbricks.dir/test_cellbricks.cpp.o.d"
  "test_cellbricks"
  "test_cellbricks.pdb"
  "test_cellbricks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cellbricks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
