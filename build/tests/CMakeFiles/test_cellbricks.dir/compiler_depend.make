# Empty compiler generated dependencies file for test_cellbricks.
# This may be replaced when dependencies are built.
