# Empty dependencies file for test_epc.
# This may be replaced when dependencies are built.
