file(REMOVE_RECURSE
  "CMakeFiles/test_epc.dir/test_epc.cpp.o"
  "CMakeFiles/test_epc.dir/test_epc.cpp.o.d"
  "test_epc"
  "test_epc.pdb"
  "test_epc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
