file(REMOVE_RECURSE
  "CMakeFiles/test_billing.dir/test_billing.cpp.o"
  "CMakeFiles/test_billing.dir/test_billing.cpp.o.d"
  "test_billing"
  "test_billing.pdb"
  "test_billing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
