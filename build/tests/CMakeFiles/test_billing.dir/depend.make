# Empty dependencies file for test_billing.
# This may be replaced when dependencies are built.
