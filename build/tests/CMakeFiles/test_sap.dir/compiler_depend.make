# Empty compiler generated dependencies file for test_sap.
# This may be replaced when dependencies are built.
