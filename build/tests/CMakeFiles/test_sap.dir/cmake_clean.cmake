file(REMOVE_RECURSE
  "CMakeFiles/test_sap.dir/test_sap.cpp.o"
  "CMakeFiles/test_sap.dir/test_sap.cpp.o.d"
  "test_sap"
  "test_sap.pdb"
  "test_sap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
