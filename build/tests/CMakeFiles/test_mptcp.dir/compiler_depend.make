# Empty compiler generated dependencies file for test_mptcp.
# This may be replaced when dependencies are built.
