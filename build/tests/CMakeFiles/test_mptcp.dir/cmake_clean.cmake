file(REMOVE_RECURSE
  "CMakeFiles/test_mptcp.dir/test_mptcp.cpp.o"
  "CMakeFiles/test_mptcp.dir/test_mptcp.cpp.o.d"
  "test_mptcp"
  "test_mptcp.pdb"
  "test_mptcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
