# Empty compiler generated dependencies file for test_ran.
# This may be replaced when dependencies are built.
