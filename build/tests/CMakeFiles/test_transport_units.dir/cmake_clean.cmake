file(REMOVE_RECURSE
  "CMakeFiles/test_transport_units.dir/test_transport_units.cpp.o"
  "CMakeFiles/test_transport_units.dir/test_transport_units.cpp.o.d"
  "test_transport_units"
  "test_transport_units.pdb"
  "test_transport_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
