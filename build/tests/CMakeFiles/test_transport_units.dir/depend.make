# Empty dependencies file for test_transport_units.
# This may be replaced when dependencies are built.
