# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_billing_audit "/root/repo/build/examples/billing_audit")
set_tests_properties(example_billing_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_private_network "/root/repo/build/examples/private_network")
set_tests_properties(example_private_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
