file(REMOVE_RECURSE
  "CMakeFiles/billing_audit.dir/billing_audit.cpp.o"
  "CMakeFiles/billing_audit.dir/billing_audit.cpp.o.d"
  "billing_audit"
  "billing_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
