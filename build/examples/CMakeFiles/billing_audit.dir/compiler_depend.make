# Empty compiler generated dependencies file for billing_audit.
# This may be replaced when dependencies are built.
