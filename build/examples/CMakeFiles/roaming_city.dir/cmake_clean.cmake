file(REMOVE_RECURSE
  "CMakeFiles/roaming_city.dir/roaming_city.cpp.o"
  "CMakeFiles/roaming_city.dir/roaming_city.cpp.o.d"
  "roaming_city"
  "roaming_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roaming_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
