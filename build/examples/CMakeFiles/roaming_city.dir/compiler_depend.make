# Empty compiler generated dependencies file for roaming_city.
# This may be replaced when dependencies are built.
