# Empty dependencies file for private_network.
# This may be replaced when dependencies are built.
