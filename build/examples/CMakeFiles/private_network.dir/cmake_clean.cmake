file(REMOVE_RECURSE
  "CMakeFiles/private_network.dir/private_network.cpp.o"
  "CMakeFiles/private_network.dir/private_network.cpp.o.d"
  "private_network"
  "private_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
