file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_day_night.dir/bench_fig10_day_night.cpp.o"
  "CMakeFiles/bench_fig10_day_night.dir/bench_fig10_day_night.cpp.o.d"
  "bench_fig10_day_night"
  "bench_fig10_day_night.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_day_night.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
