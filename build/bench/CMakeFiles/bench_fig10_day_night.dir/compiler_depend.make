# Empty compiler generated dependencies file for bench_fig10_day_night.
# This may be replaced when dependencies are built.
