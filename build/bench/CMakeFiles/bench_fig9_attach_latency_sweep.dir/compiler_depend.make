# Empty compiler generated dependencies file for bench_fig9_attach_latency_sweep.
# This may be replaced when dependencies are built.
