# Empty dependencies file for bench_fig7_attach_latency.
# This may be replaced when dependencies are built.
