
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_attach_latency.cpp" "bench/CMakeFiles/bench_fig7_attach_latency.dir/bench_fig7_attach_latency.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_attach_latency.dir/bench_fig7_attach_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/cb_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/epc/CMakeFiles/cb_epc.dir/DependInfo.cmake"
  "/root/repo/build/src/cellbricks/CMakeFiles/cb_cellbricks.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/cb_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/cb_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
