file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_attach_latency.dir/bench_fig7_attach_latency.cpp.o"
  "CMakeFiles/bench_fig7_attach_latency.dir/bench_fig7_attach_latency.cpp.o.d"
  "bench_fig7_attach_latency"
  "bench_fig7_attach_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_attach_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
