# Empty compiler generated dependencies file for bench_scale_users.
# This may be replaced when dependencies are built.
