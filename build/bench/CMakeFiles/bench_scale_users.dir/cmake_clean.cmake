file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_users.dir/bench_scale_users.cpp.o"
  "CMakeFiles/bench_scale_users.dir/bench_scale_users.cpp.o.d"
  "bench_scale_users"
  "bench_scale_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
