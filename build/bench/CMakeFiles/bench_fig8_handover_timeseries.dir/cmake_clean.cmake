file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_handover_timeseries.dir/bench_fig8_handover_timeseries.cpp.o"
  "CMakeFiles/bench_fig8_handover_timeseries.dir/bench_fig8_handover_timeseries.cpp.o.d"
  "bench_fig8_handover_timeseries"
  "bench_fig8_handover_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_handover_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
