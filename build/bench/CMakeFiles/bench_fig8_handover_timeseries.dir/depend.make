# Empty dependencies file for bench_fig8_handover_timeseries.
# This may be replaced when dependencies are built.
