file(REMOVE_RECURSE
  "CMakeFiles/bench_sap_crypto.dir/bench_sap_crypto.cpp.o"
  "CMakeFiles/bench_sap_crypto.dir/bench_sap_crypto.cpp.o.d"
  "bench_sap_crypto"
  "bench_sap_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sap_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
