# Empty dependencies file for bench_sap_crypto.
# This may be replaced when dependencies are built.
