// Fig.7 experiment harness: measure end-to-end attachment latency (radio
// legs excluded, as in the paper) under both architectures, with the
// SubscriberDB/brokerd placed "local", in "us-west-1", or in "us-east-1",
// and break the latency down by module.
#pragma once

#include <string>
#include <vector>

#include "scenario/world.hpp"

namespace cb::scenario {

struct AttachPlacement {
  std::string name;
  Duration cloud_rtt;
};

inline std::vector<AttachPlacement> attach_placements() {
  return {{"local", Duration::millis(0.5)},
          {"us-west-1", Duration::millis(7.2)},
          {"us-east-1", Duration::millis(73.5)}};
}

struct AttachBreakdown {
  std::string placement;
  Architecture arch;
  AttachProtocol protocol = AttachProtocol::Default;
  double total_ms = 0.0;      // mean end-to-end attach latency (full attaches)
  double agw_core_ms = 0.0;   // AGW + SubscriberDB/brokerd processing
  double enb_ms = 0.0;        // eNB relay processing
  double ue_ms = 0.0;         // UE processing
  double other_ms = 0.0;      // remainder: dominated by AGW<->cloud RTT
  int attaches = 0;
  /// SapResume only: ticket-resumed re-attaches (mean latency + count) and
  /// resume attempts that fell back to a full SAP attach.
  double resume_ms = 0.0;
  int resumes = 0;
  int resume_fallbacks = 0;
};

/// Run `n` sequential attach/detach cycles and return the mean breakdown.
AttachBreakdown run_attach_experiment(Architecture arch, Duration cloud_rtt, int n,
                                      std::uint64_t seed = 1);

/// Protocol-axis variant (fig7 per-protocol rows): same cycle under an
/// explicit attach protocol. Under SapResume the first cycle is a full SAP
/// attach that mints the ticket; because a ticket is single-use per bTelco,
/// later cycles on the one-tower world alternate resume / fallback-and-remint
/// — `total_ms` averages the clean full attaches, `resume_ms` the resumes,
/// and fallback cycles (failed resume + full attach in one latency) are
/// excluded from both means.
AttachBreakdown run_attach_experiment(AttachProtocol protocol, Duration cloud_rtt, int n,
                                      std::uint64_t seed = 1);

/// Concurrent attach storm: `n_ues` all request attachment at once; returns
/// mean and p99 latency (scaling claim of §6 / queueing at brokerd).
struct AttachStorm {
  int n_ues = 0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  int completed = 0;
  /// Simulated seconds actually executed (storms stop at the last event,
  /// well before the 120 s guard) — feeds the bench's sim-per-wall ratio.
  double sim_s = 0.0;
};
AttachStorm run_attach_storm(Architecture arch, int n_ues, Duration cloud_rtt,
                             double radio_loss, std::uint64_t seed = 1);

}  // namespace cb::scenario
