#include "scenario/attach_experiment.hpp"

namespace cb::scenario {

AttachBreakdown run_attach_experiment(Architecture arch, Duration cloud_rtt, int n,
                                      std::uint64_t seed) {
  // The architecture's native protocol: bit-identical to the pre-protocol-
  // axis experiment (World resolves EpsAka -> Mno, Sap -> CellBricks).
  return run_attach_experiment(
      arch == Architecture::Mno ? AttachProtocol::EpsAka : AttachProtocol::Sap, cloud_rtt, n,
      seed);
}

AttachBreakdown run_attach_experiment(AttachProtocol protocol, Duration cloud_rtt, int n,
                                      std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.protocol = protocol;
  cfg.cloud_rtt = cloud_rtt;
  cfg.n_towers = 1;
  cfg.radio_loss = 0.0;
  // Keep the UE parked next to the tower.
  cfg.route = RouteSpec{"static", false, 0.1, 100.0, ran::RatePolicy::unlimited()};
  World world(cfg);
  auto& sim = world.simulator();
  const Architecture arch = world.config().arch;

  Summary latency_ms;  // clean full attaches
  Summary resume_ms;   // ticket-resumed attaches
  int cycles = 0;      // completed attach/detach cycles of any flavour
  for (int i = 0; i < n; ++i) {
    bool done = false;
    if (arch == Architecture::CellBricks) {
      const std::uint64_t resumes_before = world.ue_agent()->resumes_succeeded();
      const std::uint64_t fallbacks_before = world.ue_agent()->resume_fallbacks();
      world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr>) { done = true; });
      sim.run_for(Duration::s(30));
      if (done) {
        ++cycles;
        const double ms = world.ue_agent()->last_attach_latency().to_millis();
        if (world.ue_agent()->resumes_succeeded() > resumes_before) {
          resume_ms.add(ms);
        } else if (world.ue_agent()->resume_fallbacks() == fallbacks_before) {
          // Fallback cycles carry the failed-resume legs on top of the full
          // attach; folding them into either mean would skew it.
          latency_ms.add(ms);
        }
      }
      world.ue_agent()->detach();
    } else {
      world.ue_nas()->attach(1, [&](Result<net::Ipv4Addr>) { done = true; });
      sim.run_for(Duration::s(30));
      if (done) {
        ++cycles;
        latency_ms.add(world.ue_nas()->last_attach_latency().to_millis());
      }
      world.ue_nas()->detach();
    }
    sim.run_for(Duration::ms(100));
  }

  AttachBreakdown out;
  out.arch = arch;
  out.protocol = world.protocol();
  out.attaches = static_cast<int>(latency_ms.count());
  out.total_ms = latency_ms.empty() ? 0.0 : latency_ms.mean();
  out.resume_ms = resume_ms.empty() ? 0.0 : resume_ms.mean();
  out.resumes = static_cast<int>(resume_ms.count());
  if (arch == Architecture::CellBricks) {
    out.resume_fallbacks = static_cast<int>(world.ue_agent()->resume_fallbacks());
  }
  // Busy time accrues over every completed cycle, resumes included.
  const double denom = std::max(1.0, static_cast<double>(cycles));
  if (arch == Architecture::CellBricks) {
    out.agw_core_ms = (world.btelco(0)->busy_time().to_millis() +
                       world.brokerd()->sap_busy_time().to_millis()) /
                      denom;
    out.enb_ms = world.ue_agent()->enb_busy_time().to_millis() / denom;
    out.ue_ms = world.ue_agent()->ue_busy_time().to_millis() / denom;
  } else {
    out.agw_core_ms =
        (world.mme()->busy_time().to_millis() + world.hss()->busy_time().to_millis()) / denom;
    out.enb_ms = world.ue_nas()->enb_busy_time().to_millis() / denom;
    out.ue_ms = world.ue_nas()->ue_busy_time().to_millis() / denom;
  }
  out.other_ms = std::max(0.0, out.total_ms - out.agw_core_ms - out.enb_ms - out.ue_ms);
  return out;
}

AttachStorm run_attach_storm(Architecture arch, int n_ues, Duration cloud_rtt,
                             double control_loss, std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Network network(sim);
  Rng key_rng = sim.rng().fork(0x570);

  net::Node* tower = network.add_node("tower");
  net::Node* cloud = network.add_node("cloud");
  const net::Ipv4Addr cloud_addr(2, 2, 2, 2);
  network.register_address(cloud_addr, cloud);
  network.register_address(net::Ipv4Addr(4, 0, 0, 1), tower);
  net::LinkParams control{.rate_bps = 1e9, .delay = cloud_rtt / 2};
  control.loss = control_loss;
  network.connect(tower, cloud, control);
  network.recompute_routes();

  Summary latency_ms;
  int completed = 0;

  if (arch == Architecture::CellBricks) {
    crypto::CertificateAuthority ca("root", key_rng, 512);
    const TimePoint forever = TimePoint::zero() + Duration::s(1e9);
    auto broker_keys = crypto::RsaKeyPair::generate(key_rng, 512);
    auto broker_cert = ca.issue("broker", broker_keys.public_key(), TimePoint::zero(), forever);
    cellbricks::SapBroker sap_broker("broker", std::move(broker_keys), broker_cert,
                                     ca.public_key());
    const crypto::RsaPublicKey broker_pk = broker_cert.key();
    cellbricks::Brokerd brokerd(*cloud, std::move(sap_broker));

    auto telco_keys = crypto::RsaKeyPair::generate(key_rng, 512);
    auto telco_cert = ca.issue("telco", telco_keys.public_key(), TimePoint::zero(), forever);
    cellbricks::SapTelco sap_telco("telco", std::move(telco_keys), telco_cert,
                                   ca.public_key());
    cellbricks::Btelco telco(network, *tower, std::move(sap_telco), broker_cert,
                             net::EndPoint{cloud_addr, cellbricks::kBrokerPort});

    // One key pair reused across UEs keeps setup time linear-in-one-keygen;
    // each UE still runs the full protocol independently.
    auto ue_keys = crypto::RsaKeyPair::generate(key_rng, 512);
    struct StormUe {
      net::Node* node;
      net::Link* radio;
      std::unique_ptr<cellbricks::SapUe> sap;
    };
    std::vector<StormUe> ues;
    for (int i = 0; i < n_ues; ++i) {
      const std::string id = "user-" + std::to_string(i);
      brokerd.add_subscriber(id, ue_keys.public_key());
      net::Node* node = network.add_node("ue-" + std::to_string(i));
      net::Link* radio = network.connect(node, tower, net::LinkParams{.rate_bps = 50e6});
      ues.push_back({node, radio,
                     std::make_unique<cellbricks::SapUe>(id, "broker",
                                                         crypto::RsaKeyPair(ue_keys),
                                                         broker_pk)});
    }
    network.recompute_routes();

    Rng rng = sim.rng().fork(0x99);
    for (auto& ue : ues) {
      // Model only the protocol path: craft at t=0, measure to completion.
      const TimePoint t0 = sim.now();
      Bytes req = ue.sap->make_auth_req("telco", rng);
      telco.handle_attach(std::move(req), ue.node, ue.radio,
                          [&, t0, sap = ue.sap.get()](
                              Result<std::pair<Bytes, net::Ipv4Addr>> result) {
                            if (!result.ok()) return;
                            if (!sap->process_auth_resp(result.value().first).ok()) return;
                            latency_ms.add((sim.now() - t0).to_millis());
                            ++completed;
                          });
    }
    sim.run_for(Duration::s(120));
  } else {
    epc::Hss hss(*cloud, epc::EpcProcProfile{}.hss_req);
    network.recompute_routes();
    epc::SgwPgw spgw(network, *tower, 10);
    epc::Mme mme(*tower, spgw, net::EndPoint{cloud_addr, epc::kHssPort});
    struct StormUe {
      net::Node* node;
      net::Link* radio;
    };
    std::vector<StormUe> ues;
    for (int i = 0; i < n_ues; ++i) {
      const std::string imsi = "imsi-" + std::to_string(i);
      hss.add_subscriber(imsi, Bytes(32, 0x42));
      net::Node* node = network.add_node("ue-" + std::to_string(i));
      net::Link* radio = network.connect(node, tower, net::LinkParams{.rate_bps = 50e6});
      ues.push_back({node, radio});
    }
    network.recompute_routes();

    for (int i = 0; i < n_ues; ++i) {
      const std::string imsi = "imsi-" + std::to_string(i);
      const Bytes k(32, 0x42);
      const TimePoint t0 = sim.now();
      epc::Mme::AttachHooks hooks;
      hooks.challenge = [k](Bytes rand, Bytes autn, std::function<void(Bytes)> respond) {
        if (epc::verify_autn(k, rand, autn)) respond(epc::compute_res(k, rand));
      };
      hooks.smc = [](std::function<void()> complete) { complete(); };
      hooks.done = [&, t0](Result<net::Ipv4Addr> result) {
        if (!result.ok()) return;
        latency_ms.add((sim.now() - t0).to_millis());
        ++completed;
      };
      mme.attach(imsi, ues[static_cast<std::size_t>(i)].node,
                 tower, ues[static_cast<std::size_t>(i)].radio, std::move(hooks));
    }
    sim.run_for(Duration::s(120));
  }

  AttachStorm out;
  out.n_ues = n_ues;
  out.completed = completed;
  // run_for advances the clock to its deadline even once idle, so report
  // the busy span instead: everything happens in [0, last completion].
  if (!latency_ms.empty()) {
    out.mean_ms = latency_ms.mean();
    out.p99_ms = latency_ms.percentile(99);
    out.sim_s = latency_ms.max() / 1000.0;
  }
  return out;
}

}  // namespace cb::scenario
