#include "scenario/world.hpp"

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace cb::scenario {

namespace {
// One-way WAN legs chosen so the UE <-> server RTT is ~46 ms (the paper's
// measured ping p50 over T-Mobile to us-west EC2).
constexpr Duration kRadioDelay = Duration::ms(4);
constexpr Duration kBackhaulDelay = Duration::ms(8);  // tower/AGW -> internet
constexpr Duration kServerDelay = Duration::ms(11);   // internet -> server
}  // namespace

World::World(WorldConfig config) : config_(config), sim_(config.seed), network_(sim_) {
  // Resolve the protocol axis before building (the architecture it selects
  // shapes the topology's provider naming and which core gets built).
  protocol_ = config_.protocol;
  if (protocol_ == AttachProtocol::Default) {
    protocol_ = config_.arch == Architecture::Mno ? AttachProtocol::EpsAka
                                                  : AttachProtocol::Sap;
  } else if (protocol_ == AttachProtocol::EpsAka || protocol_ == AttachProtocol::Aka5g) {
    config_.arch = Architecture::Mno;
  } else {
    config_.arch = Architecture::CellBricks;
  }
  // The shard replication protocol has no ResumeNotify: degrade to plain
  // SAP rather than serve resumes the settlement log would never see.
  if (protocol_ == AttachProtocol::SapResume && config_.broker_shards > 1) {
    protocol_ = AttachProtocol::Sap;
    resume_degraded_ = true;
    obs::inc(obs::counter("world.sap_resume_degraded"));
    CB_LOG(Warn, "world") << "sap_resume degraded to sap: sharded broker ("
                          << config_.broker_shards
                          << " shards) has no ResumeNotify";
  }
  build_topology();
  if (config_.arch == Architecture::Mno) {
    build_mno();
  } else {
    build_cellbricks();
  }
}

World::~World() = default;

void World::build_topology() {
  internet_ = network_.add_node("internet");
  server_ = network_.add_node("server");
  cloud_ = network_.add_node("cloud");
  ue_ = network_.add_node("ue");

  server_addr_ = net::Ipv4Addr(1, 1, 1, 1);
  cloud_addr_ = net::Ipv4Addr(2, 2, 2, 2);
  network_.register_address(server_addr_, server_);
  network_.register_address(cloud_addr_, cloud_);

  network_.connect(internet_, server_,
                   net::LinkParams{.rate_bps = 10e9, .delay = kServerDelay});

  // Towers along a line; each tower gets a backhaul to the internet, a
  // dedicated control path to the cloud (delay = RTT/2), and this UE's
  // radio link (down until attached).
  const double spacing = config_.route.tower_spacing_m;
  for (int i = 0; i < config_.n_towers; ++i) {
    net::Node* tower = network_.add_node("tower-" + std::to_string(i));
    towers_.push_back(tower);
    network_.register_address(net::Ipv4Addr(4, 0, static_cast<std::uint8_t>(i >> 8),
                                            static_cast<std::uint8_t>(i + 1)),
                              tower);
    const auto cell = static_cast<ran::CellId>(i + 1);

    ran::Cell c;
    c.id = cell;
    c.position = ran::Point{spacing * i, 0.0};
    c.provider = config_.arch == Architecture::Mno ? "mno" : "btelco-" + std::to_string(i);
    env_.add_cell(c);

    network_.connect(tower, internet_,
                     net::LinkParams{.rate_bps = 10e9, .delay = kBackhaulDelay});
    cloud_links_.push_back(network_.connect(
        tower, cloud_, net::LinkParams{.rate_bps = 1e9, .delay = config_.cloud_rtt / 2}));

    net::LinkParams radio{.rate_bps = 50e6, .delay = kRadioDelay};
    radio.loss = config_.radio_loss;
    // Per-UE buffer in the eNB scheduler: large enough for the night-policy
    // BDP, small enough to avoid multi-second bufferbloat at day rates.
    radio.queue_bytes = 128 * 1024;
    net::Link* radio_link = network_.connect(ue_, tower, radio);
    radio_link->set_up(false);
    ran_map_.add(cell, ran::TowerSite{tower, radio_link});
  }
  network_.recompute_routes();

  // The UE starts at the first tower and drives the full line.
  const double route_len = spacing * (config_.n_towers - 1);
  ran::UeRadioConfig radio_cfg = config_.radio_config;
  if (radio_cfg.channel.seed == 0) radio_cfg.channel.seed = config_.seed;
  radio_ = std::make_unique<ran::UeRadio>(
      sim_, env_, ran::Trajectory::line(route_len, config_.route.speed_mps), radio_cfg);

  ue_tcp_ = std::make_unique<transport::TcpStack>(*ue_);
  server_tcp_ = std::make_unique<transport::TcpStack>(*server_);
  transport::MptcpConfig mcfg;
  mcfg.address_wait = config_.mptcp_address_wait;
  ue_mptcp_ = std::make_unique<transport::MptcpStack>(*ue_, *ue_tcp_, mcfg);
  server_mptcp_ = std::make_unique<transport::MptcpStack>(*server_, *server_tcp_, mcfg);
}

void World::install_shaper(ran::CellId cell) {
  shaper_.reset();
  if (cell == 0) return;
  const ran::TowerSite site = ran_map_.site(cell);
  const ran::RatePolicy policy =
      config_.unlimited_policy ? ran::RatePolicy::unlimited() : config_.route.policy;
  shaper_ = std::make_unique<ran::BearerShaper>(
      sim_, *site.radio_link, site.node, policy, [this, cell] {
        return ran::RadioEnvironment::achievable_rate_bps(env_.cell(cell),
                                                          radio_->position());
      });
}

void World::build_mno() {
  agw_ = network_.add_node("agw");
  // The AGW sits between the towers and the internet; in MNO mode all
  // subscriber traffic is anchored there (SPGW). Control path to the cloud
  // carries the S6A traffic.
  network_.connect(agw_, internet_, net::LinkParams{.rate_bps = 10e9, .delay = Duration::ms(6)});
  network_.connect(agw_, cloud_, net::LinkParams{.rate_bps = 1e9, .delay = config_.cloud_rtt / 2});
  for (net::Node* tower : towers_) {
    network_.connect(tower, agw_, net::LinkParams{.rate_bps = 10e9, .delay = Duration::ms(2)});
  }
  const net::Ipv4Addr agw_addr(3, 3, 3, 3);
  network_.register_address(agw_addr, agw_);
  network_.recompute_routes();

  hss_ = std::make_unique<epc::Hss>(*cloud_, epc::EpcProcProfile{}.hss_req);
  hss_->add_subscriber("imsi-001", Bytes(32, 0x42));
  spgw_ = std::make_unique<epc::SgwPgw>(network_, *agw_, /*ip_subnet=*/10);
  mme_ = std::make_unique<epc::Mme>(*agw_, *spgw_, net::EndPoint{cloud_addr_, epc::kHssPort});
  ue_nas_ = std::make_unique<epc::UeNas>(network_, *ue_, "imsi-001", Bytes(32, 0x42), *mme_,
                                         ran_map_);
  if (protocol_ == AttachProtocol::Aka5g) {
    // Dedicated forks, drawn only in 5G worlds: 4G streams stay
    // bit-identical (the conformance suite's same-seed guarantee).
    Rng hn_rng = sim_.rng().fork(0x5A11);
    hss_->enable_5g(hn_rng, config_.rsa_bits);
    ue_nas_->enable_5g(hss_->home_network_key(), sim_.rng().fork(0x5AFE));
  }
}

void World::build_cellbricks() {
  Rng key_rng = sim_.rng().fork(0xCA11);
  ca_ = std::make_unique<crypto::CertificateAuthority>("cb-root", key_rng, config_.rsa_bits);
  const TimePoint not_after = TimePoint::zero() + Duration::s(86400 * 365);

  // Broker identity: one keypair/certificate regardless of shard count, so
  // clients always seal to "broker-0". Key generation order (CA, broker,
  // UE, telcos) is identical in both deployment shapes — the single-shard
  // path stays bit-compatible with the pre-sharding engine.
  auto broker_keys = crypto::RsaKeyPair::generate(key_rng, config_.rsa_bits);
  auto broker_cert =
      ca_->issue("broker-0", broker_keys.public_key(), TimePoint::zero(), not_after);
  auto ue_keys = crypto::RsaKeyPair::generate(key_rng, config_.rsa_bits);
  const crypto::RsaPublicKey broker_pk = broker_cert.key();

  net::EndPoint broker_ep{cloud_addr_, cellbricks::kBrokerPort};
  Bytes ticket_key;  // non-empty = resumption federation is live
  if (config_.broker_shards <= 1) {
    cellbricks::SapBroker sap_broker("broker-0", std::move(broker_keys), broker_cert,
                                     ca_->public_key());
    if (protocol_ == AttachProtocol::SapResume) {
      // STEK drawn from its own fork, only in resume worlds: plain-SAP
      // streams stay bit-identical.
      ticket_key = sim_.rng().fork(0x71C7).random_bytes(32);
      sap_broker.enable_resume(ticket_key, config_.ticket_ttl);
    }
    cellbricks::Brokerd::Config bcfg = config_.broker_config;
    brokerd_ = std::make_unique<cellbricks::Brokerd>(*cloud_, std::move(sap_broker), bcfg);
    brokerd_->add_subscriber("user-001", ue_keys.public_key());
  } else {
    // Shard hosts hang off the cloud hub: tower -> cloud -> shard-i adds one
    // fast intra-region hop on top of the configured cloud RTT; shard<->shard
    // replication crosses the hub the same way.
    cellbricks::BrokerShard::Config scfg = config_.shard_config;
    scfg.broker = config_.broker_config;
    broker_cluster_ = std::make_unique<cellbricks::BrokerCluster>(scfg);
    for (int i = 0; i < config_.broker_shards; ++i) {
      net::Node* host = network_.add_node("broker-shard-" + std::to_string(i));
      network_.register_address(net::Ipv4Addr(2, 2, 2, static_cast<std::uint8_t>(10 + i)),
                                host);
      network_.connect(cloud_, host,
                       net::LinkParams{.rate_bps = 10e9, .delay = Duration::us(250)});
      shard_nodes_.push_back(host);
      broker_cluster_->add_shard(
          *host, cellbricks::SapBroker("broker-0", broker_keys, broker_cert,
                                       ca_->public_key()));
    }
    network_.recompute_routes();
    broker_cluster_->add_subscriber("user-001", ue_keys.public_key());
    broker_cluster_->start();
    shard_router_ = std::make_unique<cellbricks::ShardRouter>(
        broker_cluster_->client_endpoints());
    broker_ep = broker_cluster_->client_endpoints().front();
  }

  // One bTelco per tower (the paper's extreme single-tower providers).
  for (int i = 0; i < config_.n_towers; ++i) {
    const std::string id_t = "btelco-" + std::to_string(i);
    auto keys = crypto::RsaKeyPair::generate(key_rng, config_.rsa_bits);
    auto cert = ca_->issue(id_t, keys.public_key(), TimePoint::zero(), not_after);
    // Cluster-wide key registration: a shard that never served this bTelco's
    // attach must still be able to verify its report signatures.
    if (broker_cluster_) broker_cluster_->add_telco(id_t, keys.public_key());
    cellbricks::SapTelco sap_telco(id_t, std::move(keys), std::move(cert), ca_->public_key());
    cellbricks::Btelco::Config tcfg = config_.btelco_config;
    tcfg.ip_subnet = static_cast<std::uint8_t>(100 + i);
    tcfg.report_interval = config_.report_interval;
    if (i == 0) tcfg.overreport_factor = config_.telco0_overreport;
    auto telco = std::make_unique<cellbricks::Btelco>(
        network_, *towers_[static_cast<std::size_t>(i)], std::move(sap_telco), broker_cert,
        broker_ep, tcfg);
    if (!ticket_key.empty()) telco->enable_resume(ticket_key);
    if (shard_router_) telco->set_router(shard_router_.get());
    telco_by_cell_[static_cast<ran::CellId>(i + 1)] = telco.get();
    btelcos_.push_back(std::move(telco));
  }

  cellbricks::SapUe sap_ue("user-001", "broker-0", std::move(ue_keys), broker_pk);
  cellbricks::UeAgent::Config ucfg = config_.ue_config;
  ucfg.underreport_factor = config_.ue_underreport;
  ucfg.report_interval = config_.report_interval;
  if (!ticket_key.empty()) ucfg.use_resume_tickets = true;
  ue_agent_ = std::make_unique<cellbricks::UeAgent>(
      network_, *ue_, std::move(sap_ue), ran_map_,
      [this](ran::CellId cell) -> cellbricks::Btelco* {
        auto it = telco_by_cell_.find(cell);
        return it == telco_by_cell_.end() ? nullptr : it->second;
      },
      broker_ep, ucfg);
  ue_agent_->set_mptcp(ue_mptcp_.get());
  if (shard_router_) ue_agent_->set_router(shard_router_.get());
}

void World::start() {
  if (config_.arch == Architecture::CellBricks) {
    // Chain: keep any observer the embedding program installed.
    auto user_cb = ue_agent_->on_attached;
    ue_agent_->on_attached = [this, user_cb](ran::CellId cell, Duration latency) {
      install_shaper(cell);
      if (user_cb) user_cb(cell, latency);
    };
    // Wrap the agent's mobility loop so observers see cell changes too.
    // Fallback candidates for recovery come straight from the radio scan.
    ue_agent_->set_candidate_source([this] { return radio_->candidates(); });
    radio_->start([this](ran::CellId old_cell, ran::CellId new_cell) {
      if (on_cell_change) on_cell_change(old_cell, new_cell);
      ue_agent_->cancel_recovery();
      if (ue_agent_->attached()) ue_agent_->detach();
      if (new_cell != 0) ue_agent_->attach_with_recovery(new_cell);
    });
    return;
  }
  // MNO: attach on acquisition, X2 handover on later cell changes.
  radio_->start([this](ran::CellId old_cell, ran::CellId new_cell) {
    if (on_cell_change) on_cell_change(old_cell, new_cell);
    if (new_cell == 0) return;
    if (!ue_nas_->attached()) {
      ue_nas_->attach(new_cell, [this, new_cell](Result<net::Ipv4Addr> result) {
        if (result.ok()) {
          network_.recompute_routes();
          install_shaper(new_cell);
        } else {
          CB_LOG(Warn, "world") << "MNO attach failed: " << result.error();
        }
      });
    } else {
      ue_nas_->handover(new_cell, Duration::ms(30),
                        [this, new_cell] { install_shaper(new_cell); });
    }
  });
}

transport::StreamTransport World::ue_transport() {
  return config_.arch == Architecture::Mno ? transport::make_tcp_transport(*ue_tcp_)
                                           : transport::make_mptcp_transport(*ue_mptcp_);
}

transport::StreamTransport World::server_transport() {
  return config_.arch == Architecture::Mno ? transport::make_tcp_transport(*server_tcp_)
                                           : transport::make_mptcp_transport(*server_mptcp_);
}

std::uint64_t World::handovers() const {
  // Cell changes minus the initial acquisition.
  const std::uint64_t changes = radio_->cell_changes();
  return changes > 0 ? changes - 1 : 0;
}

double World::mttho_s() const {
  const std::uint64_t h = handovers();
  if (h == 0) return 0.0;
  return sim_.now().to_seconds() / static_cast<double>(h);
}

const Summary* World::attach_latencies_ms() const {
  return ue_agent_ ? &ue_agent_->attach_latencies() : nullptr;
}

}  // namespace cb::scenario
