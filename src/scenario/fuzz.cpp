#include "scenario/fuzz.hpp"

#include <algorithm>

namespace cb::scenario {

FuzzScenario random_scenario(std::uint64_t seed) {
  // The tag keeps the generator stream independent of the world's own
  // Rng(seed) streams, so sampling a scenario never correlates with the
  // randomness inside the run it describes.
  Rng rng = Rng(seed).fork(0xF022);

  FuzzScenario s;
  s.seed = seed;
  s.n_towers = 1 + static_cast<int>(rng.next_below(8));
  s.night = rng.chance(0.5);
  // Geometry: spacing and a target mean-time-to-handover pick the speed,
  // spanning the paper's Table 1 envelope (25..90 s MTTHO).
  s.tower_spacing_m = rng.uniform(400.0, 1500.0);
  s.speed_mps = s.tower_spacing_m / rng.uniform(25.0, 90.0);
  s.duration_s = rng.uniform(60.0, 240.0);
  s.radio_loss = rng.chance(0.3) ? rng.uniform(0.0, 0.03) : 0.0;
  s.unlimited_policy = rng.chance(0.25);
  const double intervals[] = {5.0, 10.0, 20.0};
  s.report_interval_s = intervals[rng.next_below(3)];
  // Mostly honest worlds; occasionally a dishonest party so the reputation
  // invariants exercise their gated branches too.
  if (rng.chance(0.15)) s.telco0_overreport = rng.uniform(1.1, 1.8);
  if (rng.chance(0.15)) s.ue_underreport = rng.uniform(0.5, 0.9);
  s.app = static_cast<int>(rng.next_below(4));
  // Traffic phase: sampled often enough that every corpus sweep crosses the
  // fluid/packet boundary a few times. Small populations — the invariant
  // sweep is O(UEs) per tick and shrinking prefers dropping the phase whole.
  if (rng.chance(0.35)) {
    s.fluid_ues = 8 + static_cast<int>(rng.next_below(57));  // 8..64
    s.fluid_hybrid = rng.chance(0.5);
  }
  // Sharded broker deployments: sampled at ~30% so the settlement-log
  // invariants (prefix agreement, verdict uniqueness, no verdict loss) run
  // under the same chaos schedules as the single-broker world.
  if (rng.chance(0.3)) s.broker_shards = 1 << (1 + rng.next_below(3));  // 2/4/8

  const std::size_t n_faults = rng.next_below(6);  // 0..5
  for (std::size_t i = 0; i < n_faults; ++i) {
    FuzzFault f;
    // ShardKill is only meaningful on sharded worlds; keep the draw count
    // identical either way so fault schedules stay comparable across knobs.
    const std::uint64_t n_kinds = s.broker_shards > 1 ? 5 : 4;
    f.kind = static_cast<FuzzFault::Kind>(rng.next_below(n_kinds));
    f.start_s = rng.uniform(5.0, std::max(6.0, s.duration_s - 10.0));
    f.duration_s = rng.uniform(2.0, 30.0);
    switch (f.kind) {
      case FuzzFault::Kind::TelcoCrash:
        f.telco = rng.next_below(static_cast<std::uint64_t>(s.n_towers));
        break;
      case FuzzFault::Kind::ShardKill:
        f.telco = rng.next_below(static_cast<std::uint64_t>(s.broker_shards));
        break;
      case FuzzFault::Kind::WanDegrade:
        f.loss = rng.uniform(0.05, 0.6);
        f.corrupt = rng.chance(0.3) ? rng.uniform(0.0, 0.05) : 0.0;
        break;
      default:
        break;
    }
    s.faults.push_back(f);
  }
  // Protocol axis — draws APPENDED after every existing draw, so scenarios
  // sampled by older corpora keep their exact shape for any fixed seed.
  // ~20% EPC baselines (split EPS-AKA / 5G-AKA) so the attach invariants see
  // the MNO world under chaos; resumption rides on ~half the SAP worlds.
  if (rng.chance(0.2)) {
    s.attach_protocol = rng.chance(0.5) ? 0 : 1;
  } else if (rng.chance(0.5)) {
    s.resume_ticket = true;
  }
  // Measurement axis — again appended, again with a fixed draw count per
  // branch so older seeds reproduce bit-exactly. ~35% of worlds get a noisy
  // channel; the policy draw is independent so the A/B runs both with and
  // without fading.
  if (rng.chance(0.35)) {
    s.shadow_sigma_db = rng.uniform(2.0, 8.0);
    s.decorrelation_m = rng.uniform(25.0, 110.0);
    s.fast_fading = rng.chance(0.4);
  }
  const std::uint64_t policy = rng.next_below(4);  // 0/1 -> A3 (weighted)
  if (policy == 2) {
    s.reselection_policy = 1;
    const int ttts[] = {160, 320, 480, 640};
    s.ttt_ms = ttts[rng.next_below(4)];
  } else if (policy == 3) {
    s.reselection_policy = 2;
  }
  if (rng.chance(0.3)) {
    const int ks[] = {4, 8, 12};
    s.l3_filter_k = ks[rng.next_below(3)];
  }
  // Rank-based reselection on a noisy channel with no smoothing ping-pongs
  // pathologically (that is the point of the strawman, but it swamps the
  // checker's horizon); give those worlds at least the k=4 filter. Pure
  // post-processing — no extra rng draws.
  if (s.reselection_policy == 2 && s.shadow_sigma_db > 0.0 && s.l3_filter_k < 4) {
    s.l3_filter_k = 4;
  }
  // Sorted by start time so the schedule reads chronologically and shrinking
  // (which drops list prefixes/suffixes) removes contiguous time ranges.
  std::stable_sort(s.faults.begin(), s.faults.end(),
                   [](const FuzzFault& a, const FuzzFault& b) { return a.start_s < b.start_s; });
  return s;
}

}  // namespace cb::scenario
