// Broker-cluster load generator (bench_broker_shards; DESIGN.md §12).
//
// A self-contained deterministic world: N broker shards behind a WAN hub and
// M synthetic subscriber/bTelco client pairs that speak the real broker wire
// protocol — a SAP attach (AuthReq over UDP with retries) followed by paired
// signed+sealed traffic reports driven by the same seq/ack/redirect/retry
// state machine as UeAgent/Btelco — but with none of the radio or transport
// machinery, so one process can push the cluster to its report-ingest
// capacity and measure failover availability under shard kills.
#pragma once

#include <memory>
#include <vector>

#include "cellbricks/broker_cluster.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace cb::scenario {

struct BrokerLoadgenConfig {
  int n_shards = 1;
  int n_clients = 16;
  /// Per-client reporting period; each period emits one UE and one bTelco
  /// report for the same (session, period), so offered ingest load is
  /// 2 * n_clients / report_interval.
  Duration report_interval = Duration::millis(80);
  /// Load phase length. New reports stop at this horizon; the run then
  /// drains (retries, takeover catch-up, pair sweeps) before collection.
  double duration_s = 30.0;
  double drain_s = 60.0;
  std::uint64_t seed = 1;
  std::size_t rsa_bits = 512;
  cellbricks::BrokerShard::Config shard{};

  // Client retry schedule (decorrelated jitter, like the real agents).
  Duration report_retry = Duration::millis(500);
  Duration retry_cap = Duration::s(2);
  int report_attempts = 40;
  Duration auth_retry = Duration::s(1);
  int auth_attempts = 10;

  /// Failover trial: kill shard `kill_shard` at `kill_at_s` for
  /// `kill_duration_s` (disabled when kill_shard < 0).
  int kill_shard = -1;
  double kill_at_s = 10.0;
  double kill_duration_s = 10.0;
};

struct BrokerLoadgenResult {
  // Client-side accounting.
  std::uint64_t sessions_issued = 0;
  std::uint64_t attach_failures = 0;
  std::uint64_t reports_sent = 0;  // distinct reports (UE + telco halves)
  std::uint64_t report_txs = 0;    // wire transmissions incl. retries
  std::uint64_t reports_acked = 0;
  std::uint64_t reports_abandoned = 0;
  std::uint64_t redirects_learned = 0;
  // Cluster-side accounting (observer fold = auditor ground truth).
  std::uint64_t reports_ingested = 0;
  std::uint64_t reports_deduped = 0;
  std::uint64_t redirects_sent = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t verdicts_paired = 0;
  std::uint64_t verdicts_missing = 0;
  std::uint64_t verdict_conflicts = 0;
  /// Ingested reports still awaiting a verdict after the drain: the failover
  /// acceptance gate requires this to be exactly 0 (verdicts may be late,
  /// never lost).
  std::uint64_t verdicts_lost = 0;

  double ack_p50_ms = 0.0;
  double ack_p99_ms = 0.0;
  /// Sustained ingest rate over the load phase (reports / duration_s).
  double ingest_rps = 0.0;
  /// Cumulative observer verdict count sampled once per sim second —
  /// the availability timeline plotted by the failover trial.
  std::vector<std::uint64_t> verdicts_per_s;
  std::uint64_t events_executed = 0;

  /// Order-sensitive digest of the run (counters + timeline): two runs with
  /// the same config and seed must produce the same value bit-for-bit.
  std::uint64_t fingerprint() const;
};

class BrokerLoadgen {
 public:
  explicit BrokerLoadgen(BrokerLoadgenConfig config);
  ~BrokerLoadgen();

  sim::Simulator& simulator() { return sim_; }
  cellbricks::BrokerCluster& cluster() { return *cluster_; }

  /// Build the schedule, run load + drain to completion, and collect.
  BrokerLoadgenResult run();

 private:
  struct Client;

  void start_attach(Client& c);
  void transmit_auth(Client& c);
  void send_period_reports(Client& c);
  void send_report(Client& c, cellbricks::Reporter side, std::uint32_t period);
  void transmit_report(Client& c, std::uint64_t seq);
  void handle_packet(Client& c, const net::Packet& p);

  BrokerLoadgenConfig config_;
  sim::Simulator sim_;
  net::Network network_;
  net::Node* hub_ = nullptr;
  std::unique_ptr<cellbricks::BrokerCluster> cluster_;
  crypto::RsaPublicKey broker_pk_;
  crypto::Certificate broker_cert_;
  std::vector<std::unique_ptr<Client>> clients_;
  TimePoint load_end_;

  std::uint64_t sessions_issued_ = 0;
  std::uint64_t attach_failures_ = 0;
  std::uint64_t reports_sent_ = 0;
  std::uint64_t report_txs_ = 0;
  std::uint64_t reports_acked_ = 0;
  std::uint64_t reports_abandoned_ = 0;
  std::vector<double> ack_latencies_ms_;
  std::vector<std::uint64_t> verdict_timeline_;
};

}  // namespace cb::scenario
