// Multi-UE bulk-traffic scenario — the workload behind the million-UE scale
// claim (DESIGN.md §11, EXPERIMENTS.md "scale curve").
//
// N subscribers spread over C cells each pull one bulk download (sizes and
// arrival times seed-derived); every cell has a fixed downlink scheduler
// capacity and every bearer a shaper cap resampled from the Appendix-A rate
// policy. The same workload runs in three fidelity modes:
//
//   Packet — every flow is a real TCP connection over real links: a shared
//            cell bottleneck link (the scheduler) behind per-UE access links
//            (the shaper). Ground truth; feasible to a few thousand UEs.
//   Fluid  — every flow is a rate share in traffic::FluidEngine; sim events
//            exist only at rate-change points. Scales to 1M+ UEs.
//   Hybrid — flows run fluid but a chaos fault window on one cell demotes
//            its flows to packet fidelity (real TCP over a per-flow lane
//            whose bottleneck mirrors the flow's ghost share) and promotes
//            them back after K RTTs of steady state, conserving bytes.
//
// All three modes draw sizes, starts, weights, and shaper samples from
// identical per-UE RNG streams, so packet-vs-fluid agreement is a pure
// model comparison — the bench and CI gate on it at small N.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "ran/rate_policy.hpp"
#include "traffic/arena.hpp"
#include "traffic/fluid.hpp"

namespace cb::sim {
class Simulator;
}

namespace cb::scenario {

enum class TrafficMode { Packet, Fluid, Hybrid };

const char* traffic_mode_name(TrafficMode mode);

struct ScaleTrafficConfig {
  TrafficMode mode = TrafficMode::Fluid;
  int n_ues = 1000;
  /// 0 = one cell per 500 UEs (at least one).
  int n_cells = 0;
  std::uint64_t seed = 1;
  /// Appendix-A shaper policy applied per bearer (day ≈ 1 Mb/s, night ≈
  /// 15 Mb/s); unlimited_shaper leaves bearers scheduler-limited only.
  bool night = true;
  bool unlimited_shaper = false;
  /// Downlink scheduler capacity per cell.
  double scheduler_capacity_bps = 150e6;
  /// Bearer shaper resample cadence; 0 samples once per flow at start.
  double shaper_resample_s = 0.0;
  /// Flow sizes: exponential with this mean, clamped to [1 MB, 8x mean].
  double mean_flow_mbytes = 20.0;
  /// Flow arrivals: uniform in [0, start_window_s).
  double start_window_s = 5.0;
  double horizon_s = 600.0;
  /// Mean exponential inter-handover time per UE (fluid/hybrid; 0 = off).
  double mobility_interval_s = 0.0;
  /// Fraction of UEs on a premium QCI (scheduler weight 2.0). Packet mode
  /// cannot enforce weights — keep 0 when comparing modes.
  double premium_fraction = 0.0;
  /// Billing: flat $/GB accumulated into the arena at the report cadence.
  double price_per_gb_usd = 2.0;
  double report_interval_s = 10.0;
  /// Fluid goodput efficiency: fraction of scheduler capacity that turns
  /// into app bytes (packet mode loses MSS/(MSS+headers) to framing; the
  /// fluid model applies the same factor so both modes meter app goodput).
  double goodput_efficiency = 1400.0 / 1455.0;
  /// Hybrid: a capacity-drop fault on `fault_cell` during
  /// [fault_start_s, fault_start_s + fault_duration_s) — its fluid flows
  /// demote to packet lanes for the window. 0 duration = no fault.
  double fault_start_s = 0.0;
  double fault_duration_s = 0.0;
  int fault_cell = 0;
  double fault_capacity_factor = 0.25;
  /// Packet -> fluid re-promotion after this many RTTs of steady state.
  int k_rtts_to_promote = 8;
  /// Worker threads for the fluid engine's per-timestamp reallocation drain
  /// (1 = serial; any value produces bit-identical results — DESIGN.md §13).
  int fluid_threads = 1;
};

struct ScaleTrafficResult {
  int n_ues = 0;
  int completed = 0;
  double completion_mean_s = 0.0;
  double completion_p50_s = 0.0;
  double completion_p99_s = 0.0;
  /// Per-flow goodput (size / completion time), mean over completed flows.
  double flow_tput_mean_mbps = 0.0;
  double total_gbytes = 0.0;
  double billing_usd = 0.0;
  /// Simulated seconds covered (last completion, or horizon if incomplete).
  double sim_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t rate_events = 0;
  std::uint64_t demotions = 0;
  std::uint64_t promotions = 0;
  /// Arena working set: slots x bytes_per_session.
  std::uint64_t arena_bytes = 0;
  // Conservation ledger (fluid.conservation reads the same numbers live).
  double delivered_bytes = 0.0;
  double segment_bytes = 0.0;
  double packet_ledger_bytes = 0.0;
  std::uint64_t negative_residuals = 0;
  /// FNV-1a over the bit patterns of the totals above — the same-seed
  /// determinism witness (byte-stable across runs and thread counts).
  std::uint64_t fingerprint() const;
};

/// A buildable/runnable scale-traffic simulation; split from
/// run_scale_traffic so the check layer can arm invariants on the live run.
class ScaleTrafficSim {
 public:
  explicit ScaleTrafficSim(const ScaleTrafficConfig& config);
  ~ScaleTrafficSim();

  sim::Simulator& simulator();
  const traffic::SessionArena& arena() const { return arena_; }
  /// Null in pure Packet mode.
  const traffic::FluidEngine* fluid() const { return fluid_.get(); }
  /// App bytes delivered through real packet paths (pure-packet flows and
  /// hybrid fidelity windows) — the packet side of the conservation ledger.
  double packet_ledger_bytes() const { return packet_ledger_bytes_; }
  const ScaleTrafficConfig& config() const { return config_; }

  /// Schedule the whole workload (call once, before running).
  void start();
  /// Drive to completion or the horizon, then collect results.
  ScaleTrafficResult run_to_completion();
  /// Final sweep + result assembly; call after driving the simulator
  /// yourself (the check runner arms invariants between start() and this).
  ScaleTrafficResult collect();

  /// Total app bytes delivered so far (fluid progress accrued up to now) —
  /// for mid-run load-curve samplers (bench_fig10_day_night --fluid).
  double delivered_now();

 private:
  struct PacketFlow;
  struct Lane;
  struct Impl;

  void build_fluid();
  void build_packet();
  void bill_sweep();
  TimePoint next_resample_epoch() const;
  void schedule_shaper_resample(std::uint32_t ue);
  void schedule_packet_resample(std::uint32_t ue);
  void schedule_mobility(std::uint32_t ue);
  void apply_fault(bool begin);
  void demote_to_lane(traffic::SessionId id);
  void try_promote(std::size_t lane_idx);
  void free_lane(std::size_t lane_idx);
  Duration promote_wait(const Lane& lane) const;
  void deliver_packet_bytes(traffic::SessionId id, std::size_t n);
  void on_flow_done(traffic::SessionId id);

  ScaleTrafficConfig config_;
  std::unique_ptr<Impl> impl_;
  traffic::SessionArena arena_;
  std::unique_ptr<traffic::FluidEngine> fluid_;
  std::vector<double> flow_bytes_;
  std::vector<double> start_s_;
  Summary completion_s_;
  Summary flow_tput_mbps_;
  double packet_ledger_bytes_ = 0.0;
  int done_ = 0;
  double last_finish_s_ = 0.0;
};

ScaleTrafficResult run_scale_traffic(const ScaleTrafficConfig& config);

}  // namespace cb::scenario
