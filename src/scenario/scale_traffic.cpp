#include "scenario/scale_traffic.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

namespace cb::scenario {

namespace {

// Packet-mode geometry: server <-> cell bottleneck <-> per-UE access link.
// RTT ≈ 2 * (6 + 4) = 20 ms; hybrid lanes use one 10 ms link for the same RTT.
constexpr Duration kCellDelay = Duration::ms(6);
constexpr Duration kUeDelay = Duration::ms(4);
constexpr Duration kLaneDelay = Duration::ms(10);
constexpr Duration kFallbackRtt = Duration::ms(20);
/// The cell bottleneck needs >= one BDP of buffer to run at capacity.
constexpr std::size_t kCellQueueBytes = 1 << 20;
constexpr std::size_t kPushChunk = 64 * 1024;
constexpr std::uint16_t kBasePort = 5001;
/// Packet fidelity is ground truth, not a scale path.
constexpr int kMaxPacketUes = 2048;
constexpr std::size_t kMaxLanes = 4096;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

void fnv_mix_d(std::uint64_t& h, double v) { fnv_mix(h, std::bit_cast<std::uint64_t>(v)); }

/// Push exactly `total` bytes into `sock`, then close gracefully. Callbacks
/// capture the socket weakly — no ownership cycle through the stack.
void attach_pusher(const std::shared_ptr<transport::StreamSocket>& sock,
                   std::uint64_t total, const Bytes& chunk) {
  auto remaining = std::make_shared<std::uint64_t>(total);
  std::weak_ptr<transport::StreamSocket> weak = sock;
  auto pump = [weak, remaining, &chunk] {
    auto s = weak.lock();
    if (!s) return;
    while (*remaining > 0) {
      const std::size_t want =
          static_cast<std::size_t>(std::min<std::uint64_t>(*remaining, chunk.size()));
      const std::size_t sent = s->send(BytesView(chunk.data(), want));
      if (sent == 0) return;  // buffer full; on_send_space re-pumps
      *remaining -= sent;
    }
    s->close();
  };
  sock->on_send_space = pump;
  pump();
}

}  // namespace

const char* traffic_mode_name(TrafficMode mode) {
  switch (mode) {
    case TrafficMode::Packet: return "packet";
    case TrafficMode::Fluid: return "fluid";
    case TrafficMode::Hybrid: return "hybrid";
  }
  return "?";
}

std::uint64_t ScaleTrafficResult::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(n_ues));
  fnv_mix(h, static_cast<std::uint64_t>(completed));
  fnv_mix_d(h, completion_mean_s);
  fnv_mix_d(h, completion_p99_s);
  fnv_mix_d(h, total_gbytes);
  fnv_mix_d(h, billing_usd);
  fnv_mix_d(h, delivered_bytes);
  fnv_mix_d(h, segment_bytes);
  fnv_mix_d(h, packet_ledger_bytes);
  fnv_mix(h, rate_events);
  fnv_mix(h, demotions);
  fnv_mix(h, promotions);
  fnv_mix(h, events);
  return h;
}

/// A packet-fidelity window for one demoted flow: a dedicated server/UE node
/// pair whose single link mirrors the flow's ghost share.
struct ScaleTrafficSim::Lane {
  net::Node* srv = nullptr;
  net::Node* ue = nullptr;
  net::Link* link = nullptr;
  net::Ipv4Addr srv_addr;
  net::Ipv4Addr ue_addr;
  std::unique_ptr<transport::TcpStack> srv_stack;
  std::unique_ptr<transport::TcpStack> ue_stack;
  std::shared_ptr<transport::StreamSocket> srv_conn;
  std::shared_ptr<transport::TcpSocket> ue_sock;
  traffic::SessionId session = traffic::kNoSession;
  TimePoint last_disturb;
  sim::EventHandle promote_timer;
  std::uint16_t port = 0;
};

struct ScaleTrafficSim::Impl {
  explicit Impl(std::uint64_t seed) : sim(seed) {}

  sim::Simulator sim;
  ran::RatePolicy policy;
  Bytes chunk = Bytes(kPushChunk, 0);

  // Pure packet mode topology.
  std::unique_ptr<net::Network> net;
  net::Node* server = nullptr;
  net::Ipv4Addr server_addr;
  std::vector<net::Node*> towers;
  std::vector<net::Node*> ue_nodes;
  std::vector<net::Link*> ue_links;
  std::unique_ptr<transport::TcpStack> server_stack;
  std::vector<std::unique_ptr<transport::TcpStack>> ue_stacks;
  std::vector<std::shared_ptr<transport::StreamSocket>> server_conns;
  std::vector<std::shared_ptr<transport::TcpSocket>> ue_socks;

  // Seed-derived per-UE streams (allocated only when the knob is on).
  std::vector<Rng> shaper_rngs;
  std::vector<Rng> mobility_rngs;

  // Hybrid lanes.
  std::vector<std::unique_ptr<Lane>> lanes;
  std::vector<std::size_t> free_lanes;
  std::unordered_map<traffic::SessionId, std::size_t> lane_of;
  std::uint16_t lane_port_seq = kBasePort;
  std::uint64_t demotions_skipped = 0;

  sim::EventHandle bill_timer;
};

ScaleTrafficSim::ScaleTrafficSim(const ScaleTrafficConfig& config) : config_(config) {
  if (config_.n_ues < 1) throw std::invalid_argument("scale_traffic: n_ues must be >= 1");
  if (config_.n_cells == 0) config_.n_cells = std::max(1, config_.n_ues / 500);
  if (config_.mode == TrafficMode::Packet && config_.n_ues > kMaxPacketUes) {
    throw std::invalid_argument("scale_traffic: packet mode is capped at " +
                                std::to_string(kMaxPacketUes) + " UEs — use fluid mode");
  }
  impl_ = std::make_unique<Impl>(config_.seed);
  impl_->policy = config_.night ? ran::RatePolicy::night() : ran::RatePolicy::day();

  // Workload draws shared verbatim by every mode: sizes, starts, weights,
  // and the initial shaper sample per UE, each from its own forked stream.
  const std::size_t n = static_cast<std::size_t>(config_.n_ues);
  const std::size_t per_cell =
      (n + static_cast<std::size_t>(config_.n_cells) - 1) / static_cast<std::size_t>(config_.n_cells);
  arena_.reserve(n);
  flow_bytes_.resize(n);
  start_s_.resize(n);
  Rng wl = Rng(config_.seed).fork(0x5CA1E);
  for (std::size_t i = 0; i < n; ++i) {
    const double mb = std::clamp(wl.exponential(config_.mean_flow_mbytes), 1.0,
                                 8.0 * config_.mean_flow_mbytes);
    flow_bytes_[i] = std::floor(mb * 1e6);  // integral bytes, same in all modes
    start_s_[i] = wl.uniform(0.0, config_.start_window_s);
    const bool premium = config_.premium_fraction > 0.0 && wl.chance(config_.premium_fraction);
    double cap = 0.0;
    if (!config_.unlimited_shaper) {
      Rng ue_rng = Rng(config_.seed).fork(0xBEA0000 + i);
      cap = impl_->policy.sample(ue_rng);
      if (config_.shaper_resample_s > 0.0) impl_->shaper_rngs.push_back(ue_rng);
    }
    // Block assignment (UE i -> cell i/per_cell): a cell's members occupy a
    // contiguous SessionId range, so the fill pass streams adjacent arena
    // rows instead of striding n_cells apart — measurably faster at 100k+.
    arena_.create(static_cast<std::uint32_t>(i / per_cell),
                  premium ? 2.0f : 1.0f, cap, premium ? 2 : 9);
  }
  if (config_.mobility_interval_s > 0.0 && config_.mode != TrafficMode::Packet) {
    impl_->mobility_rngs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      impl_->mobility_rngs.push_back(Rng(config_.seed).fork(0x30B0000 + i));
    }
  }
}

ScaleTrafficSim::~ScaleTrafficSim() = default;

sim::Simulator& ScaleTrafficSim::simulator() { return impl_->sim; }

void ScaleTrafficSim::start() {
  if (config_.mode == TrafficMode::Packet) {
    build_packet();
  } else {
    build_fluid();
  }
  // Billing sweep at the report cadence (same cadence the UE baseband and
  // bTelco meters use), accruing fluid progress before reading the ledger.
  impl_->bill_timer = impl_->sim.schedule(Duration::seconds(config_.report_interval_s),
                                          [this] { bill_sweep(); });
}

void ScaleTrafficSim::bill_sweep() {
  if (fluid_) fluid_->accrue_all();
  const double usd_per_byte = config_.price_per_gb_usd / 1e9;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(config_.n_ues); ++i) {
    const double delta = arena_.delivered_bytes(i) - arena_.billed_bytes(i);
    if (delta > 0.0) {
      arena_.billed_usd(i) += delta * usd_per_byte;
      arena_.billed_bytes(i) = arena_.delivered_bytes(i);
    }
  }
  if (done_ < config_.n_ues) {
    impl_->bill_timer = impl_->sim.schedule(Duration::seconds(config_.report_interval_s),
                                            [this] { bill_sweep(); });
  }
}

// ---------------------------------------------------------------------------
// Fluid / hybrid build
// ---------------------------------------------------------------------------

void ScaleTrafficSim::build_fluid() {
  const double eff = config_.goodput_efficiency;
  fluid_ = std::make_unique<traffic::FluidEngine>(
      impl_->sim, arena_, static_cast<unsigned>(std::max(config_.fluid_threads, 1)));
  for (int c = 0; c < config_.n_cells; ++c) {
    fluid_->add_cell(config_.scheduler_capacity_bps * eff);
  }
  // The arena carries wire-rate shaper caps; the engine allocates goodput.
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(config_.n_ues); ++i) {
    arena_.cap_bps(i) *= eff;
  }
  fluid_->on_complete = [this](traffic::SessionId id) { on_flow_done(id); };
  fluid_->on_rate_share = [this](traffic::SessionId id, double share) {
    auto it = impl_->lane_of.find(id);
    if (it == impl_->lane_of.end()) return;
    Lane& lane = *impl_->lanes[it->second];
    // Mirror the ghost share (goodput) back to a wire rate on the lane link.
    net::LinkParams p = lane.link->params(lane.srv);
    p.rate_bps = std::max(share / config_.goodput_efficiency, 1.0);
    lane.link->set_params(lane.srv, p);
    lane.last_disturb = impl_->sim.now();
    const std::size_t idx = it->second;
    lane.promote_timer.cancel();
    lane.promote_timer =
        impl_->sim.schedule(promote_wait(lane), [this, idx] { try_promote(idx); });
  };

  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(config_.n_ues); ++i) {
    impl_->sim.schedule(Duration::seconds(start_s_[i]), [this, i] {
      fluid_->start_flow(i, flow_bytes_[i]);
      if (config_.shaper_resample_s > 0.0 && !config_.unlimited_shaper) {
        schedule_shaper_resample(i);
      }
      if (config_.mobility_interval_s > 0.0) schedule_mobility(i);
    });
  }

  if (config_.mode == TrafficMode::Hybrid && config_.fault_duration_s > 0.0) {
    impl_->sim.schedule(Duration::seconds(config_.fault_start_s), [this] { apply_fault(true); });
    impl_->sim.schedule(Duration::seconds(config_.fault_start_s + config_.fault_duration_s),
                        [this] { apply_fault(false); });
  }
}

TimePoint ScaleTrafficSim::next_resample_epoch() const {
  // Resamples land on GLOBAL k x period boundaries, not per-UE offsets from
  // each flow's start: the whole population's cap changes coalesce into a
  // handful of timestamps per period, which the fluid engine's dirty-cell
  // drain turns into one water-fill per cell per epoch (DESIGN.md §13) —
  // instead of one per UE. Integer-nanosecond arithmetic so the "next"
  // boundary is always strictly in the future even when an event sits
  // exactly on one. Each UE still draws from its own RNG stream at the same
  // cadence, so packet-vs-fluid agreement is untouched.
  const std::int64_t period_ns = Duration::seconds(config_.shaper_resample_s).nanos();
  const std::int64_t now_ns = impl_->sim.now().nanos();
  return TimePoint::from_nanos((now_ns / period_ns + 1) * period_ns);
}

void ScaleTrafficSim::schedule_shaper_resample(std::uint32_t ue) {
  impl_->sim.schedule_at(next_resample_epoch(), [this, ue] {
    if (arena_.mode(ue) == traffic::FlowMode::Done) return;
    const double cap = impl_->policy.sample(impl_->shaper_rngs[ue]);
    // A cap change is a rate-change point for ghosts too: set_flow_cap only
    // writes the arena cap and marks the cell dirty, which is valid for
    // Packet-mode members and republishes the mirrored lane share.
    fluid_->set_flow_cap(ue, cap * config_.goodput_efficiency);
    schedule_shaper_resample(ue);
  });
}

void ScaleTrafficSim::schedule_mobility(std::uint32_t ue) {
  const double wait = impl_->mobility_rngs[ue].exponential(config_.mobility_interval_s);
  impl_->sim.schedule(Duration::seconds(std::max(wait, 0.001)), [this, ue] {
    if (arena_.mode(ue) == traffic::FlowMode::Done) return;
    if (config_.n_cells > 1 && arena_.mode(ue) == traffic::FlowMode::Fluid) {
      const std::uint32_t hop = 1 + static_cast<std::uint32_t>(impl_->mobility_rngs[ue].next_below(
                                        static_cast<std::uint64_t>(config_.n_cells - 1)));
      fluid_->handover(ue, (arena_.cell(ue) + hop) % static_cast<std::uint32_t>(config_.n_cells));
    }
    schedule_mobility(ue);
  });
}

// ---------------------------------------------------------------------------
// Hybrid fidelity windows
// ---------------------------------------------------------------------------

Duration ScaleTrafficSim::promote_wait(const Lane& lane) const {
  Duration rtt = lane.ue_sock && lane.ue_sock->srtt() > Duration::zero() ? lane.ue_sock->srtt()
                                                                         : kFallbackRtt;
  return rtt * static_cast<std::int64_t>(std::max(config_.k_rtts_to_promote, 1));
}

void ScaleTrafficSim::apply_fault(bool begin) {
  const double eff = config_.goodput_efficiency;
  const std::uint32_t cell = static_cast<std::uint32_t>(config_.fault_cell);
  const double full = config_.scheduler_capacity_bps * eff;
  fluid_->set_cell_capacity(cell, begin ? full * config_.fault_capacity_factor : full);
  if (!begin) return;  // restoration is itself a rate-change; lanes re-promote
  // The fault is the fluid -> packet boundary: every fluid flow in the cell
  // demotes to a packet lane for the duration of the disturbance.
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(config_.n_ues); ++i) {
    if (arena_.cell(i) == cell && arena_.mode(i) == traffic::FlowMode::Fluid) {
      demote_to_lane(i);
    }
  }
}

void ScaleTrafficSim::demote_to_lane(traffic::SessionId id) {
  Impl& im = *impl_;
  std::size_t idx;
  if (!im.free_lanes.empty()) {
    idx = im.free_lanes.back();
    im.free_lanes.pop_back();
  } else if (im.lanes.size() < kMaxLanes) {
    idx = im.lanes.size();
    auto lane = std::make_unique<Lane>();
    if (!im.net) im.net = std::make_unique<net::Network>(im.sim);
    const std::string tag = std::to_string(idx);
    lane->srv = im.net->add_node("lane-srv-" + tag);
    lane->ue = im.net->add_node("lane-ue-" + tag);
    // Floored rate, never 0: rate_bps == 0 means infinite (link.hpp), and a
    // lane must never run faster than its ghost share says.
    lane->link = im.net->connect(lane->srv, lane->ue, net::LinkParams{1.0, kLaneDelay});
    lane->srv_addr = im.net->alloc_address(10);
    lane->ue_addr = im.net->alloc_address(20);
    im.net->register_address(lane->srv_addr, lane->srv);
    im.net->register_address(lane->ue_addr, lane->ue);
    // Point-to-point: static routes, no global recompute mid-sim.
    lane->srv->set_route(lane->ue_addr, lane->link);
    lane->ue->set_route(lane->srv_addr, lane->link);
    lane->srv_stack = std::make_unique<transport::TcpStack>(*lane->srv);
    lane->ue_stack = std::make_unique<transport::TcpStack>(*lane->ue);
    im.lanes.push_back(std::move(lane));
  } else {
    ++im.demotions_skipped;  // fidelity budget exhausted; flow stays fluid
    return;
  }

  Lane& lane = *im.lanes[idx];
  lane.session = id;
  lane.port = im.lane_port_seq++;
  im.lane_of[id] = idx;

  // Register the lane BEFORE demoting so the ghost-share publication lands
  // on the lane link; demote() then returns the byte-exact residual.
  const double residual = fluid_->demote(id);
  const std::uint64_t residual_bytes = static_cast<std::uint64_t>(std::ceil(residual));

  // Set the lane rate unconditionally from the post-demote ghost share: the
  // on_rate_share callback fires only when the share *changes*, so a zero
  // share (full-outage fault) on a fresh lane, or a reused lane carrying the
  // previous tenant's rate, would otherwise go unthrottled.
  net::LinkParams lp = lane.link->params(lane.srv);
  lp.rate_bps = std::max(arena_.rate_bps(id) / config_.goodput_efficiency, 1.0);
  lane.link->set_params(lane.srv, lp);

  lane.srv_stack->listen(lane.port, [this, idx](std::shared_ptr<transport::TcpSocket> s) {
    Lane& l = *impl_->lanes[idx];
    l.srv_conn = s;
    const double r = arena_.residual_bytes(l.session);
    attach_pusher(l.srv_conn, static_cast<std::uint64_t>(std::ceil(r)), impl_->chunk);
  });
  (void)residual_bytes;
  lane.ue_sock = lane.ue_stack->connect(net::EndPoint{lane.srv_addr, lane.port});
  lane.ue_sock->on_data = [this, idx](BytesView data) {
    Lane& l = *impl_->lanes[idx];
    deliver_packet_bytes(l.session, data.size());
  };
  lane.last_disturb = im.sim.now();
  lane.promote_timer.cancel();
  lane.promote_timer = im.sim.schedule(promote_wait(lane), [this, idx] { try_promote(idx); });
}

void ScaleTrafficSim::try_promote(std::size_t lane_idx) {
  Lane& lane = *impl_->lanes[lane_idx];
  if (lane.session == traffic::kNoSession) return;
  const Duration need = promote_wait(lane);
  const Duration quiet = impl_->sim.now() - lane.last_disturb;
  if (quiet < need) {
    lane.promote_timer = impl_->sim.schedule(need - quiet, [this, lane_idx] {
      try_promote(lane_idx);
    });
    return;
  }
  // K RTTs of steady state: hand the residual back to the fluid engine.
  // The arena ledger already holds every byte the lane delivered; bytes
  // still in flight are simply re-sent fluidly (never double-counted).
  const traffic::SessionId id = lane.session;
  free_lane(lane_idx);
  fluid_->promote(id);
}

void ScaleTrafficSim::free_lane(std::size_t lane_idx) {
  Lane& lane = *impl_->lanes[lane_idx];
  lane.promote_timer.cancel();
  lane.srv_stack->close_listener(lane.port);
  if (lane.ue_sock) {
    lane.ue_sock->on_data = nullptr;
    lane.ue_sock->on_closed = nullptr;
    lane.ue_sock->abort();
    lane.ue_sock.reset();
  }
  if (lane.srv_conn) {
    lane.srv_conn->on_send_space = nullptr;
    lane.srv_conn.reset();
  }
  impl_->lane_of.erase(lane.session);
  lane.session = traffic::kNoSession;
  impl_->free_lanes.push_back(lane_idx);
}

// ---------------------------------------------------------------------------
// Pure packet mode (ground truth)
// ---------------------------------------------------------------------------

void ScaleTrafficSim::build_packet() {
  Impl& im = *impl_;
  im.net = std::make_unique<net::Network>(im.sim);
  im.server = im.net->add_node("server");
  im.server_addr = im.net->alloc_address(10);
  im.net->register_address(im.server_addr, im.server);
  im.server_stack = std::make_unique<transport::TcpStack>(*im.server);

  for (int c = 0; c < config_.n_cells; ++c) {
    net::Node* tower = im.net->add_node("cell-" + std::to_string(c));
    net::LinkParams cell_params;
    cell_params.rate_bps = config_.scheduler_capacity_bps;
    cell_params.delay = kCellDelay;
    cell_params.queue_bytes = kCellQueueBytes;
    im.net->connect(im.server, tower, cell_params);
    im.towers.push_back(tower);
  }

  const std::uint32_t n = static_cast<std::uint32_t>(config_.n_ues);
  im.ue_nodes.reserve(n);
  im.ue_links.reserve(n);
  im.ue_stacks.reserve(n);
  im.ue_socks.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    net::Node* ue = im.net->add_node("ue-" + std::to_string(i));
    const net::Ipv4Addr addr = im.net->alloc_address(20);
    im.net->register_address(addr, ue);
    net::LinkParams access;
    access.rate_bps = arena_.cap_bps(i);  // wire-rate shaper cap (0 = uncapped)
    access.delay = kUeDelay;
    im.ue_links.push_back(im.net->connect(im.towers[arena_.cell(i)], ue, access));
    im.ue_nodes.push_back(ue);
    im.ue_stacks.push_back(std::make_unique<transport::TcpStack>(*ue));
  }
  im.net->recompute_routes();

  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint16_t port = static_cast<std::uint16_t>(kBasePort + i);
    im.server_stack->listen(port, [this, i](std::shared_ptr<transport::TcpSocket> s) {
      impl_->server_conns.push_back(s);
      attach_pusher(impl_->server_conns.back(),
                    static_cast<std::uint64_t>(flow_bytes_[i]), impl_->chunk);
    });
    im.sim.schedule(Duration::seconds(start_s_[i]), [this, i, port] {
      arena_.mode(i) = traffic::FlowMode::Packet;
      arena_.demand_bytes(i) = flow_bytes_[i];
      arena_.start_ns(i) = impl_->sim.now().nanos();
      auto sock = impl_->ue_stacks[i]->connect(net::EndPoint{impl_->server_addr, port});
      sock->on_data = [this, i](BytesView data) { deliver_packet_bytes(i, data.size()); };
      impl_->ue_socks[i] = std::move(sock);
      if (config_.shaper_resample_s > 0.0 && !config_.unlimited_shaper) {
        schedule_packet_resample(i);
      }
    });
  }
}

void ScaleTrafficSim::schedule_packet_resample(std::uint32_t ue) {
  // Same global epoch boundaries as the fluid path (next_resample_epoch):
  // both modes resample each UE's own RNG stream at the same sim instants.
  impl_->sim.schedule_at(next_resample_epoch(), [this, ue] {
    if (arena_.mode(ue) == traffic::FlowMode::Done) return;
    const double cap = impl_->policy.sample(impl_->shaper_rngs[ue]);
    arena_.cap_bps(ue) = cap;
    net::Link* link = impl_->ue_links[ue];
    net::Node* tower = impl_->towers[arena_.cell(ue)];
    net::LinkParams p = link->params(tower);
    p.rate_bps = cap;
    link->set_params(tower, p);
    schedule_packet_resample(ue);
  });
}

// ---------------------------------------------------------------------------
// Shared accounting
// ---------------------------------------------------------------------------

void ScaleTrafficSim::deliver_packet_bytes(traffic::SessionId id, std::size_t n) {
  if (arena_.mode(id) != traffic::FlowMode::Packet) return;
  const double add = std::min(static_cast<double>(n), arena_.residual_bytes(id));
  if (add <= 0.0) return;
  arena_.delivered_bytes(id) += add;
  packet_ledger_bytes_ += add;
  if (arena_.residual_bytes(id) <= 0.5) {
    arena_.delivered_bytes(id) = arena_.demand_bytes(id);
    if (fluid_) {
      // Hybrid: flow finished inside its fidelity window.
      const auto it = impl_->lane_of.find(id);
      fluid_->finish_packet_flow(id);
      if (it != impl_->lane_of.end()) free_lane(it->second);
    } else {
      arena_.mode(id) = traffic::FlowMode::Done;
      arena_.finish_ns(id) = impl_->sim.now().nanos();
      if (auto& s = impl_->ue_socks[id]) s->close();
    }
    on_flow_done(id);
  }
}

void ScaleTrafficSim::on_flow_done(traffic::SessionId id) {
  ++done_;
  const double t =
      static_cast<double>(arena_.finish_ns(id) - arena_.start_ns(id)) / 1e9;
  completion_s_.add(t);
  if (t > 0.0) flow_tput_mbps_.add(arena_.demand_bytes(id) * 8.0 / t / 1e6);
  last_finish_s_ = std::max(last_finish_s_, static_cast<double>(arena_.finish_ns(id)) / 1e9);
  obs::observe(obs::histogram("traffic.completion_s"), t);
  obs::inc(obs::counter("traffic.flows_completed"));
}

double ScaleTrafficSim::delivered_now() {
  if (fluid_) fluid_->accrue_all();
  double delivered = 0.0;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(config_.n_ues); ++i) {
    delivered += arena_.delivered_bytes(i);
  }
  return delivered;
}

ScaleTrafficResult ScaleTrafficSim::run_to_completion() {
  start();
  impl_->sim.run_until(TimePoint::zero() + Duration::seconds(config_.horizon_s));
  return collect();
}

ScaleTrafficResult ScaleTrafficSim::collect() {
  // Final billing sweep so billed totals equal delivered x price exactly.
  bill_sweep();

  ScaleTrafficResult r;
  r.n_ues = config_.n_ues;
  r.completed = done_;
  r.completion_mean_s = completion_s_.empty() ? 0.0 : completion_s_.mean();
  r.completion_p50_s = completion_s_.empty() ? 0.0 : completion_s_.p50();
  r.completion_p99_s = completion_s_.empty() ? 0.0 : completion_s_.p99();
  r.flow_tput_mean_mbps = flow_tput_mbps_.empty() ? 0.0 : flow_tput_mbps_.mean();
  double delivered = 0.0;
  double billed = 0.0;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(config_.n_ues); ++i) {
    delivered += arena_.delivered_bytes(i);
    billed += arena_.billed_usd(i);
  }
  r.total_gbytes = delivered / 1e9;
  r.billing_usd = billed;
  r.delivered_bytes = delivered;
  r.sim_s = done_ == config_.n_ues ? last_finish_s_ : config_.horizon_s;
  r.events = impl_->sim.events_executed();
  r.arena_bytes = static_cast<std::uint64_t>(arena_.slots()) *
                  traffic::SessionArena::bytes_per_session();
  r.packet_ledger_bytes = packet_ledger_bytes_;
  if (fluid_) {
    r.rate_events = fluid_->rate_events();
    r.demotions = fluid_->demotions();
    r.promotions = fluid_->promotions();
    r.segment_bytes = fluid_->segment_bytes();
    r.negative_residuals = fluid_->negative_residuals();
    obs::inc(obs::counter("traffic.fluid.rate_events"), fluid_->rate_events());
    obs::inc(obs::counter("traffic.fluid.demotions"), fluid_->demotions());
    obs::inc(obs::counter("traffic.fluid.promotions"), fluid_->promotions());
  }
  obs::set(obs::gauge("traffic.arena_mb"), static_cast<double>(r.arena_bytes) / 1e6);
  return r;
}

ScaleTrafficResult run_scale_traffic(const ScaleTrafficConfig& config) {
  ScaleTrafficSim sim(config);
  return sim.run_to_completion();
}

}  // namespace cb::scenario
