// Thread-pool runner for independent simulation trials.
//
// The event engine is single-threaded by design (determinism comes from one
// ordered queue), but a parameter sweep is embarrassingly parallel: each
// sweep point builds its own Simulator from its own seed and never touches
// another trial's state. TrialRunner executes such trials on a pool of
// worker threads and returns results in submission order, so a parallel
// sweep prints byte-identically to a sequential one.
//
// Determinism rules for trial closures:
//  - construct the Simulator (and everything hanging off it) inside the
//    closure — never share sim objects across trials;
//  - derive randomness only from the trial's own seed;
//  - return plain data (stats structs), not live simulation objects.
// The logger's simulated-time source is thread-local, so concurrent trials
// log with their own clocks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"

namespace cb::scenario {

class TrialRunner {
 public:
  /// `threads == 0` uses the hardware concurrency (at least 1).
  explicit TrialRunner(unsigned threads = 0);
  ~TrialRunner();

  TrialRunner(const TrialRunner&) = delete;
  TrialRunner& operator=(const TrialRunner&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(0), fn(1), ..., fn(n-1) on the pool and return the results in
  /// index order. Blocks until every trial finishes. If any trial throws,
  /// the first exception (by index) is rethrown after all trials complete.
  ///
  /// Metrics: if the calling thread has an active obs::Registry, each trial
  /// runs with a private per-trial registry installed on its worker thread,
  /// and all of them are merged into the caller's registry strictly in trial
  /// INDEX order after the barrier — never in completion order — so a
  /// parallel sweep snapshots byte-identically to `threads = 1`.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<R> results(n);
    std::vector<std::exception_ptr> errors(n);
    obs::Registry* parent = obs::active();
    std::vector<std::unique_ptr<obs::Registry>> trial_metrics;
    if (parent != nullptr) {
      trial_metrics.resize(n);
      for (auto& r : trial_metrics) {
        r = std::make_unique<obs::Registry>(parent->trace().capacity());
      }
    }
    Batch batch;
    for (std::size_t i = 0; i < n; ++i) {
      submit([&, i, parent] {
        obs::ScopedRegistry scoped(parent ? trial_metrics[i].get() : nullptr);
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }, batch);
    }
    wait(batch, n);
    if (parent != nullptr) {
      for (std::size_t i = 0; i < n; ++i) parent->merge(*trial_metrics[i]);
    }
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return results;
  }

 private:
  struct Batch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
  };

  void submit(std::function<void()> task, Batch& batch);
  void wait(Batch& batch, std::size_t n);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace cb::scenario
