// Randomized scenario generation for the simulation checker (src/check).
//
// A FuzzScenario is PURE DATA: a flat, seed-derived description of one
// CellBricks world — topology, UE trajectory, rate policy, app mix,
// dishonesty knobs, and a scripted fault schedule. The check layer turns it
// into a live run (check::run_scenario), shrinks it when an invariant trips,
// and round-trips it through JSON as a self-contained repro. Keeping the
// type here (not in src/check) lets the scenario library stay free of any
// checker dependency while the checker reuses World/FaultPlan wiring.
//
// Generation is deterministic: random_scenario(seed) consumes one Rng stream
// and nothing else, so the same seed yields the same scenario on every
// platform — the seed IS the corpus entry.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace cb::scenario {

/// One scripted fault event (a flat union so fault lists shrink uniformly).
struct FuzzFault {
  enum class Kind : int {
    BrokerOutage = 0,  // cloud host dark for [start, start+duration)
    TelcoCrash = 1,    // bTelco `telco` crashes, restarts after `duration`
    RadioDrop = 2,     // serving bearer cut at `start` (no heal)
    WanDegrade = 3,    // loss/corruption on every tower<->cloud path
    ShardKill = 4,     // broker shard crash+restart (broker_shards > 1 only;
                       // the `telco` field doubles as the shard index)
  };
  Kind kind = Kind::BrokerOutage;
  double start_s = 0.0;
  double duration_s = 0.0;  // ignored for RadioDrop
  std::size_t telco = 0;    // TelcoCrash: bTelco index; ShardKill: shard index
  double loss = 0.0;        // WanDegrade only
  double corrupt = 0.0;     // WanDegrade only
};

struct FuzzScenario {
  std::uint64_t seed = 1;   // world seed (also the generator seed)
  int n_towers = 4;         // 1..8 bTelcos in the extreme design point
  bool night = false;       // selects the Appendix-A rate policy
  double speed_mps = 12.0;  // UE trajectory
  double tower_spacing_m = 900.0;
  double duration_s = 120.0;  // simulated horizon
  double radio_loss = 0.0;
  bool unlimited_policy = false;
  double report_interval_s = 10.0;
  double telco0_overreport = 1.0;  // §4.3 dishonesty knobs
  double ue_underreport = 1.0;
  /// App mix: 0 = mobility only, 1 = bulk download, 2 = ping, 3 = both.
  int app = 1;
  /// Hybrid fluid/packet traffic phase (DESIGN.md §11): when > 0 the checker
  /// also runs a scale-traffic sim of this many UEs under the fluid
  /// invariant catalogue (fluid.conservation et al.). 0 = phase off.
  int fluid_ues = 0;
  /// Traffic phase mode: fluid-only, or hybrid with a mid-run fault window
  /// that exercises the fluid -> packet -> fluid fidelity boundary.
  bool fluid_hybrid = false;
  /// Broker deployment: 1 = single Brokerd (default), 2/4/8 = a sharded
  /// BrokerCluster with the replicated settlement log (DESIGN.md §12) —
  /// sampled occasionally so the settlement invariants see chaos too.
  int broker_shards = 1;
  /// Attach-protocol axis (scenario::AttachProtocol): 0 = EPS-AKA, 1 =
  /// 5G-AKA (both select the MNO/EPC world), 2 = SAP (CellBricks, the
  /// default). Sampled occasionally so the attach conformance invariants
  /// run under the same chaos schedules as the billing ones.
  int attach_protocol = 2;
  /// SAP resumption tickets (attach_protocol == 2 only; the world degrades
  /// it to plain SAP on sharded deployments).
  bool resume_ticket = false;
  /// Measurement-channel axis (ran::ChannelConfig): log-normal shadowing
  /// sigma (0 = the pure-path-loss engine), its spatial decorrelation
  /// distance, and per-tick fast fading.
  double shadow_sigma_db = 0.0;
  double decorrelation_m = 50.0;
  bool fast_fading = false;
  /// Reselection-policy axis (ran::ReselectionPolicyKind): 0 = A3
  /// hysteresis (default), 1 = A3 + time-to-trigger, 2 = rank-based.
  int reselection_policy = 0;
  int ttt_ms = 0;       // A3+TTT only
  int l3_filter_k = 0;  // 3GPP L3 filter k; 0 = no smoothing
  std::vector<FuzzFault> faults;
  /// TEST HOOK passthrough: re-introduce the broker's report double-count
  /// bug (Brokerd::Config::test_skip_report_dedup) so the checker's
  /// detect/shrink/replay path can be exercised end to end.
  bool plant_dedup_bug = false;
};

/// Sample a scenario from `seed`. Deterministic; consumes only Rng(seed).
FuzzScenario random_scenario(std::uint64_t seed);

}  // namespace cb::scenario
