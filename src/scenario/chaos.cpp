#include "scenario/chaos.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace cb::scenario {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

}  // namespace

ChaosResult run_chaos(const ChaosConfig& config) {
  // Every chaos run records into its own registry so the ChaosResult carries
  // a self-contained snapshot; anything recorded here is also folded into
  // the caller's registry (if one is active) before returning.
  obs::Registry* parent = obs::active();
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  WorldConfig wcfg = config.world;
  wcfg.arch = Architecture::CellBricks;
  World world(wcfg);
  sim::Simulator& sim = world.simulator();

  // Bind the scripted faults to the freshly built world.
  sim::FaultPlan plan;
  for (const auto& o : config.broker_outages) {
    plan.window(
        "broker-outage", o.start, o.duration,
        [&world] { world.cloud_node()->set_up(false); },
        [&world] { world.cloud_node()->set_up(true); });
  }
  for (const auto& c : config.telco_crashes) {
    plan.window(
        "crash:btelco-" + std::to_string(c.telco), c.start, c.duration,
        [&world, i = c.telco] { world.btelco(i)->crash(); },
        [&world, i = c.telco] { world.btelco(i)->restart(); });
  }
  for (const auto& d : config.radio_drops) {
    plan.at("radio-drop", d.at, [&world] {
      const ran::CellId cell = world.ue_agent()->serving_cell();
      if (cell != 0) world.ran_map().site(cell).radio_link->set_up(false);
    });
  }
  for (const auto& k : config.shard_kills) {
    if (world.broker_cluster() == nullptr) continue;  // single-broker world
    const std::size_t i = std::min(k.shard, world.broker_cluster()->n_shards() - 1);
    plan.window(
        "kill:broker-shard-" + std::to_string(i), k.start, k.duration,
        [&world, i] { world.broker_cluster()->crash_shard(i); },
        [&world, i] { world.broker_cluster()->restart_shard(i); });
  }
  for (const auto& w : config.wan_degrades) {
    auto apply = [&world](double loss, double corrupt) {
      for (std::size_t i = 0; i < world.n_cloud_links(); ++i) {
        net::Link* link = world.cloud_link(i);
        for (net::Node* end : {link->endpoint_a(), link->endpoint_b()}) {
          net::LinkParams p = link->params(end);
          p.loss = loss;
          p.corrupt = corrupt;
          link->set_params(end, p);
        }
      }
    };
    plan.window(
        "wan-degrade", w.start, w.duration,
        [apply, loss = w.loss, corrupt = w.corrupt] { apply(loss, corrupt); },
        [apply] { apply(0.0, 0.0); });
  }

  sim::ChaosController chaos(sim, std::move(plan));
  chaos.arm();
  world.start();

  // Availability sampling + determinism fingerprint.
  ChaosResult result;
  std::uint64_t fp = kFnvOffset;
  std::uint64_t samples = 0, attached_samples = 0;
  std::uint64_t samples_after = 0, attached_after = 0;
  const TimePoint last_fault = chaos.plan().last_event();
  const auto n_samples = static_cast<std::uint64_t>(
      config.duration.to_seconds() / config.sample_interval.to_seconds());
  for (std::uint64_t k = 1; k <= n_samples; ++k) {
    const TimePoint at = TimePoint::zero() + config.sample_interval * k;
    sim.schedule_at(at, [&, at] {
      const bool attached = world.ue_agent()->attached();
      ++samples;
      attached_samples += attached ? 1 : 0;
      if (at > last_fault) {
        ++samples_after;
        attached_after += attached ? 1 : 0;
      }
      fnv_mix(fp, attached ? 1 : 0);
      fnv_mix(fp, world.ue_agent()->serving_cell());
      fnv_mix(fp, chaos.active_faults());
    });
  }

  sim.run_until(TimePoint::zero() + config.duration);

  result.availability =
      samples > 0 ? static_cast<double>(attached_samples) / static_cast<double>(samples) : 0.0;
  result.availability_after_faults =
      samples_after > 0
          ? static_cast<double>(attached_after) / static_cast<double>(samples_after)
          : result.availability;
  result.reattach_latency_ms = world.ue_agent()->reattach_latencies();
  result.attach_failures = world.ue_agent()->attach_failures();
  result.bearer_losses = world.ue_agent()->bearer_losses();
  result.ue_attached_at_end = world.ue_agent()->attached();
  result.reports_abandoned = world.ue_agent()->reports_abandoned();
  std::size_t sessions_at_end = 0;
  for (std::size_t i = 0; i < world.n_btelcos(); ++i) {
    result.sessions_gced += world.btelco(i)->sessions_gced();
    result.reports_abandoned += world.btelco(i)->reports_abandoned();
    sessions_at_end += world.btelco(i)->active_sessions();
  }
  result.orphan_sessions = sessions_at_end - (result.ue_attached_at_end ? 1 : 0);

  result.reports_ingested = world.broker_reports_ingested();
  result.reports_deduped = world.broker_reports_deduped();
  result.unpaired_expired = world.broker_unpaired_expired();
  result.pairs_compared = world.broker_pairs_compared();
  result.pair_completion =
      result.reports_ingested > 0
          ? 2.0 * static_cast<double>(result.pairs_compared) /
                static_cast<double>(result.reports_ingested)
          : 0.0;
  result.fault_log = chaos.log();

  // Fold the end-state counters into the fingerprint so silent divergence
  // in recovery bookkeeping also trips the determinism check.
  fnv_mix(fp, result.attach_failures);
  fnv_mix(fp, result.bearer_losses);
  fnv_mix(fp, result.sessions_gced);
  fnv_mix(fp, result.orphan_sessions);
  fnv_mix(fp, result.reports_ingested);
  fnv_mix(fp, result.reports_deduped);
  fnv_mix(fp, result.unpaired_expired);
  fnv_mix(fp, result.pairs_compared);
  fnv_mix(fp, static_cast<std::uint64_t>(result.fault_log.size()));
  result.fingerprint = fp;
  result.metrics_json = metrics.to_json();
  result.trace_fingerprint = metrics.trace().fingerprint();
  if (parent != nullptr) parent->merge(metrics);
  return result;
}

}  // namespace cb::scenario
