// Drive-test routes calibrated to the paper's Table 1.
//
// The paper reports mean-time-to-handover (MTTHO) per route and time of day
// (suburb 73.50/65.60 s, downtown 68.16/50.60 s, highway 44.72/25.50 s for
// day/night). We fix a per-route tower spacing and derive the speed that
// reproduces each MTTHO; day vs night also selects the Appendix-A rate
// policy (aggressive daytime shaping vs permissive night).
#pragma once

#include <string>
#include <vector>

#include "ran/rate_policy.hpp"

namespace cb::scenario {

struct RouteSpec {
  std::string name;
  bool night = false;
  double speed_mps = 10.0;
  double tower_spacing_m = 900.0;
  ran::RatePolicy policy = ran::RatePolicy::day();

  /// Expected mean time between handovers.
  double expected_mttho_s() const { return tower_spacing_m / speed_mps; }
};

inline RouteSpec suburb_day() {
  return {"Suburb/D", false, 900.0 / 73.50, 900.0, ran::RatePolicy::day()};
}
inline RouteSpec suburb_night() {
  return {"Suburb/N", true, 900.0 / 65.60, 900.0, ran::RatePolicy::night()};
}
inline RouteSpec downtown_day() {
  return {"Downtown/D", false, 700.0 / 68.16, 700.0, ran::RatePolicy::day()};
}
inline RouteSpec downtown_night() {
  return {"Downtown/N", true, 700.0 / 50.60, 700.0, ran::RatePolicy::night()};
}
inline RouteSpec highway_day() {
  return {"Highway/D", false, 1400.0 / 44.72, 1400.0, ran::RatePolicy::day()};
}
inline RouteSpec highway_night() {
  return {"Highway/N", true, 1400.0 / 25.50, 1400.0, ran::RatePolicy::night()};
}

inline std::vector<RouteSpec> all_routes() {
  return {suburb_day(),  suburb_night(),  downtown_day(),
          downtown_night(), highway_day(), highway_night()};
}

}  // namespace cb::scenario
