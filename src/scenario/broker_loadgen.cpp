#include "scenario/broker_loadgen.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.hpp"
#include "crypto/box.hpp"

namespace cb::scenario {

namespace {

using cellbricks::BrokerMsg;
using cellbricks::Reporter;

constexpr std::uint16_t kClientPort = 4599;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

/// Same decorrelated-jitter schedule the real agents use.
Duration decorrelated_backoff(Rng& rng, Duration base, Duration prev, Duration cap) {
  const double base_s = base.to_seconds();
  const double hi_s = std::max(base_s, prev.to_seconds() * 3.0);
  return std::min(Duration::seconds(rng.uniform(base_s, hi_s)), cap);
}

}  // namespace

/// One subscriber/bTelco pair: its own SAP endpoints, router, and retry
/// state. Both report halves are sent from the same node — the bench models
/// the broker's ingest path, not the access topology.
struct BrokerLoadgen::Client {
  std::size_t index = 0;
  net::Node* node = nullptr;
  net::Ipv4Addr addr;
  std::unique_ptr<cellbricks::SapUe> ue;
  std::unique_ptr<cellbricks::SapTelco> telco;
  std::unique_ptr<cellbricks::ShardRouter> router;
  Rng jitter{0};  // retry backoff draws (re-seeded by fork at build time)
  Rng seal{0};    // nonce + box randomness (likewise)

  // Attach state.
  std::uint64_t auth_txn = 0;
  Bytes auth_wire;
  int auth_attempts_left = 0;
  Duration auth_next_delay;
  std::size_t auth_last_shard = 0;
  bool auth_sent_once = false;
  sim::EventHandle auth_timer;
  bool attached = false;
  std::uint64_t session_id = 0;
  std::uint32_t next_period = 0;

  struct OutstandingReport {
    Bytes wire;
    int attempts_left = 0;
    Duration next_delay;
    std::size_t last_shard = 0;
    bool sent_once = false;
    TimePoint first_sent;
    sim::EventHandle timer;
  };
  std::map<std::uint64_t, OutstandingReport> outstanding;
  std::uint64_t next_seq = 1;
  sim::EventHandle report_timer;
};

std::uint64_t BrokerLoadgenResult::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, events_executed);
  fnv_mix(h, sessions_issued);
  fnv_mix(h, reports_sent);
  fnv_mix(h, report_txs);
  fnv_mix(h, reports_acked);
  fnv_mix(h, reports_abandoned);
  fnv_mix(h, reports_ingested);
  fnv_mix(h, reports_deduped);
  fnv_mix(h, redirects_sent);
  fnv_mix(h, redirects_learned);
  fnv_mix(h, takeovers);
  fnv_mix(h, verdicts_paired);
  fnv_mix(h, verdicts_missing);
  fnv_mix(h, verdict_conflicts);
  fnv_mix(h, verdicts_lost);
  for (std::uint64_t v : verdicts_per_s) fnv_mix(h, v);
  return h;
}

BrokerLoadgen::BrokerLoadgen(BrokerLoadgenConfig config)
    : config_(config), sim_(config.seed), network_(sim_) {
  // Keys first, in a fixed order, from a dedicated stream (the world's
  // convention), so topology changes never reshuffle identities.
  Rng key_rng = sim_.rng().fork(0xCA11);
  crypto::CertificateAuthority ca("cb-root", key_rng, config_.rsa_bits);
  const TimePoint not_after = TimePoint::zero() + Duration::s(86400 * 365);
  auto broker_keys = crypto::RsaKeyPair::generate(key_rng, config_.rsa_bits);
  broker_cert_ = ca.issue("broker-0", broker_keys.public_key(), TimePoint::zero(), not_after);
  broker_pk_ = broker_cert_.key();

  hub_ = network_.add_node("lg-hub");
  cluster_ = std::make_unique<cellbricks::BrokerCluster>(config_.shard);
  for (int i = 0; i < config_.n_shards; ++i) {
    net::Node* host = network_.add_node("lg-shard-" + std::to_string(i));
    network_.register_address(net::Ipv4Addr(2, 2, 2, static_cast<std::uint8_t>(10 + i)), host);
    network_.connect(hub_, host, net::LinkParams{.rate_bps = 10e9, .delay = Duration::us(250)});
    cluster_->add_shard(*host, cellbricks::SapBroker("broker-0", broker_keys, broker_cert_,
                                                     ca.public_key()));
  }

  for (int i = 0; i < config_.n_clients; ++i) {
    auto c = std::make_unique<Client>();
    c->index = static_cast<std::size_t>(i);
    const std::string id_u = "lg-ue-" + std::to_string(i);
    const std::string id_t = "lg-telco-" + std::to_string(i);
    auto ue_keys = crypto::RsaKeyPair::generate(key_rng, config_.rsa_bits);
    auto telco_keys = crypto::RsaKeyPair::generate(key_rng, config_.rsa_bits);
    auto telco_cert = ca.issue(id_t, telco_keys.public_key(), TimePoint::zero(), not_after);
    cluster_->add_subscriber(id_u, ue_keys.public_key());
    cluster_->add_telco(id_t, telco_keys.public_key());

    c->node = network_.add_node("lg-client-" + std::to_string(i));
    c->addr = net::Ipv4Addr(9, 0, static_cast<std::uint8_t>(i >> 8),
                            static_cast<std::uint8_t>(i & 0xFF));
    network_.register_address(c->addr, c->node);
    // A WAN leg comparable to the world's tower->cloud path.
    network_.connect(c->node, hub_,
                     net::LinkParams{.rate_bps = 1e9, .delay = Duration::ms(12)});
    c->ue = std::make_unique<cellbricks::SapUe>(id_u, "broker-0", std::move(ue_keys),
                                                broker_pk_);
    c->telco = std::make_unique<cellbricks::SapTelco>(id_t, std::move(telco_keys),
                                                      std::move(telco_cert), ca.public_key());
    c->jitter = sim_.rng().fork(0x10AD0000 + static_cast<std::uint64_t>(i) * 2);
    c->seal = sim_.rng().fork(0x10AD0001 + static_cast<std::uint64_t>(i) * 2);
    Client* raw = c.get();
    c->node->bind_udp(kClientPort, [this, raw](const net::Packet& p) {
      handle_packet(*raw, p);
    });
    clients_.push_back(std::move(c));
  }
  network_.recompute_routes();
}

BrokerLoadgen::~BrokerLoadgen() = default;

void BrokerLoadgen::start_attach(Client& c) {
  const Bytes auth_req_u = c.ue->make_auth_req(c.telco->id_t(), c.seal);
  const Bytes auth_req_t = c.telco->make_auth_req_t(auth_req_u, cellbricks::QosCap{});
  c.auth_txn = 0x10000 + c.index;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(BrokerMsg::AuthReq));
  w.u64(c.auth_txn);
  w.bytes(auth_req_t);
  c.auth_wire = w.take();
  c.auth_attempts_left = config_.auth_attempts;
  c.auth_next_delay = config_.auth_retry;
  c.auth_sent_once = false;
  transmit_auth(c);
}

void BrokerLoadgen::transmit_auth(Client& c) {
  if (c.attached) return;
  if (c.auth_attempts_left <= 0) {
    ++attach_failures_;
    return;
  }
  --c.auth_attempts_left;
  const TimePoint now = sim_.now();
  if (c.auth_sent_once) c.router->note_timeout(c.auth_last_shard, now);
  c.auth_last_shard = c.router->pick_for_auth(now);
  c.auth_sent_once = true;
  net::Packet p;
  p.src = net::EndPoint{c.addr, kClientPort};
  p.dst = c.router->endpoint(c.auth_last_shard);
  p.proto = net::Proto::Udp;
  p.payload = c.auth_wire;
  c.node->send(std::move(p));
  Client* raw = &c;
  c.auth_timer = sim_.schedule(c.auth_next_delay, [this, raw] { transmit_auth(*raw); });
  c.auth_next_delay =
      decorrelated_backoff(c.jitter, config_.auth_retry, c.auth_next_delay, config_.retry_cap);
}

void BrokerLoadgen::send_period_reports(Client& c) {
  if (sim_.now() >= load_end_) return;
  const std::uint32_t period = c.next_period++;
  send_report(c, Reporter::Ue, period);
  send_report(c, Reporter::Telco, period);
  Client* raw = &c;
  c.report_timer =
      sim_.schedule(config_.report_interval, [this, raw] { send_period_reports(*raw); });
}

void BrokerLoadgen::send_report(Client& c, Reporter side, std::uint32_t period) {
  // Honest pair: both halves carry identical byte counts, deterministic per
  // (client, period), so every pair must resolve as a clean VerdictPaired.
  cellbricks::TrafficReport report;
  report.session_id = c.session_id;
  report.reporter = side;
  report.period = period;
  report.dl_bytes = 1'000'000 + c.index * 1013 + static_cast<std::uint64_t>(period) * 17;
  report.ul_bytes = report.dl_bytes / 10;
  report.duration_ms = static_cast<std::uint64_t>(config_.report_interval.to_millis());
  const double period_s = config_.report_interval.to_seconds();
  report.avg_dl_bps = static_cast<double>(report.dl_bytes) * 8.0 / period_s;
  report.avg_ul_bps = static_cast<double>(report.ul_bytes) * 8.0 / period_s;

  const Bytes report_bytes = report.serialize();
  ByteWriter inner;
  inner.str(side == Reporter::Ue ? c.ue->id_u() : c.telco->id_t());
  inner.u8(static_cast<std::uint8_t>(side));
  inner.bytes(report_bytes);
  inner.bytes(side == Reporter::Ue ? c.ue->sign(report_bytes) : c.telco->sign(report_bytes));
  const Bytes sealed = crypto::seal(broker_pk_, inner.data(), c.seal);

  const std::uint64_t seq = c.next_seq++;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(BrokerMsg::Report));
  w.u64(seq);
  w.bytes(sealed);
  Client::OutstandingReport& out = c.outstanding[seq];
  out.wire = w.take();
  out.attempts_left = config_.report_attempts;
  out.next_delay = config_.report_retry;
  out.first_sent = sim_.now();
  ++reports_sent_;
  transmit_report(c, seq);
}

void BrokerLoadgen::transmit_report(Client& c, std::uint64_t seq) {
  auto it = c.outstanding.find(seq);
  if (it == c.outstanding.end()) return;
  Client::OutstandingReport& out = it->second;
  if (out.attempts_left <= 0) {
    ++reports_abandoned_;
    c.outstanding.erase(it);
    return;
  }
  --out.attempts_left;
  ++report_txs_;
  const TimePoint now = sim_.now();
  if (out.sent_once) c.router->note_timeout(out.last_shard, now);
  out.last_shard = c.router->pick_for_session(c.session_id, now);
  out.sent_once = true;
  net::Packet p;
  p.src = net::EndPoint{c.addr, kClientPort};
  p.dst = c.router->endpoint(out.last_shard);
  p.proto = net::Proto::Udp;
  p.payload = out.wire;
  c.node->send(std::move(p));
  Client* raw = &c;
  out.timer = sim_.schedule(out.next_delay, [this, raw, seq] { transmit_report(*raw, seq); });
  out.next_delay =
      decorrelated_backoff(c.jitter, config_.report_retry, out.next_delay, config_.retry_cap);
}

void BrokerLoadgen::handle_packet(Client& c, const net::Packet& p) {
  ByteReader r(p.payload.view());
  const auto type = static_cast<BrokerMsg>(r.u8());
  switch (type) {
    case BrokerMsg::AuthOk: {
      const std::uint64_t txn = r.u64();
      if (c.attached || txn != c.auth_txn) return;
      const Bytes auth_resp_t = r.bytes();
      const Bytes auth_resp_u = r.bytes();
      auto ts = c.telco->process_auth_resp(auth_resp_t, broker_cert_, sim_.now());
      auto us = c.ue->process_auth_resp(auth_resp_u);
      if (!ts.ok() || !us.ok()) {
        ++attach_failures_;
        c.auth_timer.cancel();
        return;
      }
      c.attached = true;
      c.session_id = us.value().session_id;
      ++sessions_issued_;
      c.auth_timer.cancel();
      c.router->note_ok(c.auth_last_shard);
      send_period_reports(c);
      return;
    }
    case BrokerMsg::AuthErr: {
      const std::uint64_t txn = r.u64();
      if (c.attached || txn != c.auth_txn) return;
      ++attach_failures_;
      c.auth_timer.cancel();
      return;
    }
    case BrokerMsg::ReportAck: {
      const std::uint64_t seq = r.u64();
      auto it = c.outstanding.find(seq);
      if (it == c.outstanding.end()) return;
      if (it->second.sent_once) c.router->note_ok(it->second.last_shard);
      ack_latencies_ms_.push_back((sim_.now() - it->second.first_sent).to_millis());
      it->second.timer.cancel();
      c.outstanding.erase(it);
      ++reports_acked_;
      return;
    }
    case BrokerMsg::Redirect: {
      const std::uint64_t seq = r.u64();
      const std::uint16_t bucket = r.u16();
      const std::uint16_t owner = r.u16();
      c.router->learn_redirect(bucket, owner);
      auto it = c.outstanding.find(seq);
      if (it == c.outstanding.end()) return;
      Client::OutstandingReport& out = it->second;
      // The shard answered (healthy, just not the owner): clear strikes,
      // refresh the retry budget, resend to the owner immediately.
      c.router->note_ok(out.last_shard);
      out.timer.cancel();
      out.attempts_left = config_.report_attempts;
      out.next_delay = config_.report_retry;
      transmit_report(c, seq);
      return;
    }
    default:
      return;
  }
}

BrokerLoadgenResult BrokerLoadgen::run() {
  cluster_->start();
  for (auto& c : clients_) {
    c->router = std::make_unique<cellbricks::ShardRouter>(cluster_->client_endpoints());
  }

  load_end_ = TimePoint::zero() + Duration::seconds(config_.duration_s);
  const TimePoint horizon = load_end_ + Duration::seconds(config_.drain_s);

  // Stagger attaches so the SAP burst does not arrive in lockstep.
  for (auto& c : clients_) {
    Client* raw = c.get();
    sim_.schedule(Duration::millis(10.0 * static_cast<double>(c->index)),
                  [this, raw] { start_attach(*raw); });
  }

  if (config_.kill_shard >= 0 && config_.kill_shard < config_.n_shards) {
    const std::size_t victim = static_cast<std::size_t>(config_.kill_shard);
    sim_.schedule(Duration::seconds(config_.kill_at_s),
                  [this, victim] { cluster_->crash_shard(victim); });
    sim_.schedule(Duration::seconds(config_.kill_at_s + config_.kill_duration_s),
                  [this, victim] { cluster_->restart_shard(victim); });
  }

  // Availability timeline: cumulative observer verdicts, one sample per
  // sim second.
  const auto n_samples =
      static_cast<std::uint64_t>(config_.duration_s + config_.drain_s);
  for (std::uint64_t t = 1; t <= n_samples; ++t) {
    sim_.schedule(Duration::seconds(static_cast<double>(t)), [this] {
      verdict_timeline_.push_back(cluster_->observer().verdicts_paired() +
                                  cluster_->observer().verdicts_missing());
    });
  }

  sim_.run_until(horizon);

  BrokerLoadgenResult res;
  res.sessions_issued = sessions_issued_;
  res.attach_failures = attach_failures_;
  res.reports_sent = reports_sent_;
  res.report_txs = report_txs_;
  res.reports_acked = reports_acked_;
  res.reports_abandoned = reports_abandoned_;
  res.reports_ingested = cluster_->reports_ingested();
  res.reports_deduped = cluster_->reports_deduped();
  res.redirects_sent = cluster_->redirects_sent();
  for (auto& c : clients_) res.redirects_learned += c->router->redirects_learned();
  for (std::size_t i = 0; i < cluster_->n_shards(); ++i) {
    res.takeovers += cluster_->shard(i).takeovers();
  }
  const auto& obs = cluster_->observer();
  res.verdicts_paired = obs.verdicts_paired();
  res.verdicts_missing = obs.verdicts_missing();
  res.verdict_conflicts = obs.verdict_conflicts();
  // A lost verdict = an ingested report whose (session, period) pair never
  // got ANY verdict by the end of the drain.
  std::set<std::pair<std::uint64_t, std::uint32_t>> undecided;
  for (const auto& [key, pending] : obs.pending()) {
    const auto& [sid, period, side] = key;
    (void)side;
    (void)pending;
    if (!obs.pair_decided(sid, period)) undecided.insert({sid, period});
  }
  res.verdicts_lost = undecided.size();

  if (!ack_latencies_ms_.empty()) {
    std::vector<double> lat = ack_latencies_ms_;
    std::sort(lat.begin(), lat.end());
    res.ack_p50_ms = lat[lat.size() / 2];
    res.ack_p99_ms = lat[static_cast<std::size_t>(
        static_cast<double>(lat.size() - 1) * 0.99)];
  }
  res.ingest_rps = static_cast<double>(res.reports_ingested) / config_.duration_s;
  res.verdicts_per_s = verdict_timeline_;
  res.events_executed = sim_.events_executed();
  return res;
}

}  // namespace cb::scenario
