// Table 1 experiment harness: run each application class over a (route,
// time-of-day, architecture) configuration and collect the paper's metrics.
#pragma once

#include <string>
#include <vector>

#include "scenario/world.hpp"

namespace cb::scenario {

struct Table1Cell {
  std::string route;
  Architecture arch;
  double mttho_s = 0.0;
  double ping_p50_ms = 0.0;
  double iperf_mbps = 0.0;
  double voip_mos = 0.0;
  double video_level = 0.0;
  double web_load_s = 0.0;
};

struct Table1Options {
  /// Per-application drive duration (longer = more handovers averaged).
  Duration duration = Duration::s(300);
  std::uint64_t seed = 7;
};

/// Run all four application classes (each in a fresh world with the same
/// seed, so handover patterns match) and fill one Table-1 cell.
Table1Cell run_table1_cell(Architecture arch, const RouteSpec& route,
                           const Table1Options& options = Table1Options());

}  // namespace cb::scenario
