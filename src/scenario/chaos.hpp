// Chaos experiment: a CellBricks world driven through a scripted fault
// schedule (broker outages, bTelco crashes, radio drops, WAN degradation)
// while a mobile UE keeps attaching, moving, and reporting.
//
// Measures what the recovery machinery buys: attach availability over the
// run and after the faults clear, the outage-to-recovered latency
// distribution, how many orphaned sessions the inactivity GC reclaims, and
// how much of the billing-report pairing survives. A FNV fingerprint over
// the sampled timeline doubles as the determinism witness — two runs of
// the same config on the same seed must produce identical fingerprints.
#pragma once

#include "scenario/world.hpp"
#include "sim/fault.hpp"

namespace cb::scenario {

struct ChaosConfig {
  WorldConfig world;  // arch is forced to CellBricks
  /// Simulated run length and availability sampling cadence.
  Duration duration = Duration::s(300);
  Duration sample_interval = Duration::millis(200);

  /// Broker (cloud host) dark for [start, start + duration).
  struct BrokerOutage {
    TimePoint start;
    Duration duration;
  };
  /// bTelco `telco` crashes at `start`, restarts `duration` later with
  /// empty state (sessions are lost; UEs must re-attach).
  struct TelcoCrash {
    std::size_t telco = 0;
    TimePoint start;
    Duration duration;
  };
  /// One-shot RF fade: the serving bearer drops at `at` (no heal — the UE
  /// must notice via its watchdog and recover on another cell).
  struct RadioDrop {
    TimePoint at;
  };
  /// Loss/corruption on every tower<->cloud control path for the window.
  struct WanDegrade {
    TimePoint start;
    Duration duration;
    double loss = 0.0;
    double corrupt = 0.0;
  };
  /// Broker shard `shard` crashes at `start` (log, fold, and in-flight
  /// commits wiped) and restarts `duration` later in recovering state.
  /// Requires world.broker_shards > 1; ignored on single-broker worlds.
  struct ShardKill {
    std::size_t shard = 0;
    TimePoint start;
    Duration duration;
  };

  std::vector<BrokerOutage> broker_outages;
  std::vector<TelcoCrash> telco_crashes;
  std::vector<RadioDrop> radio_drops;
  std::vector<WanDegrade> wan_degrades;
  std::vector<ShardKill> shard_kills;
};

struct ChaosResult {
  /// Fraction of samples with the UE attached (whole run / after the last
  /// fault event).
  double availability = 0.0;
  double availability_after_faults = 0.0;
  /// Outage-start to re-attached, per successful recovery (ms).
  Summary reattach_latency_ms;
  std::uint64_t attach_failures = 0;
  std::uint64_t bearer_losses = 0;
  /// Orphaned sessions reclaimed by the bTelco inactivity GC.
  std::uint64_t sessions_gced = 0;
  /// Sessions still held at bTelcos at the end, excluding the UE's live one
  /// (recovery target: 0 — every orphan was GC'd).
  std::size_t orphan_sessions = 0;
  bool ue_attached_at_end = false;

  // Billing-path health.
  std::uint64_t reports_ingested = 0;
  std::uint64_t reports_deduped = 0;
  std::uint64_t unpaired_expired = 0;
  std::uint64_t reports_abandoned = 0;  // UE + all bTelcos
  std::uint64_t pairs_compared = 0;
  /// 2*pairs / ingested reports: 1.0 when every report found its twin.
  double pair_completion = 0.0;

  std::vector<sim::ChaosController::LogEntry> fault_log;
  /// FNV-1a over the sampled (attached, serving cell, active faults)
  /// timeline and the final counters. Equal across same-seed runs.
  std::uint64_t fingerprint = 0;

  /// Deterministic obs snapshot of the run: the full registry JSON and the
  /// flight-recorder fingerprint. Kept out of `fingerprint` so the engine
  /// golden value stays stable as instrumentation evolves; the obs golden
  /// test compares these two separately.
  std::string metrics_json;
  std::uint64_t trace_fingerprint = 0;
};

ChaosResult run_chaos(const ChaosConfig& config);

}  // namespace cb::scenario
