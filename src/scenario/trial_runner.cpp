#include "scenario/trial_runner.hpp"

#include <algorithm>

namespace cb::scenario {

TrialRunner::TrialRunner(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TrialRunner::~TrialRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void TrialRunner::submit(std::function<void()> task, Batch& batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back([task = std::move(task), &batch] {
      task();
      {
        std::lock_guard<std::mutex> lock(batch.mu);
        ++batch.done;
      }
      batch.cv.notify_one();
    });
  }
  cv_.notify_one();
}

void TrialRunner::wait(Batch& batch, std::size_t n) {
  std::unique_lock<std::mutex> lock(batch.mu);
  batch.cv.wait(lock, [&] { return batch.done == n; });
}

void TrialRunner::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace cb::scenario
