// World builder: assembles a complete end-to-end experiment — radio
// environment, towers, core(s), broker or HSS, WAN, app server, and a
// moving UE — under either architecture:
//
//   Mno        — one operator owns every tower; EPC (MME/HSS/SPGW) anchors
//                the UE IP; handovers are network-driven (X2 path switch);
//                apps run over plain TCP. The paper's baseline.
//   CellBricks — every tower is an independent bTelco (the §6.2 extreme
//                design point); SAP + brokerd; host-driven mobility; apps
//                run over MPTCP.
//
// Both share identical geometry, radio model, rate policy, and WAN delays,
// so any app-level difference is attributable to the architecture.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cellbricks/broker_cluster.hpp"
#include "cellbricks/brokerd.hpp"
#include "cellbricks/btelco.hpp"
#include "cellbricks/ue_agent.hpp"
#include "epc/hss.hpp"
#include "epc/mme.hpp"
#include "epc/ue_nas.hpp"
#include "ran/ran_map.hpp"
#include "ran/rate_policy.hpp"
#include "ran/ue_radio.hpp"
#include "scenario/routes.hpp"
#include "transport/factory.hpp"

namespace cb::scenario {

enum class Architecture { Mno, CellBricks };

/// Attach-protocol axis (the conformance suite's test matrix). `Default`
/// keeps the architecture's native protocol (Mno -> EpsAka, CellBricks ->
/// Sap); any other value selects BOTH the protocol and the architecture it
/// runs on, overriding `arch`:
///   EpsAka     4G EPS-AKA against the HSS (two home round-trips).
///   Aka5g      5G-AKA (SUCI concealment, RES*/HXRES*, three round-trips).
///   Sap        CellBricks SAP (one broker round-trip).
///   SapResume  SAP plus broker-minted resumption tickets: re-attaches are
///              verified locally at the bTelco, no broker on the critical
///              path. Requires the single-broker deployment — with
///              broker_shards > 1 it degrades to plain Sap (the shard
///              replication protocol has no ResumeNotify; DESIGN.md §14).
enum class AttachProtocol { Default = 0, EpsAka, Aka5g, Sap, SapResume };

/// Canonical spelling of the protocol axis (bench JSON keys, cbfuzz
/// --protocol values, conformance-test labels).
inline const char* to_string(AttachProtocol p) {
  switch (p) {
    case AttachProtocol::Default: return "default";
    case AttachProtocol::EpsAka: return "eps_aka";
    case AttachProtocol::Aka5g: return "5g_aka";
    case AttachProtocol::Sap: return "sap";
    case AttachProtocol::SapResume: return "sap_resume";
  }
  return "unknown";
}

struct WorldConfig {
  Architecture arch = Architecture::CellBricks;
  AttachProtocol protocol = AttachProtocol::Default;
  /// Resumption-ticket lifetime (SapResume only).
  Duration ticket_ttl = Duration::s(60);
  RouteSpec route = suburb_day();
  std::uint64_t seed = 1;
  /// Number of towers along the route (route length = spacing * (n-1)).
  int n_towers = 12;
  /// AGW/bTelco <-> cloud (SubscriberDB/brokerd) round-trip time.
  Duration cloud_rtt = Duration::millis(7.2);  // "us-west-1"
  /// RSA modulus for CellBricks entities (512 keeps setup fast; crypto cost
  /// in the simulated timeline comes from the calibrated proc profiles).
  std::size_t rsa_bits = 512;
  /// Random loss on the radio links.
  double radio_loss = 0.0;  // LTE HARQ/RLC leaves ~no residual loss
  /// MPTCP address_worker wait (mainline: 500 ms; Fig.9 varies this).
  Duration mptcp_address_wait = Duration::ms(500);
  /// Disable the operator rate policy (PHY-limited only).
  bool unlimited_policy = false;
  /// Dishonesty knobs (§4.3 threat model): factor applied to the DL usage
  /// the first bTelco reports, and to what the UE baseband reports.
  double telco0_overreport = 1.0;
  double ue_underreport = 1.0;
  /// Billing report cadence at both the UE baseband and the bTelcos.
  Duration report_interval = Duration::s(10);
  /// UE measurement pipeline: channel noise, L3 filtering, reselection
  /// policy (ran::UeRadioConfig). Defaults are bit-identical to the
  /// pre-measurement engine. `radio_config.channel.seed` 0 means "derive
  /// from the world seed".
  ran::UeRadioConfig radio_config{};
  /// Broker deployment size. 1 = the classic single Brokerd on the cloud
  /// host (default; bit-identical to the pre-sharding engine). >1 = a
  /// BrokerCluster of that many shards on dedicated hosts behind the cloud
  /// hub, with clients routing via a ShardRouter (DESIGN.md §12).
  int broker_shards = 1;
  /// Cluster timing knobs (heartbeats, append retry, ...) when
  /// broker_shards > 1; the `broker` member is overridden by broker_config.
  cellbricks::BrokerShard::Config shard_config{};
  /// Base component configs (chaos experiments tighten timeouts here); the
  /// world-level fields above override the corresponding members on top.
  cellbricks::Brokerd::Config broker_config{};
  cellbricks::Btelco::Config btelco_config{};
  cellbricks::UeAgent::Config ue_config{};
};

class World {
 public:
  explicit World(WorldConfig config);
  ~World();

  /// Kick off: initial attach and the mobility loop.
  void start();

  /// Observer for serving-cell changes (fired for both architectures);
  /// benches use it to align time series on handover instants.
  std::function<void(ran::CellId from, ran::CellId to)> on_cell_change;

  /// App-facing transports (UE side and server side match automatically).
  transport::StreamTransport ue_transport();
  transport::StreamTransport server_transport();

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return network_; }
  net::Node* ue_node() { return ue_; }
  net::Node* server_node() { return server_; }
  /// Fault-injection surface: the broker host, the tower<->cloud control
  /// links, and the radio map (chaos experiments flip these up/down).
  net::Node* cloud_node() { return cloud_; }
  net::Link* cloud_link(std::size_t i) { return cloud_links_[i]; }
  std::size_t n_cloud_links() const { return cloud_links_.size(); }
  const ran::RanMap& ran_map() const { return ran_map_; }
  const net::Ipv4Addr& server_addr() const { return server_addr_; }
  const net::Ipv4Addr& cloud_addr() const { return cloud_addr_; }

  ran::UeRadio& radio() { return *radio_; }
  const WorldConfig& config() const { return config_; }
  /// The protocol actually built (Default/degraded cases resolved).
  AttachProtocol protocol() const { return protocol_; }
  /// True when SapResume was requested but the sharded broker forced a
  /// degrade to plain Sap (logged + counted; conformance matrix flags it).
  bool resume_degraded() const { return resume_degraded_; }

  /// Handover statistics (MTTHO for Table 1).
  std::uint64_t handovers() const;
  double mttho_s() const;
  /// CellBricks attach latencies (the paper's d).
  const Summary* attach_latencies_ms() const;

  // Architecture internals (exposed for experiments and examples).
  cellbricks::Brokerd* brokerd() { return brokerd_.get(); }
  /// Sharded deployments (broker_shards > 1); null otherwise — exactly one
  /// of brokerd()/broker_cluster() is set in CellBricks mode.
  cellbricks::BrokerCluster* broker_cluster() { return broker_cluster_.get(); }
  cellbricks::ShardRouter* shard_router() { return shard_router_.get(); }
  net::Node* shard_node(std::size_t i) { return shard_nodes_.at(i); }

  // Broker-side billing aggregates that read the same regardless of
  // deployment shape (experiments/check/chaos accounting).
  std::uint64_t broker_sessions_issued() const {
    return broker_cluster_ ? broker_cluster_->sessions_issued()
                           : (brokerd_ ? brokerd_->sessions_issued() : 0);
  }
  std::uint64_t broker_reports_ingested() const {
    return broker_cluster_ ? broker_cluster_->reports_ingested()
                           : (brokerd_ ? brokerd_->reports_ingested() : 0);
  }
  std::uint64_t broker_reports_deduped() const {
    return broker_cluster_ ? broker_cluster_->reports_deduped()
                           : (brokerd_ ? brokerd_->reports_deduped() : 0);
  }
  std::uint64_t broker_unpaired_expired() const {
    return broker_cluster_ ? broker_cluster_->unpaired_expired()
                           : (brokerd_ ? brokerd_->unpaired_expired() : 0);
  }
  std::uint64_t broker_pairs_compared() const {
    return broker_cluster_ ? broker_cluster_->pairs_compared()
                           : (brokerd_ ? brokerd_->pairs_compared_total() : 0);
  }
  cellbricks::UeAgent* ue_agent() { return ue_agent_.get(); }
  cellbricks::Btelco* btelco(std::size_t i) { return btelcos_[i].get(); }
  std::size_t n_btelcos() const { return btelcos_.size(); }
  epc::Mme* mme() { return mme_.get(); }
  epc::UeNas* ue_nas() { return ue_nas_.get(); }
  epc::Hss* hss() { return hss_.get(); }
  /// Transport internals (check layer reads the MPTCP sanity counters).
  transport::MptcpStack* ue_mptcp() { return ue_mptcp_.get(); }
  transport::MptcpStack* server_mptcp() { return server_mptcp_.get(); }

 private:
  void build_topology();
  void build_mno();
  void build_cellbricks();
  void install_shaper(ran::CellId cell);

  WorldConfig config_;
  AttachProtocol protocol_ = AttachProtocol::Default;
  bool resume_degraded_ = false;
  sim::Simulator sim_;
  net::Network network_;

  // Common topology.
  net::Node* internet_ = nullptr;
  net::Node* server_ = nullptr;
  net::Node* cloud_ = nullptr;
  net::Node* ue_ = nullptr;
  net::Ipv4Addr server_addr_;
  net::Ipv4Addr cloud_addr_;
  std::vector<net::Node*> towers_;
  std::vector<net::Link*> cloud_links_;  // tower i <-> cloud control path
  ran::RadioEnvironment env_;
  ran::RanMap ran_map_;
  std::unique_ptr<ran::UeRadio> radio_;
  std::unique_ptr<ran::BearerShaper> shaper_;

  // Transports.
  std::unique_ptr<transport::TcpStack> ue_tcp_;
  std::unique_ptr<transport::TcpStack> server_tcp_;
  std::unique_ptr<transport::MptcpStack> ue_mptcp_;
  std::unique_ptr<transport::MptcpStack> server_mptcp_;

  // MNO side.
  net::Node* agw_ = nullptr;
  std::unique_ptr<epc::Hss> hss_;
  std::unique_ptr<epc::SgwPgw> spgw_;
  std::unique_ptr<epc::Mme> mme_;
  std::unique_ptr<epc::UeNas> ue_nas_;

  // CellBricks side.
  std::unique_ptr<crypto::CertificateAuthority> ca_;
  std::unique_ptr<cellbricks::Brokerd> brokerd_;
  std::unique_ptr<cellbricks::BrokerCluster> broker_cluster_;
  std::unique_ptr<cellbricks::ShardRouter> shard_router_;
  std::vector<net::Node*> shard_nodes_;
  std::vector<std::unique_ptr<cellbricks::Btelco>> btelcos_;
  std::unordered_map<ran::CellId, cellbricks::Btelco*> telco_by_cell_;
  std::unique_ptr<cellbricks::UeAgent> ue_agent_;
};

}  // namespace cb::scenario
