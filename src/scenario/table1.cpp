#include "scenario/table1.hpp"

#include "apps/iperf.hpp"
#include "apps/ping.hpp"
#include "apps/video.hpp"
#include "apps/voip.hpp"
#include "apps/web.hpp"

namespace cb::scenario {

namespace {

WorldConfig make_config(Architecture arch, const RouteSpec& route, const Table1Options& opt) {
  WorldConfig cfg;
  cfg.arch = arch;
  cfg.route = route;
  cfg.seed = opt.seed;
  // Enough towers to cover the drive plus margin.
  const double distance = route.speed_mps * opt.duration.to_seconds();
  cfg.n_towers = static_cast<int>(distance / route.tower_spacing_m) + 3;
  return cfg;
}

// Let the initial attach complete before starting the workload.
constexpr Duration kWarmup = Duration::s(3);

}  // namespace

Table1Cell run_table1_cell(Architecture arch, const RouteSpec& route,
                           const Table1Options& opt) {
  Table1Cell cell;
  cell.route = route.name;
  cell.arch = arch;

  {  // --- ping + MTTHO (cheap; share one world) -------------------------
    World world(make_config(arch, route, opt));
    apps::PingServer server(*world.server_node(), 7);
    apps::PingClient client(*world.ue_node(), net::EndPoint{world.server_addr(), 7});
    world.start();
    world.simulator().run_for(kWarmup);
    client.start();
    world.simulator().run_for(opt.duration);
    client.stop();
    if (!client.rtts_ms().empty()) cell.ping_p50_ms = client.rtts_ms().p50();
    cell.mttho_s = world.handovers() > 0
                       ? opt.duration.to_seconds() / static_cast<double>(world.handovers())
                       : 0.0;
  }

  {  // --- iperf (download) ----------------------------------------------
    World world(make_config(arch, route, opt));
    apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                                 opt.duration);
    world.start();
    world.simulator().run_for(kWarmup);
    apps::IperfDownloadClient client(world.ue_transport(),
                                     net::EndPoint{world.server_addr(), 5001},
                                     world.simulator());
    world.simulator().run_for(opt.duration + Duration::s(5));
    cell.iperf_mbps = client.mean_throughput_bps() / 1e6;
  }

  {  // --- VoIP -----------------------------------------------------------
    World world(make_config(arch, route, opt));
    apps::VoipEndpoint callee(*world.server_node(), 6000);
    apps::VoipEndpoint caller(*world.ue_node(), 6000);
    world.start();
    world.simulator().run_for(kWarmup);
    caller.call(net::EndPoint{world.server_addr(), 6000});
    world.simulator().run_for(opt.duration);
    caller.hang_up();
    callee.hang_up();
    // Downlink MOS (measured at the UE): the direction affected by
    // re-INVITE behaviour after IP changes.
    cell.voip_mos = caller.stats().mos();
  }

  {  // --- video ----------------------------------------------------------
    World world(make_config(arch, route, opt));
    apps::HlsServer server(world.server_transport(), 8080);
    world.start();
    world.simulator().run_for(kWarmup);
    apps::HlsClient client(world.ue_transport(), net::EndPoint{world.server_addr(), 8080},
                           world.simulator());
    client.start();
    world.simulator().run_for(opt.duration);
    client.stop();
    cell.video_level = client.avg_quality_level();
  }

  {  // --- web ------------------------------------------------------------
    World world(make_config(arch, route, opt));
    apps::WebServer server(world.server_transport(), 80);
    world.start();
    world.simulator().run_for(kWarmup);
    apps::WebClient client(world.ue_transport(), net::EndPoint{world.server_addr(), 80},
                           world.simulator());
    client.start();
    world.simulator().run_for(opt.duration);
    client.stop();
    if (!client.load_times_s().empty()) cell.web_load_s = client.load_times_s().mean();
  }

  return cell;
}

}  // namespace cb::scenario
