// SAP resumption tickets: re-attach without a broker round trip.
//
// On a successful first SAP run the broker mints a short-lived ticket and
// returns it alongside authRespU. The ticket is sealed under a symmetric
// ticket key shared by the broker and its federated bTelcos (STEK model, as
// in TLS session tickets) and signed by the broker, binding:
//
//   inner = (pseudonym, session_id, qosInfo, ss_resume, ticket_id)
//   ticket = [seal_STEK(inner)] [expiry] [sig_B(seal || expiry)]
//
// ss_resume = HKDF(ss, "ticket-resume") — the UE derives the same value from
// its session secret, so possession of ss_resume proves the ticket belongs
// to the presenter (proof-of-possession MAC over a fresh nonce) without the
// bTelco ever learning the original ss or the subscriber's real identity.
//
// A target bTelco verifies the broker signature, expiry, STEK seal, and PoP
// MAC entirely locally; replay is stopped by a per-bTelco single-use cache
// on ticket_id and a revocation set fed by the broker (reputation verdicts).
// Billing is preserved: the resumed session keeps the original session_id
// and the bTelco notifies the broker asynchronously (ResumeNotify), off the
// attach critical path.
#pragma once

#include <string>

#include "cellbricks/qos.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "crypto/rsa.hpp"

namespace cb::cellbricks {

inline constexpr std::size_t kTicketIdSize = 16;
inline constexpr std::size_t kResumeNonceSize = 16;

/// Cleartext ticket contents (visible only to STEK holders, i.e. the broker
/// and federated bTelcos — never to the radio path).
struct TicketInner {
  std::string pseudonym;        // broker-issued UE handle (never the real idU)
  std::uint64_t session_id = 0; // original session — billing continuity
  QosInfo qos;                  // negotiated parameters carried forward
  Bytes ss_resume;              // 32B resumption secret (HKDF of session ss)
  Bytes ticket_id;              // 16B random handle for the single-use cache

  bool operator==(const TicketInner&) const = default;
};

/// ss_resume = HKDF(ss, "ticket-resume", 32). Both the broker (at mint) and
/// the UE (from its UeSession) derive this independently.
Bytes derive_resume_secret(BytesView ss);

/// Broker side: seal `inner` under the STEK and sign (blob || expiry).
Bytes mint_resume_ticket(const crypto::RsaKeyPair& broker_keys, BytesView ticket_key,
                         const TicketInner& inner, TimePoint expiry, Rng& rng);

/// UE side: wrap a stored ticket into a resume request for bTelco `id_t`,
/// proving possession of ss_resume over a fresh nonce. `period_base` is the
/// UE's next billing period: the resumed bTelco starts its report counter
/// there, so periods of the continued session never collide with the ones
/// the previous bTelco already reported (the broker dedups per period).
///   request = [ticket] [id_t] [period] [nonce]
///             [hmac(ss_resume, ticket||id_t||period||nonce)]
/// `nonce_out`, when non-null, receives the fresh nonce so the caller can
/// match the echo in the confirmation.
Bytes make_resume_request(BytesView ticket_wire, const std::string& id_t,
                          std::uint32_t period_base, BytesView ss_resume, Rng& rng,
                          Bytes* nonce_out = nullptr);

/// What a verifying bTelco learns from a valid resume request.
struct ResumeGrant {
  TicketInner inner;
  std::uint64_t expiry_ns = 0;    // ticket expiry (audit trail)
  std::uint32_t period_base = 0;  // first billing period of the resumed leg
  Bytes nonce;                    // echoed back in the confirmation
};

/// Open and validate a bare ticket: broker signature, expiry, STEK seal.
/// (Single-use and revocation checks are the caller's, since they depend on
/// per-bTelco state.) `expiry_ns_out`, when non-null, receives the wire
/// expiry even on success so audits record what was actually honoured.
Result<TicketInner> open_ticket(BytesView ticket_wire, const crypto::RsaPublicKey& broker_key,
                                BytesView ticket_key, TimePoint now,
                                std::uint64_t* expiry_ns_out = nullptr);

/// bTelco side: full local verification of a resume request addressed to
/// `id_t` — ticket validity plus the proof-of-possession MAC. Fails closed
/// on any mismatch.
Result<ResumeGrant> verify_resume_request(BytesView request, const std::string& id_t,
                                          const crypto::RsaPublicKey& broker_key,
                                          BytesView ticket_key, TimePoint now);

/// bTelco -> UE confirmation, sealed under ss_resume (the UE checks the
/// nonce echo before trusting the new attachment).
struct ResumeConfirm {
  Bytes nonce;
  QosInfo qos;
  std::uint64_t session_id = 0;
};

Bytes make_resume_confirm(const ResumeGrant& grant, Rng& rng);
Result<ResumeConfirm> open_resume_confirm(BytesView confirm, BytesView ss_resume);

}  // namespace cb::cellbricks
