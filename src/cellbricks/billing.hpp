// Verifiable billing (§4.3): tamper-resistant traffic reports from both the
// UE baseband and the bTelco, aligned and compared at the broker with the
// Fig.5 discrepancy heuristic.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace cb::cellbricks {

/// Who produced a report.
enum class Reporter : std::uint8_t { Ue = 0, Telco = 1 };

/// One usage/QoS report covering a reporting period of a session — the
/// fields enumerated in §4.3 (session id, relative timestamp, UL/DL usage,
/// duration, and 3GPP QoS metrics, reported separately for each direction).
struct TrafficReport {
  std::uint64_t session_id = 0;
  Reporter reporter = Reporter::Ue;
  /// Relative timestamp within the session (period index), used by the
  /// broker to align U's and T's reports.
  std::uint32_t period = 0;
  std::uint64_t ul_bytes = 0;
  std::uint64_t dl_bytes = 0;
  /// Session time covered by this report, in milliseconds.
  std::uint64_t duration_ms = 0;
  // QoS metrics (TS 32.425 counterparts).
  double dl_loss_rate = 0.0;
  double ul_loss_rate = 0.0;
  double avg_dl_bps = 0.0;
  double avg_ul_bps = 0.0;
  double avg_delay_ms = 0.0;

  Bytes serialize() const;
  static Result<TrafficReport> deserialize(BytesView data);
};

}  // namespace cb::cellbricks
