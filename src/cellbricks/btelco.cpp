#include "cellbricks/btelco.hpp"

#include <algorithm>
#include <vector>

#include "cellbricks/broker_cluster.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace cb::cellbricks {

namespace {

/// Decorrelated-jitter backoff (see ue_agent.cpp): next delay uniform in
/// [base, 3 * previous], capped.
Duration decorrelated_backoff(Rng& rng, Duration base, Duration prev, Duration cap) {
  const double base_s = base.to_seconds();
  const double hi_s = std::max(base_s, prev.to_seconds() * 3.0);
  return std::min(Duration::seconds(rng.uniform(base_s, hi_s)), cap);
}

}  // namespace

Btelco::Btelco(net::Network& network, net::Node& node, SapTelco sap,
               crypto::Certificate broker_cert, net::EndPoint broker_endpoint)
    : Btelco(network, node, std::move(sap), std::move(broker_cert), broker_endpoint,
             Config()) {}

Btelco::Btelco(net::Network& network, net::Node& node, SapTelco sap,
               crypto::Certificate broker_cert, net::EndPoint broker_endpoint, Config config)
    : network_(network),
      node_(node),
      sap_(std::move(sap)),
      broker_cert_(std::move(broker_cert)),
      broker_(broker_endpoint),
      config_(config),
      queue_(node.simulator()),
      rng_(node.simulator().rng().fork(0xB7E1C0)),
      jitter_rng_(node.simulator().rng().fork(0xB7E1C1)) {
  port_ = node_.alloc_port();
  node_.bind_udp(port_, [this](const net::Packet& p) {
    if (crashed_) return;
    try {
      ByteReader r(p.payload);
      const auto type = static_cast<BrokerMsg>(r.u8());
      const std::uint64_t txn = r.u64();
      if (type == BrokerMsg::ReportAck) {
        handle_report_ack(txn);
        return;
      }
      if (type == BrokerMsg::Redirect) {
        const std::uint16_t bucket = r.u16();
        const std::uint16_t owner = r.u16();
        handle_redirect(txn, bucket, owner);  // txn slot carries the seq
        return;
      }
      if (type == BrokerMsg::ResumeNotifyAck) {
        handle_resume_notify_ack(txn, r);
        return;
      }
      auto it = awaiting_broker_.find(txn);
      if (it == awaiting_broker_.end()) return;
      auto continuation = std::move(it->second);
      awaiting_broker_.erase(it);
      // An answer from any shard clears its suspect strikes.
      if (router_ != nullptr) {
        for (std::size_t i = 0; i < router_->n_shards(); ++i) {
          if (router_->endpoint(i) == p.src) {
            router_->note_ok(i);
            break;
          }
        }
      }
      if (type == BrokerMsg::AuthOk) {
        continuation(r);
      } else {
        ByteReader err = r;
        CB_LOG(Info, "btelco") << id() << ": broker denied attach: " << err.str();
        ByteReader empty{BytesView{}};
        continuation(empty);
      }
    } catch (const std::out_of_range&) {
      CB_LOG(Warn, "btelco") << "malformed broker reply dropped";
    }
  });

  // User-plane uplink metering happens via per-session counters on the
  // radio link; downlink traffic to subscriber IPs is anchored here.
}

void Btelco::handle_attach(Bytes auth_req_u, net::Node* ue_node, net::Link* radio_link,
                           AttachReply reply) {
  // A crashed AGW never answers: the request dies on the radio control
  // channel and the UE's attach deadline is what surfaces the failure.
  if (crashed_) return;
  // [AGW msg 1/2] Augment the UE request with service parameters and our
  // signature, then forward it to the subscriber's broker.
  queue_.submit(config_.agw_msg, [this, auth_req_u = std::move(auth_req_u), ue_node,
                                  radio_link, reply = std::move(reply)]() mutable {
    const Bytes auth_req_t = sap_.make_auth_req_t(auth_req_u, config_.qos_cap);
    const std::uint64_t txn = next_txn_++;

    awaiting_broker_[txn] = [this, ue_node, radio_link,
                             reply = std::move(reply)](ByteReader& r) mutable {
      if (r.remaining() == 0) {
        reply(Result<std::pair<Bytes, net::Ipv4Addr>>::err("broker denied attachment"));
        return;
      }
      Bytes auth_resp_t = r.bytes();
      Bytes auth_resp_u = r.bytes();
      // [AGW msg 2/2] Verify the broker's authorization and install the
      // session (bearer, IP, QoS).
      queue_.submit(config_.agw_msg, [this, ue_node, radio_link,
                                      auth_resp_t = std::move(auth_resp_t),
                                      auth_resp_u = std::move(auth_resp_u),
                                      reply = std::move(reply)]() mutable {
        auto session = sap_.process_auth_resp(auth_resp_t, broker_cert_,
                                              node_.simulator().now());
        if (!session) {
          reply(Result<std::pair<Bytes, net::Ipv4Addr>>::err(session.error()));
          return;
        }
        install_session(session.value(), ue_node, radio_link, std::move(auth_resp_u),
                        std::move(reply));
      });
    };

    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(BrokerMsg::AuthReq));
    w.u64(txn);
    w.bytes(auth_req_t);
    send_to_broker_with_retry(txn, w.take(), config_.broker_attempts);
  });
}

void Btelco::enable_resume(Bytes ticket_key) { ticket_key_ = std::move(ticket_key); }

void Btelco::handle_resume(Bytes resume_req, net::Node* ue_node, net::Link* radio_link,
                           AttachReply reply) {
  using R = Result<std::pair<Bytes, net::Ipv4Addr>>;
  if (crashed_) return;
  // [AGW msg 1/2] Verify the ticket entirely locally: broker signature,
  // expiry, STEK seal, proof-of-possession MAC, single-use, revocation.
  queue_.submit(config_.agw_msg, [this, resume_req = std::move(resume_req), ue_node,
                                  radio_link, reply = std::move(reply)]() mutable {
    auto rejected = [this, &reply](std::string why) {
      ++resumes_rejected_;
      obs::inc(obs::counter("btelco.resume.rejected"));
      CB_LOG(Info, "btelco") << id() << ": resume rejected: " << why;
      reply(R::err(std::move(why)));
    };
    if (ticket_key_.empty()) {
      rejected("resume: not enabled on this bTelco");
      return;
    }
    auto grant = verify_resume_request(resume_req, id(), broker_cert_.key(), ticket_key_,
                                       node_.simulator().now());
    if (!grant) {
      rejected(grant.error());
      return;
    }
    ResumeGrant g = std::move(grant).value();
    const std::string tid = to_hex(g.inner.ticket_id);
    if (used_tickets_.contains(tid)) {
      rejected("resume: ticket already used here");
      return;
    }
    if (revoked_.contains(g.inner.pseudonym)) {
      rejected("resume: subscriber revoked");
      return;
    }
    if (sessions_.contains(g.inner.session_id)) {
      rejected("resume: session already installed");
      return;
    }
    used_tickets_.insert(tid);

    // [AGW msg 2/2] Install the session and confirm to the UE. No broker
    // leg on the critical path — that is the latency win.
    queue_.submit(config_.agw_msg, [this, g = std::move(g), ue_node, radio_link,
                                    reply = std::move(reply)]() mutable {
      TicketAudit audit;
      audit.ticket_id = g.inner.ticket_id;
      audit.session_id = g.inner.session_id;
      audit.pseudonym = g.inner.pseudonym;
      audit.expiry_ns = g.expiry_ns;
      audit.accepted_at_ns = static_cast<std::uint64_t>(node_.simulator().now().nanos());
      audit.was_revoked = revoked_.contains(g.inner.pseudonym);
      ticket_audit_.push_back(std::move(audit));
      ++resumes_;
      obs::inc(obs::counter("btelco.resume.accepted"));

      TelcoSession ts;
      ts.ue_pseudonym = g.inner.pseudonym;
      ts.session_id = g.inner.session_id;
      ts.qos = g.inner.qos;
      ts.security = SecurityContext::derive(g.inner.ss_resume);
      const Bytes confirm = make_resume_confirm(g, rng_);
      const std::uint64_t sid = g.inner.session_id;
      const Bytes ticket_id = g.inner.ticket_id;
      install_session(ts, ue_node, radio_link, confirm, std::move(reply), g.period_base);
      send_resume_notify(sid, ticket_id);
    });
  });
}

void Btelco::send_resume_notify(std::uint64_t session_id, const Bytes& ticket_id) {
  // Authenticated like an authReqT (certificate + signature): the broker may
  // have never seen this bTelco — local resumption is exactly the case where
  // the serving provider skipped the auth round trip.
  ByteWriter body;
  body.str(id());
  body.u64(session_id);
  body.bytes(ticket_id);
  ByteWriter inner;
  inner.bytes(body.data());
  inner.bytes(sap_.certificate().serialize());
  inner.bytes(sap_.sign(body.data()));
  const Bytes sealed = crypto::seal(broker_cert_.key(), inner.data(), rng_);

  const std::uint64_t txn = next_notify_txn_++;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(BrokerMsg::ResumeNotify));
  w.u64(txn);
  w.bytes(sealed);
  OutstandingNotify& out = outstanding_notifies_[txn];
  out.wire = w.take();
  out.session_id = session_id;
  out.attempts_left = config_.report_attempts;
  out.next_delay = config_.report_retry;
  obs::inc(obs::counter("btelco.resume.notify_sent"));
  transmit_resume_notify(txn);
}

void Btelco::transmit_resume_notify(std::uint64_t txn) {
  auto it = outstanding_notifies_.find(txn);
  if (it == outstanding_notifies_.end() || crashed_) return;
  OutstandingNotify& out = it->second;
  if (out.attempts_left <= 0) {
    // Best-effort: the session stays up (it is backed by the broker's
    // original issuance); only the id_t rebinding and the revocation check
    // are lost, and the report channel's own retries cover billing.
    obs::inc(obs::counter("btelco.resume.notify_abandoned"));
    outstanding_notifies_.erase(it);
    return;
  }
  --out.attempts_left;
  net::EndPoint dst = broker_;
  if (router_ != nullptr) {
    const TimePoint now = node_.simulator().now();
    if (out.sent_once) router_->note_timeout(out.last_shard, now);
    out.last_shard = router_->pick_for_session(out.session_id, now);
    dst = router_->endpoint(out.last_shard);
  }
  out.sent_once = true;
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), port_};
  p.dst = dst;
  p.proto = net::Proto::Udp;
  p.payload = out.wire;
  node_.send(std::move(p));
  out.timer = node_.simulator().schedule(out.next_delay,
                                         [this, txn] { transmit_resume_notify(txn); });
  out.next_delay =
      decorrelated_backoff(jitter_rng_, config_.report_retry, out.next_delay, Duration::s(30));
}

void Btelco::handle_resume_notify_ack(std::uint64_t txn, ByteReader& r) {
  auto it = outstanding_notifies_.find(txn);
  if (it == outstanding_notifies_.end()) return;
  if (router_ != nullptr && it->second.sent_once) router_->note_ok(it->second.last_shard);
  it->second.timer.cancel();
  const std::uint64_t session_id = it->second.session_id;
  outstanding_notifies_.erase(it);

  const std::uint8_t revoke = r.u8();
  if (revoke == 0) return;
  // The broker vetoed the resumption (suspect subscriber or a session it
  // never issued): bar the pseudonym from further resumes here and tear the
  // session down after a final accounting report.
  auto sit = sessions_.find(session_id);
  if (sit != sessions_.end()) {
    revoked_.insert(sit->second.pseudonym);
    CB_LOG(Info, "btelco") << id() << ": broker revoked resumed session " << session_id
                           << ", tearing down";
    obs::inc(obs::counter("btelco.resume.revoked"));
    send_report(session_id, /*final=*/true);
    release_session(session_id);
  }
}

void Btelco::send_to_broker_with_retry(std::uint64_t txn, Bytes payload, int attempts_left,
                                       int prev_shard) {
  if (!awaiting_broker_.contains(txn)) return;  // answered meanwhile
  if (attempts_left <= 0) {
    auto it = awaiting_broker_.find(txn);
    auto continuation = std::move(it->second);
    awaiting_broker_.erase(it);
    ByteReader empty{BytesView{}};
    continuation(empty);  // empty reader = denial/failure path
    return;
  }
  net::EndPoint dst = broker_;
  int shard = prev_shard;
  if (router_ != nullptr) {
    const TimePoint now = node_.simulator().now();
    // Reaching here with a previous target means it never answered: strike
    // it so the sticky auth choice rotates to a live shard.
    if (prev_shard >= 0) router_->note_timeout(static_cast<std::size_t>(prev_shard), now);
    shard = static_cast<int>(router_->pick_for_auth(now));
    dst = router_->endpoint(static_cast<std::size_t>(shard));
  }
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), port_};
  p.dst = dst;
  p.proto = net::Proto::Udp;
  p.payload = payload;
  node_.send(std::move(p));
  node_.simulator().schedule(config_.broker_retry,
                             [this, txn, payload = std::move(payload), attempts_left, shard] {
                               send_to_broker_with_retry(txn, payload, attempts_left - 1, shard);
                             });
}

std::uint64_t Btelco::downlink_sent_bytes(const Session& s) const {
  // What the gateway put on the radio toward the UE (pre-loss).
  return s.radio_link->counters(&node_).sent_bytes;
}

std::uint64_t Btelco::uplink_delivered_bytes(const Session& s) const {
  // What actually arrived from the UE.
  return s.radio_link->counters(s.ue_node).delivered_bytes;
}

void Btelco::install_session(const TelcoSession& ts, net::Node* ue_node,
                             net::Link* radio_link, Bytes auth_resp_u, AttachReply reply,
                             std::uint32_t first_period) {
  Session s;
  s.id = ts.session_id;
  s.pseudonym = ts.ue_pseudonym;
  s.ue_node = ue_node;
  s.radio_link = radio_link;
  s.qos = ts.qos;
  s.security = ts.security;
  s.next_period = first_period;
  s.started_at = node_.simulator().now();
  s.ip = network_.alloc_address(config_.ip_subnet);
  s.dl_sent_base = radio_link->counters(&node_).sent_bytes;
  s.ul_delivered_base = radio_link->counters(ue_node).delivered_bytes;
  s.last_activity = node_.simulator().now();

  // Anchor the subscriber IP at this gateway; downlink goes straight onto
  // the radio bearer (the "tower + core appliances" are one site).
  network_.register_address(s.ip, &node_, /*proxy_only=*/true);
  const std::uint64_t sid = s.id;
  node_.add_proxy_address(s.ip, [this, sid](net::Packet&& packet) {
    auto it = sessions_.find(sid);
    if (it == sessions_.end()) return;
    it->second.radio_link->send(&node_, std::move(packet));
  });
  network_.recompute_routes();

  by_ip_[s.ip] = s.id;
  const net::Ipv4Addr ip = s.ip;
  auto [sit, inserted] = sessions_.emplace(s.id, std::move(s));
  ++attaches_;
  obs::inc(obs::counter("btelco.attaches"));
  obs::set(obs::gauge("btelco.sessions.active"), static_cast<double>(sessions_.size()));
  obs::trace(node_.simulator().now(), obs::TraceType::SessionInstalled, sid);

  // Periodic traffic reports for billing.
  sit->second.report_timer = node_.simulator().schedule(
      config_.report_interval, [this, sid] { send_report(sid, /*final=*/false); });

  if (on_session_installed) on_session_installed(radio_link, sit->second.qos);
  ensure_gc();
  CB_LOG(Debug, "btelco") << id() << ": session " << sit->second.pseudonym << " ip "
                          << ip.to_string();
  reply(std::make_pair(std::move(auth_resp_u), ip));
}

void Btelco::send_report(std::uint64_t session_id, bool final_report) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || crashed_) return;
  Session& s = it->second;

  const std::uint64_t dl_now = downlink_sent_bytes(s);
  const std::uint64_t ul_now = uplink_delivered_bytes(s);
  if (ul_now > s.ul_delivered_base) s.last_activity = node_.simulator().now();
  TrafficReport report;
  report.session_id = s.id;
  report.reporter = Reporter::Telco;
  report.period = s.next_period++;
  report.dl_bytes = static_cast<std::uint64_t>(
      static_cast<double>(dl_now - s.dl_sent_base) * config_.overreport_factor);
  report.ul_bytes = ul_now - s.ul_delivered_base;
  report.duration_ms = static_cast<std::uint64_t>(
      (node_.simulator().now() - s.started_at).to_millis());
  const double period_s = config_.report_interval.to_seconds();
  report.avg_dl_bps = static_cast<double>(report.dl_bytes) * 8.0 / period_s;
  report.avg_ul_bps = static_cast<double>(report.ul_bytes) * 8.0 / period_s;
  s.dl_sent_base = dl_now;
  s.ul_delivered_base = ul_now;

  // Sign, seal to the broker, and ship over the reliable (ACK +
  // retransmission) report channel.
  const Bytes report_bytes = report.serialize();
  ByteWriter inner;
  inner.str(id());
  inner.u8(static_cast<std::uint8_t>(Reporter::Telco));
  inner.bytes(report_bytes);
  inner.bytes(sap_.sign(report_bytes));
  const Bytes sealed = crypto::seal(broker_cert_.key(), inner.data(), rng_);

  const std::uint64_t seq = next_report_seq_++;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(BrokerMsg::Report));
  w.u64(seq);
  w.bytes(sealed);
  OutstandingReport& out = outstanding_reports_[seq];
  out.wire = w.take();
  out.session_id = report.session_id;
  out.attempts_left = config_.report_attempts;
  out.next_delay = config_.report_retry;
  obs::inc(obs::counter("btelco.reports.sent"));
  obs::trace(node_.simulator().now(), obs::TraceType::ReportSend, seq, report.period);
  transmit_report(seq);

  if (!final_report) {
    s.report_timer = node_.simulator().schedule(
        config_.report_interval, [this, session_id] { send_report(session_id, false); });
  }
}

void Btelco::transmit_report(std::uint64_t seq) {
  auto it = outstanding_reports_.find(seq);
  if (it == outstanding_reports_.end() || crashed_) return;
  OutstandingReport& out = it->second;
  if (out.attempts_left <= 0) {
    ++reports_abandoned_;
    obs::inc(obs::counter("btelco.reports.abandoned"));
    obs::trace(node_.simulator().now(), obs::TraceType::ReportAbandoned, seq);
    CB_LOG(Info, "btelco") << id() << ": report " << seq << " abandoned (no broker ACK)";
    outstanding_reports_.erase(it);
    return;
  }
  --out.attempts_left;
  obs::inc(obs::counter("btelco.reports.tx"));
  net::EndPoint dst = broker_;
  if (router_ != nullptr) {
    const TimePoint now = node_.simulator().now();
    if (out.sent_once) router_->note_timeout(out.last_shard, now);
    out.last_shard = router_->pick_for_session(out.session_id, now);
    dst = router_->endpoint(out.last_shard);
  }
  out.sent_once = true;
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), port_};
  p.dst = dst;
  p.proto = net::Proto::Udp;
  p.payload = out.wire;
  node_.send(std::move(p));
  out.timer =
      node_.simulator().schedule(out.next_delay, [this, seq] { transmit_report(seq); });
  out.next_delay =
      decorrelated_backoff(jitter_rng_, config_.report_retry, out.next_delay, Duration::s(30));
}

void Btelco::handle_report_ack(std::uint64_t seq) {
  auto it = outstanding_reports_.find(seq);
  if (it == outstanding_reports_.end()) return;
  if (router_ != nullptr && it->second.sent_once) router_->note_ok(it->second.last_shard);
  it->second.timer.cancel();
  outstanding_reports_.erase(it);
  obs::inc(obs::counter("btelco.reports.acked"));
  obs::trace(node_.simulator().now(), obs::TraceType::ReportAck, seq);
}

void Btelco::handle_redirect(std::uint64_t seq, std::uint16_t bucket, std::uint16_t owner) {
  if (router_ == nullptr) return;
  router_->learn_redirect(bucket, owner);
  auto it = outstanding_reports_.find(seq);
  if (it == outstanding_reports_.end()) return;
  OutstandingReport& out = it->second;
  // The shard answered (healthy, just not the owner): clear its strikes,
  // refresh the retry budget, and resend to the owner immediately.
  router_->note_ok(out.last_shard);
  out.timer.cancel();
  out.attempts_left = config_.report_attempts;
  out.next_delay = config_.report_retry;
  out.sent_once = false;
  obs::inc(obs::counter("btelco.reports.redirected"));
  transmit_report(seq);
}

void Btelco::handle_detach(std::uint64_t session_id) {
  if (crashed_) return;
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  send_report(session_id, /*final=*/true);
  release_session(session_id);
}

void Btelco::crash() {
  if (crashed_) return;
  crashed_ = true;
  node_.set_up(false);
  // The AGW's in-memory state is gone: bearers drop, subscriber IPs are
  // withdrawn, nothing is reported. UEs discover the loss via their bearer
  // watchdog and re-attach elsewhere.
  std::vector<std::uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [sid, _] : sessions_) ids.push_back(sid);
  for (std::uint64_t sid : ids) {
    if (auto it = sessions_.find(sid); it != sessions_.end()) {
      it->second.radio_link->set_up(false);
    }
    release_session(sid);
  }
  for (auto& [seq, out] : outstanding_reports_) out.timer.cancel();
  outstanding_reports_.clear();
  for (auto& [txn, out] : outstanding_notifies_) out.timer.cancel();
  outstanding_notifies_.clear();
  awaiting_broker_.clear();
  gc_timer_.cancel();
  // The used-ticket cache, the revocation list, and the audit trail survive
  // the crash (durable, like the subscriber IP pool config): a replayed
  // ticket must not become valid because the AGW rebooted.
  CB_LOG(Info, "btelco") << id() << ": crashed";
}

void Btelco::restart() {
  if (!crashed_) return;
  crashed_ = false;
  node_.set_up(true);
  CB_LOG(Info, "btelco") << id() << ": restarted (state empty)";
}

std::vector<std::string> Btelco::session_pseudonyms() const {
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [sid, s] : sessions_) out.push_back(s.pseudonym);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> Btelco::session_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [sid, s] : sessions_) ids.push_back(sid);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t Btelco::sessions_stale_since(TimePoint cutoff) const {
  std::size_t stale = 0;
  for (const auto& [sid, s] : sessions_) {
    // Same freshness rule as gc_sweep: pending uplink the sweeper has not
    // folded into last_activity yet counts as activity.
    if (uplink_delivered_bytes(s) > s.ul_delivered_base) continue;
    if (s.last_activity < cutoff) ++stale;
  }
  return stale;
}

void Btelco::ensure_gc() {
  // Lazy: runs only while sessions exist, so an idle bTelco leaves the
  // event queue empty and Simulator::run still terminates.
  if (gc_timer_.pending()) return;
  gc_timer_ = node_.simulator().schedule(config_.gc_interval, [this] { gc_sweep(); });
}

void Btelco::gc_sweep() {
  if (crashed_) return;
  const TimePoint now = node_.simulator().now();
  std::vector<std::uint64_t> expired;
  for (auto& [sid, s] : sessions_) {
    // Refresh activity from the meter so a chatty UE that last triggered a
    // report long ago is not reclaimed between reporting periods.
    if (uplink_delivered_bytes(s) > s.ul_delivered_base) s.last_activity = now;
    if (now - s.last_activity >= config_.session_timeout) expired.push_back(sid);
  }
  for (std::uint64_t sid : expired) {
    CB_LOG(Info, "btelco") << id() << ": session " << sid
                           << " inactive past timeout, reclaiming";
    send_report(sid, /*final=*/true);
    release_session(sid);
    ++sessions_gced_;
    obs::inc(obs::counter("btelco.sessions.gced"));
    obs::trace(now, obs::TraceType::SessionGc, sid);
  }
  if (!sessions_.empty()) {
    gc_timer_ = node_.simulator().schedule(config_.gc_interval, [this] { gc_sweep(); });
  }
}

void Btelco::release_session(std::uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  s.report_timer.cancel();
  node_.remove_proxy_address(s.ip);
  network_.unregister_address(s.ip);
  by_ip_.erase(s.ip);
  sessions_.erase(it);
  obs::inc(obs::counter("btelco.sessions.released"));
  obs::set(obs::gauge("btelco.sessions.active"), static_cast<double>(sessions_.size()));
  obs::trace(node_.simulator().now(), obs::TraceType::SessionReleased, session_id);
}

}  // namespace cb::cellbricks
