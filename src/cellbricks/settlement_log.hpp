// Replicated settlement log for the sharded broker (DESIGN.md §12).
//
// Every broker shard authors an append-only stream of SettlementEntry
// records (sessions issued, reports ingested, billing verdicts) and
// replicates it to its peers over the cluster transport. The entire billing
// brain — report pairing, dedup, reputation, per-session byte aggregates —
// is expressed as a deterministic FOLD over the union of all streams
// (SettlementState::apply), so any replica that holds the same log prefix
// holds byte-identical settlement state. That is what makes shard failover
// safe: a takeover shard re-drives pairing straight out of its replica and
// the (session, period) decided-set makes replayed verdicts idempotent.
//
// Also home to the UE-id -> bucket -> shard routing helpers shared by the
// broker cluster and the client-side ShardRouter.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "cellbricks/billing.hpp"
#include "cellbricks/reputation.hpp"
#include "common/bytes.hpp"
#include "common/time.hpp"

namespace cb::cellbricks {

// --- Routing: subscriber -> bucket -> session id ---------------------------

/// Fixed-size routing space: ownership moves in bucket units, so the shard
/// map is a 256-entry table no matter how many subscribers exist.
inline constexpr std::uint32_t kRouteBuckets = 256;

/// Stable hash of a subscriber id into the bucket space.
std::uint16_t bucket_of_subscriber(const std::string& id_u);

/// Embed `bucket` into the top 16 bits of a freshly drawn session id, so
/// every later message that carries the session id also carries its route.
std::uint64_t bucketed_session_id(std::uint64_t raw, std::uint16_t bucket);

/// Recover the routing bucket from a session id minted by the cluster.
std::uint16_t session_bucket(std::uint64_t session_id);

/// Highest-random-weight (rendezvous) owner of `bucket` among `candidates`
/// (shard indices). Deterministic, and removing one candidate only moves the
/// buckets that candidate owned — the consistent-hashing property the
/// failover takeover relies on.
std::size_t hrw_owner(std::uint16_t bucket, const std::vector<std::size_t>& candidates);

// --- Log entries ------------------------------------------------------------

/// One record in a shard's settlement stream. A flat struct (every field
/// serialized unconditionally) so replicas hash identical bytes.
struct SettlementEntry {
  enum class Kind : std::uint8_t {
    SessionIssued = 1,   // shard authenticated a SAP attach and minted a session
    ReportIngested = 2,  // authenticated traffic report accepted at the owner
    VerdictPaired = 3,   // both halves aligned: Fig.5 comparison outcome
    VerdictMissing = 4,  // pair timeout: `reporter` names the absent side
  };

  Kind kind = Kind::SessionIssued;
  std::uint64_t session_id = 0;
  std::uint32_t period = 0;           // report / verdict entries
  Reporter reporter = Reporter::Ue;   // ReportIngested: author side;
                                      // VerdictMissing: the missing side
  std::string id_u;                   // session parties, carried on every
  std::string id_t;                   //   entry (no cross-stream ordering dep)
  std::int64_t time_ns = 0;           // authoring shard's sim clock (global)
  TrafficReport report;               // ReportIngested payload
  // VerdictPaired payload (the Fig.5 PairVerdict).
  bool mismatch = false;
  double degree = 0.0;
  double threshold = 0.0;
  std::int64_t delta = 0;
  std::uint64_t ue_dl_bytes = 0;      // paired byte totals for conservation
  std::uint64_t telco_dl_bytes = 0;

  Bytes serialize() const;
  static Result<SettlementEntry> deserialize(BytesView data);
};

// --- Replicated log storage -------------------------------------------------

/// Per-shard stream storage with FNV-1a chain hashes and out-of-order gap
/// buffering. `append` is the author-side path (always contiguous);
/// `store` is the replica-side path (idempotent, buffers future indices,
/// applies newly contiguous entries in order through the callback).
class SettlementLog {
 public:
  using ApplyFn =
      std::function<void(std::size_t stream, std::uint64_t index, const SettlementEntry&)>;

  explicit SettlementLog(std::size_t n_streams = 0) { ensure_streams(n_streams); }

  void ensure_streams(std::size_t n);
  std::size_t n_streams() const { return streams_.size(); }

  /// Author-side append to `stream`; returns the entry's index.
  std::uint64_t append(std::size_t stream, SettlementEntry entry, const ApplyFn& apply);

  /// Replica-side store. Duplicate (already applied) indices are ignored;
  /// future indices are buffered until the gap closes.
  void store(std::size_t stream, std::uint64_t index, SettlementEntry entry,
             const ApplyFn& apply);

  /// Contiguous applied prefix length of `stream`.
  std::uint64_t applied_len(std::size_t stream) const;
  /// FNV-1a chain hash after the first `len` entries (len <= applied_len).
  std::uint64_t chain_hash_at(std::size_t stream, std::uint64_t len) const;
  const SettlementEntry& entry(std::size_t stream, std::uint64_t index) const;
  std::uint64_t total_applied() const;
  std::size_t gap_buffered() const;

 private:
  struct Stream {
    std::vector<SettlementEntry> entries;       // applied contiguous prefix
    std::vector<std::uint64_t> cum_hash;        // [i] = hash after i entries
    std::map<std::uint64_t, SettlementEntry> gap;  // future-index buffer
  };

  void apply_one(std::size_t stream, SettlementEntry entry, const ApplyFn& apply);
  void drain_gap(std::size_t stream, const ApplyFn& apply);

  std::vector<Stream> streams_;
};

// --- The fold ---------------------------------------------------------------

/// Deterministic fold of settlement entries: IS the shard's billing state.
/// Applying the same entries (per-stream in order; streams in any
/// interleaving) yields identical sessions, pending sets, reputation, and
/// aggregates — duplicates across streams are absorbed by the seen/decided
/// sets, which is what makes failover-era double-authoring harmless.
class SettlementState {
 public:
  explicit SettlementState(ReputationConfig reputation = {}) : reputation_(reputation) {}

  void apply(const SettlementEntry& e);

  struct SessionInfo {
    std::string id_u;
    std::string id_t;
    std::uint64_t ue_dl_bytes = 0;
    std::uint64_t telco_dl_bytes = 0;
    std::uint64_t pairs_compared = 0;
    std::uint64_t mismatches = 0;
  };
  struct PendingReport {
    TrafficReport report;
    std::string id_u;
    std::string id_t;
    TimePoint received_at;  // authoring shard's clock (global sim time)
  };
  /// Compressed outcome of an applied verdict, kept per pair so replayed
  /// duplicates can be checked for content agreement.
  struct VerdictSig {
    SettlementEntry::Kind kind = SettlementEntry::Kind::VerdictPaired;
    bool mismatch = false;
    std::int64_t delta = 0;
    Reporter missing = Reporter::Ue;
    bool operator==(const VerdictSig&) const = default;
  };

  using PendingKey = std::tuple<std::uint64_t, std::uint32_t, int>;  // (sid, period, side)
  using PairKey = std::pair<std::uint64_t, std::uint32_t>;           // (sid, period)

  const std::unordered_map<std::uint64_t, SessionInfo>& sessions() const { return sessions_; }
  const std::map<PendingKey, PendingReport>& pending() const { return pending_; }
  const std::map<PairKey, VerdictSig>& decided() const { return decided_; }
  bool pair_decided(std::uint64_t sid, std::uint32_t period) const {
    return decided_.contains({sid, period});
  }
  bool report_seen(std::uint64_t sid, std::uint32_t period, Reporter side) const {
    return seen_reports_.contains({sid, seen_key(sid, period, side)});
  }
  const ReputationSystem& reputation() const { return reputation_; }

  std::uint64_t sessions_issued() const { return sessions_issued_; }
  std::uint64_t reports_folded() const { return reports_folded_; }
  /// Duplicate ReportIngested entries absorbed (double-authoring windows).
  std::uint64_t reports_refolded() const { return reports_refolded_; }
  std::uint64_t verdicts_paired() const { return verdicts_paired_; }
  std::uint64_t verdicts_missing() const { return verdicts_missing_; }
  /// Duplicate verdicts absorbed by the decided-set (expected under failover).
  std::uint64_t verdicts_deduped() const { return verdicts_deduped_; }
  /// Duplicate verdicts whose content DISAGREED with the applied one — the
  /// broker.settlement_verdict_unique invariant requires this to stay 0.
  std::uint64_t verdict_conflicts() const { return verdict_conflicts_; }

 private:
  static std::uint64_t seen_key(std::uint64_t sid, std::uint32_t period, Reporter side);

  ReputationSystem reputation_;
  std::unordered_map<std::uint64_t, SessionInfo> sessions_;
  std::map<PendingKey, PendingReport> pending_;
  std::map<PairKey, VerdictSig> decided_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_reports_;  // (sid, period<<1|side)

  std::uint64_t sessions_issued_ = 0;
  std::uint64_t reports_folded_ = 0;
  std::uint64_t reports_refolded_ = 0;
  std::uint64_t verdicts_paired_ = 0;
  std::uint64_t verdicts_missing_ = 0;
  std::uint64_t verdicts_deduped_ = 0;
  std::uint64_t verdict_conflicts_ = 0;
};

}  // namespace cb::cellbricks
