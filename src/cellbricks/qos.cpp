#include "cellbricks/qos.hpp"

#include <algorithm>
#include <bit>

namespace cb::cellbricks {

namespace {
std::uint64_t pack(double v) { return std::bit_cast<std::uint64_t>(v); }
double unpack(std::uint64_t v) { return std::bit_cast<double>(v); }
}  // namespace

void QosCap::serialize(ByteWriter& w) const {
  w.u64(pack(max_dl_bps));
  w.u64(pack(max_ul_bps));
  w.u8(qci_classes);
}

QosCap QosCap::deserialize(ByteReader& r) {
  QosCap c;
  c.max_dl_bps = unpack(r.u64());
  c.max_ul_bps = unpack(r.u64());
  c.qci_classes = r.u8();
  return c;
}

void QosInfo::serialize(ByteWriter& w) const {
  w.u64(pack(dl_bps));
  w.u64(pack(ul_bps));
  w.u8(qci);
}

QosInfo QosInfo::deserialize(ByteReader& r) {
  QosInfo q;
  q.dl_bps = unpack(r.u64());
  q.ul_bps = unpack(r.u64());
  q.qci = r.u8();
  return q;
}

QosInfo QosInfo::negotiate(const QosInfo& desired, const QosCap& cap) {
  QosInfo out = desired;
  if (cap.max_dl_bps > 0.0) {
    out.dl_bps = out.dl_bps > 0.0 ? std::min(out.dl_bps, cap.max_dl_bps) : cap.max_dl_bps;
  }
  if (cap.max_ul_bps > 0.0) {
    out.ul_bps = out.ul_bps > 0.0 ? std::min(out.ul_bps, cap.max_ul_bps) : cap.max_ul_bps;
  }
  return out;
}

}  // namespace cb::cellbricks
