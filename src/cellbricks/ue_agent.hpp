// UE agent: the host side of CellBricks.
//
// Implements (i) the UE's SAP procedures (Fig.2), (ii) host-driven mobility
// (§4.2): on every serving-cell change it detaches — invalidating the IP,
// exactly like the baseband setting the interface to 0.0.0.0 — runs SAP
// against the new bTelco, configures the new IP, and notifies the MPTCP
// path manager; and (iii) the baseband traffic meter whose signed reports
// make billing verifiable (§4.3).
//
// Failure handling: attaches run against a deadline and retry with
// exponential backoff, blacklisting unresponsive cells and falling back to
// the next-best candidate; a bearer watchdog detects a dead serving link
// (bTelco crash, radio drop) and re-enters recovery; traffic reports ride a
// reliable channel (broker ACK + retransmission) so billing survives loss.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "cellbricks/btelco.hpp"
#include "common/stats.hpp"
#include "cellbricks/sap.hpp"
#include "ran/ran_map.hpp"
#include "ran/ue_radio.hpp"
#include "transport/mptcp.hpp"

namespace cb::cellbricks {

class ShardRouter;

/// UDP port the UE agent sources reports from and receives broker ACKs on.
inline constexpr std::uint16_t kUeReportPort = 4599;

class UeAgent {
 public:
  struct Config {
    /// UE per-message processing incl. crypto (x2 per attach; Fig.7).
    Duration ue_msg = Duration::millis(1.25);
    /// eNB relay processing per leg (x2 per attach).
    Duration enb_msg = Duration::millis(0.375);
    /// Baseband reporting cycle.
    Duration report_interval = Duration::s(10);
    /// Dishonesty knob: scale reported DL usage (1.0 = honest; <1 models a
    /// user trying to under-pay). Requires a tampered baseband.
    double underreport_factor = 1.0;
    /// Attach deadline: if SAP has not completed by then the attempt is
    /// abandoned (covers a crashed AGW that never answers).
    Duration attach_timeout = Duration::s(3);
    /// Recovery retry backoff: doubles per failed attempt up to the max.
    Duration retry_backoff = Duration::millis(500);
    Duration retry_backoff_max = Duration::s(8);
    /// How long a cell that failed an attach is skipped during recovery.
    Duration cell_blacklist = Duration::s(10);
    /// Bearer watchdog cadence while attached (detects serving-link death).
    Duration watchdog_interval = Duration::millis(500);
    /// Traffic-report retransmission (mirrors the bTelco side).
    Duration report_retry = Duration::s(1);
    int report_attempts = 5;
    /// Present broker-minted resumption tickets (ticket.hpp) on re-attach:
    /// when a ticket is held, attach() first tries the local resume path
    /// (no broker round trip) and falls back to full SAP on rejection.
    bool use_resume_tickets = false;
  };

  UeAgent(net::Network& network, net::Node& ue_node, SapUe sap, const ran::RanMap& ran_map,
          std::function<Btelco*(ran::CellId)> telco_of_cell, net::EndPoint broker_report_ep);
  UeAgent(net::Network& network, net::Node& ue_node, SapUe sap, const ran::RanMap& ran_map,
          std::function<Btelco*(ran::CellId)> telco_of_cell, net::EndPoint broker_report_ep,
          Config config);

  /// Attach to `cell` via SAP. `done` gets the assigned IP or the error.
  /// One-shot: a failure (denial, timeout) is reported, not retried.
  void attach(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done);

  /// Resilient attach: try `preferred` first, then fall back to the best
  /// non-blacklisted candidate (see set_candidate_source), retrying with
  /// exponential backoff until some attach succeeds or cancel_recovery().
  void attach_with_recovery(ran::CellId preferred);
  void cancel_recovery();
  bool in_recovery() const { return in_recovery_; }

  /// Candidate cells for recovery fallback, best first (the mobility path
  /// wires this to UeRadio::candidates).
  void set_candidate_source(std::function<std::vector<ran::CellId>()> source) {
    candidate_source_ = std::move(source);
    recovery_enabled_ = true;
  }

  /// Detach from the current bTelco (radio drop + IP invalidation).
  void detach();

  /// Host-driven mobility: subscribe to the radio's cell-change events.
  /// Every change becomes detach + SAP re-attach with recovery; MPTCP (if
  /// wired via set_mptcp) is told about address invalidation/availability.
  void start_mobility(ran::UeRadio& radio);

  /// Wire the MPTCP path manager notifications.
  void set_mptcp(transport::MptcpStack* mptcp) { mptcp_ = mptcp; }

  /// Sharded-broker deployments: route reports by session id through the
  /// shard map instead of the fixed broker_report_ep, follow Redirect
  /// replies, and fail over on retransmission timeouts. Unset = single
  /// broker (default).
  void set_router(ShardRouter* router) { router_ = router; }

  bool attached() const { return current_ip_.valid(); }
  net::Ipv4Addr current_ip() const { return current_ip_; }
  ran::CellId serving_cell() const { return serving_cell_; }
  const std::string& id() const { return sap_.id_u(); }

  /// Most recent attach latency (radio legs excluded) — the paper's `d`.
  Duration last_attach_latency() const { return last_attach_latency_; }
  const Summary& attach_latencies() const { return attach_latencies_; }
  std::uint64_t attach_failures() const { return attach_failures_; }
  /// Resumption-ticket statistics (SapResume mode): attaches completed via
  /// the local resume path, resume attempts that fell back to full SAP, and
  /// the latencies of successful resumes (strictly cheaper than full SAP —
  /// the frozen fig8 delta).
  std::uint64_t resumes_succeeded() const { return resumes_succeeded_; }
  std::uint64_t resume_fallbacks() const { return resume_fallbacks_; }
  const Summary& resume_latencies() const { return resume_latencies_; }
  bool has_ticket() const { return !ticket_.empty(); }
  /// Serving-bearer losses detected by the watchdog (crash/radio fault).
  std::uint64_t bearer_losses() const { return bearer_losses_; }
  /// Outage-to-recovered latency per successful recovery (ms).
  const Summary& reattach_latencies() const { return reattach_latencies_; }
  /// Reports dropped after exhausting every retransmission attempt.
  std::uint64_t reports_abandoned() const { return reports_abandoned_; }
  std::size_t outstanding_reports() const { return outstanding_reports_.size(); }
  Duration ue_busy_time() const { return ue_queue_.busy_time(); }
  Duration enb_busy_time() const { return enb_queue_.busy_time(); }

  /// Fired after each completed attach (Table-1 instrumentation).
  std::function<void(ran::CellId, Duration latency)> on_attached;

 private:
  /// One unACKed traffic report awaiting broker confirmation. Transmission
  /// pauses while detached and resumes (flush) on the next attach.
  struct OutstandingReport {
    Bytes wire;  // full broker message: [Report, seq, sealed]
    std::uint64_t session_id = 0;  // routing key for sharded brokers
    int attempts_left = 0;
    Duration next_delay = Duration::zero();
    sim::EventHandle timer;
    std::size_t last_shard = 0;  // where the last copy went (router mode)
    bool sent_once = false;      // a timer-driven resend implies a timeout
  };

  void attach_full(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done);
  void attach_resume(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done);
  /// Common tail of both attach flavours: adopt the IP/session, rebaseline
  /// the meter, restart report/watchdog timers, flush stranded reports.
  void complete_attach(ran::CellId cell, const ran::TowerSite& site, Btelco* telco,
                       net::Ipv4Addr ip, std::uint64_t session_id, bool resumed,
                       const std::shared_ptr<std::function<void(Result<net::Ipv4Addr>)>>& done);
  void send_report(bool final_report);
  void transmit_report(std::uint64_t seq);
  void handle_report_ack(std::uint64_t seq);
  void handle_redirect(std::uint64_t seq, std::uint16_t bucket, std::uint16_t owner);
  void detach_locally();  // radio + IP teardown, no bTelco signalling
  void drop_superseded_bearer(ran::CellId next);
  void try_attach(ran::CellId preferred);
  ran::CellId pick_candidate(ran::CellId preferred);
  void schedule_retry(ran::CellId preferred);
  void start_watchdog();
  void watchdog();
  bool cell_blacklisted(ran::CellId cell) const;

  net::Network& network_;
  net::Node& ue_node_;
  SapUe sap_;
  const ran::RanMap& ran_map_;
  std::function<Btelco*(ran::CellId)> telco_of_cell_;
  net::EndPoint broker_report_ep_;
  Config config_;
  sim::ServiceQueue ue_queue_;
  sim::ServiceQueue enb_queue_;
  Rng rng_;
  /// Dedicated stream for retry jitter so backoff draws never perturb the
  /// crypto/protocol stream (replays stay bit-identical).
  Rng jitter_rng_;

  transport::MptcpStack* mptcp_ = nullptr;
  ShardRouter* router_ = nullptr;

  // Session state.
  net::Ipv4Addr current_ip_;
  ran::CellId serving_cell_ = 0;
  std::uint64_t session_id_ = 0;
  Btelco* serving_telco_ = nullptr;
  std::uint32_t next_period_ = 0;
  std::uint64_t dl_base_ = 0;
  std::uint64_t ul_base_ = 0;
  std::uint64_t dl_lost_base_ = 0;
  std::uint64_t dl_sent_base_ = 0;
  TimePoint session_started_;
  sim::EventHandle report_timer_;
  sim::EventHandle attach_deadline_;
  sim::EventHandle watchdog_timer_;
  std::uint64_t attach_generation_ = 0;
  // Cell of the attach attempt currently in flight (0 = none). A newer
  // mobility event can supersede that attempt via the generation bump, in
  // which case none of its continuations run — the next attach uses this to
  // lower the superseded target's optimistically-raised bearer
  // (break-before-make must hold across retargets too).
  ran::CellId attach_pending_ = 0;

  // Reliable report channel (ordered so the post-attach flush is
  // deterministic and oldest-first).
  std::uint64_t next_report_seq_ = 1;
  std::map<std::uint64_t, OutstandingReport> outstanding_reports_;

  // Recovery state.
  bool recovery_enabled_ = false;
  bool in_recovery_ = false;
  std::function<std::vector<ran::CellId>()> candidate_source_;
  std::unordered_map<ran::CellId, TimePoint> blacklist_;  // cell -> until
  Duration recovery_backoff_ = Duration::zero();
  sim::EventHandle recovery_timer_;
  TimePoint outage_started_;

  TimePoint attach_started_;
  Duration last_attach_latency_ = Duration::zero();
  Summary attach_latencies_;
  Summary reattach_latencies_;
  std::uint64_t attach_failures_ = 0;
  std::uint64_t bearer_losses_ = 0;
  std::uint64_t reports_abandoned_ = 0;

  // Resumption-ticket state (inert unless Config::use_resume_tickets).
  Bytes ticket_;       // most recent broker-minted ticket (opaque wire form)
  Bytes ss_resume_;    // HKDF of that session's ss; proves ticket possession
  Summary resume_latencies_;
  std::uint64_t resumes_succeeded_ = 0;
  std::uint64_t resume_fallbacks_ = 0;
};

}  // namespace cb::cellbricks
