// UE agent: the host side of CellBricks.
//
// Implements (i) the UE's SAP procedures (Fig.2), (ii) host-driven mobility
// (§4.2): on every serving-cell change it detaches — invalidating the IP,
// exactly like the baseband setting the interface to 0.0.0.0 — runs SAP
// against the new bTelco, configures the new IP, and notifies the MPTCP
// path manager; and (iii) the baseband traffic meter whose signed reports
// make billing verifiable (§4.3).
#pragma once

#include <deque>

#include "cellbricks/btelco.hpp"
#include "common/stats.hpp"
#include "cellbricks/sap.hpp"
#include "ran/ran_map.hpp"
#include "ran/ue_radio.hpp"
#include "transport/mptcp.hpp"

namespace cb::cellbricks {

class UeAgent {
 public:
  struct Config {
    /// UE per-message processing incl. crypto (x2 per attach; Fig.7).
    Duration ue_msg = Duration::millis(1.25);
    /// eNB relay processing per leg (x2 per attach).
    Duration enb_msg = Duration::millis(0.375);
    /// Baseband reporting cycle.
    Duration report_interval = Duration::s(10);
    /// Dishonesty knob: scale reported DL usage (1.0 = honest; <1 models a
    /// user trying to under-pay). Requires a tampered baseband.
    double underreport_factor = 1.0;
  };

  UeAgent(net::Network& network, net::Node& ue_node, SapUe sap, const ran::RanMap& ran_map,
          std::function<Btelco*(ran::CellId)> telco_of_cell, net::EndPoint broker_report_ep);
  UeAgent(net::Network& network, net::Node& ue_node, SapUe sap, const ran::RanMap& ran_map,
          std::function<Btelco*(ran::CellId)> telco_of_cell, net::EndPoint broker_report_ep,
          Config config);

  /// Attach to `cell` via SAP. `done` gets the assigned IP or the error.
  void attach(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done);

  /// Detach from the current bTelco (radio drop + IP invalidation).
  void detach();

  /// Host-driven mobility: subscribe to the radio's cell-change events.
  /// Every change becomes detach + SAP re-attach; MPTCP (if wired via
  /// set_mptcp) is told about address invalidation/availability.
  void start_mobility(ran::UeRadio& radio);

  /// Wire the MPTCP path manager notifications.
  void set_mptcp(transport::MptcpStack* mptcp) { mptcp_ = mptcp; }

  bool attached() const { return current_ip_.valid(); }
  net::Ipv4Addr current_ip() const { return current_ip_; }
  ran::CellId serving_cell() const { return serving_cell_; }
  const std::string& id() const { return sap_.id_u(); }

  /// Most recent attach latency (radio legs excluded) — the paper's `d`.
  Duration last_attach_latency() const { return last_attach_latency_; }
  const Summary& attach_latencies() const { return attach_latencies_; }
  std::uint64_t attach_failures() const { return attach_failures_; }
  Duration ue_busy_time() const { return ue_queue_.busy_time(); }
  Duration enb_busy_time() const { return enb_queue_.busy_time(); }

  /// Fired after each completed attach (Table-1 instrumentation).
  std::function<void(ran::CellId, Duration latency)> on_attached;

 private:
  void send_report(bool final_report);
  void detach_locally();  // radio + IP teardown, no bTelco signalling

  net::Network& network_;
  net::Node& ue_node_;
  SapUe sap_;
  const ran::RanMap& ran_map_;
  std::function<Btelco*(ran::CellId)> telco_of_cell_;
  net::EndPoint broker_report_ep_;
  Config config_;
  sim::ServiceQueue ue_queue_;
  sim::ServiceQueue enb_queue_;
  Rng rng_;

  transport::MptcpStack* mptcp_ = nullptr;

  // Session state.
  net::Ipv4Addr current_ip_;
  ran::CellId serving_cell_ = 0;
  std::uint64_t session_id_ = 0;
  Btelco* serving_telco_ = nullptr;
  std::uint32_t next_period_ = 0;
  std::uint64_t dl_base_ = 0;
  std::uint64_t ul_base_ = 0;
  std::uint64_t dl_lost_base_ = 0;
  std::uint64_t dl_sent_base_ = 0;
  TimePoint session_started_;
  sim::EventHandle report_timer_;
  std::uint64_t attach_generation_ = 0;

  // Reports that could not be sent while detached (flushed next attach).
  std::deque<Bytes> pending_reports_;

  TimePoint attach_started_;
  Duration last_attach_latency_ = Duration::zero();
  Summary attach_latencies_;
  std::uint64_t attach_failures_ = 0;
};

}  // namespace cb::cellbricks
