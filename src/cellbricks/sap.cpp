#include "cellbricks/sap.hpp"

#include <unordered_set>

#include "cellbricks/ticket.hpp"
#include "common/log.hpp"
#include "crypto/hmac.hpp"
#include "obs/metrics.hpp"

namespace cb::cellbricks {

namespace {

// Sign-then-seal: the recipient first opens the box, then verifies the
// embedded signature over the inner payload.
Bytes sign_and_seal(const crypto::RsaKeyPair& signer, const crypto::RsaPublicKey& recipient,
                    BytesView inner, Rng& rng) {
  ByteWriter w;
  w.bytes(inner);
  w.bytes(signer.sign(inner));
  return crypto::seal(recipient, w.data(), rng);
}

Result<Bytes> open_and_verify(const crypto::RsaKeyPair& recipient,
                              const crypto::RsaPublicKey& signer, BytesView box) {
  auto opened = crypto::open(recipient, box);
  if (!opened) return Result<Bytes>::err("open failed: " + opened.error());
  try {
    ByteReader r(opened.value());
    Bytes inner = r.bytes();
    const Bytes sig = r.bytes();
    if (!signer.verify(inner, sig)) return Result<Bytes>::err("signature verification failed");
    return inner;
  } catch (const std::out_of_range&) {
    return Result<Bytes>::err("truncated signed payload");
  }
}

}  // namespace

SecurityContext SecurityContext::derive(BytesView ss) {
  SecurityContext ctx;
  ctx.kasme = Bytes(ss.begin(), ss.end());
  ctx.k_nas_enc = crypto::hkdf({}, ss, to_bytes("nas-enc"), 32);
  ctx.k_nas_int = crypto::hkdf({}, ss, to_bytes("nas-int"), 32);
  ctx.k_as = crypto::hkdf({}, ss, to_bytes("as"), 32);
  return ctx;
}

// --- SapUe ---------------------------------------------------------------

SapUe::SapUe(std::string id_u, std::string id_b, crypto::RsaKeyPair keys,
             crypto::RsaPublicKey broker_key)
    : id_u_(std::move(id_u)),
      id_b_(std::move(id_b)),
      keys_(std::move(keys)),
      broker_key_(std::move(broker_key)) {}

Bytes SapUe::make_auth_req(const std::string& id_t, Rng& rng) {
  // Fig.2 steps 1-4.
  last_nonce_ = rng.random_bytes(16);
  last_id_t_ = id_t;

  ByteWriter auth_vec;
  auth_vec.str(id_u_);
  auth_vec.str(id_b_);
  auth_vec.str(id_t);
  auth_vec.bytes(last_nonce_);

  const Bytes auth_vec_enc = crypto::seal(broker_key_, auth_vec.data(), rng);
  const Bytes sig = keys_.sign(auth_vec_enc);

  ByteWriter req;
  req.str(id_b_);
  req.bytes(auth_vec_enc);
  req.bytes(sig);
  obs::inc(obs::counter("sap.ue.auth_req_built"));
  return req.take();
}

Result<UeSession> SapUe::process_auth_resp(BytesView auth_resp_u) {
  // Fig.2 steps 5-6.
  auto inner = open_and_verify(keys_, broker_key_, auth_resp_u);
  if (!inner) {
    obs::inc(obs::counter("sap.ue.auth_resp_invalid"));
    return Result<UeSession>::err("authRespU: " + inner.error());
  }
  try {
    ByteReader r(inner.value());
    const std::string id_u = r.str();
    const std::string id_t = r.str();
    const Bytes ss = r.bytes();
    const Bytes nonce = r.bytes();
    const std::uint64_t session_id = r.u64();
    // Optional trailing field (resumption-enabled brokers only): pre-ticket
    // responses simply end here.
    Bytes ticket;
    if (r.remaining() > 0) ticket = r.bytes();

    if (id_u != id_u_) return Result<UeSession>::err("authRespU: wrong subscriber");
    if (id_t != last_id_t_) return Result<UeSession>::err("authRespU: wrong bTelco");
    if (!constant_time_equal(nonce, last_nonce_)) {
      return Result<UeSession>::err("authRespU: nonce mismatch (replay?)");
    }
    last_nonce_.clear();  // single use

    UeSession session;
    session.id_t = id_t;
    session.session_id = session_id;
    session.security = SecurityContext::derive(ss);
    session.ticket = std::move(ticket);
    obs::inc(obs::counter("sap.ue.auth_resp_ok"));
    return session;
  } catch (const std::out_of_range&) {
    return Result<UeSession>::err("authRespU: truncated");
  }
}

// --- SapTelco -------------------------------------------------------------------

SapTelco::SapTelco(std::string id_t, crypto::RsaKeyPair keys, crypto::Certificate cert,
                   crypto::RsaPublicKey ca_key)
    : id_t_(std::move(id_t)),
      keys_(std::move(keys)),
      cert_(std::move(cert)),
      ca_key_(std::move(ca_key)) {}

Bytes SapTelco::make_auth_req_t(BytesView auth_req_u, const QosCap& qos_cap) {
  ByteWriter body;
  body.bytes(auth_req_u);
  body.str(id_t_);
  qos_cap.serialize(body);
  body.bytes(cert_.serialize());

  ByteWriter out;
  out.bytes(body.data());
  out.bytes(keys_.sign(body.data()));
  return out.take();
}

Result<TelcoSession> SapTelco::process_auth_resp(BytesView auth_resp_t,
                                                 const crypto::Certificate& broker_cert,
                                                 TimePoint now) {
  // Authenticate the broker via its CA-signed certificate before trusting
  // the response (mutual T<->B authentication).
  if (!crypto::CertificateAuthority::verify_signature(broker_cert, ca_key_)) {
    return Result<TelcoSession>::err("authRespT: broker certificate invalid");
  }
  if (now < broker_cert.not_before() || now > broker_cert.not_after()) {
    return Result<TelcoSession>::err("authRespT: broker certificate expired");
  }

  auto inner = open_and_verify(keys_, broker_cert.key(), auth_resp_t);
  if (!inner) return Result<TelcoSession>::err("authRespT: " + inner.error());
  try {
    ByteReader r(inner.value());
    TelcoSession session;
    session.ue_pseudonym = r.str();
    const std::string id_t = r.str();
    const Bytes ss = r.bytes();
    session.qos = QosInfo::deserialize(r);
    session.session_id = r.u64();
    if (id_t != id_t_) return Result<TelcoSession>::err("authRespT: addressed to another bTelco");
    session.security = SecurityContext::derive(ss);
    obs::inc(obs::counter("sap.telco.auth_resp_ok"));
    return session;
  } catch (const std::out_of_range&) {
    return Result<TelcoSession>::err("authRespT: truncated");
  }
}

// --- SapBroker ------------------------------------------------------------------

SapBroker::SapBroker(std::string id_b, crypto::RsaKeyPair keys, crypto::Certificate cert,
                     crypto::RsaPublicKey ca_key)
    : id_b_(std::move(id_b)),
      keys_(std::move(keys)),
      cert_(std::move(cert)),
      ca_key_(std::move(ca_key)) {}

void SapBroker::enable_resume(Bytes ticket_key, Duration ttl) {
  ticket_key_ = std::move(ticket_key);
  ticket_ttl_ = ttl;
}

void SapBroker::add_subscriber(const std::string& id_u, crypto::RsaPublicKey key) {
  subscribers_[id_u] = std::move(key);
}

void SapBroker::remove_subscriber(const std::string& id_u) { subscribers_.erase(id_u); }

bool SapBroker::has_subscriber(const std::string& id_u) const {
  return subscribers_.contains(id_u);
}

Result<BrokerDecision> SapBroker::process_auth_req(
    BytesView auth_req_t, TimePoint now, Rng& rng, const QosInfo& desired_qos,
    const std::function<bool(const std::string&, const std::string&)>& authorize,
    const SessionIdTransform& session_id_transform) {
  using R = Result<BrokerDecision>;
  try {
    // Unpack and authenticate the bTelco layer.
    ByteReader outer(auth_req_t);
    const Bytes body = outer.bytes();
    const Bytes sig_t = outer.bytes();

    ByteReader br(body);
    const Bytes auth_req_u = br.bytes();
    const std::string id_t = br.str();
    const QosCap qos_cap = QosCap::deserialize(br);
    auto cert = crypto::Certificate::deserialize(br.bytes());
    if (!cert) return R::err("authReqT: " + cert.error());
    const crypto::Certificate& cert_t = cert.value();
    if (cert_t.subject() != id_t) return R::err("authReqT: certificate subject mismatch");
    if (!crypto::CertificateAuthority::verify_signature(cert_t, ca_key_)) {
      return R::err("authReqT: bTelco certificate invalid");
    }
    if (now < cert_t.not_before() || now > cert_t.not_after()) {
      return R::err("authReqT: bTelco certificate expired");
    }
    if (!cert_t.key().verify(body, sig_t)) return R::err("authReqT: bTelco signature invalid");

    // Unpack and authenticate the UE layer.
    ByteReader ur(auth_req_u);
    const std::string id_b = ur.str();
    const Bytes auth_vec_enc = ur.bytes();
    const Bytes sig_u = ur.bytes();
    if (id_b != id_b_) return R::err("authReqU: wrong broker");

    auto auth_vec = crypto::open(keys_, auth_vec_enc);
    if (!auth_vec) return R::err("authReqU: cannot open authVec: " + auth_vec.error());
    ByteReader vr(auth_vec.value());
    const std::string id_u = vr.str();
    const std::string vec_id_b = vr.str();
    const std::string vec_id_t = vr.str();
    const Bytes nonce = vr.bytes();

    if (vec_id_b != id_b_) return R::err("authVec: wrong broker");
    if (vec_id_t != id_t) {
      // The UE asked for a different bTelco than the one forwarding: either
      // a relay attack or a stale request.
      return R::err("authVec: bTelco mismatch");
    }
    auto sub = subscribers_.find(id_u);
    if (sub == subscribers_.end()) return R::err("authVec: unknown subscriber");
    if (!sub->second.verify(auth_vec_enc, sig_u)) return R::err("authVec: UE signature invalid");

    const std::string nonce_key = id_u + ":" + to_hex(nonce);
    if (seen_nonces_.contains(nonce_key)) return R::err("authVec: replayed nonce");
    seen_nonces_.insert(nonce_key);

    // Authorization policy (reputation, suspect list, billing standing).
    if (authorize && !authorize(id_u, id_t)) return R::err("authorization denied by policy");

    // Issue the session.
    BrokerDecision d;
    d.id_u = id_u;
    d.id_t = id_t;
    d.telco_key = cert_t.key();
    d.session_id = rng.next_u64();
    if (session_id_transform) d.session_id = session_id_transform(d.session_id, id_u);
    d.ss = rng.random_bytes(32);
    d.qos = QosInfo::negotiate(desired_qos, qos_cap);

    // authRespT: pseudonymous UE handle; never the real idU.
    const std::string pseudonym = "ue-" + to_hex(crypto::hmac_sha256(
        d.ss, to_bytes(id_u)));  // unlinkable across sessions
    ByteWriter t_inner;
    t_inner.str(pseudonym.substr(0, 19));
    t_inner.str(id_t);
    t_inner.bytes(d.ss);
    d.qos.serialize(t_inner);
    t_inner.u64(d.session_id);
    d.auth_resp_t = sign_and_seal(keys_, cert_t.key(), t_inner.data(), rng);

    ByteWriter u_inner;
    u_inner.str(id_u);
    u_inner.str(id_t);
    u_inner.bytes(d.ss);
    u_inner.bytes(nonce);
    u_inner.u64(d.session_id);
    if (!ticket_key_.empty()) {
      // Mint a resumption ticket (trailing optional field — pre-ticket UEs
      // stop reading before it). Drawn ONLY in resume mode, so worlds
      // without tickets consume the exact same rng stream as before.
      TicketInner ti;
      ti.pseudonym = pseudonym.substr(0, 19);
      ti.session_id = d.session_id;
      ti.qos = d.qos;
      ti.ss_resume = derive_resume_secret(d.ss);
      ti.ticket_id = rng.random_bytes(kTicketIdSize);
      u_inner.bytes(mint_resume_ticket(keys_, ticket_key_, ti, now + ticket_ttl_, rng));
    }
    d.auth_resp_u = sign_and_seal(keys_, sub->second, u_inner.data(), rng);

    obs::inc(obs::counter("sap.broker.auth_req_ok"));
    return d;
  } catch (const std::out_of_range&) {
    return R::err("authReqT: truncated");
  }
}

}  // namespace cb::cellbricks
