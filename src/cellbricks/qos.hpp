// QoS parameter negotiation (§4.1): the bTelco advertises what it can
// enforce (qosCap), the broker picks the values it wants applied (qosInfo),
// expressed with 3GPP-style QCI classes and rate limits.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace cb::cellbricks {

/// What a bTelco is able to enforce (advertised inside authReqT).
struct QosCap {
  double max_dl_bps = 0.0;  // 0 = unconstrained
  double max_ul_bps = 0.0;
  std::uint8_t qci_classes = 0x0F;  // bitmask of supported QCI groups

  void serialize(ByteWriter& w) const;
  static QosCap deserialize(ByteReader& r);
};

/// What the broker instructs the bTelco to apply (inside authRespT).
struct QosInfo {
  double dl_bps = 0.0;  // 0 = leave unconstrained
  double ul_bps = 0.0;
  std::uint8_t qci = 9;  // default best-effort bearer

  void serialize(ByteWriter& w) const;
  static QosInfo deserialize(ByteReader& r);

  /// Clamp a desired policy to what the bTelco can actually enforce.
  static QosInfo negotiate(const QosInfo& desired, const QosCap& cap);
};

}  // namespace cb::cellbricks
