// brokerd: the broker daemon (the paper implements it inside Magma's Orc8r,
// deployed on AWS). One UDP service handles:
//   * SAP authentication/authorization requests forwarded by bTelcos,
//   * encrypted, signed traffic reports from UEs and bTelcos (§4.3).
// Billing alignment and the reputation system run inline on report arrival.
#pragma once

#include <map>
#include <set>
#include <tuple>

#include "cellbricks/billing.hpp"
#include "cellbricks/reputation.hpp"
#include "cellbricks/sap.hpp"
#include "net/node.hpp"
#include "sim/service_queue.hpp"

namespace cb::cellbricks {

inline constexpr std::uint16_t kBrokerPort = 4500;

/// Wire message types on the broker port.
enum class BrokerMsg : std::uint8_t {
  AuthReq = 1,     // u64 txn, bytes authReqT
  AuthOk = 2,      // u64 txn, bytes authRespT, bytes authRespU
  AuthErr = 3,     // u64 txn, str reason
  Report = 4,      // u64 seq, bytes sealed{str reporter_id, u8 type, bytes report, bytes sig}
  ReportAck = 5,   // u64 seq — broker ack for a decoded+authenticated report
  Redirect = 6,    // u64 seq, u16 bucket, u16 owner — stale-route reply from a
                   // broker shard that does not own the session's bucket
                   // (sharded deployments only; see broker_cluster.hpp)
  ResumeNotify = 7,     // u64 txn, bytes sealed{bytes body{str id_t, u64 session_id,
                        // bytes ticket_id}, bytes cert_t, bytes sig_t(body)} — a bTelco
                        // honoured a resumption ticket locally (off the attach path)
  ResumeNotifyAck = 8,  // u64 txn, u8 revoke — revoke=1 orders the bTelco to tear the
                        // resumed session down (suspect subscriber / unknown session)
};

class Brokerd {
 public:
  struct Config {
    /// Per-SAP-request processing time (includes crypto; Fig.7 calibration:
    /// 8.25 ms so CB totals 24.5 ms of processing per attach).
    Duration sap_service_time = Duration::millis(8.25);
    /// Report ingestion is cheaper.
    Duration report_service_time = Duration::millis(1.0);
    /// Default subscriber plan handed to bTelcos as qosInfo.
    QosInfo default_qos{};
    ReputationConfig reputation{};
    /// How long a report waits for its counterpart before the broker gives
    /// up on pairing and charges the absent side with a "missing
    /// counterpart" reputation verdict.
    Duration pair_timeout = Duration::s(45);
    /// Idempotent-reply cache retention: long enough to cover any bTelco
    /// retransmission schedule, short enough to bound memory.
    Duration reply_cache_ttl = Duration::s(30);
    /// Housekeeping sweep cadence (pair timeouts + reply-cache eviction).
    Duration gc_interval = Duration::s(5);
    /// TEST HOOK (fuzzer planted-violation harness): accumulate retransmitted
    /// reports even when the (session, period, reporter) dedup filter has
    /// already seen them. Re-introduces the PR-1 double-count bug on purpose
    /// so the check layer can prove it detects, shrinks, and replays it.
    /// Never set outside tests.
    bool test_skip_report_dedup = false;
    /// Amortize report-signature RSA verification with the multiplicative
    /// batch screen (crypto/batch_verify.hpp): authenticated-but-unverified
    /// reports queue for up to `batch_window` and are screened together, one
    /// exponentiation per (key, window) group instead of one per report.
    /// Default OFF: batching delays ACKs by up to the window, which shifts
    /// event timing (golden fingerprints of existing scenarios must not
    /// move).
    bool batch_verify_reports = false;
    Duration batch_window = Duration::millis(5);
    /// Worker threads for the batch screen (0/1 = serial). Results are
    /// committed in arrival order either way.
    unsigned batch_threads = 0;
  };

  Brokerd(net::Node& node, SapBroker sap);
  Brokerd(net::Node& node, SapBroker sap, Config config);

  /// Subscriber management (delegates to the SAP layer; the same database
  /// backs billing-report signature checks).
  void add_subscriber(const std::string& id_u, crypto::RsaPublicKey key);
  void remove_subscriber(const std::string& id_u);

  /// Per-subscriber QoS plan override (else Config::default_qos).
  void set_plan(const std::string& id_u, QosInfo qos);

  const ReputationSystem& reputation() const { return reputation_; }
  ReputationSystem& reputation() { return reputation_; }

  /// Billing state inspection (EXPERIMENTS / examples).
  struct SessionRecord {
    std::string id_u;
    std::string id_t;
    std::uint64_t ue_dl_bytes = 0;
    std::uint64_t telco_dl_bytes = 0;
    std::uint64_t pairs_compared = 0;
    std::uint64_t mismatches = 0;
    // Periods already accumulated, keyed (period << 1) | reporter — the
    // dedup filter that keeps retransmitted reports from double-counting.
    std::set<std::uint64_t> seen;
    /// Times the cumulative byte counters above were bumped. Equals
    /// seen.size() unless a duplicate slipped past dedup — the check layer's
    /// billing.dedup invariant.
    std::uint64_t accumulations = 0;
    /// Byte totals restricted to periods where BOTH reports arrived and were
    /// compared, plus the summed Fig.5 tolerance for those pairs. On these
    /// the conservation bound is exact: with no recorded mismatch,
    /// |telco_paired - ue_paired| <= paired_threshold.
    std::uint64_t ue_paired_bytes = 0;
    std::uint64_t telco_paired_bytes = 0;
    double paired_threshold = 0.0;
  };
  const SessionRecord* session(std::uint64_t session_id) const;
  /// All sessions the broker has issued (check-layer iteration).
  const std::unordered_map<std::uint64_t, SessionRecord>& sessions() const {
    return sessions_;
  }
  /// Distinct SAP nonces consumed (delegates to the SAP layer).
  std::size_t nonces_seen() const { return sap_.nonces_seen(); }
  std::uint64_t sessions_issued() const { return sessions_issued_; }
  std::uint64_t reports_received() const { return reports_received_; }
  std::uint64_t reports_rejected() const { return reports_rejected_; }
  /// Reports accepted into billing state (authenticated, first copy).
  std::uint64_t reports_ingested() const { return reports_ingested_; }
  /// Retransmitted copies dropped by the (session, period, reporter) filter.
  std::uint64_t reports_deduped() const { return reports_deduped_; }
  /// Reports whose counterpart never arrived within pair_timeout.
  std::uint64_t unpaired_expired() const { return unpaired_expired_; }
  std::uint64_t pairs_compared_total() const { return pairs_compared_total_; }
  std::uint64_t auth_denied() const { return auth_denied_; }
  /// Ticket resumptions reported by bTelcos (and how many were ordered torn
  /// down because the subscriber turned suspect or the session was unknown).
  std::uint64_t resumes_notified() const { return resumes_notified_; }
  std::uint64_t resume_revocations() const { return resume_revocations_; }
  /// Batch-verification statistics (Config::batch_verify_reports).
  std::uint64_t reports_batch_verified() const { return reports_batch_verified_; }
  std::uint64_t report_batches() const { return report_batches_; }
  std::size_t pending_report_count() const { return pending_reports_.size(); }
  std::size_t reply_cache_size() const { return reply_cache_.size(); }
  /// Report retransmissions answered from the idempotent ack cache.
  std::uint64_t report_ack_cache_hits() const { return report_ack_cache_hits_; }
  std::size_t report_ack_cache_size() const { return report_ack_cache_.size(); }

  /// Fig.7 breakdown.
  Duration busy_time() const { return queue_.busy_time(); }
  /// Processing time spent on SAP requests only (excludes report ingestion).
  Duration sap_busy_time() const { return sap_busy_; }

  net::Node& node() { return node_; }
  const SapBroker& sap() const { return sap_; }

 private:
  void handle(const net::Packet& packet);
  void handle_auth(const net::EndPoint& from, ByteReader& r);
  void handle_report(const net::EndPoint& from, ByteReader& r);
  void handle_resume_notify(const net::EndPoint& from, ByteReader& r);
  void flush_report_batch();
  void finish_report(const net::EndPoint& from, std::uint64_t seq,
                     const std::pair<std::uint64_t, std::uint64_t>& ack_key,
                     const std::string& reporter_id, Reporter type, const Bytes& report_bytes,
                     bool sig_ok);
  void ingest_report(const std::string& reporter_id, Reporter type, const TrafficReport& report,
                     const std::pair<std::uint64_t, std::uint64_t>& ack_key);
  void compare_if_paired(std::uint64_t session_id, std::uint32_t period);
  void reply(const net::EndPoint& to, Bytes payload);
  void ensure_sweeper();
  void sweep();

  net::Node& node_;
  SapBroker sap_;
  Config config_;
  sim::ServiceQueue queue_;
  Rng rng_;
  ReputationSystem reputation_;

  std::unordered_map<std::string, crypto::RsaPublicKey> subscriber_keys_;
  std::unordered_map<std::string, crypto::RsaPublicKey> telco_keys_;
  std::unordered_map<std::string, QosInfo> plans_;
  std::unordered_map<std::uint64_t, SessionRecord> sessions_;
  // (session, period, reporter) -> report awaiting its counterpart. The
  // arrival timestamp drives the unpaired-report timeout.
  struct PendingReport {
    TrafficReport report;
    TimePoint received_at;
    /// (requester, seq) key of this report's ack-cache entry, so pair-expiry
    /// can evict the cached ack along with the pending report.
    std::pair<std::uint64_t, std::uint64_t> ack_key{0, 0};
  };
  std::map<std::tuple<std::uint64_t, std::uint32_t, int>, PendingReport> pending_reports_;

  // Replies cached per (requester, txn) so a bTelco's retransmission of a
  // lost response is answered idempotently instead of tripping the nonce
  // replay check. TTL-evicted by the sweeper.
  struct CachedReply {
    Bytes payload;
    TimePoint at;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, CachedReply> reply_cache_;
  /// Report ACKs cached per (requester, seq). Evicted on TTL AND when the
  /// backing pending report expires unpaired: a retransmit arriving after
  /// the expiry verdict must be re-processed (and re-judged), not answered
  /// from a cache whose decision the sweeper has since superseded.
  std::map<std::pair<std::uint64_t, std::uint64_t>, CachedReply> report_ack_cache_;
  sim::EventHandle sweep_timer_;

  /// One report waiting in the batch-verification window.
  struct PendingVerify {
    net::EndPoint from;
    std::uint64_t seq = 0;
    std::pair<std::uint64_t, std::uint64_t> ack_key{0, 0};
    std::string reporter_id;
    Reporter type{};
    Bytes report_bytes;
    crypto::RsaPublicKey key;
    Bytes sig;
  };
  std::vector<PendingVerify> verify_queue_;
  sim::EventHandle batch_timer_;

  Duration sap_busy_ = Duration::zero();
  std::uint64_t sessions_issued_ = 0;
  std::uint64_t reports_received_ = 0;
  std::uint64_t reports_rejected_ = 0;
  std::uint64_t reports_ingested_ = 0;
  std::uint64_t reports_deduped_ = 0;
  std::uint64_t unpaired_expired_ = 0;
  std::uint64_t pairs_compared_total_ = 0;
  std::uint64_t auth_denied_ = 0;
  std::uint64_t report_ack_cache_hits_ = 0;
  std::uint64_t resumes_notified_ = 0;
  std::uint64_t resume_revocations_ = 0;
  std::uint64_t reports_batch_verified_ = 0;
  std::uint64_t report_batches_ = 0;
};

}  // namespace cb::cellbricks
