// Sharded broker cluster (DESIGN.md §12): N broker shards own disjoint
// subscriber-bucket ranges via rendezvous hashing and replicate a shared
// append-only settlement log (settlement_log.hpp) so report pairing,
// verdicts, and reputation survive any single shard's crash.
//
// Protocol sketch (single-decree, leader-per-entry over the ACKed UDP
// transport — the author of an entry is its leader):
//   * Every shard authors to its own stream and pushes Append messages to
//     all peers, retransmitting until each live peer AppendAcks. An entry is
//     COMMITTED once every currently-live peer has stored it; client-visible
//     effects (AuthOk, ReportAck) are withheld until commit, so an acked
//     verdict can never be lost to a single crash.
//   * Heartbeats double as the failure detector and the anti-entropy
//     vector: they advertise per-stream applied lengths, and a peer that is
//     behind issues Fetch -> Chunk catch-up reads. This one mechanism covers
//     both dead-author partial replication and post-restart recovery.
//   * Bucket ownership = hrw_owner over the live+ready shard set. Owners
//     pair reports inside the log fold (so takeover re-drives pairing
//     straight from the replica) and expire unpaired reports from the
//     *logged* ingest time. Brief double-ownership windows are harmless:
//     verdict content is deterministic and the fold dedups on apply.
//   * A restarted shard comes back empty, authors to a FRESH stream (no
//     index reuse), and stays in `recovering` — acking replication but
//     ignoring clients — until it has caught up with every live peer.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "cellbricks/brokerd.hpp"
#include "cellbricks/settlement_log.hpp"

namespace cb::cellbricks {

/// UDP port for shard<->shard replication traffic (client traffic stays on
/// kBrokerPort).
inline constexpr std::uint16_t kBrokerClusterPort = 4501;

/// Inter-shard wire messages on kBrokerClusterPort.
enum class ClusterMsg : std::uint8_t {
  Append = 1,     // u16 stream, u64 index, bytes entry
  AppendAck = 2,  // u16 acker, u16 stream, u64 index
  Heartbeat = 3,  // u16 sender, u8 ready, u16 n_streams, n x u64 applied_len
  Fetch = 4,      // u16 requester, u16 stream, u64 from_index
  Chunk = 5,      // u16 stream, u64 start, u16 count, count x bytes entry
};

/// Client-side shard map: static endpoints, redirect-learned bucket
/// overrides, and a timeout-driven suspect list so retries fail over instead
/// of hammering a dead endpoint.
class ShardRouter {
 public:
  struct Config {
    /// Consecutive timeouts before an endpoint is marked suspect.
    int suspect_after = 2;
    /// How long a suspect endpoint is avoided before being retried.
    Duration suspect_hold = Duration::s(3);
  };

  explicit ShardRouter(std::vector<net::EndPoint> shards);
  ShardRouter(std::vector<net::EndPoint> shards, Config config);

  std::size_t n_shards() const { return shards_.size(); }
  const net::EndPoint& endpoint(std::size_t shard) const { return shards_.at(shard); }

  /// Shard to contact for a session-scoped message (reports): the learned
  /// redirect override if healthy, else rendezvous over non-suspect shards.
  std::size_t pick_for_session(std::uint64_t session_id, TimePoint now);
  /// Shard to contact for a new auth (subscriber unknown until the broker
  /// opens the request): sticky to spread state kindly, skipping suspects.
  std::size_t pick_for_auth(TimePoint now);

  /// A shard told us who owns `bucket` now (stale-route redirect reply).
  void learn_redirect(std::uint16_t bucket, std::uint16_t owner);
  void note_timeout(std::size_t shard, TimePoint now);
  void note_ok(std::size_t shard);

  bool suspect(std::size_t shard, TimePoint now) const;
  std::uint64_t redirects_learned() const { return redirects_learned_; }

 private:
  std::vector<std::size_t> healthy(TimePoint now) const;

  std::vector<net::EndPoint> shards_;
  Config config_;
  std::unordered_map<std::uint16_t, std::size_t> overrides_;  // bucket -> shard
  struct Health {
    int strikes = 0;
    TimePoint suspect_until;
  };
  std::vector<Health> health_;
  std::size_t auth_sticky_ = 0;
  std::uint64_t redirects_learned_ = 0;
};

class BrokerCluster;

/// One broker shard: client-facing SAP + report ingestion on kBrokerPort
/// (same wire protocol as Brokerd, plus BrokerMsg::Redirect), replication on
/// kBrokerClusterPort, and the settlement fold as its only billing state.
class BrokerShard {
 public:
  struct Config {
    Brokerd::Config broker{};
    Duration heartbeat_interval = Duration::millis(500);
    /// Missed heartbeat intervals before a peer is considered dead.
    int miss_threshold = 3;
    /// Append retransmission cadence toward unacked peers.
    Duration append_retry = Duration::millis(250);
    /// Minimum spacing of Fetch requests per stream (rate-limits catch-up).
    Duration fetch_cooldown = Duration::millis(200);
    /// Max entries per Chunk reply.
    std::size_t chunk_max = 64;
  };

  BrokerShard(BrokerCluster& cluster, std::size_t index, net::Node& node, SapBroker sap,
              Config config);

  std::size_t index() const { return index_; }
  net::Node& node() { return node_; }

  void add_subscriber(const std::string& id_u, crypto::RsaPublicKey key);
  /// Pre-register a bTelco's report-signing key (normally learned from the
  /// auth certificate; registered cluster-wide so a report can be verified
  /// at a shard that never served that bTelco's attach).
  void add_telco(const std::string& id_t, crypto::RsaPublicKey key);
  void set_plan(const std::string& id_u, QosInfo qos);

  /// Fault injection: crash wipes the log, fold, and every in-flight
  /// commit/cache — only the node config and the subscriber DB (durable by
  /// assumption) survive. Restart re-joins in `recovering` state.
  void crash();
  void restart();
  bool crashed() const { return crashed_; }
  bool recovering() const { return recovering_; }

  /// Live-shard view from this shard's failure detector (self included only
  /// when up; peers by heartbeat age). `ready_only` additionally filters to
  /// peers whose last heartbeat declared them caught up — the ownership set.
  std::vector<std::size_t> live_view(bool ready_only) const;
  bool owns_bucket(std::uint16_t bucket) const;

  const SettlementLog& log() const { return log_; }
  const SettlementState& fold() const { return state_; }

  std::uint64_t sessions_issued() const { return sessions_issued_; }
  std::uint64_t reports_received() const { return reports_received_; }
  std::uint64_t reports_rejected() const { return reports_rejected_; }
  std::uint64_t reports_ingested() const { return reports_ingested_; }
  std::uint64_t reports_deduped() const { return reports_deduped_; }
  std::uint64_t redirects_sent() const { return redirects_sent_; }
  std::uint64_t auth_denied() const { return auth_denied_; }
  std::uint64_t takeovers() const { return takeovers_; }
  Duration busy_time() const { return queue_.busy_time(); }
  std::size_t nonces_seen() const { return sap_.nonces_seen(); }

 private:
  friend class BrokerCluster;

  // Client path (mirrors Brokerd).
  void handle_client(const net::Packet& packet);
  void handle_auth(const net::EndPoint& from, ByteReader& r);
  void handle_report(const net::EndPoint& from, ByteReader& r);
  void reply(const net::EndPoint& to, Bytes payload, std::uint16_t src_port = kBrokerPort);

  // Replication path.
  void handle_cluster(const net::Packet& packet);
  void on_append(ByteReader& r);
  void on_append_ack(ByteReader& r);
  void on_heartbeat(const net::Packet& p, ByteReader& r);
  void on_fetch(const net::EndPoint& from, ByteReader& r);
  void on_chunk(ByteReader& r);

  /// Author an entry to this incarnation's stream; `on_commit` fires once
  /// every currently-live peer acked (immediately when there are none).
  void author(SettlementEntry entry, std::function<void()> on_commit);
  void send_append(std::size_t peer, std::size_t stream, std::uint64_t index);
  void ensure_append_retry();
  void retry_appends();
  void check_commit(std::uint64_t index);
  void send_to_peer(std::size_t peer, Bytes payload);

  /// Fold hook shared by author/store/chunk paths: updates the fold and, if
  /// this shard owns the entry's bucket, drives pairing.
  void apply_entry(std::size_t stream, std::uint64_t index, const SettlementEntry& e);
  void try_pair(std::uint64_t session_id, std::uint32_t period);
  /// Ownership changed (peer died/joined/recovered): re-drive pairing for
  /// newly owned buckets from the replica.
  void redrive_owned_pending();

  void heartbeat_tick();
  void refresh_ownership();
  void maybe_finish_recovery();
  void sweep();

  BrokerCluster& cluster_;
  std::size_t index_;
  net::Node& node_;
  SapBroker sap_;
  Config config_;
  sim::ServiceQueue queue_;
  Rng rng_;

  SettlementLog log_;
  SettlementState state_;

  std::unordered_map<std::string, crypto::RsaPublicKey> subscriber_keys_;
  std::unordered_map<std::string, crypto::RsaPublicKey> telco_keys_;
  std::unordered_map<std::string, QosInfo> plans_;

  // Authoring/commit state. The stream index advances by n_shards per
  // incarnation so a restarted shard never reuses indices it may have
  // partially replicated before dying.
  std::size_t cur_stream_;
  struct PendingAppend {
    Bytes entry_wire;
    std::set<std::size_t> waiting;  // peers not yet acked
    std::function<void()> on_commit;
  };
  std::map<std::uint64_t, PendingAppend> pending_appends_;  // by index in cur_stream_
  sim::EventHandle append_retry_timer_;
  /// ReportIngested entries authored but not yet committed: retransmits of
  /// these must NOT be acked early from the fold's seen-set.
  std::set<std::tuple<std::uint64_t, std::uint32_t, int>> uncommitted_reports_;

  // Failure detector + anti-entropy state (per peer).
  struct PeerView {
    TimePoint last_hb;  // zero = boot grace (assumed live)
    bool ready = true;
    std::vector<std::uint64_t> advertised;  // per-stream applied lengths
  };
  std::vector<PeerView> peers_;
  std::unordered_map<std::size_t, TimePoint> fetch_last_;  // per stream, rate limit
  sim::EventHandle heartbeat_timer_;
  sim::EventHandle sweep_timer_;
  std::uint64_t ownership_sig_ = 0;  // hash of last ownership set

  // Client reply caches (same idempotency contract as Brokerd).
  struct CachedReply {
    Bytes payload;  // empty while the backing entry awaits commit
    TimePoint at;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, CachedReply> auth_reply_cache_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, CachedReply> report_ack_cache_;

  bool crashed_ = false;
  bool recovering_ = false;
  std::uint64_t incarnation_ = 0;
  std::vector<bool> hb_seen_since_restart_;

  std::uint64_t sessions_issued_ = 0;
  std::uint64_t reports_received_ = 0;
  std::uint64_t reports_rejected_ = 0;
  std::uint64_t reports_ingested_ = 0;
  std::uint64_t reports_deduped_ = 0;
  std::uint64_t redirects_sent_ = 0;
  std::uint64_t auth_denied_ = 0;
  std::uint64_t takeovers_ = 0;
};

/// The cluster: owns the shards, the client-facing endpoint list, and a
/// synchronous observer fold of every authored entry — deterministic global
/// ground truth for invariants and benchmarks that survives shard crashes
/// (it models the auditor's view, not a networked replica).
class BrokerCluster {
 public:
  explicit BrokerCluster(BrokerShard::Config config)
      : config_(config), observer_state_(config.broker.reputation) {}

  /// Add one shard hosted on `node`. All shards must share the broker
  /// keypair/certificate so clients seal to a single broker identity.
  BrokerShard& add_shard(net::Node& node, SapBroker sap);
  /// Arm heartbeats (staggered per shard). Call after all add_shard calls.
  void start();

  std::size_t n_shards() const { return shards_.size(); }
  BrokerShard& shard(std::size_t i) { return *shards_.at(i); }
  const BrokerShard& shard(std::size_t i) const { return *shards_.at(i); }
  const std::vector<net::EndPoint>& client_endpoints() const { return client_eps_; }
  const std::vector<net::EndPoint>& cluster_endpoints() const { return cluster_eps_; }
  const BrokerShard::Config& config() const { return config_; }

  /// Cluster-wide registration (broker-issued material, present on every
  /// shard — the "durable subscriber DB" of DESIGN.md §12).
  void add_subscriber(const std::string& id_u, crypto::RsaPublicKey key);
  void add_telco(const std::string& id_t, crypto::RsaPublicKey key);
  void set_plan(const std::string& id_u, QosInfo qos);

  void crash_shard(std::size_t i) { shards_.at(i)->crash(); }
  void restart_shard(std::size_t i) { shards_.at(i)->restart(); }

  /// Auditor's fold: applied synchronously at author time, in the global
  /// deterministic authoring order.
  const SettlementState& observer() const { return observer_state_; }
  const SettlementLog& observer_log() const { return observer_log_; }

  // Cluster-wide aggregates (world/chaos/bench accounting).
  std::uint64_t sessions_issued() const;
  std::uint64_t reports_ingested() const;
  std::uint64_t reports_deduped() const;
  std::uint64_t pairs_compared() const { return observer_state_.verdicts_paired(); }
  std::uint64_t unpaired_expired() const { return observer_state_.verdicts_missing(); }
  std::uint64_t redirects_sent() const;
  std::size_t nonces_seen() const;

 private:
  friend class BrokerShard;
  void observe_author(std::size_t stream, std::uint64_t index, const SettlementEntry& e);

  BrokerShard::Config config_;
  std::vector<std::unique_ptr<BrokerShard>> shards_;
  std::vector<net::EndPoint> client_eps_;
  std::vector<net::EndPoint> cluster_eps_;
  SettlementLog observer_log_;
  SettlementState observer_state_;
  bool started_ = false;
};

}  // namespace cb::cellbricks
