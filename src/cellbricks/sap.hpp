// The Secure Attachment Protocol (SAP) — the heart of CellBricks (§4.1).
//
// One round trip, UE → bTelco → broker → bTelco → UE, replacing the shared-
// secret EPS-AKA with public-key authentication among mutually untrusting
// parties. Message construction/verification is pure logic here (fully unit
// testable); the network actors in ue_agent/btelco/brokerd move the bytes.
//
// Faithful to Fig.2/Fig.3:
//   UE:     authVec = (idU, idB, idT, n); encrypt with pkB; sign with skU;
//           authReqU = (sig, authVec*, idB).
//           The bTelco never sees idU in cleartext (no IMSI catching).
//   bTelco: augments with (idT, qosCap, cert_T), signs -> authReqT.
//   Broker: authenticates T (CA cert + signature) and U (stored pkU +
//           signature), checks the nonce for replay, authorizes, and returns
//           authRespT (-> ss, qosInfo, pseudonymous session id, sealed to T)
//           and authRespU (-> ss, nonce echo, sealed to U), both signed.
//   Both U and T derive the security context from ss (= K_ASME) via HKDF.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cellbricks/qos.hpp"
#include "common/result.hpp"
#include "crypto/box.hpp"
#include "crypto/cert.hpp"

namespace cb::cellbricks {

/// NAS/AS key hierarchy derived from the SAP shared secret (§4.1: ss is
/// used as K_ASME in the unmodified SMC procedures).
struct SecurityContext {
  Bytes kasme;      // = ss
  Bytes k_nas_enc;  // NAS ciphering
  Bytes k_nas_int;  // NAS integrity
  Bytes k_as;       // AS (RRC/UP) root

  static SecurityContext derive(BytesView ss);
  bool operator==(const SecurityContext&) const = default;
};

/// What the UE learns from a successful SAP run.
struct UeSession {
  std::string id_t;  // serving bTelco
  std::uint64_t session_id = 0;
  SecurityContext security;
  /// Resumption ticket (ticket.hpp), present when the broker has resumption
  /// enabled; empty otherwise. Opaque to the UE — it is presented verbatim
  /// on re-attach, authenticated by ss-derived material.
  Bytes ticket;
};

/// What the bTelco learns (note: a pseudonym, never the real idU).
struct TelcoSession {
  std::string ue_pseudonym;
  std::uint64_t session_id = 0;
  QosInfo qos;
  SecurityContext security;
};

// --- UE side ---------------------------------------------------------------

class SapUe {
 public:
  /// `keys` and `broker_key` are SIM-provisioned state (§4.1: "U's key
  /// pairs and B's public key ... embedded in the U's SIM card").
  SapUe(std::string id_u, std::string id_b, crypto::RsaKeyPair keys,
        crypto::RsaPublicKey broker_key);

  const std::string& id_u() const { return id_u_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.public_key(); }
  const crypto::RsaPublicKey& broker_key() const { return broker_key_; }

  /// Sign arbitrary payloads with the device key (baseband-held): used for
  /// tamper-resistant traffic reports (§4.3).
  Bytes sign(BytesView message) const { return keys_.sign(message); }

  /// Craft authReqU for bTelco `id_t`; remembers the nonce for the reply.
  Bytes make_auth_req(const std::string& id_t, Rng& rng);

  /// Verify and unpack authRespU; fails on bad signature, wrong nonce
  /// (replay), or mismatched identities.
  Result<UeSession> process_auth_resp(BytesView auth_resp_u);

 private:
  std::string id_u_;
  std::string id_b_;
  crypto::RsaKeyPair keys_;
  crypto::RsaPublicKey broker_key_;
  Bytes last_nonce_;
  std::string last_id_t_;
};

// --- bTelco side --------------------------------------------------------------

class SapTelco {
 public:
  SapTelco(std::string id_t, crypto::RsaKeyPair keys, crypto::Certificate cert,
           crypto::RsaPublicKey ca_key);

  const std::string& id_t() const { return id_t_; }
  const crypto::Certificate& certificate() const { return cert_; }

  /// Sign arbitrary payloads (traffic reports).
  Bytes sign(BytesView message) const { return keys_.sign(message); }

  /// Augment a UE request with service parameters and sign it (Fig.3 top).
  Bytes make_auth_req_t(BytesView auth_req_u, const QosCap& qos_cap);

  /// Verify a broker's authRespT: checks the broker certificate against the
  /// CA, the signature, and that the response addresses this bTelco.
  Result<TelcoSession> process_auth_resp(BytesView auth_resp_t,
                                         const crypto::Certificate& broker_cert,
                                         TimePoint now);

 private:
  std::string id_t_;
  crypto::RsaKeyPair keys_;
  crypto::Certificate cert_;
  crypto::RsaPublicKey ca_key_;
};

// --- Broker side ----------------------------------------------------------------

/// Outcome of broker-side SAP processing.
struct BrokerDecision {
  std::string id_u;   // authenticated subscriber
  std::string id_t;   // authenticated bTelco
  std::uint64_t session_id = 0;
  Bytes ss;           // issued shared secret
  QosInfo qos;        // negotiated parameters
  Bytes auth_resp_t;  // sealed for the bTelco
  Bytes auth_resp_u;  // sealed for the UE (forwarded blindly by the bTelco)
  crypto::RsaPublicKey telco_key;  // from the validated certificate
};

class SapBroker {
 public:
  SapBroker(std::string id_b, crypto::RsaKeyPair keys, crypto::Certificate cert,
            crypto::RsaPublicKey ca_key);

  const std::string& id_b() const { return id_b_; }
  const crypto::Certificate& certificate() const { return cert_; }
  /// CA root the broker validates bTelco certificates against (brokerd also
  /// checks ResumeNotify certificates with it).
  const crypto::RsaPublicKey& ca_key() const { return ca_key_; }

  /// Enable resumption tickets (ticket.hpp): every successful auth appends a
  /// ticket — sealed under `ticket_key` (the STEK shared with federated
  /// bTelcos), signed by this broker, expiring `ttl` after issuance — to the
  /// UE response. Off (no ticket, wire unchanged) until called.
  void enable_resume(Bytes ticket_key, Duration ttl);
  bool resume_enabled() const { return !ticket_key_.empty(); }
  const Bytes& ticket_key() const { return ticket_key_; }

  /// Register a subscriber's public key (the broker issued it — no
  /// certificate needed, revocation = deletion).
  void add_subscriber(const std::string& id_u, crypto::RsaPublicKey key);
  void remove_subscriber(const std::string& id_u);
  bool has_subscriber(const std::string& id_u) const;

  /// Open a sealed box addressed to this broker (used for traffic reports,
  /// which are encrypted to pkB like SAP material).
  Result<Bytes> open_box(BytesView box) const { return crypto::open(keys_, box); }

  /// Distinct nonces consumed by accepted auth requests. Every authorized
  /// session burned exactly one fresh nonce, so sessions issued can never
  /// exceed this (the check layer's nonce-uniqueness invariant).
  std::size_t nonces_seen() const { return seen_nonces_.size(); }

  /// Optional hook applied to the freshly drawn session id before it is
  /// sealed into the responses. The sharded broker uses it to embed the
  /// subscriber's routing bucket in the id (settlement_log.hpp); the default
  /// (empty) leaves the raw random id untouched.
  using SessionIdTransform =
      std::function<std::uint64_t(std::uint64_t raw, const std::string& id_u)>;

  /// Full Fig.3 broker procedure. `authorize` is the policy hook
  /// (reputation / suspect list); `desired_qos` is the subscriber's plan.
  Result<BrokerDecision> process_auth_req(
      BytesView auth_req_t, TimePoint now, Rng& rng, const QosInfo& desired_qos,
      const std::function<bool(const std::string& id_u, const std::string& id_t)>& authorize,
      const SessionIdTransform& session_id_transform = {});

 private:
  std::string id_b_;
  crypto::RsaKeyPair keys_;
  crypto::Certificate cert_;
  crypto::RsaPublicKey ca_key_;
  std::unordered_map<std::string, crypto::RsaPublicKey> subscribers_;
  std::unordered_set<std::string> seen_nonces_;  // replay cache
  Bytes ticket_key_;                             // empty = resumption off
  Duration ticket_ttl_ = Duration::zero();
};

}  // namespace cb::cellbricks
