// bTelco: a CellBricks access provider of any scale — here the extreme
// design point the paper evaluates (§6.2): ONE tower per provider, with the
// core appliances (AGW) co-located on the tower node.
//
// Responsibilities (§3/§4): forward SAP messages between UE and broker
// (adding qosCap and its signature), install sessions on authorization
// (assign an IP from its own pool, anchor the user plane, enforce qosInfo),
// meter per-session usage at its gateway, and periodically send signed,
// encrypted traffic reports to the broker. No inter-bTelco coordination, no
// handover support, no subscriber database: that is the simplification the
// architecture buys.
#pragma once

#include <unordered_set>
#include <vector>

#include "cellbricks/billing.hpp"
#include "cellbricks/brokerd.hpp"
#include "cellbricks/sap.hpp"
#include "cellbricks/ticket.hpp"
#include "net/network.hpp"
#include "sim/service_queue.hpp"

namespace cb::cellbricks {

class ShardRouter;

class Btelco {
 public:
  struct Config {
    /// Per-message AGW processing (x2 per attach; Fig.7: 6.5 ms each).
    Duration agw_msg = Duration::millis(6.5);
    /// Reporting cycle for traffic reports ("order of many seconds").
    Duration report_interval = Duration::s(10);
    /// QoS capability advertised to brokers.
    QosCap qos_cap{};
    /// Subscriber IP pool subnet (first octet).
    std::uint8_t ip_subnet = 100;
    /// Dishonesty knob: multiply reported DL usage (1.0 = honest). The
    /// "dishonest but not malicious" threat model of §4.3.
    double overreport_factor = 1.0;
    /// How long after a SAP response with no matching UE detach before the
    /// session is garbage collected (inactivity timeout).
    Duration session_timeout = Duration::s(120);
    /// Inactivity-GC sweep cadence.
    Duration gc_interval = Duration::s(15);
    /// Broker-request retransmission (the UDP control path can lose
    /// datagrams under degraded conditions).
    Duration broker_retry = Duration::s(1);
    int broker_attempts = 4;
    /// Traffic-report retransmission: reports are resent with doubling
    /// backoff until the broker ACKs or the attempts are exhausted.
    Duration report_retry = Duration::s(1);
    int report_attempts = 5;
  };

  Btelco(net::Network& network, net::Node& node, SapTelco sap,
         crypto::Certificate broker_cert, net::EndPoint broker_endpoint);
  Btelco(net::Network& network, net::Node& node, SapTelco sap,
         crypto::Certificate broker_cert, net::EndPoint broker_endpoint, Config config);

  /// SAP entry point, invoked by the UE agent over the radio control
  /// channel. On success `reply` receives (authRespU bytes, assigned IP).
  using AttachReply = std::function<void(Result<std::pair<Bytes, net::Ipv4Addr>>)>;
  void handle_attach(Bytes auth_req_u, net::Node* ue_node, net::Link* radio_link,
                     AttachReply reply);

  /// UE-initiated detach: finalize accounting, send the final report, and
  /// release the session.
  void handle_detach(std::uint64_t session_id);

  /// Join the broker's ticket federation: accept resumption tickets sealed
  /// under `ticket_key` (the STEK) without a broker round trip.
  void enable_resume(Bytes ticket_key);
  bool resume_enabled() const { return !ticket_key_.empty(); }

  /// Resume entry point: the UE presents a broker-minted ticket instead of
  /// authReqU. Verification is entirely local (broker signature, expiry,
  /// STEK seal, proof-of-possession, single-use, revocation); on success
  /// `reply` receives (resume-confirm bytes, assigned IP) and the broker is
  /// notified asynchronously off the attach critical path.
  void handle_resume(Bytes resume_req, net::Node* ue_node, net::Link* radio_link,
                     AttachReply reply);

  /// Audit trail of accepted resumes — the check layer's evidence that a
  /// ticket was never honoured past expiry, twice, or while revoked.
  struct TicketAudit {
    Bytes ticket_id;
    std::uint64_t session_id = 0;
    std::string pseudonym;
    std::uint64_t expiry_ns = 0;
    std::uint64_t accepted_at_ns = 0;
    bool was_revoked = false;  // pseudonym was on the revocation list at accept
  };
  const std::vector<TicketAudit>& ticket_audit() const { return ticket_audit_; }
  std::uint64_t resumes_served() const { return resumes_; }
  std::uint64_t resumes_rejected() const { return resumes_rejected_; }
  const std::unordered_set<std::string>& revoked_pseudonyms() const { return revoked_; }
  /// Pseudonyms with a live session (check layer: revoked implies not live).
  std::vector<std::string> session_pseudonyms() const;

  /// Sharded-broker deployments: route auth requests and reports through
  /// the shard map (auth sticky, reports by session id), follow Redirect
  /// replies, and fail over on retransmission timeouts. Unset = single
  /// broker endpoint (default).
  void set_router(ShardRouter* router) { router_ = router; }

  /// Fault injection: `crash` kills the provider — the node goes dark, every
  /// session (bearers, IPs, report timers, in-flight broker transactions) is
  /// lost, exactly as if the co-located AGW appliance rebooted. `restart`
  /// brings the node back with empty state; UEs must re-attach via SAP.
  void crash();
  void restart();
  bool crashed() const { return crashed_; }

  const std::string& id() const { return sap_.id_t(); }
  net::Node& node() { return node_; }
  std::size_t active_sessions() const { return sessions_.size(); }
  std::uint64_t attaches_served() const { return attaches_; }
  /// Sessions reclaimed by the inactivity GC (UE vanished without detach).
  std::uint64_t sessions_gced() const { return sessions_gced_; }
  /// Reports dropped after exhausting every retransmission attempt.
  std::uint64_t reports_abandoned() const { return reports_abandoned_; }
  std::size_t outstanding_reports() const { return outstanding_reports_.size(); }
  Duration busy_time() const { return queue_.busy_time(); }

  /// Ids of currently installed sessions (check layer: every one must be
  /// backed by a broker-issued record — no session without a signed verdict).
  std::vector<std::uint64_t> session_ids() const;
  /// Sessions whose last uplink activity predates `cutoff` — candidates the
  /// inactivity GC must reclaim (check layer: none may outlive the GC
  /// horizon). Gateway counters are consulted so a session with fresh
  /// not-yet-swept uplink traffic is not reported stale.
  std::size_t sessions_stale_since(TimePoint cutoff) const;

  /// Callback fired when a session is installed (the scenario uses it to
  /// hook the QoS cap into the bearer shaper).
  std::function<void(net::Link* radio_link, const QosInfo&)> on_session_installed;

 private:
  struct Session {
    std::uint64_t id = 0;
    std::string pseudonym;
    net::Node* ue_node = nullptr;
    net::Link* radio_link = nullptr;
    net::Ipv4Addr ip;
    QosInfo qos;
    SecurityContext security;
    TimePoint started_at;
    std::uint32_t next_period = 0;
    // Gateway-side counter snapshots at the start of the current period:
    // DL measured pre-radio (what the gateway sent), UL post-radio.
    std::uint64_t dl_sent_base = 0;
    std::uint64_t ul_delivered_base = 0;
    /// Last instant uplink bytes arrived from the UE (any live UE produces
    /// some — at minimum its periodic reports cross the bearer). Drives the
    /// session_timeout inactivity GC.
    TimePoint last_activity;
    sim::EventHandle report_timer;
  };

  /// One unACKed traffic report awaiting broker confirmation.
  struct OutstandingReport {
    Bytes wire;  // full broker message: [Report, seq, sealed]
    std::uint64_t session_id = 0;  // routing key for sharded brokers
    int attempts_left = 0;
    Duration next_delay = Duration::zero();
    sim::EventHandle timer;
    std::size_t last_shard = 0;  // where the last copy went (router mode)
    bool sent_once = false;      // a timer-driven resend implies a timeout
  };

  /// One unACKed ResumeNotify awaiting broker confirmation (best-effort
  /// with bounded retries; the ack may carry a revocation verdict).
  struct OutstandingNotify {
    Bytes wire;
    std::uint64_t session_id = 0;
    int attempts_left = 0;
    Duration next_delay = Duration::zero();
    sim::EventHandle timer;
    std::size_t last_shard = 0;
    bool sent_once = false;
  };

  void install_session(const TelcoSession& ts, net::Node* ue_node, net::Link* radio_link,
                       Bytes auth_resp_u, AttachReply reply,
                       std::uint32_t first_period = 0);
  void send_resume_notify(std::uint64_t session_id, const Bytes& ticket_id);
  void transmit_resume_notify(std::uint64_t txn);
  void handle_resume_notify_ack(std::uint64_t txn, ByteReader& r);
  void send_report(std::uint64_t session_id, bool final_report);
  void transmit_report(std::uint64_t seq);
  void handle_report_ack(std::uint64_t seq);
  void handle_redirect(std::uint64_t seq, std::uint16_t bucket, std::uint16_t owner);
  void send_to_broker_with_retry(std::uint64_t txn, Bytes payload, int attempts_left,
                                 int prev_shard = -1);
  void release_session(std::uint64_t session_id);
  void ensure_gc();
  void gc_sweep();
  std::uint64_t downlink_sent_bytes(const Session& s) const;
  std::uint64_t uplink_delivered_bytes(const Session& s) const;

  net::Network& network_;
  net::Node& node_;
  SapTelco sap_;
  crypto::Certificate broker_cert_;
  net::EndPoint broker_;
  Config config_;
  sim::ServiceQueue queue_;
  Rng rng_;
  /// Dedicated stream for retry jitter (see UeAgent::jitter_rng_).
  Rng jitter_rng_;
  std::uint16_t port_ = 0;
  ShardRouter* router_ = nullptr;

  std::uint64_t next_txn_ = 1;
  std::unordered_map<std::uint64_t, std::function<void(ByteReader&)>> awaiting_broker_;
  std::unordered_map<std::uint64_t, Session> sessions_;  // by session id
  std::unordered_map<net::Ipv4Addr, std::uint64_t> by_ip_;
  std::uint64_t next_report_seq_ = 1;
  std::unordered_map<std::uint64_t, OutstandingReport> outstanding_reports_;
  sim::EventHandle gc_timer_;
  bool crashed_ = false;
  std::uint64_t attaches_ = 0;
  std::uint64_t sessions_gced_ = 0;
  std::uint64_t reports_abandoned_ = 0;

  // Resumption state (inert until enable_resume).
  Bytes ticket_key_;
  std::unordered_set<std::string> used_tickets_;  // hex(ticket_id): one use here
  std::unordered_set<std::string> revoked_;       // pseudonyms barred from resume
  std::vector<TicketAudit> ticket_audit_;
  std::unordered_map<std::uint64_t, OutstandingNotify> outstanding_notifies_;
  std::uint64_t next_notify_txn_ = 1;
  std::uint64_t resumes_ = 0;
  std::uint64_t resumes_rejected_ = 0;
};

}  // namespace cb::cellbricks
