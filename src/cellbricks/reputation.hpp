// Reputation system (§4.3, Fig.5) — the component the paper's prototype
// defers ("We defer its implementation ... to future work"); implemented
// here in full as a design extension.
//
// The broker maintains a per-bTelco aggregate score and a suspect list of
// its own users. Scores derive from report mismatches, weighted by degree:
// honest parties stay near 1.0; persistent over-reporters decay toward 0
// and eventually fail the attachment-authorization policy.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cellbricks/billing.hpp"

namespace cb::cellbricks {

struct ReputationConfig {
  /// Fixed tolerance ratio epsilon from Fig.5 (acceptable link-loss slack).
  double epsilon = 0.02;
  /// Authorization threshold: bTelcos below this are refused.
  double min_telco_score = 0.5;
  /// A user mismatching against at least this many distinct bTelcos is
  /// suspected of tampering with its device.
  int suspect_distinct_telcos = 2;
  /// Mild score recovery per clean (matching) report pair.
  double recovery_per_clean_pair = 0.01;
  /// Penalty folded into a bTelco's score when its report for a period never
  /// arrived (the broker's unpaired-report timeout). Much milder than a
  /// billing mismatch: losing reports is unreliability, not dishonesty.
  double missing_report_penalty = 0.05;
};

/// Result of comparing one aligned (UE, bTelco) report pair.
struct PairVerdict {
  bool mismatch = false;
  double degree = 0.0;      // how far beyond the threshold, normalized
  double threshold = 0.0;   // bytes of tolerated discrepancy
  std::int64_t delta = 0;   // T-reported minus U-reported DL bytes
};

class ReputationSystem {
 public:
  explicit ReputationSystem(ReputationConfig config = {}) : config_(config) {}

  /// Fig.5: compare aligned reports; threshold = (loss_U + eps) * dl_U.
  PairVerdict compare(const TrafficReport& from_ue, const TrafficReport& from_telco) const;

  /// Fold a verdict for (id_u, id_t) into the scores.
  void record(const std::string& id_u, const std::string& id_t, const PairVerdict& verdict);

  /// Fold a "missing counterpart" verdict: one side's report for an aligned
  /// period never reached the broker before the pairing timeout. `missing`
  /// names the side whose report is absent.
  void record_missing(const std::string& id_u, const std::string& id_t, Reporter missing);

  /// Per-bTelco aggregate score in (0, 1]; unknown bTelcos start at 1.0.
  double telco_score(const std::string& id_t) const;
  /// Attachment authorization policy for the broker.
  bool authorize(const std::string& id_u, const std::string& id_t) const;
  bool is_suspect(const std::string& id_u) const { return suspects_.contains(id_u); }

  std::uint64_t mismatches(const std::string& id_t) const;
  /// Reporting periods for which this party (bTelco or user) never delivered
  /// its half of the report pair.
  std::uint64_t missing_reports(const std::string& id) const;
  const ReputationConfig& config() const { return config_; }

 private:
  struct TelcoState {
    double weighted_mismatches = 0.0;
    std::uint64_t mismatch_count = 0;
    std::uint64_t clean_count = 0;
    std::uint64_t missing_count = 0;
  };
  struct UserState {
    std::unordered_set<std::string> mismatched_telcos;
    std::uint64_t missing_count = 0;
  };

  ReputationConfig config_;
  std::unordered_map<std::string, TelcoState> telcos_;
  std::unordered_map<std::string, UserState> users_;
  std::unordered_set<std::string> suspects_;
};

}  // namespace cb::cellbricks
