#include "cellbricks/billing.hpp"

#include <bit>

#include "obs/metrics.hpp"

namespace cb::cellbricks {

namespace {
std::uint64_t pack(double v) { return std::bit_cast<std::uint64_t>(v); }
double unpack(std::uint64_t v) { return std::bit_cast<double>(v); }
}  // namespace

Bytes TrafficReport::serialize() const {
  ByteWriter w;
  w.u64(session_id);
  w.u8(static_cast<std::uint8_t>(reporter));
  w.u32(period);
  w.u64(ul_bytes);
  w.u64(dl_bytes);
  w.u64(duration_ms);
  w.u64(pack(dl_loss_rate));
  w.u64(pack(ul_loss_rate));
  w.u64(pack(avg_dl_bps));
  w.u64(pack(avg_ul_bps));
  w.u64(pack(avg_delay_ms));
  return w.take();
}

Result<TrafficReport> TrafficReport::deserialize(BytesView data) {
  try {
    ByteReader r(data);
    TrafficReport t;
    t.session_id = r.u64();
    t.reporter = static_cast<Reporter>(r.u8());
    t.period = r.u32();
    t.ul_bytes = r.u64();
    t.dl_bytes = r.u64();
    t.duration_ms = r.u64();
    t.dl_loss_rate = unpack(r.u64());
    t.ul_loss_rate = unpack(r.u64());
    t.avg_dl_bps = unpack(r.u64());
    t.avg_ul_bps = unpack(r.u64());
    t.avg_delay_ms = unpack(r.u64());
    return t;
  } catch (const std::out_of_range&) {
    obs::inc(obs::counter("billing.report_parse_errors"));
    return Result<TrafficReport>::err("traffic report: truncated");
  }
}

}  // namespace cb::cellbricks
