#include "cellbricks/settlement_log.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace cb::cellbricks {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(BytesView data, std::uint64_t h = kFnvOffset) {
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

// --- Routing ----------------------------------------------------------------

std::uint16_t bucket_of_subscriber(const std::string& id_u) {
  std::uint64_t h = kFnvOffset;
  for (char c : id_u) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return static_cast<std::uint16_t>(h & (kRouteBuckets - 1));
}

std::uint64_t bucketed_session_id(std::uint64_t raw, std::uint16_t bucket) {
  return (static_cast<std::uint64_t>(bucket) << 48) | (raw & 0x0000FFFFFFFFFFFFULL);
}

std::uint16_t session_bucket(std::uint64_t session_id) {
  return static_cast<std::uint16_t>(session_id >> 48);
}

std::size_t hrw_owner(std::uint16_t bucket, const std::vector<std::size_t>& candidates) {
  if (candidates.empty()) throw std::logic_error("hrw_owner: no candidates");
  std::size_t best = candidates.front();
  std::uint64_t best_w = 0;
  bool first = true;
  for (std::size_t c : candidates) {
    // Mix (bucket, shard) through a splitmix-style finalizer; ties broken by
    // the lower shard index for determinism.
    std::uint64_t x = (static_cast<std::uint64_t>(bucket) << 32) ^ (c + 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    if (first || x > best_w || (x == best_w && c < best)) {
      best = c;
      best_w = x;
      first = false;
    }
  }
  return best;
}

// --- SettlementEntry wire format --------------------------------------------

Bytes SettlementEntry::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(session_id);
  w.u32(period);
  w.u8(static_cast<std::uint8_t>(reporter));
  w.str(id_u);
  w.str(id_t);
  w.u64(static_cast<std::uint64_t>(time_ns));
  w.bytes(report.serialize());
  w.u8(mismatch ? 1 : 0);
  w.u64(std::bit_cast<std::uint64_t>(degree));
  w.u64(std::bit_cast<std::uint64_t>(threshold));
  w.u64(static_cast<std::uint64_t>(delta));
  w.u64(ue_dl_bytes);
  w.u64(telco_dl_bytes);
  return w.take();
}

Result<SettlementEntry> SettlementEntry::deserialize(BytesView data) {
  try {
    ByteReader r(data);
    SettlementEntry e;
    e.kind = static_cast<Kind>(r.u8());
    if (e.kind < Kind::SessionIssued || e.kind > Kind::VerdictMissing) {
      return Result<SettlementEntry>::err("settlement entry: bad kind");
    }
    e.session_id = r.u64();
    e.period = r.u32();
    e.reporter = static_cast<Reporter>(r.u8());
    e.id_u = r.str();
    e.id_t = r.str();
    e.time_ns = static_cast<std::int64_t>(r.u64());
    Bytes report_bytes = r.bytes();
    if (!report_bytes.empty()) {
      auto rep = TrafficReport::deserialize(report_bytes);
      if (!rep.ok()) return Result<SettlementEntry>::err("settlement entry: " + rep.error());
      e.report = rep.value();
    }
    e.mismatch = r.u8() != 0;
    e.degree = std::bit_cast<double>(r.u64());
    e.threshold = std::bit_cast<double>(r.u64());
    e.delta = static_cast<std::int64_t>(r.u64());
    e.ue_dl_bytes = r.u64();
    e.telco_dl_bytes = r.u64();
    if (!r.done()) return Result<SettlementEntry>::err("settlement entry: trailing bytes");
    return e;
  } catch (const std::out_of_range&) {
    return Result<SettlementEntry>::err("settlement entry: truncated");
  }
}

// --- SettlementLog ----------------------------------------------------------

void SettlementLog::ensure_streams(std::size_t n) {
  if (streams_.size() < n) streams_.resize(n);
}

std::uint64_t SettlementLog::append(std::size_t stream, SettlementEntry entry,
                                    const ApplyFn& apply) {
  ensure_streams(stream + 1);
  std::uint64_t index = streams_[stream].entries.size();
  apply_one(stream, std::move(entry), apply);
  return index;
}

void SettlementLog::store(std::size_t stream, std::uint64_t index, SettlementEntry entry,
                          const ApplyFn& apply) {
  ensure_streams(stream + 1);
  Stream& s = streams_[stream];
  if (index < s.entries.size()) return;  // already applied (retransmit)
  if (index == s.entries.size()) {
    apply_one(stream, std::move(entry), apply);
    drain_gap(stream, apply);
  } else {
    s.gap.emplace(index, std::move(entry));  // no-op if already buffered
  }
}

void SettlementLog::apply_one(std::size_t stream, SettlementEntry entry, const ApplyFn& apply) {
  Stream& s = streams_[stream];
  std::uint64_t prev = s.cum_hash.empty() ? kFnvOffset : s.cum_hash.back();
  std::uint64_t h = fnv1a(entry.serialize(), prev);
  std::uint64_t index = s.entries.size();
  s.entries.push_back(std::move(entry));
  s.cum_hash.push_back(h);
  if (apply) apply(stream, index, s.entries.back());
}

void SettlementLog::drain_gap(std::size_t stream, const ApplyFn& apply) {
  Stream& s = streams_[stream];
  while (!s.gap.empty() && s.gap.begin()->first == s.entries.size()) {
    SettlementEntry e = std::move(s.gap.begin()->second);
    s.gap.erase(s.gap.begin());
    apply_one(stream, std::move(e), apply);
  }
}

std::uint64_t SettlementLog::applied_len(std::size_t stream) const {
  return stream < streams_.size() ? streams_[stream].entries.size() : 0;
}

std::uint64_t SettlementLog::chain_hash_at(std::size_t stream, std::uint64_t len) const {
  if (len == 0) return kFnvOffset;
  if (stream >= streams_.size() || len > streams_[stream].cum_hash.size()) {
    throw std::out_of_range("SettlementLog::chain_hash_at past applied prefix");
  }
  return streams_[stream].cum_hash[len - 1];
}

const SettlementEntry& SettlementLog::entry(std::size_t stream, std::uint64_t index) const {
  return streams_.at(stream).entries.at(index);
}

std::uint64_t SettlementLog::total_applied() const {
  std::uint64_t n = 0;
  for (const Stream& s : streams_) n += s.entries.size();
  return n;
}

std::size_t SettlementLog::gap_buffered() const {
  std::size_t n = 0;
  for (const Stream& s : streams_) n += s.gap.size();
  return n;
}

// --- SettlementState fold ---------------------------------------------------

std::uint64_t SettlementState::seen_key(std::uint64_t sid, std::uint32_t period, Reporter side) {
  (void)sid;
  return (static_cast<std::uint64_t>(period) << 1) | static_cast<std::uint64_t>(side);
}

void SettlementState::apply(const SettlementEntry& e) {
  switch (e.kind) {
    case SettlementEntry::Kind::SessionIssued: {
      auto [it, inserted] = sessions_.try_emplace(e.session_id);
      if (inserted) {
        it->second.id_u = e.id_u;
        it->second.id_t = e.id_t;
        ++sessions_issued_;
      }
      break;
    }
    case SettlementEntry::Kind::ReportIngested: {
      // Idempotent across streams: during a failover window the old owner's
      // log and the takeover shard's log can both carry the same report.
      auto key = std::make_pair(e.session_id, seen_key(e.session_id, e.period, e.reporter));
      if (!seen_reports_.insert(key).second) {
        ++reports_refolded_;
        break;
      }
      ++reports_folded_;
      auto [sit, inserted] = sessions_.try_emplace(e.session_id);
      if (inserted) {  // report folded before its SessionIssued (other stream)
        sit->second.id_u = e.id_u;
        sit->second.id_t = e.id_t;
        ++sessions_issued_;
      }
      if (e.reporter == Reporter::Ue) {
        sit->second.ue_dl_bytes += e.report.dl_bytes;
      } else {
        sit->second.telco_dl_bytes += e.report.dl_bytes;
      }
      if (!pair_decided(e.session_id, e.period)) {
        pending_[{e.session_id, e.period, static_cast<int>(e.reporter)}] =
            PendingReport{e.report, e.id_u, e.id_t, TimePoint::from_nanos(e.time_ns)};
      }
      break;
    }
    case SettlementEntry::Kind::VerdictPaired:
    case SettlementEntry::Kind::VerdictMissing: {
      VerdictSig sig{e.kind, e.mismatch, e.delta, e.reporter};
      auto [it, inserted] = decided_.try_emplace(PairKey{e.session_id, e.period}, sig);
      if (!inserted) {
        // First verdict wins; a replay must agree bit-for-bit or it is a
        // protocol violation surfaced through verdict_conflicts().
        if (it->second == sig) {
          ++verdicts_deduped_;
        } else {
          ++verdict_conflicts_;
        }
        break;
      }
      auto* session = [&]() -> SessionInfo* {
        auto sit = sessions_.find(e.session_id);
        return sit == sessions_.end() ? nullptr : &sit->second;
      }();
      if (e.kind == SettlementEntry::Kind::VerdictPaired) {
        ++verdicts_paired_;
        PairVerdict v{e.mismatch, e.degree, e.threshold, e.delta};
        reputation_.record(e.id_u, e.id_t, v);
        if (session) {
          ++session->pairs_compared;
          if (e.mismatch) ++session->mismatches;
        }
      } else {
        ++verdicts_missing_;
        reputation_.record_missing(e.id_u, e.id_t, e.reporter);
      }
      pending_.erase({e.session_id, e.period, static_cast<int>(Reporter::Ue)});
      pending_.erase({e.session_id, e.period, static_cast<int>(Reporter::Telco)});
      break;
    }
  }
}

}  // namespace cb::cellbricks
