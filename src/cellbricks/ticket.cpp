#include "cellbricks/ticket.hpp"

#include "crypto/box.hpp"
#include "crypto/hmac.hpp"
#include "obs/metrics.hpp"

namespace cb::cellbricks {

namespace {

Bytes pop_mac(BytesView ss_resume, BytesView ticket_wire, const std::string& id_t,
              std::uint32_t period_base, BytesView nonce) {
  ByteWriter w;
  w.bytes(ticket_wire);
  w.str(id_t);
  w.u32(period_base);
  w.bytes(nonce);
  return crypto::hmac_sha256(ss_resume, w.data());
}

Bytes signed_payload(BytesView blob, std::uint64_t expiry_ns) {
  ByteWriter w;
  w.bytes(blob);
  w.u64(expiry_ns);
  return w.take();
}

}  // namespace

Bytes derive_resume_secret(BytesView ss) {
  return crypto::hkdf({}, ss, to_bytes("ticket-resume"), 32);
}

Bytes mint_resume_ticket(const crypto::RsaKeyPair& broker_keys, BytesView ticket_key,
                         const TicketInner& inner, TimePoint expiry, Rng& rng) {
  ByteWriter in;
  in.str(inner.pseudonym);
  in.u64(inner.session_id);
  inner.qos.serialize(in);
  in.bytes(inner.ss_resume);
  in.bytes(inner.ticket_id);
  const Bytes blob = crypto::symmetric_seal(ticket_key, in.data(), rng);

  const std::uint64_t expiry_ns = static_cast<std::uint64_t>(expiry.nanos());
  ByteWriter out;
  out.bytes(blob);
  out.u64(expiry_ns);
  out.bytes(broker_keys.sign(signed_payload(blob, expiry_ns)));
  obs::inc(obs::counter("ticket.minted"));
  return out.take();
}

Bytes make_resume_request(BytesView ticket_wire, const std::string& id_t,
                          std::uint32_t period_base, BytesView ss_resume, Rng& rng,
                          Bytes* nonce_out) {
  const Bytes nonce = rng.random_bytes(kResumeNonceSize);
  if (nonce_out != nullptr) *nonce_out = nonce;
  ByteWriter w;
  w.bytes(ticket_wire);
  w.str(id_t);
  w.u32(period_base);
  w.bytes(nonce);
  w.bytes(pop_mac(ss_resume, ticket_wire, id_t, period_base, nonce));
  return w.take();
}

Result<TicketInner> open_ticket(BytesView ticket_wire, const crypto::RsaPublicKey& broker_key,
                                BytesView ticket_key, TimePoint now,
                                std::uint64_t* expiry_ns_out) {
  using R = Result<TicketInner>;
  try {
    ByteReader r(ticket_wire);
    const Bytes blob = r.bytes();
    const std::uint64_t expiry_ns = r.u64();
    const Bytes sig = r.bytes();
    if (expiry_ns_out != nullptr) *expiry_ns_out = expiry_ns;
    if (!broker_key.verify(signed_payload(blob, expiry_ns), sig)) {
      return R::err("ticket: broker signature invalid");
    }
    if (static_cast<std::uint64_t>(now.nanos()) >= expiry_ns) {
      return R::err("ticket: expired");
    }
    auto opened = crypto::symmetric_open(ticket_key, blob);
    if (!opened) return R::err("ticket: STEK seal invalid: " + opened.error());

    ByteReader ir(opened.value());
    TicketInner inner;
    inner.pseudonym = ir.str();
    inner.session_id = ir.u64();
    inner.qos = QosInfo::deserialize(ir);
    inner.ss_resume = ir.bytes();
    inner.ticket_id = ir.bytes();
    if (inner.ticket_id.size() != kTicketIdSize) return R::err("ticket: malformed ticket id");
    return inner;
  } catch (const std::out_of_range&) {
    return R::err("ticket: truncated");
  }
}

Result<ResumeGrant> verify_resume_request(BytesView request, const std::string& id_t,
                                          const crypto::RsaPublicKey& broker_key,
                                          BytesView ticket_key, TimePoint now) {
  using R = Result<ResumeGrant>;
  try {
    ByteReader r(request);
    const Bytes ticket_wire = r.bytes();
    const std::string req_id_t = r.str();
    const std::uint32_t period_base = r.u32();
    const Bytes nonce = r.bytes();
    const Bytes mac = r.bytes();
    if (req_id_t != id_t) return R::err("resume: addressed to another bTelco");
    if (nonce.size() != kResumeNonceSize) return R::err("resume: malformed nonce");

    std::uint64_t expiry_ns = 0;
    auto inner = open_ticket(ticket_wire, broker_key, ticket_key, now, &expiry_ns);
    if (!inner) return R::err("resume: " + inner.error());

    // Proof of possession: only the UE that ran the original SAP exchange
    // knows ss_resume, so a stolen ticket alone cannot be replayed.
    if (!constant_time_equal(
            mac, pop_mac(inner.value().ss_resume, ticket_wire, id_t, period_base, nonce))) {
      return R::err("resume: proof-of-possession MAC invalid");
    }
    ResumeGrant grant;
    grant.inner = std::move(inner).value();
    grant.expiry_ns = expiry_ns;
    grant.period_base = period_base;
    grant.nonce = nonce;
    obs::inc(obs::counter("ticket.verified"));
    return grant;
  } catch (const std::out_of_range&) {
    return R::err("resume: truncated");
  }
}

Bytes make_resume_confirm(const ResumeGrant& grant, Rng& rng) {
  ByteWriter w;
  w.bytes(grant.nonce);
  grant.inner.qos.serialize(w);
  w.u64(grant.inner.session_id);
  return crypto::symmetric_seal(grant.inner.ss_resume, w.data(), rng);
}

Result<ResumeConfirm> open_resume_confirm(BytesView confirm, BytesView ss_resume) {
  using R = Result<ResumeConfirm>;
  auto opened = crypto::symmetric_open(ss_resume, confirm);
  if (!opened) return R::err("resume confirm: " + opened.error());
  try {
    ByteReader r(opened.value());
    ResumeConfirm c;
    c.nonce = r.bytes();
    c.qos = QosInfo::deserialize(r);
    c.session_id = r.u64();
    return c;
  } catch (const std::out_of_range&) {
    return R::err("resume confirm: truncated");
  }
}

}  // namespace cb::cellbricks
