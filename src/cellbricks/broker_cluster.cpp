#include "cellbricks/broker_cluster.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace cb::cellbricks {
namespace {

std::uint64_t endpoint_key(const net::EndPoint& ep) {
  return static_cast<std::uint64_t>(ep.addr.value()) << 16 | ep.port;
}

}  // namespace

// --- ShardRouter ------------------------------------------------------------

ShardRouter::ShardRouter(std::vector<net::EndPoint> shards)
    : ShardRouter(std::move(shards), Config()) {}

ShardRouter::ShardRouter(std::vector<net::EndPoint> shards, Config config)
    : shards_(std::move(shards)), config_(config), health_(shards_.size()) {}

std::vector<std::size_t> ShardRouter::healthy(TimePoint now) const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!suspect(i, now)) out.push_back(i);
  }
  return out;
}

bool ShardRouter::suspect(std::size_t shard, TimePoint now) const {
  return health_.at(shard).suspect_until > now;
}

std::size_t ShardRouter::pick_for_session(std::uint64_t session_id, TimePoint now) {
  const std::uint16_t bucket = session_bucket(session_id);
  if (auto it = overrides_.find(bucket); it != overrides_.end()) {
    if (it->second < shards_.size() && !suspect(it->second, now)) return it->second;
  }
  const auto live = healthy(now);
  if (live.empty()) {
    // Everything suspect: fall back to the static map so retries still probe.
    std::vector<std::size_t> all(shards_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return hrw_owner(bucket, all);
  }
  return hrw_owner(bucket, live);
}

std::size_t ShardRouter::pick_for_auth(TimePoint now) {
  // Sticky: keep using the same shard while it behaves (keeps the broker's
  // per-requester idempotency caches hot); rotate away from suspects.
  for (std::size_t probe = 0; probe < shards_.size(); ++probe) {
    const std::size_t i = (auth_sticky_ + probe) % shards_.size();
    if (!suspect(i, now)) {
      auth_sticky_ = i;
      return i;
    }
  }
  return auth_sticky_;  // all suspect — probe the sticky one anyway
}

void ShardRouter::learn_redirect(std::uint16_t bucket, std::uint16_t owner) {
  if (owner >= shards_.size()) return;
  overrides_[bucket] = owner;
  ++redirects_learned_;
}

void ShardRouter::note_timeout(std::size_t shard, TimePoint now) {
  if (shard >= health_.size()) return;
  Health& h = health_[shard];
  if (++h.strikes >= config_.suspect_after) {
    h.suspect_until = now + config_.suspect_hold;
    h.strikes = 0;
  }
}

void ShardRouter::note_ok(std::size_t shard) {
  if (shard >= health_.size()) return;
  health_[shard] = Health{};
}

// --- BrokerShard ------------------------------------------------------------

BrokerShard::BrokerShard(BrokerCluster& cluster, std::size_t index, net::Node& node,
                         SapBroker sap, Config config)
    : cluster_(cluster),
      index_(index),
      node_(node),
      sap_(std::move(sap)),
      config_(config),
      queue_(node.simulator()),
      rng_(node.simulator().rng().fork(0xB20CE2 + 0x51AD * (index + 1))),
      state_(config.broker.reputation),
      cur_stream_(index) {
  node_.bind_udp(kBrokerPort, [this](const net::Packet& p) { handle_client(p); });
  node_.bind_udp(kBrokerClusterPort, [this](const net::Packet& p) { handle_cluster(p); });
}

void BrokerShard::add_subscriber(const std::string& id_u, crypto::RsaPublicKey key) {
  subscriber_keys_[id_u] = key;
  sap_.add_subscriber(id_u, std::move(key));
}

void BrokerShard::add_telco(const std::string& id_t, crypto::RsaPublicKey key) {
  telco_keys_[id_t] = std::move(key);
}

void BrokerShard::set_plan(const std::string& id_u, QosInfo qos) { plans_[id_u] = qos; }

std::vector<std::size_t> BrokerShard::live_view(bool ready_only) const {
  std::vector<std::size_t> out;
  const TimePoint now = node_.simulator().now();
  const Duration dead_after = config_.heartbeat_interval * config_.miss_threshold;
  for (std::size_t j = 0; j < peers_.size(); ++j) {
    if (j == index_) {
      if (!crashed_ && (!ready_only || !recovering_)) out.push_back(j);
      continue;
    }
    if (now - peers_[j].last_hb >= dead_after) continue;
    if (ready_only && !peers_[j].ready) continue;
    out.push_back(j);
  }
  return out;
}

bool BrokerShard::owns_bucket(std::uint16_t bucket) const {
  const auto owners = live_view(/*ready_only=*/true);
  if (owners.empty()) return false;
  return hrw_owner(bucket, owners) == index_;
}

// --- client path ---

void BrokerShard::handle_client(const net::Packet& packet) {
  // A recovering shard's process is up but not serving: dropping (instead of
  // erroring) lets client retry/suspect logic route around it.
  if (crashed_ || recovering_) return;
  CowBytes payload = packet.payload;
  const net::EndPoint from = packet.src;
  try {
    ByteReader peek(payload);
    const auto type = static_cast<BrokerMsg>(peek.u8());
    if (type != BrokerMsg::AuthReq && type != BrokerMsg::Report) return;
    const Duration service = type == BrokerMsg::AuthReq ? config_.broker.sap_service_time
                                                        : config_.broker.report_service_time;
    if (type == BrokerMsg::AuthReq) obs::inc(obs::counter("broker.sap.requests"));
    const TimePoint arrived = node_.simulator().now();
    queue_.submit(service, [this, payload = std::move(payload), from, arrived, type] {
      if (crashed_ || recovering_) return;
      try {
        ByteReader r(payload);
        r.u8();  // type, already peeked
        if (type == BrokerMsg::AuthReq) {
          handle_auth(from, r);
          obs::observe(obs::histogram("broker.sap_latency_ms"),
                       (node_.simulator().now() - arrived).to_millis());
        } else {
          handle_report(from, r);
        }
      } catch (const std::out_of_range&) {
        CB_LOG(Warn, "broker-shard") << "malformed message dropped";
      }
    });
  } catch (const std::out_of_range&) {
  }
}

void BrokerShard::handle_auth(const net::EndPoint& from, ByteReader& r) {
  const std::uint64_t txn = r.u64();
  const Bytes auth_req_t = r.bytes();
  const TimePoint now = node_.simulator().now();

  const auto cache_key = std::make_pair(endpoint_key(from), txn);
  if (auto cached = auth_reply_cache_.find(cache_key); cached != auth_reply_cache_.end()) {
    // Empty payload marks a reply still gated on settlement-log commit: stay
    // silent so the requester's retry schedule, not a premature answer,
    // drives the wait.
    if (cached->second.payload.empty()) return;
    obs::inc(obs::counter("broker.sap.cache_hits"));
    reply(from, cached->second.payload);
    return;
  }

  auto decision = sap_.process_auth_req(
      auth_req_t, now, rng_, config_.broker.default_qos,
      [this](const std::string& id_u, const std::string& id_t) {
        return state_.reputation().authorize(id_u, id_t);
      },
      // Route key: embed the subscriber's bucket in the session id so every
      // subsequent report carries its own shard-routing information.
      [](std::uint64_t raw, const std::string& id_u) {
        return bucketed_session_id(raw, bucket_of_subscriber(id_u));
      });

  if (!decision) {
    ++auth_denied_;
    obs::inc(obs::counter("broker.sap.denied"));
    obs::trace(now, obs::TraceType::SapAuthDenied, txn);
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(BrokerMsg::AuthErr));
    w.u64(txn);
    w.str(decision.error());
    Bytes payload = w.take();
    auth_reply_cache_[cache_key] = CachedReply{payload, now};
    reply(from, std::move(payload));
    return;
  }

  BrokerDecision& d = decision.value();
  if (auto plan = plans_.find(d.id_u); plan != plans_.end()) d.qos = plan->second;
  telco_keys_[d.id_t] = d.telco_key;
  ++sessions_issued_;
  obs::inc(obs::counter("broker.sap.ok"));
  obs::trace(now, obs::TraceType::SapAuthOk, d.session_id);

  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(BrokerMsg::AuthOk));
  w.u64(txn);
  w.bytes(d.auth_resp_t);
  w.bytes(d.auth_resp_u);
  Bytes payload = w.take();

  SettlementEntry e;
  e.kind = SettlementEntry::Kind::SessionIssued;
  e.session_id = d.session_id;
  e.id_u = d.id_u;
  e.id_t = d.id_t;
  e.time_ns = now.nanos();

  // The AuthOk is withheld until the session is replicated: a shard that
  // answers and then dies must not leave the client with a session no
  // surviving shard has heard of.
  auth_reply_cache_[cache_key] = CachedReply{{}, now};
  author(std::move(e), [this, cache_key, from, payload = std::move(payload)]() mutable {
    auth_reply_cache_[cache_key] = CachedReply{payload, node_.simulator().now()};
    reply(from, std::move(payload));
  });
}

void BrokerShard::handle_report(const net::EndPoint& from, ByteReader& r) {
  ++reports_received_;
  obs::inc(obs::counter("broker.reports.received"));
  const std::uint64_t seq = r.u64();
  const Bytes sealed = r.bytes();
  const TimePoint now = node_.simulator().now();

  const auto cache_key = std::make_pair(endpoint_key(from), seq);
  if (auto cached = report_ack_cache_.find(cache_key); cached != report_ack_cache_.end()) {
    obs::inc(obs::counter("broker.reports.ack_cache_hits"));
    reply(from, cached->second.payload);
    return;
  }

  auto opened = sap_.open_box(sealed);
  if (!opened) {
    ++reports_rejected_;
    obs::inc(obs::counter("broker.reports.rejected"));
    return;
  }
  try {
    ByteReader inner(opened.value());
    const std::string reporter_id = inner.str();
    const auto type = static_cast<Reporter>(inner.u8());
    const Bytes report_bytes = inner.bytes();
    const Bytes sig = inner.bytes();

    const crypto::RsaPublicKey* key = nullptr;
    if (type == Reporter::Ue) {
      if (auto it = subscriber_keys_.find(reporter_id); it != subscriber_keys_.end()) {
        key = &it->second;
      }
    } else {
      if (auto it = telco_keys_.find(reporter_id); it != telco_keys_.end()) key = &it->second;
    }
    if (key == nullptr || !key->verify(report_bytes, sig)) {
      ++reports_rejected_;
      obs::inc(obs::counter("broker.reports.rejected"));
      return;
    }
    auto parsed = TrafficReport::deserialize(report_bytes);
    if (!parsed) {
      ++reports_rejected_;
      obs::inc(obs::counter("broker.reports.rejected"));
      return;
    }
    const TrafficReport& report = parsed.value();
    const std::uint16_t bucket = session_bucket(report.session_id);

    if (!owns_bucket(bucket)) {
      // Stale route: point the client at the current owner. The redirect is
      // cheap and idempotent, so it is not commit-gated or cached.
      const auto owners = live_view(/*ready_only=*/true);
      const std::size_t owner = owners.empty() ? index_ : hrw_owner(bucket, owners);
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(BrokerMsg::Redirect));
      w.u64(seq);
      w.u16(bucket);
      w.u16(static_cast<std::uint16_t>(owner));
      ++redirects_sent_;
      obs::inc(obs::counter("broker.reports.redirected"));
      reply(from, w.take());
      return;
    }

    auto sit = state_.sessions().find(report.session_id);
    if (sit == state_.sessions().end()) {
      // Unknown here (replication lag for a session issued elsewhere, or
      // junk). No ACK: the client's retransmission gives the log time to
      // catch up — same contract as the single broker's unknown-session
      // rejection, but self-healing.
      ++reports_rejected_;
      obs::inc(obs::counter("broker.reports.rejected"));
      return;
    }
    if ((type == Reporter::Ue && reporter_id != sit->second.id_u) ||
        (type == Reporter::Telco && reporter_id != sit->second.id_t)) {
      ++reports_rejected_;
      obs::inc(obs::counter("broker.reports.rejected"));
      return;
    }

    ByteWriter ack;
    ack.u8(static_cast<std::uint8_t>(BrokerMsg::ReportAck));
    ack.u64(seq);
    Bytes ack_payload = ack.take();

    const auto dedup_key =
        std::make_tuple(report.session_id, report.period, static_cast<int>(type));
    if (state_.report_seen(report.session_id, report.period, type) ||
        state_.pair_decided(report.session_id, report.period)) {
      if (uncommitted_reports_.contains(dedup_key)) return;  // first copy not committed yet
      ++reports_deduped_;
      obs::inc(obs::counter("broker.reports.deduped"));
      report_ack_cache_[cache_key] = CachedReply{ack_payload, now};
      reply(from, std::move(ack_payload));
      return;
    }

    SettlementEntry e;
    e.kind = SettlementEntry::Kind::ReportIngested;
    e.session_id = report.session_id;
    e.period = report.period;
    e.reporter = type;
    e.id_u = sit->second.id_u;
    e.id_t = sit->second.id_t;
    e.time_ns = now.nanos();
    e.report = report;

    ++reports_ingested_;
    obs::inc(obs::counter("broker.reports.ingested"));
    obs::trace(now, obs::TraceType::ReportIngest, report.session_id, report.period);
    uncommitted_reports_.insert(dedup_key);
    author(std::move(e),
           [this, cache_key, from, ack_payload = std::move(ack_payload), dedup_key]() mutable {
             uncommitted_reports_.erase(dedup_key);
             report_ack_cache_[cache_key] =
                 CachedReply{ack_payload, node_.simulator().now()};
             reply(from, std::move(ack_payload));
           });
  } catch (const std::out_of_range&) {
    ++reports_rejected_;
    obs::inc(obs::counter("broker.reports.rejected"));
  }
}

void BrokerShard::reply(const net::EndPoint& to, Bytes payload, std::uint16_t src_port) {
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), src_port};
  p.dst = to;
  p.proto = net::Proto::Udp;
  p.payload = std::move(payload);
  node_.send(std::move(p));
}

// --- replication path ---

void BrokerShard::handle_cluster(const net::Packet& packet) {
  if (crashed_) return;
  try {
    ByteReader r(packet.payload);
    switch (static_cast<ClusterMsg>(r.u8())) {
      case ClusterMsg::Append: on_append(r); break;
      case ClusterMsg::AppendAck: on_append_ack(r); break;
      case ClusterMsg::Heartbeat: on_heartbeat(packet, r); break;
      case ClusterMsg::Fetch: on_fetch(packet.src, r); break;
      case ClusterMsg::Chunk: on_chunk(r); break;
      default: break;
    }
  } catch (const std::out_of_range&) {
    CB_LOG(Warn, "broker-shard") << "malformed cluster message dropped";
  }
}

void BrokerShard::author(SettlementEntry entry, std::function<void()> on_commit) {
  const Bytes wire = entry.serialize();
  const std::size_t stream = cur_stream_;
  const std::uint64_t index = log_.append(
      stream, std::move(entry),
      [this](std::size_t s, std::uint64_t i, const SettlementEntry& e) { apply_entry(s, i, e); });
  cluster_.observe_author(stream, index, log_.entry(stream, index));

  PendingAppend pa;
  pa.entry_wire = wire;
  pa.on_commit = std::move(on_commit);
  for (std::size_t j : live_view(/*ready_only=*/false)) {
    if (j != index_) pa.waiting.insert(j);
  }
  if (pa.waiting.empty()) {
    if (pa.on_commit) pa.on_commit();
    return;
  }
  for (std::size_t j : pa.waiting) send_append(j, stream, index);
  pending_appends_.emplace(index, std::move(pa));
  ensure_append_retry();
}

void BrokerShard::send_append(std::size_t peer, std::size_t stream, std::uint64_t index) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ClusterMsg::Append));
  w.u16(static_cast<std::uint16_t>(stream));
  w.u64(index);
  auto it = pending_appends_.find(index);
  if (it != pending_appends_.end() && stream == cur_stream_) {
    w.bytes(it->second.entry_wire);
  } else {
    w.bytes(log_.entry(stream, index).serialize());
  }
  send_to_peer(peer, w.take());
}

void BrokerShard::ensure_append_retry() {
  if (append_retry_timer_.pending() || pending_appends_.empty()) return;
  append_retry_timer_ =
      node_.simulator().schedule(config_.append_retry, [this] { retry_appends(); });
}

void BrokerShard::retry_appends() {
  if (crashed_) return;
  std::vector<std::uint64_t> indices;
  indices.reserve(pending_appends_.size());
  for (const auto& [index, pa] : pending_appends_) indices.push_back(index);
  for (std::uint64_t index : indices) {
    check_commit(index);  // prunes peers that died while we waited
    auto it = pending_appends_.find(index);
    if (it == pending_appends_.end()) continue;
    for (std::size_t j : it->second.waiting) send_append(j, cur_stream_, index);
  }
  ensure_append_retry();
}

void BrokerShard::check_commit(std::uint64_t index) {
  auto it = pending_appends_.find(index);
  if (it == pending_appends_.end()) return;
  const auto live = live_view(/*ready_only=*/false);
  std::erase_if(it->second.waiting, [&](std::size_t j) {
    return std::find(live.begin(), live.end(), j) == live.end();
  });
  if (!it->second.waiting.empty()) return;
  auto on_commit = std::move(it->second.on_commit);
  pending_appends_.erase(it);
  if (on_commit) on_commit();
}

void BrokerShard::on_append(ByteReader& r) {
  const std::size_t stream = r.u16();
  const std::uint64_t index = r.u64();
  const Bytes entry_wire = r.bytes();
  auto e = SettlementEntry::deserialize(entry_wire);
  if (!e.ok()) return;
  log_.store(stream, index, std::move(e.value()),
             [this](std::size_t s, std::uint64_t i, const SettlementEntry& ent) {
               apply_entry(s, i, ent);
             });
  // Ack only once the entry is inside the contiguous applied prefix: an ack
  // therefore promises the whole prefix, which is what makes "all live peers
  // acked" imply no committed entry can be stranded behind a lost gap.
  if (log_.applied_len(stream) > index) {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(ClusterMsg::AppendAck));
    w.u16(static_cast<std::uint16_t>(index_));
    w.u16(static_cast<std::uint16_t>(stream));
    w.u64(index);
    send_to_peer(stream % cluster_.n_shards(), w.take());
  }
  if (recovering_) maybe_finish_recovery();
}

void BrokerShard::on_append_ack(ByteReader& r) {
  const std::size_t acker = r.u16();
  const std::size_t stream = r.u16();
  const std::uint64_t index = r.u64();
  if (stream != cur_stream_) return;  // ack for a pre-crash incarnation
  auto it = pending_appends_.find(index);
  if (it == pending_appends_.end()) return;
  it->second.waiting.erase(acker);
  check_commit(index);
}

void BrokerShard::on_heartbeat(const net::Packet& p, ByteReader& r) {
  (void)p;
  const std::size_t sender = r.u16();
  const bool ready = r.u8() != 0;
  const std::size_t n_streams = r.u16();
  if (sender >= peers_.size() || sender == index_) return;
  const TimePoint now = node_.simulator().now();
  PeerView& pv = peers_[sender];
  pv.last_hb = now;
  pv.ready = ready;
  pv.advertised.assign(n_streams, 0);
  for (std::size_t s = 0; s < n_streams; ++s) pv.advertised[s] = r.u64();
  if (recovering_ && sender < hb_seen_since_restart_.size()) {
    hb_seen_since_restart_[sender] = true;
  }

  // Anti-entropy: if the sender has applied entries we lack, fetch them.
  // This single mechanism heals dead-author partial replication and powers
  // post-restart recovery.
  for (std::size_t s = 0; s < n_streams; ++s) {
    const std::uint64_t mine = log_.applied_len(s);
    if (pv.advertised[s] <= mine) continue;
    auto& last = fetch_last_[s];
    if (now - last < config_.fetch_cooldown && last != TimePoint::zero()) continue;
    last = now;
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(ClusterMsg::Fetch));
    w.u16(static_cast<std::uint16_t>(index_));
    w.u16(static_cast<std::uint16_t>(s));
    w.u64(mine);
    send_to_peer(sender, w.take());
  }

  refresh_ownership();
  if (recovering_) maybe_finish_recovery();
}

void BrokerShard::on_fetch(const net::EndPoint& from, ByteReader& r) {
  (void)from;
  const std::size_t requester = r.u16();
  const std::size_t stream = r.u16();
  const std::uint64_t from_idx = r.u64();
  if (requester >= cluster_.n_shards()) return;
  const std::uint64_t len = log_.applied_len(stream);
  if (from_idx >= len) return;
  const std::uint64_t count =
      std::min<std::uint64_t>(config_.chunk_max, len - from_idx);
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ClusterMsg::Chunk));
  w.u16(static_cast<std::uint16_t>(stream));
  w.u64(from_idx);
  w.u16(static_cast<std::uint16_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    w.bytes(log_.entry(stream, from_idx + i).serialize());
  }
  send_to_peer(requester, w.take());
}

void BrokerShard::on_chunk(ByteReader& r) {
  const std::size_t stream = r.u16();
  const std::uint64_t start = r.u64();
  const std::uint64_t count = r.u16();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Bytes entry_wire = r.bytes();
    auto e = SettlementEntry::deserialize(entry_wire);
    if (!e.ok()) return;
    log_.store(stream, start + i, std::move(e.value()),
               [this](std::size_t s, std::uint64_t idx, const SettlementEntry& ent) {
                 apply_entry(s, idx, ent);
               });
  }
  // Chain-fetch: if anyone still advertises more of this stream, keep
  // pulling without waiting for the next heartbeat (fast catch-up).
  std::uint64_t best_len = 0;
  std::size_t best_peer = index_;
  for (std::size_t j = 0; j < peers_.size(); ++j) {
    if (j == index_ || stream >= peers_[j].advertised.size()) continue;
    if (peers_[j].advertised[stream] > best_len) {
      best_len = peers_[j].advertised[stream];
      best_peer = j;
    }
  }
  if (best_peer != index_ && best_len > log_.applied_len(stream)) {
    fetch_last_[stream] = node_.simulator().now();
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(ClusterMsg::Fetch));
    w.u16(static_cast<std::uint16_t>(index_));
    w.u16(static_cast<std::uint16_t>(stream));
    w.u64(log_.applied_len(stream));
    send_to_peer(best_peer, w.take());
  }
  if (recovering_) maybe_finish_recovery();
}

void BrokerShard::send_to_peer(std::size_t peer, Bytes payload) {
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), kBrokerClusterPort};
  p.dst = cluster_.cluster_endpoints().at(peer);
  p.proto = net::Proto::Udp;
  p.payload = std::move(payload);
  node_.send(std::move(p));
}

// --- fold hooks / ownership ---

void BrokerShard::apply_entry(std::size_t stream, std::uint64_t index,
                              const SettlementEntry& e) {
  (void)stream;
  (void)index;
  state_.apply(e);
  // Owner-side pairing rides the fold so every path into the log — local
  // ingest, replicated append, takeover catch-up — drives pairing uniformly.
  if (e.kind == SettlementEntry::Kind::ReportIngested && !crashed_ && !recovering_ &&
      owns_bucket(session_bucket(e.session_id))) {
    try_pair(e.session_id, e.period);
  }
}

void BrokerShard::try_pair(std::uint64_t session_id, std::uint32_t period) {
  if (crashed_ || recovering_) return;
  if (state_.pair_decided(session_id, period)) return;
  const auto ue_it = state_.pending().find(
      {session_id, period, static_cast<int>(Reporter::Ue)});
  const auto t_it = state_.pending().find(
      {session_id, period, static_cast<int>(Reporter::Telco)});
  if (ue_it == state_.pending().end() || t_it == state_.pending().end()) return;

  // Verdict content is a pure function of the two reports, so concurrent
  // owners in a failover window author byte-identical verdicts (modulo the
  // timestamp, which the dedup signature ignores).
  const PairVerdict v =
      state_.reputation().compare(ue_it->second.report, t_it->second.report);
  const TimePoint now = node_.simulator().now();
  SettlementEntry e;
  e.kind = SettlementEntry::Kind::VerdictPaired;
  e.session_id = session_id;
  e.period = period;
  e.id_u = ue_it->second.id_u;
  e.id_t = ue_it->second.id_t;
  e.time_ns = now.nanos();
  e.mismatch = v.mismatch;
  e.degree = v.degree;
  e.threshold = v.threshold;
  e.delta = v.delta;
  e.ue_dl_bytes = ue_it->second.report.dl_bytes;
  e.telco_dl_bytes = t_it->second.report.dl_bytes;
  obs::inc(obs::counter("broker.pairs.compared"));
  if (v.mismatch) obs::inc(obs::counter("broker.pairs.mismatch"));
  obs::trace(now, obs::TraceType::ReportPaired, session_id, period);
  author(std::move(e), {});
}

void BrokerShard::redrive_owned_pending() {
  // Takeover: any pair fully present in the replica but undecided (the old
  // owner died between folding the second report and authoring the verdict)
  // is re-driven from the log.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> candidates;
  for (const auto& [key, pr] : state_.pending()) {
    const auto& [sid, period, side] = key;
    (void)side;
    (void)pr;
    if (!owns_bucket(session_bucket(sid))) continue;
    if (candidates.empty() || candidates.back() != std::make_pair(sid, period)) {
      candidates.emplace_back(sid, period);
    }
  }
  for (const auto& [sid, period] : candidates) try_pair(sid, period);
}

void BrokerShard::refresh_ownership() {
  const auto owners = live_view(/*ready_only=*/true);
  std::uint64_t sig = 0xcbf29ce484222325ULL;
  for (std::size_t j : owners) {
    sig ^= j + 1;
    sig *= 0x100000001b3ULL;
  }
  if (sig == ownership_sig_) return;
  ownership_sig_ = sig;
  if (crashed_ || recovering_) return;
  ++takeovers_;
  obs::inc(obs::counter("broker.cluster.ownership_changes"));
  CB_LOG(Info, "broker-shard") << "shard " << index_ << ": ownership epoch changed ("
                               << owners.size() << " owners)";
  redrive_owned_pending();
}

void BrokerShard::heartbeat_tick() {
  if (crashed_) return;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(ClusterMsg::Heartbeat));
  w.u16(static_cast<std::uint16_t>(index_));
  w.u8(recovering_ ? 0 : 1);
  const std::size_t n_streams = log_.n_streams();
  w.u16(static_cast<std::uint16_t>(n_streams));
  for (std::size_t s = 0; s < n_streams; ++s) w.u64(log_.applied_len(s));
  Bytes hb = w.take();
  for (std::size_t j = 0; j < peers_.size(); ++j) {
    if (j != index_) send_to_peer(j, hb);
  }
  // Death of a peer is only observed lazily; re-examine waiting commits and
  // ownership on our own cadence too.
  std::vector<std::uint64_t> indices;
  indices.reserve(pending_appends_.size());
  for (const auto& [index, pa] : pending_appends_) indices.push_back(index);
  for (std::uint64_t index : indices) check_commit(index);
  refresh_ownership();
  if (recovering_) maybe_finish_recovery();
  heartbeat_timer_ =
      node_.simulator().schedule(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void BrokerShard::maybe_finish_recovery() {
  if (!recovering_) return;
  const auto live = live_view(/*ready_only=*/false);
  for (std::size_t j : live) {
    if (j == index_) continue;
    if (!hb_seen_since_restart_[j]) return;
    const auto& adv = peers_[j].advertised;
    for (std::size_t s = 0; s < adv.size(); ++s) {
      if (log_.applied_len(s) < adv[s]) return;
    }
  }
  recovering_ = false;
  obs::inc(obs::counter("broker.cluster.recoveries"));
  CB_LOG(Info, "broker-shard") << "shard " << index_ << ": recovery complete ("
                               << log_.total_applied() << " entries)";
  refresh_ownership();
}

void BrokerShard::sweep() {
  if (crashed_) return;
  const TimePoint now = node_.simulator().now();
  if (!recovering_) {
    // Expire owned unpaired reports from their *logged* ingest time, so a
    // takeover shard inherits the original deadline rather than restarting
    // the clock.
    std::vector<std::tuple<std::uint64_t, std::uint32_t, Reporter>> expired;
    for (const auto& [key, pr] : state_.pending()) {
      const auto& [sid, period, side] = key;
      if (!owns_bucket(session_bucket(sid))) continue;
      if (now - pr.received_at < config_.broker.pair_timeout) continue;
      expired.emplace_back(sid, period,
                           static_cast<Reporter>(side) == Reporter::Ue ? Reporter::Telco
                                                                       : Reporter::Ue);
    }
    for (const auto& [sid, period, missing] : expired) {
      try_pair(sid, period);  // counterpart may have just landed
      if (state_.pair_decided(sid, period)) continue;
      const auto present = state_.pending().find(
          {sid, period,
           static_cast<int>(missing == Reporter::Ue ? Reporter::Telco : Reporter::Ue)});
      if (present == state_.pending().end()) continue;
      SettlementEntry e;
      e.kind = SettlementEntry::Kind::VerdictMissing;
      e.session_id = sid;
      e.period = period;
      e.reporter = missing;
      e.id_u = present->second.id_u;
      e.id_t = present->second.id_t;
      e.time_ns = now.nanos();
      obs::inc(obs::counter("broker.reports.unpaired_expired"));
      obs::trace(now, obs::TraceType::ReportUnpairedExpired, sid, period);
      author(std::move(e), {});
    }
  }
  for (auto it = auth_reply_cache_.begin(); it != auth_reply_cache_.end();) {
    // Empty payload = still awaiting commit; never evict those here.
    if (!it->second.payload.empty() && now - it->second.at >= config_.broker.reply_cache_ttl) {
      it = auth_reply_cache_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = report_ack_cache_.begin(); it != report_ack_cache_.end();) {
    if (now - it->second.at >= config_.broker.reply_cache_ttl) {
      it = report_ack_cache_.erase(it);
    } else {
      ++it;
    }
  }
  sweep_timer_ =
      node_.simulator().schedule(config_.broker.gc_interval, [this] { sweep(); });
}

// --- fault injection ---

void BrokerShard::crash() {
  if (crashed_) return;
  crashed_ = true;
  node_.set_up(false);
  heartbeat_timer_.cancel();
  sweep_timer_.cancel();
  append_retry_timer_.cancel();
  // Process memory is gone: the log replica, the fold, every in-flight
  // commit and cache. The node's config and the subscriber DB (durable by
  // assumption) survive; pre-crash counters stay for observability.
  log_ = SettlementLog();
  state_ = SettlementState(config_.broker.reputation);
  pending_appends_.clear();
  uncommitted_reports_.clear();
  auth_reply_cache_.clear();
  report_ack_cache_.clear();
  fetch_last_.clear();
  for (auto& p : peers_) p = PeerView{};
  obs::inc(obs::counter("broker.cluster.crashes"));
  CB_LOG(Info, "broker-shard") << "shard " << index_ << ": crashed";
}

void BrokerShard::restart() {
  if (!crashed_) return;
  crashed_ = false;
  recovering_ = true;
  node_.set_up(true);
  const TimePoint now = node_.simulator().now();
  // Fresh incarnation: author to a stream nobody has indices for, so a
  // partially replicated pre-crash suffix can never collide or fork.
  ++incarnation_;
  cur_stream_ = index_ + incarnation_ * cluster_.n_shards();
  log_.ensure_streams(cur_stream_ + 1);
  // Restart grace: assume every peer live until its silence crosses the
  // threshold, and require a fresh heartbeat from each live one before
  // declaring recovery done.
  for (auto& p : peers_) {
    p = PeerView{};
    p.last_hb = now;
  }
  hb_seen_since_restart_.assign(peers_.size(), false);
  heartbeat_timer_ =
      node_.simulator().schedule(config_.heartbeat_interval, [this] { heartbeat_tick(); });
  sweep_timer_ =
      node_.simulator().schedule(config_.broker.gc_interval, [this] { sweep(); });
  obs::inc(obs::counter("broker.cluster.restarts"));
  CB_LOG(Info, "broker-shard") << "shard " << index_ << ": restarted (recovering)";
  maybe_finish_recovery();  // no live peers -> immediately ready
}

// --- BrokerCluster ----------------------------------------------------------

BrokerShard& BrokerCluster::add_shard(net::Node& node, SapBroker sap) {
  if (started_) throw std::logic_error("BrokerCluster: add_shard after start");
  const std::size_t index = shards_.size();
  shards_.push_back(std::make_unique<BrokerShard>(*this, index, node, std::move(sap), config_));
  client_eps_.push_back(net::EndPoint{node.primary_address(), kBrokerPort});
  cluster_eps_.push_back(net::EndPoint{node.primary_address(), kBrokerClusterPort});
  return *shards_.back();
}

void BrokerCluster::start() {
  if (started_ || shards_.empty()) return;
  started_ = true;
  const std::size_t n = shards_.size();
  observer_log_.ensure_streams(n);
  for (std::size_t i = 0; i < n; ++i) {
    BrokerShard* s = shards_[i].get();
    s->peers_.assign(n, BrokerShard::PeerView{});
    s->hb_seen_since_restart_.assign(n, false);
    s->log_.ensure_streams(n);
    auto& sim = s->node_.simulator();
    // Staggered first beats: shards should not synchronize their control
    // traffic, and the stagger keeps the event order deterministic.
    const Duration stagger = config_.heartbeat_interval * (i + 1) / (n + 1);
    s->heartbeat_timer_ = sim.schedule(stagger, [s] { s->heartbeat_tick(); });
    s->sweep_timer_ = sim.schedule(config_.broker.gc_interval, [s] { s->sweep(); });
  }
}

void BrokerCluster::add_subscriber(const std::string& id_u, crypto::RsaPublicKey key) {
  for (auto& s : shards_) s->add_subscriber(id_u, key);
}

void BrokerCluster::add_telco(const std::string& id_t, crypto::RsaPublicKey key) {
  for (auto& s : shards_) s->add_telco(id_t, key);
}

void BrokerCluster::set_plan(const std::string& id_u, QosInfo qos) {
  for (auto& s : shards_) s->set_plan(id_u, qos);
}

void BrokerCluster::observe_author(std::size_t stream, std::uint64_t index,
                                   const SettlementEntry& e) {
  observer_log_.store(stream, index, e,
                      [this](std::size_t, std::uint64_t, const SettlementEntry& ent) {
                        observer_state_.apply(ent);
                      });
}

std::uint64_t BrokerCluster::sessions_issued() const {
  return observer_state_.sessions_issued();
}

std::uint64_t BrokerCluster::reports_ingested() const {
  return observer_state_.reports_folded();
}

std::uint64_t BrokerCluster::reports_deduped() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->reports_deduped();
  return n;
}

std::uint64_t BrokerCluster::redirects_sent() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->redirects_sent();
  return n;
}

std::size_t BrokerCluster::nonces_seen() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->nonces_seen();
  return n;
}

}  // namespace cb::cellbricks
