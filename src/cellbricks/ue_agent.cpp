#include "cellbricks/ue_agent.hpp"

#include <algorithm>

#include "cellbricks/broker_cluster.hpp"
#include "cellbricks/ticket.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace cb::cellbricks {
namespace {

/// Decorrelated-jitter backoff: next delay drawn uniformly from
/// [base, 3 * previous], capped. Spreads synchronized retriers (e.g. every
/// client of a just-killed shard) across the window instead of letting the
/// deterministic doubling re-align their retry storms.
Duration decorrelated_backoff(Rng& rng, Duration base, Duration prev, Duration cap) {
  const double base_s = base.to_seconds();
  const double hi_s = std::max(base_s, prev.to_seconds() * 3.0);
  return std::min(Duration::seconds(rng.uniform(base_s, hi_s)), cap);
}

}  // namespace
}  // namespace cb::cellbricks

namespace cb::cellbricks {

UeAgent::UeAgent(net::Network& network, net::Node& ue_node, SapUe sap,
                 const ran::RanMap& ran_map, std::function<Btelco*(ran::CellId)> telco_of_cell,
                 net::EndPoint broker_report_ep)
    : UeAgent(network, ue_node, std::move(sap), ran_map, std::move(telco_of_cell),
              broker_report_ep, Config()) {}

UeAgent::UeAgent(net::Network& network, net::Node& ue_node, SapUe sap,
                 const ran::RanMap& ran_map, std::function<Btelco*(ran::CellId)> telco_of_cell,
                 net::EndPoint broker_report_ep, Config config)
    : network_(network),
      ue_node_(ue_node),
      sap_(std::move(sap)),
      ran_map_(ran_map),
      telco_of_cell_(std::move(telco_of_cell)),
      broker_report_ep_(broker_report_ep),
      config_(config),
      ue_queue_(ue_node.simulator()),
      enb_queue_(ue_node.simulator()),
      rng_(ue_node.simulator().rng().fork(0x0EA6)),
      jitter_rng_(ue_node.simulator().rng().fork(0x0EA7)) {
  // Broker ACKs for the reliable report channel arrive on the report port.
  ue_node_.bind_udp(kUeReportPort, [this](const net::Packet& p) {
    try {
      ByteReader r(p.payload);
      const auto msg = static_cast<BrokerMsg>(r.u8());
      if (msg == BrokerMsg::ReportAck) {
        handle_report_ack(r.u64());
      } else if (msg == BrokerMsg::Redirect) {
        const std::uint64_t seq = r.u64();
        const std::uint16_t bucket = r.u16();
        const std::uint16_t owner = r.u16();
        handle_redirect(seq, bucket, owner);
      }
    } catch (const std::out_of_range&) {
      CB_LOG(Warn, "ue-agent") << "malformed broker ack dropped";
    }
  });
}

void UeAgent::attach(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done) {
  // Resume-first: with a broker-minted ticket in hand, skip the broker round
  // trip and authenticate locally at the bTelco (tentpole of the SapResume
  // mode). Any rejection falls back to the full protocol below.
  if (config_.use_resume_tickets && !ticket_.empty()) {
    attach_resume(cell, std::move(done));
  } else {
    attach_full(cell, std::move(done));
  }
}

void UeAgent::attach_full(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done) {
  using R = Result<net::Ipv4Addr>;
  Btelco* telco = telco_of_cell_(cell);
  if (telco == nullptr) {
    if (done) done(R::err("no CellBricks provider on this cell"));
    return;
  }
  const ran::TowerSite site = ran_map_.site(cell);
  drop_superseded_bearer(cell);
  site.radio_link->set_up(true);  // radio-layer connectivity (reused as-is)
  attach_started_ = ue_node_.simulator().now();
  obs::inc(obs::counter("ue_agent.attach.attempts"));
  obs::trace(attach_started_, obs::TraceType::AttachStart, cell);
  const std::uint64_t gen = ++attach_generation_;
  auto done_shared =
      std::make_shared<std::function<void(R)>>(done ? std::move(done) : [](R) {});

  // A failed attach must not leave the radio bearer admin-up: undo the
  // optimistic set_up unless this link meanwhile serves a live session.
  auto fail = [this, cell, site, done_shared](std::string error) {
    ++attach_failures_;
    obs::inc(obs::counter("ue_agent.attach.failure"));
    obs::trace(ue_node_.simulator().now(), obs::TraceType::AttachFail, cell);
    if (!attached() || serving_cell_ != cell) site.radio_link->set_up(false);
    if (attach_pending_ == cell) attach_pending_ = 0;
    (*done_shared)(R::err(std::move(error)));
  };

  // Deadline: a crashed AGW (or a dead control path) never answers, so the
  // UE gives up on its own clock. Bumping the generation invalidates any
  // continuation that might still limp in afterwards.
  attach_deadline_.cancel();
  attach_deadline_ =
      ue_node_.simulator().schedule(config_.attach_timeout, [this, gen, cell, fail] {
        if (gen != attach_generation_) return;
        ++attach_generation_;
        CB_LOG(Info, "ue-agent") << id() << ": attach timed out";
        obs::inc(obs::counter("ue_agent.attach.timeout"));
        obs::trace(ue_node_.simulator().now(), obs::TraceType::AttachTimeout, cell);
        fail("attach timeout");
      });

  // [UE msg 1/2] craft authReqU (encrypt authVec to pkB, sign).
  ue_queue_.submit(config_.ue_msg, [this, gen, cell, site, telco, done_shared, fail] {
    if (gen != attach_generation_) return;  // superseded by newer mobility event
    Bytes req = sap_.make_auth_req(telco->id(), rng_);
    // [eNB leg 1/2] relay to the bTelco AGW.
    enb_queue_.submit(config_.enb_msg, [this, gen, cell, site, telco, done_shared, fail,
                                        req = std::move(req)]() mutable {
      if (gen != attach_generation_) return;
      telco->handle_attach(
          std::move(req), &ue_node_, site.radio_link,
          [this, gen, cell, site, telco, done_shared, fail](
              Result<std::pair<Bytes, net::Ipv4Addr>> result) {
            // [eNB leg 2/2] + [UE msg 2/2] verify authRespU, configure IP.
            enb_queue_.submit(config_.enb_msg, [this, gen, cell, site, telco, done_shared,
                                                fail, result = std::move(result)]() mutable {
              ue_queue_.submit(config_.ue_msg, [this, gen, cell, site, telco, done_shared,
                                                fail, result = std::move(result)]() mutable {
                if (gen != attach_generation_) return;
                attach_deadline_.cancel();
                if (!result.ok()) {
                  fail(result.error());
                  return;
                }
                auto& [resp_u, ip] = result.value();
                auto session = sap_.process_auth_resp(resp_u);
                if (!session.ok()) {
                  CB_LOG(Warn, "ue-agent") << id() << ": " << session.error();
                  fail(session.error());
                  return;
                }
                // Harvest the resumption ticket (if the broker minted one)
                // for the next re-attach; its possession proof is derived
                // from this session's ss so a stolen ticket alone is useless.
                if (config_.use_resume_tickets && !session.value().ticket.empty()) {
                  ticket_ = session.value().ticket;
                  ss_resume_ = derive_resume_secret(session.value().security.kasme);
                }
                complete_attach(cell, site, telco, ip, session.value().session_id,
                                /*resumed=*/false, done_shared);
              });
            });
          });
    });
  });
}

void UeAgent::attach_resume(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done) {
  using R = Result<net::Ipv4Addr>;
  Btelco* telco = telco_of_cell_(cell);
  if (telco == nullptr) {
    if (done) done(R::err("no CellBricks provider on this cell"));
    return;
  }
  const ran::TowerSite site = ran_map_.site(cell);
  drop_superseded_bearer(cell);
  site.radio_link->set_up(true);
  attach_started_ = ue_node_.simulator().now();
  obs::inc(obs::counter("ue_agent.resume.attempts"));
  obs::trace(attach_started_, obs::TraceType::AttachStart, cell);
  const std::uint64_t gen = ++attach_generation_;
  auto done_shared =
      std::make_shared<std::function<void(R)>>(done ? std::move(done) : [](R) {});

  auto fail = [this, cell, site, done_shared](std::string error) {
    ++attach_failures_;
    obs::inc(obs::counter("ue_agent.attach.failure"));
    obs::trace(ue_node_.simulator().now(), obs::TraceType::AttachFail, cell);
    if (!attached() || serving_cell_ != cell) site.radio_link->set_up(false);
    if (attach_pending_ == cell) attach_pending_ = 0;
    (*done_shared)(R::err(std::move(error)));
  };

  // A rejected ticket (already used at this bTelco, revoked, expired,
  // resumption not enabled there) is not an outage — discard the ticket and
  // run the full protocol; it re-authenticates and mints a fresh one.
  auto fallback = [this, cell, done_shared] {
    ++resume_fallbacks_;
    obs::inc(obs::counter("ue_agent.resume.fallback"));
    ticket_.clear();
    ss_resume_.clear();
    attach_full(cell, [done_shared](R r) { (*done_shared)(std::move(r)); });
  };

  // Same deadline discipline as the full attach: a crashed AGW never
  // answers, and a fallback at that point would stall on it too.
  attach_deadline_.cancel();
  attach_deadline_ =
      ue_node_.simulator().schedule(config_.attach_timeout, [this, gen, cell, fail] {
        if (gen != attach_generation_) return;
        ++attach_generation_;
        CB_LOG(Info, "ue-agent") << id() << ": resume timed out";
        obs::inc(obs::counter("ue_agent.attach.timeout"));
        obs::trace(ue_node_.simulator().now(), obs::TraceType::AttachTimeout, cell);
        fail("attach timeout");
      });

  // [UE msg 1/2] assemble the resume request: ticket + possession MAC. The
  // period base carries the meter's period counter so the resumed bTelco's
  // reports continue the numbering instead of colliding at the broker.
  ue_queue_.submit(config_.ue_msg, [this, gen, cell, site, telco, done_shared, fail, fallback] {
    if (gen != attach_generation_) return;
    Bytes nonce;
    Bytes req = make_resume_request(ticket_, telco->id(), next_period_, ss_resume_, rng_, &nonce);
    // [eNB leg 1/2] relay to the bTelco AGW.
    enb_queue_.submit(config_.enb_msg, [this, gen, cell, site, telco, done_shared, fail,
                                        fallback, req = std::move(req),
                                        nonce = std::move(nonce)]() mutable {
      if (gen != attach_generation_) return;
      telco->handle_resume(
          std::move(req), &ue_node_, site.radio_link,
          [this, gen, cell, site, telco, done_shared, fail, fallback, nonce](
              Result<std::pair<Bytes, net::Ipv4Addr>> result) {
            // [eNB leg 2/2] + [UE msg 2/2] open the confirm, adopt the IP.
            enb_queue_.submit(config_.enb_msg, [this, gen, cell, site, telco, done_shared,
                                                fail, fallback, nonce,
                                                result = std::move(result)]() mutable {
              ue_queue_.submit(config_.ue_msg, [this, gen, cell, site, telco, done_shared,
                                                fail, fallback, nonce,
                                                result = std::move(result)]() mutable {
                if (gen != attach_generation_) return;
                attach_deadline_.cancel();
                if (!result.ok()) {
                  CB_LOG(Info, "ue-agent")
                      << id() << ": resume rejected (" << result.error()
                      << "), falling back to full SAP";
                  fallback();
                  return;
                }
                auto& [confirm_wire, ip] = result.value();
                auto confirm = open_resume_confirm(confirm_wire, ss_resume_);
                if (!confirm.ok() || confirm.value().nonce != nonce) {
                  // Forged/corrupted confirm: the full protocol
                  // re-authenticates end to end, so fall back rather than
                  // trusting anything from this exchange.
                  CB_LOG(Warn, "ue-agent") << id() << ": resume confirm rejected";
                  fallback();
                  return;
                }
                ++resumes_succeeded_;
                complete_attach(cell, site, telco, ip, confirm.value().session_id,
                                /*resumed=*/true, done_shared);
              });
            });
          });
    });
  });
}

void UeAgent::complete_attach(
    ran::CellId cell, const ran::TowerSite& site, Btelco* telco, net::Ipv4Addr ip,
    std::uint64_t session_id, bool resumed,
    const std::shared_ptr<std::function<void(Result<net::Ipv4Addr>)>>& done_shared) {
  current_ip_ = ip;
  serving_cell_ = cell;
  serving_telco_ = telco;
  session_id_ = session_id;
  attach_pending_ = 0;
  ue_node_.add_address(ip);
  ue_node_.set_default_route(site.radio_link);

  // Baseband meter baselines (PDCP/RLC counters).
  const auto& dl = site.radio_link->counters(site.node);
  const auto& ul = site.radio_link->counters(&ue_node_);
  dl_base_ = dl.delivered_bytes;
  dl_sent_base_ = dl.sent_bytes;
  ul_base_ = ul.sent_bytes;
  session_started_ = ue_node_.simulator().now();
  // A resumed session keeps its period numbering (the bTelco was told the
  // base in the resume request); a fresh session starts at zero.
  if (!resumed) next_period_ = 0;
  report_timer_ = ue_node_.simulator().schedule(config_.report_interval,
                                                [this] { send_report(false); });

  last_attach_latency_ = ue_node_.simulator().now() - attach_started_;
  attach_latencies_.add(last_attach_latency_.to_millis());
  obs::inc(obs::counter("ue_agent.attach.success"));
  obs::observe(obs::histogram("ue_agent.attach_latency_ms"),
               last_attach_latency_.to_millis());
  obs::trace(ue_node_.simulator().now(), obs::TraceType::AttachOk, cell,
             static_cast<std::uint64_t>(last_attach_latency_.nanos() / 1000));
  if (resumed) {
    resume_latencies_.add(last_attach_latency_.to_millis());
    obs::inc(obs::counter("ue_agent.resume.success"));
    obs::observe(obs::histogram("ue_agent.resume_latency_ms"),
                 last_attach_latency_.to_millis());
  }

  // Flush reports stranded while detached (oldest first).
  std::vector<std::uint64_t> stranded;
  stranded.reserve(outstanding_reports_.size());
  for (auto& [seq, out] : outstanding_reports_) {
    if (!out.timer.pending()) stranded.push_back(seq);
  }
  for (std::uint64_t seq : stranded) {
    OutstandingReport& out = outstanding_reports_[seq];
    out.next_delay = config_.report_retry;
    // The silence was our own detach, not the broker's fault: don't let the
    // flush strike the last target.
    out.sent_once = false;
    transmit_report(seq);
  }

  start_watchdog();
  if (mptcp_) mptcp_->notify_address_available(current_ip_);
  if (on_attached) on_attached(cell, last_attach_latency_);
  (*done_shared)(current_ip_);
}

// An attach superseded mid-flight (generation bump from a newer mobility
// event) never runs its fail path — the continuations all bail on the
// generation check — so its target bearer would stay admin-up forever.
// Lower the stale one before raising the next target's: break-before-make
// holds across retargets, which the session.single_bearer invariant checks.
void UeAgent::drop_superseded_bearer(ran::CellId next) {
  if (attach_pending_ != 0 && attach_pending_ != next && attach_pending_ != serving_cell_) {
    ran_map_.site(attach_pending_).radio_link->set_up(false);
  }
  attach_pending_ = next;
}

void UeAgent::attach_with_recovery(ran::CellId preferred) {
  recovery_enabled_ = true;
  cancel_recovery();
  in_recovery_ = true;
  recovery_backoff_ = config_.retry_backoff;
  outage_started_ = ue_node_.simulator().now();
  try_attach(preferred);
}

void UeAgent::cancel_recovery() {
  recovery_timer_.cancel();
  in_recovery_ = false;
}

bool UeAgent::cell_blacklisted(ran::CellId cell) const {
  auto it = blacklist_.find(cell);
  return it != blacklist_.end() && it->second > ue_node_.simulator().now();
}

ran::CellId UeAgent::pick_candidate(ran::CellId preferred) {
  if (preferred != 0 && !cell_blacklisted(preferred) && telco_of_cell_(preferred) != nullptr) {
    return preferred;
  }
  if (candidate_source_) {
    for (ran::CellId cell : candidate_source_()) {
      if (!cell_blacklisted(cell) && telco_of_cell_(cell) != nullptr) return cell;
    }
  }
  return 0;  // nothing usable right now: back off and retry
}

void UeAgent::try_attach(ran::CellId preferred) {
  if (!in_recovery_ || attached()) return;
  const ran::CellId cell = pick_candidate(preferred);
  if (cell == 0) {
    schedule_retry(preferred);
    return;
  }
  attach(cell, [this, preferred, cell](Result<net::Ipv4Addr> result) {
    if (!in_recovery_) return;  // cancelled meanwhile
    if (result.ok()) {
      in_recovery_ = false;
      const Duration outage = ue_node_.simulator().now() - outage_started_;
      reattach_latencies_.add(outage.to_millis());
      obs::observe(obs::histogram("ue_agent.reattach_latency_ms"), outage.to_millis());
      obs::trace(ue_node_.simulator().now(), obs::TraceType::HandoverReattach, cell,
                 static_cast<std::uint64_t>(outage.nanos() / 1000));
      CB_LOG(Info, "ue-agent") << id() << ": recovered on cell " << cell << " after "
                               << outage.to_millis() << " ms";
      return;
    }
    // This cell is sick (denied, timed out, dead AGW): skip it for a while
    // and let the backoff pick the next-best candidate.
    blacklist_[cell] = ue_node_.simulator().now() + config_.cell_blacklist;
    schedule_retry(preferred);
  });
}

void UeAgent::schedule_retry(ran::CellId preferred) {
  obs::inc(obs::counter("ue_agent.attach.retries"));
  obs::trace(ue_node_.simulator().now(), obs::TraceType::AttachRetry, preferred);
  recovery_backoff_ = decorrelated_backoff(jitter_rng_, config_.retry_backoff,
                                           recovery_backoff_, config_.retry_backoff_max);
  recovery_timer_ = ue_node_.simulator().schedule(recovery_backoff_,
                                                  [this, preferred] { try_attach(preferred); });
}

void UeAgent::start_watchdog() {
  watchdog_timer_.cancel();
  watchdog_timer_ =
      ue_node_.simulator().schedule(config_.watchdog_interval, [this] { watchdog(); });
}

void UeAgent::watchdog() {
  if (!attached()) return;
  const ran::TowerSite site = ran_map_.site(serving_cell_);
  const bool bearer_dead =
      !site.radio_link->is_up() || (site.node != nullptr && !site.node->is_up());
  if (!bearer_dead) {
    watchdog_timer_ =
        ue_node_.simulator().schedule(config_.watchdog_interval, [this] { watchdog(); });
    return;
  }
  ++bearer_losses_;
  const ran::CellId lost = serving_cell_;
  obs::inc(obs::counter("ue_agent.bearer_losses"));
  obs::trace(ue_node_.simulator().now(), obs::TraceType::BearerLoss, lost);
  CB_LOG(Info, "ue-agent") << id() << ": bearer to cell " << lost
                           << " lost, entering recovery";
  detach_locally();
  blacklist_[lost] = ue_node_.simulator().now() + config_.cell_blacklist;
  if (recovery_enabled_) attach_with_recovery(0);
}

void UeAgent::send_report(bool final_report) {
  if (!attached()) return;
  const ran::TowerSite site = ran_map_.site(serving_cell_);
  const auto& dl = site.radio_link->counters(site.node);
  const auto& ul = site.radio_link->counters(&ue_node_);

  TrafficReport report;
  report.session_id = session_id_;
  report.reporter = Reporter::Ue;
  report.period = next_period_++;
  const std::uint64_t dl_delivered = dl.delivered_bytes - dl_base_;
  const std::uint64_t dl_sent = dl.sent_bytes - dl_sent_base_;
  report.dl_bytes = static_cast<std::uint64_t>(
      static_cast<double>(dl_delivered) * config_.underreport_factor);
  report.ul_bytes = ul.sent_bytes - ul_base_;
  report.dl_loss_rate =
      dl_sent > 0 ? 1.0 - static_cast<double>(dl_delivered) / static_cast<double>(dl_sent)
                  : 0.0;
  report.duration_ms = static_cast<std::uint64_t>(
      (ue_node_.simulator().now() - session_started_).to_millis());
  const double period_s = config_.report_interval.to_seconds();
  report.avg_dl_bps = static_cast<double>(report.dl_bytes) * 8.0 / period_s;
  report.avg_ul_bps = static_cast<double>(report.ul_bytes) * 8.0 / period_s;
  dl_base_ = dl.delivered_bytes;
  dl_sent_base_ = dl.sent_bytes;
  ul_base_ = ul.sent_bytes;

  // Sign inside the "baseband", seal to the broker (§4.3), ship over the
  // reliable (ACK + retransmission) report channel. A final report sent at
  // detach time may lose its first copy with the radio; the retransmission
  // resumes after the next attach.
  const Bytes report_bytes = report.serialize();
  ByteWriter inner;
  inner.str(id());
  inner.u8(static_cast<std::uint8_t>(Reporter::Ue));
  inner.bytes(report_bytes);
  inner.bytes(sap_.sign(report_bytes));
  const Bytes sealed = crypto::seal(sap_.broker_key(), inner.data(), rng_);
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(BrokerMsg::Report));
  const std::uint64_t seq = next_report_seq_++;
  w.u64(seq);
  w.bytes(sealed);

  OutstandingReport& out = outstanding_reports_[seq];
  out.wire = w.take();
  out.session_id = report.session_id;
  out.attempts_left = config_.report_attempts;
  out.next_delay = config_.report_retry;
  obs::inc(obs::counter("ue_agent.reports.sent"));
  obs::trace(ue_node_.simulator().now(), obs::TraceType::ReportSend, seq, report.period);
  transmit_report(seq);

  if (!final_report) {
    report_timer_ =
        ue_node_.simulator().schedule(config_.report_interval, [this] { send_report(false); });
  }
}

void UeAgent::transmit_report(std::uint64_t seq) {
  auto it = outstanding_reports_.find(seq);
  if (it == outstanding_reports_.end()) return;
  if (!attached()) return;  // resumed by the flush on the next attach
  OutstandingReport& out = it->second;
  if (out.attempts_left <= 0) {
    ++reports_abandoned_;
    obs::inc(obs::counter("ue_agent.reports.abandoned"));
    obs::trace(ue_node_.simulator().now(), obs::TraceType::ReportAbandoned, seq);
    CB_LOG(Info, "ue-agent") << id() << ": report " << seq << " abandoned (no broker ACK)";
    outstanding_reports_.erase(it);
    return;
  }
  --out.attempts_left;
  obs::inc(obs::counter("ue_agent.reports.tx"));
  net::EndPoint dst = broker_report_ep_;
  if (router_ != nullptr) {
    const TimePoint now = ue_node_.simulator().now();
    // A timer-driven resend means the previous target never answered:
    // strike it so the router eventually fails the session over.
    if (out.sent_once) router_->note_timeout(out.last_shard, now);
    out.last_shard = router_->pick_for_session(out.session_id, now);
    dst = router_->endpoint(out.last_shard);
  }
  out.sent_once = true;
  net::Packet p;
  p.src = net::EndPoint{current_ip_, kUeReportPort};
  p.dst = dst;
  p.proto = net::Proto::Udp;
  p.payload = out.wire;
  ue_node_.send(std::move(p));
  out.timer =
      ue_node_.simulator().schedule(out.next_delay, [this, seq] { transmit_report(seq); });
  out.next_delay =
      decorrelated_backoff(jitter_rng_, config_.report_retry, out.next_delay, Duration::s(30));
}

void UeAgent::handle_report_ack(std::uint64_t seq) {
  auto it = outstanding_reports_.find(seq);
  if (it == outstanding_reports_.end()) return;
  if (router_ != nullptr && it->second.sent_once) router_->note_ok(it->second.last_shard);
  it->second.timer.cancel();
  outstanding_reports_.erase(it);
  obs::inc(obs::counter("ue_agent.reports.acked"));
  obs::trace(ue_node_.simulator().now(), obs::TraceType::ReportAck, seq);
}

void UeAgent::handle_redirect(std::uint64_t seq, std::uint16_t bucket, std::uint16_t owner) {
  if (router_ == nullptr) return;
  router_->learn_redirect(bucket, owner);
  auto it = outstanding_reports_.find(seq);
  if (it == outstanding_reports_.end()) return;
  OutstandingReport& out = it->second;
  // The shard answered (it is healthy, just not the owner): clear its
  // strikes, reset this report's retry budget, and resend to the owner now.
  router_->note_ok(out.last_shard);
  out.timer.cancel();
  out.attempts_left = config_.report_attempts;
  out.next_delay = config_.report_retry;
  out.sent_once = false;
  obs::inc(obs::counter("ue_agent.reports.redirected"));
  transmit_report(seq);
}

void UeAgent::detach() {
  if (!attached()) return;
  send_report(/*final=*/true);
  serving_telco_->handle_detach(session_id_);
  detach_locally();
}

void UeAgent::detach_locally() {
  if (serving_cell_ != 0) {
    obs::trace(ue_node_.simulator().now(), obs::TraceType::HandoverDetach, serving_cell_);
  }
  report_timer_.cancel();
  attach_deadline_.cancel();
  watchdog_timer_.cancel();
  // Pause report retransmission until the next attach gives us an IP again.
  for (auto& [seq, out] : outstanding_reports_) out.timer.cancel();
  const ran::TowerSite site = ran_map_.site(serving_cell_);
  site.radio_link->set_up(false);
  // The generation bump below orphans any in-flight attach, so close its
  // optimistically-raised bearer here — nothing else will.
  if (attach_pending_ != 0 && attach_pending_ != serving_cell_) {
    ran_map_.site(attach_pending_).radio_link->set_up(false);
  }
  attach_pending_ = 0;
  ue_node_.remove_address(current_ip_);
  // (The bTelco unregisters the address from the routing oracle when it
  // releases the session.)
  const net::Ipv4Addr old_ip = current_ip_;
  current_ip_ = net::Ipv4Addr{};
  serving_cell_ = 0;
  serving_telco_ = nullptr;
  session_id_ = 0;
  ++attach_generation_;  // invalidate in-flight attach continuations
  if (mptcp_) mptcp_->notify_address_invalidated(old_ip);
}

void UeAgent::start_mobility(ran::UeRadio& radio) {
  if (!candidate_source_) {
    set_candidate_source([&radio] { return radio.candidates(); });
  }
  radio.start([this](ran::CellId /*old_cell*/, ran::CellId new_cell) {
    cancel_recovery();
    if (attached()) detach();
    if (new_cell != 0) attach_with_recovery(new_cell);
  });
}

}  // namespace cb::cellbricks
