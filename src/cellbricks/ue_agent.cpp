#include "cellbricks/ue_agent.hpp"

#include "common/log.hpp"

namespace cb::cellbricks {

UeAgent::UeAgent(net::Network& network, net::Node& ue_node, SapUe sap,
                 const ran::RanMap& ran_map, std::function<Btelco*(ran::CellId)> telco_of_cell,
                 net::EndPoint broker_report_ep)
    : UeAgent(network, ue_node, std::move(sap), ran_map, std::move(telco_of_cell),
              broker_report_ep, Config()) {}

UeAgent::UeAgent(net::Network& network, net::Node& ue_node, SapUe sap,
                 const ran::RanMap& ran_map, std::function<Btelco*(ran::CellId)> telco_of_cell,
                 net::EndPoint broker_report_ep, Config config)
    : network_(network),
      ue_node_(ue_node),
      sap_(std::move(sap)),
      ran_map_(ran_map),
      telco_of_cell_(std::move(telco_of_cell)),
      broker_report_ep_(broker_report_ep),
      config_(config),
      ue_queue_(ue_node.simulator()),
      enb_queue_(ue_node.simulator()),
      rng_(ue_node.simulator().rng().fork(0x0EA6)) {}

void UeAgent::attach(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done) {
  using R = Result<net::Ipv4Addr>;
  Btelco* telco = telco_of_cell_(cell);
  if (telco == nullptr) {
    if (done) done(R::err("no CellBricks provider on this cell"));
    return;
  }
  const ran::TowerSite site = ran_map_.site(cell);
  site.radio_link->set_up(true);  // radio-layer connectivity (reused as-is)
  attach_started_ = ue_node_.simulator().now();
  const std::uint64_t gen = ++attach_generation_;
  auto done_shared =
      std::make_shared<std::function<void(R)>>(done ? std::move(done) : [](R) {});

  // [UE msg 1/2] craft authReqU (encrypt authVec to pkB, sign).
  ue_queue_.submit(config_.ue_msg, [this, gen, cell, site, telco, done_shared] {
    if (gen != attach_generation_) return;  // superseded by newer mobility event
    Bytes req = sap_.make_auth_req(telco->id(), rng_);
    // [eNB leg 1/2] relay to the bTelco AGW.
    enb_queue_.submit(config_.enb_msg, [this, gen, cell, site, telco, done_shared,
                                        req = std::move(req)]() mutable {
      if (gen != attach_generation_) return;
      telco->handle_attach(
          std::move(req), &ue_node_, site.radio_link,
          [this, gen, cell, site, telco, done_shared](
              Result<std::pair<Bytes, net::Ipv4Addr>> result) {
            // [eNB leg 2/2] + [UE msg 2/2] verify authRespU, configure IP.
            enb_queue_.submit(config_.enb_msg, [this, gen, cell, site, telco, done_shared,
                                                result = std::move(result)]() mutable {
              ue_queue_.submit(config_.ue_msg, [this, gen, cell, site, telco, done_shared,
                                                result = std::move(result)]() mutable {
                if (gen != attach_generation_) return;
                if (!result.ok()) {
                  ++attach_failures_;
                  (*done_shared)(Result<net::Ipv4Addr>::err(result.error()));
                  return;
                }
                auto& [resp_u, ip] = result.value();
                auto session = sap_.process_auth_resp(resp_u);
                if (!session.ok()) {
                  ++attach_failures_;
                  CB_LOG(Warn, "ue-agent") << id() << ": " << session.error();
                  (*done_shared)(Result<net::Ipv4Addr>::err(session.error()));
                  return;
                }

                current_ip_ = ip;
                serving_cell_ = cell;
                serving_telco_ = telco;
                session_id_ = session.value().session_id;
                ue_node_.add_address(ip);
                ue_node_.set_default_route(site.radio_link);

                // Baseband meter baselines (PDCP/RLC counters).
                const auto& dl = site.radio_link->counters(site.node);
                const auto& ul = site.radio_link->counters(&ue_node_);
                dl_base_ = dl.delivered_bytes;
                dl_sent_base_ = dl.sent_bytes;
                ul_base_ = ul.sent_bytes;
                session_started_ = ue_node_.simulator().now();
                next_period_ = 0;
                report_timer_ = ue_node_.simulator().schedule(
                    config_.report_interval, [this] { send_report(false); });

                last_attach_latency_ = ue_node_.simulator().now() - attach_started_;
                attach_latencies_.add(last_attach_latency_.to_millis());

                // Flush reports accumulated while detached.
                while (!pending_reports_.empty()) {
                  net::Packet p;
                  p.src = net::EndPoint{current_ip_, 4599};
                  p.dst = broker_report_ep_;
                  p.proto = net::Proto::Udp;
                  p.payload = std::move(pending_reports_.front());
                  pending_reports_.pop_front();
                  ue_node_.send(std::move(p));
                }

                if (mptcp_) mptcp_->notify_address_available(current_ip_);
                if (on_attached) on_attached(cell, last_attach_latency_);
                (*done_shared)(current_ip_);
              });
            });
          });
    });
  });
}

void UeAgent::send_report(bool final_report) {
  if (!attached()) return;
  const ran::TowerSite site = ran_map_.site(serving_cell_);
  const auto& dl = site.radio_link->counters(site.node);
  const auto& ul = site.radio_link->counters(&ue_node_);

  TrafficReport report;
  report.session_id = session_id_;
  report.reporter = Reporter::Ue;
  report.period = next_period_++;
  const std::uint64_t dl_delivered = dl.delivered_bytes - dl_base_;
  const std::uint64_t dl_sent = dl.sent_bytes - dl_sent_base_;
  report.dl_bytes = static_cast<std::uint64_t>(
      static_cast<double>(dl_delivered) * config_.underreport_factor);
  report.ul_bytes = ul.sent_bytes - ul_base_;
  report.dl_loss_rate =
      dl_sent > 0 ? 1.0 - static_cast<double>(dl_delivered) / static_cast<double>(dl_sent)
                  : 0.0;
  report.duration_ms = static_cast<std::uint64_t>(
      (ue_node_.simulator().now() - session_started_).to_millis());
  const double period_s = config_.report_interval.to_seconds();
  report.avg_dl_bps = static_cast<double>(report.dl_bytes) * 8.0 / period_s;
  report.avg_ul_bps = static_cast<double>(report.ul_bytes) * 8.0 / period_s;
  dl_base_ = dl.delivered_bytes;
  dl_sent_base_ = dl.sent_bytes;
  ul_base_ = ul.sent_bytes;

  // Sign inside the "baseband", seal to the broker (§4.3).
  const Bytes report_bytes = report.serialize();
  ByteWriter inner;
  inner.str(id());
  inner.u8(static_cast<std::uint8_t>(Reporter::Ue));
  inner.bytes(report_bytes);
  inner.bytes(sap_.sign(report_bytes));
  const Bytes sealed = crypto::seal(sap_.broker_key(), inner.data(), rng_);
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(BrokerMsg::Report));
  w.bytes(sealed);

  if (final_report) {
    // The radio is about to drop: queue for delivery after the next attach.
    pending_reports_.push_back(w.take());
  } else {
    net::Packet p;
    p.src = net::EndPoint{current_ip_, 4599};
    p.dst = broker_report_ep_;
    p.proto = net::Proto::Udp;
    p.payload = w.take();
    ue_node_.send(std::move(p));
    report_timer_ =
        ue_node_.simulator().schedule(config_.report_interval, [this] { send_report(false); });
  }
}

void UeAgent::detach() {
  if (!attached()) return;
  send_report(/*final=*/true);
  serving_telco_->handle_detach(session_id_);
  detach_locally();
}

void UeAgent::detach_locally() {
  report_timer_.cancel();
  const ran::TowerSite site = ran_map_.site(serving_cell_);
  site.radio_link->set_up(false);
  ue_node_.remove_address(current_ip_);
  // (The bTelco unregisters the address from the routing oracle when it
  // releases the session.)
  const net::Ipv4Addr old_ip = current_ip_;
  current_ip_ = net::Ipv4Addr{};
  serving_cell_ = 0;
  serving_telco_ = nullptr;
  session_id_ = 0;
  ++attach_generation_;  // invalidate in-flight attach continuations
  if (mptcp_) mptcp_->notify_address_invalidated(old_ip);
}

void UeAgent::start_mobility(ran::UeRadio& radio) {
  radio.start([this](ran::CellId /*old_cell*/, ran::CellId new_cell) {
    if (attached()) detach();
    if (new_cell != 0) {
      attach(new_cell, [](Result<net::Ipv4Addr> result) {
        if (!result.ok()) {
          CB_LOG(Warn, "ue-agent") << "re-attach failed: " << result.error();
        }
      });
    }
  });
}

}  // namespace cb::cellbricks
