#include "cellbricks/brokerd.hpp"

#include "common/log.hpp"
#include "crypto/batch_verify.hpp"
#include "obs/metrics.hpp"

namespace cb::cellbricks {

Brokerd::Brokerd(net::Node& node, SapBroker sap)
    : Brokerd(node, std::move(sap), Config()) {}

Brokerd::Brokerd(net::Node& node, SapBroker sap, Config config)
    : node_(node),
      sap_(std::move(sap)),
      config_(config),
      queue_(node.simulator()),
      rng_(node.simulator().rng().fork(0xB20CE2)),
      reputation_(config.reputation) {
  node_.bind_udp(kBrokerPort, [this](const net::Packet& p) { handle(p); });
}

void Brokerd::add_subscriber(const std::string& id_u, crypto::RsaPublicKey key) {
  subscriber_keys_[id_u] = key;
  sap_.add_subscriber(id_u, std::move(key));
}

void Brokerd::remove_subscriber(const std::string& id_u) {
  subscriber_keys_.erase(id_u);
  sap_.remove_subscriber(id_u);
}

void Brokerd::set_plan(const std::string& id_u, QosInfo qos) { plans_[id_u] = qos; }

const Brokerd::SessionRecord* Brokerd::session(std::uint64_t session_id) const {
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : &it->second;
}

void Brokerd::handle(const net::Packet& packet) {
  CowBytes payload = packet.payload;  // O(1) share into the service closure
  const net::EndPoint from = packet.src;
  try {
    ByteReader peek(payload);
    const auto type = static_cast<BrokerMsg>(peek.u8());
    const Duration service = type == BrokerMsg::AuthReq ? config_.sap_service_time
                                                        : config_.report_service_time;
    if (type == BrokerMsg::AuthReq) {
      sap_busy_ += service;
      obs::inc(obs::counter("broker.sap.requests"));
    }
    // SAP latency = queueing behind earlier requests + service time, measured
    // on the broker's own clock from packet arrival to reply readiness.
    const TimePoint arrived = node_.simulator().now();
    queue_.submit(service, [this, payload = std::move(payload), from, arrived] {
      try {
        ByteReader r(payload);
        const auto msg = static_cast<BrokerMsg>(r.u8());
        if (msg == BrokerMsg::AuthReq) {
          handle_auth(from, r);
          obs::observe(obs::histogram("broker.sap_latency_ms"),
                       (node_.simulator().now() - arrived).to_millis());
        } else if (msg == BrokerMsg::Report) {
          handle_report(from, r);
        } else if (msg == BrokerMsg::ResumeNotify) {
          handle_resume_notify(from, r);
        }
      } catch (const std::out_of_range&) {
        CB_LOG(Warn, "brokerd") << "malformed message dropped";
      }
    });
  } catch (const std::out_of_range&) {
  }
}

void Brokerd::handle_auth(const net::EndPoint& from, ByteReader& r) {
  const std::uint64_t txn = r.u64();
  const Bytes auth_req_t = r.bytes();

  // Idempotent retransmission handling.
  const auto cache_key = std::make_pair(
      static_cast<std::uint64_t>(from.addr.value()) << 16 | from.port, txn);
  if (auto cached = reply_cache_.find(cache_key); cached != reply_cache_.end()) {
    obs::inc(obs::counter("broker.sap.cache_hits"));
    reply(from, cached->second.payload);
    return;
  }

  // We do not yet know the subscriber (it is sealed inside the request), so
  // plan resolution happens via a capture inside the authorize hook.
  std::string resolved_id_u;
  auto decision = sap_.process_auth_req(
      auth_req_t, node_.simulator().now(), rng_, config_.default_qos,
      [this, &resolved_id_u](const std::string& id_u, const std::string& id_t) {
        resolved_id_u = id_u;
        return reputation_.authorize(id_u, id_t);
      });

  ByteWriter w;
  if (!decision) {
    ++auth_denied_;
    obs::inc(obs::counter("broker.sap.denied"));
    obs::trace(node_.simulator().now(), obs::TraceType::SapAuthDenied, txn);
    CB_LOG(Info, "brokerd") << "auth denied: " << decision.error();
    w.u8(static_cast<std::uint8_t>(BrokerMsg::AuthErr));
    w.u64(txn);
    w.str(decision.error());
    reply(from, w.take());
    return;
  }

  BrokerDecision& d = decision.value();
  // Apply the subscriber's plan if one is configured (re-negotiated against
  // the bTelco's capability next attach; for simplicity the default_qos
  // negotiation already ran — a plan override replaces the rate fields).
  if (auto plan = plans_.find(d.id_u); plan != plans_.end()) d.qos = plan->second;

  telco_keys_[d.id_t] = d.telco_key;
  SessionRecord rec;
  rec.id_u = d.id_u;
  rec.id_t = d.id_t;
  sessions_[d.session_id] = rec;
  ++sessions_issued_;
  obs::inc(obs::counter("broker.sap.ok"));
  obs::trace(node_.simulator().now(), obs::TraceType::SapAuthOk, d.session_id);

  w.u8(static_cast<std::uint8_t>(BrokerMsg::AuthOk));
  w.u64(txn);
  w.bytes(d.auth_resp_t);
  w.bytes(d.auth_resp_u);
  Bytes payload = w.take();
  reply_cache_[cache_key] = CachedReply{payload, node_.simulator().now()};
  ensure_sweeper();
  reply(from, std::move(payload));
}

void Brokerd::handle_report(const net::EndPoint& from, ByteReader& r) {
  ++reports_received_;
  obs::inc(obs::counter("broker.reports.received"));
  const std::uint64_t seq = r.u64();
  const Bytes sealed = r.bytes();
  // Idempotent retransmission handling — answered before the (expensive)
  // unseal. Keyed per requester, so a UE's seq space and a bTelco's cannot
  // collide (both start at 1).
  const auto ack_key = std::make_pair(
      static_cast<std::uint64_t>(from.addr.value()) << 16 | from.port, seq);
  if (auto cached = report_ack_cache_.find(ack_key); cached != report_ack_cache_.end()) {
    ++report_ack_cache_hits_;
    obs::inc(obs::counter("broker.reports.ack_cache_hits"));
    reply(from, cached->second.payload);
    return;
  }
  auto opened = sap_.open_box(sealed);
  if (!opened) {
    // No ACK: an in-flight corruption may have mangled the box, in which
    // case the sender's retransmission of the clean copy will succeed.
    ++reports_rejected_;
    obs::inc(obs::counter("broker.reports.rejected"));
    return;
  }
  try {
    ByteReader inner(opened.value());
    const std::string reporter_id = inner.str();
    const auto type = static_cast<Reporter>(inner.u8());
    const Bytes report_bytes = inner.bytes();
    const Bytes sig = inner.bytes();

    // Verify the reporter's signature with the key we know for them.
    const crypto::RsaPublicKey* key = nullptr;
    if (type == Reporter::Ue) {
      if (auto it = subscriber_keys_.find(reporter_id); it != subscriber_keys_.end()) {
        key = &it->second;
      }
    } else {
      if (auto it = telco_keys_.find(reporter_id); it != telco_keys_.end()) key = &it->second;
    }
    if (key == nullptr) {
      ++reports_rejected_;
      obs::inc(obs::counter("broker.reports.rejected"));
      CB_LOG(Info, "brokerd") << "report rejected: unknown reporter " << reporter_id;
      return;
    }
    if (config_.batch_verify_reports) {
      // Defer the (expensive) RSA check into the batch window; the ACK and
      // ingestion happen at flush time, in arrival order.
      PendingVerify pv;
      pv.from = from;
      pv.seq = seq;
      pv.ack_key = ack_key;
      pv.reporter_id = reporter_id;
      pv.type = type;
      pv.report_bytes = report_bytes;
      pv.key = *key;
      pv.sig = sig;
      verify_queue_.push_back(std::move(pv));
      if (!batch_timer_.pending()) {
        batch_timer_ = node_.simulator().schedule(config_.batch_window,
                                                  [this] { flush_report_batch(); });
      }
      return;
    }
    finish_report(from, seq, ack_key, reporter_id, type, report_bytes,
                  key->verify(report_bytes, sig));
  } catch (const std::out_of_range&) {
    ++reports_rejected_;
    obs::inc(obs::counter("broker.reports.rejected"));
  }
}

void Brokerd::flush_report_batch() {
  if (verify_queue_.empty()) return;
  std::vector<PendingVerify> batch;
  batch.swap(verify_queue_);

  std::vector<crypto::BatchVerifier::Job> jobs;
  jobs.reserve(batch.size());
  for (const PendingVerify& pv : batch) {
    jobs.push_back(crypto::BatchVerifier::Job{pv.key, pv.report_bytes, pv.sig});
  }
  const crypto::BatchVerifier verifier(config_.batch_threads);
  const std::vector<bool> ok = verifier.verify_all(jobs);

  ++report_batches_;
  reports_batch_verified_ += batch.size();
  obs::inc(obs::counter("broker.reports.batches"));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingVerify& pv = batch[i];
    finish_report(pv.from, pv.seq, pv.ack_key, pv.reporter_id, pv.type, pv.report_bytes,
                  ok[i]);
  }
}

void Brokerd::finish_report(const net::EndPoint& from, std::uint64_t seq,
                            const std::pair<std::uint64_t, std::uint64_t>& ack_key,
                            const std::string& reporter_id, Reporter type,
                            const Bytes& report_bytes, bool sig_ok) {
  if (!sig_ok) {
    ++reports_rejected_;
    obs::inc(obs::counter("broker.reports.rejected"));
    CB_LOG(Info, "brokerd") << "report rejected: bad signature from " << reporter_id;
    return;
  }
  auto report = TrafficReport::deserialize(report_bytes);
  if (!report) {
    ++reports_rejected_;
    obs::inc(obs::counter("broker.reports.rejected"));
    return;
  }
  // Authenticated and decoded: ACK so the reporter stops retransmitting.
  // Duplicates and policy rejections are acked too — retransmitting them
  // could never change the outcome.
  ByteWriter ack;
  ack.u8(static_cast<std::uint8_t>(BrokerMsg::ReportAck));
  ack.u64(seq);
  Bytes ack_payload = ack.take();
  report_ack_cache_[ack_key] = CachedReply{ack_payload, node_.simulator().now()};
  ensure_sweeper();
  reply(from, std::move(ack_payload));
  ingest_report(reporter_id, type, report.value(), ack_key);
}

void Brokerd::handle_resume_notify(const net::EndPoint& from, ByteReader& r) {
  const std::uint64_t txn = r.u64();
  const Bytes sealed = r.bytes();
  auto opened = sap_.open_box(sealed);
  if (!opened) return;  // no ack: a clean retransmission may still succeed
  try {
    ByteReader inner(opened.value());
    const Bytes body = inner.bytes();
    auto cert = crypto::Certificate::deserialize(inner.bytes());
    const Bytes sig = inner.bytes();
    if (!cert) return;
    const crypto::Certificate& cert_t = cert.value();

    ByteReader br(body);
    const std::string id_t = br.str();
    const std::uint64_t session_id = br.u64();
    const Bytes ticket_id = br.bytes();

    // The notifying bTelco may have NEVER authed a session through this
    // broker (that is the point of resumption), so it authenticates with
    // its CA certificate, exactly like an authReqT.
    const TimePoint now = node_.simulator().now();
    if (cert_t.subject() != id_t) return;
    if (!crypto::CertificateAuthority::verify_signature(cert_t, sap_.ca_key())) return;
    if (now < cert_t.not_before() || now > cert_t.not_after()) return;
    if (!cert_t.key().verify(body, sig)) return;
    telco_keys_[id_t] = cert_t.key();

    bool revoke = false;
    auto sit = sessions_.find(session_id);
    if (sit == sessions_.end()) {
      // A ticket for a session this broker never issued: order teardown.
      revoke = true;
    } else {
      // Rebind the session to its new serving bTelco so subsequent traffic
      // reports from it pair normally, and re-check the subscriber against
      // the suspect list (reputation may have turned since the ticket was
      // minted — revocation-on-suspect).
      sit->second.id_t = id_t;
      revoke = reputation_.is_suspect(sit->second.id_u);
    }
    ++resumes_notified_;
    if (revoke) {
      ++resume_revocations_;
      obs::inc(obs::counter("broker.resume.revocations"));
      CB_LOG(Info, "brokerd") << "resume of session " << session_id << " at " << id_t
                              << " revoked (ticket " << to_hex(ticket_id) << ")";
    }
    obs::inc(obs::counter("broker.resume.notified"));
    obs::trace(now, obs::TraceType::SapAuthOk, session_id);

    ByteWriter ack;
    ack.u8(static_cast<std::uint8_t>(BrokerMsg::ResumeNotifyAck));
    ack.u64(txn);
    ack.u8(revoke ? 1 : 0);
    reply(from, ack.take());
  } catch (const std::out_of_range&) {
    CB_LOG(Warn, "brokerd") << "malformed resume notify dropped";
  }
}

void Brokerd::ingest_report(const std::string& reporter_id, Reporter type,
                            const TrafficReport& report,
                            const std::pair<std::uint64_t, std::uint64_t>& ack_key) {
  auto sit = sessions_.find(report.session_id);
  if (sit == sessions_.end()) {
    ++reports_rejected_;
    obs::inc(obs::counter("broker.reports.rejected"));
    return;
  }
  SessionRecord& rec = sit->second;
  // The reporter must match the session's parties.
  if ((type == Reporter::Ue && reporter_id != rec.id_u) ||
      (type == Reporter::Telco && reporter_id != rec.id_t)) {
    ++reports_rejected_;
    obs::inc(obs::counter("broker.reports.rejected"));
    CB_LOG(Info, "brokerd") << "report rejected: " << reporter_id
                            << " not a party of session";
    return;
  }
  // Dedup BEFORE touching the cumulative counters: a retransmitted report
  // (lost ACK, eager retry timer) must not inflate the billed usage.
  const std::uint64_t seen_key =
      (static_cast<std::uint64_t>(report.period) << 1) | static_cast<std::uint64_t>(type);
  if (!rec.seen.insert(seen_key).second && !config_.test_skip_report_dedup) {
    ++reports_deduped_;
    obs::inc(obs::counter("broker.reports.deduped"));
    return;
  }
  ++rec.accumulations;
  ++reports_ingested_;
  obs::inc(obs::counter("broker.reports.ingested"));
  obs::trace(node_.simulator().now(), obs::TraceType::ReportIngest, report.session_id,
             report.period);
  if (type == Reporter::Ue) {
    rec.ue_dl_bytes += report.dl_bytes;
  } else {
    rec.telco_dl_bytes += report.dl_bytes;
  }
  pending_reports_[{report.session_id, report.period, static_cast<int>(type)}] =
      PendingReport{report, node_.simulator().now(), ack_key};
  ensure_sweeper();
  compare_if_paired(report.session_id, report.period);
}

void Brokerd::compare_if_paired(std::uint64_t session_id, std::uint32_t period) {
  const auto ue_key = std::make_tuple(session_id, period, static_cast<int>(Reporter::Ue));
  const auto t_key = std::make_tuple(session_id, period, static_cast<int>(Reporter::Telco));
  auto ue_it = pending_reports_.find(ue_key);
  auto t_it = pending_reports_.find(t_key);
  if (ue_it == pending_reports_.end() || t_it == pending_reports_.end()) return;

  SessionRecord& rec = sessions_[session_id];
  const PairVerdict verdict = reputation_.compare(ue_it->second.report, t_it->second.report);
  reputation_.record(rec.id_u, rec.id_t, verdict);
  rec.ue_paired_bytes += ue_it->second.report.dl_bytes;
  rec.telco_paired_bytes += t_it->second.report.dl_bytes;
  rec.paired_threshold += verdict.threshold;
  rec.pairs_compared += 1;
  ++pairs_compared_total_;
  obs::inc(obs::counter("broker.pairs.compared"));
  obs::trace(node_.simulator().now(), obs::TraceType::ReportPaired, session_id, period);
  if (verdict.mismatch) {
    rec.mismatches += 1;
    obs::inc(obs::counter("broker.pairs.mismatch"));
    CB_LOG(Info, "brokerd") << "billing mismatch: session " << session_id << " period "
                            << period << " delta " << verdict.delta << "B (threshold "
                            << static_cast<std::int64_t>(verdict.threshold) << "B)";
  }
  pending_reports_.erase(ue_it);
  pending_reports_.erase(t_it);
}

void Brokerd::ensure_sweeper() {
  // Lazy housekeeping timer: runs only while there is state to expire, so a
  // quiescent broker leaves the event queue empty (Simulator::run returns).
  if (sweep_timer_.pending()) return;
  sweep_timer_ = node_.simulator().schedule(config_.gc_interval, [this] { sweep(); });
}

void Brokerd::sweep() {
  const TimePoint now = node_.simulator().now();

  // Unpaired-report timeout: the counterpart never arrived. Charge the
  // absent side with a missing-counterpart verdict instead of leaking the
  // pending entry forever.
  for (auto it = pending_reports_.begin(); it != pending_reports_.end();) {
    if (now - it->second.received_at < config_.pair_timeout) {
      ++it;
      continue;
    }
    const auto& [session_id, period, present_side] = it->first;
    const Reporter missing = static_cast<Reporter>(present_side) == Reporter::Ue
                                 ? Reporter::Telco
                                 : Reporter::Ue;
    if (auto sit = sessions_.find(session_id); sit != sessions_.end()) {
      reputation_.record_missing(sit->second.id_u, sit->second.id_t, missing);
    }
    ++unpaired_expired_;
    obs::inc(obs::counter("broker.reports.unpaired_expired"));
    obs::trace(now, obs::TraceType::ReportUnpairedExpired, session_id, period);
    CB_LOG(Info, "brokerd") << "report pair timeout: session " << session_id << " period "
                            << period << " missing "
                            << (missing == Reporter::Ue ? "UE" : "bTelco") << " report";
    // Evict the cached ack along with the expired report: a late retransmit
    // must be re-processed against the post-expiry state, not answered from
    // a cache entry whose decision the missing-counterpart verdict replaced.
    report_ack_cache_.erase(it->second.ack_key);
    it = pending_reports_.erase(it);
  }

  for (auto it = reply_cache_.begin(); it != reply_cache_.end();) {
    if (now - it->second.at >= config_.reply_cache_ttl) {
      it = reply_cache_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = report_ack_cache_.begin(); it != report_ack_cache_.end();) {
    if (now - it->second.at >= config_.reply_cache_ttl) {
      it = report_ack_cache_.erase(it);
    } else {
      ++it;
    }
  }

  if (!pending_reports_.empty() || !reply_cache_.empty() || !report_ack_cache_.empty()) {
    sweep_timer_ = node_.simulator().schedule(config_.gc_interval, [this] { sweep(); });
  }
}

void Brokerd::reply(const net::EndPoint& to, Bytes payload) {
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), kBrokerPort};
  p.dst = to;
  p.proto = net::Proto::Udp;
  p.payload = std::move(payload);
  node_.send(std::move(p));
}

}  // namespace cb::cellbricks
