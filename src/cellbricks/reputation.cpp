#include "cellbricks/reputation.hpp"

#include <algorithm>
#include <cmath>

namespace cb::cellbricks {

PairVerdict ReputationSystem::compare(const TrafficReport& from_ue,
                                      const TrafficReport& from_telco) const {
  PairVerdict v;
  // Fig.5: the bTelco measures DL before the radio, the UE after it, so the
  // bTelco legitimately sees more bytes by the loss on the link. With loss
  // rate l measured over SENT bytes, dl_T*(1-l) = dl_U, i.e. the legitimate
  // delta is dl_U * l/(1-l); epsilon is the fixed tolerance on top.
  const double dl_u = static_cast<double>(from_ue.dl_bytes);
  const double l = std::clamp(from_ue.dl_loss_rate, 0.0, 0.95);
  v.threshold = (l / (1.0 - l) + config_.epsilon) * dl_u + 1500.0;  // +1 MTU slack
  v.delta = static_cast<std::int64_t>(from_telco.dl_bytes) -
            static_cast<std::int64_t>(from_ue.dl_bytes);
  const double excess = std::abs(static_cast<double>(v.delta)) - v.threshold;
  if (excess > 0.0) {
    v.mismatch = true;
    v.degree = std::min(1.0, excess / std::max(dl_u, 1.0));
  }
  return v;
}

void ReputationSystem::record(const std::string& id_u, const std::string& id_t,
                              const PairVerdict& verdict) {
  TelcoState& t = telcos_[id_t];
  if (verdict.mismatch) {
    t.weighted_mismatches += std::max(verdict.degree, 0.1);  // floor per incident
    t.mismatch_count += 1;
    UserState& u = users_[id_u];
    u.mismatched_telcos.insert(id_t);
    if (static_cast<int>(u.mismatched_telcos.size()) >= config_.suspect_distinct_telcos) {
      // A user who disagrees with several independent bTelcos is more
      // plausibly the dishonest party.
      suspects_.insert(id_u);
    }
  } else {
    t.clean_count += 1;
    t.weighted_mismatches =
        std::max(0.0, t.weighted_mismatches - config_.recovery_per_clean_pair);
  }
}

void ReputationSystem::record_missing(const std::string& id_u, const std::string& id_t,
                                      Reporter missing) {
  if (missing == Reporter::Telco) {
    TelcoState& t = telcos_[id_t];
    t.weighted_mismatches += config_.missing_report_penalty;
    t.missing_count += 1;
  } else {
    // A user that stops reporting may simply have vanished mid-session (dead
    // battery, coverage hole): count it, but do not treat it as tampering
    // evidence — only cross-bTelco mismatches feed the suspect list.
    users_[id_u].missing_count += 1;
  }
}

double ReputationSystem::telco_score(const std::string& id_t) const {
  auto it = telcos_.find(id_t);
  if (it == telcos_.end()) return 1.0;
  return 1.0 / (1.0 + it->second.weighted_mismatches);
}

bool ReputationSystem::authorize(const std::string& id_u, const std::string& id_t) const {
  if (is_suspect(id_u)) return false;
  return telco_score(id_t) >= config_.min_telco_score;
}

std::uint64_t ReputationSystem::mismatches(const std::string& id_t) const {
  auto it = telcos_.find(id_t);
  return it == telcos_.end() ? 0 : it->second.mismatch_count;
}

std::uint64_t ReputationSystem::missing_reports(const std::string& id) const {
  if (auto it = telcos_.find(id); it != telcos_.end()) return it->second.missing_count;
  if (auto it = users_.find(id); it != users_.end()) return it->second.missing_count;
  return 0;
}

}  // namespace cb::cellbricks
