#include "check/attach_invariants.hpp"

#include <sstream>
#include <string>
#include <unordered_set>

#include "common/bytes.hpp"

namespace cb::check {

namespace {

using When = InvariantEngine::When;
using Reporter = InvariantEngine::Reporter;

}  // namespace

void install_attach_invariants(InvariantEngine& engine, scenario::World& world) {
  auto* w = &world;

  engine.add("attach.no_session_without_auth", When::Periodic, [w](Reporter& r) {
    // MNO side: the SPGW anchors a bearer only after the MME ran the full
    // dialog (AKA + SMC + ULR). A session with zero completed attaches means
    // an authentication step was skipped.
    if (w->mme() != nullptr && w->ue_nas() != nullptr) {
      const bool has_bearer = w->mme()->spgw().has_session(w->ue_nas()->imsi());
      if (has_bearer && w->mme()->attaches_completed() == 0) {
        r.fail("SPGW holds a bearer for " + w->ue_nas()->imsi() +
               " but the MME never completed an attach");
      }
    }
    // CellBricks side: a resume served by a bTelco that never joined the
    // ticket federation would mean the local verifier ran without a STEK.
    for (std::size_t i = 0; i < w->n_btelcos(); ++i) {
      auto* t = w->btelco(i);
      if (t->resumes_served() != 0 && !t->resume_enabled()) {
        std::ostringstream s;
        s << t->id() << ": served " << t->resumes_served()
          << " resume(s) without resumption enabled";
        r.fail(s.str());
      }
    }
  });

  engine.add("attach.ticket_validity", When::Periodic, [w](Reporter& r) {
    for (std::size_t i = 0; i < w->n_btelcos(); ++i) {
      auto* t = w->btelco(i);
      std::unordered_set<std::string> seen;
      for (const auto& a : t->ticket_audit()) {
        const std::string tid = to_hex(a.ticket_id);
        if (a.accepted_at_ns >= a.expiry_ns) {
          std::ostringstream s;
          s << t->id() << ": ticket " << tid << " honoured at " << a.accepted_at_ns
            << " ns, at/past its expiry " << a.expiry_ns << " ns";
          r.fail(s.str());
        }
        if (!seen.insert(tid).second) {
          std::ostringstream s;
          s << t->id() << ": ticket " << tid << " honoured more than once "
            << "(single-use per bTelco)";
          r.fail(s.str());
        }
        if (a.was_revoked) {
          std::ostringstream s;
          s << t->id() << ": ticket " << tid << " honoured for revoked subscriber "
            << a.pseudonym;
          r.fail(s.str());
        }
      }
    }
  });

  engine.add("attach.resume_billing", When::EndOnly, [w](Reporter& r) {
    // Resumption must never mint a session the broker cannot bill: every
    // audited resume points at a broker-issued record. Sharded worlds never
    // enable resumption (the shard protocol has no ResumeNotify), so the
    // single-broker view is the only one consulted.
    auto* broker = w->brokerd();
    for (std::size_t i = 0; i < w->n_btelcos(); ++i) {
      auto* t = w->btelco(i);
      if (broker != nullptr) {
        for (const auto& a : t->ticket_audit()) {
          if (!broker->sessions().contains(a.session_id)) {
            std::ostringstream s;
            s << t->id() << ": resumed session " << a.session_id
              << " has no broker-issued billing record";
            r.fail(s.str());
          }
        }
      }
      // Revocation settled: once the run ends, a revoked pseudonym may not
      // still hold a live session at the bTelco that revoked it.
      if (t->revoked_pseudonyms().empty()) continue;
      for (const std::string& p : t->session_pseudonyms()) {
        if (t->revoked_pseudonyms().contains(p)) {
          std::ostringstream s;
          s << t->id() << ": revoked subscriber " << p << " still holds a live session";
          r.fail(s.str());
        }
      }
    }
  });
}

}  // namespace cb::check
