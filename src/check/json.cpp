#include "check/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cb::check {

namespace {

const JsonValue kNull{};

[[noreturn]] void fail_at(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing garbage");
    return v;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }
  char take() {
    char c = peek();
    ++pos_;
    return c;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  void expect_lit(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail_at(pos_, "bad literal");
      ++pos_;
    }
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect_lit("true"); return JsonValue(true);
      case 'f': expect_lit("false"); return JsonValue(false);
      case 'n': expect_lit("null"); return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    take();  // '{'
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      take();
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      if (take() != ':') fail_at(pos_ - 1, "expected ':'");
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail_at(pos_ - 1, "expected ',' or '}'");
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    take();  // '['
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      take();
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail_at(pos_ - 1, "expected ',' or ']'");
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    if (take() != '"') fail_at(pos_ - 1, "expected string");
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') break;
      if (c == '\\') {
        char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail_at(pos_, "truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail_at(pos_ - 1, "bad hex digit");
            }
            // UTF-8 encode the BMP code point (no surrogate pairing: the
            // repro files only carry ASCII identifiers).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail_at(pos_ - 1, "bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail_at(pos_ - 1, "unescaped control character");
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail_at(start, "expected value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail_at(start, "bad number");
    return JsonValue(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    // Integral values print as integers: seeds and byte counts must
    // round-trip exactly and read cleanly.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

const JsonValue& JsonValue::get(const std::string& key, const JsonValue& fallback) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return type_ == Type::Object && obj_.contains(key);
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: dump_number(out, num_); break;
    case Type::String: dump_string(out, str_); break;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        dump_string(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

JsonValue json_parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace cb::check
