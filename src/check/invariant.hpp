// Cross-layer invariant engine (FoundationDB-style simulation checking).
//
// An InvariantEngine holds a set of named checkers — predicates over live
// simulation state supplied by the embedding layer (world_invariants binds
// the standard catalogue to a scenario::World). Once armed on a Simulator it
// re-evaluates every periodic checker at a fixed sim-time cadence, and
// finalize() runs the full set once more at end-of-run. Violations are
// collected, not thrown, so a single run reports everything it broke.
//
// Determinism contract (the same one the obs layer obeys): checkers READ
// state and never mutate it, never draw from the simulator's RNG, and never
// schedule events of their own. The engine's cadence events are scheduled
// before the run starts, so the relative order of all application events —
// and therefore the chaos golden fingerprints — is unchanged whether an
// engine is armed or not. With no engine armed there is no cost at all.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace cb::check {

/// One detected invariant breach.
struct Violation {
  std::string invariant;  // checker name, e.g. "billing.dedup"
  TimePoint at;           // sim time of the check that caught it
  std::string detail;     // human-readable evidence
};

class InvariantEngine {
 public:
  /// When a checker runs: on every cadence tick and at finalize(), or only
  /// at finalize() (for properties that are allowed to be transiently false
  /// mid-run, e.g. totals that settle after final reports flush).
  enum class When { Periodic, EndOnly };

  /// Collector handed to checkers; fail() records a violation against the
  /// running checker's name at the current check instant.
  class Reporter {
   public:
    void fail(std::string detail);

   private:
    friend class InvariantEngine;
    Reporter(InvariantEngine& engine, const std::string& name, TimePoint at)
        : engine_(engine), name_(name), at_(at) {}
    InvariantEngine& engine_;
    const std::string& name_;
    TimePoint at_;
  };

  using CheckFn = std::function<void(Reporter&)>;

  /// Register a checker. Names should be dotted `layer.property` slugs; they
  /// key violation dedup (a persistently-broken invariant is recorded once
  /// per check instant, capped — see kMaxViolations).
  void add(std::string name, When when, CheckFn fn);

  /// Schedule periodic evaluation on `sim` every `cadence` up to `until`.
  /// Call once, before running the simulation.
  void arm(sim::Simulator& sim, Duration cadence, TimePoint until);

  /// Evaluate all periodic checkers now (arm() does this on a timer).
  void run_periodic(TimePoint now);

  /// End-of-run sweep: every checker, periodic and end-only, runs once.
  void finalize(TimePoint now);

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }
  std::size_t checker_count() const { return checkers_.size(); }

  /// "name@t: detail" lines, one per violation (repro reports, CI logs).
  std::string summary() const;

  /// Recording stops after this many violations: a broken invariant checked
  /// at 1 s cadence over a long horizon should not OOM the report.
  static constexpr std::size_t kMaxViolations = 100;

 private:
  struct Checker {
    std::string name;
    When when;
    CheckFn fn;
  };

  void record(const std::string& name, TimePoint at, std::string detail);

  std::vector<Checker> checkers_;
  std::vector<Violation> violations_;
  std::uint64_t checks_run_ = 0;
  std::vector<sim::EventHandle> ticks_;
};

}  // namespace cb::check
