#include "check/trace_io.hpp"

#include <stdexcept>

namespace cb::check {

namespace {

constexpr const char* kFormat = "cb-drivetest-v1";

JsonValue duration_ns(Duration d) { return JsonValue(static_cast<std::int64_t>(d.nanos())); }

Duration ns_from(const JsonValue& v) { return Duration::ns(v.as_int()); }

ran::ReselectionPolicyKind policy_from(const std::string& name) {
  if (name == "a3") return ran::ReselectionPolicyKind::A3Hysteresis;
  if (name == "a3_ttt") return ran::ReselectionPolicyKind::A3TimeToTrigger;
  if (name == "rank") return ran::ReselectionPolicyKind::RankBased;
  throw std::runtime_error("trace: unknown reselection policy '" + name + "'");
}

}  // namespace

JsonValue trace_to_json(const ran::DriveTestTrace& trace) {
  JsonArray cells;
  for (const ran::Cell& c : trace.cells) {
    JsonObject jc;
    jc["id"] = static_cast<std::uint64_t>(c.id);
    jc["x"] = c.position.x;
    jc["y"] = c.position.y;
    jc["provider"] = c.provider;
    jc["tx_power_dbm"] = c.tx_power_dbm;
    jc["bandwidth_hz"] = c.bandwidth_hz;
    cells.emplace_back(std::move(jc));
  }

  const ran::UeRadioConfig& rc = trace.config;
  JsonObject config;
  config["measurement_interval_ns"] = duration_ns(rc.measurement_interval);
  config["hysteresis_db"] = rc.hysteresis_db;
  config["floor_dbm"] = rc.floor_dbm;
  config["policy"] = ran::to_string(rc.policy);
  config["time_to_trigger_ns"] = duration_ns(rc.time_to_trigger);
  config["l3_filter_k"] = rc.l3_filter_k;
  config["ue_id"] = static_cast<std::uint64_t>(rc.ue_id);
  JsonObject channel;
  channel["shadow_sigma_db"] = rc.channel.shadow_sigma_db;
  channel["decorrelation_m"] = rc.channel.decorrelation_m;
  channel["fast_fading"] = rc.channel.fast_fading;
  channel["fading_sigma_db"] = rc.channel.fading_sigma_db;
  channel["seed"] = rc.channel.seed;
  config["channel"] = JsonValue(std::move(channel));

  JsonArray samples;
  for (const ran::DriveTestTrace::Sample& s : trace.samples) {
    JsonArray neighbors;
    for (const ran::DriveTestTrace::Neighbor& n : s.neighbors) {
      JsonObject jn;
      jn["cell"] = static_cast<std::uint64_t>(n.cell);
      jn["rsrp_dbm"] = n.rsrp_dbm;
      jn["filtered_dbm"] = n.filtered_dbm;
      neighbors.emplace_back(std::move(jn));
    }
    JsonObject js;
    js["t_ns"] = duration_ns(s.at);
    js["x"] = s.position.x;
    js["y"] = s.position.y;
    js["serving"] = static_cast<std::uint64_t>(s.serving);
    js["neighbors"] = JsonValue(std::move(neighbors));
    samples.emplace_back(std::move(js));
  }

  JsonArray reselections;
  for (const ran::DriveTestTrace::Reselection& e : trace.reselections) {
    JsonObject je;
    je["t_ns"] = duration_ns(e.at);
    je["from"] = static_cast<std::uint64_t>(e.from);
    je["to"] = static_cast<std::uint64_t>(e.to);
    reselections.emplace_back(std::move(je));
  }

  JsonObject o;
  o["format"] = kFormat;
  o["cells"] = JsonValue(std::move(cells));
  o["config"] = JsonValue(std::move(config));
  o["samples"] = JsonValue(std::move(samples));
  o["reselections"] = JsonValue(std::move(reselections));
  return JsonValue(std::move(o));
}

ran::DriveTestTrace trace_from_json(const JsonValue& v) {
  if (v.contains("format") && v.at("format").as_string() != kFormat) {
    throw std::runtime_error("trace: unsupported format '" + v.at("format").as_string() + "'");
  }
  ran::DriveTestTrace trace;
  for (const JsonValue& jc : v.at("cells").as_array()) {
    ran::Cell c;
    c.id = static_cast<ran::CellId>(jc.at("id").as_uint());
    c.position = ran::Point{jc.at("x").as_double(), jc.at("y").as_double()};
    c.provider = jc.at("provider").as_string();
    c.tx_power_dbm = jc.at("tx_power_dbm").as_double();
    c.bandwidth_hz = jc.at("bandwidth_hz").as_double();
    trace.cells.push_back(std::move(c));
  }

  const JsonValue& config = v.at("config");
  ran::UeRadioConfig& rc = trace.config;
  rc.measurement_interval = ns_from(config.at("measurement_interval_ns"));
  rc.hysteresis_db = config.at("hysteresis_db").as_double();
  rc.floor_dbm = config.at("floor_dbm").as_double();
  rc.policy = policy_from(config.at("policy").as_string());
  rc.time_to_trigger = ns_from(config.at("time_to_trigger_ns"));
  rc.l3_filter_k = static_cast<int>(config.at("l3_filter_k").as_int());
  rc.ue_id = static_cast<std::uint32_t>(config.at("ue_id").as_uint());
  const JsonValue& channel = config.at("channel");
  rc.channel.shadow_sigma_db = channel.at("shadow_sigma_db").as_double();
  rc.channel.decorrelation_m = channel.at("decorrelation_m").as_double();
  rc.channel.fast_fading = channel.at("fast_fading").as_bool();
  rc.channel.fading_sigma_db = channel.at("fading_sigma_db").as_double();
  rc.channel.seed = channel.at("seed").as_uint();

  for (const JsonValue& js : v.at("samples").as_array()) {
    ran::DriveTestTrace::Sample s;
    s.at = ns_from(js.at("t_ns"));
    s.position = ran::Point{js.at("x").as_double(), js.at("y").as_double()};
    s.serving = static_cast<ran::CellId>(js.at("serving").as_uint());
    for (const JsonValue& jn : js.at("neighbors").as_array()) {
      s.neighbors.push_back(ran::DriveTestTrace::Neighbor{
          static_cast<ran::CellId>(jn.at("cell").as_uint()), jn.at("rsrp_dbm").as_double(),
          jn.at("filtered_dbm").as_double()});
    }
    trace.samples.push_back(std::move(s));
  }

  for (const JsonValue& je : v.at("reselections").as_array()) {
    trace.reselections.push_back(ran::DriveTestTrace::Reselection{
        ns_from(je.at("t_ns")), static_cast<ran::CellId>(je.at("from").as_uint()),
        static_cast<ran::CellId>(je.at("to").as_uint())});
  }
  return trace;
}

std::string write_trace(const ran::DriveTestTrace& trace) {
  return trace_to_json(trace).dump(2);
}

ran::DriveTestTrace load_trace(const std::string& text) {
  return trace_from_json(json_parse(text));
}

}  // namespace cb::check
