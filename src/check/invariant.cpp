#include "check/invariant.hpp"

#include <sstream>

namespace cb::check {

void InvariantEngine::Reporter::fail(std::string detail) {
  engine_.record(name_, at_, std::move(detail));
}

void InvariantEngine::add(std::string name, When when, CheckFn fn) {
  checkers_.push_back(Checker{std::move(name), when, std::move(fn)});
}

void InvariantEngine::arm(sim::Simulator& sim, Duration cadence, TimePoint until) {
  if (cadence <= Duration::zero()) throw std::invalid_argument("arm: non-positive cadence");
  // All ticks are scheduled up front (no re-scheduling from inside an event):
  // the engine contributes a fixed, run-independent set of sequence numbers,
  // so application events keep the same relative order they have without it.
  for (TimePoint t = sim.now() + cadence; t <= until; t += cadence) {
    ticks_.push_back(sim.schedule_at(t, [this, &sim] { run_periodic(sim.now()); }));
  }
}

void InvariantEngine::run_periodic(TimePoint now) {
  for (const auto& c : checkers_) {
    if (c.when != When::Periodic) continue;
    ++checks_run_;
    Reporter r(*this, c.name, now);
    c.fn(r);
  }
}

void InvariantEngine::finalize(TimePoint now) {
  for (auto& tick : ticks_) tick.cancel();
  ticks_.clear();
  for (const auto& c : checkers_) {
    ++checks_run_;
    Reporter r(*this, c.name, now);
    c.fn(r);
  }
}

void InvariantEngine::record(const std::string& name, TimePoint at, std::string detail) {
  if (violations_.size() >= kMaxViolations) return;
  violations_.push_back(Violation{name, at, std::move(detail)});
}

std::string InvariantEngine::summary() const {
  std::ostringstream out;
  for (const auto& v : violations_) {
    out << v.invariant << "@" << v.at.to_seconds() << "s: " << v.detail << "\n";
  }
  return out.str();
}

}  // namespace cb::check
