#include "check/fluid_invariants.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "traffic/arena.hpp"
#include "traffic/fluid.hpp"

namespace cb::check {

namespace {

/// Double-accumulation slack: one ULP per banked segment is invisible at
/// these magnitudes, so a flat byte epsilon keeps the check honest without
/// false positives on long runs.
constexpr double kLedgerEpsBytes = 16.0;

}  // namespace

void install_fluid_invariants(InvariantEngine& engine, scenario::ScaleTrafficSim& sim) {
  using When = InvariantEngine::When;
  scenario::ScaleTrafficSim* s = &sim;

  engine.add("fluid.conservation", When::Periodic, [s](InvariantEngine::Reporter& r) {
    const traffic::SessionArena& arena = s->arena();
    const int n = s->config().n_ues;
    double delivered = 0.0;
    for (traffic::SessionId id = 0; id < static_cast<traffic::SessionId>(n); ++id) {
      const double d = arena.delivered_bytes(id);
      const double demand = arena.demand_bytes(id);
      if (d > demand + 0.5) {
        r.fail("session " + std::to_string(id) + " delivered " + std::to_string(d) +
               " > demand " + std::to_string(demand));
      }
      delivered += d;
    }
    const double ledger =
        (s->fluid() ? s->fluid()->segment_bytes() : 0.0) + s->packet_ledger_bytes();
    if (std::abs(delivered - ledger) > kLedgerEpsBytes) {
      r.fail("delivered " + std::to_string(delivered) + " != segment+packet ledger " +
             std::to_string(ledger));
    }
    if (s->fluid() && s->fluid()->negative_residuals() != 0) {
      r.fail(std::to_string(s->fluid()->negative_residuals()) +
             " negative residual observations");
    }
  });

  engine.add("fluid.allocation", When::Periodic, [s](InvariantEngine::Reporter& r) {
    const traffic::FluidEngine* eng = s->fluid();
    if (!eng) return;  // pure packet mode has no allocator to check
    const traffic::SessionArena& arena = s->arena();
    const int n = s->config().n_ues;
    std::vector<double> cell_sum(eng->n_cells(), 0.0);
    std::size_t fluid_count = 0;
    for (traffic::SessionId id = 0; id < static_cast<traffic::SessionId>(n); ++id) {
      const double rate = arena.rate_bps(id);
      if (rate < 0.0) {
        r.fail("session " + std::to_string(id) + " has negative rate " + std::to_string(rate));
      }
      const traffic::FlowMode mode = arena.mode(id);
      if (mode == traffic::FlowMode::Fluid) ++fluid_count;
      // Fluid flows and packet ghosts both hold shares of their cell.
      if (mode == traffic::FlowMode::Fluid || mode == traffic::FlowMode::Packet) {
        cell_sum[arena.cell(id)] += rate;
      }
    }
    for (std::size_t c = 0; c < cell_sum.size(); ++c) {
      const double cap = eng->cell_capacity(c);
      if (cell_sum[c] > cap * (1.0 + 1e-9) + 1.0) {
        r.fail("cell " + std::to_string(c) + " oversubscribed: " + std::to_string(cell_sum[c]) +
               " bps allocated > capacity " + std::to_string(cap));
      }
    }
    if (fluid_count != eng->active_fluid_flows()) {
      r.fail("engine counts " + std::to_string(eng->active_fluid_flows()) +
             " active fluid flows, arena shows " + std::to_string(fluid_count));
    }
  });

  engine.add("fluid.billing", When::EndOnly, [s](InvariantEngine::Reporter& r) {
    const traffic::SessionArena& arena = s->arena();
    const double price = s->config().price_per_gb_usd / 1e9;
    const int n = s->config().n_ues;
    for (traffic::SessionId id = 0; id < static_cast<traffic::SessionId>(n); ++id) {
      if (arena.billed_bytes(id) > arena.delivered_bytes(id) + 0.5) {
        r.fail("session " + std::to_string(id) + " billed for " +
               std::to_string(arena.billed_bytes(id)) + " bytes but delivered " +
               std::to_string(arena.delivered_bytes(id)));
      }
      const double expect_usd = arena.billed_bytes(id) * price;
      if (std::abs(arena.billed_usd(id) - expect_usd) > 1e-6) {
        r.fail("session " + std::to_string(id) + " billed $" +
               std::to_string(arena.billed_usd(id)) + ", ledger implies $" +
               std::to_string(expect_usd));
      }
    }
  });
}

}  // namespace cb::check
