// Minimal JSON value model + parser/serializer for the checker's repro
// files and the bench fault-log replay path. Deliberately small: objects,
// arrays, strings, numbers, booleans, null — no comments, no surrogate-pair
// escapes beyond \uXXXX pass-through, doubles printed with enough digits to
// round-trip. Not a general-purpose library; the obs layer keeps its own
// streaming serializer for snapshots.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace cb::check {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps object keys sorted so serialization is byte-deterministic.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() : type_(Type::Null) {}
  JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  JsonValue(double n) : type_(Type::Number), num_(n) {}
  JsonValue(int n) : type_(Type::Number), num_(n) {}
  JsonValue(std::int64_t n) : type_(Type::Number), num_(static_cast<double>(n)) {}
  JsonValue(std::uint64_t n) : type_(Type::Number), num_(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(Type::String), str_(s) {}
  JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}
  JsonValue(JsonArray a) : type_(Type::Array), arr_(std::move(a)) {}
  JsonValue(JsonObject o) : type_(Type::Object), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }

  bool as_bool() const { expect(Type::Bool); return bool_; }
  double as_double() const { expect(Type::Number); return num_; }
  std::int64_t as_int() const { expect(Type::Number); return static_cast<std::int64_t>(num_); }
  std::uint64_t as_uint() const { expect(Type::Number); return static_cast<std::uint64_t>(num_); }
  const std::string& as_string() const { expect(Type::String); return str_; }
  const JsonArray& as_array() const { expect(Type::Array); return arr_; }
  const JsonObject& as_object() const { expect(Type::Object); return obj_; }

  /// Object member access; throws on missing key or non-object.
  const JsonValue& at(const std::string& key) const;
  /// Object member or fallback when the key is absent.
  const JsonValue& get(const std::string& key, const JsonValue& fallback) const;
  bool contains(const std::string& key) const;

  std::string dump(int indent = 0) const;

 private:
  void expect(Type t) const {
    if (type_ != t) throw std::runtime_error("json: wrong type access");
  }
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Parse a complete JSON document; throws std::runtime_error with a byte
/// offset on malformed input (trailing garbage included).
JsonValue json_parse(const std::string& text);

}  // namespace cb::check
