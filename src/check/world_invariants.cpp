#include "check/world_invariants.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <sstream>

namespace cb::check {

namespace {

using When = InvariantEngine::When;
using Reporter = InvariantEngine::Reporter;

}  // namespace

void install_world_invariants(InvariantEngine& engine, scenario::World& world,
                              const sim::EngineProbe* probe) {
  auto* w = &world;

  if (probe) {
    engine.add("engine.health", When::Periodic, [probe](Reporter& r) {
      if (probe->past_events != 0) {
        std::ostringstream s;
        s << probe->past_events << " event(s) popped with a timestamp in the past";
        r.fail(s.str());
      }
      if (probe->order_regressions != 0) {
        std::ostringstream s;
        s << probe->order_regressions << " non-monotone heap pop(s)";
        r.fail(s.str());
      }
    });
  }

  engine.add("session.single_bearer", When::Periodic, [w](Reporter& r) {
    std::size_t up = 0;
    for (const auto& [cell, site] : w->ran_map().sites()) {
      if (site.radio_link && site.radio_link->is_up()) ++up;
    }
    if (up > 1) {
      std::ostringstream s;
      s << up << " radio bearers up simultaneously (host-driven mobility is "
           "break-before-make: at most 1)";
      r.fail(s.str());
    }
  });

  engine.add("session.gc_horizon", When::Periodic, [w](Reporter& r) {
    const auto& cfg = w->config().btelco_config;
    // A session idle since `cutoff` has survived the inactivity timeout plus
    // two full GC sweeps plus slack — the GC is broken if one still exists.
    const Duration horizon =
        cfg.session_timeout + cfg.gc_interval * 2 + Duration::s(5);
    const TimePoint now = w->simulator().now();
    if (now.nanos() < horizon.nanos()) return;
    for (std::size_t i = 0; i < w->n_btelcos(); ++i) {
      auto* t = w->btelco(i);
      if (t->crashed()) continue;
      const std::size_t stale = t->sessions_stale_since(now - horizon);
      if (stale != 0) {
        std::ostringstream s;
        s << t->id() << ": " << stale << " session(s) idle beyond the GC horizon ("
          << horizon.to_seconds() << "s)";
        r.fail(s.str());
      }
    }
  });

  engine.add("sap.session_backed", When::Periodic, [w](Reporter& r) {
    auto* broker = w->brokerd();
    if (!broker) return;
    for (std::size_t i = 0; i < w->n_btelcos(); ++i) {
      auto* t = w->btelco(i);
      for (std::uint64_t sid : t->session_ids()) {
        if (!broker->sessions().contains(sid)) {
          std::ostringstream s;
          s << t->id() << ": installed session " << sid
            << " has no broker-issued record (no signed verdict backs it)";
          r.fail(s.str());
        }
      }
    }
  });

  engine.add("sap.nonce_unique", When::Periodic,
             [w, prev = std::make_shared<std::pair<std::size_t, std::uint64_t>>(
                     0, 0)](Reporter& r) mutable {
               auto* broker = w->brokerd();
               if (!broker) return;
               const std::size_t nonces = broker->nonces_seen();
               const std::uint64_t issued = broker->sessions_issued();
               if (nonces < issued) {
                 std::ostringstream s;
                 s << "broker issued " << issued << " sessions from only " << nonces
                   << " distinct nonces (a nonce was reused)";
                 r.fail(s.str());
               }
               if (nonces < prev->first || issued < prev->second) {
                 r.fail("nonce/session counters went backwards");
               }
               *prev = {nonces, issued};
             });

  engine.add("billing.dedup", When::Periodic, [w](Reporter& r) {
    auto* broker = w->brokerd();
    if (!broker) return;
    for (const auto& [sid, rec] : broker->sessions()) {
      if (rec.accumulations != rec.seen.size()) {
        std::ostringstream s;
        s << "session " << sid << ": " << rec.accumulations
          << " accumulations for " << rec.seen.size()
          << " distinct (period, reporter) keys — a retransmitted report was "
             "double-counted";
        r.fail(s.str());
      }
    }
  });

  engine.add("billing.conservation", When::Periodic, [w](Reporter& r) {
    auto* broker = w->brokerd();
    if (!broker) return;
    for (const auto& [sid, rec] : broker->sessions()) {
      if (rec.mismatches != 0) continue;  // flagged pairs may diverge freely
      const double telco = static_cast<double>(rec.telco_paired_bytes);
      const double ue = static_cast<double>(rec.ue_paired_bytes);
      if (std::abs(telco - ue) > rec.paired_threshold + 1e-6) {
        std::ostringstream s;
        s << "session " << sid << ": paired bytes diverge beyond tolerance "
          << "(telco=" << rec.telco_paired_bytes
          << " ue=" << rec.ue_paired_bytes
          << " tol=" << rec.paired_threshold << ") with no mismatch flagged";
        r.fail(s.str());
      }
    }
  });

  engine.add(
      "reputation.honest", When::Periodic,
      [w, prev = std::make_shared<std::map<std::string, double>>()](Reporter& r) mutable {
        auto* broker = w->brokerd();
        if (!broker) return;
        const auto& rep = broker->reputation();
        const bool honest_world = w->config().telco0_overreport == 1.0 &&
                                  w->config().ue_underreport == 1.0;
        for (std::size_t i = 0; i < w->n_btelcos(); ++i) {
          const std::string& id = w->btelco(i)->id();
          const double score = rep.telco_score(id);
          const bool clean =
              rep.mismatches(id) == 0 && rep.missing_reports(id) == 0;
          if (clean && score < 1.0 - 1e-9) {
            std::ostringstream s;
            s << id << ": score " << score
              << " dropped with no mismatch and no missing report recorded";
            r.fail(s.str());
          }
          // Monotonicity: an honest world's scores never fall (clean pairs
          // only recover; faults can delay reports, but record_missing always
          // bumps missing_reports, which clears `clean` above — so a silent
          // decrease is a reputation-accounting bug either way).
          auto it = prev->find(id);
          if (it != prev->end() && score < it->second - 1e-9 && clean && honest_world) {
            std::ostringstream s;
            s << id << ": score fell " << it->second << " -> " << score
              << " while clean and honest";
            r.fail(s.str());
          }
          (*prev)[id] = score;
        }
      });

  engine.add("transport.sanity", When::Periodic, [w](Reporter& r) {
    for (auto* stack : {w->ue_mptcp(), w->server_mptcp()}) {
      if (!stack) continue;
      const auto& c = stack->sanity();
      if (c.total() != 0) {
        std::ostringstream s;
        s << "MPTCP impossible-state counters nonzero (dead_subflow="
          << c.data_on_dead_subflow << " past_fin=" << c.data_past_fin
          << " ack_beyond_sent=" << c.ack_beyond_sent << ")";
        r.fail(s.str());
      }
    }
  });
}

}  // namespace cb::check
