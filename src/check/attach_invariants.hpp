// Attach-protocol invariants — the check-layer half of the protocol
// conformance suite (tests/test_attach_protocols.cpp drives them across
// every protocol variant).
//
//   attach.no_session_without_auth  a user-plane session implies a completed
//                                   authentication: the MNO SPGW never holds
//                                   a bearer the MME did not finish, and the
//                                   bTelco side is covered by the existing
//                                   sap.session_backed checker (a resumed
//                                   session reuses its broker-issued id, so
//                                   the record requirement still binds).
//   attach.ticket_validity          no resumption ticket is ever honoured
//                                   past its expiry, twice at the same
//                                   bTelco, or while its subscriber is on
//                                   the revocation list (reads the per-telco
//                                   TicketAudit trail).
//   attach.resume_billing           resumption never skips billing: every
//                                   audited resume maps to a broker-issued
//                                   session record, and a revoked pseudonym
//                                   holds no live session once the ack
//                                   settles (end-only: revocation is
//                                   asynchronous).
//
// Same contract as world_invariants: read-only, no RNG, no scheduling.
#pragma once

#include "check/invariant.hpp"
#include "scenario/world.hpp"

namespace cb::check {

/// Register the attach-protocol checkers against `world`. Safe for every
/// protocol variant: checkers gate themselves on what the world actually
/// built (no-op on worlds without tickets / without an EPC).
void install_attach_invariants(InvariantEngine& engine, scenario::World& world);

}  // namespace cb::check
