// The standard cross-layer invariant catalogue for scenario::World runs.
//
// Each checker is a read-only predicate over live world state, registered on
// an InvariantEngine (see invariant.hpp for the determinism contract). The
// catalogue covers every layer the paper's correctness argument leans on:
//
//   engine.health         no event pops in the past, heap pops monotone
//   session.single_bearer the UE holds at most one live radio bearer
//   session.gc_horizon    no inactive session outlives the GC horizon
//   sap.session_backed    every installed bTelco session is backed by a
//                         broker-issued record (i.e. a signed verdict)
//   sap.nonce_unique      distinct nonces >= sessions issued, both monotone
//   billing.dedup         retransmitted reports never double-accumulate
//   billing.conservation  paired UE/bTelco byte totals agree within the
//                         summed Fig.5 tolerance when no mismatch was flagged
//   reputation.honest     honest parties keep score 1.0; scores only drop
//                         when a mismatch or missing report is recorded
//   transport.sanity      MPTCP impossible-state counters stay zero
//
// Conditional invariants gate themselves on the world's own config (e.g. the
// reputation checks relax when dishonesty knobs are set), so the same
// catalogue is valid for every point the fuzzer samples.
#pragma once

#include "check/invariant.hpp"
#include "scenario/world.hpp"

namespace cb::check {

/// Register the full catalogue against `world`. If `probe` is non-null it
/// must be the one installed on the world's simulator (engine.health reads
/// it). Checkers hold raw pointers into the world: the world must outlive
/// the engine's last check.
void install_world_invariants(InvariantEngine& engine, scenario::World& world,
                              const sim::EngineProbe* probe);

}  // namespace cb::check
