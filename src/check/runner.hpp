// Execute one FuzzScenario under the full invariant catalogue.
//
// run_scenario builds a CellBricks world from the scenario description,
// binds its fault schedule (the same wiring run_chaos uses), installs the
// engine probe + invariant catalogue, drives the horizon, and returns every
// violation plus enough end-state counters to fingerprint the run. It is
// the single entry point the fuzzer, the shrinker, and the replay path all
// share — a shrunk repro re-runs through exactly the code that failed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "scenario/fuzz.hpp"

namespace cb::check {

struct RunReport {
  std::vector<Violation> violations;
  std::uint64_t checks_run = 0;
  /// End-state counters (determinism witness: same scenario, same values).
  std::uint64_t events_executed = 0;
  std::uint64_t sessions_issued = 0;
  std::uint64_t reports_ingested = 0;
  std::uint64_t pairs_compared = 0;
  std::uint64_t fault_log_entries = 0;
  bool ue_attached_at_end = false;
  // Traffic phase counters (zero when the scenario's fluid_ues is 0).
  std::uint64_t traffic_completed = 0;
  std::uint64_t traffic_rate_events = 0;
  std::uint64_t traffic_demotions = 0;
  std::uint64_t traffic_fingerprint = 0;

  bool ok() const { return violations.empty(); }
  /// FNV-1a over the counters above — cheap cross-run comparison handle.
  std::uint64_t fingerprint() const;
};

struct RunOptions {
  /// Sim-time cadence of the periodic invariant sweep.
  Duration check_cadence = Duration::s(1);
};

RunReport run_scenario(const scenario::FuzzScenario& scenario, const RunOptions& options = {});

}  // namespace cb::check
