#include "check/ran_invariants.hpp"

#include <sstream>

namespace cb::check {

namespace {

using When = InvariantEngine::When;
using Reporter = InvariantEngine::Reporter;

// FP slack: margins are stored as fl(best - serving) while the policy
// compared best > serving + hysteresis, so the stored value can round a hair
// under the threshold.
constexpr double kMarginSlack = 1e-9;

}  // namespace

void install_ran_invariants(InvariantEngine& engine, scenario::World& world) {
  auto* w = &world;

  engine.add("ran.serving_in_table", When::Periodic, [w](Reporter& r) {
    const ran::UeRadio& radio = w->radio();
    const ran::CellId serving = radio.serving_cell();
    if (serving == 0) return;  // not camped: nothing to track
    if (!radio.table_contains(serving)) {
      std::ostringstream s;
      s << "serving cell " << serving
        << " missing from the neighbor table (the measurement loop must "
           "always track the camped cell)";
      r.fail(s.str());
    }
  });

  engine.add("ran.reselection_margin", When::Periodic, [w](Reporter& r) {
    const ran::UeRadio& radio = w->radio();
    const ran::UeRadioConfig& cfg = radio.config();
    for (const ran::ReselectionEvent& e : radio.reselections()) {
      switch (e.reason) {
        case ran::ReselectReason::A3:
          if (e.margin_db < cfg.hysteresis_db - kMarginSlack) {
            std::ostringstream s;
            s << "A3 reselection " << e.from << " -> " << e.to << " at "
              << e.at.to_seconds() << "s with margin " << e.margin_db
              << " dB < hysteresis " << cfg.hysteresis_db << " dB";
            r.fail(s.str());
          }
          break;
        case ran::ReselectReason::Ttt:
          if (e.margin_db < cfg.hysteresis_db - kMarginSlack) {
            std::ostringstream s;
            s << "TTT reselection " << e.from << " -> " << e.to
              << " with margin " << e.margin_db << " dB < hysteresis "
              << cfg.hysteresis_db << " dB";
            r.fail(s.str());
          }
          if (e.held < cfg.time_to_trigger) {
            std::ostringstream s;
            s << "TTT reselection " << e.from << " -> " << e.to
              << " fired after holding only " << e.held.to_seconds()
              << "s < time-to-trigger " << cfg.time_to_trigger.to_seconds()
              << "s";
            r.fail(s.str());
          }
          break;
        case ran::ReselectReason::Rank:
          if (e.margin_db <= 0.0) {
            std::ostringstream s;
            s << "rank reselection " << e.from << " -> " << e.to
              << " with non-positive margin " << e.margin_db << " dB";
            r.fail(s.str());
          }
          break;
        case ran::ReselectReason::Acquire:
        case ran::ReselectReason::FloorLoss:
          break;  // no margin requirement: forced moves
      }
    }
  });

  engine.add("ran.cell_change_conservation", When::Periodic, [w](Reporter& r) {
    const ran::UeRadio& radio = w->radio();
    const auto& events = radio.reselections();
    if (events.size() != radio.cell_changes()) {
      std::ostringstream s;
      s << "audit log holds " << events.size() << " reselections but the radio "
        << "counted " << radio.cell_changes() << " cell changes";
      r.fail(s.str());
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].from == events[i].to) {
        std::ostringstream s;
        s << "reselection " << i << " is a self-transition (cell "
          << events[i].from << ")";
        r.fail(s.str());
      }
      if (i > 0 && events[i].from != events[i - 1].to) {
        std::ostringstream s;
        s << "reselection chain broken at event " << i << ": from "
          << events[i].from << " but the previous event landed on "
          << events[i - 1].to;
        r.fail(s.str());
      }
    }
    const std::uint64_t changes = radio.cell_changes();
    const std::uint64_t expect = changes > 0 ? changes - 1 : 0;
    if (w->handovers() != expect) {
      std::ostringstream s;
      s << "world reports " << w->handovers() << " handovers for " << changes
        << " cell changes (expected changes minus the initial acquisition = "
        << expect << ")";
      r.fail(s.str());
    }
  });
}

}  // namespace cb::check
