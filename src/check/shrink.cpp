#include "check/shrink.hpp"

#include <algorithm>
#include <stdexcept>

namespace cb::check {

namespace {

/// True when the candidate still trips the anchored invariant; records the
/// surviving violation into `witness` when it does.
class Oracle {
 public:
  Oracle(std::string anchor, const ShrinkOptions& options)
      : anchor_(std::move(anchor)), options_(options) {}

  bool fails(const scenario::FuzzScenario& candidate, Violation* witness) {
    if (runs_ >= options_.max_runs) return false;  // budget spent: reject
    ++runs_;
    const RunReport report = run_scenario(candidate, options_.run);
    for (const auto& v : report.violations) {
      if (v.invariant == anchor_) {
        if (witness) *witness = v;
        return true;
      }
    }
    return false;
  }

  std::size_t runs() const { return runs_; }
  bool budget_left() const { return runs_ < options_.max_runs; }

 private:
  std::string anchor_;
  const ShrinkOptions& options_;
  std::size_t runs_ = 0;
};

void clamp_fault_indices(scenario::FuzzScenario& s) {
  for (auto& f : s.faults) {
    // ShardKill reuses the `telco` slot as a shard index — clamp against the
    // shard count, not the tower count.
    const std::size_t limit = f.kind == scenario::FuzzFault::Kind::ShardKill
                                  ? static_cast<std::size_t>(s.broker_shards)
                                  : static_cast<std::size_t>(s.n_towers);
    if (f.telco >= limit) f.telco = limit - 1;
  }
}

/// ddmin-style pass: delete contiguous fault chunks, halving the chunk size.
bool reduce_faults(scenario::FuzzScenario& best, Oracle& oracle, Violation& witness,
                   std::size_t& accepted) {
  bool progress = false;
  std::size_t chunk = std::max<std::size_t>(1, best.faults.size() / 2);
  while (chunk >= 1 && !best.faults.empty() && oracle.budget_left()) {
    bool removed_any = false;
    for (std::size_t start = 0; start < best.faults.size() && oracle.budget_left();) {
      scenario::FuzzScenario candidate = best;
      const std::size_t end = std::min(start + chunk, candidate.faults.size());
      candidate.faults.erase(candidate.faults.begin() + static_cast<std::ptrdiff_t>(start),
                             candidate.faults.begin() + static_cast<std::ptrdiff_t>(end));
      if (oracle.fails(candidate, &witness)) {
        best = std::move(candidate);
        ++accepted;
        removed_any = progress = true;
        // Re-test the same offset: the next chunk slid into this position.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
    if (!removed_any) chunk /= 2;
  }
  return progress;
}

bool reduce_towers(scenario::FuzzScenario& best, Oracle& oracle, Violation& witness,
                   std::size_t& accepted) {
  bool progress = false;
  while (best.n_towers > 1 && oracle.budget_left()) {
    scenario::FuzzScenario candidate = best;
    candidate.n_towers = std::max(1, candidate.n_towers / 2);
    clamp_fault_indices(candidate);
    if (!oracle.fails(candidate, &witness)) {
      // Halving overshot; try the smallest single step before giving up.
      candidate = best;
      candidate.n_towers -= 1;
      clamp_fault_indices(candidate);
      if (!oracle.fails(candidate, &witness)) break;
    }
    best = std::move(candidate);
    ++accepted;
    progress = true;
  }
  return progress;
}

bool shorten_horizon(scenario::FuzzScenario& best, Oracle& oracle, Violation& witness,
                     std::size_t& accepted) {
  bool progress = false;
  // Trim to just past the fault schedule first, then halve.
  double last_fault_end = 0.0;
  for (const auto& f : best.faults) {
    last_fault_end = std::max(last_fault_end, f.start_s + f.duration_s);
  }
  const double trimmed = std::max(30.0, last_fault_end + 30.0);
  if (trimmed < best.duration_s && oracle.budget_left()) {
    scenario::FuzzScenario candidate = best;
    candidate.duration_s = trimmed;
    if (oracle.fails(candidate, &witness)) {
      best = std::move(candidate);
      ++accepted;
      progress = true;
    }
  }
  while (best.duration_s > 30.0 && oracle.budget_left()) {
    scenario::FuzzScenario candidate = best;
    candidate.duration_s = std::max(30.0, candidate.duration_s / 2.0);
    if (!oracle.fails(candidate, &witness)) break;
    best = std::move(candidate);
    ++accepted;
    progress = true;
  }
  return progress;
}

bool simplify_knobs(scenario::FuzzScenario& best, Oracle& oracle, Violation& witness,
                    std::size_t& accepted) {
  bool progress = false;
  struct Tweak {
    const char* name;
    void (*apply)(scenario::FuzzScenario&);
    bool (*applicable)(const scenario::FuzzScenario&);
  };
  static constexpr Tweak kTweaks[] = {
      {"app-off", [](scenario::FuzzScenario& s) { s.app = 0; },
       [](const scenario::FuzzScenario& s) { return s.app != 0; }},
      {"radio-loss-off", [](scenario::FuzzScenario& s) { s.radio_loss = 0.0; },
       [](const scenario::FuzzScenario& s) { return s.radio_loss != 0.0; }},
      {"honest-telco", [](scenario::FuzzScenario& s) { s.telco0_overreport = 1.0; },
       [](const scenario::FuzzScenario& s) { return s.telco0_overreport != 1.0; }},
      {"honest-ue", [](scenario::FuzzScenario& s) { s.ue_underreport = 1.0; },
       [](const scenario::FuzzScenario& s) { return s.ue_underreport != 1.0; }},
      {"policy-default", [](scenario::FuzzScenario& s) { s.unlimited_policy = false; },
       [](const scenario::FuzzScenario& s) { return s.unlimited_policy; }},
      {"fluid-off",
       [](scenario::FuzzScenario& s) {
         // Clear the mode too: with the phase off it is canonically false
         // (the repro serializer omits it), and leaving it set would make
         // the round-tripped minimal scenario compare unequal.
         s.fluid_ues = 0;
         s.fluid_hybrid = false;
       },
       [](const scenario::FuzzScenario& s) { return s.fluid_ues > 0; }},
      {"fluid-no-hybrid", [](scenario::FuzzScenario& s) { s.fluid_hybrid = false; },
       [](const scenario::FuzzScenario& s) { return s.fluid_ues > 0 && s.fluid_hybrid; }},
      {"resume-off", [](scenario::FuzzScenario& s) { s.resume_ticket = false; },
       [](const scenario::FuzzScenario& s) { return s.resume_ticket; }},
      {"fading-off",
       [](scenario::FuzzScenario& s) {
         // Quiet channel: pure path loss (the pre-measurement engine).
         // Decorrelation is canonically back at its default once sigma is 0
         // (the serializer omits both together).
         s.shadow_sigma_db = 0.0;
         s.decorrelation_m = 50.0;
         s.fast_fading = false;
       },
       [](const scenario::FuzzScenario& s) {
         return s.shadow_sigma_db != 0.0 || s.fast_fading;
       }},
      {"policy-a3",
       [](scenario::FuzzScenario& s) {
         s.reselection_policy = 0;
         s.ttt_ms = 0;
       },
       [](const scenario::FuzzScenario& s) { return s.reselection_policy != 0; }},
      {"l3-off", [](scenario::FuzzScenario& s) { s.l3_filter_k = 0; },
       [](const scenario::FuzzScenario& s) { return s.l3_filter_k != 0; }},
      {"protocol-eps",
       [](scenario::FuzzScenario& s) {
         // Collapse the protocol axis to the EPS-AKA baseline — the
         // smallest attach machinery (no broker, no tickets, two HSS
         // round-trips). Only survives when the violation is not tied to
         // the CellBricks layers, i.e. it genuinely simplifies the repro.
         s.attach_protocol = 0;
         s.resume_ticket = false;
       },
       [](const scenario::FuzzScenario& s) { return s.attach_protocol != 0; }},
      {"single-shard",
       [](scenario::FuzzScenario& s) {
         // Collapse the broker cluster; shard kills are meaningless on a
         // single broker, so drop them for a canonical minimal scenario.
         s.broker_shards = 1;
         std::erase_if(s.faults, [](const scenario::FuzzFault& f) {
           return f.kind == scenario::FuzzFault::Kind::ShardKill;
         });
       },
       [](const scenario::FuzzScenario& s) { return s.broker_shards > 1; }},
  };
  for (const auto& tweak : kTweaks) {
    if (!tweak.applicable(best) || !oracle.budget_left()) continue;
    scenario::FuzzScenario candidate = best;
    tweak.apply(candidate);
    if (oracle.fails(candidate, &witness)) {
      best = std::move(candidate);
      ++accepted;
      progress = true;
    }
  }
  return progress;
}

}  // namespace

ShrinkResult shrink(const scenario::FuzzScenario& failing, const ShrinkOptions& options) {
  // Establish the anchor from a fresh run of the input.
  const RunReport initial = run_scenario(failing, options.run);
  if (initial.ok()) {
    throw std::invalid_argument("shrink: scenario does not violate any invariant");
  }

  ShrinkResult result;
  result.anchor = initial.violations.front().invariant;
  result.witness = initial.violations.front();
  result.minimal = failing;

  Oracle oracle(result.anchor, options);
  bool progress = true;
  while (progress && oracle.budget_left()) {
    progress = false;
    progress |= reduce_faults(result.minimal, oracle, result.witness,
                              result.candidates_accepted);
    progress |= reduce_towers(result.minimal, oracle, result.witness,
                              result.candidates_accepted);
    progress |= shorten_horizon(result.minimal, oracle, result.witness,
                                result.candidates_accepted);
    progress |= simplify_knobs(result.minimal, oracle, result.witness,
                               result.candidates_accepted);
  }
  result.candidates_tried = oracle.runs();
  return result;
}

}  // namespace cb::check
