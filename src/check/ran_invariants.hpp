// Measurement-layer invariant catalogue for the UE radio pipeline.
//
// The UeRadio keeps an audit log of every reselection (reason, filtered
// margin, TTT hold time) plus the live L3 neighbor table; these checkers
// cross-examine that evidence against the configured policy:
//
//   ran.serving_in_table        whenever the UE is camped, the serving cell
//                               has a row in the neighbor table (the floor
//                               rule always tracks it)
//   ran.reselection_margin      every A3 reselection shows margin >
//                               hysteresis; every TTT reselection also shows
//                               held >= time_to_trigger — no reselection
//                               without margin-over-TTT
//   ran.cell_change_conservation audit-log length == cell_changes(), the
//                               from/to chain is contiguous, and the world's
//                               handover count is consistent with it
//
// Like the rest of the catalogue these are read-only and draw no randomness,
// so arming them never perturbs the chaos fingerprints.
#pragma once

#include "check/invariant.hpp"
#include "scenario/world.hpp"

namespace cb::check {

void install_ran_invariants(InvariantEngine& engine, scenario::World& world);

}  // namespace cb::check
