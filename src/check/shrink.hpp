// Deterministic scenario shrinking (delta debugging over FuzzScenario).
//
// Given a failing scenario, shrink() greedily searches for a smaller one
// that still violates the SAME invariant (the first one the original run
// tripped — anchoring on the invariant name keeps the search from wandering
// onto a different bug). Passes, applied to a fixpoint in a fixed order:
//
//   1. fault-list reduction — ddmin-style: try deleting contiguous chunks,
//      halving the chunk size down to single faults;
//   2. tower reduction — halve n_towers toward 1 (fault telco indices are
//      clamped into the surviving range);
//   3. horizon shortening — halve duration_s, and try trimming to just past
//      the last remaining fault;
//   4. app simplification — drop the app mix to mobility-only;
//   5. knob canonicalization — reset radio loss and dishonesty to defaults.
//
// Every candidate is re-executed with run_scenario under the same seed and
// cadence, so acceptance is exact, and the whole search is deterministic:
// same input scenario -> same minimal repro, every time.
#pragma once

#include <cstddef>
#include <string>

#include "check/runner.hpp"
#include "scenario/fuzz.hpp"

namespace cb::check {

struct ShrinkResult {
  scenario::FuzzScenario minimal;
  /// The violation the minimal scenario still produces.
  Violation witness;
  /// Invariant name the search was anchored on.
  std::string anchor;
  std::size_t candidates_tried = 0;
  std::size_t candidates_accepted = 0;
};

struct ShrinkOptions {
  /// Upper bound on candidate re-executions (each is a full sim run).
  std::size_t max_runs = 200;
  RunOptions run = {};
};

/// `failing` must violate at least one invariant under `options.run` (the
/// caller just observed it do so); throws std::invalid_argument otherwise.
ShrinkResult shrink(const scenario::FuzzScenario& failing, const ShrinkOptions& options = {});

}  // namespace cb::check
