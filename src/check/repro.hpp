// Self-contained repro files for fuzzer-found invariant violations.
//
// A repro document carries the (shrunk) FuzzScenario, the violated
// invariant with its evidence string, and the exact CLI line that replays
// it — everything a developer needs to reproduce the failure with zero
// extra context. scenario_from_json accepts both a full repro document and
// a bare scenario object, so hand-edited scenarios replay too.
#pragma once

#include <string>

#include "check/json.hpp"
#include "check/shrink.hpp"
#include "scenario/fuzz.hpp"

namespace cb::check {

JsonValue scenario_to_json(const scenario::FuzzScenario& s);
scenario::FuzzScenario scenario_from_json(const JsonValue& v);

/// Full repro document (pretty-printed JSON) for a shrunk failure.
/// `replay_path` is the file name the caller will write it to (embedded in
/// the replay command line).
std::string write_repro(const ShrinkResult& result, const RunOptions& run_options,
                        const std::string& replay_path);

/// Parse a repro document or bare scenario from JSON text.
scenario::FuzzScenario load_repro(const std::string& text);

/// The exact command that replays a repro file.
std::string replay_command(const std::string& path);

}  // namespace cb::check
