// Settlement-log invariants for sharded-broker worlds (DESIGN.md §12).
//
// Installed only when the world runs a BrokerCluster (broker_shards > 1):
//
//   broker.settlement_prefix_agreement — every shard's applied prefix of
//       every stream chain-hashes identically to the observer fold's copy
//       (replicas may lag, but can never diverge in content).
//   broker.settlement_verdict_unique   — no (session, period) pair ever
//       received two verdicts with conflicting content, on any shard's fold
//       or the observer's (failover double-authoring must be idempotent).
//   broker.settlement_no_verdict_loss  — once the cluster has been
//       undisturbed (no shard crashed/recovering) for a settling window,
//       no report sits unpaired past the pair timeout without a verdict:
//       failover may delay verdicts, never lose them.
#pragma once

#include "check/invariant.hpp"
#include "scenario/world.hpp"

namespace cb::check {

void install_settlement_invariants(InvariantEngine& engine, scenario::World& world);

}  // namespace cb::check
