// Invariant catalogue for the hybrid fluid/packet traffic engine
// (DESIGN.md §11), checked live against a scenario::ScaleTrafficSim:
//
//   fluid.conservation  every delivered byte is exactly one ledger entry —
//                       Σ arena delivered == fluid segment bytes + packet
//                       lane bytes at every check instant (the two sides are
//                       updated together, so no accrual sweep is needed and
//                       the checker stays read-only); negative-residual
//                       observations stay zero; per-flow delivered never
//                       exceeds demand.
//   fluid.allocation    allocated rates are non-negative and each cell's sum
//                       of shares stays within its capacity (the water-fill
//                       never oversubscribes); the engine's active-flow
//                       count matches the arena's Fluid-mode population.
//   fluid.billing       billed bytes trail delivered bytes (the sweep only
//                       bills what the ledger shows) and billed dollars
//                       equal billed bytes x price (end-only: totals settle
//                       at the final sweep).
//
// Same read-only/no-RNG/no-scheduling contract as world_invariants.
#pragma once

#include "check/invariant.hpp"
#include "scenario/scale_traffic.hpp"

namespace cb::check {

/// Register the fluid catalogue against a built (started or not) sim. The
/// sim must outlive the engine's last check.
void install_fluid_invariants(InvariantEngine& engine, scenario::ScaleTrafficSim& sim);

}  // namespace cb::check
