#include "check/repro.hpp"

#include <stdexcept>

namespace cb::check {

namespace {

const char* fault_kind_name(scenario::FuzzFault::Kind kind) {
  switch (kind) {
    case scenario::FuzzFault::Kind::BrokerOutage: return "broker_outage";
    case scenario::FuzzFault::Kind::TelcoCrash: return "telco_crash";
    case scenario::FuzzFault::Kind::RadioDrop: return "radio_drop";
    case scenario::FuzzFault::Kind::WanDegrade: return "wan_degrade";
    case scenario::FuzzFault::Kind::ShardKill: return "shard_kill";
  }
  return "unknown";
}

scenario::FuzzFault::Kind fault_kind_from(const std::string& name) {
  if (name == "broker_outage") return scenario::FuzzFault::Kind::BrokerOutage;
  if (name == "telco_crash") return scenario::FuzzFault::Kind::TelcoCrash;
  if (name == "radio_drop") return scenario::FuzzFault::Kind::RadioDrop;
  if (name == "wan_degrade") return scenario::FuzzFault::Kind::WanDegrade;
  if (name == "shard_kill") return scenario::FuzzFault::Kind::ShardKill;
  throw std::runtime_error("repro: unknown fault kind '" + name + "'");
}

}  // namespace

JsonValue scenario_to_json(const scenario::FuzzScenario& s) {
  JsonArray faults;
  for (const auto& f : s.faults) {
    JsonObject jf;
    jf["kind"] = fault_kind_name(f.kind);
    jf["start_s"] = f.start_s;
    if (f.kind != scenario::FuzzFault::Kind::RadioDrop) jf["duration_s"] = f.duration_s;
    if (f.kind == scenario::FuzzFault::Kind::TelcoCrash ||
        f.kind == scenario::FuzzFault::Kind::ShardKill) {
      jf["telco"] = f.telco;  // ShardKill: the shard index rides this slot
    }
    if (f.kind == scenario::FuzzFault::Kind::WanDegrade) {
      jf["loss"] = f.loss;
      jf["corrupt"] = f.corrupt;
    }
    faults.emplace_back(std::move(jf));
  }
  JsonObject o;
  o["seed"] = s.seed;
  o["n_towers"] = s.n_towers;
  o["night"] = s.night;
  o["speed_mps"] = s.speed_mps;
  o["tower_spacing_m"] = s.tower_spacing_m;
  o["duration_s"] = s.duration_s;
  o["radio_loss"] = s.radio_loss;
  o["unlimited_policy"] = s.unlimited_policy;
  o["report_interval_s"] = s.report_interval_s;
  o["telco0_overreport"] = s.telco0_overreport;
  o["ue_underreport"] = s.ue_underreport;
  o["app"] = s.app;
  if (s.fluid_ues > 0) {
    o["fluid_ues"] = s.fluid_ues;
    o["fluid_hybrid"] = s.fluid_hybrid;
  }
  if (s.broker_shards > 1) o["broker_shards"] = s.broker_shards;
  // Emitted only off-default so pre-existing repro files stay byte-stable.
  if (s.attach_protocol != 2) o["attach_protocol"] = s.attach_protocol;
  if (s.resume_ticket) o["resume_ticket"] = true;
  if (s.shadow_sigma_db != 0.0) {
    o["shadow_sigma_db"] = s.shadow_sigma_db;
    o["decorrelation_m"] = s.decorrelation_m;
  }
  if (s.fast_fading) o["fast_fading"] = true;
  if (s.reselection_policy != 0) o["reselection_policy"] = s.reselection_policy;
  if (s.ttt_ms != 0) o["ttt_ms"] = s.ttt_ms;
  if (s.l3_filter_k != 0) o["l3_filter_k"] = s.l3_filter_k;
  o["faults"] = std::move(faults);
  if (s.plant_dedup_bug) o["plant_dedup_bug"] = true;
  return JsonValue(std::move(o));
}

scenario::FuzzScenario scenario_from_json(const JsonValue& v) {
  scenario::FuzzScenario s;
  s.seed = v.at("seed").as_uint();
  s.n_towers = static_cast<int>(v.at("n_towers").as_int());
  s.night = v.at("night").as_bool();
  s.speed_mps = v.at("speed_mps").as_double();
  s.tower_spacing_m = v.at("tower_spacing_m").as_double();
  s.duration_s = v.at("duration_s").as_double();
  s.radio_loss = v.get("radio_loss", JsonValue(0.0)).as_double();
  s.unlimited_policy = v.get("unlimited_policy", JsonValue(false)).as_bool();
  s.report_interval_s = v.get("report_interval_s", JsonValue(10.0)).as_double();
  s.telco0_overreport = v.get("telco0_overreport", JsonValue(1.0)).as_double();
  s.ue_underreport = v.get("ue_underreport", JsonValue(1.0)).as_double();
  s.app = static_cast<int>(v.get("app", JsonValue(0)).as_int());
  s.fluid_ues = static_cast<int>(v.get("fluid_ues", JsonValue(0)).as_int());
  s.fluid_hybrid = v.get("fluid_hybrid", JsonValue(false)).as_bool();
  s.broker_shards = static_cast<int>(v.get("broker_shards", JsonValue(1)).as_int());
  if (s.broker_shards < 1) throw std::runtime_error("repro: broker_shards must be >= 1");
  s.attach_protocol = static_cast<int>(v.get("attach_protocol", JsonValue(2)).as_int());
  if (s.attach_protocol < 0 || s.attach_protocol > 2) {
    throw std::runtime_error("repro: attach_protocol must be 0 (eps_aka), 1 (5g_aka) or 2 (sap)");
  }
  s.resume_ticket = v.get("resume_ticket", JsonValue(false)).as_bool();
  s.shadow_sigma_db = v.get("shadow_sigma_db", JsonValue(0.0)).as_double();
  s.decorrelation_m = v.get("decorrelation_m", JsonValue(50.0)).as_double();
  s.fast_fading = v.get("fast_fading", JsonValue(false)).as_bool();
  s.reselection_policy =
      static_cast<int>(v.get("reselection_policy", JsonValue(0)).as_int());
  if (s.reselection_policy < 0 || s.reselection_policy > 2) {
    throw std::runtime_error(
        "repro: reselection_policy must be 0 (a3), 1 (a3_ttt) or 2 (rank)");
  }
  s.ttt_ms = static_cast<int>(v.get("ttt_ms", JsonValue(0)).as_int());
  s.l3_filter_k = static_cast<int>(v.get("l3_filter_k", JsonValue(0)).as_int());
  s.plant_dedup_bug = v.get("plant_dedup_bug", JsonValue(false)).as_bool();
  if (s.n_towers < 1) throw std::runtime_error("repro: n_towers must be >= 1");
  s.faults.clear();
  for (const auto& jf : v.get("faults", JsonValue(JsonArray{})).as_array()) {
    scenario::FuzzFault f;
    f.kind = fault_kind_from(jf.at("kind").as_string());
    f.start_s = jf.at("start_s").as_double();
    f.duration_s = jf.get("duration_s", JsonValue(0.0)).as_double();
    f.telco = jf.get("telco", JsonValue(0)).as_uint();
    f.loss = jf.get("loss", JsonValue(0.0)).as_double();
    f.corrupt = jf.get("corrupt", JsonValue(0.0)).as_double();
    s.faults.push_back(f);
  }
  return s;
}

std::string write_repro(const ShrinkResult& result, const RunOptions& run_options,
                        const std::string& replay_path) {
  JsonObject violation;
  violation["invariant"] = result.witness.invariant;
  violation["at_s"] = result.witness.at.to_seconds();
  violation["detail"] = result.witness.detail;

  JsonObject shrinking;
  shrinking["candidates_tried"] = result.candidates_tried;
  shrinking["candidates_accepted"] = result.candidates_accepted;

  JsonObject doc;
  doc["format"] = "cbfuzz-repro-v1";
  doc["violation"] = JsonValue(std::move(violation));
  doc["scenario"] = scenario_to_json(result.minimal);
  doc["check_cadence_s"] = run_options.check_cadence.to_seconds();
  doc["shrinking"] = JsonValue(std::move(shrinking));
  doc["replay"] = replay_command(replay_path);
  return JsonValue(std::move(doc)).dump(2);
}

scenario::FuzzScenario load_repro(const std::string& text) {
  const JsonValue doc = json_parse(text);
  if (doc.contains("scenario")) return scenario_from_json(doc.at("scenario"));
  return scenario_from_json(doc);
}

std::string replay_command(const std::string& path) { return "cbfuzz --replay " + path; }

}  // namespace cb::check
