#include "check/settlement_invariants.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

namespace cb::check {

namespace {

using When = InvariantEngine::When;
using Reporter = InvariantEngine::Reporter;

}  // namespace

void install_settlement_invariants(InvariantEngine& engine, scenario::World& world) {
  auto* w = &world;

  engine.add("broker.settlement_prefix_agreement", When::Periodic, [w](Reporter& r) {
    auto* cluster = w->broker_cluster();
    if (!cluster) return;
    const auto& truth = cluster->observer_log();
    for (std::size_t i = 0; i < cluster->n_shards(); ++i) {
      const auto& shard = cluster->shard(i);
      if (shard.crashed()) continue;  // log wiped; trivially consistent
      const auto& log = shard.log();
      const std::size_t n_streams = std::max(log.n_streams(), truth.n_streams());
      for (std::size_t s = 0; s < n_streams; ++s) {
        const std::uint64_t common = std::min(log.applied_len(s), truth.applied_len(s));
        if (log.chain_hash_at(s, common) != truth.chain_hash_at(s, common)) {
          std::ostringstream msg;
          msg << "shard " << i << " stream " << s << ": applied prefix of length "
              << common << " chain-hashes differently from the authored entries "
              << "(replica content forked)";
          r.fail(msg.str());
        }
      }
    }
  });

  engine.add("broker.settlement_verdict_unique", When::Periodic, [w](Reporter& r) {
    auto* cluster = w->broker_cluster();
    if (!cluster) return;
    auto check_fold = [&r](const cellbricks::SettlementState& fold, const std::string& who) {
      if (fold.verdict_conflicts() != 0) {
        std::ostringstream msg;
        msg << who << ": " << fold.verdict_conflicts()
            << " verdict(s) replayed with CONFLICTING content for an already-"
               "decided (session, period) pair";
        r.fail(msg.str());
      }
    };
    check_fold(cluster->observer(), "observer fold");
    for (std::size_t i = 0; i < cluster->n_shards(); ++i) {
      if (cluster->shard(i).crashed()) continue;
      check_fold(cluster->shard(i).fold(), "shard " + std::to_string(i));
    }
  });

  // Verdict loss: judged against the observer fold (which survives crashes)
  // and anchored to the last instant the cluster was disturbed — while a
  // shard is down or catching up, verdicts are allowed to be late, never
  // after the takeover has had a full settling window to re-drive them.
  engine.add(
      "broker.settlement_no_verdict_loss", When::Periodic,
      [w, last_disturbed = std::make_shared<TimePoint>()](Reporter& r) mutable {
        auto* cluster = w->broker_cluster();
        if (!cluster) return;
        const TimePoint now = w->simulator().now();
        bool disturbed = false;
        for (std::size_t i = 0; i < cluster->n_shards(); ++i) {
          if (cluster->shard(i).crashed() || cluster->shard(i).recovering()) disturbed = true;
        }
        if (disturbed) {
          *last_disturbed = now;
          return;
        }
        const auto& cfg = cluster->config();
        // Detection + takeover + one full sweep cycle, plus slack.
        const Duration settle = cfg.heartbeat_interval * (cfg.miss_threshold + 1) +
                                cfg.broker.gc_interval * 2 + Duration::s(5);
        if (now - *last_disturbed < settle) return;
        const Duration horizon = cfg.broker.pair_timeout + settle;
        for (const auto& [key, pending] : cluster->observer().pending()) {
          const auto& [sid, period, side] = key;
          if (cluster->observer().pair_decided(sid, period)) continue;
          if (now - pending.received_at <= horizon) continue;
          std::ostringstream msg;
          msg << "session " << sid << " period " << period << " side " << side
              << ": report ingested at " << pending.received_at.to_seconds()
              << "s still has no verdict at " << now.to_seconds()
              << "s (pair timeout " << cfg.broker.pair_timeout.to_seconds()
              << "s, cluster undisturbed since " << last_disturbed->to_seconds()
              << "s) — a billing verdict was lost";
          r.fail(msg.str());
        }
      });
}

}  // namespace cb::check
