// JSON round-trip for drive-test traces (format "cb-drivetest-v1").
//
// Lives in src/check so the ran library stays JSON-free. The serializer
// prints doubles with enough digits to round-trip exactly (see json.cpp), so
// a committed fixture replays the recorded positions and RSRP values
// bit-for-bit — the property the trace round-trip tests pin.
#pragma once

#include <string>

#include "check/json.hpp"
#include "ran/drive_trace.hpp"

namespace cb::check {

JsonValue trace_to_json(const ran::DriveTestTrace& trace);
ran::DriveTestTrace trace_from_json(const JsonValue& v);

/// Convenience wrappers: full document with the format tag.
std::string write_trace(const ran::DriveTestTrace& trace);
ran::DriveTestTrace load_trace(const std::string& text);

}  // namespace cb::check
