#include "check/runner.hpp"

#include <algorithm>
#include <memory>

#include "apps/iperf.hpp"
#include "apps/ping.hpp"
#include "check/attach_invariants.hpp"
#include "check/fluid_invariants.hpp"
#include "check/ran_invariants.hpp"
#include "check/settlement_invariants.hpp"
#include "check/world_invariants.hpp"
#include "scenario/scale_traffic.hpp"
#include "scenario/world.hpp"
#include "sim/fault.hpp"

namespace cb::check {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

scenario::WorldConfig world_config(const scenario::FuzzScenario& s) {
  scenario::WorldConfig w;
  w.arch = scenario::Architecture::CellBricks;
  // The protocol axis overrides the architecture (EPC protocols build the
  // MNO world); SapResume degrades to Sap inside World on sharded brokers.
  switch (s.attach_protocol) {
    case 0: w.protocol = scenario::AttachProtocol::EpsAka; break;
    case 1: w.protocol = scenario::AttachProtocol::Aka5g; break;
    default:
      w.protocol = s.resume_ticket ? scenario::AttachProtocol::SapResume
                                   : scenario::AttachProtocol::Sap;
      break;
  }
  w.route = scenario::RouteSpec{"Fuzz", s.night, s.speed_mps, s.tower_spacing_m,
                                s.night ? ran::RatePolicy::night() : ran::RatePolicy::day()};
  w.seed = s.seed;
  w.n_towers = s.n_towers;
  w.radio_loss = s.radio_loss;
  w.unlimited_policy = s.unlimited_policy;
  w.report_interval = Duration::seconds(s.report_interval_s);
  w.telco0_overreport = s.telco0_overreport;
  w.ue_underreport = s.ue_underreport;
  w.broker_config.test_skip_report_dedup = s.plant_dedup_bug;
  w.broker_shards = s.broker_shards;
  // Measurement axis: channel noise + policy (radio seed derives from the
  // world seed inside World).
  w.radio_config.channel.shadow_sigma_db = s.shadow_sigma_db;
  w.radio_config.channel.decorrelation_m = s.decorrelation_m;
  w.radio_config.channel.fast_fading = s.fast_fading;
  w.radio_config.policy = static_cast<ran::ReselectionPolicyKind>(s.reselection_policy);
  w.radio_config.time_to_trigger = Duration::ms(s.ttt_ms);
  w.radio_config.l3_filter_k = s.l3_filter_k;
  return w;
}

sim::FaultPlan bind_faults(const scenario::FuzzScenario& s, scenario::World& world) {
  sim::FaultPlan plan;
  for (const auto& f : s.faults) {
    const TimePoint start = TimePoint::zero() + Duration::seconds(f.start_s);
    const Duration dur = Duration::seconds(f.duration_s);
    switch (f.kind) {
      case scenario::FuzzFault::Kind::BrokerOutage:
        plan.window(
            "broker-outage", start, dur,
            [&world] { world.cloud_node()->set_up(false); },
            [&world] { world.cloud_node()->set_up(true); });
        break;
      case scenario::FuzzFault::Kind::TelcoCrash: {
        if (world.n_btelcos() == 0) break;  // MNO world: no bTelco to crash
        // Clamp: the sampler draws the index before shrinking drops towers.
        const std::size_t i = f.telco < world.n_btelcos() ? f.telco : world.n_btelcos() - 1;
        plan.window(
            "crash:btelco-" + std::to_string(i), start, dur,
            [&world, i] { world.btelco(i)->crash(); },
            [&world, i] { world.btelco(i)->restart(); });
        break;
      }
      case scenario::FuzzFault::Kind::RadioDrop:
        plan.at("radio-drop", start, [&world] {
          // The serving cell lives on the agent (CellBricks) or NAS (MNO).
          const ran::CellId cell = world.ue_agent() != nullptr
                                       ? world.ue_agent()->serving_cell()
                                       : world.ue_nas()->serving_cell();
          if (cell != 0) world.ran_map().site(cell).radio_link->set_up(false);
        });
        break;
      case scenario::FuzzFault::Kind::ShardKill: {
        if (world.broker_cluster() == nullptr) break;  // single-broker world
        const std::size_t i =
            std::min(f.telco, world.broker_cluster()->n_shards() - 1);
        plan.window(
            "kill:broker-shard-" + std::to_string(i), start, dur,
            [&world, i] { world.broker_cluster()->crash_shard(i); },
            [&world, i] { world.broker_cluster()->restart_shard(i); });
        break;
      }
      case scenario::FuzzFault::Kind::WanDegrade: {
        auto apply = [&world](double loss, double corrupt) {
          for (std::size_t i = 0; i < world.n_cloud_links(); ++i) {
            net::Link* link = world.cloud_link(i);
            for (net::Node* end : {link->endpoint_a(), link->endpoint_b()}) {
              net::LinkParams p = link->params(end);
              p.loss = loss;
              p.corrupt = corrupt;
              link->set_params(end, p);
            }
          }
        };
        plan.window(
            "wan-degrade", start, dur,
            [apply, loss = f.loss, corrupt = f.corrupt] { apply(loss, corrupt); },
            [apply] { apply(0.0, 0.0); });
        break;
      }
    }
  }
  return plan;
}

}  // namespace

std::uint64_t RunReport::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, events_executed);
  fnv_mix(h, sessions_issued);
  fnv_mix(h, reports_ingested);
  fnv_mix(h, pairs_compared);
  fnv_mix(h, fault_log_entries);
  fnv_mix(h, ue_attached_at_end ? 1 : 0);
  fnv_mix(h, traffic_completed);
  fnv_mix(h, traffic_rate_events);
  fnv_mix(h, traffic_demotions);
  fnv_mix(h, traffic_fingerprint);
  fnv_mix(h, static_cast<std::uint64_t>(violations.size()));
  return h;
}

RunReport run_scenario(const scenario::FuzzScenario& s, const RunOptions& options) {
  scenario::World world(world_config(s));
  sim::Simulator& sim = world.simulator();

  sim::EngineProbe probe;
  sim.set_probe(&probe);

  InvariantEngine engine;
  install_world_invariants(engine, world, &probe);
  install_attach_invariants(engine, world);
  install_ran_invariants(engine, world);
  if (world.broker_cluster() != nullptr) {
    install_settlement_invariants(engine, world);
  }

  const TimePoint horizon = TimePoint::zero() + Duration::seconds(s.duration_s);
  engine.arm(sim, options.check_cadence, horizon);

  sim::ChaosController chaos(sim, bind_faults(s, world));
  chaos.arm();

  // App mix. Servers must exist before the client's SYN; the download client
  // connects after start() so its subflow rides the first attach.
  std::unique_ptr<apps::IperfPushServer> dl_server;
  std::unique_ptr<apps::IperfDownloadClient> dl_client;
  std::unique_ptr<apps::PingServer> ping_server;
  std::unique_ptr<apps::PingClient> ping_client;
  const bool want_download = s.app == 1 || s.app == 3;
  const bool want_ping = s.app == 2 || s.app == 3;
  if (want_download) {
    dl_server = std::make_unique<apps::IperfPushServer>(world.server_transport(), 5001, sim,
                                                        Duration::seconds(s.duration_s));
  }
  if (want_ping) {
    ping_server = std::make_unique<apps::PingServer>(*world.server_node(), 7);
    ping_client =
        std::make_unique<apps::PingClient>(*world.ue_node(), net::EndPoint{world.server_addr(), 7});
  }
  world.start();
  if (want_download) {
    dl_client = std::make_unique<apps::IperfDownloadClient>(
        world.ue_transport(), net::EndPoint{world.server_addr(), 5001}, sim);
  }

  sim.run_until(horizon);
  engine.finalize(sim.now());
  sim.set_probe(nullptr);

  RunReport report;
  report.violations = engine.violations();
  report.checks_run = engine.checks_run();
  report.events_executed = sim.events_executed();
  report.sessions_issued = world.broker_sessions_issued();
  report.reports_ingested = world.broker_reports_ingested();
  report.pairs_compared = world.broker_pairs_compared();
  report.fault_log_entries = chaos.log().size();
  report.ue_attached_at_end = world.ue_agent() != nullptr ? world.ue_agent()->attached()
                                                          : world.ue_nas()->attached();

  // Traffic phase: an independent simulator running the hybrid fluid/packet
  // engine under its own invariant catalogue. Kept separate from the world
  // run so the world's chaos fingerprints are untouched by the knob.
  if (s.fluid_ues > 0) {
    scenario::ScaleTrafficConfig tc;
    tc.mode = s.fluid_hybrid ? scenario::TrafficMode::Hybrid : scenario::TrafficMode::Fluid;
    tc.n_ues = s.fluid_ues;
    tc.n_cells = std::max(1, s.fluid_ues / 16);
    tc.seed = s.seed;
    tc.night = s.night;
    tc.mean_flow_mbytes = 2.0;
    tc.start_window_s = 5.0;
    tc.horizon_s = 600.0;
    tc.mobility_interval_s = 20.0;
    tc.shaper_resample_s = s.report_interval_s;
    tc.report_interval_s = s.report_interval_s;
    if (s.fluid_hybrid) {
      tc.fault_start_s = 5.0;
      tc.fault_duration_s = 10.0;
    }
    scenario::ScaleTrafficSim traffic(tc);
    InvariantEngine fluid_engine;
    install_fluid_invariants(fluid_engine, traffic);
    traffic.start();
    const TimePoint traffic_horizon = TimePoint::zero() + Duration::seconds(tc.horizon_s);
    fluid_engine.arm(traffic.simulator(), options.check_cadence, traffic_horizon);
    traffic.simulator().run_until(traffic_horizon);
    fluid_engine.finalize(traffic.simulator().now());
    const scenario::ScaleTrafficResult tr = traffic.collect();

    report.violations.insert(report.violations.end(), fluid_engine.violations().begin(),
                             fluid_engine.violations().end());
    report.checks_run += fluid_engine.checks_run();
    report.traffic_completed = static_cast<std::uint64_t>(tr.completed);
    report.traffic_rate_events = tr.rate_events;
    report.traffic_demotions = tr.demotions;
    report.traffic_fingerprint = tr.fingerprint();
  }
  return report;
}

}  // namespace cb::check
