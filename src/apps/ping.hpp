// UDP echo (ping): RTT percentiles for Table 1's "Ping: p50" column.
#pragma once

#include <unordered_map>

#include "common/stats.hpp"
#include "net/node.hpp"

namespace cb::apps {

/// Echo responder: returns every datagram to its source.
class PingServer {
 public:
  PingServer(net::Node& node, std::uint16_t port);

 private:
  net::Node& node_;
  std::uint16_t port_;
};

/// Periodic echo requester. Tolerates the source address changing between
/// probes (each probe uses the node's current address), so it keeps working
/// across CellBricks re-attachments.
class PingClient {
 public:
  PingClient(net::Node& node, net::EndPoint server, Duration interval = Duration::s(1),
             Duration timeout = Duration::s(5));
  ~PingClient();

  void start();
  void stop();

  const Summary& rtts_ms() const { return rtts_; }
  std::uint64_t sent() const { return seq_; }
  std::uint64_t lost() const { return lost_; }

 private:
  void probe();

  net::Node& node_;
  net::EndPoint server_;
  Duration interval_;
  Duration timeout_;
  std::uint16_t port_;
  std::uint64_t seq_ = 0;
  std::uint64_t lost_ = 0;
  Summary rtts_;
  std::unordered_map<std::uint64_t, TimePoint> in_flight_;
  sim::EventHandle timer_;
  bool running_ = false;
};

}  // namespace cb::apps
