// VoIP over UDP/RTP with E-model MOS scoring — Table 1's "VoIP: MOS".
//
// A CBR voice stream (20 ms frames) flows in both directions. Since RTP
// does not ride TCP/MPTCP, CellBricks handles IP changes at L7 exactly as
// the paper does (§6.2(iv)): the pjsua client's SIP re-INVITE is modelled by
// the peer re-learning the caller's address from the first packet that
// arrives from a new source. MOS is computed from measured loss, one-way
// delay, and RFC 3550 interarrival jitter via the ITU-T E-model.
#pragma once

#include "common/stats.hpp"
#include "net/node.hpp"

namespace cb::apps {

/// Receiver-side stream quality accounting.
struct VoipStats {
  std::uint64_t received = 0;
  std::uint64_t expected = 0;  // from sequence numbers
  double avg_delay_ms = 0.0;
  double jitter_ms = 0.0;

  double loss_rate() const {
    return expected > 0
               ? 1.0 - static_cast<double>(received) / static_cast<double>(expected)
               : 0.0;
  }
  /// ITU-T G.107 E-model, simplified for G.711 + PLC.
  double mos() const;
};

/// One endpoint of a call: sends a CBR stream and scores what it receives.
/// Make one on each side; `remote` may be discovered from incoming traffic
/// (callee side), enabling the re-INVITE behaviour.
class VoipEndpoint {
 public:
  struct Config {
    Duration frame_interval = Duration::ms(20);
    std::size_t frame_bytes = 80;  // ~32 kb/s with headers (paper: ~30 kb/s)
    /// Fixed playout (jitter) buffer added to one-way delay for MOS.
    double playout_buffer_ms = 40.0;
  };

  VoipEndpoint(net::Node& node, std::uint16_t local_port);
  VoipEndpoint(net::Node& node, std::uint16_t local_port, Config config);
  ~VoipEndpoint();

  /// Start the outgoing stream toward `remote` (caller side). The callee
  /// side can omit this until it learns the caller's address.
  void call(net::EndPoint remote);
  void hang_up();

  /// True peer address currently used for sending (updated by re-INVITE).
  net::EndPoint peer() const { return remote_; }

  const VoipStats& stats() const { return stats_; }

 private:
  void send_frame();
  void on_packet(const net::Packet& p);

  net::Node& node_;
  std::uint16_t port_;
  Config config_;
  net::EndPoint remote_;
  bool streaming_ = false;
  std::uint32_t tx_seq_ = 0;
  sim::EventHandle timer_;

  // Receive side.
  VoipStats stats_;
  bool saw_any_ = false;
  std::uint32_t highest_rx_seq_ = 0;
  double delay_accum_ms_ = 0.0;
  double last_transit_ms_ = 0.0;
  double jitter_ms_ = 0.0;
};

}  // namespace cb::apps
