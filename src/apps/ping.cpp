#include "apps/ping.hpp"

namespace cb::apps {

PingServer::PingServer(net::Node& node, std::uint16_t port) : node_(node), port_(port) {
  node_.bind_udp(port_, [this](const net::Packet& p) {
    net::Packet reply;
    reply.src = p.dst;
    reply.dst = p.src;
    reply.proto = net::Proto::Udp;
    reply.payload = p.payload;
    node_.send(std::move(reply));
  });
}

PingClient::PingClient(net::Node& node, net::EndPoint server, Duration interval,
                       Duration timeout)
    : node_(node), server_(server), interval_(interval), timeout_(timeout) {
  port_ = node_.alloc_port();
  node_.bind_udp(port_, [this](const net::Packet& p) {
    try {
      ByteReader r(p.payload);
      const std::uint64_t seq = r.u64();
      auto it = in_flight_.find(seq);
      if (it == in_flight_.end()) return;
      rtts_.add((node_.simulator().now() - it->second).to_millis());
      in_flight_.erase(it);
    } catch (const std::out_of_range&) {
    }
  });
}

PingClient::~PingClient() {
  stop();
  node_.unbind_udp(port_);
}

void PingClient::start() {
  running_ = true;
  probe();
}

void PingClient::stop() {
  running_ = false;
  timer_.cancel();
}

void PingClient::probe() {
  if (!running_) return;
  const net::Ipv4Addr src = node_.primary_address();
  if (src.valid()) {  // skip probes while detached (no address)
    const std::uint64_t seq = seq_++;
    in_flight_[seq] = node_.simulator().now();
    ByteWriter w;
    w.u64(seq);
    w.raw(Bytes(56, 0));  // standard ping payload size
    net::Packet p;
    p.src = net::EndPoint{src, port_};
    p.dst = server_;
    p.proto = net::Proto::Udp;
    p.payload = w.take();
    node_.send(std::move(p));
    node_.simulator().schedule(timeout_, [this, seq] {
      if (in_flight_.erase(seq) > 0) ++lost_;
    });
  }
  timer_ = node_.simulator().schedule(interval_, [this] { probe(); });
}

}  // namespace cb::apps
