#include "apps/voip.hpp"

#include <algorithm>
#include <cmath>

namespace cb::apps {

double VoipStats::mos() const {
  const double e = loss_rate();
  const double d = avg_delay_ms;  // one-way incl. playout buffer
  double id = 0.024 * d;
  if (d > 177.3) id += 0.11 * (d - 177.3);
  const double ie = 30.0 * std::log(1.0 + 15.0 * e);
  const double r = std::clamp(93.2 - id - ie, 0.0, 100.0);
  const double mos = 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r);
  return std::clamp(mos, 1.0, 5.0);
}

VoipEndpoint::VoipEndpoint(net::Node& node, std::uint16_t local_port)
    : VoipEndpoint(node, local_port, Config()) {}

VoipEndpoint::VoipEndpoint(net::Node& node, std::uint16_t local_port, Config config)
    : node_(node), port_(local_port), config_(config) {
  node_.bind_udp(port_, [this](const net::Packet& p) { on_packet(p); });
}

VoipEndpoint::~VoipEndpoint() {
  timer_.cancel();
  node_.unbind_udp(port_);
}

void VoipEndpoint::call(net::EndPoint remote) {
  remote_ = remote;
  if (!streaming_) {
    streaming_ = true;
    send_frame();
  }
}

void VoipEndpoint::hang_up() {
  streaming_ = false;
  timer_.cancel();
}

void VoipEndpoint::send_frame() {
  if (!streaming_) return;
  const net::Ipv4Addr src = node_.primary_address();
  const std::uint32_t seq = tx_seq_++;  // frames missed while detached count as lost
  if (src.valid() && remote_.addr.valid()) {
    ByteWriter w;
    w.u32(seq);
    w.u64(static_cast<std::uint64_t>(node_.simulator().now().nanos()));
    w.raw(Bytes(config_.frame_bytes, 0));
    net::Packet p;
    p.src = net::EndPoint{src, port_};
    p.dst = remote_;
    p.proto = net::Proto::Udp;
    p.payload = w.take();
    node_.send(std::move(p));
  }
  timer_ = node_.simulator().schedule(config_.frame_interval, [this] { send_frame(); });
}

void VoipEndpoint::on_packet(const net::Packet& p) {
  try {
    ByteReader r(p.payload);
    const std::uint32_t seq = r.u32();
    const auto sent_at = TimePoint::from_nanos(static_cast<std::int64_t>(r.u64()));

    // SIP re-INVITE effect: adopt the peer's newest source address.
    if (p.src != remote_) {
      remote_ = p.src;
      if (!streaming_) {
        streaming_ = true;  // callee starts its return stream on first frame
        send_frame();
      }
    }

    const double transit_ms = (node_.simulator().now() - sent_at).to_millis();
    stats_.received += 1;
    if (!saw_any_ || seq > highest_rx_seq_) highest_rx_seq_ = seq;
    saw_any_ = true;
    stats_.expected = static_cast<std::uint64_t>(highest_rx_seq_) + 1;
    delay_accum_ms_ += transit_ms;
    stats_.avg_delay_ms =
        delay_accum_ms_ / static_cast<double>(stats_.received) + config_.playout_buffer_ms;

    // RFC 3550 interarrival jitter estimator.
    if (stats_.received > 1) {
      const double d = std::abs(transit_ms - last_transit_ms_);
      jitter_ms_ += (d - jitter_ms_) / 16.0;
      stats_.jitter_ms = jitter_ms_;
    }
    last_transit_ms_ = transit_ms;
  } catch (const std::out_of_range&) {
  }
}

}  // namespace cb::apps
