#include "apps/web.hpp"

namespace cb::apps {

// --- WebServer ---------------------------------------------------------------

struct WebServer::Conn {
  std::shared_ptr<transport::StreamSocket> socket;
  Bytes request_buf;
  std::size_t body_remaining = 0;

  void on_data(BytesView data) {
    request_buf.insert(request_buf.end(), data.begin(), data.end());
    while (request_buf.size() >= 4) {
      ByteReader r(request_buf);
      const std::uint32_t size = r.u32();
      request_buf.erase(request_buf.begin(), request_buf.begin() + 4);
      body_remaining += size;
    }
    pump();
  }

  void pump() {
    static const Bytes chunk(16384, 0x77);
    while (body_remaining > 0) {
      const std::size_t want = std::min(body_remaining, chunk.size());
      const std::size_t n = socket->send(BytesView(chunk.data(), want));
      body_remaining -= n;
      if (n < want) return;
    }
  }
};

WebServer::WebServer(transport::StreamTransport transport, std::uint16_t port) {
  transport.listen(port, [this](std::shared_ptr<transport::StreamSocket> s) {
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(s);
    conn->socket->on_data = [conn](BytesView d) { conn->on_data(d); };
    conn->socket->on_send_space = [conn] { conn->pump(); };
    conn->socket->on_closed = [conn](const std::string& reason) {
      if (reason.empty()) conn->socket->close();
    };
    conns_.push_back(std::move(conn));
  });
}

// --- WebClient ---------------------------------------------------------------

struct WebClient::PageLoad {
  WebClient* parent = nullptr;
  TimePoint started;
  int objects_left = 0;
  int objects_unrequested = 0;
  std::vector<std::shared_ptr<transport::StreamSocket>> sockets;
  std::vector<std::size_t> remaining;  // per-socket bytes outstanding
  bool finished = false;
  sim::EventHandle timeout;

  void object_done(std::size_t socket_index) {
    if (finished) return;
    --objects_left;
    if (objects_left == 0) {
      finish(true);
      return;
    }
    request_on(socket_index);
  }

  void request_on(std::size_t socket_index) {
    if (objects_unrequested <= 0) return;
    --objects_unrequested;
    remaining[socket_index] = parent->config_.object_bytes;
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(parent->config_.object_bytes));
    sockets[socket_index]->send(w.data());
  }

  void finish(bool ok) {
    if (finished) return;
    finished = true;
    timeout.cancel();
    for (auto& s : sockets) s->close();
    if (ok) {
      parent->load_times_.add((parent->sim_.now() - started).to_seconds());
      parent->pages_ += 1;
    } else {
      parent->failures_ += 1;
    }
    WebClient* p = parent;
    p->timer_ = p->sim_.schedule(p->config_.think_time, [p] { p->start_page(); });
  }
};

WebClient::WebClient(transport::StreamTransport transport, net::EndPoint server,
                     sim::Simulator& sim)
    : WebClient(std::move(transport), server, sim, Config()) {}

WebClient::WebClient(transport::StreamTransport transport, net::EndPoint server,
                     sim::Simulator& sim, Config config)
    : transport_(std::move(transport)), server_(server), sim_(sim), config_(config) {}

void WebClient::start() {
  running_ = true;
  start_page();
}

void WebClient::stop() {
  running_ = false;
  timer_.cancel();
  if (current_ && !current_->finished) {
    current_->timeout.cancel();
    for (auto& s : current_->sockets) s->close();
    current_->finished = true;
  }
}

void WebClient::start_page() {
  if (!running_) return;
  auto page = std::make_shared<PageLoad>();
  page->parent = this;
  page->started = sim_.now();
  page->objects_left = config_.objects_per_page;
  page->objects_unrequested = config_.objects_per_page;
  current_ = page;

  const int conns = std::min(config_.concurrent_connections, config_.objects_per_page);
  for (int i = 0; i < conns; ++i) {
    auto socket = transport_.connect(server_);
    const auto index = static_cast<std::size_t>(i);
    page->sockets.push_back(socket);
    page->remaining.push_back(0);
    socket->on_connected = [page, index] { page->request_on(index); };
    socket->on_data = [page, index](BytesView data) {
      if (page->finished) return;
      std::size_t n = data.size();
      while (n > 0 && page->remaining[index] > 0) {
        const std::size_t take = std::min(n, page->remaining[index]);
        page->remaining[index] -= take;
        n -= take;
        if (page->remaining[index] == 0) page->object_done(index);
      }
    };
    socket->on_closed = [page](const std::string& reason) {
      if (!reason.empty() && !page->finished) page->finish(false);
    };
  }
  page->timeout = sim_.schedule(config_.page_timeout, [page] { page->finish(false); });
}

}  // namespace cb::apps
