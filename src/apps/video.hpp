// HLS-style adaptive video streaming — Table 1's "Video: Avg. Quality
// Level".
//
// The server offers each segment at quality levels 0-5 (144p..720p ladder,
// as in the paper's ffmpeg-transcoded setup); the hls.js-like client keeps a
// playout buffer, estimates throughput with an EWMA, and requests the
// highest level sustainable — so handover throughput dips show up as level
// drops or rebuffering, which segment buffering largely absorbs (the paper's
// explanation for video's insensitivity).
#pragma once

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "transport/factory.hpp"

namespace cb::apps {

/// The encoding ladder: bitrate per quality level, bits/s.
inline constexpr double kHlsLadderBps[] = {200e3, 400e3, 800e3, 1500e3, 2500e3, 4000e3};
inline constexpr int kHlsLevels = 6;

/// Serves segment requests: [u8 level][u32 segment] -> [u32 len][bytes].
class HlsServer {
 public:
  HlsServer(transport::StreamTransport transport, std::uint16_t port,
            Duration segment_duration = Duration::s(4));

 private:
  struct Conn;
  Duration segment_duration_;
  std::vector<std::shared_ptr<Conn>> conns_;
};

/// ABR client: downloads segments back-to-back, plays them out in real time.
class HlsClient {
 public:
  struct Config {
    Duration segment_duration = Duration::s(4);
    /// Start playback once this much media is buffered.
    Duration startup_buffer = Duration::s(8);
    /// Stop requesting when the buffer is this full.
    Duration max_buffer = Duration::s(30);
    /// Safety factor on the throughput estimate for level selection.
    double abr_safety = 0.8;
  };

  HlsClient(transport::StreamTransport transport, net::EndPoint server,
            sim::Simulator& sim);
  HlsClient(transport::StreamTransport transport, net::EndPoint server,
            sim::Simulator& sim, Config config);

  void start();
  void stop();

  /// Mean quality level over played segments (the Table-1 metric).
  double avg_quality_level() const;
  std::uint64_t segments_played() const { return played_; }
  std::uint64_t rebuffer_events() const { return rebuffers_; }
  double buffered_seconds() const { return buffer_s_; }

 private:
  void request_next();
  void on_data(BytesView data);
  void playout_tick();
  int pick_level() const;
  void reconnect();

  transport::StreamTransport transport_;
  net::EndPoint server_;
  sim::Simulator& sim_;
  Config config_;
  std::shared_ptr<transport::StreamSocket> socket_;
  bool running_ = false;

  std::uint32_t next_segment_ = 0;
  bool awaiting_ = false;
  std::size_t expected_bytes_ = 0;
  std::size_t received_bytes_ = 0;
  bool have_header_ = false;
  Bytes header_buf_;
  TimePoint request_started_;
  int inflight_level_ = 0;

  double throughput_ewma_bps_ = 0.0;
  double buffer_s_ = 0.0;
  bool playing_ = false;
  std::uint64_t played_ = 0;
  std::uint64_t rebuffers_ = 0;
  double level_sum_ = 0.0;
  std::vector<int> buffered_levels_;  // levels queued for playout
  sim::EventHandle play_timer_;
};

}  // namespace cb::apps
