// iperf-style bulk transfer: a sink listens, a sender pushes a continuous
// byte stream; throughput is accumulated into a per-interval time series —
// the workload behind Table 1's "iPerf Avg. Throughput", Fig.8, Fig.9 and
// Fig.10.
#pragma once

#include <memory>

#include "common/stats.hpp"
#include "transport/factory.hpp"

namespace cb::apps {

/// Server side: accepts connections and counts received bytes over time.
class IperfSink {
 public:
  IperfSink(transport::StreamTransport transport, std::uint16_t port,
            sim::Simulator& sim, Duration bucket = Duration::s(1));

  /// Bytes-per-bucket series (divide by width for rate).
  const TimeSeries& series() const { return series_; }
  std::uint64_t total_bytes() const { return total_; }
  /// Mean goodput in bits/s between first and last byte received.
  double mean_throughput_bps() const;

 private:
  sim::Simulator& sim_;
  TimeSeries series_;
  std::uint64_t total_ = 0;
  TimePoint first_byte_;
  TimePoint last_byte_;
  bool saw_data_ = false;
  std::vector<std::shared_ptr<transport::StreamSocket>> conns_;
};

/// Client side: saturates the socket for `duration`, then closes.
class IperfSender {
 public:
  IperfSender(transport::StreamTransport transport, net::EndPoint server,
              sim::Simulator& sim, Duration duration);

  std::uint64_t bytes_sent() const { return sent_; }
  bool finished() const { return finished_; }

 private:
  void pump();

  sim::Simulator& sim_;
  std::shared_ptr<transport::StreamSocket> socket_;
  Bytes chunk_;
  std::uint64_t sent_ = 0;
  TimePoint deadline_;
  bool closed_ = false;
  bool finished_ = false;
};

/// Server side of a download test: accepts connections and pushes a
/// continuous stream to each for `duration` after accept.
class IperfPushServer {
 public:
  IperfPushServer(transport::StreamTransport transport, std::uint16_t port,
                  sim::Simulator& sim, Duration duration);

 private:
  struct Conn;
  sim::Simulator& sim_;
  Duration duration_;
  std::vector<std::shared_ptr<Conn>> conns_;
};

/// Client side of a download test: connects and counts received bytes into
/// a time series (Fig.8 / Fig.10 traces, Table 1 throughput).
class IperfDownloadClient {
 public:
  IperfDownloadClient(transport::StreamTransport transport, net::EndPoint server,
                      sim::Simulator& sim, Duration bucket = Duration::s(1));

  const TimeSeries& series() const { return series_; }
  std::uint64_t total_bytes() const { return total_; }
  double mean_throughput_bps() const;
  bool finished() const { return finished_; }

 private:
  sim::Simulator& sim_;
  TimeSeries series_;
  std::shared_ptr<transport::StreamSocket> socket_;
  std::uint64_t total_ = 0;
  TimePoint first_byte_;
  TimePoint last_byte_;
  bool saw_data_ = false;
  bool finished_ = false;
};

}  // namespace cb::apps
