#include "apps/video.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace cb::apps {

namespace {
std::size_t segment_bytes(int level, Duration segment_duration) {
  return static_cast<std::size_t>(kHlsLadderBps[level] * segment_duration.to_seconds() / 8.0);
}
}  // namespace

// --- HlsServer ---------------------------------------------------------------

struct HlsServer::Conn {
  std::shared_ptr<transport::StreamSocket> socket;
  Bytes request_buf;
  Duration segment_duration;

  void on_data(BytesView data) {
    request_buf.insert(request_buf.end(), data.begin(), data.end());
    while (request_buf.size() >= 5) {
      ByteReader r(request_buf);
      const int level = std::min<int>(r.u8(), kHlsLevels - 1);
      r.u32();  // segment index (content is synthetic)
      request_buf.erase(request_buf.begin(), request_buf.begin() + 5);

      const std::size_t len = segment_bytes(level, segment_duration);
      ByteWriter w;
      w.u32(static_cast<std::uint32_t>(len));
      socket->send(w.data());
      // Stream the body in chunks, respecting backpressure.
      send_body(len);
    }
  }

  std::size_t body_remaining = 0;
  void send_body(std::size_t len) {
    body_remaining += len;
    pump();
  }
  void pump() {
    static const Bytes chunk(16384, 0x56);
    while (body_remaining > 0) {
      const std::size_t want = std::min(body_remaining, chunk.size());
      const std::size_t n = socket->send(BytesView(chunk.data(), want));
      body_remaining -= n;
      if (n < want) return;  // wait for on_send_space
    }
  }
};

HlsServer::HlsServer(transport::StreamTransport transport, std::uint16_t port,
                     Duration segment_duration)
    : segment_duration_(segment_duration) {
  transport.listen(port, [this](std::shared_ptr<transport::StreamSocket> s) {
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(s);
    conn->segment_duration = segment_duration_;
    conn->socket->on_data = [conn](BytesView d) { conn->on_data(d); };
    conn->socket->on_send_space = [conn] { conn->pump(); };
    conn->socket->on_closed = [conn](const std::string& reason) {
      if (reason.empty()) conn->socket->close();
    };
    conns_.push_back(std::move(conn));
  });
}

// --- HlsClient ---------------------------------------------------------------

HlsClient::HlsClient(transport::StreamTransport transport, net::EndPoint server,
                     sim::Simulator& sim)
    : HlsClient(std::move(transport), server, sim, Config()) {}

HlsClient::HlsClient(transport::StreamTransport transport, net::EndPoint server,
                     sim::Simulator& sim, Config config)
    : transport_(std::move(transport)), server_(server), sim_(sim), config_(config) {}

void HlsClient::start() {
  running_ = true;
  reconnect();
  playout_tick();
}

void HlsClient::stop() {
  running_ = false;
  play_timer_.cancel();
  if (socket_) socket_->close();
}

void HlsClient::reconnect() {
  if (!running_) return;
  socket_ = transport_.connect(server_);
  have_header_ = false;
  header_buf_.clear();
  awaiting_ = false;
  socket_->on_connected = [this] { request_next(); };
  socket_->on_data = [this](BytesView d) { on_data(d); };
  socket_->on_closed = [this](const std::string& reason) {
    if (!running_) return;
    CB_LOG(Debug, "hls") << "connection lost (" << reason << "), reconnecting";
    sim_.schedule(Duration::ms(500), [this] { reconnect(); });
  };
}

int HlsClient::pick_level() const {
  if (throughput_ewma_bps_ <= 0.0) return 0;  // conservative start
  const double budget = throughput_ewma_bps_ * config_.abr_safety;
  int level = 0;
  for (int l = kHlsLevels - 1; l >= 0; --l) {
    if (kHlsLadderBps[l] <= budget) {
      level = l;
      break;
    }
  }
  return level;
}

void HlsClient::request_next() {
  if (!running_ || awaiting_ || socket_ == nullptr || !socket_->connected()) return;
  if (buffer_s_ >= config_.max_buffer.to_seconds()) {
    // Buffer full: re-check shortly.
    sim_.schedule(Duration::ms(200), [this] { request_next(); });
    return;
  }
  awaiting_ = true;
  have_header_ = false;
  header_buf_.clear();
  received_bytes_ = 0;
  inflight_level_ = pick_level();
  request_started_ = sim_.now();
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(inflight_level_));
  w.u32(next_segment_);
  socket_->send(w.data());
}

void HlsClient::on_data(BytesView data) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (!have_header_) {
      const std::size_t need = 4 - header_buf_.size();
      const std::size_t take = std::min(need, data.size() - off);
      header_buf_.insert(header_buf_.end(), data.begin() + static_cast<std::ptrdiff_t>(off),
                         data.begin() + static_cast<std::ptrdiff_t>(off + take));
      off += take;
      if (header_buf_.size() < 4) return;
      ByteReader r(header_buf_);
      expected_bytes_ = r.u32();
      have_header_ = true;
      received_bytes_ = 0;
    }
    const std::size_t take = std::min(expected_bytes_ - received_bytes_, data.size() - off);
    received_bytes_ += take;
    off += take;
    if (received_bytes_ == expected_bytes_) {
      // Segment complete: update ABR state and queue for playout.
      const double elapsed = (sim_.now() - request_started_).to_seconds();
      if (elapsed > 0.0) {
        const double sample = static_cast<double>(expected_bytes_) * 8.0 / elapsed;
        throughput_ewma_bps_ = throughput_ewma_bps_ <= 0.0
                                   ? sample
                                   : 0.7 * throughput_ewma_bps_ + 0.3 * sample;
      }
      buffer_s_ += config_.segment_duration.to_seconds();
      buffered_levels_.push_back(inflight_level_);
      ++next_segment_;
      awaiting_ = false;
      have_header_ = false;
      request_next();
    }
  }
}

void HlsClient::playout_tick() {
  if (!running_) return;
  const double seg_s = config_.segment_duration.to_seconds();
  if (!playing_) {
    if (buffer_s_ >= config_.startup_buffer.to_seconds()) playing_ = true;
  }
  if (playing_) {
    if (buffer_s_ >= seg_s && !buffered_levels_.empty()) {
      buffer_s_ -= seg_s;
      level_sum_ += buffered_levels_.front();
      buffered_levels_.erase(buffered_levels_.begin());
      ++played_;
    } else {
      // Stall: wait for the buffer to refill before resuming.
      ++rebuffers_;
      playing_ = false;
    }
  }
  play_timer_ = sim_.schedule(config_.segment_duration, [this] { playout_tick(); });
}

double HlsClient::avg_quality_level() const {
  return played_ > 0 ? level_sum_ / static_cast<double>(played_) : 0.0;
}

}  // namespace cb::apps
