#include "apps/iperf.hpp"

namespace cb::apps {

IperfSink::IperfSink(transport::StreamTransport transport, std::uint16_t port,
                     sim::Simulator& sim, Duration bucket)
    : sim_(sim), series_(bucket) {
  transport.listen(port, [this](std::shared_ptr<transport::StreamSocket> s) {
    auto* raw = s.get();
    raw->on_data = [this](BytesView data) {
      if (!saw_data_) {
        saw_data_ = true;
        first_byte_ = sim_.now();
      }
      last_byte_ = sim_.now();
      total_ += data.size();
      series_.add(sim_.now(), static_cast<double>(data.size()));
    };
    raw->on_closed = [this, raw](const std::string& reason) {
      if (reason.empty()) raw->close();
    };
    conns_.push_back(std::move(s));
  });
}

double IperfSink::mean_throughput_bps() const {
  if (!saw_data_ || last_byte_ <= first_byte_) return 0.0;
  return static_cast<double>(total_) * 8.0 / (last_byte_ - first_byte_).to_seconds();
}

IperfSender::IperfSender(transport::StreamTransport transport, net::EndPoint server,
                         sim::Simulator& sim, Duration duration)
    : sim_(sim), chunk_(16384, 0xA5) {
  deadline_ = sim.now() + duration;
  socket_ = transport.connect(server);
  socket_->on_connected = [this] { pump(); };
  socket_->on_send_space = [this] { pump(); };
  socket_->on_closed = [this](const std::string&) { finished_ = true; };
  // Time-based stop: check the deadline on a timer too, in case the socket
  // never fills (fast link).
  sim_.schedule(duration, [this] { pump(); });
}

struct IperfPushServer::Conn {
  std::shared_ptr<transport::StreamSocket> socket;
  Bytes chunk = Bytes(16384, 0x5C);
  TimePoint deadline;
  sim::Simulator* sim = nullptr;
  bool closed = false;

  void pump() {
    if (closed) return;
    if (sim->now() >= deadline) {
      closed = true;
      socket->close();
      return;
    }
    for (;;) {
      const std::size_t n = socket->send(chunk);
      if (n < chunk.size()) break;
    }
  }
};

IperfPushServer::IperfPushServer(transport::StreamTransport transport, std::uint16_t port,
                                 sim::Simulator& sim, Duration duration)
    : sim_(sim), duration_(duration) {
  transport.listen(port, [this](std::shared_ptr<transport::StreamSocket> s) {
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(s);
    conn->sim = &sim_;
    conn->deadline = sim_.now() + duration_;
    conn->socket->on_send_space = [conn] { conn->pump(); };
    conn->socket->on_closed = [conn](const std::string&) { conn->closed = true; };
    sim_.schedule(duration_, [conn] { conn->pump(); });  // deadline check
    conn->pump();
    conns_.push_back(std::move(conn));
  });
}

IperfDownloadClient::IperfDownloadClient(transport::StreamTransport transport,
                                         net::EndPoint server, sim::Simulator& sim,
                                         Duration bucket)
    : sim_(sim), series_(bucket) {
  socket_ = transport.connect(server);
  socket_->on_data = [this](BytesView data) {
    if (!saw_data_) {
      saw_data_ = true;
      first_byte_ = sim_.now();
    }
    last_byte_ = sim_.now();
    total_ += data.size();
    series_.add(sim_.now(), static_cast<double>(data.size()));
  };
  socket_->on_closed = [this](const std::string& reason) {
    finished_ = true;
    if (reason.empty()) socket_->close();
  };
}

double IperfDownloadClient::mean_throughput_bps() const {
  if (!saw_data_ || last_byte_ <= first_byte_) return 0.0;
  return static_cast<double>(total_) * 8.0 / (last_byte_ - first_byte_).to_seconds();
}

void IperfSender::pump() {
  if (closed_) return;
  if (sim_.now() >= deadline_) {
    closed_ = true;
    socket_->close();
    return;
  }
  for (;;) {
    const std::size_t n = socket_->send(chunk_);
    sent_ += n;
    if (n < chunk_.size()) break;  // buffer full: wait for on_send_space
  }
}

}  // namespace cb::apps
