// Web browsing (page downloading) — Table 1's "Web: Avg. Load Time".
//
// Each page load fetches a set of objects over a small pool of concurrent
// connections (fresh connections per page, like a browser's first visit);
// load time runs from navigation start until the last object completes.
// Pages repeat with a think time in between.
#pragma once

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "transport/factory.hpp"

namespace cb::apps {

/// Serves object requests: [u32 size] -> that many bytes.
class WebServer {
 public:
  WebServer(transport::StreamTransport transport, std::uint16_t port);

 private:
  struct Conn;
  std::vector<std::shared_ptr<Conn>> conns_;
};

class WebClient {
 public:
  struct Config {
    int objects_per_page = 8;
    std::size_t object_bytes = 80 * 1024;
    int concurrent_connections = 4;
    Duration think_time = Duration::s(2);
    /// Abandon a page if it has not finished in this long.
    Duration page_timeout = Duration::s(60);
  };

  WebClient(transport::StreamTransport transport, net::EndPoint server,
            sim::Simulator& sim);
  WebClient(transport::StreamTransport transport, net::EndPoint server,
            sim::Simulator& sim, Config config);

  void start();
  void stop();

  const Summary& load_times_s() const { return load_times_; }
  std::uint64_t pages_loaded() const { return pages_; }
  std::uint64_t pages_failed() const { return failures_; }

 private:
  struct PageLoad;
  void start_page();

  transport::StreamTransport transport_;
  net::EndPoint server_;
  sim::Simulator& sim_;
  Config config_;
  bool running_ = false;
  std::shared_ptr<PageLoad> current_;
  Summary load_times_;
  std::uint64_t pages_ = 0;
  std::uint64_t failures_ = 0;
  sim::EventHandle timer_;
};

}  // namespace cb::apps
