#include "epc/auth.hpp"

#include "crypto/hmac.hpp"

namespace cb::epc {

namespace {
Bytes tagged_mac(BytesView k, BytesView rand, std::string_view tag) {
  ByteWriter w;
  w.raw(rand);
  w.str(tag);
  return crypto::hmac_sha256(k, w.data());
}
}  // namespace

AuthVector generate_auth_vector(BytesView k, Rng& rng) {
  AuthVector v;
  v.rand = rng.random_bytes(16);
  v.xres = tagged_mac(k, v.rand, "res");
  v.autn = tagged_mac(k, v.rand, "autn");
  v.kasme = tagged_mac(k, v.rand, "kasme");
  return v;
}

Bytes compute_res(BytesView k, BytesView rand) { return tagged_mac(k, rand, "res"); }

bool verify_autn(BytesView k, BytesView rand, BytesView autn) {
  return constant_time_equal(tagged_mac(k, rand, "autn"), autn);
}

Bytes derive_kasme(BytesView k, BytesView rand) { return tagged_mac(k, rand, "kasme"); }

namespace {

// Anonymity key: 48 bits XORed over the cleartext SQN so a passive observer
// cannot track a subscriber across challenges. Distinct tags separate the
// challenge direction ("ak") from the resync direction ("ak-s").
std::uint64_t anonymity_key(BytesView k, BytesView rand, std::string_view tag) {
  const Bytes mac = tagged_mac(k, rand, tag);
  std::uint64_t ak = 0;
  for (int i = 0; i < 6; ++i) ak = (ak << 8) | mac[static_cast<std::size_t>(i)];
  return ak;  // 48 bits
}

Bytes sqn_mac(BytesView k, BytesView rand, std::uint64_t sqn, std::string_view tag) {
  ByteWriter w;
  w.raw(rand);
  w.u64(sqn);
  w.str(tag);
  return crypto::hmac_sha256(k, w.data());
}

}  // namespace

AuthVector generate_auth_vector_sqn(BytesView k, HssSqnState& state, Rng& rng) {
  AuthVector v;
  v.rand = rng.random_bytes(16);
  v.xres = tagged_mac(k, v.rand, "res");
  v.kasme = tagged_mac(k, v.rand, "kasme");
  const std::uint64_t sqn = state.sqn;
  state.sqn = (state.sqn + 1) % kSqnModulus;
  ByteWriter autn;
  autn.u64(sqn ^ anonymity_key(k, v.rand, "ak"));
  autn.raw(sqn_mac(k, v.rand, sqn, "autn-mac"));
  v.autn = autn.data();
  return v;
}

AutnCheck verify_autn_sqn(BytesView k, BytesView rand, BytesView autn, UeSqnState& state) {
  AutnCheck out;
  if (autn.size() != 8 + 32) return out;  // MacFailure
  ByteReader r(autn);
  const std::uint64_t concealed = r.u64();
  const std::uint64_t sqn = concealed ^ anonymity_key(k, rand, "ak");
  if (!constant_time_equal(sqn_mac(k, rand, sqn, "autn-mac"),
                           BytesView(autn.data() + 8, 32))) {
    return out;  // MacFailure
  }
  out.sqn = sqn;
  // Freshness: strictly ahead of SQN_MS, within the forward window. The
  // modular delta handles wraparound (SQN_MS = 2^48-1, SQN = 0 is fresh).
  const std::uint64_t delta = (sqn - state.sqn_ms) & (kSqnModulus - 1);
  if (delta != 0 && delta <= kSqnWindow) {
    out.verdict = AutnVerdict::Ok;
    state.sqn_ms = sqn;
    return out;
  }
  out.verdict = AutnVerdict::SyncFailure;
  ByteWriter auts;
  auts.u64(state.sqn_ms ^ anonymity_key(k, rand, "ak-s"));
  auts.raw(sqn_mac(k, rand, state.sqn_ms, "auts-mac"));
  out.auts = auts.data();
  return out;
}

bool resynchronize_sqn(BytesView k, BytesView rand, BytesView auts, HssSqnState& state) {
  if (auts.size() != 8 + 32) return false;
  ByteReader r(auts);
  const std::uint64_t sqn_ms = r.u64() ^ anonymity_key(k, rand, "ak-s");
  if (!constant_time_equal(sqn_mac(k, rand, sqn_ms, "auts-mac"),
                           BytesView(auts.data() + 8, 32))) {
    return false;
  }
  // Resume one past the UE's high-water mark so the next challenge is fresh.
  state.sqn = (sqn_ms + 1) % kSqnModulus;
  return true;
}

}  // namespace cb::epc
