#include "epc/auth.hpp"

#include "crypto/hmac.hpp"

namespace cb::epc {

namespace {
Bytes tagged_mac(BytesView k, BytesView rand, std::string_view tag) {
  ByteWriter w;
  w.raw(rand);
  w.str(tag);
  return crypto::hmac_sha256(k, w.data());
}
}  // namespace

AuthVector generate_auth_vector(BytesView k, Rng& rng) {
  AuthVector v;
  v.rand = rng.random_bytes(16);
  v.xres = tagged_mac(k, v.rand, "res");
  v.autn = tagged_mac(k, v.rand, "autn");
  v.kasme = tagged_mac(k, v.rand, "kasme");
  return v;
}

Bytes compute_res(BytesView k, BytesView rand) { return tagged_mac(k, rand, "res"); }

bool verify_autn(BytesView k, BytesView rand, BytesView autn) {
  return constant_time_equal(tagged_mac(k, rand, "autn"), autn);
}

Bytes derive_kasme(BytesView k, BytesView rand) { return tagged_mac(k, rand, "kasme"); }

}  // namespace cb::epc
