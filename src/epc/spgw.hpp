// SGW/PGW user plane: the IP anchor of the MNO baseline.
//
// Every subscriber address is allocated from the PGW's pool and anchored at
// the PGW node, so a UE keeps its IP as it moves between towers — exactly
// the property that makes network-driven handover "seamless" (§2.1) and
// that CellBricks deliberately gives up in exchange for simplicity.
// Downlink traffic is tunnelled PGW → serving tower → radio bearer
// (GTP-style); uplink is metered at the PGW. Byte counters per bearer
// provide the usage accounting today's billing builds on.
#pragma once

#include <string>
#include <unordered_map>

#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace cb::epc {

class SgwPgw {
 public:
  /// Subscriber addresses are drawn from `ip_subnet`.x.y.z.
  SgwPgw(net::Network& network, net::Node& gw_node, std::uint8_t ip_subnet);

  /// Create a bearer: allocates the UE's IP (anchored here) and plumbs the
  /// downlink path through `tower` and `radio_link`. Returns the UE IP.
  net::Ipv4Addr create_session(const std::string& imsi, net::Node* ue_node,
                               net::Node* tower, net::Link* radio_link);

  /// X2-style path switch: same IP, new serving tower.
  void path_switch(const std::string& imsi, net::Node* tower, net::Link* radio_link);

  void release_session(const std::string& imsi);
  bool has_session(const std::string& imsi) const { return sessions_.contains(imsi); }
  net::Ipv4Addr session_ip(const std::string& imsi) const;

  /// Usage accounting (PGW counters, TS 32.425-style).
  struct Usage {
    std::uint64_t ul_bytes = 0;
    std::uint64_t dl_bytes = 0;
  };
  Usage usage(const std::string& imsi) const;

  net::Node& node() { return gw_node_; }

 private:
  struct Session {
    net::Ipv4Addr ip;
    net::Node* ue_node = nullptr;
    net::Node* tower = nullptr;
    net::Link* radio_link = nullptr;
    net::Link* backhaul = nullptr;  // gw -> tower
    Usage usage;
  };

  net::Link* find_link(net::Node* a, net::Node* b) const;
  void install_tower_hook(net::Node* tower);
  void downlink(const std::string& imsi, net::Packet&& packet);

  net::Network& network_;
  net::Node& gw_node_;
  std::uint8_t subnet_;
  std::unordered_map<std::string, Session> sessions_;
  std::unordered_map<net::Ipv4Addr, std::string> by_ip_;
  // Per-tower map of UE address -> radio link, consulted by the tower's
  // forward hook (survives global route recomputation).
  std::unordered_map<net::Node*, std::unordered_map<net::Ipv4Addr, net::Link*>> tower_bearers_;
  // Cached per-packet metric handles: resolved once at construction against
  // the registry active on the constructing (trial) thread; null = disabled.
  obs::Counter* obs_dl_packets_ = nullptr;
  obs::Counter* obs_dl_bytes_ = nullptr;
  obs::Counter* obs_ul_packets_ = nullptr;
  obs::Counter* obs_ul_bytes_ = nullptr;
};

}  // namespace cb::epc
