#include "epc/mme.hpp"

#include "common/log.hpp"
#include "epc/auth5g.hpp"
#include "obs/metrics.hpp"

namespace cb::epc {

Mme::Mme(net::Node& agw_node, SgwPgw& spgw, net::EndPoint hss, EpcProcProfile profile)
    : node_(agw_node), spgw_(spgw), hss_(hss), profile_(profile), queue_(agw_node.simulator()) {
  port_ = node_.alloc_port();
  node_.bind_udp(port_, [this](const net::Packet& p) { handle_hss_reply(p); });
}

void Mme::send_s6a(S6aType type, std::uint64_t txn, const std::string& imsi) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(txn);
  w.str(imsi);
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), port_};
  p.dst = hss_;
  p.proto = net::Proto::Udp;
  p.payload = w.take();
  node_.send(std::move(p));
}

void Mme::handle_hss_reply(const net::Packet& packet) {
  try {
    ByteReader r(packet.payload);
    r.u8();  // type re-decoded by the continuation
    const std::uint64_t txn = r.u64();
    auto it = awaiting_hss_.find(txn);
    if (it == awaiting_hss_.end()) return;
    auto continuation = std::move(it->second);
    awaiting_hss_.erase(it);
    continuation(packet.payload);
  } catch (const std::out_of_range&) {
    CB_LOG(Warn, "mme") << "malformed HSS reply dropped";
  }
}

void Mme::fail(std::uint64_t txn, const std::string& reason) {
  auto it = pending_.find(txn);
  if (it == pending_.end()) return;
  auto done = std::move(it->second.hooks.done);
  pending_.erase(it);
  obs::inc(obs::counter("epc.mme.attach.failure"));
  if (done) done(Result<net::Ipv4Addr>::err(reason));
}

void Mme::attach(const std::string& imsi, net::Node* ue_node, net::Node* tower,
                 net::Link* radio_link, AttachHooks hooks) {
  const std::uint64_t txn = next_txn_++;
  const TimePoint started = node_.simulator().now();
  pending_[txn] =
      PendingAttach{imsi, ue_node, tower, radio_link, std::move(hooks), {}, started};
  obs::inc(obs::counter("epc.mme.attach.attempts"));
  obs::trace(started, obs::TraceType::EpcAttachStart, txn);

  // [AGW msg 1/4] Process the Attach Request; query the HSS for vectors.
  queue_.submit(profile_.agw_msg, [this, txn, imsi] {
    awaiting_hss_[txn] = [this, txn](CowBytes payload) {
      // [AGW msg 2/4] Process the AIA; issue the authentication challenge.
      queue_.submit(profile_.agw_msg, [this, txn, payload = std::move(payload)] {
        auto it = pending_.find(txn);
        if (it == pending_.end()) return;
        ByteReader r(payload);
        const auto type = static_cast<S6aType>(r.u8());
        r.u64();
        if (type != S6aType::AuthInfoResp) {
          fail(txn, "HSS rejected AIR: " + (type == S6aType::Error ? r.str() : "bad reply"));
          return;
        }
        const Bytes rand = r.bytes();
        it->second.xres = r.bytes();
        const Bytes autn = r.bytes();
        r.bytes();  // kasme: retained by the network side implicitly

        it->second.hooks.challenge(rand, autn, [this, txn](Bytes res) {
          // [AGW msg 3/4] Verify RES; run security mode; then ULR.
          queue_.submit(profile_.agw_msg, [this, txn, res = std::move(res)] {
            auto pit = pending_.find(txn);
            if (pit == pending_.end()) return;
            if (!constant_time_equal(res, pit->second.xres)) {
              fail(txn, "authentication failure: RES mismatch");
              return;
            }
            pit->second.hooks.smc([this, txn] {
              auto sit = pending_.find(txn);
              if (sit == pending_.end()) return;
              awaiting_hss_[txn] = [this, txn](CowBytes ula) {
                // [AGW msg 4/4] Process ULA; create the bearer; accept.
                queue_.submit(profile_.agw_msg, [this, txn, ula = std::move(ula)] {
                  auto ait = pending_.find(txn);
                  if (ait == pending_.end()) return;
                  ByteReader r2(ula);
                  const auto t2 = static_cast<S6aType>(r2.u8());
                  if (t2 != S6aType::UpdateLocationResp) {
                    fail(txn, "HSS rejected ULR");
                    return;
                  }
                  PendingAttach ctx = std::move(ait->second);
                  pending_.erase(ait);
                  const net::Ipv4Addr ip = spgw_.create_session(
                      ctx.imsi, ctx.ue_node, ctx.tower, ctx.radio_link);
                  ++completed_;
                  const TimePoint now = node_.simulator().now();
                  obs::inc(obs::counter("epc.mme.attach.success"));
                  obs::observe(obs::histogram("epc.mme.attach_latency_ms"),
                               (now - ctx.started_at).to_millis());
                  obs::trace(now, obs::TraceType::EpcAttachDone, txn,
                             static_cast<std::uint64_t>((now - ctx.started_at).nanos() / 1000));
                  ctx.hooks.done(ip);
                });
              };
              send_s6a(S6aType::UpdateLocationReq, txn, sit->second.imsi);
            });
          });
        });
      });
    };
    send_s6a(S6aType::AuthInfoReq, txn, imsi);
  });
}

void Mme::send_s6a_bytes(S6aType type, std::uint64_t txn, BytesView body) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(txn);
  w.bytes(body);
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), port_};
  p.dst = hss_;
  p.proto = net::Proto::Udp;
  p.payload = w.take();
  node_.send(std::move(p));
}

void Mme::attach5g(Bytes suci, net::Node* ue_node, net::Node* tower, net::Link* radio_link,
                   AttachHooks hooks) {
  const std::uint64_t txn = next_txn_++;
  const TimePoint started = node_.simulator().now();
  // The SUPI is unknown until the home side confirms; filled at [AGW 4/5].
  pending_[txn] = PendingAttach{"", ue_node, tower, radio_link, std::move(hooks), {}, started};
  obs::inc(obs::counter("epc.mme.attach5g.attempts"));
  obs::trace(started, obs::TraceType::EpcAttachStart, txn);

  // [AGW msg 1/5] Process the Registration Request; forward the SUCI home.
  queue_.submit(profile_.agw_msg, [this, txn, suci = std::move(suci)] {
    awaiting_hss_[txn] = [this, txn](CowBytes payload) {
      // [AGW msg 2/5] Process the 5G AIA; issue the challenge.
      queue_.submit(profile_.agw_msg, [this, txn, payload = std::move(payload)] {
        auto it = pending_.find(txn);
        if (it == pending_.end()) return;
        ByteReader r(payload);
        const auto type = static_cast<S6aType>(r.u8());
        r.u64();
        if (type != S6aType::Auth5gInfoResp) {
          fail(txn, "AUSF rejected 5G AIR: " +
                        (type == S6aType::Error ? r.str() : "bad reply"));
          return;
        }
        const Bytes rand = r.bytes();
        const Bytes autn = r.bytes();
        it->second.xres = r.bytes();  // HXRES*: the SEAF's local check value

        it->second.hooks.challenge(rand, autn, [this, txn, rand](Bytes res_star) {
          // [AGW msg 3/5] HXRES* check locally, then confirm RES* home-side.
          queue_.submit(profile_.agw_msg, [this, txn, rand, res_star = std::move(res_star)] {
            auto pit = pending_.find(txn);
            if (pit == pending_.end()) return;
            if (!constant_time_equal(hash_res_star(rand, res_star), pit->second.xres)) {
              fail(txn, "authentication failure: HXRES* mismatch");
              return;
            }
            awaiting_hss_[txn] = [this, txn](CowBytes confirm) {
              // [AGW msg 4/5] Process the confirm; learn SUPI + KSEAF; SMC.
              queue_.submit(profile_.agw_msg, [this, txn, confirm = std::move(confirm)] {
                auto cit = pending_.find(txn);
                if (cit == pending_.end()) return;
                ByteReader cr(confirm);
                const auto ct = static_cast<S6aType>(cr.u8());
                cr.u64();
                if (ct != S6aType::Auth5gConfirmResp || cr.u8() != 1) {
                  fail(txn, "authentication failure: AUSF rejected RES*");
                  return;
                }
                cit->second.imsi = cr.str();  // disclosed SUPI
                last_kseaf_ = cr.bytes();
                cit->second.hooks.smc([this, txn] {
                  auto sit = pending_.find(txn);
                  if (sit == pending_.end()) return;
                  awaiting_hss_[txn] = [this, txn](CowBytes ula) {
                    // [AGW msg 5/5] Process ULA; create the bearer; accept.
                    queue_.submit(profile_.agw_msg, [this, txn, ula = std::move(ula)] {
                      auto ait = pending_.find(txn);
                      if (ait == pending_.end()) return;
                      ByteReader r2(ula);
                      const auto t2 = static_cast<S6aType>(r2.u8());
                      if (t2 != S6aType::UpdateLocationResp) {
                        fail(txn, "HSS rejected ULR");
                        return;
                      }
                      PendingAttach ctx = std::move(ait->second);
                      pending_.erase(ait);
                      const net::Ipv4Addr ip = spgw_.create_session(
                          ctx.imsi, ctx.ue_node, ctx.tower, ctx.radio_link);
                      ++completed_;
                      const TimePoint now = node_.simulator().now();
                      obs::inc(obs::counter("epc.mme.attach.success"));
                      obs::observe(obs::histogram("epc.mme.attach_latency_ms"),
                                   (now - ctx.started_at).to_millis());
                      obs::trace(now, obs::TraceType::EpcAttachDone, txn,
                                 static_cast<std::uint64_t>((now - ctx.started_at).nanos() /
                                                            1000));
                      ctx.hooks.done(ip);
                    });
                  };
                  send_s6a(S6aType::UpdateLocationReq, txn, sit->second.imsi);
                });
              });
            };
            send_s6a_bytes(S6aType::Auth5gConfirm, txn, res_star);
          });
        });
      });
    };
    send_s6a_bytes(S6aType::Auth5gInfoReq, txn, suci);
  });
}

}  // namespace cb::epc
