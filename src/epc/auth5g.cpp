#include "epc/auth5g.hpp"

#include "crypto/box.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace cb::epc {

namespace {
Bytes tagged_mac(BytesView k, BytesView rand, std::string_view tag) {
  ByteWriter w;
  w.raw(rand);
  w.str(tag);
  return crypto::hmac_sha256(k, w.data());
}
}  // namespace

Bytes conceal_supi(const crypto::RsaPublicKey& hn_key, std::string_view supi, Rng& rng) {
  return crypto::seal(hn_key, to_bytes(supi), rng);
}

Result<std::string> deconceal_suci(const crypto::RsaKeyPair& hn_keys, BytesView suci) {
  Result<Bytes> plain = crypto::open(hn_keys, suci);
  if (!plain.ok()) return Result<std::string>::err("suci: " + plain.error());
  return std::string(plain.value().begin(), plain.value().end());
}

Auth5gVector generate_auth5g_vector(BytesView k, HssSqnState& state, Rng& rng) {
  // Reuse the SQN-carrying AUTN so 5G inherits the same replay/resync
  // semantics the 4G tests pin down; swap the response/key derivations.
  const AuthVector base = generate_auth_vector_sqn(k, state, rng);
  Auth5gVector v;
  v.rand = base.rand;
  v.autn = base.autn;
  v.xres_star = compute_res_star(k, v.rand);
  v.hxres_star = hash_res_star(v.rand, v.xres_star);
  v.kausf = derive_kausf(k, v.rand);
  v.kseaf = derive_kseaf(v.kausf);
  return v;
}

Bytes compute_res_star(BytesView k, BytesView rand) { return tagged_mac(k, rand, "res*"); }

Bytes hash_res_star(BytesView rand, BytesView res_star) {
  ByteWriter w;
  w.raw(rand);
  w.raw(res_star);
  return crypto::sha256(w.data());
}

Bytes derive_kausf(BytesView k, BytesView rand) { return tagged_mac(k, rand, "kausf"); }

Bytes derive_kseaf(BytesView kausf) {
  return crypto::hmac_sha256(kausf, to_bytes("kseaf"));
}

Bytes derive_kamf(BytesView kseaf, std::string_view supi) {
  ByteWriter w;
  w.str("kamf");
  w.str(supi);
  return crypto::hmac_sha256(kseaf, w.data());
}

}  // namespace cb::epc
