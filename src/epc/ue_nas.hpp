// UE-side NAS and mobility for the MNO baseline.
//
// Runs the attach dialog against the MME (charging the UE's and the eNB's
// per-message processing time), configures the assigned IP on the UE node,
// and performs network-driven X2-style handovers that preserve the IP — the
// baseline behaviour CellBricks' host-driven mobility is compared against.
#pragma once

#include <functional>
#include <string>

#include "epc/mme.hpp"
#include "ran/ran_map.hpp"

namespace cb::epc {

class UeNas {
 public:
  UeNas(net::Network& network, net::Node& ue_node, std::string imsi, Bytes k, Mme& mme,
        const ran::RanMap& ran_map, EpcProcProfile profile = {});

  /// Switch this UE to 5G registration: attaches conceal the SUPI under
  /// `hn_key` (SUCI) and run the RES*/HXRES* dialog. `rng` seeds the SUCI
  /// concealment randomness; pass a dedicated fork so 4G worlds stay
  /// bit-identical.
  void enable_5g(crypto::RsaPublicKey hn_key, Rng rng);
  bool is_5g() const { return !hn_key_.empty(); }

  /// Full attach on `cell`; `done` receives the assigned IP (which the UE
  /// node is configured with) or an error.
  void attach(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done);

  /// Network-driven handover to `cell`: IP preserved; the radio is
  /// interrupted for `interruption` (break-before-make worst case).
  void handover(ran::CellId cell, Duration interruption = Duration::ms(30),
                std::function<void()> done = nullptr);

  void detach();

  bool attached() const { return current_ip_.valid(); }
  net::Ipv4Addr current_ip() const { return current_ip_; }
  ran::CellId serving_cell() const { return serving_cell_; }
  const std::string& imsi() const { return imsi_; }

  /// Latency of the most recent attach, radio legs excluded (Fig.7 metric).
  Duration last_attach_latency() const { return last_attach_latency_; }
  /// Processing-time accounting for the Fig.7 breakdown.
  Duration ue_busy_time() const { return ue_queue_.busy_time(); }
  Duration enb_busy_time() const { return enb_queue_.busy_time(); }

  /// UE-derived KSEAF from the most recent 5G challenge (conformance tests
  /// compare it against the network side's value).
  const Bytes& last_kseaf() const { return last_kseaf_; }
  /// UE-side SQN high-water mark (5G path), exposed for the vector tests.
  UeSqnState& sqn_state() { return ue_sqn_; }

 private:
  net::Network& network_;
  net::Node& ue_node_;
  std::string imsi_;
  Bytes k_;
  Mme& mme_;
  const ran::RanMap& ran_map_;
  EpcProcProfile profile_;
  sim::ServiceQueue ue_queue_;
  sim::ServiceQueue enb_queue_;

  net::Ipv4Addr current_ip_;
  ran::CellId serving_cell_ = 0;
  TimePoint attach_started_;
  Duration last_attach_latency_ = Duration::zero();

  // 5G mode state (inert in 4G worlds).
  crypto::RsaPublicKey hn_key_;
  Rng suci_rng_{0};
  UeSqnState ue_sqn_;
  Bytes last_kseaf_;
};

}  // namespace cb::epc
