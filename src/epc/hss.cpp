#include "epc/hss.hpp"

#include "common/log.hpp"
#include "epc/auth5g.hpp"
#include "obs/metrics.hpp"

namespace cb::epc {

Hss::Hss(net::Node& node, Duration service_time)
    : node_(node),
      service_time_(service_time),
      queue_(node.simulator()),
      rng_(node.simulator().rng().fork(0x455)) {
  node_.bind_udp(kHssPort, [this](const net::Packet& p) { handle(p); });
}

void Hss::add_subscriber(const std::string& imsi, Bytes k) {
  subscribers_[imsi] = std::move(k);
}

bool Hss::has_subscriber(const std::string& imsi) const {
  return subscribers_.contains(imsi);
}

void Hss::enable_5g(Rng& rng, std::size_t modulus_bits) {
  hn_keys_ = crypto::RsaKeyPair::generate(rng, modulus_bits);
}

void Hss::handle(const net::Packet& packet) {
  // Keep the fields we need; processing happens after the service delay.
  // The payload is COW, so holding it in the closure is a pointer share.
  CowBytes payload = packet.payload;
  const net::EndPoint from = packet.src;
  queue_.submit(service_time_, [this, payload = std::move(payload), from] {
    try {
      ByteReader r(payload);
      const auto type = static_cast<S6aType>(r.u8());
      const std::uint64_t txn = r.u64();

      // 5G types carry a SUCI (or a RES*), never a cleartext IMSI — branch
      // before the identifier parse. The 4G path below is byte-identical to
      // its pre-5G form.
      if (type == S6aType::Auth5gInfoReq) {
        handle_5g_info(txn, r, from);
        return;
      }
      if (type == S6aType::Auth5gConfirm) {
        handle_5g_confirm(txn, r, from);
        return;
      }

      const std::string imsi = r.str();
      auto sub = subscribers_.find(imsi);
      if (sub == subscribers_.end()) {
        obs::inc(obs::counter("epc.hss.unknown_subscriber"));
        error_reply(from, txn, "unknown subscriber");
        return;
      }

      if (type == S6aType::AuthInfoReq) {
        obs::inc(obs::counter("epc.hss.air_served"));
        const AuthVector v = generate_auth_vector(sub->second, rng_);
        ByteWriter w;
        w.u8(static_cast<std::uint8_t>(S6aType::AuthInfoResp));
        w.u64(txn);
        w.bytes(v.rand);
        w.bytes(v.xres);
        w.bytes(v.autn);
        w.bytes(v.kasme);
        reply(from, w.take());
      } else if (type == S6aType::UpdateLocationReq) {
        obs::inc(obs::counter("epc.hss.ulr_served"));
        locations_[imsi] = from.to_string();
        ByteWriter w;
        w.u8(static_cast<std::uint8_t>(S6aType::UpdateLocationResp));
        w.u64(txn);
        w.u8(1);  // success
        reply(from, w.take());
      }
    } catch (const std::out_of_range&) {
      CB_LOG(Warn, "hss") << "malformed S6A message dropped";
    }
  });
}

void Hss::handle_5g_info(std::uint64_t txn, ByteReader& r, const net::EndPoint& from) {
  if (hn_keys_.empty()) {
    error_reply(from, txn, "5g not enabled");
    return;
  }
  const Bytes suci = r.bytes();
  const Result<std::string> supi = deconceal_suci(hn_keys_, suci);
  if (!supi.ok()) {
    obs::inc(obs::counter("epc.hss.suci_invalid"));
    error_reply(from, txn, "suci deconcealment failed");
    return;
  }
  auto sub = subscribers_.find(supi.value());
  if (sub == subscribers_.end()) {
    obs::inc(obs::counter("epc.hss.unknown_subscriber"));
    error_reply(from, txn, "unknown subscriber");
    return;
  }
  obs::inc(obs::counter("epc.hss.air5g_served"));
  const Auth5gVector v = generate_auth5g_vector(sub->second, sqn_[supi.value()], rng_);
  pending5g_[txn] = Pending5g{supi.value(), v.xres_star, v.kseaf};
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(S6aType::Auth5gInfoResp));
  w.u64(txn);
  w.bytes(v.rand);
  w.bytes(v.autn);
  w.bytes(v.hxres_star);
  reply(from, w.take());
}

void Hss::handle_5g_confirm(std::uint64_t txn, ByteReader& r, const net::EndPoint& from) {
  auto it = pending5g_.find(txn);
  if (it == pending5g_.end()) {
    error_reply(from, txn, "no pending 5g auth");
    return;
  }
  const Bytes res_star = r.bytes();
  const bool ok = constant_time_equal(res_star, it->second.xres_star);
  obs::inc(obs::counter(ok ? "epc.hss.confirm5g_ok" : "epc.hss.confirm5g_failed"));
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(S6aType::Auth5gConfirmResp));
  w.u64(txn);
  w.u8(ok ? 1 : 0);
  w.str(it->second.supi);
  w.bytes(ok ? it->second.kseaf : Bytes{});
  pending5g_.erase(it);
  reply(from, w.take());
}

void Hss::error_reply(const net::EndPoint& to, std::uint64_t txn, std::string_view reason) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(S6aType::Error));
  w.u64(txn);
  w.str(reason);
  reply(to, w.take());
}

void Hss::reply(const net::EndPoint& to, Bytes payload) {
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), kHssPort};
  p.dst = to;
  p.proto = net::Proto::Udp;
  p.payload = std::move(payload);
  node_.send(std::move(p));
}

}  // namespace cb::epc
