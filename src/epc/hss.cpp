#include "epc/hss.hpp"

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace cb::epc {

Hss::Hss(net::Node& node, Duration service_time)
    : node_(node),
      service_time_(service_time),
      queue_(node.simulator()),
      rng_(node.simulator().rng().fork(0x455)) {
  node_.bind_udp(kHssPort, [this](const net::Packet& p) { handle(p); });
}

void Hss::add_subscriber(const std::string& imsi, Bytes k) {
  subscribers_[imsi] = std::move(k);
}

bool Hss::has_subscriber(const std::string& imsi) const {
  return subscribers_.contains(imsi);
}

void Hss::handle(const net::Packet& packet) {
  // Keep the fields we need; processing happens after the service delay.
  // The payload is COW, so holding it in the closure is a pointer share.
  CowBytes payload = packet.payload;
  const net::EndPoint from = packet.src;
  queue_.submit(service_time_, [this, payload = std::move(payload), from] {
    try {
      ByteReader r(payload);
      const auto type = static_cast<S6aType>(r.u8());
      const std::uint64_t txn = r.u64();
      const std::string imsi = r.str();

      auto sub = subscribers_.find(imsi);
      if (sub == subscribers_.end()) {
        obs::inc(obs::counter("epc.hss.unknown_subscriber"));
        ByteWriter w;
        w.u8(static_cast<std::uint8_t>(S6aType::Error));
        w.u64(txn);
        w.str("unknown subscriber");
        reply(from, w.take());
        return;
      }

      if (type == S6aType::AuthInfoReq) {
        obs::inc(obs::counter("epc.hss.air_served"));
        const AuthVector v = generate_auth_vector(sub->second, rng_);
        ByteWriter w;
        w.u8(static_cast<std::uint8_t>(S6aType::AuthInfoResp));
        w.u64(txn);
        w.bytes(v.rand);
        w.bytes(v.xres);
        w.bytes(v.autn);
        w.bytes(v.kasme);
        reply(from, w.take());
      } else if (type == S6aType::UpdateLocationReq) {
        obs::inc(obs::counter("epc.hss.ulr_served"));
        locations_[imsi] = from.to_string();
        ByteWriter w;
        w.u8(static_cast<std::uint8_t>(S6aType::UpdateLocationResp));
        w.u64(txn);
        w.u8(1);  // success
        reply(from, w.take());
      }
    } catch (const std::out_of_range&) {
      CB_LOG(Warn, "hss") << "malformed S6A message dropped";
    }
  });
}

void Hss::reply(const net::EndPoint& to, Bytes payload) {
  net::Packet p;
  p.src = net::EndPoint{node_.primary_address(), kHssPort};
  p.dst = to;
  p.proto = net::Proto::Udp;
  p.payload = std::move(payload);
  node_.send(std::move(p));
}

}  // namespace cb::epc
