// HSS / SubscriberDB: the subscriber database of the MNO baseline.
//
// Serves two S6A-style requests over UDP — Authentication Information
// Request (AIR) and Update Location Request (ULR). The standard attach makes
// BOTH round-trips (TS 29.272); CellBricks' SAP replaces them with a single
// round-trip to brokerd, which is where Fig.7's latency win comes from.
#pragma once

#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "epc/auth.hpp"
#include "net/node.hpp"
#include "sim/service_queue.hpp"

namespace cb::epc {

inline constexpr std::uint16_t kHssPort = 3868;

/// S6A message types on the wire.
enum class S6aType : std::uint8_t {
  AuthInfoReq = 1,
  AuthInfoResp = 2,
  UpdateLocationReq = 3,
  UpdateLocationResp = 4,
  Error = 5,
};

class Hss {
 public:
  /// `service_time` is the per-request processing delay (Fig.7 calibration).
  Hss(net::Node& node, Duration service_time);

  /// Provision a subscriber with its permanent key K.
  void add_subscriber(const std::string& imsi, Bytes k);
  bool has_subscriber(const std::string& imsi) const;

  /// Cumulative processing time (Fig.7 breakdown).
  Duration busy_time() const { return queue_.busy_time(); }
  std::uint64_t requests_served() const { return queue_.jobs(); }

 private:
  void handle(const net::Packet& packet);
  void reply(const net::EndPoint& to, Bytes payload);

  net::Node& node_;
  Duration service_time_;
  sim::ServiceQueue queue_;
  std::unordered_map<std::string, Bytes> subscribers_;
  std::unordered_map<std::string, std::string> locations_;  // imsi -> serving MME
  Rng rng_;
};

}  // namespace cb::epc
