// HSS / SubscriberDB: the subscriber database of the MNO baseline.
//
// Serves two S6A-style requests over UDP — Authentication Information
// Request (AIR) and Update Location Request (ULR). The standard attach makes
// BOTH round-trips (TS 29.272); CellBricks' SAP replaces them with a single
// round-trip to brokerd, which is where Fig.7's latency win comes from.
#pragma once

#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "crypto/rsa.hpp"
#include "epc/auth.hpp"
#include "net/node.hpp"
#include "sim/service_queue.hpp"

namespace cb::epc {

inline constexpr std::uint16_t kHssPort = 3868;

/// S6A message types on the wire. Types 6-9 are the 5G-AKA extension: the
/// AUSF/UDM roles fold into this same subscriber-database node (the serving
/// side still pays home-network round-trips, which is what Fig.7 measures).
enum class S6aType : std::uint8_t {
  AuthInfoReq = 1,
  AuthInfoResp = 2,
  UpdateLocationReq = 3,
  UpdateLocationResp = 4,
  Error = 5,
  Auth5gInfoReq = 6,      // carries a SUCI, not a cleartext IMSI
  Auth5gInfoResp = 7,     // RAND, AUTN, HXRES* (RES*/KSEAF stay home-side)
  Auth5gConfirm = 8,      // serving side forwards the UE's RES*
  Auth5gConfirmResp = 9,  // ok flag + disclosed SUPI + KSEAF
};

class Hss {
 public:
  /// `service_time` is the per-request processing delay (Fig.7 calibration).
  Hss(net::Node& node, Duration service_time);

  /// Provision a subscriber with its permanent key K.
  void add_subscriber(const std::string& imsi, Bytes k);
  bool has_subscriber(const std::string& imsi) const;

  /// Enable the 5G-AKA service: generates the home-network keypair SUCIs
  /// are concealed under. Draws from `rng` only when called, so 4G worlds
  /// keep their RNG streams bit-identical.
  void enable_5g(Rng& rng, std::size_t modulus_bits = 512);
  /// Public half of the home-network key (the UE needs it to build SUCIs).
  const crypto::RsaPublicKey& home_network_key() const { return hn_keys_.public_key(); }

  /// Cumulative processing time (Fig.7 breakdown).
  Duration busy_time() const { return queue_.busy_time(); }
  std::uint64_t requests_served() const { return queue_.jobs(); }

 private:
  struct Pending5g {
    std::string supi;
    Bytes xres_star;
    Bytes kseaf;
  };

  void handle(const net::Packet& packet);
  void handle_5g_info(std::uint64_t txn, ByteReader& r, const net::EndPoint& from);
  void handle_5g_confirm(std::uint64_t txn, ByteReader& r, const net::EndPoint& from);
  void error_reply(const net::EndPoint& to, std::uint64_t txn, std::string_view reason);
  void reply(const net::EndPoint& to, Bytes payload);

  net::Node& node_;
  Duration service_time_;
  sim::ServiceQueue queue_;
  std::unordered_map<std::string, Bytes> subscribers_;
  std::unordered_map<std::string, std::string> locations_;  // imsi -> serving MME
  crypto::RsaKeyPair hn_keys_;                              // empty until enable_5g
  std::unordered_map<std::string, HssSqnState> sqn_;        // per-SUPI (5G path)
  std::unordered_map<std::uint64_t, Pending5g> pending5g_;  // txn -> awaiting confirm
  Rng rng_;
};

}  // namespace cb::epc
