// MME: the control-plane brain of the MNO baseline's attach procedure.
//
// Implements the standard flow the paper benchmarks as its baseline (§6.1):
//   AttachRequest → [S6A AIR → HSS → AIA]  (round-trip #1)
//   → Authentication challenge/response (EPS-AKA)
//   → Security Mode Command/Complete
//   → [S6A ULR → HSS → ULA]                (round-trip #2)
//   → create bearer at SGW/PGW → AttachAccept(IP)
// The two HSS round-trips are the baseline's defining cost; CellBricks' SAP
// needs only one broker round-trip.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "common/cow_bytes.hpp"
#include "common/result.hpp"
#include "epc/hss.hpp"
#include "epc/spgw.hpp"
#include "sim/service_queue.hpp"

namespace cb::epc {

/// Per-message processing delays, calibrated so the Fig.7 totals match the
/// paper's testbed (see DESIGN.md): UE 4 x 0.5 ms, eNB 6 x 0.5 ms,
/// AGW 4 x 3 ms, HSS 2 x 2.75 ms => 22.5 ms of processing per attach.
struct EpcProcProfile {
  Duration ue_msg = Duration::millis(0.5);
  Duration enb_msg = Duration::millis(0.5);
  Duration agw_msg = Duration::ms(3);
  Duration hss_req = Duration::millis(2.75);
};

class Mme {
 public:
  /// UE-side continuations for the dialog legs that cross the radio
  /// interface. The UE supplies these via UeNas.
  struct AttachHooks {
    /// EPS-AKA challenge: the UE verifies AUTN and calls `respond(res)`.
    std::function<void(Bytes rand, Bytes autn, std::function<void(Bytes)> respond)> challenge;
    /// Security mode command: the UE derives its keys and calls `complete`.
    std::function<void(std::function<void()> complete)> smc;
    /// Attach finished (IP assigned) or failed.
    std::function<void(Result<net::Ipv4Addr>)> done;
  };

  Mme(net::Node& agw_node, SgwPgw& spgw, net::EndPoint hss, EpcProcProfile profile = {});

  /// Begin the attach dialog for `imsi` arriving via `tower`/`radio_link`.
  void attach(const std::string& imsi, net::Node* ue_node, net::Node* tower,
              net::Link* radio_link, AttachHooks hooks);

  /// 5G registration (SEAF role): the UE supplies a SUCI, not an IMSI. The
  /// dialog costs three home round-trips (Auth5gInfo, Auth5gConfirm, ULR)
  /// against EPS-AKA's two — the HXRES* check is local, the RES* confirm is
  /// not. Reuses AttachHooks: `challenge` receives (RAND, AUTN) and responds
  /// with RES*.
  void attach5g(Bytes suci, net::Node* ue_node, net::Node* tower, net::Link* radio_link,
                AttachHooks hooks);

  /// Cumulative AGW control-plane processing time (Fig.7 breakdown).
  Duration busy_time() const { return queue_.busy_time(); }
  std::uint64_t attaches_completed() const { return completed_; }
  /// Serving-network anchor key from the most recent completed 5G attach
  /// (conformance tests compare it against the UE's derivation).
  const Bytes& last_kseaf() const { return last_kseaf_; }

  const EpcProcProfile& profile() const { return profile_; }
  SgwPgw& spgw() { return spgw_; }

 private:
  struct PendingAttach {
    std::string imsi;
    net::Node* ue_node;
    net::Node* tower;
    net::Link* radio_link;
    AttachHooks hooks;
    Bytes xres;
    TimePoint started_at;
  };

  void handle_hss_reply(const net::Packet& packet);
  void send_s6a(S6aType type, std::uint64_t txn, const std::string& imsi);
  void send_s6a_bytes(S6aType type, std::uint64_t txn, BytesView body);
  void fail(std::uint64_t txn, const std::string& reason);

  net::Node& node_;
  SgwPgw& spgw_;
  net::EndPoint hss_;
  EpcProcProfile profile_;
  sim::ServiceQueue queue_;
  std::uint16_t port_ = 0;
  std::uint64_t next_txn_ = 1;
  std::uint64_t completed_ = 0;
  Bytes last_kseaf_;
  std::unordered_map<std::uint64_t, PendingAttach> pending_;
  // txn -> continuation invoked with the decoded HSS reply payload
  std::unordered_map<std::uint64_t, std::function<void(CowBytes)>> awaiting_hss_;
};

}  // namespace cb::epc
