#include "epc/ue_nas.hpp"

#include "common/log.hpp"
#include "epc/auth.hpp"
#include "epc/auth5g.hpp"

namespace cb::epc {

UeNas::UeNas(net::Network& network, net::Node& ue_node, std::string imsi, Bytes k, Mme& mme,
             const ran::RanMap& ran_map, EpcProcProfile profile)
    : network_(network),
      ue_node_(ue_node),
      imsi_(std::move(imsi)),
      k_(std::move(k)),
      mme_(mme),
      ran_map_(ran_map),
      profile_(profile),
      ue_queue_(ue_node.simulator()),
      enb_queue_(ue_node.simulator()) {}

void UeNas::enable_5g(crypto::RsaPublicKey hn_key, Rng rng) {
  hn_key_ = std::move(hn_key);
  suci_rng_ = rng;
}

void UeNas::attach(ran::CellId cell, std::function<void(Result<net::Ipv4Addr>)> done) {
  const ran::TowerSite site = ran_map_.site(cell);
  site.radio_link->set_up(true);  // RRC connection established
  attach_started_ = ue_node_.simulator().now();
  auto done_shared = std::make_shared<std::function<void(Result<net::Ipv4Addr>)>>(std::move(done));

  Mme::AttachHooks hooks;
  // Radio legs (eNB relay) + UE processing are charged per message; the
  // radio/RRC airtime itself is excluded, as in the paper's measurements.
  hooks.challenge = [this](Bytes rand, Bytes autn, std::function<void(Bytes)> respond) {
    enb_queue_.submit(profile_.enb_msg, [this, rand = std::move(rand), autn = std::move(autn),
                                         respond = std::move(respond)] {
      ue_queue_.submit(profile_.ue_msg, [this, rand, autn, respond = std::move(respond)] {
        Bytes res;
        if (is_5g()) {
          // 5G: the AUTN carries an SQN; a stale or forged challenge aborts
          // silently just like a 4G MAC failure (the MME times out).
          const AutnCheck check = verify_autn_sqn(k_, rand, autn, ue_sqn_);
          if (check.verdict != AutnVerdict::Ok) {
            CB_LOG(Warn, "ue-nas")
                << imsi_ << ": 5G AUTN "
                << (check.verdict == AutnVerdict::MacFailure ? "MAC failure" : "sync failure")
                << ", aborting attach";
            return;
          }
          res = compute_res_star(k_, rand);
          last_kseaf_ = derive_kseaf(derive_kausf(k_, rand));
        } else {
          if (!verify_autn(k_, rand, autn)) {
            CB_LOG(Warn, "ue-nas") << imsi_ << ": AUTN verification failed, aborting attach";
            return;  // network failed to authenticate: silently drop
          }
          res = compute_res(k_, rand);
        }
        enb_queue_.submit(profile_.enb_msg,
                          [res = std::move(res), respond = std::move(respond)]() mutable {
                            respond(std::move(res));
                          });
      });
    });
  };
  hooks.smc = [this](std::function<void()> complete) {
    enb_queue_.submit(profile_.enb_msg, [this, complete = std::move(complete)] {
      ue_queue_.submit(profile_.ue_msg, [this, complete = std::move(complete)] {
        // Keys derived (K_ASME -> NAS/AS keys); send Security Mode Complete.
        enb_queue_.submit(profile_.enb_msg, std::move(complete));
      });
    });
  };
  hooks.done = [this, cell, site, done_shared](Result<net::Ipv4Addr> result) {
    enb_queue_.submit(profile_.enb_msg, [this, cell, site, done_shared,
                                         result = std::move(result)]() mutable {
      ue_queue_.submit(profile_.ue_msg, [this, cell, site, done_shared,
                                         result = std::move(result)]() mutable {
        if (result.ok()) {
          current_ip_ = result.value();
          serving_cell_ = cell;
          ue_node_.add_address(current_ip_);
          ue_node_.set_default_route(site.radio_link);
          last_attach_latency_ = ue_node_.simulator().now() - attach_started_;
        }
        (*done_shared)(std::move(result));
      });
    });
  };

  // [UE msg 1/4] craft Attach Request, [eNB leg 1/6] relay to the AGW.
  // 5G crafts a SUCI instead of sending the IMSI in clear.
  ue_queue_.submit(profile_.ue_msg, [this, site, hooks = std::move(hooks)]() mutable {
    Bytes suci;
    if (is_5g()) suci = conceal_supi(hn_key_, imsi_, suci_rng_);
    enb_queue_.submit(profile_.enb_msg,
                      [this, site, suci = std::move(suci), hooks = std::move(hooks)]() mutable {
      if (is_5g()) {
        mme_.attach5g(std::move(suci), &ue_node_, site.node, site.radio_link, std::move(hooks));
      } else {
        mme_.attach(imsi_, &ue_node_, site.node, site.radio_link, std::move(hooks));
      }
    });
  });
}

void UeNas::handover(ran::CellId cell, Duration interruption, std::function<void()> done) {
  if (!attached()) throw std::logic_error("UeNas: handover while detached");
  const ran::TowerSite old_site = ran_map_.site(serving_cell_);
  const ran::TowerSite new_site = ran_map_.site(cell);
  serving_cell_ = cell;

  // Break-before-make: the old bearer drops, the new one comes up after the
  // interruption; the IP is preserved (the PGW just switches the path), so
  // transports see at most a brief loss burst.
  old_site.radio_link->set_up(false);
  ue_node_.simulator().schedule(interruption, [this, cell, new_site, done = std::move(done)] {
    if (serving_cell_ != cell) return;  // superseded by a newer handover
    new_site.radio_link->set_up(true);
    // The path switch happens at the SPGW via the MME's user-plane driver.
    mme_.spgw().path_switch(imsi_, new_site.node, new_site.radio_link);
    ue_node_.set_default_route(new_site.radio_link);
    if (done) done();
  });
}

void UeNas::detach() {
  if (!attached()) return;
  const ran::TowerSite site = ran_map_.site(serving_cell_);
  site.radio_link->set_up(false);
  ue_node_.remove_address(current_ip_);
  mme_.spgw().release_session(imsi_);
  current_ip_ = net::Ipv4Addr{};
  serving_cell_ = 0;
}

}  // namespace cb::epc
