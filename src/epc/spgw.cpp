#include "epc/spgw.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace cb::epc {

SgwPgw::SgwPgw(net::Network& network, net::Node& gw_node, std::uint8_t ip_subnet)
    : network_(network),
      gw_node_(gw_node),
      subnet_(ip_subnet),
      obs_dl_packets_(obs::counter("epc.spgw.dl_packets")),
      obs_dl_bytes_(obs::counter("epc.spgw.dl_bytes")),
      obs_ul_packets_(obs::counter("epc.spgw.ul_packets")),
      obs_ul_bytes_(obs::counter("epc.spgw.ul_bytes")) {
  // Uplink metering: count transit packets sourced from subscriber IPs.
  gw_node_.set_forward_hook([this](net::Packet& p) {
    if (auto it = by_ip_.find(p.src.addr); it != by_ip_.end()) {
      sessions_[it->second].usage.ul_bytes += p.wire_size();
      obs::inc(obs_ul_packets_);
      obs::inc(obs_ul_bytes_, p.wire_size());
    }
    return false;  // metering only: normal routing continues
  });
}

net::Link* SgwPgw::find_link(net::Node* a, net::Node* b) const {
  for (net::Link* link : a->links()) {
    if (link->peer(a) == b) return link;
  }
  throw std::logic_error("SgwPgw: no link between " + a->name() + " and " + b->name());
}

void SgwPgw::install_tower_hook(net::Node* tower) {
  if (tower_bearers_.contains(tower)) return;
  tower_bearers_[tower] = {};
  tower->set_forward_hook([this, tower](net::Packet& p) {
    auto& bearers = tower_bearers_[tower];
    if (auto it = bearers.find(p.dst.addr); it != bearers.end()) {
      it->second->send(tower, std::move(p));
      return true;
    }
    return false;
  });
}

net::Ipv4Addr SgwPgw::create_session(const std::string& imsi, net::Node* ue_node,
                                     net::Node* tower, net::Link* radio_link) {
  if (sessions_.contains(imsi)) release_session(imsi);

  Session s;
  s.ip = network_.alloc_address(subnet_);
  s.ue_node = ue_node;
  s.tower = tower;
  s.radio_link = radio_link;
  // Co-located gateway+tower (small deployments): no backhaul leg.
  s.backhaul = tower == &gw_node_ ? nullptr : find_link(&gw_node_, tower);

  // Anchor the address here; the wider network routes subscriber traffic to
  // the PGW, which tunnels it down the current bearer.
  network_.register_address(s.ip, &gw_node_, /*proxy_only=*/true);
  gw_node_.add_proxy_address(s.ip, [this, imsi](net::Packet&& p) { downlink(imsi, std::move(p)); });

  if (tower != &gw_node_) {
    // (Installing a hook on the gateway itself would displace its uplink
    // metering hook; the proxy handler below already reaches the radio.)
    install_tower_hook(tower);
    tower_bearers_[tower][s.ip] = radio_link;
  }

  by_ip_[s.ip] = imsi;
  sessions_[imsi] = s;
  obs::inc(obs::counter("epc.spgw.sessions_created"));
  CB_LOG(Debug, "spgw") << "session " << imsi << " ip " << s.ip.to_string();
  return s.ip;
}

void SgwPgw::downlink(const std::string& imsi, net::Packet&& packet) {
  auto it = sessions_.find(imsi);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  s.usage.dl_bytes += packet.wire_size();
  obs::inc(obs_dl_packets_);
  obs::inc(obs_dl_bytes_, packet.wire_size());
  if (s.backhaul != nullptr) {
    s.backhaul->send(&gw_node_, std::move(packet));
  } else {
    s.radio_link->send(&gw_node_, std::move(packet));
  }
}

void SgwPgw::path_switch(const std::string& imsi, net::Node* tower, net::Link* radio_link) {
  auto it = sessions_.find(imsi);
  if (it == sessions_.end()) throw std::logic_error("SgwPgw: path_switch without session");
  obs::inc(obs::counter("epc.spgw.path_switches"));
  Session& s = it->second;
  if (s.tower != &gw_node_) tower_bearers_[s.tower].erase(s.ip);
  s.tower = tower;
  s.radio_link = radio_link;
  s.backhaul = tower == &gw_node_ ? nullptr : find_link(&gw_node_, tower);
  if (tower != &gw_node_) {
    install_tower_hook(tower);
    tower_bearers_[tower][s.ip] = radio_link;
  }
}

void SgwPgw::release_session(const std::string& imsi) {
  auto it = sessions_.find(imsi);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  tower_bearers_[s.tower].erase(s.ip);
  gw_node_.remove_proxy_address(s.ip);
  network_.unregister_address(s.ip);
  by_ip_.erase(s.ip);
  sessions_.erase(it);
}

net::Ipv4Addr SgwPgw::session_ip(const std::string& imsi) const {
  auto it = sessions_.find(imsi);
  return it == sessions_.end() ? net::Ipv4Addr{} : it->second.ip;
}

SgwPgw::Usage SgwPgw::usage(const std::string& imsi) const {
  auto it = sessions_.find(imsi);
  return it == sessions_.end() ? Usage{} : it->second.usage;
}

}  // namespace cb::epc
