// EPS-AKA authentication vectors (TS 33.401 shape).
//
// The cryptographic core of the MNO baseline: HSS and USIM share a secret K;
// the HSS derives a challenge vector (RAND, XRES, AUTN, K_ASME); the UE
// proves possession of K by returning RES and verifies the network via AUTN.
// HMAC-SHA256 stands in for Milenage — same trust structure, same message
// flow, honest computational cost.
#pragma once

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace cb::epc {

struct AuthVector {
  Bytes rand;   // 16-byte challenge
  Bytes xres;   // expected response
  Bytes autn;   // network authentication token
  Bytes kasme;  // session master key
};

/// HSS side: derive a fresh vector for subscriber key `k`.
AuthVector generate_auth_vector(BytesView k, Rng& rng);

/// UE side: response to a challenge.
Bytes compute_res(BytesView k, BytesView rand);

/// UE side: check that the network knows K (mutual authentication).
bool verify_autn(BytesView k, BytesView rand, BytesView autn);

/// Both sides: session master key.
Bytes derive_kasme(BytesView k, BytesView rand);

// --- Sequence-number (SQN) state machine (TS 33.102 §6.3 shape) ------------
//
// The stateless vector above models the happy path only. Real AKA carries a
// 48-bit sequence number inside AUTN (concealed by an anonymity key AK) so
// the UE can detect replayed challenges, and a resynchronisation token AUTS
// so an out-of-step HSS can recover. The states below make those failure
// branches (MAC failure, SQN-out-of-range, resync, wraparound) testable.

/// SQN arithmetic is modulo 2^48; freshness is a forward window of 2^28.
inline constexpr std::uint64_t kSqnModulus = 1ull << 48;
inline constexpr std::uint64_t kSqnWindow = 1ull << 28;

/// HSS side: the next sequence number to issue for one subscriber. Starts
/// at 1: a factory-fresh UE holds SQN_MS = 0 and freshness requires a
/// strictly positive delta, so issuing 0 first would force a needless
/// resync round on the very first attach.
struct HssSqnState {
  std::uint64_t sqn = 1;
};

/// UE side: the highest sequence number accepted so far (SQN_MS).
struct UeSqnState {
  std::uint64_t sqn_ms = 0;
};

/// Outcome of the UE's AUTN check.
enum class AutnVerdict {
  Ok,           // MAC valid, SQN fresh: challenge accepted
  MacFailure,   // MAC invalid: network does not know K (or AUTN tampered)
  SyncFailure,  // MAC valid but SQN stale/out-of-window: AUTS carries SQN_MS
};

struct AutnCheck {
  AutnVerdict verdict = AutnVerdict::MacFailure;
  Bytes auts;          // resynchronisation token, set on SyncFailure
  std::uint64_t sqn = 0;  // the SQN recovered from AUTN (valid unless MacFailure)
};

/// HSS side: derive a vector whose AUTN carries `state`'s next SQN (the
/// state advances). The stateless AUTN above and this one are distinct
/// formats; pair generate/verify consistently.
AuthVector generate_auth_vector_sqn(BytesView k, HssSqnState& state, Rng& rng);

/// UE side: full AUTN check — MAC, then SQN freshness against `state`.
/// On Ok the state advances to the challenge's SQN; on SyncFailure the
/// returned AUTS conceals and authenticates the UE's SQN_MS.
AutnCheck verify_autn_sqn(BytesView k, BytesView rand, BytesView autn, UeSqnState& state);

/// HSS side: process an AUTS token. Returns false if its MAC does not
/// verify; on success `state.sqn` jumps to the UE's SQN_MS so the next
/// vector is fresh again.
bool resynchronize_sqn(BytesView k, BytesView rand, BytesView auts, HssSqnState& state);

}  // namespace cb::epc
