// EPS-AKA authentication vectors (TS 33.401 shape).
//
// The cryptographic core of the MNO baseline: HSS and USIM share a secret K;
// the HSS derives a challenge vector (RAND, XRES, AUTN, K_ASME); the UE
// proves possession of K by returning RES and verifies the network via AUTN.
// HMAC-SHA256 stands in for Milenage — same trust structure, same message
// flow, honest computational cost.
#pragma once

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace cb::epc {

struct AuthVector {
  Bytes rand;   // 16-byte challenge
  Bytes xres;   // expected response
  Bytes autn;   // network authentication token
  Bytes kasme;  // session master key
};

/// HSS side: derive a fresh vector for subscriber key `k`.
AuthVector generate_auth_vector(BytesView k, Rng& rng);

/// UE side: response to a challenge.
Bytes compute_res(BytesView k, BytesView rand);

/// UE side: check that the network knows K (mutual authentication).
bool verify_autn(BytesView k, BytesView rand, BytesView autn);

/// Both sides: session master key.
Bytes derive_kasme(BytesView k, BytesView rand);

}  // namespace cb::epc
