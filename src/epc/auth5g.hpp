// 5G-AKA authentication (TS 33.501 §6.1 shape).
//
// The second incumbent baseline next to EPS-AKA. Three structural changes
// from 4G, all modelled here:
//   1. SUCI — the UE never sends its permanent identifier (SUPI) in clear;
//      it is concealed under the home network's public key (anti-IMSI-catcher
//      by construction, the property SAP gets from its sealed boxes).
//   2. RES* / HXRES* — the serving side (SEAF, folded into our Mme) checks a
//      hash of the UE response locally, then the home side (AUSF, folded
//      into our Hss) confirms the full RES* — one extra home round-trip.
//   3. The KAUSF -> KSEAF -> KAMF key chain replaces the single K_ASME.
// HMAC-SHA256 stands in for the 3GPP KDFs exactly as in auth.cpp; the AUTN
// reuses the SQN machinery from auth.hpp so replay/resync semantics match.
#pragma once

#include "common/result.hpp"
#include "crypto/rsa.hpp"
#include "epc/auth.hpp"

namespace cb::epc {

struct Auth5gVector {
  Bytes rand;        // 16-byte challenge
  Bytes autn;        // SQN-carrying network token (auth.hpp format)
  Bytes xres_star;   // expected full response (home side only)
  Bytes hxres_star;  // SHA256(RAND || XRES*): the serving side's local check
  Bytes kausf;       // home-network anchor key
  Bytes kseaf;       // serving-network anchor key
};

/// UE side: conceal the SUPI under the home network public key (SUCI).
Bytes conceal_supi(const crypto::RsaPublicKey& hn_key, std::string_view supi, Rng& rng);

/// Home side: recover the SUPI from a SUCI.
Result<std::string> deconceal_suci(const crypto::RsaKeyPair& hn_keys, BytesView suci);

/// Home side (AUSF/UDM): derive a fresh 5G vector; AUTN carries the next SQN.
Auth5gVector generate_auth5g_vector(BytesView k, HssSqnState& state, Rng& rng);

/// UE side: the full response RES*.
Bytes compute_res_star(BytesView k, BytesView rand);

/// Serving side: HXRES* = SHA256(RAND || RES*) — computable from the
/// over-the-air RES* without knowing K.
Bytes hash_res_star(BytesView rand, BytesView res_star);

/// Key chain. KAUSF and KSEAF are derivable by both the home side and the
/// UE; KAMF binds the serving session to the disclosed SUPI.
Bytes derive_kausf(BytesView k, BytesView rand);
Bytes derive_kseaf(BytesView kausf);
Bytes derive_kamf(BytesView kseaf, std::string_view supi);

}  // namespace cb::epc
