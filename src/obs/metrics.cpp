#include "obs/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace cb::obs {

namespace {

thread_local Registry* g_active = nullptr;

// Shortest round-trip decimal form: deterministic across runs, and parseable
// back to the exact same double, so snapshot equality is value equality.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  out.append(s);  // metric names are controlled identifiers; no escaping needed
  out += '"';
}

}  // namespace

// --- Histogram -------------------------------------------------------------

std::size_t Histogram::bucket_index(double v) {
  if (!(v >= std::ldexp(1.0, kMinOctave))) return 0;  // underflow, <=0 and NaN too
  if (v >= std::ldexp(1.0, kMaxOctave + 1)) return kBuckets - 1;
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
  const int octave = exp - 1;               // v in [2^octave, 2^(octave+1))
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(octave - kMinOctave) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_lower(std::size_t i) {
  if (i == 0) return 0.0;
  if (i >= kBuckets - 1) return std::ldexp(1.0, kMaxOctave + 1);
  const std::size_t j = i - 1;
  const int octave = kMinOctave + static_cast<int>(j / kSubBuckets);
  const int sub = static_cast<int>(j % kSubBuckets);
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double Histogram::bucket_upper(std::size_t i) {
  if (i == 0) return std::ldexp(1.0, kMinOctave);
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  const std::size_t j = i - 1;
  const int octave = kMinOctave + static_cast<int>(j / kSubBuckets);
  const int sub = static_cast<int>(j % kSubBuckets);
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  if (counts_.empty()) counts_.assign(kBuckets, 0);
  ++counts_[bucket_index(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: smallest rank r (1-based) with r >= p/100 * count.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      double rep;
      if (i == 0) {
        rep = min_;  // underflow bucket: best estimate is the true minimum
      } else if (i == kBuckets - 1) {
        rep = max_;
      } else {
        rep = 0.5 * (bucket_lower(i) + bucket_upper(i));
      }
      return std::clamp(rep, min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kBuckets, 0);
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

// --- Registry --------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(std::string(name), Counter{}).first;
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.emplace(std::string(name), Gauge{}).first;
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(std::string(name), Histogram{}).first;
  return it->second;
}

const Counter* Registry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).inc(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).set(g.value());
  for (const auto& [name, h] : other.histograms_) histogram(name).merge(h);
  recorder_.append(other.recorder_);
}

std::string Registry::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    ";
    append_quoted(out, name);
    out += ": ";
    append_u64(out, c.value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    ";
    append_quoted(out, name);
    out += ": ";
    append_double(out, g.value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    out += "    ";
    append_quoted(out, name);
    out += ": {\"count\": ";
    append_u64(out, h.count());
    out += ", \"sum\": ";
    append_double(out, h.sum());
    out += ", \"min\": ";
    append_double(out, h.min());
    out += ", \"max\": ";
    append_double(out, h.max());
    out += ", \"p50\": ";
    append_double(out, h.p50());
    out += ", \"p95\": ";
    append_double(out, h.p95());
    out += ", \"p99\": ";
    append_double(out, h.p99());
    out += "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"trace\": {\"recorded\": ";
  append_u64(out, recorder_.total_recorded());
  out += ", \"dropped\": ";
  append_u64(out, recorder_.dropped());
  out += ", \"fingerprint\": \"";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(recorder_.fingerprint()));
  out += buf;
  out += "\"}\n}";
  return out;
}

std::string Registry::digest() const {
  std::string out = "obs: ";
  append_u64(out, counters_.size());
  out += " counters, ";
  append_u64(out, gauges_.size());
  out += " gauges, ";
  append_u64(out, histograms_.size());
  out += " histograms, ";
  append_u64(out, recorder_.total_recorded());
  out += " trace records (fingerprint ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(recorder_.fingerprint()));
  out += buf;
  out += ")";
  return out;
}

// --- Active registry -------------------------------------------------------

Registry* active() { return g_active; }
void set_active(Registry* registry) { g_active = registry; }

}  // namespace cb::obs
