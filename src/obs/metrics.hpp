// Sim-time metrics registry: counters, gauges, and fixed-bucket log-linear
// histograms, keyed by `component.metric{label}` strings and snapshotable to
// deterministic JSON.
//
// Concurrency model — lock-free on the hot path by construction: a Registry
// is thread-confined. Every simulation trial runs one Simulator on one
// thread with its own Registry installed via the thread-local active pointer
// (the same pattern as the logger's sim-time source), so counter increments
// are plain unsynchronized integer adds. Cross-trial aggregation happens at
// the TrialRunner barrier, which merges the per-trial registries in trial
// INDEX order (never completion order) so a parallel sweep snapshots
// byte-identically to a serial one.
//
// Cost model: instrumentation sites acquire handles (`obs::Counter*`) from
// the active registry; with no registry installed the handles are null and
// every record operation is one predictable branch (~0 cost). Defining
// CB_OBS_COMPILED_OUT turns the helpers into constant-null stubs the
// optimizer deletes entirely.
//
// Determinism rules (see DESIGN.md §9): record sim-time quantities only —
// never wall clock, never thread ids — and never schedule events or draw
// randomness from inside instrumentation. Observation must not perturb the
// run: the chaos golden fingerprints hold with metrics enabled or disabled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace cb::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Fixed-bucket log-linear histogram (HDR-style): each power-of-two octave
/// is split into kSubBuckets linear buckets, so any recorded value lands in
/// a bucket whose bounds are within a 1/kSubBuckets relative error of it.
/// Percentiles are answered by nearest-rank over the bucket counts and
/// reported as the bucket midpoint clamped to the observed [min, max], which
/// keeps the quantile estimate within one bucket width of the truth.
class Histogram {
 public:
  static constexpr int kSubBuckets = 32;     // rel. bucket error <= 3.125%
  static constexpr int kMinOctave = -16;     // smallest resolved value 2^-16
  static constexpr int kMaxOctave = 47;      // largest resolved value < 2^48
  static constexpr std::size_t kBuckets =
      2 + static_cast<std::size_t>(kMaxOctave - kMinOctave + 1) * kSubBuckets;

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Nearest-rank percentile estimate, p in [0, 100]; 0 when empty.
  double percentile(double p) const;
  double p50() const { return percentile(50); }
  double p95() const { return percentile(95); }
  double p99() const { return percentile(99); }

  /// Bucket index a value maps to (exposed for the property tests).
  static std::size_t bucket_index(double v);
  /// Inclusive-lower/exclusive-upper bounds of bucket `i`.
  static double bucket_lower(std::size_t i);
  static double bucket_upper(std::size_t i);

  std::uint64_t bucket_count(std::size_t i) const {
    return counts_.empty() ? 0 : counts_[i];
  }

  void merge(const Histogram& other);

 private:
  std::vector<std::uint64_t> counts_;  // allocated lazily on first observe
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One trial's worth of metrics plus its flight recorder. Thread-confined;
/// see the header comment for the concurrency and determinism contract.
class Registry {
 public:
  explicit Registry(std::size_t trace_capacity = 8192) : recorder_(trace_capacity) {}

  /// Find-or-create. Returned references are stable for the registry's
  /// lifetime (node-based storage), so call sites may cache the pointer.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Lookup without creating (tests, report generators); null if absent.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  FlightRecorder& trace() { return recorder_; }
  const FlightRecorder& trace() const { return recorder_; }

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }

  /// Fold `other` in: counters and histograms accumulate, gauges take the
  /// merged-in value (last merge wins — callers merge in trial index order),
  /// trace records append oldest-first.
  void merge(const Registry& other);

  /// Deterministic JSON snapshot: keys sorted, doubles in shortest
  /// round-trip form, trace condensed to counts + fingerprint. Two
  /// registries with identical contents serialize byte-identically.
  std::string to_json() const;

  /// One-line summary for bench footers.
  std::string digest() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  FlightRecorder recorder_;
};

/// The registry installed on THIS thread (null = metrics disabled).
Registry* active();
void set_active(Registry* registry);

/// RAII install/restore of the active registry, nesting-safe.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* registry) : prev_(active()) { set_active(registry); }
  ~ScopedRegistry() { set_active(prev_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

// --- Instrumentation-site helpers ------------------------------------------
// Null-safe: with no active registry (or CB_OBS_COMPILED_OUT) they cost one
// branch or nothing at all.

#ifdef CB_OBS_COMPILED_OUT
inline Counter* counter(std::string_view) { return nullptr; }
inline Gauge* gauge(std::string_view) { return nullptr; }
inline Histogram* histogram(std::string_view) { return nullptr; }
inline void trace(TimePoint, TraceType, std::uint64_t = 0, std::uint64_t = 0) {}
#else
inline Counter* counter(std::string_view name) {
  Registry* r = active();
  return r ? &r->counter(name) : nullptr;
}
inline Gauge* gauge(std::string_view name) {
  Registry* r = active();
  return r ? &r->gauge(name) : nullptr;
}
inline Histogram* histogram(std::string_view name) {
  Registry* r = active();
  return r ? &r->histogram(name) : nullptr;
}
inline void trace(TimePoint at, TraceType type, std::uint64_t a = 0, std::uint64_t b = 0) {
  if (Registry* r = active()) r->trace().record(at, type, a, b);
}
#endif

inline void inc(Counter* c, std::uint64_t n = 1) {
  if (c) c->inc(n);
}
inline void set(Gauge* g, double v) {
  if (g) g->set(v);
}
inline void observe(Histogram* h, double v) {
  if (h) h->observe(v);
}

}  // namespace cb::obs
