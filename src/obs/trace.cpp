#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace cb::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

}  // namespace

const char* to_string(TraceType type) {
  switch (type) {
    case TraceType::AttachStart: return "attach_start";
    case TraceType::AttachOk: return "attach_ok";
    case TraceType::AttachFail: return "attach_fail";
    case TraceType::AttachTimeout: return "attach_timeout";
    case TraceType::AttachRetry: return "attach_retry";
    case TraceType::SapAuthOk: return "sap_auth_ok";
    case TraceType::SapAuthDenied: return "sap_auth_denied";
    case TraceType::HandoverDetach: return "handover_detach";
    case TraceType::HandoverReattach: return "handover_reattach";
    case TraceType::BearerLoss: return "bearer_loss";
    case TraceType::CellChange: return "cell_change";
    case TraceType::ReportSend: return "report_send";
    case TraceType::ReportAck: return "report_ack";
    case TraceType::ReportAbandoned: return "report_abandoned";
    case TraceType::ReportIngest: return "report_ingest";
    case TraceType::ReportPaired: return "report_paired";
    case TraceType::ReportUnpairedExpired: return "report_unpaired_expired";
    case TraceType::SessionInstalled: return "session_installed";
    case TraceType::SessionReleased: return "session_released";
    case TraceType::SessionGc: return "session_gc";
    case TraceType::SubflowOpen: return "subflow_open";
    case TraceType::SubflowSwitch: return "subflow_switch";
    case TraceType::SubflowClose: return "subflow_close";
    case TraceType::EpcAttachStart: return "epc_attach_start";
    case TraceType::EpcAttachDone: return "epc_attach_done";
    case TraceType::Reselection: return "reselection";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void FlightRecorder::record(TimePoint at, TraceType type, std::uint64_t a, std::uint64_t b) {
  ring_[total_ % ring_.size()] = TraceRecord{at, type, a, b};
  ++total_;
}

std::size_t FlightRecorder::size() const {
  return static_cast<std::size_t>(std::min<std::uint64_t>(total_, ring_.size()));
}

std::uint64_t FlightRecorder::dropped() const { return total_ - size(); }

std::vector<TraceRecord> FlightRecorder::dump() const {
  const std::size_t n = size();
  std::vector<TraceRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(total_ - n + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceRecord& r = ring_[(total_ - n + i) % ring_.size()];
    fnv_mix(h, static_cast<std::uint64_t>(r.at.nanos()));
    fnv_mix(h, static_cast<std::uint64_t>(r.type));
    fnv_mix(h, r.a);
    fnv_mix(h, r.b);
  }
  fnv_mix(h, total_);
  return h;
}

std::string FlightRecorder::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const TraceRecord& r : dump()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"t_ns\": %lld, \"event\": \"%s\", \"a\": %llu, \"b\": %llu}",
                  first ? "" : ", ", static_cast<long long>(r.at.nanos()), to_string(r.type),
                  static_cast<unsigned long long>(r.a), static_cast<unsigned long long>(r.b));
    out += buf;
    first = false;
  }
  out += "]";
  return out;
}

void FlightRecorder::append(const FlightRecorder& other) {
  for (const TraceRecord& r : other.dump()) record(r.at, r.type, r.a, r.b);
}

void FlightRecorder::clear() { total_ = 0; }

}  // namespace cb::obs
