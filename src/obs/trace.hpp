// Flight recorder: a bounded ring buffer of typed simulation events.
//
// Components append fixed-size records (sim-time stamp, event type, two
// type-specific operands) as interesting things happen — attach phases, SAP
// round trips, handover detach→reattach gaps, report send/ack, MPTCP subflow
// switches. The ring keeps the most recent `capacity` records with O(1)
// memory and no allocation after construction, so it can stay armed for a
// whole run and be dumped on demand when something needs explaining.
//
// Determinism: records carry sim-time only (never wall clock), so two
// same-seed runs produce identical rings; fingerprint() condenses that into
// a single comparable value, the trace twin of the chaos state fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace cb::obs {

/// Typed simulation events. Operands `a`/`b` are event-specific (cell ids,
/// session ids, report sequence numbers, subflow tokens).
enum class TraceType : std::uint8_t {
  // UE attach lifecycle (a = cell id).
  AttachStart = 1,
  AttachOk,        // b = latency in microseconds
  AttachFail,
  AttachTimeout,
  AttachRetry,
  // SAP round trip, broker side (a = session id).
  SapAuthOk,
  SapAuthDenied,
  // Host-driven mobility (a = cell id).
  HandoverDetach,
  HandoverReattach,  // b = outage-to-recovered gap in microseconds
  BearerLoss,
  CellChange,        // a = old cell, b = new cell
  // Billing report channel (a = report seq or session id, b = period).
  ReportSend,
  ReportAck,
  ReportAbandoned,
  ReportIngest,
  ReportPaired,
  ReportUnpairedExpired,
  // bTelco session lifecycle (a = session id).
  SessionInstalled,
  SessionReleased,
  SessionGc,
  // MPTCP path management (a = connection token).
  SubflowOpen,
  SubflowSwitch,
  SubflowClose,
  // EPC baseline attach (a = MME transaction).
  EpcAttachStart,
  EpcAttachDone,
  // Measurement-driven reselection audit (a = target cell, b = reason as
  // ran::ReselectReason). Appended after every pre-existing type so older
  // recorded rings keep their numeric encoding.
  Reselection,
};

const char* to_string(TraceType type);

struct TraceRecord {
  TimePoint at;
  TraceType type = TraceType::AttachStart;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  bool operator==(const TraceRecord&) const = default;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 8192);

  /// Append one record; overwrites the oldest once the ring is full.
  void record(TimePoint at, TraceType type, std::uint64_t a = 0, std::uint64_t b = 0);

  std::size_t capacity() const { return ring_.size(); }
  /// Records currently held (<= capacity).
  std::size_t size() const;
  /// Records appended over the recorder's lifetime.
  std::uint64_t total_recorded() const { return total_; }
  /// Records evicted by wraparound (= total_recorded - size).
  std::uint64_t dropped() const;

  /// Snapshot of the held records, oldest first.
  std::vector<TraceRecord> dump() const;

  /// FNV-1a over the held records — the determinism witness for traces.
  std::uint64_t fingerprint() const;

  /// Full on-demand dump as a JSON array of event objects (oldest first).
  std::string to_json() const;

  /// Fold another recorder's records in, oldest first (per-trial merge).
  void append(const FlightRecorder& other);

  void clear();

 private:
  std::vector<TraceRecord> ring_;  // fixed size; slot i holds record (total_ - size + i)
  std::uint64_t total_ = 0;
};

}  // namespace cb::obs
