#include "common/bytes.hpp"

#include <stdexcept>

namespace cb {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: bad hex digit");
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_val(hex[i]) << 4 | hex_val(hex[i + 1])));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::bytes(BytesView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw std::out_of_range("ByteReader: truncated message");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::bytes() {
  std::uint32_t n = u32();
  return raw(n);
}

std::string ByteReader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

}  // namespace cb
