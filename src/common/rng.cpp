#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace cb {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's rejection method keeps the distribution exactly uniform.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::chance(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  gauss_ = r * std::sin(2.0 * std::numbers::pi * u2);
  have_gauss_ = true;
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

Bytes Rng::random_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t v = next_u64();
    for (int k = 0; k < 8; ++k) out[i + static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(v >> (k * 8));
    i += 8;
  }
  if (i < n) {
    std::uint64_t v = next_u64();
    for (; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

Rng Rng::fork(std::uint64_t tag) {
  return Rng(next_u64() ^ (tag * 0x9E3779B97F4A7C15ULL));
}

}  // namespace cb
