#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cb {

void Summary::add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("Summary::percentile on empty set");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void TimeSeries::add(TimePoint t, double value) {
  if (t.nanos() < 0) return;
  const auto idx = static_cast<std::size_t>(t.nanos() / width_.nanos());
  if (idx >= values_.size()) values_.resize(idx + 1, 0.0);
  values_[idx] += value;
}

double TimeSeries::bucket(std::size_t i) const {
  return i < values_.size() ? values_[i] : 0.0;
}

std::vector<double> TimeSeries::rates() const {
  std::vector<double> out(values_.size());
  const double w = width_.to_seconds();
  for (std::size_t i = 0; i < values_.size(); ++i) out[i] = values_[i] / w;
  return out;
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace cb
