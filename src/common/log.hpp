// Minimal leveled logger with component tags and simulated-time prefixes.
//
// Logging defaults to Warn so benchmarks stay quiet; tests and examples
// raise the level when narrating behaviour.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "common/time.hpp"

namespace cb {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

namespace log_detail {
LogLevel& global_level();
void emit(LogLevel level, std::string_view component, const std::string& message);
/// The simulator registers itself here so log lines carry simulated time.
void set_time_source(TimePoint (*now_fn)());
}  // namespace log_detail

/// Set the process-wide minimum level that is emitted.
inline void set_log_level(LogLevel level) { log_detail::global_level() = level; }
inline LogLevel log_level() { return log_detail::global_level(); }

/// Streaming log statement: `CB_LOG(Info, "mme") << "attach from " << imsi;`
#define CB_LOG(level_, component_)                                            \
  for (bool cb_log_once = ::cb::LogLevel::level_ >= ::cb::log_level();        \
       cb_log_once; cb_log_once = false)                                      \
  ::cb::log_detail::LogLine(::cb::LogLevel::level_, component_)

namespace log_detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { emit(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace log_detail

}  // namespace cb
