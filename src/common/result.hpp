// A small success-or-error type used where failures are expected protocol
// outcomes (bad signature, unknown subscriber, ...) rather than bugs.
// C++23's std::expected is not available on this toolchain.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace cb {

/// Result<T> carries either a value or a human-readable error string.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  static Result err(std::string message) { return Result(Error{std::move(message)}); }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_ok();
    return *value_;
  }
  T& value() & {
    require_ok();
    return *value_;
  }
  T&& take() {
    require_ok();
    return std::move(*value_);
  }
  const std::string& error() const { return error_; }

 private:
  struct Error {
    std::string message;
  };
  explicit Result(Error e) : error_(std::move(e.message)) {}
  void require_ok() const {
    if (!ok()) throw std::logic_error("Result::value on error: " + error_);
  }

  std::optional<T> value_;
  std::string error_;
};

/// Result<void> analogue.
class Status {
 public:
  static Status ok() { return Status(""); }
  static Status err(std::string message) { return Status(std::move(message)); }

  bool is_ok() const { return error_.empty(); }
  explicit operator bool() const { return is_ok(); }
  const std::string& error() const { return error_; }

 private:
  explicit Status(std::string e) : error_(std::move(e)) {}
  std::string error_;
};

}  // namespace cb
