// Deterministic pseudo-random number generation.
//
// The whole simulator runs from explicit Rng instances (never global state)
// so that a fixed seed reproduces a run bit-for-bit — a property the event
// engine's tests assert. xoshiro256** is used for speed and quality;
// splitmix64 expands the seed.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace cb {

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();
  /// Uniform in [0, bound) without modulo bias (bound > 0).
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double next_double();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Bernoulli trial.
  bool chance(double p);
  /// Exponentially distributed value with the given mean.
  double exponential(double mean);
  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);
  /// Fill a buffer with random bytes (used for nonces and symmetric keys).
  Bytes random_bytes(std::size_t n);

  /// Derive an independent child generator; children with distinct tags do
  /// not correlate with the parent stream.
  Rng fork(std::uint64_t tag);

 private:
  std::uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace cb
