// Copy-on-write byte buffer for packet payloads.
//
// A packet is copied at every hop of the simulated network (link queues,
// serialization/propagation closures, node forwarding, proxy fan-out), but
// its payload is almost never modified in flight — the single exception is
// injected corruption. CowBytes makes those copies O(1) by sharing one
// immutable buffer; `mutate()` materializes a private copy only when a
// writer actually appears.
//
// The read API mirrors the subset of std::vector<uint8_t> the codebase uses
// on payloads (size/empty/index/iterate/implicit BytesView), so call sites
// stay idiomatic. There is deliberately no implicit conversion back to
// Bytes: a deep copy must be visible at the call site (`to_bytes()`).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.hpp"

namespace cb {

class CowBytes {
 public:
  CowBytes() = default;
  CowBytes(Bytes b)  // NOLINT(google-explicit-constructor): payload = <Bytes expr>
      : data_(b.empty() ? nullptr : std::make_shared<Bytes>(std::move(b))) {}

  CowBytes& operator=(Bytes b) {
    data_ = b.empty() ? nullptr : std::make_shared<Bytes>(std::move(b));
    return *this;
  }

  // Copies/moves of CowBytes itself share the buffer (that is the point).
  CowBytes(const CowBytes&) = default;
  CowBytes(CowBytes&&) noexcept = default;
  CowBytes& operator=(const CowBytes&) = default;
  CowBytes& operator=(CowBytes&&) noexcept = default;

  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }

  const std::uint8_t* data() const { return data_ ? data_->data() : nullptr; }
  std::uint8_t operator[](std::size_t i) const { return (*data_)[i]; }

  Bytes::const_iterator begin() const { return data_ ? data_->begin() : empty_().begin(); }
  Bytes::const_iterator end() const { return data_ ? data_->end() : empty_().end(); }

  BytesView view() const { return data_ ? BytesView{*data_} : BytesView{}; }
  operator BytesView() const { return view(); }  // NOLINT(google-explicit-constructor)

  void assign(std::size_t n, std::uint8_t v) {
    data_ = n == 0 ? nullptr : std::make_shared<Bytes>(n, v);
  }

  /// Deep copy out (the only way back to an owned Bytes).
  Bytes to_bytes() const { return data_ ? *data_ : Bytes{}; }

  /// Writable reference to a private copy: clones the buffer first if it is
  /// shared with other packets. Only the corruption-injection path uses it.
  Bytes& mutate() {
    if (!data_) {
      data_ = std::make_shared<Bytes>();
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<Bytes>(*data_);
    }
    return *data_;
  }

  friend bool operator==(const CowBytes& a, const CowBytes& b) {
    if (a.data_ == b.data_) return true;
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const CowBytes& a, const Bytes& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  static const Bytes& empty_() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  std::shared_ptr<Bytes> data_;  // never exposed mutably while shared
};

}  // namespace cb
