// Byte-buffer type and a small big-endian serialization layer.
//
// Every wire message in the repo (SAP, NAS, traffic reports, MPTCP record
// framing) is serialized through ByteWriter/ByteReader so that crypto
// operations (hash, sign, encrypt) act on real octets, exactly as they would
// on a production wire format.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cb {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Render a byte span as lowercase hex (for logs and fingerprints).
std::string to_hex(BytesView data);

/// Parse lowercase/uppercase hex into bytes; throws std::invalid_argument on
/// malformed input.
Bytes from_hex(std::string_view hex);

/// Convert a string to its byte representation (no copy of semantics, just
/// octets; used for identifiers inside signed messages).
Bytes to_bytes(std::string_view s);

/// Constant-time equality for MAC/signature comparison.
bool constant_time_equal(BytesView a, BytesView b);

/// Append-only big-endian serializer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix.
  void raw(BytesView data);
  /// Length-prefixed (u32) byte string.
  void bytes(BytesView data);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Cursor-based big-endian deserializer. All accessors throw
/// std::out_of_range when the buffer is exhausted, which callers treat as a
/// malformed-message error.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes raw(std::size_t n);
  /// Reads a u32 length prefix then that many bytes.
  Bytes bytes();
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace cb
