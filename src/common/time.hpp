// Simulated-time primitives shared by every CellBricks module.
//
// All simulation code measures time as an integer count of nanoseconds so
// event ordering is exact and runs are bit-reproducible; floating-point
// seconds are only used at the presentation edge (stats, reports).
#pragma once

#include <compare>
#include <concepts>
#include <cstdint>

namespace cb {

/// A signed span of simulated time with nanosecond resolution.
///
/// Construct via the named factories (`Duration::ms(5)`, `Duration::s(1.5)`)
/// rather than raw nanosecond counts so call sites read in natural units.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration ns(std::int64_t v) { return Duration{v}; }
  static constexpr Duration us(std::int64_t v) { return Duration{v * 1'000}; }
  static constexpr Duration ms(std::int64_t v) { return Duration{v * 1'000'000}; }
  static constexpr Duration s(std::int64_t v) { return Duration{v * 1'000'000'000}; }
  /// Fractional seconds, e.g. `Duration::seconds(0.5)`.
  static constexpr Duration seconds(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e9)};
  }
  static constexpr Duration millis(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e6)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  /// Sentinel larger than any physical duration used in the simulator.
  static constexpr Duration infinite() { return Duration{INT64_MAX / 4}; }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  template <typename T>
    requires std::integral<T>
  constexpr Duration operator*(T k) const {
    return Duration{ns_ * static_cast<std::int64_t>(k)};
  }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

 private:
  constexpr explicit Duration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulation clock (nanoseconds since run start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_nanos(std::int64_t v) { return TimePoint{v}; }
  static constexpr TimePoint zero() { return TimePoint{0}; }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.nanos()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.nanos()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::ns(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.nanos(); return *this; }

 private:
  constexpr explicit TimePoint(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace cb
