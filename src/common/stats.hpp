// Measurement accumulators used by the evaluation harness: summary stats,
// percentiles, and time-bucketed series (for Fig.8/Fig.10-style traces).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace cb {

/// Online summary of a scalar sample set with exact percentiles (samples are
/// retained; evaluation runs are small enough for that).
class Summary {
 public:
  void add(double v);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by nearest-rank, p in [0, 100].
  double percentile(double p) const;
  double p50() const { return percentile(50); }
  double p99() const { return percentile(99); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Accumulates (time, value) deltas into fixed-width buckets, e.g. bytes
/// received per second -> throughput series.
class TimeSeries {
 public:
  explicit TimeSeries(Duration bucket_width) : width_(bucket_width) {}

  /// Add `value` to the bucket containing `t`.
  void add(TimePoint t, double value);
  /// Number of buckets spanned so far.
  std::size_t buckets() const { return values_.size(); }
  /// Sum accumulated in bucket i (0 if untouched).
  double bucket(std::size_t i) const;
  Duration bucket_width() const { return width_; }
  /// Bucket sums divided by bucket width in seconds (rate series).
  std::vector<double> rates() const;

 private:
  Duration width_;
  std::vector<double> values_;
};

/// Formats a value with fixed precision — tiny helper for bench tables.
std::string fmt(double v, int decimals = 2);

}  // namespace cb
