#include "common/log.hpp"

#include <cstdio>

namespace cb::log_detail {

namespace {
// thread_local: each worker thread in a parallel sweep runs its own
// simulator, and log timestamps must come from that thread's engine.
thread_local TimePoint (*g_time_source)() = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel& global_level() {
  static LogLevel level = LogLevel::Warn;
  return level;
}

void set_time_source(TimePoint (*now_fn)()) { g_time_source = now_fn; }

void emit(LogLevel level, std::string_view component, const std::string& message) {
  double t = g_time_source ? g_time_source().to_seconds() : 0.0;
  std::fprintf(stderr, "[%10.6f] %s [%.*s] %s\n", t, level_name(level),
               static_cast<int>(component.size()), component.data(), message.c_str());
}

}  // namespace cb::log_detail
