// Arena-backed per-UE session state for the hybrid fluid/packet traffic
// engine (DESIGN.md §11).
//
// A 100k–1M-UE simulation cannot afford one heap object per subscriber:
// pointer-chasing UE agents, bearers, and billing accumulators scattered
// across the heap turns every scheduler sweep into a cache-miss storm. The
// SessionArena keeps every per-session field in a structure-of-arrays
// layout — parallel dense vectors indexed by SessionId — so the fluid
// engine's share recomputation and the billing sweep touch contiguous
// memory. Sessions are recycled through a free list; a SessionId is stable
// for the lifetime of the session.
//
// The arena is plain data: it never schedules events, owns no sockets, and
// is safe to size up front (reserve()) so a million-UE run does no
// reallocation after setup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cb::traffic {

using SessionId = std::uint32_t;
inline constexpr SessionId kNoSession = 0xFFFFFFFFu;

/// Where a session's active flow is currently simulated.
enum class FlowMode : std::uint8_t {
  Idle = 0,    // no active flow
  Fluid = 1,   // flow progressed analytically by the FluidEngine
  Packet = 2,  // flow demoted to full packet fidelity (TCP over real links)
  Done = 3,    // flow completed (delivered == demand)
};

class SessionArena {
 public:
  SessionArena() = default;
  explicit SessionArena(std::size_t capacity) { reserve(capacity); }

  /// Pre-size every column; a sized arena never reallocates during a run.
  void reserve(std::size_t n) {
    cell_.reserve(n);
    weight_.reserve(n);
    qci_.reserve(n);
    mode_.reserve(n);
    cap_bps_.reserve(n);
    rate_bps_.reserve(n);
    demand_bytes_.reserve(n);
    delivered_bytes_.reserve(n);
    billed_bytes_.reserve(n);
    billed_usd_.reserve(n);
    start_ns_.reserve(n);
    finish_ns_.reserve(n);
  }

  /// Create a session pinned to `cell` with the given scheduler weight and
  /// per-bearer rate cap (0 = uncapped). Recycles released slots.
  SessionId create(std::uint32_t cell, float weight, double cap_bps, std::uint8_t qci = 9) {
    SessionId id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<SessionId>(cell_.size());
      grow_one();
    }
    cell_[id] = cell;
    weight_[id] = weight;
    qci_[id] = qci;
    mode_[id] = FlowMode::Idle;
    cap_bps_[id] = cap_bps;
    rate_bps_[id] = 0.0;
    demand_bytes_[id] = 0.0;
    delivered_bytes_[id] = 0.0;
    billed_bytes_[id] = 0.0;
    billed_usd_[id] = 0.0;
    start_ns_[id] = -1;
    finish_ns_[id] = -1;
    ++live_;
    return id;
  }

  void release(SessionId id) {
    mode_[id] = FlowMode::Idle;
    free_.push_back(id);
    --live_;
  }

  /// Live sessions (created minus released).
  std::size_t size() const { return live_; }
  /// Slots ever allocated (column length).
  std::size_t slots() const { return cell_.size(); }

  /// Bytes of arena memory per session slot — the working-set figure the
  /// scale bench reports (every column, free-list overhead excluded).
  static constexpr std::size_t bytes_per_session() {
    return sizeof(std::uint32_t) + sizeof(float) + 2 * sizeof(std::uint8_t) +
           6 * sizeof(double) + 2 * sizeof(std::int64_t);
  }

  // Column accessors. References stay valid until the next create() that
  // grows the arena — reserve() up front makes them stable for a whole run.
  std::uint32_t& cell(SessionId id) { return cell_[id]; }
  float& weight(SessionId id) { return weight_[id]; }
  std::uint8_t& qci(SessionId id) { return qci_[id]; }
  FlowMode& mode(SessionId id) { return mode_[id]; }
  double& cap_bps(SessionId id) { return cap_bps_[id]; }
  double& rate_bps(SessionId id) { return rate_bps_[id]; }
  double& demand_bytes(SessionId id) { return demand_bytes_[id]; }
  double& delivered_bytes(SessionId id) { return delivered_bytes_[id]; }
  double& billed_bytes(SessionId id) { return billed_bytes_[id]; }
  double& billed_usd(SessionId id) { return billed_usd_[id]; }
  std::int64_t& start_ns(SessionId id) { return start_ns_[id]; }
  std::int64_t& finish_ns(SessionId id) { return finish_ns_[id]; }

  std::uint32_t cell(SessionId id) const { return cell_[id]; }
  float weight(SessionId id) const { return weight_[id]; }
  FlowMode mode(SessionId id) const { return mode_[id]; }
  double cap_bps(SessionId id) const { return cap_bps_[id]; }
  double rate_bps(SessionId id) const { return rate_bps_[id]; }
  double demand_bytes(SessionId id) const { return demand_bytes_[id]; }
  double delivered_bytes(SessionId id) const { return delivered_bytes_[id]; }
  double billed_bytes(SessionId id) const { return billed_bytes_[id]; }
  double billed_usd(SessionId id) const { return billed_usd_[id]; }
  std::int64_t start_ns(SessionId id) const { return start_ns_[id]; }
  std::int64_t finish_ns(SessionId id) const { return finish_ns_[id]; }

  double residual_bytes(SessionId id) const { return demand_bytes_[id] - delivered_bytes_[id]; }

 private:
  void grow_one() {
    cell_.push_back(0);
    weight_.push_back(1.0f);
    qci_.push_back(9);
    mode_.push_back(FlowMode::Idle);
    cap_bps_.push_back(0.0);
    rate_bps_.push_back(0.0);
    demand_bytes_.push_back(0.0);
    delivered_bytes_.push_back(0.0);
    billed_bytes_.push_back(0.0);
    billed_usd_.push_back(0.0);
    start_ns_.push_back(-1);
    finish_ns_.push_back(-1);
  }

  // Structure-of-arrays columns (hot first: the share recomputation touches
  // cell/weight/cap/rate; the accrual sweep touches rate/demand/delivered).
  std::vector<std::uint32_t> cell_;
  std::vector<float> weight_;
  std::vector<std::uint8_t> qci_;
  std::vector<FlowMode> mode_;
  std::vector<double> cap_bps_;
  std::vector<double> rate_bps_;
  std::vector<double> demand_bytes_;
  std::vector<double> delivered_bytes_;
  std::vector<double> billed_bytes_;
  std::vector<double> billed_usd_;
  std::vector<std::int64_t> start_ns_;
  std::vector<std::int64_t> finish_ns_;
  std::vector<SessionId> free_;
  std::size_t live_ = 0;
};

}  // namespace cb::traffic
