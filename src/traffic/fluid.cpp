#include "traffic/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace cb::traffic {

namespace {

/// A flow whose residual is within this of zero is complete; the remainder
/// is banked as its final segment at the completion instant.
constexpr double kCompleteEpsBytes = 0.5;
/// Completion events are scheduled this far past the analytic completion
/// instant so integer-nanosecond truncation can never fire them early.
constexpr Duration kEventGuard = Duration::us(1);

}  // namespace

FluidEngine::FluidEngine(sim::Simulator& sim, SessionArena& arena) : sim_(sim), arena_(arena) {}

std::uint32_t FluidEngine::add_cell(double capacity_bps) {
  Cell c;
  c.capacity_bps = capacity_bps;
  c.last_accrual = sim_.now();
  cells_.push_back(std::move(c));
  return static_cast<std::uint32_t>(cells_.size() - 1);
}

void FluidEngine::set_cell_capacity(std::uint32_t cell, double capacity_bps) {
  cells_[cell].capacity_bps = capacity_bps;
  reallocate(cell);
}

void FluidEngine::start_flow(SessionId id, double bytes) {
  assert(arena_.mode(id) == FlowMode::Idle);
  arena_.mode(id) = FlowMode::Fluid;
  arena_.demand_bytes(id) = bytes;
  arena_.delivered_bytes(id) = 0.0;
  arena_.rate_bps(id) = 0.0;
  arena_.start_ns(id) = sim_.now().nanos();
  insert_member(cells_[arena_.cell(id)], id);
  ++active_fluid_;
  reallocate(arena_.cell(id));
}

void FluidEngine::handover(SessionId id, std::uint32_t new_cell) {
  const std::uint32_t old_cell = arena_.cell(id);
  if (old_cell == new_cell) return;
  remove_member(cells_[old_cell], id);
  arena_.cell(id) = new_cell;
  insert_member(cells_[new_cell], id);
  reallocate(old_cell);
  reallocate(new_cell);
}

void FluidEngine::set_flow_cap(SessionId id, double cap_bps) {
  arena_.cap_bps(id) = cap_bps;
  reallocate(arena_.cell(id));
}

double FluidEngine::demote(SessionId id) {
  assert(arena_.mode(id) == FlowMode::Fluid);
  // Bank progress up to this instant, then hand the residual to the lane.
  accrue_cell(cells_[arena_.cell(id)]);
  arena_.mode(id) = FlowMode::Packet;
  arena_.rate_bps(id) = 0.0;  // reallocate publishes the ghost share
  --active_fluid_;
  ++demotions_;
  reallocate(arena_.cell(id));
  return arena_.residual_bytes(id);
}

void FluidEngine::promote(SessionId id) {
  assert(arena_.mode(id) == FlowMode::Packet);
  // Bank the cell while the flow is still a ghost, mirroring demote(): the
  // ghost carries a nonzero published share, and accruing after the mode
  // flip would credit that share over the packet window as fluid segments —
  // bytes the lane already delivered via TCP.
  accrue_cell(cells_[arena_.cell(id)]);
  arena_.mode(id) = FlowMode::Fluid;
  ++active_fluid_;
  ++promotions_;
  reallocate(arena_.cell(id));
}

void FluidEngine::finish_packet_flow(SessionId id) {
  assert(arena_.mode(id) == FlowMode::Packet);
  arena_.mode(id) = FlowMode::Done;
  arena_.rate_bps(id) = 0.0;
  arena_.finish_ns(id) = sim_.now().nanos();
  remove_member(cells_[arena_.cell(id)], id);
  reallocate(arena_.cell(id));
}

void FluidEngine::accrue_all() {
  for (Cell& c : cells_) accrue_cell(c);
}

void FluidEngine::accrue_cell(Cell& c) {
  const TimePoint now = sim_.now();
  const double dt_s = (now - c.last_accrual).to_seconds();
  c.last_accrual = now;
  if (dt_s <= 0.0) return;
  for (SessionId id : c.flows) {
    if (arena_.mode(id) != FlowMode::Fluid) continue;  // ghosts progress via packets
    const double offered = arena_.rate_bps(id) * dt_s / 8.0;
    if (offered <= 0.0) continue;
    const double residual = arena_.residual_bytes(id);
    if (residual < 0.0) ++negative_residuals_;
    const double add = std::min(offered, std::max(residual, 0.0));
    arena_.delivered_bytes(id) += add;
    segment_bytes_ += add;
    clamped_bytes_ += offered - add;
  }
}

void FluidEngine::reallocate(std::uint32_t cell_id) {
  Cell& c = cells_[cell_id];
  accrue_cell(c);
  ++rate_events_;

  // Weighted max-min fairness with per-flow caps, one water-filling pass:
  // visit flows in ascending cap/weight (uncapped last); a flow whose cap is
  // below the running fair level keeps its cap, everyone after shares the
  // leftovers in proportion to weight.
  const std::size_t n = c.flows.size();
  scratch_order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch_order_[i] = static_cast<std::uint32_t>(i);
  auto cap_per_weight = [&](std::uint32_t i) {
    const SessionId id = c.flows[i];
    const double cap = arena_.cap_bps(id);
    return cap > 0.0 ? cap / arena_.weight(id) : std::numeric_limits<double>::infinity();
  };
  std::sort(scratch_order_.begin(), scratch_order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const double ca = cap_per_weight(a);
              const double cb = cap_per_weight(b);
              if (ca != cb) return ca < cb;
              return c.flows[a] < c.flows[b];  // deterministic tie-break
            });

  double remaining = c.capacity_bps;
  double weight_left = 0.0;
  for (SessionId id : c.flows) weight_left += arena_.weight(id);

  for (std::uint32_t i : scratch_order_) {
    const SessionId id = c.flows[i];
    const double w = arena_.weight(id);
    double rate = 0.0;
    if (remaining > 0.0 && weight_left > 0.0) {
      const double fair = remaining * w / weight_left;
      const double cap = arena_.cap_bps(id);
      rate = (cap > 0.0 && cap < fair) ? cap : fair;
    }
    remaining -= rate;
    weight_left -= w;
    if (arena_.mode(id) == FlowMode::Packet) {
      // Ghost: publish the share to the packet lane when it moves.
      if (rate != arena_.rate_bps(id)) {
        arena_.rate_bps(id) = rate;
        if (on_rate_share) on_rate_share(id, rate);
      }
    } else {
      arena_.rate_bps(id) = rate;
    }
  }

  // Next rate-change point this cell generates on its own: the earliest
  // fluid completion at the just-computed rates.
  c.next_completion.cancel();
  double min_dt_s = std::numeric_limits<double>::infinity();
  for (SessionId id : c.flows) {
    if (arena_.mode(id) != FlowMode::Fluid) continue;
    const double rate = arena_.rate_bps(id);
    if (rate <= 0.0) continue;
    const double dt = arena_.residual_bytes(id) * 8.0 / rate;
    min_dt_s = std::min(min_dt_s, std::max(dt, 0.0));
  }
  if (min_dt_s != std::numeric_limits<double>::infinity()) {
    c.next_completion = sim_.schedule(Duration::seconds(min_dt_s) + kEventGuard,
                                      [this, cell_id] { fire(cell_id); });
  }
}

void FluidEngine::fire(std::uint32_t cell_id) {
  Cell& c = cells_[cell_id];
  accrue_cell(c);

  // Complete every fluid flow that reached its demand (ties complete
  // together, in SessionId order — the member list is sorted).
  std::vector<SessionId> done;
  for (SessionId id : c.flows) {
    if (arena_.mode(id) != FlowMode::Fluid) continue;
    if (arena_.residual_bytes(id) <= kCompleteEpsBytes) done.push_back(id);
  }
  for (SessionId id : done) {
    // The sub-epsilon remainder is the final segment, delivered now.
    segment_bytes_ += arena_.residual_bytes(id);
    arena_.delivered_bytes(id) = arena_.demand_bytes(id);
    arena_.mode(id) = FlowMode::Done;
    arena_.rate_bps(id) = 0.0;
    arena_.finish_ns(id) = sim_.now().nanos();
    remove_member(c, id);
    --active_fluid_;
    ++completions_;
  }
  reallocate(cell_id);
  if (on_complete) {
    for (SessionId id : done) on_complete(id);
  }
}

void FluidEngine::insert_member(Cell& c, SessionId id) {
  auto it = std::lower_bound(c.flows.begin(), c.flows.end(), id);
  c.flows.insert(it, id);
}

void FluidEngine::remove_member(Cell& c, SessionId id) {
  auto it = std::lower_bound(c.flows.begin(), c.flows.end(), id);
  assert(it != c.flows.end() && *it == id);
  c.flows.erase(it);
}

}  // namespace cb::traffic
